(** A named collection of base relations (the catalog). *)

type t

exception Unknown_relation of string

val create : unit -> t
val add : t -> Relation.t -> unit
(** Raises [Invalid_argument] if the name is already registered. *)

val find : t -> string -> Relation.t
(** Raises {!Unknown_relation}. *)

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool
val names : t -> string list
val total_rows : t -> int
