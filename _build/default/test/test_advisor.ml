(* Tests for the sampling-driven join-order advisor. *)

module Advisor = Gus_estimator.Advisor
module Splan = Gus_core.Splan
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let db = lazy (Gus_tpch.Tpch.generate ~seed:77 ~scale:0.08 ())

let graph3 =
  { Advisor.relations = [ "lineitem"; "orders"; "customer" ];
    predicates =
      [ ("lineitem", "orders", Expr.col "l_orderkey", Expr.col "o_orderkey");
        ("orders", "customer", Expr.col "o_custkey", Expr.col "c_custkey") ] }

(* Exact sum of intermediate sizes for an order. *)
let true_cost db graph order =
  let rec go plan prefix cost = function
    | [] -> cost
    | rel :: rest ->
        let plan, _ =
          match
            List.find_opt
              (fun (a, b, _, _) ->
                (List.mem a prefix && b = rel) || (List.mem b prefix && a = rel))
              graph.Advisor.predicates
          with
          | Some (a, _, ka, kb) ->
              let lk, rk = if List.mem a prefix then (ka, kb) else (kb, ka) in
              ( Splan.Equi_join
                  { left = plan; right = Splan.Scan rel; left_key = lk; right_key = rk },
                false )
          | None -> (Splan.Cross (plan, Splan.Scan rel), true)
        in
        let size = Relation.cardinality (Splan.exec_exact db plan) in
        go plan (rel :: prefix) (cost +. float_of_int size) rest
  in
  match order with
  | [] -> 0.0
  | first :: rest -> go (Splan.Scan first) [ first ] 0.0 rest

let test_enumerates_all_orders () =
  let db = Lazy.force db in
  let ranked = Advisor.advise ~rate:0.2 db graph3 in
  check_int "3! orders" 6 (List.length ranked);
  (* every order is a permutation of the three relations *)
  List.iter
    (fun r ->
      check_int "3 relations" 3 (List.length r.Advisor.order);
      check_int "2 prefixes" 2 (List.length r.Advisor.prefixes))
    ranked

let test_avoids_cross_products () =
  let db = Lazy.force db in
  let best = Advisor.best ~rate:0.2 db graph3 in
  check_int "no cross product in winner" 0 best.Advisor.cross_products;
  (* lineitem-customer first would force a cross product *)
  check_bool "customer is not joined before orders" true
    (match best.Advisor.order with
    | "lineitem" :: "customer" :: _ | "customer" :: "lineitem" :: _ -> false
    | _ -> true)

let test_predicted_tracks_true_cost () =
  let db = Lazy.force db in
  let ranked = Advisor.advise ~rate:0.4 ~seed:5 db graph3 in
  let best = List.hd ranked in
  let true_best =
    List.fold_left
      (fun acc r -> Float.min acc (true_cost db graph3 r.Advisor.order))
      infinity ranked
  in
  let chosen = true_cost db graph3 best.Advisor.order in
  check_bool
    (Printf.sprintf "chosen true cost %.0f within 1.5x of optimum %.0f" chosen
       true_best)
    true
    (chosen <= 1.5 *. true_best)

let test_prefix_intervals_cover_truth () =
  let db = Lazy.force db in
  let ranked = Advisor.advise ~rate:0.4 ~seed:7 db graph3 in
  let connected = List.filter (fun r -> r.Advisor.cross_products = 0) ranked in
  let covered = ref 0 and total = ref 0 in
  List.iter
    (fun r ->
      let rec go plan prefix = function
        | [] -> ()
        | rel :: rest ->
            let p =
              match
                List.find_opt
                  (fun (a, b, _, _) ->
                    (List.mem a prefix && b = rel) || (List.mem b prefix && a = rel))
                  graph3.Advisor.predicates
              with
              | Some (a, _, ka, kb) ->
                  let lk, rk = if List.mem a prefix then (ka, kb) else (kb, ka) in
                  Splan.Equi_join
                    { left = plan; right = Splan.Scan rel; left_key = lk; right_key = rk }
              | None -> Splan.Cross (plan, Splan.Scan rel)
            in
            let truth = float_of_int (Relation.cardinality (Splan.exec_exact db p)) in
            let est = List.nth r.Advisor.prefixes (List.length prefix - 1) in
            incr total;
            if Gus_stats.Interval.contains est.Advisor.interval truth then incr covered;
            go p (rel :: prefix) rest
      in
      match r.Advisor.order with
      | first :: rest -> go (Splan.Scan first) [ first ] rest
      | [] -> ())
    connected;
  check_bool
    (Printf.sprintf "intervals cover %d/%d" !covered !total)
    true
    (float_of_int !covered /. float_of_int !total >= 0.8)

let test_validation () =
  let db = Lazy.force db in
  let fails g = try ignore (Advisor.advise db g); false with Invalid_argument _ -> true in
  check_bool "unknown relation" true
    (fails { Advisor.relations = [ "nope" ]; predicates = [] });
  check_bool "duplicate relation" true
    (fails { Advisor.relations = [ "orders"; "orders" ]; predicates = [] });
  check_bool "too many relations" true
    (fails
       { Advisor.relations =
           [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ];
         predicates = [] });
  check_bool "foreign predicate" true
    (fails
       { Advisor.relations = [ "orders" ];
         predicates = [ ("orders", "nope", Expr.col "x", Expr.col "y") ] })

let test_plan_of_order () =
  let plan = Advisor.plan_of_order graph3 [ "customer"; "orders"; "lineitem" ] in
  match plan with
  | Splan.Equi_join { left = Splan.Equi_join _; right = Splan.Scan "lineitem"; _ } -> ()
  | _ -> Alcotest.fail "unexpected shape"

let () =
  Alcotest.run "gus_estimator.advisor"
    [ ( "advisor",
        [ Alcotest.test_case "enumerates all orders" `Quick test_enumerates_all_orders;
          Alcotest.test_case "avoids cross products" `Quick test_avoids_cross_products;
          Alcotest.test_case "predicted tracks true cost" `Quick test_predicted_tracks_true_cost;
          Alcotest.test_case "prefix intervals cover" `Quick test_prefix_intervals_cover_truth;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "plan_of_order" `Quick test_plan_of_order ] ) ]
