let save ~path rel =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Relation.iter
        (fun tup ->
          let cells =
            Array.map
              (fun v ->
                let s = Value.to_display v in
                if String.contains s ',' then
                  failwith (Printf.sprintf "Csv.save: comma in field %S" s);
                s)
              tup.Tuple.values
          in
          output_string oc (String.concat "," (Array.to_list cells));
          output_char oc '\n')
        rel)

let parse_cell ~line ty s =
  let fail () =
    failwith (Printf.sprintf "Csv.load: line %d: cannot parse %S as %s" line s
                (Value.ty_name ty))
  in
  if s = "NULL" then Value.Null
  else
    match ty with
    | Value.TInt -> (try Value.Int (int_of_string s) with _ -> fail ())
    | Value.TFloat -> (try Value.Float (float_of_string s) with _ -> fail ())
    | Value.TBool -> (try Value.Bool (bool_of_string s) with _ -> fail ())
    | Value.TStr -> Value.Str s

let load ~path ~name schema =
  let rel = Relation.create_base ~name schema in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let tys = List.map (fun c -> c.Schema.ty) (Schema.columns schema) in
      let line_no = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr line_no;
          if String.trim line <> "" then begin
            let cells = String.split_on_char ',' line in
            if List.length cells <> List.length tys then
              failwith
                (Printf.sprintf "Csv.load: line %d: %d fields, expected %d"
                   !line_no (List.length cells) (List.length tys));
            let values =
              List.map2 (fun ty s -> parse_cell ~line:!line_no ty s) tys cells
            in
            Relation.append_row rel (Array.of_list values)
          end
        done;
        rel
      with End_of_file -> rel)
