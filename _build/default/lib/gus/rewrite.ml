open Gus_relational
module Sampler = Gus_sampling.Sampler

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type result = {
  skeleton : Splan.t;
  gus : Gus.t;
  steps : (string * Gus.t) list;
}

let sampler_gus ~card ~over ~base sampler =
  Sampler.validate sampler;
  match sampler with
  | Sampler.Bernoulli p ->
      if Array.length over = 1 then Gus.bernoulli ~rel:over.(0) p
      else Gus.bernoulli_over over p
  | Sampler.Hash_bernoulli { p; _ } ->
      (* One pseudo-random decision per lineage id: pairwise it behaves as
         an independent Bernoulli(p) filter. *)
      if Array.length over = 1 then Gus.bernoulli ~rel:over.(0) p
      else
        unsupported
          "hash-Bernoulli over a derived input (lineage [%s]); use the \
           multi-dimensional Subsample instead"
          (String.concat "," (Array.to_list over))
  | Sampler.Wor n ->
      if base && Array.length over = 1 then
        Gus.wor ~rel:over.(0) ~n ~out_of:(card over.(0))
      else
        unsupported
          "WOR over a derived or already-sampled input: its inclusion \
           probability n/N depends on a random cardinality"
  | Sampler.Block { p; _ } ->
      if base && Array.length over = 1 then
        (* Block-granular lineage: a kept *block* is one Bernoulli unit, so
           as a GUS (over block ids) the parameters are Bernoulli's. *)
        Gus.bernoulli ~rel:over.(0) p
      else unsupported "block sampling is only supported directly over a base table"
  | Sampler.Wr _ ->
      unsupported
        "with-replacement sampling is not a randomized filter, hence not a \
         GUS method (see paper Section 9)"

let analyze ~card plan =
  let steps = ref [] in
  let note what gus = steps := (what, gus) :: !steps in
  let rec go plan =
    match plan with
    | Splan.Scan name ->
        let g = Gus.identity (Lineage.schema_of name) in
        (Splan.Scan name, g)
    | Splan.Select (p, q) ->
        (* Prop 5: selection commutes with GUS. *)
        let skel, g = go q in
        (Splan.Select (p, skel), g)
    | Splan.Project (fields, q) ->
        let skel, g = go q in
        (Splan.Project (fields, skel), g)
    | Splan.Equi_join { left; right; left_key; right_key } ->
        let skel_l, gl = go left in
        let skel_r, gr = go right in
        let g = join_gus gl gr in
        (Splan.Equi_join { left = skel_l; right = skel_r; left_key; right_key }, g)
    | Splan.Theta_join (p, l, r) ->
        let skel_l, gl = go l in
        let skel_r, gr = go r in
        let g = join_gus gl gr in
        (Splan.Theta_join (p, skel_l, skel_r), g)
    | Splan.Cross (l, r) ->
        let skel_l, gl = go l in
        let skel_r, gr = go r in
        let g = join_gus gl gr in
        (Splan.Cross (skel_l, skel_r), g)
    | Splan.Sample (s, q) ->
        let skel, g = go q in
        let over = Splan.lineage_schema skel in
        let base = match q with Splan.Scan _ -> true | _ -> false in
        let gs = sampler_gus ~card ~over ~base s in
        note (Printf.sprintf "translate %s" (Sampler.to_string s)) gs;
        (* Prop 8: stacking the sampler's GUS on the input's GUS. *)
        let combined = Gus.compact gs g in
        note (Printf.sprintf "compact %s into input" (Sampler.to_string s)) combined;
        (skel, combined)
    | Splan.Distinct q ->
        let skel, g = go q in
        let is_identity =
          Gus.equal_approx g (Gus.identity g.Gus.rels)
        in
        if not is_identity then
          unsupported
            "DISTINCT above sampling is outside GUS (Section 9): duplicate \
             elimination depends on more than pairwise inclusion \
             probabilities";
        (Splan.Distinct skel, g)
    | Splan.Union_samples (l, r) ->
        let skel_l, gl = go l in
        let skel_r, gr = go r in
        if not (Splan.equal skel_l skel_r) then
          unsupported
            "union of samples of two different expressions (Prop 7 requires \
             both samples to come from the same expression)";
        let g = Gus.union gl gr in
        note "GUS union (Prop 7)" g;
        (skel_l, g)
  and join_gus gl gr =
    match Gus.join gl gr with
    | g ->
        note "join (Prop 6)" g;
        g
    | exception Gus.Incompatible msg -> unsupported "%s" msg
  in
  match go plan with
  | skeleton, gus -> { skeleton; gus; steps = List.rev !steps }
  | exception Lineage.Overlap r ->
      unsupported "relation %s used twice (self-joins are outside GUS)" r

let analyze_db db plan =
  analyze plan
    ~card:(fun r -> Relation.cardinality (Database.find db r))
