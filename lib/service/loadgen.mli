(** Closed-loop TCP load generator for the NDJSON server ([gusdb
    loadgen]).

    [clients] threads each pace toward [qps / clients]: send one
    request, block for its response (never more than one outstanding
    per client), sleep off the rest of the interval.  When the server
    falls behind the schedule, clients run flat out — offered load
    saturates at server speed, the regime where admission control must
    shed rather than queue. *)

type summary = {
  clients : int;
  target_qps : float;
  duration_s : float;
  sent : int;
  ok : int;
  errors : int;  (** [ok:false] responses other than [overloaded] *)
  shed : int;  (** [ok:true] responses carrying [shed:true] *)
  rejected : int;  (** [overloaded] rejections *)
  p50_ms : float;  (** round-trip latency percentiles over all requests *)
  p99_ms : float;
  mean_ms : float;
  achieved_qps : float;
  shed_fraction : float;  (** [shed / max 1 ok] *)
}

val run :
  host:string ->
  port:int ->
  clients:int ->
  qps:float ->
  duration_s:float ->
  ?setup:string list ->
  ?client_setup:string list ->
  request:(client:int -> seq:int -> string) ->
  unit ->
  (summary, string) result
(** Drive [host:port].  [setup] lines go down one extra connection
    first (register the dataset {e once} — re-registering per client
    would bump the catalog version and flush the cache); [client_setup]
    lines go down each client's connection before its clock starts
    (prepare the session-scoped handle); [request] renders the [seq]-th
    request line for a client.  Every setup response must be
    [ok:true] or the run aborts.  [Error] when any client thread
    aborts (connection refused, setup failure). *)

val merge_bench_row : path:string -> name:string -> summary -> unit
(** Insert (or replace) one [{"name", "ns_per_run" (mean latency),
    "p50_ms", "p99_ms", "achieved_qps", "shed_fraction", ...}] row into
    the [results] array of a [BENCH_moments.json]-format file, creating
    a minimal skeleton when the file does not exist.  Textual splice:
    the bench harness's hand-formatted one-row-per-line layout is
    preserved. *)
