examples/quickstart.mli:
