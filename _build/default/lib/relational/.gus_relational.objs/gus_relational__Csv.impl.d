lib/relational/csv.ml: Array Fun List Printf Relation Schema String Tuple Value
