(** Vectorized expression compilation over columnar storage.

    Binds an {!Expr.t} against a schema and its {!Column} array, yielding
    typed per-index closures that read column data directly.  Compilation
    returns [None] whenever exact parity with the row engine
    ({!Expr.compile}) cannot be guaranteed statically; callers must then
    fall back to the row path.  When compilation succeeds, evaluation is
    bit-identical to the row engine, including the order and identity of
    raises (division by zero inside NULL-producing subtrees). *)

type vec =
  | VF of (int -> float) * (int -> bool)  (** (value, is-null) *)
  | VI of (int -> int) * (int -> bool)
  | VS of (int -> string) * (int -> bool)
  | VB of (int -> int)  (** tri-state: 0 = false, 1 = true, 2 = NULL *)
  | VNull of (int -> unit)
      (** statically NULL; closure replays the subtree's row-path
          effects *)

(** Contract: a value closure may only be called on row [i] after the
    paired null closure returned [false] for [i]; the null closure (and a
    [VB]/[VNull] closure) must be called exactly once per row, and
    carries all evaluation effects. *)

val compile : Schema.t -> Column.t array -> Expr.t -> vec option

val predicate : Schema.t -> Column.t array -> Expr.t -> (int -> bool) option
(** WHERE-clause view: [Bool true] keeps the row, everything else
    (false, NULL, non-boolean results) drops it — evaluating the
    expression first, so raises match the row path. *)
