lib/util/subset.mli: Format
