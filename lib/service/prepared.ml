module S = Gus_core.Splan
module Sam = Gus_sampling.Sampler
module Runner = Gus_sql.Runner
open Gus_relational

let m_prepares = Gus_obs.Metrics.counter "service.prepares"
let m_executes = Gus_obs.Metrics.counter "service.executes"
let m_repreparations = Gus_obs.Metrics.counter "service.repreparations"

type t = {
  p_dataset : string;
  p_sql : string;
  p_lint_config : Gus_analysis.Lint.config option;
  mutable p_version : int;
  mutable p_handle : Runner.prepared;
}

let prepare ?lint_config catalog ~dataset sql =
  let entry = Catalog.find_exn catalog dataset in
  let handle = Runner.prepare ?lint_config entry.Catalog.db sql in
  Gus_obs.Metrics.incr m_prepares;
  { p_dataset = dataset;
    p_sql = sql;
    p_lint_config = lint_config;
    p_version = entry.Catalog.version;
    p_handle = handle }

let dataset t = t.p_dataset
let sql t = t.p_sql
let version t = t.p_version
let handle t = t.p_handle

type overrides = {
  seed : int;
  rates : (string * float) list;
  explain : bool;
  exact : bool;
}

let default_overrides = { seed = 42; rates = []; explain = false; exact = false }

let override_rates ~card rates plan =
  let applied = ref [] in
  let wor_size rate rel =
    if rate < 0. || rate > 1. then
      invalid_arg
        (Printf.sprintf "rate override %g for %s out of [0,1]" rate rel);
    int_of_float (Float.round (rate *. float_of_int (card rel)))
  in
  let rec go plan =
    match plan with
    | S.Scan _ -> plan
    | S.Select (e, p) -> S.Select (e, go p)
    | S.Project (cols, p) -> S.Project (cols, go p)
    | S.Equi_join { left; right; left_key; right_key } ->
        S.Equi_join { left = go left; right = go right; left_key; right_key }
    | S.Theta_join (e, l, r) -> S.Theta_join (e, go l, go r)
    | S.Cross (l, r) -> S.Cross (go l, go r)
    | S.Distinct p -> S.Distinct (go p)
    | S.Union_samples (l, r) -> S.Union_samples (go l, go r)
    | S.Sample (sampler, child) -> (
        let child = go child in
        match S.relations child with
        | [ rel ] when List.mem_assoc rel rates ->
            let rate = List.assoc rel rates in
            applied := rel :: !applied;
            let sampler' =
              match sampler with
              | Sam.Bernoulli _ -> Sam.Bernoulli rate
              | Sam.Hash_bernoulli { seed; _ } ->
                  Sam.Hash_bernoulli { seed; p = rate }
              | Sam.Block { rows_per_block; _ } ->
                  Sam.Block { rows_per_block; p = rate }
              | Sam.Wor _ -> Sam.Wor (wor_size rate rel)
              | Sam.Wr _ -> Sam.Wr (wor_size rate rel)
            in
            Sam.validate sampler';
            S.Sample (sampler', child)
        | _ -> S.Sample (sampler, child))
  in
  let plan = go plan in
  (match
     List.filter (fun (rel, _) -> not (List.mem rel !applied)) rates
   with
  | [] -> ()
  | missing ->
      invalid_arg
        (Printf.sprintf "rate override for unsampled relation(s): %s"
           (String.concat ", " (List.map fst missing))));
  plan

(* Effective first-order sampling rate per base relation, read off the
   (post-override) plan for telemetry.  Composed samplers over the same
   relation multiply — [a]-values compose multiplicatively (Prop. 4) —
   and WOR/WR sizes are normalized by the base cardinality, so a nested
   outer WOR over an already-thinned input reads slightly low; the
   journal treats rates as provenance, not as replay inputs. *)
let sampling_rates ~card plan =
  let rates = ref [] in
  let note rel rate =
    match List.assoc_opt rel !rates with
    | Some prev ->
        rates := (rel, prev *. rate) :: List.remove_assoc rel !rates
    | None -> rates := (rel, rate) :: !rates
  in
  let rec go = function
    | S.Scan _ -> ()
    | S.Select (_, p) | S.Project (_, p) | S.Distinct p -> go p
    | S.Equi_join { left; right; _ } ->
        go left;
        go right
    | S.Theta_join (_, l, r) | S.Cross (l, r) | S.Union_samples (l, r) ->
        go l;
        go r
    | S.Sample (sampler, child) ->
        (match S.relations child with
        | [ rel ] ->
            let rate =
              match sampler with
              | Sam.Bernoulli p -> p
              | Sam.Hash_bernoulli { p; _ } -> p
              | Sam.Block { p; _ } -> p
              | Sam.Wor k | Sam.Wr k ->
                  let n = card rel in
                  if n = 0 then 0. else float_of_int k /. float_of_int n
            in
            note rel rate
        | _ -> ());
        go child
  in
  go plan;
  List.sort (fun (a, _) (b, _) -> compare a b) !rates

(* Re-prepare transparently when the catalog entry moved under us. *)
let refresh catalog t =
  let entry = Catalog.find_exn catalog t.p_dataset in
  if entry.Catalog.version <> t.p_version then begin
    t.p_handle <- Runner.prepare ?lint_config:t.p_lint_config entry.Catalog.db t.p_sql;
    t.p_version <- entry.Catalog.version;
    Gus_obs.Metrics.incr m_repreparations
  end;
  entry

let execute catalog t (ov : overrides) =
  let entry = refresh catalog t in
  let db = entry.Catalog.db in
  let handle =
    if ov.rates = [] then t.p_handle
    else begin
      (* A rate override changes the sampling design, so the plan must be
         re-linted: the overridden plan may move in or out of GUS range
         (e.g. rate 0 is GUS009).  The parse is still reused. *)
      let card rel = Relation.cardinality (Database.find db rel) in
      let plan = override_rates ~card ov.rates t.p_handle.Runner.pr_plan in
      { t.p_handle with
        Runner.pr_plan = plan;
        pr_lint = Gus_analysis.Lint.run_db ?config:t.p_lint_config db plan }
    end
  in
  let params =
    { Runner.default_params with
      seed = ov.seed;
      explain = ov.explain;
      exact = ov.exact;
      streaming = true }
  in
  Gus_obs.Metrics.incr m_executes;
  Runner.execute db handle params
