(** E5 — Section-7 efficient variance estimation: estimate the y_S moments
    from a ≈10 000-tuple lineage-keyed Bernoulli subsample instead of the
    full sample.  The paper's claim: the confidence interval stays almost
    unchanged (the moments only need to be roughly right) while the moment
    pass gets much cheaper and lineage is only needed for the subsample. *)

val run : ?scale:float -> ?trials:int -> ?target:int -> unit -> unit
