module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Interval = Gus_stats.Interval
open Gus_relational

type prediction = {
  estimate : float;
  stddev : float;
  interval : Interval.t;
  sample_tuples : int;
}

let one = Expr.float 1.0

let predict ?(seed = 11) ?(coverage = 0.95) db plan =
  let report, _ = Sbox.run ~seed db plan ~f:one in
  { estimate = report.Sbox.estimate;
    stddev = report.Sbox.stddev;
    interval = Sbox.interval ~coverage Interval.Normal report;
    sample_tuples = report.Sbox.n_tuples }

let rec sample_scans rate = function
  | Splan.Scan name ->
      Splan.Sample (Gus_sampling.Sampler.Bernoulli rate, Splan.Scan name)
  | Splan.Select (p, q) -> Splan.Select (p, sample_scans rate q)
  | Splan.Project (fields, q) -> Splan.Project (fields, sample_scans rate q)
  | Splan.Equi_join j ->
      Splan.Equi_join
        { j with
          left = sample_scans rate j.left;
          right = sample_scans rate j.right }
  | Splan.Theta_join (p, l, r) ->
      Splan.Theta_join (p, sample_scans rate l, sample_scans rate r)
  | Splan.Cross (l, r) -> Splan.Cross (sample_scans rate l, sample_scans rate r)
  | Splan.Distinct q -> Splan.Distinct (sample_scans rate q)
  | Splan.Sample (_, q) -> sample_scans rate q
  | Splan.Union_samples (l, _) -> sample_scans rate l

let predict_with_rates ?seed ?coverage db ~rate plan =
  if not (rate > 0.0 && rate <= 1.0) then
    invalid_arg "Size_estimator.predict_with_rates: rate not in (0,1]";
  predict ?seed ?coverage db (sample_scans rate (Splan.strip_samples plan))
