(* Typed columnar storage: one growable unboxed vector per column.

   Floats live in a float64 Bigarray, ints (and bools, as 0/1) in an
   untagged-int Bigarray, strings as dictionary codes (an int Bigarray of
   indices into an append-only string dictionary).  Nulls are a packed
   bitmap on the side, allocated lazily — a column with no NULLs pays one
   [has_nulls] branch and nothing else.

   Bigarray backing makes two things possible at once: kernels scan the
   raw arrays at hardware speed with no per-row boxing, and snapshot
   restore can wrap a [Unix.map_file]d region directly as column data
   (see {!Snapshot}) — the capacity of a wrapped column equals its
   length, so the first append after a restore falls into the ordinary
   grow-by-copy path and never writes through the mapping. *)

module Vec = Gus_util.Vec

type float_ba =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type dict = {
  strings : string Vec.t;
  index : (string, int) Hashtbl.t;
}

type data =
  | Floats of float_ba
  | Ints of int_ba  (** TInt values, and TBool as 0/1 *)
  | Codes of int_ba * dict  (** TStr: per-row dictionary codes *)

type t = {
  ty : Value.ty;
  mutable n : int;
  mutable data : data;
  (* Packed null bitmap, bit i = row i is NULL.  Length 0 ⇔ no NULL has
     ever been pushed; grows with capacity once one appears. *)
  mutable nulls : Bytes.t;
  mutable has_nulls : bool;
}

let float_ba n : float_ba =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let int_ba n : int_ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let dict_create () = { strings = Vec.create (); index = Hashtbl.create 16 }

let create ?(capacity = 16) ty =
  let capacity = max capacity 1 in
  let data =
    match ty with
    | Value.TFloat -> Floats (float_ba capacity)
    | Value.TInt | Value.TBool -> Ints (int_ba capacity)
    | Value.TStr -> Codes (int_ba capacity, dict_create ())
  in
  { ty; n = 0; data; nulls = Bytes.empty; has_nulls = false }

let length t = t.n
let ty t = t.ty
let has_nulls t = t.has_nulls

let capacity t =
  match t.data with
  | Floats ba -> Bigarray.Array1.dim ba
  | Ints ba | Codes (ba, _) -> Bigarray.Array1.dim ba

(* ---- null bitmap ---- *)

let nulls_bytes_for cap = (cap + 7) / 8

let is_null t i =
  t.has_nulls
  && Char.code (Bytes.unsafe_get t.nulls (i lsr 3)) land (1 lsl (i land 7)) <> 0

let ensure_nulls t =
  let need = nulls_bytes_for (capacity t) in
  if Bytes.length t.nulls < need then begin
    let b = Bytes.make need '\000' in
    Bytes.blit t.nulls 0 b 0 (Bytes.length t.nulls);
    t.nulls <- b
  end

let set_null t i =
  ensure_nulls t;
  t.has_nulls <- true;
  Bytes.set t.nulls (i lsr 3)
    (Char.chr (Char.code (Bytes.get t.nulls (i lsr 3)) lor (1 lsl (i land 7))))

(* ---- growth ---- *)

let grow t =
  let cap = capacity t in
  let cap' = max 16 (2 * cap) in
  (match t.data with
  | Floats ba ->
      let ba' = float_ba cap' in
      Bigarray.Array1.blit ba (Bigarray.Array1.sub ba' 0 cap);
      t.data <- Floats ba'
  | Ints ba ->
      let ba' = int_ba cap' in
      Bigarray.Array1.blit ba (Bigarray.Array1.sub ba' 0 cap);
      t.data <- Ints ba'
  | Codes (ba, d) ->
      let ba' = int_ba cap' in
      Bigarray.Array1.blit ba (Bigarray.Array1.sub ba' 0 cap);
      t.data <- Codes (ba', d));
  if t.has_nulls then ensure_nulls t

let ensure_room t = if t.n >= capacity t then grow t

(* ---- typed appends ---- *)

let push_float t x =
  ensure_room t;
  (match t.data with
  | Floats ba -> Bigarray.Array1.unsafe_set ba t.n x
  | Ints _ | Codes _ -> Value.type_error "Column.push_float" (Value.Float x));
  t.n <- t.n + 1

let push_int t x =
  ensure_room t;
  (match t.data with
  | Ints ba -> Bigarray.Array1.unsafe_set ba t.n x
  | Floats _ | Codes _ -> Value.type_error "Column.push_int" (Value.Int x));
  t.n <- t.n + 1

let dict_code d s =
  match Hashtbl.find_opt d.index s with
  | Some c -> c
  | None ->
      let c = Vec.length d.strings in
      Vec.push d.strings s;
      Hashtbl.add d.index s c;
      c

let push_string t s =
  ensure_room t;
  (match t.data with
  | Codes (ba, d) -> Bigarray.Array1.unsafe_set ba t.n (dict_code d s)
  | Floats _ | Ints _ -> Value.type_error "Column.push_string" (Value.Str s));
  t.n <- t.n + 1

let push_null t =
  ensure_room t;
  (* The value slot under a null bit is never read; keep it zero so
     snapshots of equal relations are byte-identical. *)
  (match t.data with
  | Floats ba -> Bigarray.Array1.unsafe_set ba t.n 0.0
  | Ints ba | Codes (ba, _) -> Bigarray.Array1.unsafe_set ba t.n 0);
  set_null t t.n;
  t.n <- t.n + 1

let push t v =
  match v with
  | Value.Null -> push_null t
  | Value.Float x -> push_float t x
  | Value.Int x -> push_int t x
  | Value.Bool b ->
      if t.ty <> Value.TBool then Value.type_error "Column.push" v;
      push_int t (if b then 1 else 0)
  | Value.Str s -> push_string t s

(* ---- reads ---- *)

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Column: index %d out of bounds [0,%d)" i t.n)

let get_float t i =
  match t.data with
  | Floats ba -> Bigarray.Array1.unsafe_get ba i
  | Ints _ | Codes _ -> Value.type_error "Column.get_float" Value.Null

let get_int t i =
  match t.data with
  | Ints ba | Codes (ba, _) -> Bigarray.Array1.unsafe_get ba i
  | Floats _ -> Value.type_error "Column.get_int" Value.Null

let get_string t i =
  match t.data with
  | Codes (ba, d) -> Vec.get d.strings (Bigarray.Array1.unsafe_get ba i)
  | Floats _ | Ints _ -> Value.type_error "Column.get_string" Value.Null

let get t i =
  check t i;
  if is_null t i then Value.Null
  else
    match t.data with
    | Floats ba -> Value.Float (Bigarray.Array1.unsafe_get ba i)
    | Ints ba ->
        let x = Bigarray.Array1.unsafe_get ba i in
        if t.ty = Value.TBool then Value.Bool (x <> 0) else Value.Int x
    | Codes (ba, d) ->
        Value.Str (Vec.get d.strings (Bigarray.Array1.unsafe_get ba i))

(* ---- gather ---- *)

(* New column holding rows [idx.(0..count-1)] of [t], in that order.
   Dictionary columns share [t]'s dictionary (it is append-only, and codes
   are only meaningful per column), so a gather never re-hashes strings. *)
let gather t idx count =
  let nulls =
    if not t.has_nulls then Bytes.empty
    else begin
      let b = Bytes.make (nulls_bytes_for (max count 1)) '\000' in
      for k = 0 to count - 1 do
        let i = idx.(k) in
        if is_null t i then
          Bytes.set b (k lsr 3)
            (Char.chr (Char.code (Bytes.get b (k lsr 3)) lor (1 lsl (k land 7))))
      done;
      b
    end
  in
  let cap = max count 1 in
  let data =
    match t.data with
    | Floats ba ->
        let out = float_ba cap in
        for k = 0 to count - 1 do
          Bigarray.Array1.unsafe_set out k (Bigarray.Array1.unsafe_get ba idx.(k))
        done;
        Floats out
    | Ints ba ->
        let out = int_ba cap in
        for k = 0 to count - 1 do
          Bigarray.Array1.unsafe_set out k (Bigarray.Array1.unsafe_get ba idx.(k))
        done;
        Ints out
    | Codes (ba, d) ->
        let out = int_ba cap in
        for k = 0 to count - 1 do
          Bigarray.Array1.unsafe_set out k (Bigarray.Array1.unsafe_get ba idx.(k))
        done;
        Codes (out, d)
  in
  { ty = t.ty; n = count; data; nulls; has_nulls = t.has_nulls }

(* Length-[n] copy: same values, nulls and (shared) dictionary, fresh
   backing so later appends to either column cannot alias. *)
let copy t =
  let cap = max t.n 1 in
  let blit_into src dst = Bigarray.Array1.blit (Bigarray.Array1.sub src 0 t.n) (Bigarray.Array1.sub dst 0 t.n) in
  let data =
    match t.data with
    | Floats ba ->
        let out = float_ba cap in
        blit_into ba out;
        Floats out
    | Ints ba ->
        let out = int_ba cap in
        blit_into ba out;
        Ints out
    | Codes (ba, d) ->
        let out = int_ba cap in
        blit_into ba out;
        Codes (out, d)
  in
  let nulls =
    if not t.has_nulls then Bytes.empty
    else Bytes.sub t.nulls 0 (nulls_bytes_for t.n)
  in
  { ty = t.ty; n = t.n; data; nulls; has_nulls = t.has_nulls }

(* An int column holding [idx.(0..count-1)] verbatim (lineage ids). *)
let of_int_array idx count =
  let cap = max count 1 in
  let ba = int_ba cap in
  for k = 0 to count - 1 do
    Bigarray.Array1.unsafe_set ba k idx.(k)
  done;
  { ty = Value.TInt; n = count; data = Ints ba; nulls = Bytes.empty;
    has_nulls = false }

(* ---- raw views (snapshot writer / vectorized kernels) ---- *)

let float_data t =
  match t.data with
  | Floats ba -> Bigarray.Array1.sub ba 0 t.n
  | Ints _ | Codes _ -> invalid_arg "Column.float_data: not a float column"

let int_data t =
  match t.data with
  | Ints ba | Codes (ba, _) -> Bigarray.Array1.sub ba 0 t.n
  | Floats _ -> invalid_arg "Column.int_data: not an int column"

let dict_strings t =
  match t.data with
  | Codes (_, d) -> Vec.to_array d.strings
  | Floats _ | Ints _ -> invalid_arg "Column.dict_strings: not a string column"

let null_bytes t =
  if not t.has_nulls then None else Some (Bytes.sub t.nulls 0 (nulls_bytes_for t.n))

(* ---- constructors over existing storage (snapshot restore) ---- *)

let nulls_of ~n = function
  | None -> (Bytes.empty, false)
  | Some b ->
      if Bytes.length b < nulls_bytes_for n then
        invalid_arg "Column: null bitmap shorter than column";
      (b, true)

let of_float_ba ?nulls (ba : float_ba) =
  let n = Bigarray.Array1.dim ba in
  let nulls, has_nulls = nulls_of ~n nulls in
  { ty = Value.TFloat; n; data = Floats ba; nulls; has_nulls }

let of_int_ba ?nulls ~ty (ba : int_ba) =
  (match ty with
  | Value.TInt | Value.TBool -> ()
  | Value.TFloat | Value.TStr ->
      invalid_arg "Column.of_int_ba: ty must be TInt or TBool");
  let n = Bigarray.Array1.dim ba in
  let nulls, has_nulls = nulls_of ~n nulls in
  { ty; n; data = Ints ba; nulls; has_nulls }

let of_codes_ba ?nulls ~dict (ba : int_ba) =
  let n = Bigarray.Array1.dim ba in
  let d = dict_create () in
  Array.iter (fun s -> ignore (dict_code d s)) dict;
  let ndict = Vec.length d.strings in
  let nulls, has_nulls = nulls_of ~n nulls in
  (* NULL slots hold the placeholder code 0, which is out of range when
     the dictionary is empty (an all-NULL column) — only validate codes
     that are actually live. *)
  let is_null i =
    has_nulls
    && Bytes.get_uint8 nulls (i lsr 3) land (1 lsl (i land 7)) <> 0
  in
  for i = 0 to n - 1 do
    let c = Bigarray.Array1.unsafe_get ba i in
    if (c < 0 || c >= ndict) && not (is_null i) then
      invalid_arg
        (Printf.sprintf "Column.of_codes_ba: code %d outside dictionary [0,%d)"
           c ndict)
  done;
  { ty = Value.TStr; n; data = Codes (ba, d); nulls; has_nulls }
