test/test_sampling.mli:
