(** Open-addressing scratch table for allocation-free group-by passes.

    The table does not store keys: a slot holds the caller-supplied hash and
    an int {e representative} (typically an index into the caller's data).
    Collisions are resolved by the caller's [equal] on representatives, so
    arbitrary key semantics (e.g. "lineage arrays compared under a subset
    mask") cost no intermediate key allocations.  Payloads live in
    caller-owned arrays indexed by slot ({!capacity} gives their size).

    Capacity is a power of two, at least twice [hint]; as long as [hint] is
    an upper bound on the number of distinct keys the load factor stays
    ≤ 0.5 and linear probing terminates.  [create]/[reset] are the only
    allocating operations — a table created once per pass is reused across
    sub-passes with O(capacity) clears. *)

type t

val create : hint:int -> t
(** [create ~hint] sizes the table for up to [hint] distinct keys. *)

val reset : t -> hint:int -> unit
(** Empty the table, growing it first if [hint] outgrew the capacity. *)

val find_or_add : t -> hash:int -> equal:(int -> int -> bool) -> repr:int -> int
(** [find_or_add t ~hash ~equal ~repr] returns the slot for the key
    represented by [repr], inserting it if absent.  [equal r r'] must decide
    whether two representatives carry the same key; it is only consulted on
    stored-hash equality.  Check {!added} to see whether the call inserted. *)

val added : t -> bool
(** Whether the most recent {!find_or_add} inserted a new key. *)

val repr_at : t -> int -> int
(** [repr_at t slot] is the representative stored in [slot] — the value a
    {!find_or_add} returning [slot] inserted.  Only meaningful for slots
    returned by {!find_or_add} since the last {!reset}. *)

val size : t -> int
(** Number of distinct keys currently stored. *)

val capacity : t -> int
(** Current slot count — the size payload arrays must have. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f slot repr] for every occupied slot. *)
