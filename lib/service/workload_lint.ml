module Lint = Gus_analysis.Lint
module D = Gus_analysis.Diagnostic
module Cost = Gus_analysis.Cost
module Absdom = Gus_analysis.Absdom
open Json

let diagnostic_json (d : D.t) =
  obj
    [ ("code", Some (Str (D.code_id d.D.code)));
      ("severity", Some (Str (D.severity_label (D.severity d))));
      ("path", Some (Str (D.path_to_string d.D.path)));
      ("node", Some (Str d.D.node));
      ("message", Some (Str d.D.message));
      ("citation", Some (Str (D.citation d.D.code)));
      ( "fix",
        Option.map
          (fun f ->
            Obj
              [ ( "action",
                  Str (Gus_analysis.Fix.action_label f.Gus_analysis.Fix.action)
                );
                ("summary", Str f.Gus_analysis.Fix.summary) ])
          d.D.fix ) ]

let analysis_json (a : Lint.analysis) =
  let c = a.Lint.cost in
  Obj
    [ ("a", Num a.Lint.sym.Gus_core.Symalg.a);
      ("class", Str (Absdom.Cls.to_string c.Cost.cls));
      ("relations", Num (float_of_int c.Cost.n_rels));
      ("coefficient_passes", Num (float_of_int c.Cost.passes));
      ("skipped_passes", Num (float_of_int c.Cost.skipped));
      ("est_groups", Num c.Cost.est_groups);
      ("predicted_cost", Num c.Cost.predicted_cost);
      ("variance_bound", Num c.Cost.variance_bound) ]

let severity_label report =
  match (Lint.errors report, Lint.warnings report, Lint.hints report) with
  | _ :: _, _, _ -> "error"
  | [], _ :: _, _ -> "warning"
  | [], [], _ :: _ -> "hint"
  | [], [], [] -> "none"

type outcome =
  | Linted of Lint.report
  | Unparsable of string

type entry = {
  file : string;
  query_index : int;
  sql : string;
  outcome : outcome;
}

type report = {
  dir : string;
  files : int;
  entries : entry list;
}

(* The corpus is every *.sql file under [dir] (recursively), in sorted
   path order so the report — and the cram output — is stable across
   filesystems. *)
let sql_files dir =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc name -> walk acc (Filename.concat path name))
        acc
        (let names = Sys.readdir path in
         Array.sort compare names;
         names)
    else if Filename.check_suffix path ".sql" then path :: acc
    else acc
  in
  List.rev (walk [] dir)

(* One file can hold several ';'-terminated statements; '--' starts a
   line comment. *)
let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some i
    else go (i + 1)
  in
  go 0

let split_statements text =
  let no_comments =
    String.split_on_char '\n' text
    |> List.map (fun line ->
           match find_sub line "--" with
           | Some i -> String.sub line 0 i
           | None -> line)
    |> String.concat "\n"
  in
  String.split_on_char ';' no_comments
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_one ?config ?engine db sql =
  match Gus_sql.Runner.lint ?config ?engine db sql with
  | _, report -> Linted report
  | exception Gus_sql.Parser.Error msg -> Unparsable msg
  | exception Gus_sql.Planner.Error msg -> Unparsable msg
  | exception Gus_sql.Lexer.Error { message; _ } ->
      Unparsable ("lexical error: " ^ message)
  | exception Gus_relational.Database.Unknown_relation r ->
      Unparsable ("unknown relation " ^ r)

let run ?config ?engine db dir =
  let files = sql_files dir in
  let entries =
    List.concat_map
      (fun file ->
        let rel =
          (* report paths relative to the corpus root, for stable output *)
          let prefix = dir ^ Filename.dir_sep in
          let pl = String.length prefix in
          if String.length file > pl && String.sub file 0 pl = prefix then
            String.sub file pl (String.length file - pl)
          else file
        in
        List.mapi
          (fun i sql ->
            { file = rel;
              query_index = i;
              sql;
              outcome = lint_one ?config ?engine db sql })
          (split_statements (read_file file)))
      files
  in
  { dir; files = List.length files; entries }

let count f entries =
  List.fold_left (fun acc e -> acc + f e) 0 entries

let entry_counts e =
  match e.outcome with
  | Unparsable _ -> (0, 0, 0)
  | Linted r ->
      ( List.length (Lint.errors r),
        List.length (Lint.warnings r),
        List.length (Lint.hints r) )

let errors rep =
  count (fun e -> let n, _, _ = entry_counts e in n) rep.entries

let unparsable rep =
  count
    (fun e -> match e.outcome with Unparsable _ -> 1 | Linted _ -> 0)
    rep.entries

(* 0 = every query parsed and linted clean of errors; 1 = at least one
   error-severity finding or unparsable query.  (The CLI reserves 124 for
   "no such corpus directory".)  These are load-bearing for CI gates —
   change them only with a new major protocol version. *)
let exit_code rep = if errors rep = 0 && unparsable rep = 0 then 0 else 1

let by_code rep =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.outcome with
      | Unparsable _ -> ()
      | Linted r ->
          List.iter
            (fun d ->
              let id = D.code_id d.D.code in
              Hashtbl.replace tbl id
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id)))
            r.Lint.diagnostics)
    rep.entries;
  List.filter_map
    (fun code ->
      let id = D.code_id code in
      Option.map (fun n -> (id, Num (float_of_int n))) (Hashtbl.find_opt tbl id))
    D.all_codes

let entry_json e =
  let base =
    [ ("file", Some (Str e.file));
      ("query", Some (Num (float_of_int e.query_index))) ]
  in
  match e.outcome with
  | Unparsable msg ->
      obj
        (base
        @ [ ("status", Some (Str "unparsable")); ("message", Some (Str msg)) ])
  | Linted r ->
      let ne, nw, nh = entry_counts e in
      obj
        (base
        @ [ ("status", Some (Str (if ne > 0 then "error" else "ok")));
            ("severity", Some (Str (severity_label r)));
            ("errors", Some (Num (float_of_int ne)));
            ("warnings", Some (Num (float_of_int nw)));
            ("hints", Some (Num (float_of_int nh)));
            ( "fixable",
              Some (Num (float_of_int (List.length (Lint.fixes r)))) );
            ( "diagnostics",
              if r.Lint.diagnostics = [] then None
              else Some (List (List.map diagnostic_json r.Lint.diagnostics)) );
            ( "analysis",
              Option.map analysis_json r.Lint.analysis ) ])

let to_json rep =
  let sum f =
    count
      (fun e ->
        let ne, nw, nh = entry_counts e in
        f (ne, nw, nh))
      rep.entries
  in
  Obj
    [ ("ok", Bool (exit_code rep = 0));
      ("op", Str "lint-workload");
      ("dir", Str rep.dir);
      ("files", Num (float_of_int rep.files));
      ("queries", Num (float_of_int (List.length rep.entries)));
      ("unparsable", Num (float_of_int (unparsable rep)));
      ("errors", Num (float_of_int (sum (fun (e, _, _) -> e))));
      ("warnings", Num (float_of_int (sum (fun (_, w, _) -> w))));
      ("hints", Num (float_of_int (sum (fun (_, _, h) -> h))));
      ("by_code", Obj (by_code rep));
      ("entries", List (List.map entry_json rep.entries)) ]
