lib/experiments/exp_size.ml: Expr Float Gus_core Gus_estimator Gus_relational Gus_stats Gus_util Harness List Printf Relation
