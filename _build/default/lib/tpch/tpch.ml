module Rng = Gus_util.Rng
module Dist = Gus_util.Dist
open Gus_relational

type config = {
  customers_per_scale : int;
  orders_per_customer : int;
  max_lines_per_order : int;
  parts_per_scale : int;
  suppliers_per_scale : int;
  part_skew : float;
  price_skew : float;
}

let default_config =
  { customers_per_scale = 1500;
    orders_per_customer = 10;
    max_lines_per_order = 7;
    parts_per_scale = 2000;
    suppliers_per_scale = 100;
    part_skew = 0.8;
    price_skew = 2.5 }

let col name ty = { Schema.name; ty }

let customer_schema =
  Schema.make
    [ col "c_custkey" Value.TInt;
      col "c_nationkey" Value.TInt;
      col "c_acctbal" Value.TFloat;
      col "c_mktsegment" Value.TStr ]

let orders_schema =
  Schema.make
    [ col "o_orderkey" Value.TInt;
      col "o_custkey" Value.TInt;
      col "o_totalprice" Value.TFloat;
      col "o_orderdate" Value.TInt;
      col "o_orderpriority" Value.TStr ]

let lineitem_schema =
  Schema.make
    [ col "l_orderkey" Value.TInt;
      col "l_linenumber" Value.TInt;
      col "l_partkey" Value.TInt;
      col "l_suppkey" Value.TInt;
      col "l_quantity" Value.TFloat;
      col "l_extendedprice" Value.TFloat;
      col "l_discount" Value.TFloat;
      col "l_tax" Value.TFloat;
      col "l_shipdate" Value.TInt;
      col "l_returnflag" Value.TStr ]

let part_schema =
  Schema.make
    [ col "p_partkey" Value.TInt;
      col "p_retailprice" Value.TFloat;
      col "p_brand" Value.TStr;
      col "p_size" Value.TInt ]

let supplier_schema =
  Schema.make
    [ col "s_suppkey" Value.TInt;
      col "s_nationkey" Value.TInt;
      col "s_acctbal" Value.TFloat ]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "HOUSEHOLD"; "MACHINERY" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let brands = [| "Brand#11"; "Brand#12"; "Brand#23"; "Brand#34"; "Brand#55" |]
let flags = [| "A"; "N"; "R" |]

let pick rng a = a.(Rng.int rng (Array.length a))

let scaled scale n = max 1 (int_of_float (Float.round (scale *. float_of_int n)))

let generate ?(config = default_config) ~seed ~scale () =
  if scale <= 0.0 then invalid_arg "Tpch.generate: scale must be positive";
  let rng = Rng.create seed in
  let db = Database.create () in

  let n_customers = scaled scale config.customers_per_scale in
  let n_parts = scaled scale config.parts_per_scale in
  let n_suppliers = scaled scale config.suppliers_per_scale in

  let part = Relation.create_base ~name:"part" part_schema in
  for pk = 1 to n_parts do
    Relation.append_row part
      [| Value.Int pk;
         Value.Float (900.0 +. Rng.float_range rng 0.0 1200.0);
         Value.Str (pick rng brands);
         Value.Int (Dist.uniform_int rng 1 50) |]
  done;
  Database.add db part;

  let supplier = Relation.create_base ~name:"supplier" supplier_schema in
  for sk = 1 to n_suppliers do
    Relation.append_row supplier
      [| Value.Int sk;
         Value.Int (Dist.uniform_int rng 0 24);
         Value.Float (Rng.float_range rng (-999.0) 9999.0) |]
  done;
  Database.add db supplier;

  let customer = Relation.create_base ~name:"customer" customer_schema in
  for ck = 1 to n_customers do
    Relation.append_row customer
      [| Value.Int ck;
         Value.Int (Dist.uniform_int rng 0 24);
         Value.Float (Rng.float_range rng (-999.0) 9999.0);
         Value.Str (pick rng segments) |]
  done;
  Database.add db customer;

  let part_zipf =
    if config.part_skew <= 0.0 then None
    else Some (Dist.zipf_create ~n:n_parts ~s:config.part_skew)
  in
  let draw_part () =
    match part_zipf with
    | None -> Dist.uniform_int rng 1 n_parts
    | Some z -> Dist.zipf_draw z rng
  in
  let draw_price base =
    if Float.is_integer config.price_skew && config.price_skew = infinity then base
    else base *. (Dist.pareto rng ~scale:1.0 ~shape:config.price_skew)
  in

  let orders = Relation.create_base ~name:"orders" orders_schema in
  let lineitem = Relation.create_base ~name:"lineitem" lineitem_schema in
  let orderkey = ref 0 in
  for ck = 1 to n_customers do
    for _ = 1 to config.orders_per_customer do
      incr orderkey;
      let ok = !orderkey in
      let nlines = Dist.uniform_int rng 1 config.max_lines_per_order in
      let total = ref 0.0 in
      for ln = 1 to nlines do
        let quantity = float_of_int (Dist.uniform_int rng 1 50) in
        let base = Rng.float_range rng 900.0 2100.0 in
        let extended = draw_price (quantity *. base /. 10.0) in
        total := !total +. extended;
        Relation.append_row lineitem
          [| Value.Int ok;
             Value.Int ln;
             Value.Int (draw_part ());
             Value.Int (Dist.uniform_int rng 1 n_suppliers);
             Value.Float quantity;
             Value.Float extended;
             Value.Float (float_of_int (Dist.uniform_int rng 0 10) /. 100.0);
             Value.Float (float_of_int (Dist.uniform_int rng 0 8) /. 100.0);
             Value.Int (Dist.uniform_int rng 0 2555);
             Value.Str (pick rng flags) |]
      done;
      Relation.append_row orders
        [| Value.Int ok;
           Value.Int ck;
           Value.Float !total;
           Value.Int (Dist.uniform_int rng 0 2555);
           Value.Str (pick rng priorities) |]
    done
  done;
  Database.add db orders;
  Database.add db lineitem;
  db
