type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      total = a.total +. b.total }
  end

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let variance_population t = if t.n = 0 then 0.0 else t.m2 /. float_of_int t.n
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let total t = t.total

let of_array a =
  let t = create () in
  Array.iter (add t) a;
  t

let quantile_sorted a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Summary.quantile_sorted: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile_sorted: q not in [0,1]";
  if n = 1 then a.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor pos) in
    let frac = pos -. float_of_int i in
    if i >= n - 1 then a.(n - 1) else a.(i) +. (frac *. (a.(i + 1) -. a.(i)))
  end

let quantile a q =
  let b = Array.copy a in
  Array.sort compare b;
  quantile_sorted b q

let mean_of a = mean (of_array a)

let rmse ~truth a =
  if Array.length a = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. truth in
        acc := !acc +. (d *. d))
      a;
    sqrt (!acc /. float_of_int (Array.length a))
  end

let relative_error ~truth x =
  if truth = 0.0 then if x = 0.0 then 0.0 else infinity
  else Float.abs (x -. truth) /. Float.abs truth
