(* Tests for the SQL dialect frontend: lexer, parser, planner, runner. *)

module Token = Gus_sql.Token
module Lexer = Gus_sql.Lexer
module Ast = Gus_sql.Ast
module Parser = Gus_sql.Parser
module Planner = Gus_sql.Planner
module Runner = Gus_sql.Runner
module Splan = Gus_core.Splan
module Sampler = Gus_sampling.Sampler
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let close ?(eps = 1e-9) what expected actual =
  check (Alcotest.float eps) what expected actual

(* ---- lexer ---- *)

let token_testable = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (Token.to_string t)) ( = )

let test_lex_basic () =
  check (Alcotest.list token_testable) "select star"
    [ Token.SELECT; Token.STAR; Token.FROM; Token.IDENT "t"; Token.EOF ]
    (Lexer.tokenize "SELECT * FROM t")

let test_lex_numbers () =
  check (Alcotest.list token_testable) "ints and floats"
    [ Token.INT 42; Token.FLOAT 1.5; Token.FLOAT 0.001; Token.FLOAT 2e3; Token.EOF ]
    (Lexer.tokenize "42 1.5 0.001 2e3")

let test_lex_operators () =
  check (Alcotest.list token_testable) "comparison ops"
    [ Token.LE; Token.GE; Token.NEQ; Token.NEQ; Token.LT; Token.GT; Token.EQ; Token.EOF ]
    (Lexer.tokenize "<= >= <> != < > =")

let test_lex_strings () =
  check (Alcotest.list token_testable) "string with escape"
    [ Token.STRING "it's"; Token.EOF ]
    (Lexer.tokenize "'it''s'")

let test_lex_comments_case () =
  check (Alcotest.list token_testable) "comment skipped, case folded"
    [ Token.SELECT; Token.IDENT "x"; Token.EOF ]
    (Lexer.tokenize "select -- a comment\n X")

let test_lex_errors () =
  check_bool "unterminated string" true
    (try ignore (Lexer.tokenize "'abc"); false with Lexer.Error _ -> true);
  check_bool "bad char" true
    (try ignore (Lexer.tokenize "SELECT @"); false with Lexer.Error _ -> true)

(* ---- parser ---- *)

let test_parse_minimal () =
  let q = Parser.parse "SELECT SUM(x) FROM t" in
  check_int "one item" 1 (List.length q.Ast.items);
  check_int "one from" 1 (List.length q.Ast.from);
  check_bool "no where" true (q.Ast.where = None);
  check_bool "no view" true (q.Ast.view = None)

let test_parse_paper_intro_query () =
  let q =
    Parser.parse
      "CREATE VIEW approx (lo, hi) AS \
       SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05), \
              QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95) \
       FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) \
       WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0;"
  in
  check_bool "view parsed" true (q.Ast.view = Some ("approx", [ "lo"; "hi" ]));
  check_int "two quantile items" 2 (List.length q.Ast.items);
  (match q.Ast.items with
  | [ { agg = Ast.Quantile (Ast.Sum _, q1); _ }; { agg = Ast.Quantile (Ast.Sum _, q2); _ } ] ->
      close "q1" 0.05 q1;
      close "q2" 0.95 q2
  | _ -> Alcotest.fail "expected two quantile items");
  match q.Ast.from with
  | [ { relation = "lineitem"; sample = Some (Ast.Percent 10.0) };
      { relation = "orders"; sample = Some (Ast.Rows 1000) } ] ->
      ()
  | _ -> Alcotest.fail "from items mis-parsed"

let test_parse_aliases () =
  let q = Parser.parse "SELECT SUM(x) AS total, COUNT(*) n FROM t" in
  match q.Ast.items with
  | [ { alias = Some "total"; _ }; { agg = Ast.Count_star; alias = Some "n" } ] -> ()
  | _ -> Alcotest.fail "aliases mis-parsed"

let test_parse_aggregates () =
  let q = Parser.parse "SELECT SUM(a), COUNT(*), COUNT(b), AVG(c) FROM t" in
  match List.map (fun i -> i.Ast.agg) q.Ast.items with
  | [ Ast.Sum _; Ast.Count_star; Ast.Count _; Ast.Avg _ ] -> ()
  | _ -> Alcotest.fail "aggregate list"

let test_parse_tablesample_variants () =
  let q =
    Parser.parse
      "SELECT SUM(x) FROM a TABLESAMPLE BERNOULLI (5 PERCENT), \
       b TABLESAMPLE SYSTEM (20 PERCENT), c TABLESAMPLE (15 ROWS) REPEATABLE (7), d"
  in
  match List.map (fun f -> f.Ast.sample) q.Ast.from with
  | [ Some (Ast.Percent 5.0); Some (Ast.System_percent 20.0); Some (Ast.Rows 15); None ] -> ()
  | _ -> Alcotest.fail "tablesample variants"

let test_parse_expression_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  check Alcotest.string "mul binds tighter" "(1 + (2 * 3))" (Expr.to_string e);
  let e2 = Parser.parse_expr "(1 + 2) * 3" in
  check Alcotest.string "parens" "((1 + 2) * 3)" (Expr.to_string e2);
  let e3 = Parser.parse_expr "a = 1 AND b < 2 OR c > 3" in
  check Alcotest.string "bool precedence" "(((a = 1) AND (b < 2)) OR (c > 3))"
    (Expr.to_string e3);
  let e4 = Parser.parse_expr "NOT a = 1" in
  check_bool "NOT parses" true (match e4 with Expr.Not _ -> true | _ -> false)

let test_parse_unary_minus () =
  let e = Parser.parse_expr "-x + 1" in
  check Alcotest.string "unary minus" "(-(x) + 1)" (Expr.to_string e)

let test_parse_errors () =
  let fails sql = try ignore (Parser.parse sql); false with Parser.Error _ -> true in
  check_bool "missing FROM" true (fails "SELECT SUM(x)");
  check_bool "bare column agg" true (fails "SELECT x FROM t");
  check_bool "trailing junk" true (fails "SELECT SUM(x) FROM t extra stuff here");
  check_bool "bad quantile level" true
    (fails "SELECT QUANTILE(SUM(x), 1.5) FROM t");
  check_bool "nested quantile" true
    (fails "SELECT QUANTILE(QUANTILE(SUM(x), 0.5), 0.5) FROM t");
  check_bool "percent out of range" true
    (fails "SELECT SUM(x) FROM t TABLESAMPLE (150 PERCENT)");
  check_bool "system rows" true
    (fails "SELECT SUM(x) FROM t TABLESAMPLE SYSTEM (10 ROWS)");
  check_bool "fractional rows" true
    (fails "SELECT SUM(x) FROM t TABLESAMPLE (1.5 ROWS)")

let test_parse_pp_roundtrip () =
  let sql =
    "SELECT SUM(a * b) AS s FROM t TABLESAMPLE (10 PERCENT), u WHERE x = y"
  in
  let q = Parser.parse sql in
  let printed = Format.asprintf "@[%a@]" Ast.pp_query q in
  let q2 = Parser.parse printed in
  check_bool "parse(pp(parse sql)) = parse sql" true (q = q2)

(* qcheck: pretty-print/parse roundtrip over random expressions. *)

let expr_gen =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ (int_range 0 1000 >|= Expr.int);
        (float_range 0.0 100.0 >|= fun f -> Expr.float (Float.round (f *. 100.0) /. 100.0));
        oneofl [ Expr.col "a"; Expr.col "b"; Expr.col "c_name" ];
        return (Expr.bool true);
        return Expr.null ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      oneof
        [ leaf;
          (let* op = oneofl [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div ] in
           let* l = go (depth - 1) in
           let* r = go (depth - 1) in
           return (Expr.Bin (op, l, r)));
          (let* op = oneofl [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
           let* l = go (depth - 1) in
           let* r = go (depth - 1) in
           return (Expr.Cmp (op, l, r)));
          (let* l = go (depth - 1) in
           let* r = go (depth - 1) in
           return (Expr.And (l, r)));
          (let* l = go (depth - 1) in
           let* r = go (depth - 1) in
           return (Expr.Or (l, r)));
          (go (depth - 1) >|= fun e -> Expr.Not e);
          (go (depth - 1) >|= fun e -> Expr.Neg e) ]
  in
  go 3

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"expression pp/parse roundtrip" ~count:300 expr_gen
    (fun e ->
      let printed = Expr.to_string e in
      let reparsed = Parser.parse_expr printed in
      (* Compare via re-printing: integer literals may reparse as the same
         value but the AST uses a canonical form already, so ASTs should
         match exactly. *)
      reparsed = e || Expr.to_string reparsed = printed)

let prop_query_roundtrip =
  QCheck2.Test.make ~name:"query pp/parse roundtrip" ~count:200
    QCheck2.Gen.(pair expr_gen (int_range 1 99))
    (fun (e, pct) ->
      let q =
        { Ast.view = None;
          items = [ { Ast.agg = Ast.Sum e; alias = Some "s" } ];
          from = [ { Ast.relation = "t"; sample = Some (Ast.Percent (float_of_int pct)) } ];
          where = Some e;
          group_by = [] }
      in
      let printed = Format.asprintf "@[%a@]" Ast.pp_query q in
      let reparsed = Parser.parse printed in
      (* Integer-valued float literals legitimately reparse as ints
         (%g prints 42.0 as "42"), so compare by print-fixpoint. *)
      reparsed = q
      || Format.asprintf "@[%a@]" Ast.pp_query reparsed = printed)

let sql_qcheck = List.map QCheck_alcotest.to_alcotest [ prop_expr_roundtrip; prop_query_roundtrip ]

(* ---- planner ---- *)

let db = lazy (Gus_tpch.Tpch.generate ~seed:9 ~scale:0.05 ())

let compile sql = (Planner.compile (Lazy.force db) (Parser.parse sql)).Planner.plan

let test_plan_single_table () =
  match compile "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT)" with
  | Splan.Sample (Sampler.Bernoulli p, Splan.Scan "lineitem") ->
      close "rate" 0.1 p
  | p -> Alcotest.failf "unexpected plan %s" (Format.asprintf "%a" Splan.pp p)

let test_plan_join_detected () =
  match
    compile
      "SELECT SUM(l_quantity) FROM lineitem, orders WHERE l_orderkey = o_orderkey"
  with
  | Splan.Equi_join { left = Splan.Scan "lineitem"; right = Splan.Scan "orders"; _ } -> ()
  | p -> Alcotest.failf "expected equi join, got %s" (Format.asprintf "%a" Splan.pp p)

let test_plan_single_table_predicate_pushed () =
  match
    compile
      "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT), orders \
       WHERE l_orderkey = o_orderkey AND l_quantity > 5"
  with
  | Splan.Equi_join { left = Splan.Select (_, Splan.Sample _); _ } -> ()
  | p -> Alcotest.failf "predicate not pushed: %s" (Format.asprintf "%a" Splan.pp p)

let test_plan_cross_when_no_key () =
  match compile "SELECT SUM(l_quantity) FROM lineitem, part" with
  | Splan.Cross _ -> ()
  | p -> Alcotest.failf "expected cross, got %s" (Format.asprintf "%a" Splan.pp p)

let test_plan_residual_predicate () =
  (* A non-key multi-relation predicate lands in a top selection. *)
  match
    compile
      "SELECT SUM(l_quantity) FROM lineitem, orders \
       WHERE l_orderkey = o_orderkey AND l_quantity < o_totalprice"
  with
  | Splan.Select (_, Splan.Equi_join _) -> ()
  | p -> Alcotest.failf "expected top selection, got %s" (Format.asprintf "%a" Splan.pp p)

let test_plan_errors () =
  let fails sql =
    try ignore (compile sql); false with Planner.Error _ -> true
  in
  check_bool "unknown relation" true (fails "SELECT SUM(x) FROM nope");
  check_bool "unknown column" true
    (fails "SELECT SUM(nope_col) FROM lineitem WHERE nope_col > 1");
  check_bool "self join" true (fails "SELECT SUM(l_quantity) FROM lineitem, lineitem");
  check_bool "system percent maps to block" true
    (match compile "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE SYSTEM (10 PERCENT)" with
    | Splan.Sample (Sampler.Block { p; _ }, _) -> Float.abs (p -. 0.1) < 1e-12
    | _ -> false)

let test_sampler_of_spec () =
  check_bool "100 percent is no-op" true (Planner.sampler_of_spec (Ast.Percent 100.0) = None);
  check_bool "system 100 is no-op" true
    (Planner.sampler_of_spec (Ast.System_percent 100.0) = None);
  check_bool "rows" true (Planner.sampler_of_spec (Ast.Rows 5) = Some (Sampler.Wor 5))

(* ---- runner ---- *)

let test_run_exact_no_sampling () =
  let db = Lazy.force db in
  let result =
    Runner.run db "SELECT SUM(l_quantity) AS q, COUNT(*) AS n FROM lineitem"
  in
  let exact =
    Runner.run_exact db "SELECT SUM(l_quantity) AS q, COUNT(*) AS n FROM lineitem"
  in
  List.iter2
    (fun cell (label, truth) ->
      check Alcotest.string "label" label cell.Runner.label;
      close ~eps:1e-6 "no sampling = exact" truth cell.Runner.value;
      close "zero sd" 0.0 cell.Runner.stddev)
    result.Runner.cells exact

let test_run_sampled_reasonable () =
  let db = Lazy.force db in
  let sql =
    "SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (30 PERCENT), orders \
     WHERE l_orderkey = o_orderkey"
  in
  let result = Runner.run ~seed:3 db sql in
  let truth = snd (List.hd (Runner.run_exact db sql)) in
  let cell = List.hd result.Runner.cells in
  check_bool "estimate within 6 sd" true
    (Float.abs (cell.Runner.value -. truth) <= 6.0 *. cell.Runner.stddev);
  check_bool "chebyshev contains truth" true
    (Gus_stats.Interval.contains cell.Runner.ci95_chebyshev truth)

let test_run_quantile_brackets () =
  let db = Lazy.force db in
  let sql =
    "SELECT QUANTILE(SUM(l_quantity), 0.05) AS lo, QUANTILE(SUM(l_quantity), 0.95) AS hi \
     FROM lineitem TABLESAMPLE (50 PERCENT)"
  in
  let result = Runner.run ~seed:4 db sql in
  match result.Runner.cells with
  | [ lo; hi ] -> check_bool "lo < hi" true (lo.Runner.value < hi.Runner.value)
  | _ -> Alcotest.fail "two cells expected"

let test_run_avg_count () =
  let db = Lazy.force db in
  let sql =
    "SELECT AVG(l_quantity), COUNT(l_quantity) FROM lineitem TABLESAMPLE (40 PERCENT)"
  in
  let result = Runner.run ~seed:5 db sql in
  let truth = Runner.run_exact db sql in
  List.iter2
    (fun cell (_, t) ->
      check_bool "within 20%" true (Float.abs (cell.Runner.value -. t) < 0.2 *. t))
    result.Runner.cells truth

let test_parse_group_by () =
  let q = Parser.parse "SELECT SUM(x) FROM t GROUP BY k, j + 1" in
  check_int "two keys" 2 (List.length q.Ast.group_by);
  let q2 = Parser.parse "SELECT SUM(x) FROM t" in
  check_int "no keys" 0 (List.length q2.Ast.group_by)

let test_run_group_by_exact () =
  (* Without sampling, per-group estimates equal the exact group sums. *)
  let db = Lazy.force db in
  let sql = "SELECT SUM(l_quantity) AS q FROM lineitem GROUP BY l_returnflag" in
  let result = Runner.run db sql in
  let exact = Runner.run_exact_groups db sql in
  check_bool "no whole-query cells" true (result.Runner.cells = []);
  check_int "three flags" 3 (List.length result.Runner.groups);
  List.iter
    (fun g ->
      let truth = List.assoc "q" (List.assoc g.Runner.keys exact) in
      let cell = List.hd g.Runner.group_cells in
      close ~eps:1e-6 "group value exact" truth cell.Runner.value;
      close "zero sd" 0.0 cell.Runner.stddev)
    result.Runner.groups

let test_run_group_by_sampled () =
  let db = Lazy.force db in
  let sql =
    "SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (40 PERCENT) \
     GROUP BY l_returnflag"
  in
  let result = Runner.run ~seed:7 db sql in
  let exact = Runner.run_exact_groups db sql in
  check_int "three flags observed" 3 (List.length result.Runner.groups);
  List.iter
    (fun g ->
      let truth = List.assoc "q" (List.assoc g.Runner.keys exact) in
      let cell = List.hd g.Runner.group_cells in
      check_bool "group estimate within 5 sd" true
        (Float.abs (cell.Runner.value -. truth) <= 5.0 *. cell.Runner.stddev))
    result.Runner.groups

let test_run_deterministic_seed () =
  let db = Lazy.force db in
  let sql = "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (20 PERCENT)" in
  let a = Runner.run ~seed:6 db sql and b = Runner.run ~seed:6 db sql in
  close "same seed same estimate"
    (List.hd a.Runner.cells).Runner.value
    (List.hd b.Runner.cells).Runner.value

(* Differential test: for random conjunctive queries, the planner's
   sample-free execution must agree with a brute-force evaluator (cross
   product of the FROM relations, then one big filter). *)

let tiny_db =
  lazy
    (Gus_tpch.Tpch.generate ~seed:4242 ~scale:0.02
       ~config:{ Gus_tpch.Tpch.default_config with
                 customers_per_scale = 200; orders_per_customer = 4;
                 max_lines_per_order = 3 } ())

let brute_force_sum db relations pred f =
  let rels = List.map (Database.find db) relations in
  let product =
    match rels with
    | [] -> invalid_arg "empty"
    | first :: rest -> List.fold_left Ops.cross first rest
  in
  let keep =
    match pred with
    | None -> fun _ -> true
    | Some p -> Expr.bind_predicate product.Relation.schema p
  in
  let ev = Expr.bind_float product.Relation.schema f in
  Relation.fold (fun acc tup -> if keep tup then acc +. ev tup else acc) 0.0 product

let random_query_gen =
  let open QCheck2.Gen in
  let joins =
    [ ([ "lineitem" ], []);
      ([ "lineitem"; "orders" ], [ "l_orderkey = o_orderkey" ]);
      ([ "orders"; "customer" ], [ "o_custkey = c_custkey" ]);
      ([ "lineitem"; "orders"; "customer" ],
       [ "l_orderkey = o_orderkey"; "o_custkey = c_custkey" ]) ]
  in
  let filters =
    [ "l_quantity > 25"; "l_discount <= 0.05"; "o_totalprice < 20000";
      "c_nationkey < 12"; "l_extendedprice > 2000"; "o_orderdate >= 1000" ]
  in
  let* shape = oneofl joins in
  let relations, keys = shape in
  let applicable =
    List.filter
      (fun f ->
        let prefix = String.sub f 0 1 in
        List.exists (fun r -> String.sub r 0 1 = prefix) relations)
      filters
  in
  let* chosen = list_size (int_range 0 (List.length applicable))
                  (oneofl applicable) in
  let chosen = List.sort_uniq compare chosen in
  return (relations, keys @ chosen)

let prop_planner_matches_brute_force =
  QCheck2.Test.make ~name:"planner agrees with brute force" ~count:60
    random_query_gen
    (fun (relations, preds) ->
      let db = Lazy.force tiny_db in
      let where = if preds = [] then "" else " WHERE " ^ String.concat " AND " preds in
      let sql =
        "SELECT SUM(l_quantity) AS s FROM " ^ String.concat ", " relations ^ where
      in
      (* Only run when lineitem is in scope for the aggregate. *)
      if not (List.mem "lineitem" relations) then true
      else begin
        let planner_answer = List.assoc "s" (Runner.run_exact db sql) in
        let pred =
          if preds = [] then None
          else Some (Parser.parse_expr (String.concat " AND " preds))
        in
        let reference =
          brute_force_sum db relations pred (Expr.col "l_quantity")
        in
        Float.abs (planner_answer -. reference)
        <= 1e-6 *. Float.max 1.0 (Float.abs reference)
      end)

let differential_qcheck =
  List.map QCheck_alcotest.to_alcotest [ prop_planner_matches_brute_force ]

let () =
  Alcotest.run "gus_sql"
    [ ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "strings" `Quick test_lex_strings;
          Alcotest.test_case "comments/case" `Quick test_lex_comments_case;
          Alcotest.test_case "errors" `Quick test_lex_errors ] );
      ( "parser",
        [ Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "paper intro query" `Quick test_parse_paper_intro_query;
          Alcotest.test_case "aliases" `Quick test_parse_aliases;
          Alcotest.test_case "aggregates" `Quick test_parse_aggregates;
          Alcotest.test_case "tablesample variants" `Quick test_parse_tablesample_variants;
          Alcotest.test_case "expression precedence" `Quick test_parse_expression_precedence;
          Alcotest.test_case "unary minus" `Quick test_parse_unary_minus;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_parse_pp_roundtrip ] );
      ("qcheck", sql_qcheck);
      ("differential", differential_qcheck);
      ( "planner",
        [ Alcotest.test_case "single table" `Quick test_plan_single_table;
          Alcotest.test_case "join detection" `Quick test_plan_join_detected;
          Alcotest.test_case "predicate pushdown" `Quick test_plan_single_table_predicate_pushed;
          Alcotest.test_case "cross product fallback" `Quick test_plan_cross_when_no_key;
          Alcotest.test_case "residual predicate" `Quick test_plan_residual_predicate;
          Alcotest.test_case "errors" `Quick test_plan_errors;
          Alcotest.test_case "sampler_of_spec" `Quick test_sampler_of_spec ] );
      ( "runner",
        [ Alcotest.test_case "no sampling = exact" `Quick test_run_exact_no_sampling;
          Alcotest.test_case "sampled reasonable" `Quick test_run_sampled_reasonable;
          Alcotest.test_case "quantile brackets" `Quick test_run_quantile_brackets;
          Alcotest.test_case "avg/count" `Quick test_run_avg_count;
          Alcotest.test_case "group by parsing" `Quick test_parse_group_by;
          Alcotest.test_case "group by exact" `Quick test_run_group_by_exact;
          Alcotest.test_case "group by sampled" `Quick test_run_group_by_sampled;
          Alcotest.test_case "deterministic in seed" `Quick test_run_deterministic_seed ] ) ]
