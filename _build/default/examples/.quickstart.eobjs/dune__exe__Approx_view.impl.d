examples/approx_view.ml: Gus_sql Gus_tpch List Printf
