(** A materialized relation: schema, lineage schema, and rows — stored
    either as typed columns ({!Column}) or as boxed tuple rows.

    Base relations have a single-entry lineage schema (their own name) and
    row ids 0..n−1; derived relations carry whatever lineage their operators
    produced.

    The two storages are observationally identical through the row API
    ({!tuple}, {!iter}, {!fold}): a columnar relation materializes each
    tuple on demand with exactly the values and lineage the row engine
    would have stored.  Vectorized kernels ({!Ops},
    {!Gus_sampling.Sampler}) pattern-match on {!store} to reach the raw
    columns and fall back to the row API otherwise. *)

type lineage_store =
  | Identity  (** lineage of row [i] is [[| i |]] (base relations) *)
  | Explicit of Column.t array
      (** one int column per lineage-schema slot *)

type cols = {
  mutable cn : int;  (** row count *)
  ccols : Column.t array;  (** one per schema column, all length [cn] *)
  mutable clineage : lineage_store;
}

type store = Rows of Tuple.t Gus_util.Vec.t | Cols of cols

type t = {
  name : string;
  schema : Schema.t;
  lineage_schema : Lineage.schema;
  store : store;
}

val store : t -> store

val create_base :
  ?storage:[ `Cols | `Rows ] -> ?capacity:int -> name:string -> Schema.t -> t
(** Empty base relation; rows appended with {!append_row} get consecutive
    row ids.  Columnar by default; [~storage:`Rows] keeps the boxed
    tuple-vector layout (used as the oracle in parity tests). *)

val derived : ?name:string -> Schema.t -> Lineage.schema -> t
(** Empty row-backed derived relation (the row-path operators append
    tuples one at a time). *)

val derived_cols : ?name:string -> Schema.t -> Lineage.schema -> cols -> t
(** Columnar derived relation over already-built columns (vectorized
    kernel outputs).  Checks column lengths and lineage width. *)

val append_row : t -> Value.t array -> unit
(** Base relations only (lineage schema must be the relation itself);
    type-checks against the schema. *)

val append_tuple : t -> Tuple.t -> unit
val cardinality : t -> int

val lineage_width : cols -> int

val lineage_id : cols -> slot:int -> int -> int
(** Lineage id of row [i] at [slot] without materializing the array. *)

val gather_store : cols -> int array -> int -> cols
(** Columnar store holding rows [idx.(0..count-1)] of [c] in that order,
    lineage included (identity lineage becomes an explicit column of the
    gathered row ids — exactly what the row path would carry). *)

val gather_rows : ?name:string -> t -> cols -> int array -> int -> t
(** Relation wrapper over {!gather_store}: same schema and lineage
    schema, rows restricted/reordered to [idx]. *)

val to_rows : t -> t
(** Row-backed copy (identity on row-backed relations).  Test oracle. *)

val tuple : t -> int -> Tuple.t
val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc
val column_values : t -> string -> Value.t array
val pp : Format.formatter -> t -> unit
(** Header plus first rows (for debugging). *)

val to_csv_string : t -> string

val sum_column : t -> string -> float
(** Exact SUM over a numeric column, [Null]s contribute 0; a single
    unboxed pass on columnar storage. *)
