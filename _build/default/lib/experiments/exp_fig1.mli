(** T1 — Figure 1: GUS parameters of the basic sampling methods.

    Prints the formula values for Bernoulli(p) and WOR(n, N) next to the
    paper's closed forms, then validates both against Monte-Carlo inclusion
    frequencies measured on a small population (where 30 000 repetitions
    give tight frequencies). *)

val run : unit -> unit

val mc_inclusion :
  sampler:Gus_sampling.Sampler.t ->
  population:int ->
  trials:int ->
  seed:int ->
  float * float
(** Empirical (a, b_∅) for a single relation: the frequency with which row
    0 is sampled, and with which rows 0 and 1 are both sampled. *)
