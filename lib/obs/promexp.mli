(** Prometheus text-format exposition of the {!Metrics} registry.

    Dotted metric names become [gus_]-prefixed underscore names
    ([cache.hits] → [gus_cache_hits_total]); counters get the [_total]
    suffix, histograms expose cumulative [_bucket{le="..."}] series
    ending in [le="+Inf"] plus [_sum]/[_count], all per the text
    exposition format v0.0.4.  DESIGN.md §12 has the full name map. *)

val mangle : string -> string
(** [mangle "cache.hits"] is ["gus_cache_hits"] — the Prometheus base
    name before any [_total]/[_bucket] suffix. *)

val render : unit -> string
(** One scrape body covering every registered instrument, sorted by
    name within each kind (counters, then gauges, then histograms). *)

val write_file : string -> unit
(** [write_file path] atomically replaces [path] with {!render}'s
    output (write to [path ^ ".tmp"], then rename), so a concurrent
    reader never observes a partial exposition. *)
