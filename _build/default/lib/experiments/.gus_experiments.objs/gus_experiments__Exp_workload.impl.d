lib/experiments/exp_workload.ml: Array Gus_sql Gus_stats Gus_util Harness List Printf Workload
