lib/util/subset.ml: Array Format List Printf String
