type 'a t = {
  mutable data : 'a array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  ignore (max capacity 1);
  { data = [||]; size = 0 }

let make n x = { data = Array.make (max n 1) x; size = n }

let length v = v.size
let is_empty v = v.size = 0

let check v i =
  if i < 0 || i >= v.size then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.size)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  if cap = 0 then v.data <- Array.make 16 x
  else begin
    let data = Array.make (2 * cap) x in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end

let push v x =
  if v.size >= Array.length v.data then grow v x;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then None
  else begin
    v.size <- v.size - 1;
    Some v.data.(v.size)
  end

let clear v = v.size <- 0

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.size

let map f v =
  if v.size = 0 then { data = [||]; size = 0 }
  else begin
    let data = Array.make v.size (f v.data.(0)) in
    for i = 0 to v.size - 1 do
      data.(i) <- f v.data.(i)
    done;
    { data; size = v.size }
  end

let filter p v =
  let out = { data = [||]; size = 0 } in
  iter (fun x -> if p x then push out x) v;
  out

let exists p v =
  let rec go i = i < v.size && (p v.data.(i) || go (i + 1)) in
  go 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let to_list v = Array.to_list (to_array v)
let of_array a = { data = Array.copy a; size = Array.length a }
let of_list l = of_array (Array.of_list l)

let append dst src = iter (fun x -> push dst x) src

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.size
