The CLI lists its experiments:

  $ gusdb experiments --list | head -4
  T1   GUS parameters of known sampling methods           [Figure 1]
  T2   Query 1 GUS derivation                             [Examples 1-3, Figure 2]
  T3   4-relation plan transformation                     [Figure 4]
  T4   Subsampling pipeline coefficients                  [Figure 5, Examples 5-6]

Plan explanation shows the SOA rewrite and the top GUS (deterministic):

  $ gusdb plan -s 0.01 "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (5 ROWS) WHERE l_orderkey = o_orderkey"
  sampling plan:
  join l_orderkey = o_orderkey
    Bernoulli(0.1)
      lineitem
    WOR(5)
      orders
  
  SOA rewrite (5 steps):
    translate Bernoulli(0.1)                 a = 0.1
    compact Bernoulli(0.1) into input        a = 0.1
    translate WOR(5)                         a = 0.0333333
    compact WOR(5) into input                a = 0.0333333
    join (Prop 6)                            a = 0.00333333
  
  top GUS quasi-operator:
    G over [lineitem,orders]: a = 0.00333333, b{} = 8.94855e-06,
    b{lineitem} = 8.94855e-05, b{orders} = 0.000333333,
    b{lineitem,orders} = 0.00333333
  
  sample-free skeleton:
  join l_orderkey = o_orderkey
    lineitem
    orders
  

Queries are deterministic under a fixed seed:

  $ gusdb query -s 0.05 --seed 7 "SELECT COUNT(*) AS n FROM lineitem TABLESAMPLE (50 PERCENT)"
  sample tuples: 1528
  n = 3056 (sd 55.28)
    95% normal    [2947.65, 3164.35] (95% normal, est=3056, sd=55.2811)
    95% chebyshev [2808.78, 3303.22] (95% chebyshev, est=3056, sd=55.2811)
  

Data generation writes one CSV per relation:

  $ gusdb gen -s 0.01 -o out >/dev/null && ls out
  customer.csv
  lineitem.csv
  orders.csv
  part.csv
  supplier.csv

CSV roundtrip: exporting with the query commands' generation seed and
querying the CSVs gives the same exact answer as the in-memory database:

  $ gusdb gen -s 0.01 --seed 20130630 -o out2 >/dev/null
  $ gusdb query -s 0.01 --exact "SELECT SUM(l_quantity) AS q FROM lineitem" | tail -1
    q = 15464
  $ gusdb query -s 0.01 --data out2 --exact "SELECT SUM(l_quantity) AS q FROM lineitem" | tail -1
    q = 15464

Bad SQL produces a parse error and non-zero exit:

  $ gusdb query "SELECT FROM"; echo "exit: $?"
  gusdb: expected an aggregate (SUM/COUNT/AVG/QUANTILE) but found FROM
  exit: 1
