(** Growable arrays (the standard library of this compiler predates
    [Dynarray]).  Amortized O(1) [push]; indices are checked. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val make : int -> 'a -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t
val append : 'a t -> 'a t -> unit
(** [append dst src] pushes all elements of [src] onto [dst]. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
