(** Admission control for the concurrent server: bounded in-flight
    accounting plus paper-native load shedding (Section 8).

    Every request passes {!enter} {e when it is read off its
    connection} — queued work counts as in flight, so backpressure
    starts at enqueue time — and {!leave} when its response is written.
    The controller combines queue depth (relative to [shed_start]) and
    recent p99 latency (relative to [slo_p99_ms]) into one {e overload
    factor}; past 1.0 it stops queueing politely and starts shedding:
    the request is still answered, but from a smaller sample whose
    per-relation rates {!shed_rates} picks with
    {!Gus_online.Shedding.optimize_rates} — minimum-variance under the
    reduced budget, honestly wider CI.  Only the hard [max_inflight]
    cap rejects outright ([overloaded] protocol error).

    Thread-safe: one mutex over tiny critical sections.  Exports
    [shed.decisions] / [shed.admitted] / [shed.rejected] counters and
    [shed.inflight] / [shed.overload] gauges. *)

type t

type ticket
(** In-flight token; carries the enter timestamp so {!leave} records
    end-to-end latency (queue wait included). *)

type decision =
  | Admit
  | Shed of float
      (** answer from a degraded sample; the payload is the overload
          factor (> 1) to derive the budget from *)

val create :
  ?max_inflight:int ->
  ?session_inflight:int ->
  ?shed_start:int ->
  ?slo_p99_ms:float ->
  ?fixed_overload:float ->
  unit ->
  t
(** [max_inflight] (default 64): hard cap, beyond which {!enter}
    rejects.  [session_inflight] (default 8): per-connection queue bound
    the {!Server} reads from here.  [shed_start]: in-flight depth at
    which the overload factor reaches 1 (absent: no queue-depth
    shedding).  [slo_p99_ms]: latency target; recent p99 above it also
    drives overload (absent: no latency shedding).  [fixed_overload]
    pins the factor for tests, cram transcripts, and demos
    ([gusdb serve --force-shed]). *)

val max_inflight : t -> int
val session_inflight : t -> int
val inflight : t -> int

val enter : t -> (ticket * decision, string) result
(** [Error message] when the hard cap is hit (the caller renders the
    [overloaded] protocol error); otherwise increments in-flight and
    decides.  Call at request-receive time, before any queueing. *)

val leave : t -> ticket -> unit
(** Decrement in-flight and record the ticket's end-to-end latency into
    the p99 window.  Must be called exactly once per [Ok] ticket. *)

val overload : t -> float
(** The current overload factor (0 when no signal is configured;
    capped at 16 so a spike cannot drive shed budgets to zero). *)

val p99_ms : t -> float option
(** p99 over the recent-latency ring; [None] until it holds at least 8
    samples. *)

val shed_rates :
  overload:float ->
  order:string list ->
  card:(string -> int) ->
  current:(string * float) list ->
  ?y:float array ->
  unit ->
  (string * float) list
(** Section-8 rate selection for one shed execution.  [current] is the
    plan's sampled base relations with their effective rates
    ({!Prepared.sampling_rates}); the sustainable cost
    [Σ cardᵢ·qᵢ] is divided by [overload] to get this execution's
    budget, then split across the relations by
    {!Gus_online.Shedding.optimize_rates} (variance-minimizing, using
    the [y] moments from the handle's previous execution) — or
    {!Gus_online.Shedding.proportional_rates} when no moments are
    available yet or more than 3 relations are sampled.  [order] is the
    full plan relation list (fixes the GUS lineage dimension order).
    Rates are clamped to [[1e-6, 1]] — shedding degrades, never
    destroys.  Returns [[]] when the plan samples nothing (exact plans
    cannot shed). *)
