lib/experiments/registry.mli:
