(** Typed, growable, unboxed column storage.

    One column = one {!Value.ty} worth of unboxed data in a Bigarray
    (floats as float64, ints and bools as untagged ints, strings as
    dictionary codes) plus a lazily-allocated packed null bitmap.
    Bigarray backing keeps scans allocation-free and lets snapshot
    restore wrap an [Unix.map_file]d region directly as column data: a
    wrapped column has capacity = length, so the first append falls into
    the ordinary grow-by-copy path and never writes through the mapping. *)

type float_ba =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val create : ?capacity:int -> Value.ty -> t
val length : t -> int
val ty : t -> Value.ty

val has_nulls : t -> bool
(** Whether any NULL was ever pushed; [false] guarantees {!is_null} is
    [false] everywhere without touching the bitmap. *)

(** {1 Appends}

    Typed pushes skip Value boxing entirely; {!push} dispatches on the
    value and raises {!Value.Type_error} on a column/value mismatch. *)

val push : t -> Value.t -> unit
val push_float : t -> float -> unit
val push_int : t -> int -> unit
val push_string : t -> string -> unit
val push_null : t -> unit

(** {1 Reads} *)

val get : t -> int -> Value.t
(** Boxed read (bounds-checked); NULL bit wins over the value slot. *)

val is_null : t -> int -> bool

val get_float : t -> int -> float
val get_int : t -> int -> int
val get_string : t -> int -> string
(** Unboxed reads for kernels: no bounds check, no null check — the
    caller guarantees [0 <= i < length] and (unless it wants the zeroed
    placeholder) [not (is_null t i)].  [get_int] also reads TBool (0/1)
    and TStr (dictionary code) columns. *)

(** {1 Vectorized building blocks} *)

val gather : t -> int array -> int -> t
(** [gather t idx count] is a new column holding rows
    [idx.(0) .. idx.(count-1)] of [t] in that order.  Dictionary columns
    share the source dictionary (append-only), so no string is
    re-hashed. *)

val copy : t -> t
(** Same values, nulls and (shared) dictionary, fresh backing storage. *)

val of_int_array : int array -> int -> t
(** TInt column holding the first [count] entries verbatim (lineage
    ids). *)

(** {1 Raw views — snapshot writer and vectorized kernels} *)

val float_data : t -> float_ba
val int_data : t -> int_ba
(** Length-[length t] views of the backing array (TInt/TBool values, or
    TStr dictionary codes).  Raise [Invalid_argument] on a type
    mismatch. *)

val dict_strings : t -> string array
(** The dictionary in code order ([codes.(i)] indexes this array). *)

val null_bytes : t -> Bytes.t option
(** Packed bitmap (bit [i] = row [i] NULL), [(length+7)/8] bytes; [None]
    when the column has no nulls. *)

(** {1 Constructors over existing storage — snapshot restore} *)

val of_float_ba : ?nulls:Bytes.t -> float_ba -> t
val of_int_ba : ?nulls:Bytes.t -> ty:Value.ty -> int_ba -> t
(** [ty] must be [TInt] or [TBool]. *)

val of_codes_ba : ?nulls:Bytes.t -> dict:string array -> int_ba -> t
(** Validates every code against the dictionary; raises
    [Invalid_argument] on an out-of-range code (corrupt snapshot). *)
