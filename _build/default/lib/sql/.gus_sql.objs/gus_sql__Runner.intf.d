lib/sql/runner.mli: Format Gus_core Gus_relational Gus_stats
