module Splan = Gus_core.Splan
module Size = Gus_estimator.Size_estimator
module Interval = Gus_stats.Interval
module Tablefmt = Gus_util.Tablefmt
open Gus_relational

let run ?(scale = 1.0) () =
  Harness.section "E9"
    "Intermediate-size estimation with confidence intervals (Section 8)";
  let db = Harness.db_cached ~scale in
  let join = Harness.join2_plan ~p_lineitem:1.0 ~p_orders:1.0 in
  let with_filter threshold =
    Splan.Select (Expr.(col "l_extendedprice" > float threshold), join)
  in
  let cases =
    [ ("lineitem x orders", Splan.strip_samples join);
      ("... where price > 3000", with_filter 3000.0);
      ("... where price > 7000", with_filter 7000.0);
      ("... where price > 10000", with_filter 10000.0);
      ( "3-way join",
        Splan.strip_samples
          (Harness.join3_plan ~p_lineitem:1.0 ~p_orders:1.0 ~p_customer:1.0) ) ]
  in
  let t =
    Tablefmt.create
      ~headers:
        [ "intermediate"; "true size"; "predicted"; "95% CI"; "inside"; "rel.err %" ]
  in
  List.iter
    (fun (name, plan) ->
      let truth = float_of_int (Relation.cardinality (Splan.exec_exact db plan)) in
      let p = Size.predict_with_rates ~seed:3 db ~rate:0.05 plan in
      Tablefmt.add_row t
        [ name;
          Printf.sprintf "%.0f" truth;
          Printf.sprintf "%.0f" p.Size.estimate;
          Printf.sprintf "[%.0f, %.0f]" p.Size.interval.Interval.lo
            p.Size.interval.Interval.hi;
          string_of_bool (Interval.contains p.Size.interval truth);
          Printf.sprintf "%.1f"
            (if truth = 0.0 then 0.0
             else 100.0 *. Float.abs (p.Size.estimate -. truth) /. truth) ])
    cases;
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: predictions within the interval; wider intervals on \
     more selective intermediates (fewer surviving sample tuples).\n"
