(** Abstract domains for the static analyzer ({!Dataflow}).

    Each domain is a join-semilattice with a widening operator; the
    dataflow pass interprets {!Gus_core.Splan.t} bottom-up over tuples
    of these domains, with no data access.  Plans are trees (no loops),
    so widening is never needed for termination — it exists so the
    domains compose with fixpoint-style clients and is exercised by the
    property tests (see DESIGN.md §9 for the join/widening rules). *)

(** Closed intervals of non-negative floats (inclusion probabilities,
    blow-up factors). *)
module Itv : sig
  type t = private { lo : float; hi : float }

  val make : float -> float -> t
  (** Raises [Invalid_argument] when [lo > hi]. *)

  val point : float -> t
  val zero : t

  val unit : t
  (** The full probability interval [\[0, 1\]]. *)

  val is_point : t -> bool

  val leq : t -> t -> bool
  (** Interval inclusion ([a ⊑ b] iff [a ⊆ b]). *)

  val join : t -> t -> t
  (** Smallest interval containing both. *)

  val widen : top:t -> t -> t -> t
  (** [widen ~top a b]: any bound of [b] strictly outside [a] jumps to
      the corresponding bound of [top]; stable bounds are kept. *)

  val mul : t -> t -> t
  (** Pointwise product (sound because all endpoints are [>= 0]). *)

  val union_prob : t -> t -> t
  (** Inclusion probability of a union of two independent samples:
      [p + q − pq], applied to both endpoints (monotone on [0,1]). *)

  val scale : float -> t -> t
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(** Cardinality intervals over the naturals with a [+inf] top, carrying
    a point "expected rows" estimate for the cost model.  The interval
    is sound; [exp] is a heuristic and not part of the lattice order. *)
module Card : sig
  type t = private { lo : float; hi : float; exp : float }

  val make : lo:float -> hi:float -> exp:float -> t
  (** Raises [Invalid_argument] when [lo > hi]; [exp] is clamped into
      [\[lo, hi\]]. *)

  val exact : int -> t
  (** The singleton interval for a known base-relation cardinality. *)

  val top : t
  val leq : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** Unstable bounds jump to [0] / [+inf]. *)

  val exp : t -> float
  (** The expected-rows point estimate. *)

  val filter : t -> t
  (** Effect of a selection: lower bound drops to 0. *)

  val sample : Itv.t -> t -> t
  (** Effect of sampling with inclusion probability in the given
      interval: lower bound 0, expectation scaled by its midpoint. *)

  val product : t -> t -> t
  (** Cross product. *)

  val equi_join : t -> t -> t
  (** Bounds [\[0, |L|·|R|\]]; expectation assumes a key/foreign-key
      join (≈ the larger input). *)

  val sum : t -> t -> t
  (** Union (bag semantics): cardinalities add. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(** The GUS-class lattice
    [Ind_bernoulli ⊑ Product_form ⊑ General]: independent per-tuple
    Bernoulli designs; product-form designs (independent across
    relations, arbitrary pair correlation within one — WOR, block);
    everything else (derived-input sampling, unions of samples). *)
module Cls : sig
  type t = Ind_bernoulli | Product_form | General

  val leq : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** The lattice is finite, so widening coincides with join. *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end
