type query = {
  id : string;
  description : string;
  tpch_ancestor : string;
  sampled : string;
  exact : string;
}

(* Each entry is written with a [SAMPLE:...] marker replaced by the
   TABLESAMPLE clause in the sampled form and by nothing in the exact
   form, so the two variants cannot drift apart. *)
let make ~id ~description ~tpch_ancestor text =
  let replace ~with_ =
    let buf = Buffer.create (String.length text) in
    let n = String.length text in
    let i = ref 0 in
    while !i < n do
      if !i + 8 <= n && String.sub text !i 8 = "[SAMPLE:" then begin
        let close = String.index_from text !i ']' in
        if with_ then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf (String.sub text (!i + 8) (close - !i - 8))
        end;
        i := close + 1
      end
      else begin
        Buffer.add_char buf text.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  { id;
    description;
    tpch_ancestor;
    sampled = replace ~with_:true;
    exact = replace ~with_:false }

let all =
  [ make ~id:"W1" ~description:"pricing summary over recent shipments"
      ~tpch_ancestor:"Q1"
      "SELECT SUM(l_quantity) AS sum_qty, \
              SUM(l_extendedprice) AS sum_base, \
              SUM(l_extendedprice * (1.0 - l_discount)) AS sum_disc, \
              AVG(l_quantity) AS avg_qty, \
              COUNT(*) AS n \
       FROM lineitem[SAMPLE:TABLESAMPLE (10 PERCENT)] \
       WHERE l_shipdate <= 2400";
    make ~id:"W2" ~description:"revenue increase from dropping small discounts"
      ~tpch_ancestor:"Q6"
      "SELECT SUM(l_extendedprice * l_discount) AS potential \
       FROM lineitem[SAMPLE:TABLESAMPLE (10 PERCENT)] \
       WHERE l_shipdate >= 600 AND l_shipdate < 1700 AND \
             l_discount >= 0.03 AND l_discount <= 0.08 AND l_quantity < 24";
    make ~id:"W3" ~description:"unshipped revenue for a market segment"
      ~tpch_ancestor:"Q3"
      "SELECT SUM(l_extendedprice * (1.0 - l_discount)) AS revenue \
       FROM customer, \
            orders[SAMPLE:TABLESAMPLE (2000 ROWS)], \
            lineitem[SAMPLE:TABLESAMPLE (20 PERCENT)] \
       WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND \
             l_orderkey = o_orderkey AND o_orderdate < 1800";
    make ~id:"W4" ~description:"local-supplier revenue (nation co-location)"
      ~tpch_ancestor:"Q5"
      "SELECT SUM(l_extendedprice * (1.0 - l_discount)) AS revenue \
       FROM customer, orders, \
            lineitem[SAMPLE:TABLESAMPLE (25 PERCENT)], \
            supplier \
       WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND \
             l_suppkey = s_suppkey AND c_nationkey = s_nationkey";
    make ~id:"W5" ~description:"revenue lost to returned items"
      ~tpch_ancestor:"Q10"
      "SELECT SUM(l_extendedprice * (1.0 - l_discount)) AS lost, COUNT(*) AS items \
       FROM customer, orders[SAMPLE:TABLESAMPLE (30 PERCENT)], \
            lineitem[SAMPLE:TABLESAMPLE (30 PERCENT)] \
       WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND \
             l_returnflag = 'R'";
    make ~id:"W6" ~description:"average price of small-part shipments (skewed join)"
      ~tpch_ancestor:"Q19"
      "SELECT AVG(l_extendedprice) AS avg_price, COUNT(*) AS n \
       FROM lineitem[SAMPLE:TABLESAMPLE (15 PERCENT)], part \
       WHERE p_partkey = l_partkey AND p_size <= 15 AND l_quantity >= 10" ]

let find id = List.find_opt (fun q -> String.lowercase_ascii q.id = String.lowercase_ascii id) all
