(* Versioned binary dataset snapshots.

   A snapshot serializes a {!Database.t} of base columnar relations so a
   later process can register it in O(columns) rather than re-generating
   or re-parsing the data: every fixed-width column blob is written
   8-aligned and little-endian, and {!load} wraps those blobs with
   [Unix.map_file] directly as {!Column} backing — no per-row work at
   all.  Dictionaries and null bitmaps are small and are read eagerly.

   On-disk layout (v1), all integers unsigned 64-bit little-endian,
   every field padded to an 8-byte boundary:

     magic            8 bytes "GUSSNAP\x01"
     endian sentinel  u64 = 0x0102030405060708 (rejects byte-swapped
                      writers — the mmap path cannot byte-swap)
     version          u64 = 1
     word size        u64 = 64
     n_relations      u64
     repeat per relation:
       name           u64 length + bytes + pad
       n_cols         u64
       n_rows         u64
       repeat per column:  name (u64 + bytes + pad), type code u64
                           (0 bool, 1 int, 2 float, 3 string)
       repeat per column (same order):
         has_nulls    u64 0/1
         [nulls]      packed bitmap, (n_rows+7)/8 bytes + pad
         payload      float/int/bool: n_rows x 8 raw words (mmapped)
                      string: u64 dict size, dict entries (u64 + bytes
                      + pad each), then n_rows x 8 codes (mmapped)

   Version bumps are append-only: readers reject any version they do not
   know ({!Version_mismatch}), and structural damage — bad magic, wrong
   endianness, truncation, out-of-range codes — raises {!Format_error}.
   Both map to stable CLI/serve error codes. *)

exception Format_error of string
exception Version_mismatch of { found : int; expected : int }

let magic = "GUSSNAP\x01"
let version = 1
let endian_sentinel = 0x0102030405060708L

let format_error fmt = Printf.ksprintf (fun m -> raise (Format_error m)) fmt

let ty_code = function
  | Value.TBool -> 0
  | Value.TInt -> 1
  | Value.TFloat -> 2
  | Value.TStr -> 3

let ty_of_code = function
  | 0 -> Value.TBool
  | 1 -> Value.TInt
  | 2 -> Value.TFloat
  | 3 -> Value.TStr
  | c -> format_error "unknown column type code %d" c

let pad8 n = (8 - (n land 7)) land 7

(* ---- writer ---- *)

(* A snapshot stores base relations as columns.  Identity-lineage
   columnar bases serialize as-is; a row-backed base (e.g. built by a
   test with [~storage:`Rows]) is converted on the way out.  Derived
   relations have no place in a catalog snapshot. *)
let columnar_base rel =
  if not (Lineage.schema_equal rel.Relation.lineage_schema
            (Lineage.schema_of rel.Relation.name))
  then
    invalid_arg
      (Printf.sprintf "Snapshot.save: %s is not a base relation"
         rel.Relation.name);
  match Relation.store rel with
  | Relation.Cols ({ clineage = Relation.Identity; _ } as c) -> c
  | _ ->
      let base =
        Relation.create_base ~capacity:(max 16 (Relation.cardinality rel))
          ~name:rel.Relation.name rel.Relation.schema
      in
      Relation.iter
        (fun tup -> Relation.append_row base tup.Tuple.values)
        rel;
      (match Relation.store base with
      | Relation.Cols c -> c
      | Relation.Rows _ -> assert false)

let save ~path db =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  let scratch = Bytes.create 8 in
  let w64 x =
    Bytes.set_int64_le scratch 0 x;
    output_bytes oc scratch
  in
  let wint x = w64 (Int64.of_int x) in
  let zeros = Bytes.make 8 '\000' in
  let wpad n = if pad8 n > 0 then output_bytes oc (Bytes.sub zeros 0 (pad8 n)) in
  let wstr s =
    wint (String.length s);
    output_string oc s;
    wpad (String.length s)
  in
  output_string oc magic;
  w64 endian_sentinel;
  wint version;
  wint 64;
  let names = Database.names db in
  wint (List.length names);
  List.iter
    (fun name ->
      let rel = Database.find db name in
      let c = columnar_base rel in
      let n = c.Relation.cn in
      wstr name;
      wint (Array.length c.Relation.ccols);
      wint n;
      Array.iteri
        (fun j col ->
          wstr (Schema.column_name rel.Relation.schema j);
          wint (ty_code (Column.ty col)))
        c.Relation.ccols;
      Array.iter
        (fun col ->
          (match Column.null_bytes col with
          | None -> wint 0
          | Some b ->
              wint 1;
              output_bytes oc b;
              wpad (Bytes.length b));
          match Column.ty col with
          | Value.TFloat ->
              let ba = Column.float_data col in
              for i = 0 to n - 1 do
                w64 (Int64.bits_of_float (Bigarray.Array1.unsafe_get ba i))
              done
          | Value.TInt | Value.TBool ->
              let ba = Column.int_data col in
              for i = 0 to n - 1 do
                w64 (Int64.of_int (Bigarray.Array1.unsafe_get ba i))
              done
          | Value.TStr ->
              let dict = Column.dict_strings col in
              wint (Array.length dict);
              Array.iter wstr dict;
              let ba = Column.int_data col in
              for i = 0 to n - 1 do
                w64 (Int64.of_int (Bigarray.Array1.unsafe_get ba i))
              done)
        c.Relation.ccols)
    names

(* ---- loader ---- *)

type pending_blob = { off : int; rows : int }

(* [List.init]/[Array.init] leave evaluation order unspecified; header
   parsing is stateful reads, so order them explicitly. *)
let read_list n f =
  let rec go acc i = if i >= n then List.rev acc else go (f i :: acc) (i + 1) in
  go [] 0

let load ~path =
  let ic =
    try open_in_bin path with Sys_error m -> raise (Format_error m)
  in
  let parse () =
    let scratch = Bytes.create 8 in
    let r64 () =
      (try really_input ic scratch 0 8
       with End_of_file -> format_error "truncated file");
      Bytes.get_int64_le scratch 0
    in
    let rint what =
      let x = r64 () in
      if Int64.compare x 0L < 0 || Int64.compare x 0x0000_0100_0000_0000L > 0
      then format_error "implausible %s (%Ld)" what x;
      Int64.to_int x
    in
    let rstr what =
      let len = rint what in
      let b = Bytes.create len in
      (try really_input ic b 0 len
       with End_of_file -> format_error "truncated %s" what);
      seek_in ic (pos_in ic + pad8 len);
      Bytes.unsafe_to_string b
    in
    let m = Bytes.create (String.length magic) in
    (try really_input ic m 0 (String.length magic)
     with End_of_file -> format_error "truncated header");
    if Bytes.to_string m <> magic then format_error "bad magic";
    if r64 () <> endian_sentinel then
      format_error "endianness mismatch (snapshot written on a big-endian host?)";
    let found = rint "version" in
    if found <> version then raise (Version_mismatch { found; expected = version });
    let ws = rint "word size" in
    if ws <> 64 then format_error "unsupported word size %d" ws;
    let nrel = rint "relation count" in
    read_list nrel (fun _ ->
        let name = rstr "relation name" in
        let ncols = rint "column count" in
        let nrows = rint "row count" in
        let cols =
          read_list ncols (fun _ ->
              let cname = rstr "column name" in
              let ty = ty_of_code (rint "column type") in
              (cname, ty))
        in
        let blobs =
          List.map
            (fun (_, ty) ->
              let has_nulls = rint "null flag" in
              let nulls =
                if has_nulls = 0 then None
                else begin
                  let nb = (nrows + 7) / 8 in
                  let b = Bytes.create nb in
                  (try really_input ic b 0 nb
                   with End_of_file -> format_error "truncated null bitmap");
                  seek_in ic (pos_in ic + pad8 nb);
                  Some b
                end
              in
              let dict =
                match ty with
                | Value.TStr ->
                    let nd = rint "dictionary size" in
                    Some
                      (Array.of_list
                         (read_list nd (fun _ -> rstr "dictionary entry")))
                | Value.TBool | Value.TInt | Value.TFloat -> None
              in
              let off = pos_in ic in
              seek_in ic (off + (8 * nrows));
              (nulls, dict, { off; rows = nrows }))
            cols
        in
        (* [seek_in] past EOF does not fail by itself; probe. *)
        if pos_in ic > in_channel_length ic then
          format_error "truncated column data in %s" name;
        (name, nrows, cols, blobs))
  in
  let parsed =
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    try parse () with Invalid_argument m -> format_error "corrupt snapshot: %s" m
  in
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) -> format_error "%s" (Unix.error_message e)
  in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let map_blob : type a b.
      (a, b) Bigarray.kind -> pending_blob -> (a, b, Bigarray.c_layout) Bigarray.Array1.t =
   fun kind { off; rows } ->
    try
      Bigarray.array1_of_genarray
        (Unix.map_file fd ~pos:(Int64.of_int off) kind Bigarray.c_layout false
           [| rows |])
    with Unix.Unix_error _ | Sys_error _ ->
      format_error "cannot map column data at offset %d" off
  in
  let db = Database.create () in
  List.iter
    (fun (name, nrows, cols, blobs) ->
      let schema =
        try Schema.make (List.map (fun (cname, ty) -> { Schema.name = cname; ty }) cols)
        with Invalid_argument m -> format_error "corrupt snapshot: %s" m
      in
      let ccols =
        Array.of_list
          (List.map2
             (fun (_, ty) (nulls, dict, blob) ->
               try
                 match ty with
                 | Value.TFloat ->
                     Column.of_float_ba ?nulls (map_blob Bigarray.float64 blob)
                 | Value.TInt | Value.TBool ->
                     Column.of_int_ba ?nulls ~ty (map_blob Bigarray.int blob)
                 | Value.TStr ->
                     let dict = Option.get dict in
                     Column.of_codes_ba ?nulls ~dict (map_blob Bigarray.int blob)
               with Invalid_argument m -> format_error "corrupt snapshot: %s" m)
             cols blobs)
      in
      let rel =
        { Relation.name;
          schema;
          lineage_schema = Lineage.schema_of name;
          store =
            Relation.Cols
              { Relation.cn = nrows; ccols; clineage = Relation.Identity } }
      in
      try Database.add db rel
      with Invalid_argument m -> format_error "corrupt snapshot: %s" m)
    parsed;
  db
