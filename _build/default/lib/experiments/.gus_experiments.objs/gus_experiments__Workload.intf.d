lib/experiments/workload.mli:
