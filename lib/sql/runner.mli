(** End-to-end execution of dialect queries: parse → plan → sample →
    SBox → answers with accuracy information. *)

type cell = {
  label : string;
  value : float;  (** the estimate (or quantile bound for QUANTILE items) *)
  stddev : float;
  ci95_normal : Gus_stats.Interval.t;
  ci95_chebyshev : Gus_stats.Interval.t;
}

type group_row = {
  keys : string list;  (** rendered grouping-key values *)
  group_cells : cell list;
}

type result = {
  cells : cell list;  (** whole-query aggregates (empty under GROUP BY) *)
  groups : group_row list;
      (** one row per group witnessed in the sample.  Per-group analysis
          is sound: group membership is a selection on tuple content,
          which commutes with the GUS operator (Prop. 5).  Groups whose
          every contributing tuple was dropped by sampling are absent. *)
  n_sample_tuples : int;
  gus : Gus_core.Gus.t;
  plan : Gus_core.Splan.t;
}

(** {1 EXPLAIN ANALYZE annotations} *)

type node_annot = {
  an_path : int list;  (** root-to-node child indices *)
  an_wall_ns : int;  (** wall time, inclusive of children *)
  an_rows_in : int;
  an_rows_out : int;
  an_sample : (float * float) option;
      (** Sample nodes: the sampler's own [(a, b_∅)] — its first-order
          inclusion probability and distinct-pair probability *)
  an_var_contrib : float option;
      (** Sample nodes: Theorem-1 variance term [(c_S/a²)·ŷ_S] of the
          subtree's relation subset [S], for the first aggregate *)
}

type explain = {
  ex_result : result;
  ex_nodes : node_annot list;  (** one per plan node, post-order *)
  ex_variance_raw : float option;
      (** first aggregate's estimator variance (unclamped) *)
  ex_total_ns : int;
  ex_report : Gus_estimator.Sbox.report option;
      (** first aggregate's full SBox report (the source of
          [ex_variance_raw] and the per-node variance terms) *)
}

(** {1 The typed request/response API}

    {!prepare} runs parse → plan → lint exactly once per SQL text and
    returns a reusable {!prepared} handle; {!execute} runs it any number
    of times with per-call {!params}.  The historical optional-argument
    entry points ({!run}, {!run_explained}, {!lint}) survive as thin
    wrappers over this API.  [Gus_service.Prepared] consumes it
    directly. *)

type params = {
  seed : int;  (** RNG seed for the sampling run (default 42) *)
  explain : bool;  (** collect per-node profiles ({!explain}) *)
  exact : bool;  (** also evaluate the sample-free skeleton *)
  streaming : bool;
      (** fold result tuples straight into the SBox via
          {!Gus_core.Splan.fold_stream} when the query shape allows it
          (single SUM/COUNT aggregate, no GROUP BY): no materialized
          sample, bit-identical estimate and tuple count to the
          materializing core (stddev can differ in final bits from
          moment-reduction order) *)
  pool : Gus_util.Pool.t option;
      (** forwarded to the streaming estimator's moment passes *)
}

val default_params : params
(** [{ seed = 42; explain = false; exact = false; streaming = false;
    pool = None }]. *)

type request = {
  sql : string;
  lint_config : Gus_analysis.Lint.config;
  params : params;
}

val request :
  ?seed:int ->
  ?explain:bool ->
  ?exact:bool ->
  ?streaming:bool ->
  ?pool:Gus_util.Pool.t ->
  ?lint_config:Gus_analysis.Lint.config ->
  string ->
  request
(** Build a request with {!default_params}-style defaults. *)

type prepared = {
  pr_sql : string;
  pr_query : Ast.query;
  pr_plan : Gus_core.Splan.t;
  pr_lint : Gus_analysis.Lint.report;
      (** complete static analysis; [pr_lint.analysis] carries the top GUS
          iff the plan has no [Error]-severity diagnostics *)
}

val prepare :
  ?lint_config:Gus_analysis.Lint.config ->
  ?engine:Gus_analysis.Lint.coeff_engine ->
  Gus_relational.Database.t ->
  string ->
  prepared
(** Parse → plan → lint, without executing anything.  [engine] selects
    the linter's coefficient engine (default [`Symbolic]).  Self-joins are let
    through the planner so the linter reports them (GUS001) together with
    every other problem.  Raises [Parser.Error] / [Planner.Error] /
    [Lexer.Error] on malformed text; lint findings (including errors) are
    returned in [pr_lint], not raised — {!execute} raises on them. *)

val prepared_errors : prepared -> Gus_analysis.Diagnostic.t list
val prepared_gus : prepared -> Gus_core.Gus.t option
(** The plan's single equivalent top GUS; [None] iff the lint found
    errors. *)

type response = {
  rs_result : result;
  rs_explain : explain option;  (** [Some] iff [params.explain] *)
  rs_lint : Gus_analysis.Lint.report;
  rs_exact : (string * float) list;
      (** ground truth per SELECT item; non-empty only with [params.exact]
          on a non-GROUP-BY query *)
  rs_exact_groups : (string list * (string * float) list) list;
      (** ground truth per group with [params.exact] under GROUP BY *)
  rs_streamed : bool;
      (** whether the streaming core answered this execution *)
  rs_report : Gus_estimator.Sbox.report option;
      (** the first aggregate's SBox report — [None] under GROUP BY and
          for AVG (its ratio estimator has no Theorem-1 decomposition).
          Telemetry provenance: {!top_variance_share} reads it. *)
}

val execute : Gus_relational.Database.t -> prepared -> params -> response
(** Execute a prepared query.  Raises [Rewrite.Unsupported] (listing every
    [GUSxxx] error at once) when the prepared plan is outside the GUS
    theory — {e before} any sampling work runs.  Deterministic in
    [(prepared, params.seed)]: repeated calls return bit-identical
    responses. *)

val run_request : Gus_relational.Database.t -> request -> response
(** [prepare] + [execute] in one shot — the cold path. *)

val top_variance_share : response -> (int list * string * float) option
(** The Sample node whose Theorem-1 term [(c_S/a²)·ŷ_S] dominates the
    first aggregate's variance: [(path, label, share)] with [share] the
    term's fraction of the raw variance.  Best-effort — [None] when the
    response carries no report ({!response.rs_report}), when the
    report's GUS is a live-relation view (wide symbolic plans), or past
    16 relations where densifying the coefficient table stops being
    cheap.  The serving journal records this per execution. *)

(** {1 Deprecated one-shot wrappers}

    Thin veneers over {!run_request}, kept so existing callers compile.
    New code should use {!prepare} / {!execute}. *)

val lint :
  ?config:Gus_analysis.Lint.config ->
  ?engine:Gus_analysis.Lint.coeff_engine ->
  Gus_relational.Database.t ->
  string ->
  Gus_core.Splan.t * Gus_analysis.Lint.report
(** @deprecated Use {!prepare} and read [pr_plan] / [pr_lint].  Parse and
    plan the query (allowing self-joins through so they can be reported),
    then run the static SOA-soundness linter over the plan — without
    executing it.  Raises [Parser.Error] / [Planner.Error] on malformed
    input; never executes the plan or touches tuple data. *)

val run : ?seed:int -> Gus_relational.Database.t -> string -> result
(** @deprecated Use {!run_request} (or {!prepare} + {!execute} for
    repeated execution).  Raises [Parser.Error] / [Planner.Error] /
    [Rewrite.Unsupported] on bad input.  The SOA analysis runs {e before}
    execution, so an unsupported plan is rejected with every [GUSxxx]
    diagnostic at once and no sampling work is wasted. *)

val run_explained : ?seed:int -> Gus_relational.Database.t -> string -> explain
(** @deprecated Use {!run_request} with [explain = true].  {!run} under
    {!Gus_core.Splan.exec_profiled}: same parse → analyze → execute →
    estimate pipeline, same sample for the same seed, plus per-node wall
    times, row counts, sampling rates and variance contributions for
    [--explain-analyze]. *)

val run_exact : Gus_relational.Database.t -> string -> (string * float) list
(** Ground truth for each SELECT item, ignoring all TABLESAMPLE clauses
    (QUANTILE items report the exact aggregate).  Not defined for GROUP BY
    queries — use {!run_exact_groups}.  Unlike {!execute} with [exact],
    this never lints: skeletons of non-analyzable plans still have ground
    truth. *)

val run_exact_groups : Gus_relational.Database.t -> string -> (string list * (string * float) list) list
(** Ground truth per group for a GROUP BY query, keyed like
    {!group_row.keys}. *)

val pp_result : Format.formatter -> result -> unit

val pp_explain : Format.formatter -> explain -> unit
(** The plan tree annotated per node ([wall, in, out], plus [a], [b0] and
    [var_share] on sampling nodes), total wall time, the first aggregate's
    variance, then the ordinary {!pp_result} block. *)
