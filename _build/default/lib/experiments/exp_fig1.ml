module Gus = Gus_core.Gus
module Sampler = Gus_sampling.Sampler
module Tablefmt = Gus_util.Tablefmt
open Gus_relational

let tiny_relation n =
  let schema = Schema.make [ { Schema.name = "x"; ty = Value.TInt } ] in
  let rel = Relation.create_base ~name:"r" schema in
  for i = 0 to n - 1 do
    Relation.append_row rel [| Value.Int i |]
  done;
  rel

let mc_inclusion ~sampler ~population ~trials ~seed =
  let rel = tiny_relation population in
  let hit0 = ref 0 and hit01 = ref 0 in
  for t = 1 to trials do
    let rng = Gus_util.Rng.create (seed + t) in
    let s = Sampler.apply sampler rng rel in
    let in0 = ref false and in1 = ref false in
    Relation.iter
      (fun tup ->
        let id = tup.Tuple.lineage.(0) in
        if id = 0 then in0 := true;
        if id = 1 then in1 := true)
      s;
    if !in0 then incr hit0;
    if !in0 && !in1 then incr hit01
  done;
  (float_of_int !hit0 /. float_of_int trials, float_of_int !hit01 /. float_of_int trials)

let run () =
  Harness.section "T1" "Figure 1 - GUS parameters of known sampling methods";
  let t =
    Tablefmt.create
      ~headers:
        [ "method"; "param"; "paper formula"; "computed"; "monte-carlo"; "rel.diff" ]
  in
  let trials = 30000 in
  (* Bernoulli(0.3) over a 50-row population. *)
  let p = 0.3 and n_pop = 50 in
  let g_b = Gus.bernoulli ~rel:"r" p in
  let mc_a, mc_b0 =
    mc_inclusion ~sampler:(Sampler.Bernoulli p) ~population:n_pop ~trials ~seed:11
  in
  let row method_ param formula computed mc =
    let rel_diff =
      if computed = 0.0 then 0.0 else Float.abs (mc -. computed) /. computed
    in
    Tablefmt.add_row t
      [ method_; param; formula; Harness.fcell computed; Harness.fcell mc;
        Printf.sprintf "%.1f%%" (100.0 *. rel_diff) ]
  in
  row "Bernoulli(0.3)" "a" "p" g_b.Gus.a mc_a;
  row "Bernoulli(0.3)" "b{}" "p^2" (Gus.b_get g_b 0) mc_b0;
  row "Bernoulli(0.3)" "b{R}" "p" (Gus.b_get g_b 1) mc_a;
  Tablefmt.add_sep t;
  (* WOR(20, 50). *)
  let n_s = 20 in
  let g_w = Gus.wor ~rel:"r" ~n:n_s ~out_of:n_pop in
  let mc_a_w, mc_b0_w =
    mc_inclusion ~sampler:(Sampler.Wor n_s) ~population:n_pop ~trials ~seed:12
  in
  row "WOR(20,50)" "a" "n/N" g_w.Gus.a mc_a_w;
  row "WOR(20,50)" "b{}" "n(n-1)/N(N-1)" (Gus.b_get g_w 0) mc_b0_w;
  row "WOR(20,50)" "b{R}" "n/N" (Gus.b_get g_w 1) mc_a_w;
  Tablefmt.add_sep t;
  (* The paper's headline instances (no MC: population too large). *)
  let g_paper_b = Gus.bernoulli ~rel:"lineitem" 0.1 in
  let g_paper_w = Gus.wor ~rel:"orders" ~n:1000 ~out_of:150000 in
  Tablefmt.add_row t
    [ "Bernoulli(0.1)"; "a, b{}, b{R}"; "0.1, 0.01, 0.1";
      Printf.sprintf "%s, %s, %s" (Harness.fcell g_paper_b.Gus.a)
        (Harness.fcell (Gus.b_get g_paper_b 0))
        (Harness.fcell (Gus.b_get g_paper_b 1));
      "-"; "-" ];
  Tablefmt.add_row t
    [ "WOR(1000,150000)"; "a, b{}, b{R}"; "6.667e-03, 4.44e-05, 6.667e-03";
      Printf.sprintf "%s, %s, %s" (Harness.fcell g_paper_w.Gus.a)
        (Harness.fcell (Gus.b_get g_paper_w 0))
        (Harness.fcell (Gus.b_get g_paper_w 1));
      "-"; "-" ];
  Tablefmt.print t
