lib/relational/relation.ml: Array Buffer Format Gus_util Lineage List Schema String Tuple Value
