lib/relational/csv.mli: Relation Schema
