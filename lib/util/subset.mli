(** Subsets of a small universe [{0, …, n−1}] represented as int bitmasks.

    The GUS algebra indexes second-order inclusion probabilities [b_T] by
    subsets [T] of the lineage schema; everything here is O(1) or a tight
    loop over masks.  The universe size is capped at {!max_universe} because
    the algebra materializes arrays of length [2^n]. *)

type t = int
(** A subset as a bitmask; bit [i] set means element [i] is a member. *)

val max_universe : int
(** Largest supported universe size (26: [2^26] floats = 512 MB upper bound,
    far beyond any realistic query). *)

val max_mask_bits : int
(** Largest universe whose subsets are representable as int bitmasks at all
    (62: OCaml native ints hold 62 usable value bits).  Mask-only machinery
    — the symbolic coefficient algebra, skip masks — works up to this
    width; anything materializing [2^n] arrays is capped at
    {!max_universe} instead. *)

val check_mask_bits : int -> unit
(** Raise [Invalid_argument] (naming the {!max_mask_bits} limit) unless
    [0 <= n <= max_mask_bits].  Guards every entry point that keys subsets
    into int masks, which would otherwise overflow silently past 62
    elements. *)

val full_wide : int -> t
(** [full_wide n] is the subset containing [0..n-1] for any
    [n <= max_mask_bits] — the mask-only analogue of {!full}, usable past
    {!max_universe}. *)

val empty : t
val full : int -> t
(** [full n] is the subset containing [0..n-1]. *)

val singleton : int -> t
val add : t -> int -> t
val remove : t -> int -> t
val mem : t -> int -> bool
val cardinal : t -> int
val subset : t -> t -> bool
(** [subset s t] is [s ⊆ t]. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val complement : int -> t -> t
(** [complement n s] is [{0..n-1} \ s]. *)

val elements : t -> int list
val of_elements : int list -> t

val iter_all : int -> (t -> unit) -> unit
(** [iter_all n f] calls [f] on all [2^n] subsets of a universe of size [n]. *)

val iter_subsets : t -> (t -> unit) -> unit
(** [iter_subsets s f] calls [f] on every subset of [s] (including [empty]
    and [s] itself), in increasing mask order.  Allocation-free. *)

val iter_subsets_down : t -> (t -> unit) -> unit
(** Same subsets as {!iter_subsets}, in decreasing mask order. *)

val iter_supersets : int -> t -> (t -> unit) -> unit
(** [iter_supersets n s f] calls [f] on every [t] with [s ⊆ t ⊆ full n]. *)

val fold_subsets : t -> ('acc -> t -> 'acc) -> 'acc -> 'acc
val count : int -> int
(** [count n = 2^n], checked against overflow. *)

val sign : t -> t -> float
(** [sign s t] is [(-1)^(|s| + |t|)] — the Möbius sign used throughout the
    coefficient computations. *)

val pp : names:string array -> Format.formatter -> t -> unit
(** Pretty-print a subset as e.g. ["{l,o}"] using per-element names. *)

val to_string : names:string array -> t -> string
