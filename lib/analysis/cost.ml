module Gus = Gus_core.Gus
module Subset = Gus_util.Subset

type report = {
  n_rels : int;
  passes : int;
  skipped : int;
  est_groups : float;
  predicted_cost : float;
  variance_bound : float;
  skip_mask : int;
  cls : Absdom.Cls.t;
}

(* Relation [i] is "design-inert" (dead) when the second-order
   inclusion probabilities do not depend on whether [i] is in the
   subset: b_{T ∪ {i}} = b_T for every T.  Unsampled relations and
   p = 1 Bernoullis are exactly of this shape (their product-form
   factor has φ(1) = φ(0)).  The comparison is on float bits: joins
   build b arrays by multiplying the factor in, so an inert factor
   multiplies by 1.0 and the equality is exact. *)
let dead_mask_unverified (g : Gus.t) =
  let n = Gus.n_rels g in
  let nmasks = Subset.count n in
  let dead = ref 0 in
  for i = 0 to n - 1 do
    let bit = 1 lsl i in
    let inert = ref true in
    let t = ref 0 in
    while !inert && !t < nmasks do
      if !t land bit = 0 && not (Gus.b_get g !t = Gus.b_get g (!t lor bit))
      then inert := false;
      t := !t + 1
    done;
    if !inert then dead := !dead lor bit
  done;
  !dead

(* The fast Möbius transform turns exact b-equality into exact float
   zeros for every dead-containing coefficient (the dead dimension's
   pass computes x −. x = 0.0 and later passes compute 0.0 −. 0.0), but
   verify against the actual coefficients and refuse to skip anything
   if a single one is not bit-zero: skipping is only ever a no-op. *)
let verified_dead_mask (g : Gus.t) c =
  let dead = dead_mask_unverified g in
  if dead = 0 then 0
  else
    let nmasks = Array.length c in
    let ok = ref true in
    for s = 0 to nmasks - 1 do
      if s land dead <> 0 && not (c.(s) = 0.0) then ok := false
    done;
    if !ok then dead else 0

let skip_mask g = verified_dead_mask g (Gus.c_coefficients g)

let variance_bound_of_c_a ~a c =
  if not (a > 0.0) then infinity
  else begin
    let sum = ref 0.0 in
    Array.iter (fun cs -> if cs > 0.0 then sum := !sum +. cs) c;
    Float.max 0.0 ((!sum /. (a *. a)) -. 1.0)
  end

let variance_bound_of_c (g : Gus.t) c = variance_bound_of_c_a ~a:g.Gus.a c

let variance_bound g = variance_bound_of_c g (Gus.c_coefficients g)

let analyze ~(facts : Dataflow.table) (g : Gus.t) =
  let n = Gus.n_rels g in
  let c = Gus.c_coefficients g in
  let skip_mask = verified_dead_mask g c in
  let passes = Subset.count n - 1 in
  let skipped =
    if skip_mask = 0 then 0
    else passes - (Subset.count (n - Subset.cardinal skip_mask) - 1)
  in
  let root = Dataflow.root facts in
  let est_groups = Float.max 1.0 (Absdom.Card.exp root.Dataflow.card) in
  { n_rels = n;
    passes;
    skipped;
    est_groups;
    predicted_cost = float_of_int (passes - skipped) *. est_groups;
    variance_bound = variance_bound_of_c g c;
    skip_mask;
    cls = root.Dataflow.cls }

(* ---- symbolic analysis ----

   Same report, computed from the sum-of-products form without touching
   2^n anywhere:

   - the skip-mask is the complement of the *structural* live mask (a
     factor with lo = hi on float bits multiplies identical values into
     b_T and b_{T∪{i}}, so the dense entries would be bit-equal and the
     Möbius coefficients exact zeros — the same argument {!skip_mask}
     verifies numerically);
   - the variance bound either enumerates the coefficients over the
     *projected* k-relation live universe (k small: entries are bit-equal
     to the dense [b] at the embedded masks, the transform runs the same
     per-bit passes in the same order, and the positive-sum accumulates
     the surviving coefficients in the same ascending order the dense scan
     does — so the bound is bit-identical to {!analyze}'s), or uses the
     closed form Σ c_S⁺ = b_full = a for provably-nonnegative designs
     where enumeration would be wasteful. *)

module Symalg = Gus_core.Symalg

(* Below this live-relation count, always enumerate: bit-parity with the
   dense path costs at most 2^8 evaluations. *)
let sym_enum_limit = 8

(* Enumerating 2^k coefficients stays cheap well past the dense-array
   wall; beyond this the bound for non-monotone designs is unknown. *)
let sym_enum_hard_limit = 20

let analyze_sym ~(facts : Dataflow.table) (sym : Symalg.t) =
  match sym.Symalg.repr with
  | Symalg.Dense g -> analyze ~facts g
  | Symalg.Sop _ ->
      let n = Symalg.n_rels sym in
      let live = Symalg.live_mask sym in
      let k = Subset.cardinal live in
      let passes = Subset.full_wide n (* 2^n − 1 without the 2^n array *) in
      let skip_mask =
        if k = n then 0 else Subset.diff (Subset.full_wide n) live
      in
      let skipped = if skip_mask = 0 then 0 else passes - ((1 lsl k) - 1) in
      let enumerate () =
        let g_live = Symalg.to_gus (Symalg.project sym live) in
        variance_bound_of_c_a ~a:sym.Symalg.a (Gus.c_coefficients g_live)
      in
      let variance_bound =
        if not (sym.Symalg.a > 0.0) then infinity
        else if k <= sym_enum_limit then enumerate ()
        else if Symalg.nonneg_monotone sym then
          (* Σ c_S⁺ = Σ c_S = b_full = a exactly (all coefficients are
             nonnegative and the telescoping sum is the diagonal). *)
          Float.max 0.0 ((sym.Symalg.a /. (sym.Symalg.a *. sym.Symalg.a)) -. 1.0)
        else if k <= sym_enum_hard_limit then enumerate ()
        else infinity
      in
      let root = Dataflow.root facts in
      let est_groups = Float.max 1.0 (Absdom.Card.exp root.Dataflow.card) in
      { n_rels = n;
        passes;
        skipped;
        est_groups;
        predicted_cost = float_of_int (passes - skipped) *. est_groups;
        variance_bound;
        skip_mask;
        cls = root.Dataflow.cls }

let pp ppf r =
  Format.fprintf ppf
    "%d relation(s), %d moment pass(es) (%d provably zero), ~%g group(s), \
     predicted cost %g, worst-case Var/E%s %s %g"
    r.n_rels r.passes r.skipped r.est_groups r.predicted_cost "\xc2\xb2"
    "\xe2\x89\xa4" r.variance_bound
