lib/gus/gus.mli: Format Gus_util
