The serving engine end to end, over the NDJSON stdin/stdout protocol:
register a dataset, prepare one query, execute it twice with identical
(params, seed), run a batch, then read the stats snapshot.  Wall-clock
fields are normalized; everything else is deterministic.

  $ cat > requests <<'EOF'
  > {"op":"register","name":"t","scale":0.05}
  > {"op":"prepare","dataset":"t","name":"q","sql":"SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)"}
  > {"op":"execute","handle":"q","seed":7}
  > {"op":"execute","handle":"q","seed":7}
  > {"op":"batch","items":[{"handle":"q","seed":8},{"handle":"q","seed":7},{"handle":"nope","seed":7}]}
  > {"op":"stats"}
  > {"op":"execute","handle":"q","seed":7,"rates":{"lineitem":2.0}}
  > {"op":"frobnicate"}
  > EOF
  $ gusdb serve < requests | sed 's/"wall_us":[0-9]*/"wall_us":_/g' > responses

Registration reports the dataset version and its relations:

  $ sed -n 1p responses
  {"ok":true,"op":"register","dataset":"t","version":1,"source":"tpch(scale=0.05,seed=20130630)","relations":[{"name":"part","rows":100},{"name":"supplier","rows":5},{"name":"customer","rows":75},{"name":"orders","rows":750},{"name":"lineitem","rows":2983}]}

Preparation parses, plans and lints exactly once and installs the handle:

  $ sed -n 2p responses
  {"ok":true,"op":"prepare","handle":"q","dataset":"t","version":1,"relations":["lineitem"],"analyzable":true,"severity":"none","analysis":{"a":0.2,"class":"independent-bernoulli","relations":1,"coefficient_passes":1,"skipped_passes":0,"est_groups":596.6,"predicted_cost":596.6,"variance_bound":3.999999999999999},"diagnostics":[]}

The first execution is cold, the second — same handle, same seed, same
params — is answered from the LRU cache, bit-identical:

  $ sed -n 3p responses
  {"ok":true,"op":"execute","handle":"q","cached":false,"streamed":true,"wall_us":_,"result":{"cells":[{"label":"s","estimate":19508097.968093183,"stddev":929118.8210645813,"ci95_normal":{"lo":17687058.576172397,"hi":21329137.36001397},"ci95_chebyshev":{"lo":15352952.281943452,"hi":23663243.654242914}}],"n_sample_tuples":593}}
  $ sed -n 4p responses
  {"ok":true,"op":"execute","handle":"q","cached":true,"streamed":true,"wall_us":_,"result":{"cells":[{"label":"s","estimate":19508097.968093183,"stddev":929118.8210645813,"ci95_normal":{"lo":17687058.576172397,"hi":21329137.36001397},"ci95_chebyshev":{"lo":15352952.281943452,"hi":23663243.654242914}}],"n_sample_tuples":593}}
  $ sed -n 3p responses | sed 's/"cached":false/"cached":X/' > first
  $ sed -n 4p responses | sed 's/"cached":true/"cached":X/' > second
  $ cmp first second

The batch fans across the pool but returns results in submission order;
its second item is another hit for the seed-7 entry, and the failing item
is an in-band error object:

  $ sed -n 5p responses
  {"ok":true,"op":"batch","results":[{"ok":true,"op":"execute","handle":"q","cached":false,"streamed":true,"wall_us":_,"result":{"cells":[{"label":"s","estimate":19072840.27201876,"stddev":988241.8430617072,"ci95_normal":{"lo":17135921.88853605,"hi":21009758.65550147},"ci95_chebyshev":{"lo":14653288.39342745,"hi":23492392.15061007}}],"n_sample_tuples":608}},{"ok":true,"op":"execute","handle":"q","cached":true,"streamed":true,"wall_us":_,"result":{"cells":[{"label":"s","estimate":19508097.968093183,"stddev":929118.8210645813,"ci95_normal":{"lo":17687058.576172397,"hi":21329137.36001397},"ci95_chebyshev":{"lo":15352952.281943452,"hi":23663243.654242914}}],"n_sample_tuples":593}},{"ok":false,"op":"execute","error":{"code":"unknown_handle","message":"unknown handle nope"}}]}

The stats snapshot records the cache traffic — the acceptance bar is
cache.hits >= 1:

  $ grep -o '"cache.hits":[0-9]*' responses
  "cache.hits":2
  $ grep -o '"cache.misses":[0-9]*' responses
  "cache.misses":2
  $ grep -o '"cache.evictions":[0-9]*' responses
  "cache.evictions":0
  $ grep -o '"service.prepares":[0-9]*' responses
  "service.prepares":1
  $ grep -o '"scheduler.jobs":[0-9]*' responses
  "scheduler.jobs":1

Bad rate overrides and unknown ops come back as structured errors, and
the loop survives both:

  $ sed -n 7,8p responses
  {"ok":false,"op":"execute","error":{"code":"bad_request","message":"Sampler: probability 2 not in [0,1]"}}
  {"ok":false,"op":"frobnicate","error":{"code":"bad_request","message":"unknown op \"frobnicate\""}}

Served estimates are bit-identical to the one-shot CLI path — the same
(dataset, sql, seed) through `gusdb query --json` prints the exact same
estimate the cache served above:

  $ gusdb query -s 0.05 --seed 7 --json "SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)" | grep -o '"estimate":[^,]*'
  "estimate":19508097.968093183
  $ sed -n 3p responses | grep -o '"estimate":[^,]*'
  "estimate":19508097.968093183

The stats snapshot also reports uptime, pool lanes, per-verb request
counters, latency quantiles, and (when a journal is attached) the
flight-recorder occupancy; `{"format":"prometheus"}` returns the same
registry as a Prometheus text exposition instead.  A fresh session keeps
the counters deterministic:

  $ cat > requests2 <<'EOF2'
  > {"op":"register","name":"t","scale":0.05}
  > {"op":"prepare","dataset":"t","name":"q","sql":"SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)"}
  > {"op":"execute","handle":"q","seed":7}
  > {"op":"stats"}
  > {"op":"stats","format":"prometheus"}
  > {"op":"stats","format":"csv"}
  > not json
  > {"op":"stats"}
  > EOF2
  $ gusdb serve --journal journal2.ndjson < requests2 > responses2

Per-verb counters count every attempt (each stats request counts itself,
the unknown format and the unparsable line included), and the journal
object reports the flight recorder's occupancy:

  $ grep -o '"requests":{[^}]*}' responses2
  "requests":{"register":1,"prepare":1,"execute":1,"batch":0,"hello":0,"stats":1,"invalid":0}
  "requests":{"register":1,"prepare":1,"execute":1,"batch":0,"hello":0,"stats":4,"invalid":1}
  $ grep -o '"journal":{[^}]*}' responses2
  "journal":{"length":2,"capacity":4096,"dropped":0}
  "journal":{"length":2,"capacity":4096,"dropped":0}
  $ grep -c '"uptime_s":' responses2
  2
  $ grep -c '"pool_lanes":' responses2
  2
  $ grep -c '"latency_us":{"p50":' responses2
  2

The Prometheus exposition carries the same registry in text form (the
response body is one JSON string):

  $ grep -o '"format":"prometheus"' responses2
  "format":"prometheus"
  $ grep -o 'gus_serve_requests_execute_total 1' responses2
  gus_serve_requests_execute_total 1
  $ grep -o 'gus_cache_misses_total [0-9][0-9]*' responses2
  gus_cache_misses_total 1
  $ grep -o 'gus_serve_latency_us_bucket{le=..+Inf..}' responses2
  gus_serve_latency_us_bucket{le=\"+Inf\"}

An unknown stats format is a structured error; the loop survives it and
the unparsable line alike:

  $ sed -n 6p responses2 | grep -o '"code":"[a-z_]*"'
  "code":"bad_request"
  $ sed -n 7p responses2 | grep -o '"code":"[a-z_]*"'
  "code":"bad_json"

Load shedding, deterministically: --force-shed pins the admission
controller's overload factor, so every execute is answered from
degraded Section-8 sampling rates — marked shed:true with the selected
shed_rates and the overload factor, honestly wider CI.  The hello verb
reports the wire protocol version.  Client-pinned rates are never
overridden:

  $ cat > requests3 <<'EOF3'
  > {"op":"hello"}
  > {"op":"register","name":"t","scale":0.05}
  > {"op":"prepare","dataset":"t","name":"q","sql":"SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)"}
  > {"op":"execute","handle":"q","seed":7}
  > {"op":"execute","handle":"q","seed":7,"rates":{"lineitem":0.2}}
  > EOF3
  $ gusdb serve --force-shed 3.0 --journal shed.ndjson < requests3 | sed 's/"wall_us":[0-9]*/"wall_us":_/g' > responses3
  $ sed -n 1p responses3
  {"ok":true,"op":"hello","protocol_version":1,"server":"gusdb","session":1}
  $ sed -n 4p responses3 | grep -o '"shed":true,"shed_rates":{[^}]*},"overload":[0-9.]*'
  "shed":true,"shed_rates":{"lineitem":0.06637613141133088},"overload":3
  $ sed -n 5p responses3 | grep -c '"shed"'
  0
  [1]

The shed execution's journal replays bit-identically — the degraded
rates ride in the exec event, the decision itself is advisory:

  $ grep -c '"ev":"shed"' shed.ndjson
  1
  $ gusdb replay shed.ndjson
  replayed 2 execution(s) over 1 registered dataset(s)
  1 shed decision(s) noted (degraded rates replayed via their exec events)
  all 2 estimate(s) bit-identical
