module Vec = Gus_util.Vec

type t = {
  name : string;
  schema : Schema.t;
  lineage_schema : Lineage.schema;
  tuples : Tuple.t Vec.t;
}

let create_base ~name schema =
  { name;
    schema;
    lineage_schema = Lineage.schema_of name;
    tuples = Vec.create () }

let derived ?(name = "<derived>") schema lineage_schema =
  { name; schema; lineage_schema; tuples = Vec.create () }

let append_row t values =
  if not (Lineage.schema_equal t.lineage_schema (Lineage.schema_of t.name)) then
    invalid_arg "Relation.append_row: not a base relation";
  Schema.check_tuple t.schema values;
  Vec.push t.tuples (Tuple.make values [| Vec.length t.tuples |])

let append_tuple t tup = Vec.push t.tuples tup

let cardinality t = Vec.length t.tuples
let tuple t i = Vec.get t.tuples i
let iter f t = Vec.iter f t.tuples
let fold f acc t = Vec.fold f acc t.tuples

let column_values t name =
  let i = Schema.index_of t.schema name in
  Array.map (fun tup -> Tuple.value tup i) (Vec.to_array t.tuples)

let pp ppf t =
  Format.fprintf ppf "%s%a (%d rows)" t.name Schema.pp t.schema (cardinality t);
  let limit = min 5 (cardinality t) in
  for i = 0 to limit - 1 do
    Format.fprintf ppf "@\n  %a" Tuple.pp (tuple t i)
  done;
  if cardinality t > limit then Format.fprintf ppf "@\n  ..."

let to_csv_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (String.concat "," (List.map (fun c -> c.Schema.name) (Schema.columns t.schema)));
  Buffer.add_char buf '\n';
  iter
    (fun tup ->
      let cells = Array.map Value.to_display tup.Tuple.values in
      Buffer.add_string buf (String.concat "," (Array.to_list cells));
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let sum_column t name =
  let i = Schema.index_of t.schema name in
  fold
    (fun acc tup ->
      match Tuple.value tup i with
      | Value.Null -> acc
      | v -> acc +. Value.to_float v)
    0.0 t
