module Gus = Gus_core.Gus
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sampler = Gus_sampling.Sampler
module Subset = Gus_util.Subset
module Tablefmt = Gus_util.Tablefmt
open Gus_relational

(* Figure 4's bottom table, G(a123, b123): subsets use l,o,c,p naming. *)
let paper_g123 =
  [ ([], 1.11e-7);
    ([ "part" ], 2.22e-7);
    ([ "customer" ], 1.11e-7);
    ([ "customer"; "part" ], 2.22e-7);
    ([ "orders" ], 1.667e-5);
    ([ "orders"; "part" ], 3.335e-5);
    ([ "orders"; "customer" ], 1.667e-5);
    ([ "orders"; "customer"; "part" ], 3.335e-5);
    ([ "lineitem" ], 1.11e-6);
    ([ "lineitem"; "part" ], 2.22e-6);
    ([ "lineitem"; "customer" ], 1.11e-6);
    ([ "lineitem"; "customer"; "part" ], 2.22e-6);
    ([ "lineitem"; "orders" ], 1.667e-4);
    ([ "lineitem"; "orders"; "part" ], 3.334e-4);
    ([ "lineitem"; "orders"; "customer" ], 1.667e-4);
    ([ "lineitem"; "orders"; "customer"; "part" ], 3.334e-4) ]

let paper_a123 = 3.334e-4

let card = function
  | "orders" -> 150000
  | "lineitem" -> 6000000
  | "customer" -> 15000
  | "part" -> 200000
  | r -> invalid_arg r

let plan () =
  Splan.Equi_join
    { left =
        Splan.Equi_join
          { left =
              Splan.Equi_join
                { left = Splan.Sample (Sampler.Bernoulli 0.1, Splan.Scan "lineitem");
                  right = Splan.Sample (Sampler.Wor 1000, Splan.Scan "orders");
                  left_key = Expr.col "l_orderkey";
                  right_key = Expr.col "o_orderkey" };
            right = Splan.Scan "customer";
            left_key = Expr.col "o_custkey";
            right_key = Expr.col "c_custkey" };
      right = Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "part");
      left_key = Expr.col "l_partkey";
      right_key = Expr.col "p_partkey" }

let derived () = Rewrite.analyze ~card (plan ())

let mask_of g names =
  let pos name =
    match
      Array.to_list g.Gus.rels
      |> List.mapi (fun i r -> (r, i))
      |> List.assoc_opt name
    with
    | Some i -> i
    | None -> invalid_arg name
  in
  List.fold_left (fun acc r -> Subset.add acc (pos r)) Subset.empty names

let run () =
  Harness.section "T3"
    "Figure 4 - 4-relation plan transformation and the G(a123,b123) table";
  print_endline "Input plan (Figure 4.a):";
  Format.printf "%a@." Splan.pp_tree (plan ());
  let r = derived () in
  Printf.printf "Rewrite steps (Props 4-8): %d local transformations\n\n"
    (List.length r.Rewrite.steps);
  let g = (Lazy.force r.Rewrite.gus) in
  let t = Tablefmt.create ~headers:[ "coefficient"; "paper"; "derived"; "rel.diff" ] in
  let add name paper v =
    Tablefmt.add_row t
      [ name; Harness.fcell paper; Harness.fcell v;
        Printf.sprintf "%.3f%%" (100.0 *. Float.abs (v -. paper) /. paper) ]
  in
  add "a123" paper_a123 g.Gus.a;
  let worst = ref 0.0 in
  List.iter
    (fun (names, paper) ->
      let v = Gus.b_get g (mask_of g names) in
      worst := Float.max !worst (Float.abs (v -. paper) /. paper);
      let label =
        if names = [] then "b{}" else "b{" ^ String.concat "," names ^ "}"
      in
      add label paper v)
    paper_g123;
  Tablefmt.print t;
  Printf.printf
    "\nworst relative deviation from the paper's table: %.3f%% (paper rounds \
     to 4 significant digits)\n"
    (100.0 *. !worst)
