lib/estimator/wr_baseline.mli: Gus_relational
