The CLI lists its experiments:

  $ gusdb experiments --list | head -4
  T1   GUS parameters of known sampling methods           [Figure 1]
  T2   Query 1 GUS derivation                             [Examples 1-3, Figure 2]
  T3   4-relation plan transformation                     [Figure 4]
  T4   Subsampling pipeline coefficients                  [Figure 5, Examples 5-6]

Plan explanation shows the SOA rewrite and the top GUS (deterministic):

  $ gusdb plan -s 0.01 "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (5 ROWS) WHERE l_orderkey = o_orderkey"
  sampling plan:
  join l_orderkey = o_orderkey
    Bernoulli(0.1)
      lineitem
    WOR(5)
      orders
  
  SOA rewrite (5 steps):
    translate Bernoulli(0.1)                 a = 0.1
    compact Bernoulli(0.1) into input        a = 0.1
    translate WOR(5)                         a = 0.0333333
    compact WOR(5) into input                a = 0.0333333
    join (Prop 6)                            a = 0.00333333
  
  top GUS quasi-operator:
    G over [lineitem,orders]: a = 0.00333333, b{} = 8.94855e-06,
    b{lineitem} = 8.94855e-05, b{orders} = 0.000333333,
    b{lineitem,orders} = 0.00333333
  
  sample-free skeleton:
  join l_orderkey = o_orderkey
    lineitem
    orders
  

Queries are deterministic under a fixed seed:

  $ gusdb query -s 0.05 --seed 7 "SELECT COUNT(*) AS n FROM lineitem TABLESAMPLE (50 PERCENT)"
  sample tuples: 1528
  n = 3056 (sd 55.28)
    95% normal    [2947.65, 3164.35] (95% normal, est=3056, sd=55.2811)
    95% chebyshev [2808.78, 3303.22] (95% chebyshev, est=3056, sd=55.2811)
  

Data generation writes one CSV per relation:

  $ gusdb gen -s 0.01 -o out >/dev/null && ls out
  customer.csv
  lineitem.csv
  orders.csv
  part.csv
  supplier.csv

CSV roundtrip: exporting with the query commands' generation seed and
querying the CSVs gives the same exact answer as the in-memory database:

  $ gusdb gen -s 0.01 --seed 20130630 -o out2 >/dev/null
  $ gusdb query -s 0.01 --exact "SELECT SUM(l_quantity) AS q FROM lineitem" | tail -1
    q = 15464
  $ gusdb query -s 0.01 --data out2 --exact "SELECT SUM(l_quantity) AS q FROM lineitem" | tail -1
    q = 15464

Bad SQL produces a parse error and non-zero exit:

  $ gusdb query "SELECT FROM"; echo "exit: $?"
  gusdb: expected an aggregate (SUM/COUNT/AVG/QUANTILE) but found FROM
  exit: 1

The linter lists its diagnostic registry:

  $ gusdb lint --codes | head -3
  GUS001 error   self-join: a relation appears on both sides of a join   [Prop. 6 (disjoint lineage); Section 9]
  GUS002 error   union of samples of two different expressions           [Prop. 7]
  GUS003 error   WOR sampling over a derived or already-sampled input    [Figure 1 (WOR needs a fixed N); Section 9]

A clean plan lints silently and exits 0:

  $ gusdb lint -s 0.01 "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT)"; echo "exit: $?"
  sampling plan:
  Bernoulli(0.1)
    lineitem
  
  plan is GUS-analyzable: a = 0.1 over [lineitem]
  0 error(s), 0 warning(s), 0 hint(s)
  exit: 0

A plan with several problems reports every code at once and exits 1
(the self-join is let through the planner so the linter can see it):

  $ gusdb lint -s 0.01 "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (2000000000 ROWS), lineitem"; echo "exit: $?"
  sampling plan:
  cross  <-- GUS001
    WOR(2000000000)  <-- GUS008
      lineitem
    lineitem
  
  GUS001 error   at $ (cross): relation lineitem used on both sides of the join: overlapping lineage violates Prop. 6's disjointness precondition (self-joins are outside GUS) [Prop. 6 (disjoint lineage); Section 9]
  GUS008 error   at $.0 (WOR(2000000000)): WOR(2000000000) over lineitem (N = 584): inclusion probability n/N = 3.42466e+06 exceeds 1 [Def. 1 (GUS probabilities)]
  plan is not GUS-analyzable
  2 error(s), 0 warning(s), 0 hint(s)
  exit: 1

A legal but statistically degenerate sampling rate is a warning
(exit stays 0):

  $ gusdb lint -s 0.01 "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (0.005 PERCENT)"; echo "exit: $?"
  sampling plan:
  Bernoulli(5e-05)  <-- GUS010, GUS015
    lineitem
  
  GUS010 warning at $ (Bernoulli(5e-05)): effective sampling fraction a = 5e-05 is below 0.001: Theorem-1 variance terms scale with c_S/a² (blow-up factor ≈ 4e+08) [Theorem 1 (variance terms c_S/a²)]
  GUS015 hint    at $ (Bernoulli(5e-05)): worst-case relative variance (Theorem 1, f ≥ 0): Var/E² ≤ 2e+04 ≥ the 1e+04 threshold — relative standard error up to ≈ 141× [Theorem 1 (worst-case Var/E² for f ≥ 0)]
  plan is GUS-analyzable: a = 5e-05 over [lineitem]
  0 error(s), 1 warning(s), 1 hint(s)
  exit: 0

Machine-readable output:

  $ gusdb lint --json -s 0.01 "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (2000000000 ROWS), lineitem"; echo "exit: $?"
  {
    "errors": 2,
    "warnings": 0,
    "hints": 0,
    "analyzable": false,
    "diagnostics": [
      {"code": "GUS001", "severity": "error", "path": "$", "node": "cross", "message": "relation lineitem used on both sides of the join: overlapping lineage violates Prop. 6's disjointness precondition (self-joins are outside GUS)", "citation": "Prop. 6 (disjoint lineage); Section 9"},
      {"code": "GUS008", "severity": "error", "path": "$.0", "node": "WOR(2000000000)", "message": "WOR(2000000000) over lineitem (N = 584): inclusion probability n/N = 3.42466e+06 exceeds 1", "citation": "Def. 1 (GUS probabilities)"}
    ]
  }
  exit: 1

The diagnostics table in DESIGN.md §5 is kept in lockstep with the
registry: code and severity agree line for line.

  $ gusdb lint --codes | awk '{print $1, $2}' > codes_cli
  $ grep -E '^\| GUS[0-9]+ \|' ../../DESIGN.md | cut -d'|' -f2,3 | tr -d ' ' | tr '|' ' ' > codes_doc
  $ diff codes_cli codes_doc

--fix applies the machine-applicable rewrites to a fixpoint and
re-lints: a WOR that keeps all 584 lineitem rows is the identity GUS
(GUS011) and is dropped, leaving a clean plan.  Every fix preserves
the sample-free skeleton and the estimator's expectation:

  $ gusdb lint -s 0.01 --fix "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (584 ROWS)"; echo "exit: $?"
  sampling plan:
  WOR(584)  <-- GUS011, GUS016
    lineitem
  
  GUS011 hint    at $ (WOR(584)): WOR(584) over lineitem keeps all N = 584 tuples: it is the identity GUS and can be removed [Prop. 4 (identity GUS)] (fix: drop redundant WOR(584))
  GUS016 hint    at $ (WOR(584)): 1 of 1 coefficient subset(s) are provably zero (Prop. 6 product form: [lineitem] carry no sampling randomness): the moments kernel skips those passes [Prop. 6 (product-form zero coefficients)]
  plan is GUS-analyzable: a = 1 over [lineitem]
  0 error(s), 0 warning(s), 2 hint(s)
  
  applied 1 fix(es):
    drop redundant WOR(584)
  fixed plan:
  lineitem
  
  0 error(s), 0 warning(s), 0 hint(s)
  exit: 0




lint-workload sweeps a SQL corpus directory into one aggregated JSON
report with a stable exit-code contract (0 clean, 1 any error-severity
finding or unparsable query, 124 missing directory):

  $ mkdir corpus
  $ cat > corpus/good.sql <<'EOF'
  > -- a clean sampled aggregate
  > SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT);
  > EOF
  $ gusdb lint-workload -s 0.01 corpus; echo "exit: $?"
  {"ok":true,"op":"lint-workload","dir":"corpus","files":1,"queries":1,"unparsable":0,"errors":0,"warnings":0,"hints":0,"by_code":{},"entries":[{"file":"good.sql","query":0,"status":"ok","severity":"none","errors":0,"warnings":0,"hints":0,"fixable":0,"analysis":{"a":0.1,"class":"independent-bernoulli","relations":1,"coefficient_passes":1,"skipped_passes":0,"est_groups":58.400000000000006,"predicted_cost":58.400000000000006,"variance_bound":8.999999999999998}}]}
  exit: 0

A corpus with a self-join (error severity) and an unparsable statement
exits 1, and the report counts both:

  $ cat > corpus/bad.sql <<'EOF'
  > SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT), lineitem;
  > SELECT BOGUS;
  > EOF
  $ gusdb lint-workload -s 0.01 corpus > report.json; echo "exit: $?"
  exit: 1
  $ grep -o '"errors":[0-9]*' report.json | head -1
  "errors":1
  $ grep -o '"unparsable":[0-9]*' report.json | head -1
  "unparsable":1
  $ grep -o '"by_code":{[^}]*}' report.json
  "by_code":{"GUS001":1}
  $ gusdb lint-workload -s 0.01 no_such_dir; echo "exit: $?"
  gusdb lint-workload: no such directory no_such_dir
  exit: 124

Unsupported plans are rejected by query before any sampling runs,
with the same stable codes:

  $ gusdb query -s 0.01 "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (2000000000 ROWS)"; echo "exit: $?"
  gusdb: unsupported plan: GUS008: WOR(2000000000) over lineitem (N = 584): inclusion probability n/N = 3.42466e+06 exceeds 1 [Def. 1 (GUS probabilities)]
  exit: 1

EXPLAIN ANALYZE annotates every node with wall time and row counts, and
sampling nodes with their rates (a, b0) and Theorem-1 variance share.
Wall times vary run to run, so they are normalized to T here; the row
counts, rates and variance are seed-deterministic:

  $ gusdb query -s 0.05 --seed 7 --explain-analyze "SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (50 PERCENT), orders WHERE l_orderkey = o_orderkey" | sed -E -e 's/wall [0-9.]+(us|ms|s)/wall T/g' -e 's/^(total wall:) .*/\1 T/'
  join l_orderkey = o_orderkey  [wall T, in 2278, out 1528]
    Bernoulli(0.5)  [wall T, in 2983, out 1528, a=0.5, b0=0.25, var_share=2.695e+06]
      lineitem  [wall T, in 2983, out 2983]
    orders  [wall T, in 750, out 750]
  total wall: T
  estimator variance (first aggregate): 2.69455e+06
  sample tuples: 1528
  q = 79382 (sd 1642)
    95% normal    [76164.7, 82599.3] (95% normal, est=79382, sd=1641.51)
    95% chebyshev [72041, 86723] (95% chebyshev, est=79382, sd=1641.51)
  


--metrics-out dumps the process-global instruments; the sampler counters
are seed-deterministic (draws are derived from input cardinalities, so
recording them never perturbs the RNG stream):

  $ gusdb query -s 0.05 --seed 7 --metrics-out metrics.json "SELECT COUNT(*) AS n FROM lineitem TABLESAMPLE (50 PERCENT)" >/dev/null
  $ grep -o '"sampler[^,}]*' metrics.json
  "sampler.bernoulli.draws": 2983
  "sampler.rows_in": 2983
  "sampler.rows_out": 1528

--trace-out writes Chrome trace_event JSON: balanced B/E span pairs
(here the Bernoulli node and its scan):

  $ gusdb query -s 0.05 --seed 7 --trace-out trace.json "SELECT COUNT(*) AS n FROM lineitem TABLESAMPLE (50 PERCENT)" >/dev/null
  $ grep -c '"ph":"B"' trace.json
  2
  $ grep -c '"ph":"E"' trace.json
  2
  $ grep -c '"traceEvents"' trace.json
  1
