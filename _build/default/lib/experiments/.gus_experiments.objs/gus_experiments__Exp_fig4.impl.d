lib/experiments/exp_fig4.ml: Array Expr Float Format Gus_core Gus_relational Gus_sampling Gus_util Harness List Printf String
