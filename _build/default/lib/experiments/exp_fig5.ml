module Gus = Gus_core.Gus
module Tablefmt = Gus_util.Tablefmt

let bi_bernoulli () =
  Gus.join (Gus.bernoulli ~rel:"lineitem" 0.2) (Gus.bernoulli ~rel:"orders" 0.3)

let stacked () = Gus.compact (bi_bernoulli ()) (Exp_query1.derived ())

let paper_g3 =
  [ ("b{}", 0.0036); ("b{lineitem}", 0.018); ("b{orders}", 0.012);
    ("b{lineitem,orders}", 0.06) ]

let paper_stacked =
  [ ("b{}", 1.598e-9); ("b{lineitem}", 7.992e-8); ("b{orders}", 8e-7);
    ("b{lineitem,orders}", 4e-5) ]

let coeff g name =
  let found = ref None in
  Array.iteri
    (fun s _ -> if "b" ^ Gus.subset_name g s = name then found := Some s)
    g.Gus.b;
  match !found with Some s -> Gus.b_get g s | None -> invalid_arg name

let table title g paper_a paper =
  Printf.printf "%s\n" title;
  let t = Tablefmt.create ~headers:[ "coefficient"; "paper"; "derived"; "rel.diff" ] in
  let add name pv v =
    Tablefmt.add_row t
      [ name; Harness.fcell pv; Harness.fcell v;
        Printf.sprintf "%.3f%%" (100.0 *. Float.abs (v -. pv) /. pv) ]
  in
  add "a" paper_a g.Gus.a;
  List.iter (fun (name, pv) -> add name pv (coeff g name)) paper;
  Tablefmt.print t;
  print_newline ()

let run () =
  Harness.section "T4"
    "Figure 5 / Examples 5-6 - bi-dimensional Bernoulli subsampling for cheap y_S";
  table "Example 5: G3 = B(0.2) o B(0.3) (Prop 9 composition)" (bi_bernoulli ())
    0.06 paper_g3;
  table "Figure 5 (f): G(a123) = G3 compacted onto Query 1's G12 (Prop 8)"
    (stacked ()) 4e-5 paper_stacked
