lib/relational/database.mli: Relation
