examples/approx_view.mli:
