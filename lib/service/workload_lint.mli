(** Workload-level linting: run the static analyzer over a directory of
    SQL files and aggregate everything into one machine-readable report —
    the [gusdb lint-workload <dir>] backend and the CI regression gate.

    The corpus is every [*.sql] file under the directory (recursively),
    in sorted path order; a file may hold several ';'-terminated
    statements ('--' starts a line comment).  Queries that fail to parse
    or plan are reported as [unparsable] entries rather than aborting the
    sweep. *)

type outcome =
  | Linted of Gus_analysis.Lint.report
  | Unparsable of string  (** parse/plan failure message *)

type entry = {
  file : string;  (** path relative to the corpus root *)
  query_index : int;  (** 0-based statement index within the file *)
  sql : string;
  outcome : outcome;
}

type report = {
  dir : string;
  files : int;
  entries : entry list;
}

val run :
  ?config:Gus_analysis.Lint.config ->
  ?engine:Gus_analysis.Lint.coeff_engine ->
  Gus_relational.Database.t ->
  string ->
  report
(** [run db dir] lints every statement of every [*.sql] file under
    [dir] against [db]'s cardinalities.  [engine] selects the coefficient
    engine (default [`Symbolic]; [`Dense] is the legacy byte-comparison
    baseline).  Raises [Sys_error] if [dir] does not exist. *)

val errors : report -> int
(** Total error-severity findings across the workload. *)

val unparsable : report -> int

val exit_code : report -> int
(** Stable CI contract: [0] — every query parsed and linted free of
    error-severity findings; [1] — at least one error finding or
    unparsable query.  (The CLI reserves [124] for a missing corpus
    directory.) *)

val to_json : report -> Json.t
(** The aggregated report: totals by severity, a [by_code] histogram of
    every [GUSxxx] raised, and one entry per query with its diagnostics
    (including attached fixes) and, when analyzable, the static
    cost/variance analysis.  Round-trips through {!Json.of_string}. *)

val diagnostic_json : Gus_analysis.Diagnostic.t -> Json.t
(** Shared with the serving protocol's prepare/lint responses. *)

val analysis_json : Gus_analysis.Lint.analysis -> Json.t
(** The static-analysis summary object ([a], GUS class, pass counts,
    predicted cost, variance bound) attached to prepare responses. *)

val severity_label : Gus_analysis.Lint.report -> string
(** ["error"], ["warning"], ["hint"] — the worst severity present — or
    ["none"]. *)
