module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Gus = Gus_core.Gus
module Moments = Gus_estimator.Moments
module Sampler = Gus_sampling.Sampler
module Tablefmt = Gus_util.Tablefmt
open Gus_relational

let chain_card _ = 100000

let chain_plan ~n =
  if n < 1 then invalid_arg "chain_plan";
  let leaf i =
    Splan.Sample
      ( Sampler.Bernoulli (0.05 +. (0.01 *. float_of_int i)),
        Splan.Scan (Printf.sprintf "r%d" i) )
  in
  let rec build acc i =
    if i >= n then acc
    else
      build
        (Splan.Equi_join
           { left = acc;
             right = leaf i;
             left_key = Expr.col (Printf.sprintf "k%d" (i - 1));
             right_key = Expr.col (Printf.sprintf "k%d" i) })
        (i + 1)
  in
  build (leaf 0) 1

let synthetic_pairs ~n_rels ~m ~seed =
  let rng = Gus_util.Rng.create seed in
  Array.init m (fun _ ->
      ( Array.init n_rels (fun _ -> Gus_util.Rng.int rng 1000),
        Gus_util.Rng.float rng ))

let run () =
  Harness.section "E4" "Runtime of the statistical analysis (SBox)";
  print_endline "(a) plan rewrite + c_S coefficients vs number of relations:";
  let t = Tablefmt.create ~headers:[ "relations"; "2^n"; "rewrite (us)"; "c_S (us)" ] in
  List.iter
    (fun n ->
      let plan = chain_plan ~n in
      let rewrite_us =
        Harness.median_time_us (fun () ->
            ignore (Rewrite.analyze ~card:chain_card plan))
      in
      let gus = (Lazy.force (Rewrite.analyze ~card:chain_card plan).Rewrite.gus) in
      let c_us =
        Harness.median_time_us (fun () -> ignore (Gus.c_coefficients gus))
      in
      Tablefmt.add_row t
        [ string_of_int n;
          string_of_int (1 lsl n);
          Printf.sprintf "%.1f" rewrite_us;
          Printf.sprintf "%.1f" c_us ])
    [ 2; 4; 6; 8; 10; 12 ];
  Tablefmt.print t;
  print_endline
    "\n(b) y_S moment computation vs sample size (2-relation lineage):";
  let t2 = Tablefmt.create ~headers:[ "sample tuples"; "time (ms)"; "us/tuple" ] in
  List.iter
    (fun m ->
      let pairs = synthetic_pairs ~n_rels:2 ~m ~seed:5 in
      let us =
        Harness.median_time_us ~repeats:5 (fun () ->
            ignore (Moments.of_pairs ~n_rels:2 pairs))
      in
      Tablefmt.add_row t2
        [ string_of_int m;
          Printf.sprintf "%.2f" (us /. 1000.0);
          Printf.sprintf "%.3f" (us /. float_of_int m) ])
    [ 1000; 10000; 50000; 100000 ];
  Tablefmt.print t2;
  print_endline
    "\nexpected shape: rewrite stays in the low-millisecond range through \
     n = 12 (2^n = 4096 coefficients); the moment pass is linear in the \
     sample size.";
  (* (c) end-to-end overhead on the real workload. *)
  let db = Harness.db_cached ~scale:1.0 in
  let plan = Harness.query1_plan () in
  let rng = Gus_util.Rng.create 7 in
  let sample, exec_s = Harness.time (fun () -> Splan.exec db rng plan) in
  let analysis = Rewrite.analyze_db db plan in
  let _, sbox_s =
    Harness.time (fun () ->
        ignore
          (Gus_estimator.Sbox.of_relation ~gus:(Lazy.force analysis.Rewrite.gus)
             ~f:Harness.revenue_f sample))
  in
  Printf.printf
    "\n(c) Query 1 end to end: sampling+join %.1f ms, SBox analysis %.1f ms \
     on %d result tuples (%.0f%% overhead)\n"
    (1000.0 *. exec_s) (1000.0 *. sbox_s)
    (Relation.cardinality sample)
    (100.0 *. sbox_s /. exec_s)
