(* Tests for gus_sampling: the physical samplers and the Section-7
   multidimensional subsampler. *)

module Sampler = Gus_sampling.Sampler
module Subsample = Gus_sampling.Subsample
module Rng = Gus_util.Rng
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let int_relation ?(name = "r") ?(column = "x") n =
  let schema = Schema.make [ { Schema.name = column; ty = Value.TInt } ] in
  let rel = Relation.create_base ~name schema in
  for i = 0 to n - 1 do
    Relation.append_row rel [| Value.Int i |]
  done;
  rel

let row_ids rel =
  List.sort compare
    (Relation.fold (fun acc t -> t.Tuple.lineage.(0) :: acc) [] rel)

(* ---- validation ---- *)

let test_validate () =
  Sampler.validate (Sampler.Bernoulli 0.5);
  Sampler.validate (Sampler.Wor 0);
  let raises s =
    try Sampler.validate s; false with Invalid_argument _ -> true
  in
  check_bool "p > 1" true (raises (Sampler.Bernoulli 1.5));
  check_bool "p < 0" true (raises (Sampler.Bernoulli (-0.1)));
  check_bool "negative n" true (raises (Sampler.Wor (-1)));
  check_bool "zero block" true
    (raises (Sampler.Block { rows_per_block = 0; p = 0.5 }))

(* ---- Bernoulli ---- *)

let test_bernoulli_rate () =
  let rel = int_relation 20000 in
  let s = Sampler.apply (Sampler.Bernoulli 0.3) (Rng.create 1) rel in
  let rate = float_of_int (Relation.cardinality s) /. 20000.0 in
  check_bool "empirical rate" true (Float.abs (rate -. 0.3) < 0.02);
  (* edge rates *)
  check_int "p=0 empty" 0
    (Relation.cardinality (Sampler.apply (Sampler.Bernoulli 0.0) (Rng.create 2) rel));
  check_int "p=1 all" 20000
    (Relation.cardinality (Sampler.apply (Sampler.Bernoulli 1.0) (Rng.create 3) rel))

let test_bernoulli_preserves_lineage () =
  let rel = int_relation 100 in
  let s = Sampler.apply (Sampler.Bernoulli 0.5) (Rng.create 4) rel in
  Relation.iter
    (fun t ->
      let id = t.Tuple.lineage.(0) in
      check_bool "value matches id" true (Tuple.value t 0 = Value.Int id))
    s

(* ---- WOR ---- *)

let test_wor_exact_size () =
  let rel = int_relation 500 in
  let s = Sampler.apply (Sampler.Wor 123) (Rng.create 5) rel in
  check_int "exact size" 123 (Relation.cardinality s);
  let ids = row_ids s in
  check_int "distinct ids" 123 (List.length (List.sort_uniq compare ids))

let test_wor_oversized () =
  let rel = int_relation 10 in
  let s = Sampler.apply (Sampler.Wor 50) (Rng.create 6) rel in
  check_int "capped at population" 10 (Relation.cardinality s)

(* ---- WR ---- *)

let test_wr_size_and_duplicates () =
  let rel = int_relation 5 in
  let s = Sampler.apply (Sampler.Wr 100) (Rng.create 7) rel in
  check_int "exact draws" 100 (Relation.cardinality s);
  let distinct = List.length (List.sort_uniq compare (row_ids s)) in
  check_bool "duplicates present" true (distinct < 100)

let test_wr_empty_population () =
  let rel = int_relation 0 in
  let s = Sampler.apply (Sampler.Wr 10) (Rng.create 8) rel in
  check_int "empty" 0 (Relation.cardinality s)

(* ---- Block ---- *)

let test_block_lineage_granularity () =
  let rel = int_relation 1000 in
  let s =
    Sampler.apply (Sampler.Block { rows_per_block = 100; p = 0.5 }) (Rng.create 9) rel
  in
  (* every surviving tuple's lineage is its block id, consistent with its value *)
  Relation.iter
    (fun t ->
      let row = match Tuple.value t 0 with Value.Int i -> i | _ -> assert false in
      check_int "block id" (row / 100) t.Tuple.lineage.(0))
    s;
  (* blocks survive whole: counts per block id are 0 or 100 *)
  let counts = Hashtbl.create 16 in
  Relation.iter
    (fun t ->
      let b = t.Tuple.lineage.(0) in
      Hashtbl.replace counts b (1 + Option.value (Hashtbl.find_opt counts b) ~default:0))
    s;
  Hashtbl.iter (fun _ c -> check_int "whole block" 100 c) counts

let test_block_requires_base () =
  let rel = int_relation 10 in
  let derived = Ops.cross rel (int_relation ~name:"s" ~column:"y" 3) in
  check_bool "derived rejected" true
    (try
       ignore
         (Sampler.apply (Sampler.Block { rows_per_block = 2; p = 0.5 })
            (Rng.create 10) derived);
       false
     with Invalid_argument _ -> true)

(* ---- Hash Bernoulli ---- *)

let test_hash_bernoulli_deterministic () =
  let rel = int_relation 1000 in
  let s1 = Sampler.apply (Sampler.Hash_bernoulli { seed = 3; p = 0.4 }) (Rng.create 1) rel in
  let s2 = Sampler.apply (Sampler.Hash_bernoulli { seed = 3; p = 0.4 }) (Rng.create 999) rel in
  check (Alcotest.list Alcotest.int) "rng-independent" (row_ids s1) (row_ids s2);
  let s3 = Sampler.apply (Sampler.Hash_bernoulli { seed = 4; p = 0.4 }) (Rng.create 1) rel in
  check_bool "seed changes the sample" true (row_ids s1 <> row_ids s3)

let test_hash_bernoulli_nested () =
  (* p=0.6 then p=0.3 with the same seed: the 0.3 sample is a subset. *)
  let rel = int_relation 2000 in
  let big = Sampler.apply (Sampler.Hash_bernoulli { seed = 5; p = 0.6 }) (Rng.create 1) rel in
  let small = Sampler.apply (Sampler.Hash_bernoulli { seed = 5; p = 0.3 }) (Rng.create 1) rel in
  let big_set = row_ids big in
  List.iter
    (fun id -> check_bool "nested" true (List.mem id big_set))
    (row_ids small)

(* ---- sampling_fraction ---- *)

let test_sampling_fraction () =
  check (Alcotest.float 1e-9) "bernoulli" 0.25
    (Sampler.sampling_fraction (Sampler.Bernoulli 0.25) ~n:100);
  check (Alcotest.float 1e-9) "wor" 0.1 (Sampler.sampling_fraction (Sampler.Wor 10) ~n:100);
  check (Alcotest.float 1e-9) "wor capped" 1.0
    (Sampler.sampling_fraction (Sampler.Wor 200) ~n:100);
  check (Alcotest.float 1e-9) "wor empty pop" 0.0
    (Sampler.sampling_fraction (Sampler.Wor 10) ~n:0)

(* ---- Subsample ---- *)

let join_fixture () =
  (* r x s cross product: lineage has two slots. *)
  let r = int_relation ~name:"r" 40 in
  let s = int_relation ~name:"s" ~column:"y" 25 in
  Ops.cross r s

let test_subsample_filter_consistency () =
  let j = join_fixture () in
  let dims =
    [ { Subsample.relation = "r"; seed = 1; p = 0.5 };
      { Subsample.relation = "s"; seed = 2; p = 0.5 } ]
  in
  let sub = Subsample.apply dims j in
  (* GUS filter behaviour: if (r_id, s_id) survived, every surviving pair
     with the same r_id agrees on r's decision — i.e. the surviving r_ids
     and s_ids form a combinatorial rectangle. *)
  let r_ids = Hashtbl.create 16 and s_ids = Hashtbl.create 16 in
  Relation.iter
    (fun t ->
      Hashtbl.replace r_ids t.Tuple.lineage.(0) ();
      Hashtbl.replace s_ids t.Tuple.lineage.(1) ())
    sub;
  check_int "rectangle" (Hashtbl.length r_ids * Hashtbl.length s_ids)
    (Relation.cardinality sub)

let test_subsample_missing_dim () =
  let j = join_fixture () in
  check_bool "missing dimension" true
    (try ignore (Subsample.apply [ { Subsample.relation = "r"; seed = 1; p = 0.5 } ] j); false
     with Invalid_argument _ -> true);
  check_bool "duplicate dimension" true
    (try
       ignore
         (Subsample.apply
            [ { Subsample.relation = "r"; seed = 1; p = 0.5 };
              { Subsample.relation = "r"; seed = 2; p = 0.5 };
              { Subsample.relation = "s"; seed = 3; p = 0.5 } ]
            j);
       false
     with Invalid_argument _ -> true);
  check_bool "bad rate" true
    (try
       ignore
         (Subsample.apply
            [ { Subsample.relation = "r"; seed = 1; p = 1.5 };
              { Subsample.relation = "s"; seed = 2; p = 0.5 } ]
            j);
       false
     with Invalid_argument _ -> true)

let test_plan_rates () =
  let r = Subsample.plan_rates ~target:100 ~current:10000 ~ndims:2 in
  check (Alcotest.float 1e-9) "sqrt of ratio" 0.1 r;
  check (Alcotest.float 1e-9) "already small" 1.0
    (Subsample.plan_rates ~target:100 ~current:50 ~ndims:2);
  check (Alcotest.float 1e-9) "empty current" 1.0
    (Subsample.plan_rates ~target:100 ~current:0 ~ndims:3);
  check_bool "ndims 0 rejected" true
    (try ignore (Subsample.plan_rates ~target:1 ~current:2 ~ndims:0); false
     with Invalid_argument _ -> true)

let test_subsample_expected_rate () =
  let j = join_fixture () in
  (* 1000 pairs; rate 0.7 per dimension -> expected keep 0.49. *)
  let dims =
    [ { Subsample.relation = "r"; seed = 11; p = 0.7 };
      { Subsample.relation = "s"; seed = 12; p = 0.7 } ]
  in
  let sub = Subsample.apply dims j in
  let rate = float_of_int (Relation.cardinality sub) /. 1000.0 in
  check_bool "near 0.49" true (Float.abs (rate -. 0.49) < 0.15)

let () =
  Alcotest.run "gus_sampling"
    [ ("validate", [ Alcotest.test_case "parameter checks" `Quick test_validate ]);
      ( "bernoulli",
        [ Alcotest.test_case "empirical rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "lineage preserved" `Quick test_bernoulli_preserves_lineage ] );
      ( "wor",
        [ Alcotest.test_case "exact size, distinct" `Quick test_wor_exact_size;
          Alcotest.test_case "oversized request" `Quick test_wor_oversized ] );
      ( "wr",
        [ Alcotest.test_case "draws and duplicates" `Quick test_wr_size_and_duplicates;
          Alcotest.test_case "empty population" `Quick test_wr_empty_population ] );
      ( "block",
        [ Alcotest.test_case "block-granular lineage" `Quick test_block_lineage_granularity;
          Alcotest.test_case "requires base" `Quick test_block_requires_base ] );
      ( "hash-bernoulli",
        [ Alcotest.test_case "deterministic in (seed,id)" `Quick test_hash_bernoulli_deterministic;
          Alcotest.test_case "nested rates" `Quick test_hash_bernoulli_nested ] );
      ( "fraction",
        [ Alcotest.test_case "sampling_fraction" `Quick test_sampling_fraction ] );
      ( "subsample",
        [ Alcotest.test_case "filter consistency (rectangle)" `Quick test_subsample_filter_consistency;
          Alcotest.test_case "dimension validation" `Quick test_subsample_missing_dim;
          Alcotest.test_case "plan_rates" `Quick test_plan_rates;
          Alcotest.test_case "expected rate" `Quick test_subsample_expected_rate ] ) ]
