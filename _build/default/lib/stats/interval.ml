type method_ = Normal | Chebyshev

type t = {
  lo : float;
  hi : float;
  estimate : float;
  stddev : float;
  coverage : float;
  method_ : method_;
}

let make ~method_ ~coverage ~estimate ~stddev =
  if stddev < 0.0 then invalid_arg "Interval.make: negative stddev";
  if not (coverage > 0.0 && coverage < 1.0) then
    invalid_arg "Interval.make: coverage not in (0,1)";
  let k =
    match method_ with
    | Normal -> Normal.quantile ((1.0 +. coverage) /. 2.0)
    | Chebyshev -> Normal.chebyshev_factor coverage
  in
  let half = k *. stddev in
  { lo = estimate -. half; hi = estimate +. half; estimate; stddev; coverage; method_ }

let contains t x = t.lo <= x && x <= t.hi
let width t = t.hi -. t.lo

let quantile_bound ~estimate ~stddev q = estimate +. (Normal.quantile q *. stddev)

let method_name = function Normal -> "normal" | Chebyshev -> "chebyshev"

let pp ppf t =
  Format.fprintf ppf "[%g, %g] (%.0f%% %s, est=%g, sd=%g)" t.lo t.hi
    (100.0 *. t.coverage) (method_name t.method_) t.estimate t.stddev

let to_string t = Format.asprintf "%a" pp t
