module Subset = Gus_util.Subset

type t = {
  rels : string array;
  a : float;
  b : float array;
}

exception Incompatible of string

let incompatible fmt = Printf.ksprintf (fun s -> raise (Incompatible s)) fmt

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Gus: %s = %g not in [0,1]" what p)

let check_disjoint rels =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      if Hashtbl.mem seen r then
        invalid_arg (Printf.sprintf "Gus: duplicate relation %s in lineage schema" r);
      Hashtbl.add seen r ())
    rels

let make ~rels ~a ~b =
  check_disjoint rels;
  let n = Array.length rels in
  if n > Subset.max_universe then
    invalid_arg (Printf.sprintf "Gus: %d relations exceed the %d limit" n
                   Subset.max_universe);
  if Array.length b <> Subset.count n then
    invalid_arg
      (Printf.sprintf "Gus: b has %d entries, expected %d" (Array.length b)
         (Subset.count n));
  check_prob "a" a;
  Array.iteri (fun i p -> check_prob (Printf.sprintf "b[%d]" i) p) b;
  let full = Subset.full n in
  if Float.abs (b.(full) -. a) > 1e-9 then
    invalid_arg
      (Printf.sprintf "Gus: diagonal b_full = %g must equal a = %g" b.(full) a);
  let b = Array.copy b in
  b.(full) <- a;
  { rels; a; b }

let constant rels v =
  let n = Array.length rels in
  make ~rels ~a:v ~b:(Array.make (Subset.count n) v)

let identity rels = constant rels 1.0
let null rels = constant rels 0.0

let bernoulli ~rel p =
  check_prob "p" p;
  make ~rels:[| rel |] ~a:p ~b:[| p *. p; p |]

let wor ~rel ~n ~out_of =
  if out_of < 1 then invalid_arg "Gus.wor: population must be >= 1";
  if n < 0 || n > out_of then
    invalid_arg (Printf.sprintf "Gus.wor: n=%d out of [0,%d]" n out_of);
  let nf = float_of_int n and cf = float_of_int out_of in
  let a = nf /. cf in
  let b_empty =
    if out_of = 1 then 0.0 else nf *. (nf -. 1.0) /. (cf *. (cf -. 1.0))
  in
  make ~rels:[| rel |] ~a ~b:[| b_empty; a |]

let bernoulli_over rels p =
  check_prob "p" p;
  let n = Array.length rels in
  let b = Array.make (Subset.count n) (p *. p) in
  b.(Subset.full n) <- p;
  make ~rels ~a:p ~b

let n_rels g = Array.length g.rels
let b_get g s = g.b.(s)

let join g1 g2 =
  let n1 = Array.length g1.rels and n2 = Array.length g2.rels in
  Array.iter
    (fun r ->
      if Array.exists (String.equal r) g1.rels then
        incompatible "join: relation %s appears on both sides (self-join?)" r)
    g2.rels;
  let rels = Array.append g1.rels g2.rels in
  let n = n1 + n2 in
  if n > Subset.max_universe then
    incompatible "join: %d relations exceed the %d limit" n Subset.max_universe;
  let mask1 = Subset.full n1 in
  let b =
    Array.init (Subset.count n) (fun t ->
        let t1 = t land mask1 and t2 = t lsr n1 in
        g1.b.(t1) *. g2.b.(t2))
  in
  make ~rels ~a:(g1.a *. g2.a) ~b

let require_same_schema op g1 g2 =
  if not
       (Array.length g1.rels = Array.length g2.rels
       && Array.for_all2 String.equal g1.rels g2.rels)
  then
    incompatible "%s: lineage schemas differ ([%s] vs [%s])" op
      (String.concat "," (Array.to_list g1.rels))
      (String.concat "," (Array.to_list g2.rels))

let compact g1 g2 =
  require_same_schema "compact" g1 g2;
  let b = Array.mapi (fun t b1 -> b1 *. g2.b.(t)) g1.b in
  make ~rels:g1.rels ~a:(g1.a *. g2.a) ~b

let union g1 g2 =
  require_same_schema "union" g1 g2;
  let a = g1.a +. g2.a -. (g1.a *. g2.a) in
  let b =
    Array.mapi
      (fun t b1 ->
        let b2 = g2.b.(t) in
        let v =
          (2.0 *. a) -. 1.0
          +. ((1.0 -. (2.0 *. g1.a) +. b1) *. (1.0 -. (2.0 *. g2.a) +. b2))
        in
        (* Tiny negative values can appear from float cancellation. *)
        Float.max 0.0 v)
      g1.b
  in
  make ~rels:g1.rels ~a ~b

let extend g extra =
  if Array.length extra = 0 then g else join g (identity extra)

let permute g target =
  let n = Array.length g.rels in
  if Array.length target <> n then
    incompatible "permute: schema size mismatch";
  let pos_of r =
    let rec go i =
      if i >= n then incompatible "permute: %s not in schema" r
      else if String.equal g.rels.(i) r then i
      else go (i + 1)
    in
    go 0
  in
  (* old_pos.(j) = position in g.rels of target.(j) *)
  let old_pos = Array.map pos_of target in
  check_disjoint target;
  let translate t_new =
    let t_old = ref Subset.empty in
    for j = 0 to n - 1 do
      if Subset.mem t_new j then t_old := Subset.add !t_old old_pos.(j)
    done;
    !t_old
  in
  let b = Array.init (Subset.count n) (fun t -> g.b.(translate t)) in
  make ~rels:(Array.copy target) ~a:g.a ~b

let c_coefficients g =
  let n = n_rels g in
  let c = Array.copy g.b in
  (* Signed fast Möbius (subset-sum) transform:
     c[S] = sum_{T ⊆ S} (-1)^{|S|-|T|} b[T]. *)
  for bit = 0 to n - 1 do
    let m = 1 lsl bit in
    Subset.iter_all n (fun s -> if s land m <> 0 then c.(s) <- c.(s) -. c.(s lxor m))
  done;
  c

let c_naive g =
  let n = n_rels g in
  Array.init (Subset.count n) (fun s ->
      Subset.fold_subsets s
        (fun acc t ->
          let sign =
            if (Subset.cardinal (Subset.diff s t)) land 1 = 0 then 1.0 else -1.0
          in
          acc +. (sign *. g.b.(t)))
        0.0)

let variance g ~y =
  let n = n_rels g in
  if Array.length y <> Subset.count n then
    invalid_arg "Gus.variance: y has wrong length";
  if g.a = 0.0 then incompatible "variance: a = 0 (nothing is ever sampled)";
  let c = c_coefficients g in
  let a2 = g.a *. g.a in
  let acc = ref 0.0 in
  Array.iteri (fun s cs -> acc := !acc +. (cs /. a2 *. y.(s))) c;
  !acc -. y.(Subset.empty)

let scale_up g total =
  if g.a = 0.0 then incompatible "scale_up: a = 0";
  total /. g.a

let d_correction g ~s =
  let n = n_rels g in
  let comp = Subset.complement n s in
  let out = Array.make (Subset.count n) 0.0 in
  Subset.iter_subsets comp (fun t ->
      let acc = ref 0.0 in
      Subset.iter_subsets t (fun u ->
          let sign =
            if (Subset.cardinal (Subset.diff t u)) land 1 = 0 then 1.0 else -1.0
          in
          acc := !acc +. (sign *. g.b.(Subset.union s u)));
      out.(t) <- !acc);
  out

let equal_approx ?(eps = 1e-9) g1 g2 =
  Array.length g1.rels = Array.length g2.rels
  && Array.for_all2 String.equal g1.rels g2.rels
  && Float.abs (g1.a -. g2.a) <= eps
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) g1.b g2.b

let subset_name g s =
  if s = Subset.empty then "{}" else Subset.to_string ~names:g.rels s

let pp ppf g =
  Format.fprintf ppf "G over [%s]: a = %.6g"
    (String.concat "," (Array.to_list g.rels))
    g.a;
  Array.iteri
    (fun s bs -> Format.fprintf ppf ",@ b%s = %.6g" (subset_name g s) bs)
    g.b

let to_string g = Format.asprintf "@[%a@]" pp g
