(** Plain-text table rendering for experiment reports. *)

type align = Left | Right

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
val add_sep : t -> unit
(** Insert a horizontal rule between the rows added before and after. *)

val render : ?align:align list -> t -> string
(** Pads every column to its widest cell.  [align] defaults to [Left] for
    the first column and [Right] for the rest (the usual label+numbers
    layout). *)

val print : ?align:align list -> t -> unit

val float_cell : ?digits:int -> float -> string
(** Compact scientific/fixed formatting matching the paper's tables
    (e.g. ["6.667e-04"], ["0.100"]). *)
