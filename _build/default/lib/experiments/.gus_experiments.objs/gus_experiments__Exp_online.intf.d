lib/experiments/exp_online.mli:
