lib/experiments/exp_subsample.mli:
