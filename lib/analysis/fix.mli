(** Machine-applicable plan rewrites attached to diagnostics.

    Each fix is a {e GUS-equivalence}: the rewritten plan has the same
    sample-free skeleton and an SOA rewrite with an equal (or, for
    dropped no-op samplers, equal-by-construction) first-order inclusion
    probability, so the Theorem-1 estimator has the identical
    expectation.  Per-seed realizations generally differ — the executor
    threads one RNG stream through the plan, so moving or removing a
    sampler re-aligns every later draw — which is exactly why the
    property tests compare skeletons, [a], and exact expectations rather
    than single runs. *)

type action =
  | Drop_sampler of Gus_sampling.Sampler.t
      (** [Sample (s, q) → q] — a no-op sampler (a = 1). *)
  | Merge_stacked of {
      outer : Gus_sampling.Sampler.t;
      inner : Gus_sampling.Sampler.t;
      merged : Gus_sampling.Sampler.t;
    }
      (** [Sample (outer, Sample (inner, q)) → Sample (merged, q)] — two
          stacked plain Bernoullis compose into one with
          [a = a₁·a₂] (Prop. 8). *)
  | Push_below_select of Gus_sampling.Sampler.t
      (** [Sample (s, Select (p, q)) → Select (p, Sample (s, q))] —
          per-tuple sampling commutes with selection (Prop. 5) and
          unlocks streaming/pushdown.

    Every action records the sampler(s) it was issued for, and {!apply}
    refuses to rewrite a node whose samplers no longer match — an
    earlier fix in the same batch may have rewritten a descendant,
    making a precomputed result stale. *)

type t = {
  at : int list;  (** root-to-node child-index path of the rewrite site *)
  action : action;
  summary : string;  (** human-readable one-liner, e.g. for [--fix] output *)
}

val drop_sampler : at:int list -> Gus_sampling.Sampler.t -> t
val merge_stacked :
  at:int list ->
  Gus_sampling.Sampler.t ->
  Gus_sampling.Sampler.t ->
  Gus_sampling.Sampler.t ->
  t
(** [merge_stacked ~at outer inner merged]. *)

val push_below_select : at:int list -> Gus_sampling.Sampler.t -> t

val apply : t -> Gus_core.Splan.t -> Gus_core.Splan.t option
(** [None] when the plan no longer has the expected shape at [at]
    (e.g. an earlier fix already rewrote it). *)

val apply_all : t list -> Gus_core.Splan.t -> Gus_core.Splan.t * t list
(** Apply a batch deepest-first; returns the rewritten plan and the
    fixes that actually applied, in application order. *)

val action_label : action -> string
(** Stable machine tag: ["drop-sampler"], ["merge-stacked"],
    ["push-below-select"]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
