(* Abstract domains for the static plan analyzer (no data access).

   Three small lattices, each with [leq] / [join] / [widen]:

   - [Itv]: closed intervals of non-negative floats, used for the
     first-order inclusion probability [a] (always a sub-interval of
     [0, 1]) and as the carrier for cardinality reasoning.
   - [Card]: cardinality intervals over naturals with a +inf top,
     plus a point "expected rows" estimate threaded alongside for the
     cost model (the interval is sound, the point value is a
     heuristic).
   - [Cls]: the GUS-class lattice
     [Ind_bernoulli ⊑ Product_form ⊑ General] from the paper's
     taxonomy: independent per-tuple Bernoulli designs, product-form
     designs (independent across relations, arbitrary pair structure
     within one relation — WOR, block sampling), and everything else
     (derived-input sampling, unions of samples). *)

module Itv = struct
  type t = { lo : float; hi : float }

  let make lo hi =
    if not (lo <= hi) then invalid_arg "Absdom.Itv.make: lo > hi";
    { lo; hi }

  let point x = { lo = x; hi = x }
  let zero = point 0.0
  let unit = { lo = 0.0; hi = 1.0 }
  let is_point i = i.lo = i.hi
  let leq a b = b.lo <= a.lo && a.hi <= b.hi
  let join a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

  (* Standard interval widening: any bound that grew jumps to the
     corresponding bound of [unit] for probabilities (callers pass the
     widening ceiling explicitly via [top]). *)
  let widen ~top a b =
    if leq b a then a
    else
      { lo = (if b.lo < a.lo then top.lo else a.lo);
        hi = (if b.hi > a.hi then top.hi else a.hi) }

  (* All endpoints are >= 0, so the product of intervals is the
     product of endpoints. *)
  let mul a b = { lo = a.lo *. b.lo; hi = a.hi *. b.hi }

  (* a ∪ b for inclusion probabilities of a union of independent
     samples: p + q − pq, monotone in both arguments on [0,1]. *)
  let union_prob a b =
    let f p q = p +. q -. (p *. q) in
    { lo = f a.lo b.lo; hi = f a.hi b.hi }

  let scale k a = { lo = k *. a.lo; hi = k *. a.hi }
  let pp ppf i = Format.fprintf ppf "[%g, %g]" i.lo i.hi
  let to_string i = Format.asprintf "%a" pp i
end

module Card = struct
  (* [hi = infinity] is top; [exp] is a point estimate of the expected
     row count used by the cost model (not part of the lattice
     order). *)
  type t = { lo : float; hi : float; exp : float }

  let make ~lo ~hi ~exp =
    if not (lo <= hi) then invalid_arg "Absdom.Card.make: lo > hi";
    { lo; hi; exp = Float.max 0.0 (Float.min hi (Float.max lo exp)) }

  let exact n =
    let n = float_of_int (max 0 n) in
    { lo = n; hi = n; exp = n }

  let top = { lo = 0.0; hi = infinity; exp = 0.0 }
  let leq a b = b.lo <= a.lo && a.hi <= b.hi
  let exp t = t.exp

  let join a b =
    { lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
      exp = 0.5 *. (a.exp +. b.exp) }

  let widen a b =
    if leq b a then a
    else
      { lo = (if b.lo < a.lo then 0.0 else a.lo);
        hi = (if b.hi > a.hi then infinity else a.hi);
        exp = b.exp }

  (* A selection keeps between none and all of its input. *)
  let filter t = { t with lo = 0.0 }

  (* Sampling with inclusion probability in [p]: keeps between none
     and all rows; expectation scales by the midpoint of [p]. *)
  let sample (p : Itv.t) t =
    { lo = 0.0; hi = t.hi; exp = t.exp *. (0.5 *. (p.Itv.lo +. p.Itv.hi)) }

  let product a b =
    { lo = a.lo *. b.lo; hi = a.hi *. b.hi; exp = a.exp *. b.exp }

  (* An equi-join emits at most |L|·|R| rows and possibly none.  The
     expectation heuristic assumes a key/foreign-key join: about as
     many rows as the larger input. *)
  let equi_join a b =
    { lo = 0.0; hi = a.hi *. b.hi; exp = Float.max a.exp b.exp }

  let sum a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi; exp = a.exp +. b.exp }

  let pp ppf t =
    if t.hi = infinity then Format.fprintf ppf "[%g, +inf)" t.lo
    else Format.fprintf ppf "[%g, %g]" t.lo t.hi

  let to_string t = Format.asprintf "%a" pp t
end

module Cls = struct
  type t = Ind_bernoulli | Product_form | General

  let rank = function Ind_bernoulli -> 0 | Product_form -> 1 | General -> 2
  let leq a b = rank a <= rank b
  let join a b = if rank a >= rank b then a else b

  (* The lattice is finite (height 3), so widening is just join. *)
  let widen = join

  let to_string = function
    | Ind_bernoulli -> "independent-bernoulli"
    | Product_form -> "product-form"
    | General -> "general"

  let pp ppf c = Format.pp_print_string ppf (to_string c)
end
