(* One protocol session: the transport-agnostic middle of the serving
   stack.  A session owns a connection-scoped prepared-handle namespace
   (two clients can both call their query "q1" without trampling each
   other) on top of a shared Engine, and dispatches parsed NDJSON
   requests to it.  Transports stay thin: Protocol's stdin/stdout loop
   drives one session, Server's TCP loop drives one per connection.

   NOT thread-safe by itself: the engine underneath is driving-thread
   only, so concurrent transports must serialize handle calls (Server
   holds one driving lock across all its sessions).  Admission
   accounting is the exception — Admission.t is thread-safe and entered
   on reader threads, before any queueing.

   Shedding: when the admission decision for a request is [Shed f] and
   the client did not pin rates explicitly, execute/batch items run with
   degraded per-relation sampling rates chosen by Admission.shed_rates
   (paper Section 8) — still an honest SOA estimate, with an honestly
   wider CI.  The decision is journaled as a Shed event and the degraded
   rates ride in the following Exec event, so `gusdb replay` reproduces
   shed responses bit-identically. *)

module Runner = Gus_sql.Runner
module Lint = Gus_analysis.Lint
module Metrics = Gus_obs.Metrics
module Journal = Gus_obs.Journal
module Splan = Gus_core.Splan
open Gus_relational
open Json

(* Per-verb request counters + end-to-end request latency.  DESIGN.md §7
   lists the names; §12 maps them to Prometheus series. *)
let m_req_register = Metrics.counter "serve.requests.register"
let m_req_prepare = Metrics.counter "serve.requests.prepare"
let m_req_execute = Metrics.counter "serve.requests.execute"
let m_req_batch = Metrics.counter "serve.requests.batch"
let m_req_stats = Metrics.counter "serve.requests.stats"
let m_req_hello = Metrics.counter "serve.requests.hello"
let m_req_invalid = Metrics.counter "serve.requests.invalid"
let m_shed_exec = Metrics.counter "shed.executions"
let g_sessions = Metrics.gauge "serve.sessions"

let m_latency =
  (* default power-of-two buckets: 1 µs .. ~1 s *)
  Metrics.histogram "serve.latency_us"

let active_sessions = Atomic.make 0
let next_session_id = Atomic.make 1

type t = {
  engine : Engine.t;
  admission : Admission.t option;
  id : int;
  prepared : (string, Prepared.t) Hashtbl.t;
  last_y : (string, float array) Hashtbl.t;
      (* per handle: Ŷ moments of the last un-cached execution, the
         seed for variance-minimizing shed-rate selection *)
  mutable next_handle : int;
  mutable closed : bool;
}

let create ?admission engine =
  Metrics.set_gauge g_sessions
    (float_of_int (1 + Atomic.fetch_and_add active_sessions 1));
  { engine;
    admission;
    id = Atomic.fetch_and_add next_session_id 1;
    prepared = Hashtbl.create 16;
    last_y = Hashtbl.create 16;
    next_handle = 1;
    closed = false }

let engine t = t.engine
let id t = t.id
let closed t = t.closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.reset t.prepared;
    Hashtbl.reset t.last_y;
    Metrics.set_gauge g_sessions
      (float_of_int (Atomic.fetch_and_add active_sessions (-1) - 1))
  end

let find_prepared t name = Hashtbl.find_opt t.prepared name

let prepared_names t =
  Hashtbl.fold (fun name p acc -> (name, p) :: acc) t.prepared []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- operations ---- *)

let op_hello t j =
  Wire.check_fields ~op:"hello" [ "op" ] j;
  Obj
    [ ("ok", Bool true);
      ("op", Str "hello");
      ("protocol_version", Num (float_of_int Wire.protocol_version));
      ("server", Str "gusdb");
      ("session", Num (float_of_int t.id)) ]

let op_register t j =
  Wire.check_fields ~op:"register"
    [ "op"; "name"; "source"; "scale"; "seed"; "part_skew"; "price_skew";
      "dir"; "path" ]
    j;
  let name = Wire.req_str j "name" in
  let entry =
    Engine.register t.engine ~name ~source:(Wire.source_of_request j)
  in
  let relations =
    List.map
      (fun rel ->
        Obj
          [ ("name", Str rel);
            ( "rows",
              Num
                (float_of_int
                   (Relation.cardinality (Database.find entry.Catalog.db rel)))
            ) ])
      (Database.names entry.Catalog.db)
  in
  Obj
    [ ("ok", Bool true);
      ("op", Str "register");
      ("dataset", Str entry.Catalog.dataset);
      ("version", Num (float_of_int entry.Catalog.version));
      ("source", Str (Catalog.source_to_string entry.Catalog.source));
      ("relations", List relations) ]

let op_prepare t j =
  Wire.check_fields ~op:"prepare" [ "op"; "dataset"; "sql"; "name" ] j;
  let dataset = Wire.req_str j "dataset" in
  let sql = Wire.req_str j "sql" in
  let p = Prepared.prepare (Engine.catalog t.engine) ~dataset sql in
  let handle =
    match Wire.opt_str j "name" with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "q%d" t.next_handle in
        t.next_handle <- t.next_handle + 1;
        n
  in
  Hashtbl.replace t.prepared handle p;
  Hashtbl.remove t.last_y handle;
  let report = (Prepared.handle p).Runner.pr_lint in
  (* The prepare-time static analysis (class, predicted cost, variance
     bound) rides along so clients can triage a prepared query before
     ever executing it. *)
  obj
    [ ("ok", Some (Bool true));
      ("op", Some (Str "prepare"));
      ("handle", Some (Str handle));
      ("dataset", Some (Str dataset));
      ("version", Some (Num (float_of_int (Prepared.version p))));
      ( "relations",
        Some
          (List
             (List.map
                (fun r -> Str r)
                (Splan.relations (Prepared.handle p).Runner.pr_plan))) );
      ("analyzable", Some (Bool (report.Lint.analysis <> None)));
      ("severity", Some (Str (Workload_lint.severity_label report)));
      ("analysis", Option.map Workload_lint.analysis_json report.Lint.analysis);
      ( "diagnostics",
        Some (List (List.map Wire.diagnostic_json report.Lint.diagnostics)) ) ]

let exec_item_fields = [ "handle"; "seed"; "rates"; "explain"; "exact" ]

let exec_item ?(extra = []) ~op j =
  Wire.check_fields ~op (extra @ exec_item_fields) j;
  let handle = Wire.req_str j "handle" in
  let rates =
    match member "rates" j with
    | None -> []
    | Some (Obj fields) ->
        List.map
          (fun (rel, v) ->
            match to_num v with
            | Some rate -> (rel, rate)
            | None ->
                raise
                  (Wire.Bad_request
                     (Printf.sprintf "rate for %S: expected number" rel)))
          fields
    | Some _ -> raise (Wire.Bad_request "field \"rates\": expected object")
  in
  ( handle,
    { Prepared.seed = Wire.opt_int j "seed" ~default:42;
      rates;
      explain = Wire.opt_bool j "explain" ~default:false;
      exact = Wire.opt_bool j "exact" ~default:false } )

(* The Section-8 degradation for one item under a Shed decision: pick
   budgeted rates for the plan's sampled relations, journal the
   decision, and return the overridden [ov].  Explicit client rates are
   never second-guessed, and a plan that samples nothing (exact plan)
   cannot shed. *)
let shed_item t ~decision ~handle p (ov : Prepared.overrides) =
  match decision with
  | Admission.Admit -> (ov, None)
  | Admission.Shed _ when ov.Prepared.rates <> [] -> (ov, None)
  | Admission.Shed overload -> (
      let entry =
        Catalog.find_exn (Engine.catalog t.engine) (Prepared.dataset p)
      in
      let card rel = Relation.cardinality (Database.find entry.Catalog.db rel) in
      let plan = (Prepared.handle p).Runner.pr_plan in
      let current = Prepared.sampling_rates ~card plan in
      let rates =
        Admission.shed_rates ~overload ~order:(Splan.relations plan) ~card
          ~current
          ?y:(Hashtbl.find_opt t.last_y handle)
          ()
      in
      match rates with
      | [] -> (ov, None)
      | rates ->
          Metrics.incr m_shed_exec;
          (match Engine.journal t.engine with
          | None -> ()
          | Some j ->
              let sql = Prepared.sql p in
              Journal.record j
                (Journal.Shed
                   { shed_id = Journal.next_id j;
                     shed_dataset = Prepared.dataset p;
                     shed_sql_hash = Journal.sql_hash sql;
                     shed_overload = overload;
                     shed_rates = rates }));
          ({ ov with Prepared.rates }, Some (rates, overload)))

let note_y t ~handle (o : Engine.outcome) =
  match o.Engine.response.Runner.rs_report with
  | Some r -> Hashtbl.replace t.last_y handle r.Gus_estimator.Sbox.y_hat
  | None -> ()

let op_execute t ~decision j =
  let handle, ov = exec_item ~extra:[ "op" ] ~op:"execute" j in
  match find_prepared t handle with
  | None -> raise (Engine.Unknown_handle handle)
  | Some p ->
      let ov, shed = shed_item t ~decision ~handle p ov in
      let o = Engine.execute_prepared t.engine ~label:handle p ov in
      note_y t ~handle o;
      Wire.response_json ?shed ~handle o

let op_batch t ~decision j =
  Wire.check_fields ~op:"batch" [ "op"; "items" ] j;
  let items =
    match Option.bind (member "items" j) to_list with
    | Some items -> items
    | None -> raise (Wire.Bad_request "missing list field \"items\"")
  in
  let parsed =
    List.map
      (fun item ->
        try Ok (exec_item ~op:"execute" item)
        with e -> (
          match Wire.error_of_exn e with
          | Some (code, message) ->
              Error (Wire.error_json ~op:"execute" code message)
          | None -> raise e))
      items
  in
  let jobs =
    Array.of_list
      (List.filter_map
         (function
           | Ok (handle, ov) -> (
               match find_prepared t handle with
               | None -> Some (handle, None, ov, None)
               | Some p ->
                   let ov, shed = shed_item t ~decision ~handle p ov in
                   Some (handle, Some p, ov, shed))
           | Error _ -> None)
         parsed)
  in
  let outcomes =
    Engine.batch_prepared t.engine
      (Array.map (fun (handle, p, ov, _) -> (handle, p, ov)) jobs)
  in
  let cursor = ref 0 in
  let results =
    List.map
      (function
        | Error ej -> ej
        | Ok _ -> (
            let handle, _, _, shed = jobs.(!cursor) in
            let r = outcomes.(!cursor) in
            incr cursor;
            match r with
            | Ok outcome ->
                note_y t ~handle outcome;
                Wire.response_json ?shed ~handle outcome
            | Error e -> (
                match Wire.error_of_exn e with
                | Some (code, message) ->
                    Wire.error_json ~op:"execute" code message
                | None -> raise e)))
      parsed
  in
  Obj [ ("ok", Bool true); ("op", Str "batch"); ("results", List results) ]

let op_stats_json t =
  let catalog =
    List.map
      (fun (e : Catalog.entry) ->
        Obj
          [ ("dataset", Str e.dataset);
            ("version", Num (float_of_int e.version));
            ("source", Str (Catalog.source_to_string e.source)) ])
      (Catalog.names (Engine.catalog t.engine))
  in
  let prepared =
    List.map
      (fun (name, p) ->
        Obj
          [ ("handle", Str name);
            ("dataset", Str (Prepared.dataset p));
            ("version", Num (float_of_int (Prepared.version p)));
            ("sql", Str (Prepared.sql p)) ])
      (prepared_names t)
  in
  let requests =
    Obj
      [ ("register", Num (float_of_int (Metrics.counter_value m_req_register)));
        ("prepare", Num (float_of_int (Metrics.counter_value m_req_prepare)));
        ("execute", Num (float_of_int (Metrics.counter_value m_req_execute)));
        ("batch", Num (float_of_int (Metrics.counter_value m_req_batch)));
        ("hello", Num (float_of_int (Metrics.counter_value m_req_hello)));
        ("stats", Num (float_of_int (Metrics.counter_value m_req_stats)));
        ("invalid", Num (float_of_int (Metrics.counter_value m_req_invalid))) ]
  in
  let latency =
    if Metrics.histogram_count m_latency = 0 then None
    else
      Some
        (Obj
           [ ("p50", Num (Metrics.quantile m_latency 0.50));
             ("p90", Num (Metrics.quantile m_latency 0.90));
             ("p99", Num (Metrics.quantile m_latency 0.99)) ])
  in
  let journal =
    Option.map
      (fun j ->
        Obj
          [ ("length", Num (float_of_int (Journal.length j)));
            ("capacity", Num (float_of_int (Journal.capacity j)));
            ("dropped", Num (float_of_int (Journal.dropped j))) ])
      (Engine.journal t.engine)
  in
  let admission =
    Option.map
      (fun a ->
        obj
          [ ("inflight", Some (Num (float_of_int (Admission.inflight a))));
            ( "max_inflight",
              Some (Num (float_of_int (Admission.max_inflight a))) );
            ("overload", Some (Num (Admission.overload a)));
            ("p99_ms", Option.map (fun p -> Num p) (Admission.p99_ms a)) ])
      t.admission
  in
  obj
    [ ("ok", Some (Bool true));
      ("op", Some (Str "stats"));
      ("protocol_version", Some (Num (float_of_int Wire.protocol_version)));
      ("session", Some (Num (float_of_int t.id)));
      ("uptime_s", Some (Num (float_of_int (Engine.uptime_ns t.engine) /. 1e9)));
      ("pool_lanes", Some (Num (float_of_int (Engine.pool_size t.engine))));
      ("catalog", Some (List catalog));
      ("prepared", Some (List prepared));
      ( "cache",
        Some
          (Obj
             [ ("length", Num (float_of_int (Engine.cache_length t.engine)));
               ("capacity", Num (float_of_int (Engine.cache_capacity t.engine)))
             ]) );
      ("requests", Some requests);
      ("latency_us", latency);
      ("journal", journal);
      ("admission", admission);
      ("metrics", Some (Json.of_string (Metrics.snapshot ()))) ]

let op_stats t j =
  Wire.check_fields ~op:"stats" [ "op"; "format" ] j;
  match Wire.opt_str j "format" with
  | Some "prometheus" ->
      (* The exposition is text with newlines; the NDJSON framing can't
         carry it raw, so it rides as one JSON string.  `gusdb serve
         --prom-out FILE` writes the same text unframed. *)
      Obj
        [ ("ok", Bool true);
          ("op", Str "stats");
          ("format", Str "prometheus");
          ("body", Str (Gus_obs.Promexp.render ())) ]
  | Some other when other <> "json" ->
      raise (Wire.Bad_request (Printf.sprintf "unknown stats format %S" other))
  | _ -> op_stats_json t

let dispatch t ~decision j =
  let op = Option.bind (member "op" j) to_str in
  Metrics.incr
    (match op with
    | Some "register" -> m_req_register
    | Some "prepare" -> m_req_prepare
    | Some "execute" -> m_req_execute
    | Some "batch" -> m_req_batch
    | Some "hello" -> m_req_hello
    | Some "stats" -> m_req_stats
    | Some _ | None -> m_req_invalid);
  Wire.protect ~op @@ fun () ->
  if t.closed then raise Wire.Session_closed;
  match op with
  | Some "hello" -> op_hello t j
  | Some "register" -> op_register t j
  | Some "prepare" -> op_prepare t j
  | Some "execute" -> op_execute t ~decision j
  | Some "batch" -> op_batch t ~decision j
  | Some "stats" -> op_stats t j
  | Some other -> raise (Wire.Bad_request (Printf.sprintf "unknown op %S" other))
  | None -> raise (Wire.Bad_request "missing string field \"op\"")

let handle_request ?(decision = Admission.Admit) t j =
  if Metrics.enabled () then begin
    let t0 = Gus_obs.Trace.now_ns () in
    let r = dispatch t ~decision j in
    Metrics.observe m_latency (float_of_int (Gus_obs.Trace.now_ns () - t0) /. 1e3);
    r
  end
  else dispatch t ~decision j

let handle_decided t ~decision line =
  if String.trim line = "" then None
  else
    let response =
      match Json.of_string line with
      | j -> handle_request ~decision t j
      | exception Json.Parse_error msg ->
          Metrics.incr m_req_invalid;
          Wire.error_json "bad_json" msg
    in
    Some (Json.to_string response)

let handle t line =
  match t.admission with
  | None -> handle_decided t ~decision:Admission.Admit line
  | Some a ->
      if String.trim line = "" then None
      else (
        match Admission.enter a with
        | Error msg -> Some (Json.to_string (Wire.error_json "overloaded" msg))
        | Ok (ticket, decision) ->
            Fun.protect
              ~finally:(fun () -> Admission.leave a ticket)
              (fun () -> handle_decided t ~decision line))

let run ?(after = fun () -> ()) t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        (match handle t line with
        | None -> ()
        | Some response ->
            output_string oc response;
            output_char oc '\n';
            flush oc;
            after ());
        loop ()
  in
  loop ()
