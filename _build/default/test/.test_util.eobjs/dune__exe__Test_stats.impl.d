test/test_stats.ml: Alcotest Array Float Gus_stats List QCheck2 QCheck_alcotest
