(* erf via the Numerical-Recipes erfc approximation (fractional error
   everywhere below 1.2e-7). *)
let erfc_nr x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let horner coeffs =
    Array.fold_left (fun acc c -> (acc *. t) +. c) 0.0 coeffs
  in
  let poly =
    horner
      [| 0.17087277; -0.82215223; 1.48851587; -1.13520398; 0.27886807;
         -0.18628806; 0.09678418; 0.37409196; 1.00002368; -1.26551223 |]
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc_nr x

let cdf x = 0.5 *. erfc_nr (-.x /. sqrt 2.0)

(* Acklam's inverse normal CDF (relative error < 1.15e-9), refined with one
   Halley step against the erfc-based CDF. *)
let quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg (Printf.sprintf "Normal.quantile: p=%g not in (0,1)" p);
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01; 1.0 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00; 1.0 |]
  in
  let horner coeffs x =
    Array.fold_left (fun acc k -> (acc *. x) +. k) 0.0 coeffs
  in
  let p_low = 0.02425 in
  let p_high = 1.0 -. p_low in
  let x0 =
    if p < p_low then
      let q = sqrt (-2.0 *. log p) in
      horner c q /. horner d q
    else if p <= p_high then
      let q = p -. 0.5 in
      let r = q *. q in
      q *. horner a r /. horner b r
    else
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.(horner c q) /. horner d q
  in
  let e = cdf x0 -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x0 *. x0 /. 2.0) in
  x0 -. (u /. (1.0 +. (x0 *. u /. 2.0)))

let z_95 = quantile 0.975

let chebyshev_factor coverage =
  if not (coverage > 0.0 && coverage < 1.0) then
    invalid_arg "Normal.chebyshev_factor: coverage not in (0,1)";
  1.0 /. sqrt (1.0 -. coverage)
