lib/stats/interval.ml: Format Normal
