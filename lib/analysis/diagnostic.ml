type severity = Error | Warning | Hint

type code =
  | Self_join
  | Union_skeleton_mismatch
  | Wor_over_derived
  | Block_over_derived
  | Hash_over_derived
  | With_replacement
  | Distinct_over_sample
  | Probability_out_of_range
  | Zero_inclusion_probability
  | Small_inclusion_probability
  | Redundant_sampler
  | Sample_select_pushdown
  | Analysis_limit

let all_codes =
  [ Self_join;
    Union_skeleton_mismatch;
    Wor_over_derived;
    Block_over_derived;
    Hash_over_derived;
    With_replacement;
    Distinct_over_sample;
    Probability_out_of_range;
    Zero_inclusion_probability;
    Small_inclusion_probability;
    Redundant_sampler;
    Sample_select_pushdown;
    Analysis_limit ]

let code_id = function
  | Self_join -> "GUS001"
  | Union_skeleton_mismatch -> "GUS002"
  | Wor_over_derived -> "GUS003"
  | Block_over_derived -> "GUS004"
  | Hash_over_derived -> "GUS005"
  | With_replacement -> "GUS006"
  | Distinct_over_sample -> "GUS007"
  | Probability_out_of_range -> "GUS008"
  | Zero_inclusion_probability -> "GUS009"
  | Small_inclusion_probability -> "GUS010"
  | Redundant_sampler -> "GUS011"
  | Sample_select_pushdown -> "GUS012"
  | Analysis_limit -> "GUS013"

let severity_of_code = function
  | Self_join | Union_skeleton_mismatch | Wor_over_derived
  | Block_over_derived | Hash_over_derived | With_replacement
  | Distinct_over_sample | Probability_out_of_range
  | Zero_inclusion_probability | Analysis_limit ->
      Error
  | Small_inclusion_probability -> Warning
  | Redundant_sampler | Sample_select_pushdown -> Hint

let title = function
  | Self_join -> "self-join: a relation appears on both sides of a join"
  | Union_skeleton_mismatch -> "union of samples of two different expressions"
  | Wor_over_derived -> "WOR sampling over a derived or already-sampled input"
  | Block_over_derived -> "block sampling not directly over a base table"
  | Hash_over_derived -> "hash-Bernoulli sampling over a derived input"
  | With_replacement -> "with-replacement sampling is not a GUS method"
  | Distinct_over_sample -> "DISTINCT above a non-identity GUS"
  | Probability_out_of_range -> "inclusion probability outside its legal range"
  | Zero_inclusion_probability -> "degenerate estimator: a = 0"
  | Small_inclusion_probability -> "tiny sampling fraction: high-variance estimator"
  | Redundant_sampler -> "redundant sampler: keeps every tuple (identity GUS)"
  | Sample_select_pushdown -> "sample could be pushed below the selection"
  | Analysis_limit -> "plan exceeds the analyzer's implementation limits"

let citation = function
  | Self_join -> "Prop. 6 (disjoint lineage); Section 9"
  | Union_skeleton_mismatch -> "Prop. 7"
  | Wor_over_derived -> "Figure 1 (WOR needs a fixed N); Section 9"
  | Block_over_derived -> "Section 3 (block sampling at base granularity)"
  | Hash_over_derived -> "Section 7 (lineage-keyed sampling)"
  | With_replacement -> "Section 9 (WR is not a randomized filter)"
  | Distinct_over_sample -> "Section 9 (DISTINCT)"
  | Probability_out_of_range -> "Def. 1 (GUS probabilities)"
  | Zero_inclusion_probability -> "Theorem 1 (scale-up 1/a)"
  | Small_inclusion_probability -> "Theorem 1 (variance terms c_S/a\xc2\xb2)"
  | Redundant_sampler -> "Prop. 4 (identity GUS)"
  | Sample_select_pushdown -> "Prop. 5 (selection commutes with GUS)"
  | Analysis_limit -> "Section 5 (2\xe2\x81\xbf coefficient arrays)"

type path = int list

let path_to_string = function
  | [] -> "$"
  | p -> "$." ^ String.concat "." (List.map string_of_int p)

let rec compare_path a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> if x <> y then compare x y else compare_path a' b'

type t = {
  code : code;
  path : path;
  node : string;
  message : string;
}

let severity d = severity_of_code d.code

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let pp ppf d =
  Format.fprintf ppf "%s %-7s at %s (%s): %s [%s]" (code_id d.code)
    (severity_label (severity d))
    (path_to_string d.path) d.node d.message (citation d.code)

let to_string d = Format.asprintf "%a" pp d

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"code\": \"%s\", \"severity\": \"%s\", \"path\": \"%s\", \"node\": \
     \"%s\", \"message\": \"%s\", \"citation\": \"%s\"}"
    (code_id d.code)
    (severity_label (severity d))
    (path_to_string d.path) (json_escape d.node) (json_escape d.message)
    (json_escape (citation d.code))
