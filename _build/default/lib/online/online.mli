(** Online aggregation on top of the GUS algebra.

    The ripple-join / DBO line of work (paper Section 2) streams base
    tables in random order and keeps refining an estimate with a shrinking
    confidence interval.  The GUS algebra reconstructs that capability with
    no bespoke theory: after reading a prefix of [n_i] rows from a random
    permutation of relation [i], the rows read are exactly a WOR(n_i, N_i)
    sample, so the plan-with-prefixes rewrites (Prop. 6/8) to a single GUS
    and Theorem 1 prices the current estimate.  At 100% the GUS degenerates
    to the identity and the interval collapses onto the exact answer.

    This implementation re-executes the (sample-free) skeleton over the
    current prefixes at every checkpoint — O(checkpoints × join); a
    production engine would maintain the join incrementally (ripple join),
    which changes cost, not statistics. *)

type t

type checkpoint = {
  fractions : (string * float) list;
      (** per base relation, share of rows consumed so far *)
  rows_read : int;  (** total base rows consumed so far *)
  report : Gus_estimator.Sbox.report;
  interval : Gus_stats.Interval.t;  (** 95% normal interval *)
}

val create :
  ?seed:int ->
  Gus_relational.Database.t ->
  plan:Gus_core.Splan.t ->
  f:Gus_relational.Expr.t ->
  t
(** Sampling operators in [plan] are stripped — the driver owns the
    randomness (one independent shuffle per base relation). *)

val finished : t -> bool
val step : t -> rows:int -> checkpoint
(** Consume up to [rows] further rows from {e each} base relation (clamped
    at the end), then re-estimate.  Raises [Invalid_argument] if
    [rows <= 0]. *)

val run : ?seed:int ->
  Gus_relational.Database.t ->
  plan:Gus_core.Splan.t ->
  f:Gus_relational.Expr.t ->
  checkpoints:int ->
  checkpoint list
(** Evenly spaced checkpoints up to full consumption; the last checkpoint
    has zero-width interval and the exact answer. *)
