examples/strategy_choice.ml: Database Expr Float Gus_core Gus_estimator Gus_relational Gus_sampling Gus_tpch List Printf Relation
