module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Gus = Gus_core.Gus
module Moments = Gus_estimator.Moments
module Tablefmt = Gus_util.Tablefmt

let run ?(scale = 1.0) ?(trials = 200) () =
  Harness.section "E3"
    "Variance-estimator quality (Query 1 workload): sigma^2-hat vs exact vs MC";
  let db = Harness.db_cached ~scale in
  let t =
    Tablefmt.create
      ~headers:
        [ "lineitem %"; "exact Thm-1 var"; "MC var"; "mean est. var";
          "est/exact"; "MC/exact" ]
  in
  List.iter
    (fun p ->
      let plan = Harness.query1_plan ~bernoulli:p ~wor:500 () in
      let analysis = Rewrite.analyze_db db plan in
      let full = Splan.exec_exact db plan in
      let y_exact = Moments.of_relation ~f:Harness.revenue_f full in
      let exact_var = Gus.variance (Lazy.force analysis.Rewrite.gus) ~y:y_exact in
      let s =
        Harness.trials_par ~pool:(Gus_util.Pool.default ()) ~trials db plan
          ~f:Harness.revenue_f
      in
      Tablefmt.add_row t
        [ Printf.sprintf "%.1f" (100.0 *. p);
          Harness.fcell exact_var;
          Harness.fcell s.Harness.mc_variance;
          Harness.fcell s.Harness.mean_est_variance;
          Printf.sprintf "%.3f" (s.Harness.mean_est_variance /. exact_var);
          Printf.sprintf "%.3f" (s.Harness.mc_variance /. exact_var) ])
    [ 0.02; 0.05; 0.10; 0.20 ];
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: both ratios ~ 1.0 (the Y-hat correction is unbiased; \
     MC fluctuates with %d trials).\n" trials
