(** Compile a parsed query to a sampling plan.

    A deliberately simple planner in the spirit of Section 6: FROM items
    are combined left to right, using a hash equi-join whenever the WHERE
    clause supplies a key-equality predicate connecting the new item to the
    already-joined set (cross product otherwise); single-table predicates
    are placed directly above each (sampled) scan; whatever remains goes in
    a final selection.  TABLESAMPLE clauses become [Splan.Sample] nodes on
    the scans, so the sampling-then-filtering order matches SQL. *)

exception Error of string

type compiled = {
  plan : Gus_core.Splan.t;
  query : Ast.query;
}

val compile :
  ?self_join_check:bool -> Gus_relational.Database.t -> Ast.query -> compiled
(** Raises {!Error} on unknown relations/columns, duplicate FROM relations
    (self-joins are outside the theory), or an empty FROM list.
    [~self_join_check:false] lets a duplicated FROM relation through so the
    resulting plan can be handed to {!Gus_analysis.Lint} — the linter then
    reports it as GUS001 together with every other problem, instead of this
    planner failing fast. *)

val sampler_of_spec : Ast.sample_spec -> Gus_sampling.Sampler.t option
(** [None] for a 100-PERCENT sample (no-op). [System_percent] maps to
    block sampling with {!system_block_rows} rows per block. *)

val system_block_rows : int
