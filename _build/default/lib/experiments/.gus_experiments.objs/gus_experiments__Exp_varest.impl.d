lib/experiments/exp_varest.ml: Gus_core Gus_estimator Gus_util Harness List Printf
