(** T2 — Examples 1–3 / Figure 2: the GUS derivation for Query 1
    (lineitem Bernoulli 10% ⋈ orders WOR 1000-of-150000), checked
    coefficient by coefficient against the numbers printed in the paper. *)

val run : unit -> unit

val paper_values : (string * float) list
(** (coefficient, value) as printed in Example 3. *)

val derived : unit -> Gus_core.Gus.t
(** The rewriter's top GUS for Query 1 at the paper's cardinalities. *)
