(* Tests for the symbolic sum-of-products coefficient algebra: every
   constructor and combinator mirrored against the dense {!Gus} oracle,
   the rewrite-rule book, structure queries (live mask, monotonicity,
   projection), the 62-relation mask guard, and the view-keyed sparse
   moments that carry wide-plan estimation past the dense 2^n wall. *)

module Gus = Gus_core.Gus
module Symalg = Gus_core.Symalg
module Subset = Gus_util.Subset
module Moments = Gus_estimator.Moments
module Pool = Gus_util.Pool

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let close ?(eps = 1e-9) what expected actual =
  check (Alcotest.float eps) what expected actual

let bits f = Int64.bits_of_float f

let check_gus_bits what (g : Gus.t) (h : Gus.t) =
  check_bool (what ^ ": rels") true (g.Gus.rels = h.Gus.rels);
  check_bool (what ^ ": a bits") true (bits g.Gus.a = bits h.Gus.a);
  Array.iteri
    (fun s bg ->
      if bits bg <> bits h.Gus.b.(s) then
        Alcotest.failf "%s: b_%s differs: %h vs %h" what
          (Gus.subset_name g s) bg h.Gus.b.(s))
    g.Gus.b

let check_gus_close ?(eps = 1e-9) what (g : Gus.t) (h : Gus.t) =
  check_bool (what ^ ": rels") true (g.Gus.rels = h.Gus.rels);
  close ~eps (what ^ ": a") g.Gus.a h.Gus.a;
  Array.iteri (fun s bg -> close ~eps (what ^ ": b") bg h.Gus.b.(s)) g.Gus.b

(* ---- constructors mirror the dense Figure-1 values bit-for-bit ---- *)

let test_constructors_vs_dense () =
  check_gus_bits "identity"
    (Gus.identity [| "r"; "s" |])
    (Symalg.to_gus (Symalg.identity [| "r"; "s" |]));
  check_gus_bits "null" (Gus.null [| "r" |])
    (Symalg.to_gus (Symalg.null [| "r" |]));
  check_gus_bits "bernoulli"
    (Gus.bernoulli ~rel:"r" 0.1)
    (Symalg.to_gus (Symalg.bernoulli ~rel:"r" 0.1));
  check_gus_bits "wor"
    (Gus.wor ~rel:"r" ~n:1000 ~out_of:150000)
    (Symalg.to_gus (Symalg.wor ~rel:"r" ~n:1000 ~out_of:150000));
  check_gus_bits "wor n=N=1"
    (Gus.wor ~rel:"r" ~n:1 ~out_of:1)
    (Symalg.to_gus (Symalg.wor ~rel:"r" ~n:1 ~out_of:1));
  check_gus_bits "bernoulli_over"
    (Gus.bernoulli_over [| "r"; "s"; "t" |] 0.3)
    (Symalg.to_gus (Symalg.bernoulli_over [| "r"; "s"; "t" |] 0.3))

(* ---- combinators: left-deep product forms bitwise, the rest 1e-9 ---- *)

let test_join_compact_bitwise () =
  (* The plan-walk shape: each sampler compacts onto its single-relation
     input, then the join folds left-deep.  Evaluation order matches the
     dense fold exactly, so every entry is bit-equal. *)
  let gd =
    Gus.join
      (Gus.compact (Gus.bernoulli ~rel:"r" 0.1) (Gus.identity [| "r" |]))
      (Gus.compact
         (Gus.wor ~rel:"s" ~n:10 ~out_of:100)
         (Gus.identity [| "s" |]))
  in
  let gs =
    Symalg.join
      (Symalg.compact (Symalg.bernoulli ~rel:"r" 0.1) (Symalg.identity [| "r" |]))
      (Symalg.compact
         (Symalg.wor ~rel:"s" ~n:10 ~out_of:100)
         (Symalg.identity [| "s" |]))
  in
  check_gus_bits "join+compact" gd (Symalg.to_gus gs)

let test_multi_rel_compact_close () =
  (* Compacting a multi-relation sampler onto a joined input reassociates
     the factor product, so entries agree to rounding, with [a] exact. *)
  let gd =
    Gus.compact
      (Gus.bernoulli_over [| "r"; "s" |] 0.4)
      (Gus.join (Gus.bernoulli ~rel:"r" 0.1)
         (Gus.wor ~rel:"s" ~n:10 ~out_of:100))
  in
  let gs =
    Symalg.compact
      (Symalg.bernoulli_over [| "r"; "s" |] 0.4)
      (Symalg.join
         (Symalg.bernoulli ~rel:"r" 0.1)
         (Symalg.wor ~rel:"s" ~n:10 ~out_of:100))
  in
  check_bool "a bits equal" true (bits gd.Gus.a = bits (Symalg.to_gus gs).Gus.a);
  check_gus_close "multi-rel compact" gd (Symalg.to_gus gs)

let test_union_close () =
  let mk_d p = Gus.join (Gus.bernoulli ~rel:"r" p) (Gus.bernoulli ~rel:"s" p) in
  let mk_s p =
    Symalg.join (Symalg.bernoulli ~rel:"r" p) (Symalg.bernoulli ~rel:"s" p)
  in
  let gd = Gus.union (mk_d 0.2) (mk_d 0.5) in
  let gs = Symalg.union (mk_s 0.2) (mk_s 0.5) in
  check_bool "a bits equal" true (bits gd.Gus.a = bits (Symalg.to_gus gs).Gus.a);
  check_gus_close "union" gd (Symalg.to_gus gs)

let test_extend_permute () =
  check_gus_bits "extend"
    (Gus.extend (Gus.bernoulli ~rel:"r" 0.25) [| "s"; "t" |])
    (Symalg.to_gus (Symalg.extend (Symalg.bernoulli ~rel:"r" 0.25) [| "s"; "t" |]));
  let gd = Gus.join (Gus.bernoulli ~rel:"r" 0.1) (Gus.bernoulli ~rel:"s" 0.7) in
  let gs =
    Symalg.join (Symalg.bernoulli ~rel:"r" 0.1) (Symalg.bernoulli ~rel:"s" 0.7)
  in
  check_gus_bits "permute"
    (Gus.permute gd [| "s"; "r" |])
    (Symalg.to_gus (Symalg.permute gs [| "s"; "r" |]))

(* ---- mirrored random op sequences: coefficients agree ---- *)

(* Build a random design twice — once densely, once symbolically — from
   the same structural choices, then compare the Theorem-1 coefficient
   vectors.  Product forms (joins/compacts only) must agree bitwise;
   sequences containing unions agree to 1e-9 (the SoP distributes what
   the dense operator evaluates pointwise, so float association
   differs). *)
let random_design rand n =
  let rel i = Printf.sprintf "x%d" i in
  let leaf i =
    match rand 4 with
    | 0 -> (Gus.identity [| rel i |], Symalg.identity [| rel i |], false)
    | 1 ->
        let p = 0.05 +. (0.9 *. float_of_int (rand 19) /. 19.0) in
        (Gus.bernoulli ~rel:(rel i) p, Symalg.bernoulli ~rel:(rel i) p, false)
    | 2 ->
        let big_n = 10 + rand 1000 in
        let n = 1 + rand big_n in
        ( Gus.wor ~rel:(rel i) ~n ~out_of:big_n,
          Symalg.wor ~rel:(rel i) ~n ~out_of:big_n,
          false )
    | _ -> (Gus.null [| rel i |], Symalg.null [| rel i |], false)
  in
  (* Left-deep joins mirror the planner's cross folds, so the dense and
     symbolic evaluation orders coincide. *)
  let rec joins i (gd, gs) =
    if i >= n then (gd, gs)
    else
      let gd2, gs2, _ = leaf i in
      joins (i + 1) (Gus.join gd gd2, Symalg.join gs gs2)
  in
  let gd0, gs0, _ = leaf 0 in
  let gd, gs = joins 1 (gd0, gs0) in
  let rels = gd.Gus.rels in
  (* Optionally stack a multi-relation Bernoulli and/or union with a
     shifted-rate copy — both reassociate floats, so those cases are
     checked to 1e-9 instead of bitwise. *)
  let gd, gs, exact =
    match rand 3 with
    | 0 -> (gd, gs, true)
    | 1 ->
        let p = 0.1 +. (0.8 *. float_of_int (rand 9) /. 9.0) in
        ( Gus.compact (Gus.bernoulli_over rels p) gd,
          Symalg.compact (Symalg.bernoulli_over rels p) gs,
          n = 1 )
    | _ ->
        let p = 0.3 in
        ( Gus.union gd (Gus.compact (Gus.bernoulli_over rels p) gd),
          Symalg.union gs (Symalg.compact (Symalg.bernoulli_over rels p) gs),
          false )
  in
  (gd, gs, exact)

let test_qcheck_coefficients_agree () =
  let gen =
    QCheck2.Gen.(pair (int_range 1 8) (int_bound 1_000_000))
  in
  let cell = QCheck2.Test.make ~count:200 ~name:"symbolic c = dense c" gen
      (fun (n, seed) ->
        let st = Random.State.make [| seed |] in
        let rand k = Random.State.int st k in
        let gd, gs, exact = random_design rand n in
        let cd = Gus.c_coefficients gd in
        let cs = Gus.c_coefficients (Symalg.to_gus gs) in
        Array.for_all2
          (fun a b ->
            if exact then bits a = bits b
            else Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a))
          cd cs)
  in
  QCheck_alcotest.to_alcotest cell

(* ---- the rule book ---- *)

let test_rule_book () =
  (* A union produces shift terms with weight 0 when a = 0.5 (2a − 1 = 0):
     the rule book prunes them. *)
  let g = Symalg.bernoulli ~rel:"r" 0.5 in
  let u = Symalg.union g g in
  let simplified, rules = Symalg.simplify u in
  check_bool "fixpoint reached: resimplify is a no-op" true
    (snd (Symalg.simplify simplified) = []);
  check_bool "at least one term survives" true (Symalg.term_count simplified >= 1);
  ignore rules;
  (* Terms at identical factor vectors merge: B(p) ∪ B(p) over the same
     relation stays a handful of terms, never 2^terms. *)
  let rec fold k acc = if k = 0 then acc else fold (k - 1) (Symalg.union acc g) in
  let chained = fold 6 g in
  check_bool "union chain stays compact" true (Symalg.term_count chained <= 16);
  check_gus_close "union chain value" ~eps:1e-9
    (let gd = Gus.bernoulli ~rel:"r" 0.5 in
     let rec fd k acc = if k = 0 then acc else fd (k - 1) (Gus.union acc gd) in
     fd 6 gd)
    (Symalg.to_gus chained)

let test_rule_book_drops () =
  (* drop-zero-term / merge-duplicate-terms leave the evaluation intact. *)
  let g =
    Symalg.union
      (Symalg.bernoulli ~rel:"r" 0.2)
      (Symalg.bernoulli ~rel:"r" 0.4)
  in
  let s, _ = Symalg.simplify g in
  check_bool "simplify preserves a (bits)" true
    (bits g.Symalg.a = bits s.Symalg.a);
  for mask = 0 to 1 do
    close ~eps:0.0 "simplify preserves b" (Symalg.b_get g mask)
      (Symalg.b_get s mask)
  done;
  check_bool "terms never empty" true (Symalg.term_count s >= 1)

(* ---- structure queries ---- *)

let test_live_mask () =
  let g =
    Symalg.join
      (Symalg.join (Symalg.identity [| "a" |]) (Symalg.bernoulli ~rel:"b" 0.5))
      (Symalg.join (Symalg.identity [| "c" |]) (Symalg.wor ~rel:"d" ~n:2 ~out_of:9))
  in
  check_int "live = {b, d}" 0b1010 (Symalg.live_mask g);
  check_bool "nonneg_monotone product form" true (Symalg.nonneg_monotone g);
  (* p = 1 Bernoulli is inert too: lo = hi = 1. *)
  check_int "B(1) inert" 0 (Symalg.live_mask (Symalg.bernoulli ~rel:"r" 1.0))

let test_project () =
  let g =
    Symalg.join
      (Symalg.join (Symalg.identity [| "a" |]) (Symalg.bernoulli ~rel:"b" 0.5))
      (Symalg.identity [| "c" |])
  in
  let live = Symalg.live_mask g in
  let p = Symalg.project g live in
  check_int "projected width" 1 (Symalg.n_rels p);
  check_bool "projected a bits" true (bits g.Symalg.a = bits p.Symalg.a);
  (* Projected entries are bit-equal to the dense b at the embedded
     masks. *)
  let gd = Symalg.to_gus g and pd = Symalg.to_gus p in
  check_bool "b{} embeds" true (bits (Gus.b_get gd 0) = bits (Gus.b_get pd 0));
  check_bool "b{b} embeds" true
    (bits (Gus.b_get gd 0b010) = bits (Gus.b_get pd 1));
  (* Projecting away a live relation is refused. *)
  check_bool "cannot project away live" true
    (try ignore (Symalg.project g 0); false with Gus.Incompatible _ -> true)

let test_is_identity () =
  check_bool "identity" true (Symalg.is_identity (Symalg.identity [| "r"; "s" |]));
  check_bool "bernoulli not identity" false
    (Symalg.is_identity (Symalg.bernoulli ~rel:"r" 0.5));
  check_bool "B(1) is identity" true
    (Symalg.is_identity (Symalg.bernoulli ~rel:"r" 1.0))

(* ---- wide widths and the 62-bit mask guard ---- *)

let test_wide_widths () =
  let rels = Array.init 40 (fun i -> Printf.sprintf "w%d" i) in
  let g =
    Array.fold_left
      (fun acc r ->
        let leaf = Symalg.bernoulli ~rel:r 0.5 in
        match acc with None -> Some leaf | Some a -> Some (Symalg.join a leaf))
      None rels
  in
  let g = Option.get g in
  check_int "40 relations" 40 (Symalg.n_rels g);
  close ~eps:1e-300 "a = 0.5^40" (Float.pow 0.5 40.0) g.Symalg.a;
  check_bool "to_gus refused past dense wall" true
    (try ignore (Symalg.to_gus g); false with Gus.Incompatible _ -> true);
  (* live subsets enumerate fine via the wide full mask *)
  check_int "live mask cardinal" 40 (Subset.cardinal (Symalg.live_mask g))

let test_mask_guard () =
  check_bool "check_mask_bits refuses 63" true
    (try Subset.check_mask_bits 63; false with Invalid_argument msg ->
       (* the message names the limit *)
       let has_sub s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         m = 0 || go 0
       in
       has_sub msg "62");
  check_int "full_wide 62 = max_int" max_int (Subset.full_wide 62);
  check_int "full_wide 3" 7 (Subset.full_wide 3);
  (* join past 62 relations refused *)
  let wide n =
    let g = ref (Symalg.bernoulli ~rel:"q0" 0.5) in
    for i = 1 to n - 1 do
      g := Symalg.join !g (Symalg.bernoulli ~rel:(Printf.sprintf "q%d" i) 0.5)
    done;
    !g
  in
  check_int "62 rels ok" 62 (Symalg.n_rels (wide 62));
  check_bool "63 rels refused" true
    (try ignore (wide 63); false with Gus.Incompatible _ -> true)

let test_subset_elements_wide () =
  (* bits at the top of the usable range round-trip *)
  let mask = Subset.union (1 lsl 61) 0b101 in
  check (Alcotest.list Alcotest.int) "elements" [ 0; 2; 61 ]
    (Subset.elements mask)

(* ---- view-keyed moments: wide lineages, small kernel universes ---- *)

let mk_wide_pairs ~width ~live n =
  (* lineages are [width] columns; only the [live] columns vary *)
  Array.init n (fun i ->
      let l = Array.make width 0 in
      List.iteri (fun j p -> l.(p) <- (i / (j + 1)) mod 3) live;
      (l, 1.0 +. float_of_int (i mod 7)))

let test_view_matches_dense_restriction () =
  let width = 20 and live = [ 4; 9; 14 ] in
  let pairs = mk_wide_pairs ~width ~live 500 in
  let view = Array.of_list live in
  let k = Array.length view in
  let y_view =
    Moments.of_pairs ~view ~lineage_width:width ~n_rels:k pairs
  in
  (* oracle: restrict the lineages by hand and run the narrow kernel *)
  let narrow =
    Array.map (fun (l, f) -> (Array.map (fun p -> l.(p)) view, f)) pairs
  in
  let y_narrow = Moments.of_pairs ~n_rels:k narrow in
  Array.iteri
    (fun s v ->
      if bits v <> bits y_narrow.(s) then
        Alcotest.failf "mask %d: %h vs %h" s v y_narrow.(s))
    y_view

let test_view_acc_and_pools () =
  let width = 20 and live = [ 4; 9; 14 ] in
  let pairs = mk_wide_pairs ~width ~live 800 in
  let view = Array.of_list live in
  let k = Array.length view in
  let y_batch = Moments.of_pairs ~view ~lineage_width:width ~n_rels:k pairs in
  List.iter
    (fun lanes ->
      let pool = Pool.create ~size:lanes in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let acc =
            Moments.Acc.create ~view ~lineage_width:width ~n_rels:k ()
          in
          Moments.Acc.add_pairs acc pairs;
          let y = Moments.Acc.finalize ~pool acc in
          Array.iteri
            (fun s v ->
              if bits v <> bits y_batch.(s) then
                Alcotest.failf "pool %d mask %d: %h vs %h" lanes s v y_batch.(s))
            y))
    [ 1; 2; 4 ]

let test_view_validation () =
  let reject what f =
    check_bool what true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  let pairs = [| (Array.make 5 0, 1.0) |] in
  reject "descending view" (fun () ->
      Moments.of_pairs ~view:[| 3; 1 |] ~lineage_width:5 ~n_rels:2 pairs);
  reject "view out of width" (fun () ->
      Moments.of_pairs ~view:[| 1; 7 |] ~lineage_width:5 ~n_rels:2 pairs);
  reject "width without view" (fun () ->
      Moments.of_pairs ~lineage_width:5 ~n_rels:2 pairs);
  reject "view length <> n_rels" (fun () ->
      Moments.of_pairs ~view:[| 1 |] ~lineage_width:5 ~n_rels:2 pairs);
  reject "merge view mismatch" (fun () ->
      let a = Moments.Acc.create ~view:[| 1; 2 |] ~lineage_width:5 ~n_rels:2 () in
      let b = Moments.Acc.create ~view:[| 1; 3 |] ~lineage_width:5 ~n_rels:2 () in
      Moments.Acc.merge a b)

let () =
  Alcotest.run "symalg"
    [ ( "constructors",
        [ Alcotest.test_case "figure 1 vs dense (bitwise)" `Quick
            test_constructors_vs_dense;
          Alcotest.test_case "join/compact bitwise" `Quick
            test_join_compact_bitwise;
          Alcotest.test_case "multi-rel compact within 1e-9" `Quick
            test_multi_rel_compact_close;
          Alcotest.test_case "union within 1e-9, a bitwise" `Quick
            test_union_close;
          Alcotest.test_case "extend/permute" `Quick test_extend_permute ] );
      ( "coefficients",
        [ test_qcheck_coefficients_agree () ] );
      ( "rule-book",
        [ Alcotest.test_case "fixpoint + compaction" `Quick test_rule_book;
          Alcotest.test_case "drops preserve evaluation" `Quick
            test_rule_book_drops ] );
      ( "structure",
        [ Alcotest.test_case "live mask" `Quick test_live_mask;
          Alcotest.test_case "projection embeds bitwise" `Quick test_project;
          Alcotest.test_case "is_identity" `Quick test_is_identity ] );
      ( "wide",
        [ Alcotest.test_case "40 relations" `Quick test_wide_widths;
          Alcotest.test_case "62-bit mask guard" `Quick test_mask_guard;
          Alcotest.test_case "Subset.elements top bits" `Quick
            test_subset_elements_wide ] );
      ( "views",
        [ Alcotest.test_case "view = restricted dense (bitwise)" `Quick
            test_view_matches_dense_restriction;
          Alcotest.test_case "Acc + pools 1/2/4 (bitwise)" `Quick
            test_view_acc_and_pools;
          Alcotest.test_case "validation" `Quick test_view_validation ] ) ]
