let m_batches = Gus_obs.Metrics.counter "scheduler.batches"
let m_jobs = Gus_obs.Metrics.counter "scheduler.jobs"

let map ?pool f jobs =
  let n = Array.length jobs in
  Gus_obs.Metrics.incr m_batches;
  Gus_obs.Metrics.add m_jobs n;
  let run i = try Ok (f jobs.(i)) with e -> Error e in
  let parallel =
    match pool with
    | Some p when n > 1 && Gus_util.Pool.is_live p && Gus_util.Pool.size p > 1
      ->
        Some p
    | _ -> None
  in
  match parallel with
  | None ->
      (* explicit loop: inline jobs run in submission order *)
      let results = Array.make n None in
      for i = 0 to n - 1 do
        results.(i) <- Some (run i)
      done;
      Array.map (function Some r -> r | None -> assert false) results
  | Some pool ->
      (* Slot array written at disjoint indices by the lanes. *)
      let results = Array.make n None in
      Gus_util.Pool.run_chunks pool ~lo:0 ~hi:n (fun lo hi ->
          for i = lo to hi - 1 do
            results.(i) <- Some (run i)
          done);
      Array.map
        (function Some r -> r | None -> assert false (* every slot filled *))
        results
