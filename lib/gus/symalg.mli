(** Symbolic sum-of-products algebra for second-moment vectors.

    A dense {!Gus.t} stores all [2^n] second-order inclusion probabilities
    [b_T]; this module stores the {e function} [T ↦ b_T] factorized as

    {v b_T = Σ_k w_k · Π_i φ_k,i(i ∈ T) v}

    with one [(lo, hi)] factor per lineage relation per term.  Prop 6
    (join) concatenates factor lists, Prop 8 (compact) multiplies factors
    pointwise, Prop 7 (union) distributes over both operands' terms — the
    closure Theorem 2's semiring structure guarantees.  An
    independent-Bernoulli-style design therefore stays a handful of terms
    at any width: plans with 20+ sampled relations, far past the dense
    [2^n] wall, rewrite and analyze in microseconds.

    Width is capped at {!max_rels} = {!Gus_util.Subset.max_mask_bits}
    (subsets remain int bitmasks); materializing ({!to_gus}) is capped at
    {!Gus_util.Subset.max_universe} like every dense consumer.

    Float discipline: [a] is maintained with exactly the dense operators'
    float expressions, and factors are combined with the same
    multiplications the dense combinator applies to b-entries.  For
    product-form designs (joins/compacts of the Figure-1 samplers — no
    unions) a left-deep evaluation order makes every materialized entry
    bit-identical to the dense fold's, which is what the linter's
    byte-identity CI gate checks end to end. *)

type term = {
  w : float;  (** scalar weight; 1.0 for pure product designs *)
  lo : float array;  (** φ_i(false): factor value when i ∉ T *)
  hi : float array;  (** φ_i(true): factor value when i ∈ T *)
}

type repr =
  | Sop of term list
  | Dense of Gus.t
      (** fallback for designs whose term count blew the budget inside the
          dense-representable width *)

type t = private {
  rels : string array;
  a : float;  (** first-order inclusion probability, bit-equal to the
                  dense path's *)
  repr : repr;
}

val max_rels : int
(** Widest representable lineage ({!Gus_util.Subset.max_mask_bits} = 62);
    beyond it even subset masks overflow, so constructors raise. *)

(** {1 Constructors (Figure 1)} *)

val constant : string array -> float -> t
val identity : string array -> t
val null : string array -> t
val bernoulli : rel:string -> float -> t
val wor : rel:string -> n:int -> out_of:int -> t
val bernoulli_over : string array -> float -> t
val of_gus : Gus.t -> t
(** Wrap a dense GUS as an entangled-design fallback value. *)

(** {1 Combinators (Props 6–8)} *)

val join : t -> t -> t
val compact : t -> t -> t
val union : t -> t -> t
val extend : t -> string array -> t
val permute : t -> string array -> t
(** Same contracts as the {!Gus} namesakes; raise {!Gus.Incompatible} on
    schema violations or past-the-mask-limit widths. *)

(** {1 Evaluation} *)

val n_rels : t -> int
val b_get : t -> int -> float
(** [b_get t s] evaluates the SoP at subset mask [s] (clamped to [0,1]
    like the dense union operator clamps; the diagonal returns [a]
    exactly, mirroring {!Gus.make}). *)

val to_gus : t -> Gus.t
(** Materialize all [2^n] entries.  Raises {!Gus.Incompatible} past
    {!Gus_util.Subset.max_universe}. *)

(** {1 The rule book} *)

val simplify : t -> t * string list
(** Apply the rewrite-rule book — [drop-zero-term], [drop-null-term],
    [merge-duplicate-terms] — to a fixpoint, returning the simplified
    value and the rule applications in order.  Every rule strictly
    decreases the term count, so the fixpoint terminates after at most
    [term_count t] firings. *)

val term_count : t -> int
(** Number of SoP terms (0 for a dense fallback). *)

(** {1 Structure queries (what the linter and estimator consume)} *)

val live_mask : t -> int
(** Relations whose factor actually depends on membership ([lo ≠ hi]
    somewhere, compared on float bits).  The complement is structurally
    design-inert: flipping a dead relation cannot change any [b_T], so
    every dead-touching coefficient [c_S] is an exact float zero under the
    Möbius transform — the sparse live-pass set the moments kernel keys
    on. *)

val nonneg_monotone : t -> bool
(** Every term has [w ≥ 0] and [hi ≥ lo ≥ 0] per factor.  Then every
    coefficient [c_S = Σ_k w_k Π_{i∈S}(hi−lo) Π_{i∉S}lo ≥ 0], so Theorem
    1's Σ c_S⁺ telescopes to [b_full = a] in closed form, and [b_T] is
    monotone in [T] so no entry can exceed its marginal. *)

val project : t -> int -> t
(** [project t live] restricts to the relations in [live], folding each
    dropped factor's constant value into the term weight.  Exact (and only
    allowed) when the dropped relations are structurally dead:
    [live_mask t ⊆ live], else raises {!Gus.Incompatible}.  The projected
    value materializes ({!to_gus}) over the compressed [k]-relation
    universe with entries bit-equal to the dense [b] at the embedded
    masks. *)

val is_identity : ?eps:float -> t -> bool
(** Whether this is (approximately) the identity GUS — every entry within
    [eps] of 1.  Mirrors [Gus.equal_approx g (Gus.identity …)]. *)

val subset_name : t -> int -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string
