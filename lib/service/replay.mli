(** Bit-identical replay of serving journals.

    A journal written by an {!Engine} with a {!Gus_obs.Journal} attached
    is a reproducible trace: register events carry the dataset's build
    recipe ({!Catalog.source_json}), exec events carry the SQL and the
    full override set plus the exact estimate produced.  Replay rebuilds
    the datasets in journal order (so versions line up), re-executes
    every exec event with its journaled seed/rates/explain/exact, and
    compares estimate, stddev and variance {e bit for bit} — the
    engine's determinism guarantee makes any mismatch evidence of data
    drift or a reproducibility bug, never noise.

    The journaled [explain] flag is honored on replay because the
    profiled (materializing) path's moment-reduction order can differ
    from the streaming path's in the final stddev bits. *)

exception Corrupt of { line : int; message : string }
(** A journal line that does not parse or lacks a required field.
    [line] is 1-based. *)

type mismatch = {
  mm_line : int;  (** journal line of the exec event *)
  mm_sql : string;
  mm_field : string;  (** ["estimate"] | ["stddev"] | ["variance"] *)
  mm_journaled : float;
  mm_replayed : float;
}

type report = {
  rp_registers : int;  (** datasets rebuilt from journaled sources *)
  rp_skipped : int;  (** register events for already-present datasets *)
  rp_executions : int;
  rp_matched : int;
  rp_sheds : int;
      (** shed decision events — advisory provenance, counted and
          skipped: the degraded rates also ride in the following exec
          event's [rates] field, which is what gets re-executed and
          compared *)
  rp_mismatches : mismatch list;
}

val run_file : ?engine:Engine.t -> string -> report
(** Replay a journal file.  [engine] defaults to a fresh
    {!Engine.create}[ ()]; pass one with datasets pre-registered to
    replay journals of in-memory sources (their register events are
    then skipped rather than rebuilt).  Raises {!Corrupt} on a bad
    line, [Failure] on an in-memory source that was not pre-registered,
    and the usual engine errors ({!Catalog.Unknown_dataset}, parse
    errors, ...) when the journaled requests themselves fail. *)

val run_channel : ?engine:Engine.t -> in_channel -> report
val run_string : ?engine:Engine.t -> string -> report
(** As {!run_file}, from an open channel / an in-memory NDJSON string
    (blank lines skipped). *)
