test/test_sbox.ml: Alcotest Array Database Expr Float Gus_core Gus_estimator Gus_relational Gus_sampling Gus_stats Gus_util Lazy Printf Relation Schema Tuple Value
