module Sampler = Gus_sampling.Sampler
module Splan = Gus_core.Splan

type action =
  | Drop_sampler of Sampler.t
  | Merge_stacked of { outer : Sampler.t; inner : Sampler.t; merged : Sampler.t }
  | Push_below_select of Sampler.t

type t = { at : int list; action : action; summary : string }

let drop_sampler ~at sampler =
  { at;
    action = Drop_sampler sampler;
    summary = Printf.sprintf "drop redundant %s" (Sampler.to_string sampler) }

let merge_stacked ~at outer inner merged =
  { at;
    action = Merge_stacked { outer; inner; merged };
    summary =
      Printf.sprintf "merge %s over %s into %s (a = a1*a2)"
        (Sampler.to_string outer) (Sampler.to_string inner)
        (Sampler.to_string merged) }

let push_below_select ~at sampler =
  { at;
    action = Push_below_select sampler;
    summary =
      Printf.sprintf "push %s below the select (Prop. 5)"
        (Sampler.to_string sampler) }

let action_label = function
  | Drop_sampler _ -> "drop-sampler"
  | Merge_stacked _ -> "merge-stacked"
  | Push_below_select _ -> "push-below-select"

(* Same rendering as [Diagnostic.path_to_string]; duplicated because
   [Diagnostic] depends on this module (diagnostics carry fixes). *)
let path_to_string = function
  | [] -> "$"
  | p -> "$." ^ String.concat "." (List.map string_of_int p)

let pp ppf t =
  Format.fprintf ppf "%s at %s: %s" (action_label t.action)
    (path_to_string t.at) t.summary

let to_string t = Format.asprintf "%a" pp t

(* Rewrite the subtree at the end of [path], or return [None] when the
   plan no longer has that shape (a previous fix moved it). *)
let rec rewrite_at path f plan =
  match path with
  | [] -> f plan
  | i :: rest -> (
      let on child =
        Option.map (fun c -> (c : Splan.t)) (rewrite_at rest f child)
      in
      match (plan, i) with
      | Splan.Select (p, q), 0 ->
          Option.map (fun q -> Splan.Select (p, q)) (on q)
      | Splan.Project (fields, q), 0 ->
          Option.map (fun q -> Splan.Project (fields, q)) (on q)
      | Splan.Sample (s, q), 0 ->
          Option.map (fun q -> Splan.Sample (s, q)) (on q)
      | Splan.Distinct q, 0 -> Option.map (fun q -> Splan.Distinct q) (on q)
      | Splan.Equi_join j, 0 ->
          Option.map (fun left -> Splan.Equi_join { j with left }) (on j.left)
      | Splan.Equi_join j, 1 ->
          Option.map (fun right -> Splan.Equi_join { j with right }) (on j.right)
      | Splan.Theta_join (p, l, r), 0 ->
          Option.map (fun l -> Splan.Theta_join (p, l, r)) (on l)
      | Splan.Theta_join (p, l, r), 1 ->
          Option.map (fun r -> Splan.Theta_join (p, l, r)) (on r)
      | Splan.Cross (l, r), 0 -> Option.map (fun l -> Splan.Cross (l, r)) (on l)
      | Splan.Cross (l, r), 1 -> Option.map (fun r -> Splan.Cross (l, r)) (on r)
      | Splan.Union_samples (l, r), 0 ->
          Option.map (fun l -> Splan.Union_samples (l, r)) (on l)
      | Splan.Union_samples (l, r), 1 ->
          Option.map (fun r -> Splan.Union_samples (l, r)) (on r)
      | (Splan.Scan _ | Splan.Select _ | Splan.Project _ | Splan.Sample _
        | Splan.Distinct _ | Splan.Equi_join _ | Splan.Theta_join _
        | Splan.Cross _ | Splan.Union_samples _), _ ->
          None)

(* Each rewrite checks that the node still holds the exact samplers the
   fix was issued for: an earlier fix in the same batch may have
   rewritten a descendant (e.g. merged a deeper stacked pair), in which
   case applying a stale precomputed result would be unsound.  Returning
   [None] is always safe — the apply_fixes fixpoint re-lints and
   re-issues fresh fixes for whatever shape remains. *)
let apply t plan =
  let step node =
    match (t.action, node) with
    | Drop_sampler s, Splan.Sample (s', q) when s = s' -> Some q
    | ( Merge_stacked { outer; inner; merged },
        Splan.Sample (o, Splan.Sample (i, q)) )
      when o = outer && i = inner ->
        Some (Splan.Sample (merged, q))
    | Push_below_select s, Splan.Sample (s', Splan.Select (p, q))
      when s = s' ->
        Some (Splan.Select (p, Splan.Sample (s', q)))
    | (Drop_sampler _ | Merge_stacked _ | Push_below_select _), _ -> None
  in
  rewrite_at t.at step plan

(* Apply deepest-first so shallower paths stay valid while deeper
   subtrees are rewritten; none of the three rewrites changes the child
   index of a node above it.  Returns the fixed plan and the fixes that
   actually applied. *)
let apply_all fixes plan =
  let deeper a b = compare (List.length b.at, b.at) (List.length a.at, a.at) in
  let fixes = List.stable_sort deeper fixes in
  List.fold_left
    (fun (plan, applied) fix ->
      match apply fix plan with
      | Some plan' -> (plan', fix :: applied)
      | None -> (plan, applied))
    (plan, []) fixes
  |> fun (plan, applied) -> (plan, List.rev applied)
