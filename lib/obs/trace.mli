(** Hierarchical execution tracing with per-domain, lock-free buffers.

    Every domain records begin/end/instant events into its own buffer
    (created on first use through domain-local storage), so pool lanes
    trace concurrently without synchronization on the hot path.  Buffers
    are merged — in ascending domain-id order, events in record order —
    only at export time, either as a Chrome/Perfetto [trace_event] JSON
    stream ({!export_json}) or as an indented text tree ({!pp_tree}).

    {b Disabled path.}  Tracing is off by default; every recording entry
    point first reads a single mutable flag and returns immediately when
    it is false.  Instrumented code guards name/argument construction
    behind {!enabled} so a disabled program performs one load-and-branch
    per span site and allocates nothing.

    {b Determinism.}  Tracing only reads the monotonic clock and appends
    to buffers: it never consults an RNG or changes control flow, so a
    traced run computes bit-identical results to an untraced one. *)

val set_enabled : bool -> unit
(** Toggle recording.  Call from a quiescent point (no pool jobs in
    flight); lanes observe the flag at their next span site. *)

val enabled : unit -> bool
(** The one check instrumentation sites perform before doing any work. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds from an arbitrary origin.  Allocation
    free (C stub returning an immediate int). *)

type args = (string * string) list
(** Span annotations, rendered into the [args] object of the Chrome
    event (values are emitted as JSON strings). *)

val enter : ?args:args -> string -> unit
(** Open a span on the calling domain.  No-op when disabled. *)

val leave : ?args:args -> string -> unit
(** Close the innermost open span on the calling domain.  The name is
    recorded for the text tree; Chrome pairs by nesting.  Extra [args]
    are merged into the span's annotations at tree-building time. *)

val span : ?args:(unit -> args) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside an [enter]/[leave] pair (the pair is
    balanced on exceptions).  [args] is only evaluated when tracing is
    enabled, after [f] returns — so annotations can be computed lazily
    and cost nothing when disabled. *)

val instant : ?args:args -> string -> unit
(** A zero-duration marker event. *)

val clear : unit -> unit
(** Drop every recorded event (all domains).  Call from a quiescent
    point. *)

val event_count : unit -> int
(** Total recorded events across all domain buffers. *)

type span_tree = {
  sname : string;
  start_ns : int;  (** monotonic, comparable across domains *)
  dur_ns : int;
  sargs : args;
  children : span_tree list;
}

val trees : unit -> (int * span_tree list) list
(** The recorded spans reconstructed into forests, one per domain, in
    ascending domain-id order — the canonical merge order.  Spans left
    open (unbalanced [enter]) extend to their last recorded descendant;
    stray [leave]s are dropped. *)

val export_json : unit -> string
(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]): one [B]/[E]
    pair per span, [i] for instants, [tid] = domain id, timestamps in
    microseconds relative to the earliest recorded event.  Loadable by
    [chrome://tracing] and Perfetto. *)

val pp_tree : Format.formatter -> unit -> unit
(** Indented per-domain text rendering of {!trees} with durations. *)
