(** Section-7 multi-dimensional Bernoulli subsampling of a {e result} set.

    To estimate the y_S moments cheaply, the SBox draws a lineage-keyed
    Bernoulli subsample of the query's result tuples: relation [i] gets a
    seed and a rate [p_i], and a result tuple survives iff every one of its
    lineage ids passes its relation's pseudo-random test.  Because the
    decision is a deterministic function of (seed, id), a base tuple is
    dropped from {e all} result tuples it contributes to — exactly the
    filter behaviour a GUS method requires. *)

type dim = { relation : string; seed : int; p : float }

val apply : dim list -> Gus_relational.Relation.t -> Gus_relational.Relation.t
(** Every relation of the input's lineage schema must appear in exactly one
    [dim] (missing ⇒ [Invalid_argument]); rates outside [0,1] are
    rejected. *)

val plan_rates : target:int -> current:int -> ndims:int -> float
(** Uniform per-dimension rate r so that a result of [current] tuples
    shrinks to about [target]: r = (target/current)^(1/ndims), clamped to
    (0, 1].  [current = 0] yields 1. *)
