module Runner = Gus_sql.Runner
module Journal = Gus_obs.Journal

let m_rel_ci =
  Gus_obs.Metrics.histogram
    ~buckets:
      [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.;
         10. |]
    "serve.rel_ci_half_width"

let m_breaches = Gus_obs.Metrics.counter "slo.breaches"
let m_breach_rel_ci = Gus_obs.Metrics.counter "slo.breaches.rel_ci"
let m_breach_latency = Gus_obs.Metrics.counter "slo.breaches.latency"

type t = {
  catalog : Catalog.t;
  cache : Runner.response Cache.t;
  prepared : (string, Prepared.t) Hashtbl.t;
  pool : Gus_util.Pool.t option;
  mutable next_handle : int;
  journal : Journal.t option;
  slo : Journal.slo;
  on_breach : (string -> unit) option;
  limiter : Journal.limiter;
  start_ns : int;
}

exception Unknown_handle of string

let now = Gus_obs.Trace.now_ns

let create ?(cache_capacity = 128) ?pool ?journal ?(slo = Journal.no_slo)
    ?on_breach () =
  let t =
    { catalog = Catalog.create ();
      cache = Cache.create ~capacity:cache_capacity;
      prepared = Hashtbl.create 16;
      pool;
      next_handle = 1;
      journal;
      slo;
      on_breach;
      limiter = Journal.limiter ();
      start_ns = now () }
  in
  (* Eager invalidation: any (re)registration or removal drops the
     dataset's cached responses.  The version baked into every key
     already makes stale entries unreachable; this frees their slots. *)
  Catalog.on_mutate t.catalog (fun name ->
      ignore (Cache.remove_prefix t.cache ~prefix:(name ^ "\x00")));
  t

let catalog t = t.catalog
let journal t = t.journal
let slo t = t.slo
let uptime_ns t = now () - t.start_ns

let pool_size t =
  match t.pool with Some p -> Gus_util.Pool.size p | None -> 1

let note_register t (entry : Catalog.entry) =
  match t.journal with
  | None -> ()
  | Some j ->
      Journal.record j
        (Journal.Register
           { id = Journal.next_id j;
             dataset = entry.Catalog.dataset;
             version = entry.Catalog.version;
             source = Catalog.source_json entry.Catalog.source })

let register t ~name ~source =
  let entry = Catalog.load t.catalog ~name ~source in
  note_register t entry;
  entry

let register_db t ~name ~source db =
  let entry = Catalog.register t.catalog ~name ~source db in
  note_register t entry;
  entry

let prepare t ?name ~dataset sql =
  let p = Prepared.prepare t.catalog ~dataset sql in
  let name =
    match name with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "q%d" t.next_handle in
        t.next_handle <- t.next_handle + 1;
        n
  in
  Hashtbl.replace t.prepared name p;
  (name, p)

let find_prepared t name = Hashtbl.find_opt t.prepared name

let prepared_names t =
  Hashtbl.fold (fun name p acc -> (name, p) :: acc) t.prepared []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let cache_key t p (ov : Prepared.overrides) =
  let entry = Catalog.find_exn t.catalog (Prepared.dataset p) in
  let rates =
    List.sort (fun (a, _) (b, _) -> compare a b) ov.Prepared.rates
    |> List.map (fun (rel, rate) ->
           Printf.sprintf "%s:%s" rel (Json.number_to_string rate))
    |> String.concat ","
  in
  Printf.sprintf "%s\x00%d\x00%s\x00seed=%d;exact=%b;rates=%s"
    entry.Catalog.dataset entry.Catalog.version (Prepared.sql p)
    ov.Prepared.seed ov.Prepared.exact rates

type outcome = {
  response : Runner.response;
  cached : bool;
  wall_ns : int;
}

let cacheable (ov : Prepared.overrides) = not ov.Prepared.explain

let slo_active (slo : Journal.slo) =
  slo.Journal.max_rel_ci <> None || slo.Journal.max_latency_ms <> None

let first_cell_stats (rs : Runner.response) =
  match rs.Runner.rs_result.Runner.cells with
  | c :: _ -> (c.Runner.value, c.Runner.stddev)
  | [] -> (Float.nan, Float.nan) (* GROUP BY: no whole-query estimate *)

(* Per-execution telemetry: relative-CI histogram, SLO breach counters +
   rate-limited log, and the journal event.  Runs on the driving thread
   only (the journal ring is not synchronized); when no journal, no SLO
   and no metrics are on, this is a three-field check and out. *)
let note_exec t ~handle ~(p : Prepared.t) ~(ov : Prepared.overrides)
    (o : outcome) =
  if t.journal <> None || slo_active t.slo || Gus_obs.Metrics.enabled ()
  then begin
    let rs = o.response in
    let estimate, stddev = first_cell_stats rs in
    let rel_ci = Journal.rel_ci_half_width ~estimate ~stddev in
    if Float.is_finite rel_ci then Gus_obs.Metrics.observe m_rel_ci rel_ci;
    let rel_breach =
      match t.slo.Journal.max_rel_ci with
      | Some m -> (not (Float.is_nan rel_ci)) && rel_ci > m
      | None -> false
    and lat_breach =
      match t.slo.Journal.max_latency_ms with
      | Some m -> float_of_int o.wall_ns > m *. 1e6
      | None -> false
    in
    let breach = rel_breach || lat_breach in
    if breach then begin
      Gus_obs.Metrics.incr m_breaches;
      if rel_breach then Gus_obs.Metrics.incr m_breach_rel_ci;
      if lat_breach then Gus_obs.Metrics.incr m_breach_latency;
      match t.on_breach with
      | None -> ()
      | Some log -> (
          match Journal.permit t.limiter ~now_ns:(now ()) with
          | None -> ()
          | Some suppressed ->
              log
                (Printf.sprintf
                   "SLO breach (%s): handle=%s dataset=%s seed=%d \
                    rel_ci=%.4g wall_ms=%.3f%s"
                   (if rel_breach && lat_breach then "ci+latency"
                    else if rel_breach then "ci"
                    else "latency")
                   handle (Prepared.dataset p) ov.Prepared.seed rel_ci
                   (float_of_int o.wall_ns /. 1e6)
                   (if suppressed > 0 then
                      Printf.sprintf " [%d suppressed]" suppressed
                    else "")))
    end;
    match t.journal with
    | None -> ()
    | Some j ->
        let entry = Catalog.find_exn t.catalog (Prepared.dataset p) in
        let variance =
          match rs.Runner.rs_report with
          | Some r -> r.Gus_estimator.Sbox.variance
          | None -> stddev *. stddev
        in
        let top =
          Option.map
            (fun (path, label, share) -> { Journal.path; label; share })
            (Runner.top_variance_share rs)
        in
        let rates =
          let db = entry.Catalog.db in
          let card rel =
            Gus_relational.Relation.cardinality
              (Gus_relational.Database.find db rel)
          in
          let plan = (Prepared.handle p).Runner.pr_plan in
          let plan =
            (* record the rates actually executed, not the prepared ones *)
            if ov.Prepared.rates = [] then plan
            else Prepared.override_rates ~card ov.Prepared.rates plan
          in
          Prepared.sampling_rates ~card plan
        in
        let sql = Prepared.sql p in
        Journal.record j
          (Journal.Exec
             { id = Journal.next_id j;
               dataset = entry.Catalog.dataset;
               version = entry.Catalog.version;
               sql;
               sql_hash = Journal.sql_hash sql;
               seed = ov.Prepared.seed;
               rates;
               explain = ov.Prepared.explain;
               exact = ov.Prepared.exact;
               cached = o.cached;
               estimate;
               variance;
               stddev;
               rel_ci;
               top;
               wall_ns = o.wall_ns;
               breach })
  end

let execute_prepared t ~label p ov =
  let t0 = now () in
  ignore (Prepared.refresh t.catalog p);
  let key = if cacheable ov then Some (cache_key t p ov) else None in
  let o =
    match Option.map (Cache.find t.cache) key with
    | Some (Some response) ->
        { response; cached = true; wall_ns = now () - t0 }
    | _ ->
        let response = Prepared.execute t.catalog p ov in
        Option.iter (fun k -> Cache.add t.cache k response) key;
        { response; cached = false; wall_ns = now () - t0 }
  in
  note_exec t ~handle:label ~p ~ov o;
  o

let execute t ~handle ov =
  match find_prepared t handle with
  | Some p -> execute_prepared t ~label:handle p ov
  | None -> raise (Unknown_handle handle)

let batch_prepared t items =
  (* Phase 1, driving thread: resolve, refresh, probe the cache — every
     handle mutation and cache touch happens here, in submission order. *)
  let staged =
    Array.map
      (fun (label, p, ov) ->
        match p with
        | None -> Error (Unknown_handle label)
        | Some p -> (
            try
              ignore (Prepared.refresh t.catalog p);
              match
                if cacheable ov then
                  let key = cache_key t p ov in
                  match Cache.find t.cache key with
                  | Some response -> `Hit response
                  | None -> `Run (Some key)
                else `Run None
              with
              | `Hit response -> Ok (`Hit (p, ov, response))
              | `Run key -> Ok (`Run (p, ov, key))
            with e -> Error e))
      items
  in
  (* Phase 2: fan the misses out; lanes only read engine state. *)
  let misses =
    Array.of_list
      (List.filter_map
         (function Ok (`Run job) -> Some job | _ -> None)
         (Array.to_list staged))
  in
  let results =
    Scheduler.map ?pool:t.pool
      (fun (p, ov, key) ->
        let t0 = now () in
        let response = Prepared.execute t.catalog p ov in
        (key, response, now () - t0))
      misses
  in
  (* Phase 3, driving thread again: fill the cache, journal each item,
     and assemble outcomes in submission order. *)
  let cursor = ref 0 in
  Array.mapi
    (fun i stage ->
      let handle = (fun (label, _, _) -> label) items.(i) in
      match stage with
      | Error e -> Error e
      | Ok (`Hit (p, ov, response)) ->
          let o = { response; cached = true; wall_ns = 0 } in
          note_exec t ~handle ~p ~ov o;
          Ok o
      | Ok (`Run (p, ov, _)) -> (
          let r = results.(!cursor) in
          incr cursor;
          match r with
          | Error e -> Error e
          | Ok (key, response, wall_ns) ->
              Option.iter (fun k -> Cache.add t.cache k response) key;
              let o = { response; cached = false; wall_ns } in
              note_exec t ~handle ~p ~ov o;
              Ok o))
    staged

let batch t items =
  batch_prepared t
    (Array.map (fun (handle, ov) -> (handle, find_prepared t handle, ov)) items)

let cache_length t = Cache.length t.cache
let cache_capacity t = Cache.capacity t.cache
