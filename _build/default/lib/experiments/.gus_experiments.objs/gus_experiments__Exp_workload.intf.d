lib/experiments/exp_workload.mli:
