(** Classical with-replacement estimator — the non-GUS baseline.

    For a single relation sampled WR with [n] draws out of [N], the
    textbook estimator of [Σ f] is [(N/n) Σ_{draws} f] with variance
    [N²·Var(f)/n] estimated from the sample.  The paper excludes WR from
    GUS (it is not a filter); we keep it to compare accuracy in the
    experiments and to show the algebra's generality is not vacuous. *)

type report = {
  estimate : float;
  variance : float;
  stddev : float;
  n_draws : int;
}

val estimate_sum :
  population:int -> f:Gus_relational.Expr.t -> Gus_relational.Relation.t -> report
(** [population] is the base-relation cardinality [N]; the relation holds
    the [n] WR draws. *)
