type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
  mutable failure : exn option;
}

type t = {
  size : int;
  workers : worker array;
  domains : unit Domain.t array;
  mutable live : bool;
}

let size t = t.size
let is_live t = t.live

let default_par_threshold = 4096

let worker_loop w =
  let running = ref true in
  while !running do
    Mutex.lock w.mutex;
    while w.job = None && not w.stop do
      Condition.wait w.cond w.mutex
    done;
    match w.job with
    | Some f ->
        Mutex.unlock w.mutex;
        (try f () with e -> w.failure <- Some e);
        Mutex.lock w.mutex;
        w.job <- None;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex
    | None ->
        Mutex.unlock w.mutex;
        running := false
  done

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.stop <- true;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex)
      t.workers;
    Array.iter Domain.join t.domains
  end

(* One process-wide registry instead of one at_exit closure per pool:
   forgotten pools never block process exit, and creating many short-lived
   pools does not grow the exit hook list. *)
let registry : t list ref = ref []
let registry_hooked = ref false

let register t =
  if not !registry_hooked then begin
    registry_hooked := true;
    at_exit (fun () -> List.iter shutdown !registry)
  end;
  registry := t :: !registry

let create ~size =
  let size = max 1 size in
  let workers =
    Array.init (size - 1) (fun _ ->
        { mutex = Mutex.create ();
          cond = Condition.create ();
          job = None;
          stop = false;
          failure = None })
  in
  let domains = Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers in
  let t = { size; workers; domains; live = true } in
  (* Blocked workers would keep the process from shutting down cleanly. *)
  if size > 1 then register t;
  t

let submit w f =
  Mutex.lock w.mutex;
  w.failure <- None;
  w.job <- Some f;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  while w.job <> None do
    Condition.wait w.cond w.mutex
  done;
  Mutex.unlock w.mutex

let m_jobs = Gus_obs.Metrics.counter "pool.jobs"
let m_lanes_used = Gus_obs.Metrics.counter "pool.lanes_used"
let m_lane_ns = Gus_obs.Metrics.histogram "pool.lane_us"

let m_imbalance =
  (* Slowest-lane / mean-lane wall time per fan-out, in tenths: 10 means
     perfectly balanced, 20 means the critical lane took twice the mean. *)
  Gus_obs.Metrics.histogram
    ~buckets:[| 10.; 11.; 12.; 15.; 20.; 30.; 50.; 100. |]
    "pool.imbalance_x10"

let chunks t ~lo ~hi =
  let total = hi - lo in
  if total <= 0 then [||]
  else begin
    let lanes = min t.size total in
    let per = total / lanes and rem = total mod lanes in
    (* Chunk k covers [start k, start (k+1)): the first [rem] chunks get
       one extra index. *)
    let start k = lo + (k * per) + min k rem in
    Array.init lanes (fun k -> (start k, start (k + 1)))
  end

let run_chunks t ~lo ~hi f =
  let total = hi - lo in
  if total > 0 then begin
    if not t.live then invalid_arg "Pool.run_chunks: pool is shut down";
    let parts = chunks t ~lo ~hi in
    let lanes = Array.length parts in
    if lanes <= 1 then f lo hi
    else begin
      (* Observability wrapper.  [observe] is decided once per fan-out so
         the common disabled path pays two flag loads and then runs the
         exact historical code; lane timing never touches the RNG or the
         chunk layout, so results are identical either way. *)
      let observe =
        Gus_obs.Metrics.enabled () || Gus_obs.Trace.enabled ()
      in
      let lane_ns = if observe then Array.make lanes 0 else [||] in
      let run k clo chi =
        if observe then begin
          let t0 = Gus_obs.Trace.now_ns () in
          Gus_obs.Trace.span "pool.lane"
            ~args:(fun () ->
              [ ("lane", string_of_int k);
                ("span_items", string_of_int (chi - clo)) ])
            (fun () -> f clo chi);
          lane_ns.(k) <- Gus_obs.Trace.now_ns () - t0
        end
        else f clo chi
      in
      for k = 1 to lanes - 1 do
        let clo, chi = parts.(k) in
        submit t.workers.(k - 1) (fun () -> run k clo chi)
      done;
      let caller_failure =
        let clo, chi = parts.(0) in
        try run 0 clo chi; None with e -> Some e
      in
      for k = 1 to lanes - 1 do
        await t.workers.(k - 1)
      done;
      if observe && Gus_obs.Metrics.enabled () then begin
        Gus_obs.Metrics.incr m_jobs;
        Gus_obs.Metrics.add m_lanes_used lanes;
        let sum = ref 0 and slowest = ref 0 in
        Array.iter
          (fun ns ->
            sum := !sum + ns;
            if ns > !slowest then slowest := ns;
            Gus_obs.Metrics.observe m_lane_ns (float_of_int ns /. 1e3))
          lane_ns;
        let mean = float_of_int !sum /. float_of_int lanes in
        if mean > 0. then
          Gus_obs.Metrics.observe m_imbalance
            (10. *. float_of_int !slowest /. mean)
      end;
      (match caller_failure with Some e -> raise e | None -> ());
      for k = 1 to lanes - 1 do
        match t.workers.(k - 1).failure with
        | Some e -> raise e
        | None -> ()
      done
    end
  end

let recommended_size () = max 1 (Domain.recommended_domain_count ())

let env_size () =
  match Sys.getenv_opt "GUSDB_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let size_override = ref None

let default_size () =
  match !size_override with
  | Some n -> n
  | None -> (
      match env_size () with Some n -> n | None -> recommended_size ())

let default_pool = ref None

let default () =
  match !default_pool with
  | Some t when t.live && t.size = default_size () -> t
  | prev ->
      (match prev with Some t -> shutdown t | None -> ());
      let t = create ~size:(default_size ()) in
      default_pool := Some t;
      t

let set_default_size n =
  if n < 1 then invalid_arg "Pool.set_default_size: size must be >= 1";
  size_override := Some n
