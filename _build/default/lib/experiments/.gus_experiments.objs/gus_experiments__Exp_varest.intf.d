lib/experiments/exp_varest.mli:
