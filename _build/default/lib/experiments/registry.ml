type experiment = {
  id : string;
  title : string;
  paper_artifact : string;
  run : unit -> unit;
  quick : unit -> unit;
}

let all =
  [ { id = "T1";
      title = "GUS parameters of known sampling methods";
      paper_artifact = "Figure 1";
      run = Exp_fig1.run;
      quick = Exp_fig1.run };
    { id = "T2";
      title = "Query 1 GUS derivation";
      paper_artifact = "Examples 1-3, Figure 2";
      run = Exp_query1.run;
      quick = Exp_query1.run };
    { id = "T3";
      title = "4-relation plan transformation";
      paper_artifact = "Figure 4";
      run = Exp_fig4.run;
      quick = Exp_fig4.run };
    { id = "T4";
      title = "Subsampling pipeline coefficients";
      paper_artifact = "Figure 5, Examples 5-6";
      run = Exp_fig5.run;
      quick = Exp_fig5.run };
    { id = "E1";
      title = "Accuracy vs sampling fraction";
      paper_artifact = "evaluation: accuracy analysis";
      run = (fun () -> Exp_accuracy.run ());
      quick = (fun () -> Exp_accuracy.run ~scale:0.3 ~trials:40 ()) };
    { id = "E2";
      title = "Confidence-interval coverage";
      paper_artifact = "evaluation: accuracy analysis";
      run = (fun () -> Exp_coverage.run ());
      quick = (fun () -> Exp_coverage.run ~scale:0.3 ~trials:60 ()) };
    { id = "E3";
      title = "Variance-estimator quality";
      paper_artifact = "evaluation: accuracy analysis";
      run = (fun () -> Exp_varest.run ());
      quick = (fun () -> Exp_varest.run ~scale:0.3 ~trials:40 ()) };
    { id = "E4";
      title = "Runtime of the analysis";
      paper_artifact = "evaluation: runtime analysis (Section 6.1 claim)";
      run = Exp_runtime.run;
      quick = Exp_runtime.run };
    { id = "E5";
      title = "Subsampled variance estimation";
      paper_artifact = "Section 7";
      run = (fun () -> Exp_subsample.run ());
      quick = (fun () -> Exp_subsample.run ~scale:1.0 ~trials:8 ~target:2000 ()) };
    { id = "E6";
      title = "Database-as-a-sample robustness";
      paper_artifact = "Section 8 application";
      run = (fun () -> Exp_robust.run ());
      quick = (fun () -> Exp_robust.run ~scale:0.2 ()) };
    { id = "E7";
      title = "Sampling-strategy comparison from one sample";
      paper_artifact = "Section 8 application";
      run = (fun () -> Exp_strategy.run ());
      quick = (fun () -> Exp_strategy.run ~scale:0.3 ~trials:40 ()) };
    { id = "E8";
      title = "Online aggregation via GUS (interval shrinkage)";
      paper_artifact = "Section 2 related work (ripple join / DBO), rebuilt";
      run = (fun () -> Exp_online.run ());
      quick = (fun () -> Exp_online.run ~scale:0.3 ()) };
    { id = "E9";
      title = "Intermediate-size estimation with CIs";
      paper_artifact = "Section 8 application";
      run = (fun () -> Exp_size.run ());
      quick = (fun () -> Exp_size.run ~scale:0.4 ()) };
    { id = "E10";
      title = "TPC-H-derived workload quality sweep";
      paper_artifact = "evaluation: accuracy across a query suite";
      run = (fun () -> Exp_workload.run ());
      quick = (fun () -> Exp_workload.run ~scale:0.3 ~trials:25 ()) };
    { id = "A1";
      title = "Ablation: Y-hat correction vs raw moments";
      paper_artifact = "Section 6.3 design choice";
      run = (fun () -> Exp_ablation.run_correction ());
      quick = (fun () -> Exp_ablation.run_correction ~scale:0.3 ~trials:50 ()) };
    { id = "A2";
      title = "Ablation: subsample target size";
      paper_artifact = "Section 7's 10k rule of thumb";
      run = (fun () -> Exp_ablation.run_target_sweep ());
      quick = (fun () -> Exp_ablation.run_target_sweep ~scale:1.0 ~trials:5 ()) } ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

let run_all ?(quick = false) () =
  List.iter (fun e -> if quick then e.quick () else e.run ()) all
