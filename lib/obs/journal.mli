(** Bounded structured event log for the serving engine (flight
    recorder).

    The Engine records one event per [register] and per
    [execute]/[batch] item; the ring holds the most recent [capacity]
    events (older ones are overwritten and counted in {!dropped}), and
    an optional sink channel receives every event as one NDJSON line at
    record time — the file format [gusdb replay] consumes.

    Events carry everything needed to re-execute the request
    bit-identically: dataset name + version, the SQL text, the
    seed/rates/explain/exact overrides, and the exact estimate /
    variance / stddev produced.  Floats are exported in shortest
    round-trip form, so parse-after-export recovers the same bits.

    Not thread-safe: record from the engine's driving thread only
    (batch items are journaled in the serial fill phase). *)

type top = { path : int list; label : string; share : float }
(** The plan node with the largest Theorem-1 variance share:
    root-relative child-index [path], display [label], and its share of
    total variance in [0, 1]. *)

type exec = {
  id : int;
  dataset : string;
  version : int;
  sql : string;
  sql_hash : int64;
  seed : int;
  rates : (string * float) list;  (** per-relation effective sampling rates *)
  explain : bool;
  exact : bool;
  cached : bool;
  estimate : float;
  variance : float;
  stddev : float;
  rel_ci : float;  (** relative 95% CI half-width, [inf] when estimate 0 *)
  top : top option;
  wall_ns : int;
  breach : bool;
}

type shed = {
  shed_id : int;
  shed_dataset : string;
  shed_sql_hash : int64;
  shed_overload : float;  (** overload factor that triggered shedding, > 1 *)
  shed_rates : (string * float) list;
      (** degraded per-relation rates the admission controller selected *)
}
(** An admission-control shed decision (paper Section 8 rate selection).
    Advisory provenance: the degraded rates {e also} ride in the
    following [Exec] event's [rates] field, which is what replay feeds
    back — replay skips [Shed] events (counted, never compared). *)

type event =
  | Register of { id : int; dataset : string; version : int; source : string }
      (** [source] is the original register request's source spec as
          JSON text, embedded verbatim in the NDJSON line — what replay
          needs to rebuild the dataset. *)
  | Exec of exec
  | Shed of shed

type t

val create : ?capacity:int -> ?sink:out_channel -> unit -> t
(** Default capacity 4096 events.  When [sink] is given every recorded
    event is also written (and flushed) as one NDJSON line. *)

val next_id : t -> int
(** Allocate the next event id (0, 1, 2, ...). *)

val record : t -> event -> unit
val capacity : t -> int

val length : t -> int
(** Events currently held (≤ capacity). *)

val dropped : t -> int
(** Events overwritten since creation. *)

val events : t -> event list
(** Oldest first. *)

val to_ndjson : event -> string
(** One JSON object, no trailing newline. *)

val export : t -> out_channel -> unit
(** Write the retained events as NDJSON, oldest first. *)

val sql_hash : string -> int64
(** FNV-1a 64-bit content fingerprint. *)

val hash_hex : int64 -> string
(** 16 lower-case hex digits, as exported in [sql_hash] fields. *)

(** {2 Accuracy SLOs} *)

type slo = {
  max_rel_ci : float option;
      (** breach when the relative CI half-width exceeds this *)
  max_latency_ms : float option;
      (** breach when wall-clock exceeds this (the [--slo-p99-ms]
          threshold: if more than 1% of requests breach it, the p99
          objective is missed) *)
}

val no_slo : slo

val rel_ci_half_width : estimate:float -> stddev:float -> float
(** [1.96 * stddev / |estimate|]; [0] when stddev is [0] (exact or
    degenerate), [inf] when the estimate is [0] with spread. *)

val breach : slo -> rel_ci:float -> wall_ns:int -> bool

(** {2 Rate-limited logging} *)

type limiter

val limiter : ?interval_ns:int -> unit -> limiter
(** Token for rate-limiting breach logs; default one permit per
    second. *)

val permit : limiter -> now_ns:int -> int option
(** [Some suppressed] when a log line is allowed now ([suppressed] is
    how many were swallowed since the last permit), [None] to stay
    quiet. *)
