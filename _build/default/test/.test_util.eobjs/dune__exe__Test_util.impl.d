test/test_util.ml: Alcotest Array Float Fun Gus_stats Gus_util Hashtbl Int64 List QCheck2 QCheck_alcotest String
