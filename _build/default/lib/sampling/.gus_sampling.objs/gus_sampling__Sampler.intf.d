lib/sampling/sampler.mli: Format Gus_relational Gus_util
