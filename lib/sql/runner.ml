open Gus_relational
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Interval = Gus_stats.Interval

type cell = {
  label : string;
  value : float;
  stddev : float;
  ci95_normal : Interval.t;
  ci95_chebyshev : Interval.t;
}

type group_row = {
  keys : string list;
  group_cells : cell list;
}

type result = {
  cells : cell list;
  groups : group_row list;
  n_sample_tuples : int;
  gus : Gus_core.Gus.t;
  plan : Splan.t;
}

let label_of item =
  match item.Ast.alias with Some a -> a | None -> Ast.agg_label item.Ast.agg

let one = Expr.float 1.0

let cell_of_report ~label ?quantile (estimate, stddev) =
  let safe_interval method_ =
    Interval.make ~method_ ~coverage:0.95 ~estimate ~stddev
  in
  let value =
    match quantile with
    | None -> estimate
    | Some q -> Interval.quantile_bound ~estimate ~stddev q
  in
  { label;
    value;
    stddev;
    ci95_normal = safe_interval Interval.Normal;
    ci95_chebyshev = safe_interval Interval.Chebyshev }

(* Besides the cell, return the Sbox report backing it (None for AVG,
   whose ratio report has no Theorem-1 decomposition) so callers can
   surface variance provenance without a second moments pass. *)
let eval_item_report ?skip_mask ~gus sample item =
  let label = label_of item in
  let rec go ?quantile agg =
    match agg with
    | Ast.Sum e ->
        let r = Sbox.of_relation ?skip_mask ~gus ~f:e sample in
        (cell_of_report ~label ?quantile (r.Sbox.estimate, r.Sbox.stddev), Some r)
    | Ast.Count_star ->
        let r = Sbox.of_relation ?skip_mask ~gus ~f:one sample in
        (cell_of_report ~label ?quantile (r.Sbox.estimate, r.Sbox.stddev), Some r)
    | Ast.Count e ->
        (* COUNT(e) counts non-null rows: e*0 + 1 is 1 when e is a number
           and Null (→ 0 under SUM) when e is Null. *)
        let indicator = Expr.(Bin (Add, Bin (Mul, e, Expr.float 0.0), Expr.float 1.0)) in
        let r = Sbox.of_relation ?skip_mask ~gus ~f:indicator sample in
        (cell_of_report ~label ?quantile (r.Sbox.estimate, r.Sbox.stddev), Some r)
    | Ast.Avg e ->
        let r = Sbox.avg ~gus ~f:e sample in
        ( cell_of_report ~label ?quantile
            (r.Sbox.ratio_estimate, r.Sbox.ratio_stddev),
          None )
    | Ast.Quantile (inner, q) -> go ~quantile:q inner
  in
  go item.Ast.agg

let eval_item ?skip_mask ~gus sample item =
  fst (eval_item_report ?skip_mask ~gus sample item)

(* Partition a relation into per-group sub-relations by rendered key
   values, preserving first-seen group order. *)
let partition_groups keys rel =
  let evals = List.map (Expr.bind rel.Relation.schema) keys in
  let groups : (string list, Relation.t) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  Relation.iter
    (fun tup ->
      let k = List.map (fun ev -> Value.to_display (ev tup)) evals in
      let sub =
        match Hashtbl.find_opt groups k with
        | Some r -> r
        | None ->
            let r =
              Relation.derived ~name:"group" rel.Relation.schema
                rel.Relation.lineage_schema
            in
            Hashtbl.add groups k r;
            order := k :: !order;
            r
      in
      Relation.append_tuple sub tup)
    rel;
  List.rev_map (fun k -> (k, Hashtbl.find groups k)) !order

(* ---- the materializing evaluation core --------------------------------- *)

(* Execute the plan and evaluate every SELECT item over the materialized
   sample.  [gus] is the plan's SOA analysis, computed by the caller
   (prepare-time artifact: it depends only on the plan and base
   cardinalities, never on tuple data). *)
let eval_query ?skip_mask ~gus ~seed db query plan =
  let rng = Gus_util.Rng.create seed in
  let sample = Splan.exec db rng plan in
  let cells, groups, report =
    match query.Ast.group_by with
    | [] ->
        let pairs =
          List.map (eval_item_report ?skip_mask ~gus sample) query.Ast.items
        in
        let report = match pairs with (_, r) :: _ -> r | [] -> None in
        (List.map fst pairs, [], report)
    | keys ->
        let per_group =
          List.map
            (fun (k, sub) ->
              { keys = k;
                group_cells =
                  List.map (eval_item ?skip_mask ~gus sub) query.Ast.items })
            (partition_groups keys sample)
        in
        ([], per_group, None)
  in
  ( { cells; groups; n_sample_tuples = Relation.cardinality sample; gus; plan },
    report )

(* ---- the streaming evaluation core ------------------------------------- *)

(* Innermost QUANTILE bound, mirroring [eval_item]'s unwrapping. *)
let rec item_quantile ?q = function
  | Ast.Quantile (inner, q) -> item_quantile ~q inner
  | _ -> q

let streamable_item item =
  let rec go = function
    | Ast.Sum _ | Ast.Count_star | Ast.Count _ -> true
    | Ast.Quantile (inner, _) -> go inner
    | Ast.Avg _ -> false
  in
  go item.Ast.agg

let rec agg_expr = function
  | Ast.Sum e -> e
  | Ast.Count_star -> one
  | Ast.Count e -> Expr.(Bin (Add, Bin (Mul, e, Expr.float 0.0), Expr.float 1.0))
  | Ast.Avg e -> e
  | Ast.Quantile (inner, _) -> agg_expr inner

(* Fold the plan's result tuples straight into the SBox via
   [Splan.fold_stream] (through {!Sbox.of_plan}), never materializing the
   sampled relation.  Only single-aggregate SUM/COUNT queries without
   GROUP BY qualify; [None] means "fall back to the materializing core".
   Same seed ⇒ bit-identical estimate / n_sample_tuples to [eval_query]
   (the moment sums — hence stddev — can differ in final bits from
   reduction order; see Sbox.of_plan). *)
let stream_result ?pool ?skip_mask ~gus ~seed db query plan =
  match query.Ast.items with
  | [ item ] when query.Ast.group_by = [] && streamable_item item ->
      let rng = Gus_util.Rng.create seed in
      let f = agg_expr item.Ast.agg in
      let r = Sbox.of_plan ?pool ?skip_mask ~gus ~f db rng plan in
      let cell =
        cell_of_report ~label:(label_of item)
          ?quantile:(item_quantile item.Ast.agg)
          (r.Sbox.estimate, r.Sbox.stddev)
      in
      Some
        ( { cells = [ cell ];
            groups = [];
            n_sample_tuples = r.Sbox.n_tuples;
            gus;
            plan },
          r )
  | _ -> None

(* ---- EXPLAIN ANALYZE ----------------------------------------------- *)

type node_annot = {
  an_path : int list;
  an_wall_ns : int;
  an_rows_in : int;
  an_rows_out : int;
  an_sample : (float * float) option;
      (* (a, b_pair) of the sampler's own GUS, Sample nodes only *)
  an_var_contrib : float option;
      (* (c_S/a^2)*y_S for the subtree's relation subset S *)
}

type explain = {
  ex_result : result;
  ex_nodes : node_annot list;
  ex_variance_raw : float option;
  ex_total_ns : int;
  ex_report : Sbox.report option;
}

(* Map a subtree's relation set into a subset mask over [gus.rels]. *)
let subtree_mask ~gus plan path =
  match Splan.subtree plan path with
  | None -> None
  | Some sub -> (
      try
        let rels = gus.Gus_core.Gus.rels in
        let mask = ref 0 in
        Array.iter
          (fun r ->
            let rec idx i =
              if i >= Array.length rels then raise Exit
              else if String.equal rels.(i) r then i
              else idx (i + 1)
            in
            mask := !mask lor (1 lsl idx 0))
          (Splan.lineage_schema sub);
        Some !mask
      with Exit | Gus_relational.Lineage.Overlap _ -> None)

let explain_of ~(analysis : Gus_analysis.Lint.analysis) ~seed db query plan =
  let gus = (Lazy.force analysis.Gus_analysis.Lint.gus) in
  let skip_mask = analysis.Gus_analysis.Lint.cost.Gus_analysis.Cost.skip_mask in
  let rng = Gus_util.Rng.create seed in
  let sample, profiles = Splan.exec_profiled db rng plan in
  let cells, groups =
    match query.Ast.group_by with
    | [] -> (List.map (eval_item ~skip_mask ~gus sample) query.Ast.items, [])
    | keys ->
        let per_group =
          List.map
            (fun (k, sub) ->
              { keys = k;
                group_cells =
                  List.map (eval_item ~skip_mask ~gus sub) query.Ast.items })
            (partition_groups keys sample)
        in
        ([], per_group)
  in
  let result =
    { cells; groups; n_sample_tuples = Relation.cardinality sample; gus; plan }
  in
  (* The sampler annotations come straight from the prepare-time analysis:
     the linter already ran the Figure-1 translation of every sampling
     node and recorded it per path, so EXPLAIN never re-lints. *)
  let sampler_gus path =
    List.assoc_opt path analysis.Gus_analysis.Lint.sampler_gus
  in
  (* Variance decomposition of the first aggregate: Theorem 1 says
     Var = sum_S (c_S/a^2) y_S - y_0; each sampling node is annotated with
     the term of its subtree's relation subset (the -y_0 belongs to the
     empty subset, which no Sample node owns). *)
  let report =
    match query.Ast.items with
    | [] -> None
    | item :: _ -> (
        try Some (Sbox.of_relation ~skip_mask ~gus ~f:(agg_expr item.Ast.agg) sample)
        with _ -> None)
  in
  let contrib_of =
    match report with
    | None -> fun _ -> None
    | Some r ->
        let c = Gus_core.Gus.c_coefficients gus in
        let a2 = gus.Gus_core.Gus.a *. gus.Gus_core.Gus.a in
        fun path ->
          Option.map
            (fun mask -> c.(mask) /. a2 *. r.Sbox.y_hat.(mask))
            (subtree_mask ~gus plan path)
  in
  let nodes =
    List.map
      (fun np ->
        let is_sample =
          match Splan.subtree plan np.Splan.np_path with
          | Some (Splan.Sample _) -> true
          | _ -> false
        in
        { an_path = np.Splan.np_path;
          an_wall_ns = np.Splan.np_wall_ns;
          an_rows_in = np.Splan.np_rows_in;
          an_rows_out = np.Splan.np_rows_out;
          an_sample =
            (if is_sample then
               Option.map
                 (fun g ->
                   (g.Gus_core.Symalg.a, Gus_core.Symalg.b_get g 0))
                 (sampler_gus np.Splan.np_path)
             else None);
          an_var_contrib =
            (if is_sample then contrib_of np.Splan.np_path else None) })
      profiles
  in
  let total_ns =
    match List.find_opt (fun np -> np.Splan.np_path = []) profiles with
    | Some np -> np.Splan.np_wall_ns
    | None -> 0
  in
  { ex_result = result;
    ex_nodes = nodes;
    ex_variance_raw = Option.map (fun r -> r.Sbox.variance_raw) report;
    ex_total_ns = total_ns;
    ex_report = report }

let exact_values query exact_rel =
  let eval_f f =
    let ev = Expr.bind_float exact_rel.Relation.schema f in
    Relation.fold (fun acc tup -> acc +. ev tup) 0.0 exact_rel
  in
  let rec value = function
    | Ast.Sum e -> eval_f e
    | Ast.Count_star -> float_of_int (Relation.cardinality exact_rel)
    | Ast.Count e ->
        eval_f Expr.(Bin (Add, Bin (Mul, e, Expr.float 0.0), Expr.float 1.0))
    | Ast.Avg e ->
        let n = Relation.cardinality exact_rel in
        if n = 0 then 0.0 else eval_f e /. float_of_int n
    | Ast.Quantile (inner, _) -> value inner
  in
  List.map (fun item -> (label_of item, value item.Ast.agg)) query.Ast.items

let run_exact db sql =
  let query = Parser.parse sql in
  let { Planner.plan; _ } = Planner.compile db query in
  let exact_rel = Splan.exec_exact db plan in
  exact_values query exact_rel

let run_exact_groups db sql =
  let query = Parser.parse sql in
  let { Planner.plan; _ } = Planner.compile db query in
  let exact_rel = Splan.exec_exact db plan in
  List.map
    (fun (k, sub) -> (k, exact_values query sub))
    (partition_groups query.Ast.group_by exact_rel)

(* ---- the typed request/response API ------------------------------------ *)

type params = {
  seed : int;
  explain : bool;
  exact : bool;
  streaming : bool;
  pool : Gus_util.Pool.t option;
}

let default_params =
  { seed = 42; explain = false; exact = false; streaming = false; pool = None }

type request = {
  sql : string;
  lint_config : Gus_analysis.Lint.config;
  params : params;
}

let request ?(seed = 42) ?(explain = false) ?(exact = false)
    ?(streaming = false) ?pool
    ?(lint_config = Gus_analysis.Lint.default_config) sql =
  { sql; lint_config; params = { seed; explain; exact; streaming; pool } }

type prepared = {
  pr_sql : string;
  pr_query : Ast.query;
  pr_plan : Splan.t;
  pr_lint : Gus_analysis.Lint.report;
}

let prepare ?lint_config ?engine db sql =
  let query = Parser.parse sql in
  (* Self-joins are let through the planner so the linter reports them as
     GUS001 alongside everything else, instead of a planner fast-fail. *)
  let { Planner.plan; _ } = Planner.compile ~self_join_check:false db query in
  let report = Gus_analysis.Lint.run_db ?config:lint_config ?engine db plan in
  { pr_sql = sql; pr_query = query; pr_plan = plan; pr_lint = report }

let prepared_errors p = Gus_analysis.Lint.errors p.pr_lint

let prepared_gus p =
  Option.map (fun a -> (Lazy.force a.Gus_analysis.Lint.gus)) p.pr_lint.Gus_analysis.Lint.analysis

type response = {
  rs_result : result;
  rs_explain : explain option;
  rs_lint : Gus_analysis.Lint.report;
  rs_exact : (string * float) list;
  rs_exact_groups : (string list * (string * float) list) list;
  rs_streamed : bool;
  rs_report : Sbox.report option;
}

let execute db (p : prepared) (params : params) =
  let query = p.pr_query and plan = p.pr_plan in
  (* Reject before executing: a plan outside the GUS theory fails with
     every diagnostic code at once, before any sampling work runs.  All
     static facts (GUS, per-sampler translations, skip-mask) come from the
     prepare-time analysis — execution never re-lints. *)
  let analysis =
    match p.pr_lint.Gus_analysis.Lint.analysis with
    | Some a -> a
    | None -> raise (Rewrite.Unsupported (Rewrite.render_errors (prepared_errors p)))
  in
  let gus = (Lazy.force analysis.Gus_analysis.Lint.gus) in
  let skip_mask = analysis.Gus_analysis.Lint.cost.Gus_analysis.Cost.skip_mask in
  let ex, result, report, streamed =
    if params.explain then
      let ex = explain_of ~analysis ~seed:params.seed db query plan in
      (Some ex, ex.ex_result, ex.ex_report, false)
    else
      match
        (if params.streaming then
           stream_result ?pool:params.pool ~skip_mask ~gus ~seed:params.seed db
             query plan
         else None)
      with
      | Some (r, rep) -> (None, r, Some rep, true)
      | None ->
          let r, rep = eval_query ~skip_mask ~gus ~seed:params.seed db query plan in
          (None, r, rep, false)
  in
  let exact_cells, exact_groups =
    if not params.exact then ([], [])
    else
      let exact_rel = Splan.exec_exact db plan in
      match query.Ast.group_by with
      | [] -> (exact_values query exact_rel, [])
      | keys ->
          ( [],
            List.map
              (fun (k, sub) -> (k, exact_values query sub))
              (partition_groups keys exact_rel) )
  in
  { rs_result = result;
    rs_explain = ex;
    rs_lint = p.pr_lint;
    rs_exact = exact_cells;
    rs_exact_groups = exact_groups;
    rs_streamed = streamed;
    rs_report = report }

(* The plan node with the largest Theorem-1 variance share for this
   response's first aggregate: walk every Sample node, map its subtree's
   relation set into a coefficient-table mask (as --explain-analyze
   does) and take the largest [(c_S/a²)·ŷ_S] as a fraction of the raw
   variance.  Best-effort: [None] when no report was captured (AVG,
   GROUP BY), when the report's GUS is a live-relation view whose mask
   space doesn't match the full coefficient table (wide symbolic runs),
   or when the plan is too wide to densify cheaply. *)
let top_variance_share (rs : response) =
  match rs.rs_report with
  | None -> None
  | Some r -> (
      let gus = r.Sbox.gus in
      let plan = rs.rs_result.plan in
      let nrels = Array.length gus.Gus_core.Gus.rels in
      if nrels = 0 || nrels > 16 then None
      else
        try
          let c = Gus_core.Gus.c_coefficients gus in
          if Array.length r.Sbox.y_hat <> Array.length c then None
          else begin
            let a2 = gus.Gus_core.Gus.a *. gus.Gus_core.Gus.a in
            let best = ref None in
            let rec walk path node =
              (match node with
              | Splan.Sample _ -> (
                  match subtree_mask ~gus plan path with
                  | Some mask ->
                      let contrib = c.(mask) /. a2 *. r.Sbox.y_hat.(mask) in
                      let better =
                        match !best with
                        | Some (_, _, b) -> contrib > b
                        | None -> true
                      in
                      if better then
                        best := Some (path, Splan.node_label node, contrib)
                  | None -> ())
              | _ -> ());
              List.iteri
                (fun i child -> walk (path @ [ i ]) child)
                (Splan.children node)
            in
            walk [] plan;
            match !best with
            | None -> None
            | Some (path, label, contrib) ->
                let total = r.Sbox.variance_raw in
                let share =
                  if total > 0. && Float.is_finite total then contrib /. total
                  else 0.
                in
                Some (path, label, share)
          end
        with _ -> None)

let run_request db (rq : request) =
  execute db (prepare ~lint_config:rq.lint_config db rq.sql) rq.params

(* ---- deprecated thin wrappers ------------------------------------------ *)

let lint ?config ?engine db sql =
  let p = prepare ?lint_config:config ?engine db sql in
  (p.pr_plan, p.pr_lint)

let run ?(seed = 42) db sql =
  (run_request db (request ~seed sql)).rs_result

let run_explained ?(seed = 42) db sql =
  match (run_request db (request ~seed ~explain:true sql)).rs_explain with
  | Some ex -> ex
  | None -> assert false (* explain:true always populates rs_explain *)

let pp_cell ppf c =
  Format.fprintf ppf
    "%s = %.6g (sd %.4g)@,  95%% normal    %a@,  95%% chebyshev %a@," c.label
    c.value c.stddev Interval.pp c.ci95_normal Interval.pp c.ci95_chebyshev

let pp_result ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "sample tuples: %d@," r.n_sample_tuples;
  List.iter (pp_cell ppf) r.cells;
  List.iter
    (fun g ->
      Format.fprintf ppf "group [%s]:@," (String.concat ", " g.keys);
      List.iter (pp_cell ppf) g.group_cells)
    r.groups;
  Format.fprintf ppf "@]"

let dur_string ns =
  if ns >= 100_000_000 then Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)
  else if ns >= 100_000 then Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)

let pp_explain ppf ex =
  let annot path _ =
    match List.find_opt (fun n -> n.an_path = path) ex.ex_nodes with
    | None -> ""
    | Some n ->
        let buf = Buffer.create 64 in
        Buffer.add_string buf
          (Printf.sprintf "  [wall %s, in %d, out %d" (dur_string n.an_wall_ns)
             n.an_rows_in n.an_rows_out);
        (match n.an_sample with
        | Some (a, b0) ->
            Buffer.add_string buf (Printf.sprintf ", a=%.6g, b0=%.6g" a b0)
        | None -> ());
        (match n.an_var_contrib with
        | Some v -> Buffer.add_string buf (Printf.sprintf ", var_share=%.4g" v)
        | None -> ());
        Buffer.add_char buf ']';
        Buffer.contents buf
  in
  Format.fprintf ppf "@[<v>";
  Gus_obs.Planfmt.pp ~label:Splan.node_label ~children:Splan.children ~annot
    ppf ex.ex_result.plan;
  Format.fprintf ppf "total wall: %s@," (dur_string ex.ex_total_ns);
  (match ex.ex_variance_raw with
  | Some v ->
      Format.fprintf ppf "estimator variance (first aggregate): %.6g@," v
  | None -> ());
  pp_result ppf ex.ex_result;
  Format.fprintf ppf "@]"
