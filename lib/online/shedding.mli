(** Load shedding with accuracy control (paper Section 8, fourth
    application).

    A stream processor that cannot keep up must drop tuples.  Dropping via
    per-stream Bernoulli filters is a GUS, so Theorem 1 prices any choice
    of keep rates — and the Ŷ moments estimated from the {e previous}
    window let the shedder pick, for the next window, the rate split that
    minimizes the estimate's variance under the throughput budget
    [Σ_i N_i·r_i ≤ capacity].

    Rates are held constant within a window (keeping each window a bona
    fide GUS plan) and re-optimized between windows. *)

type rates = (string * float) list

val optimize_rates :
  gus_of:(rates -> Gus_core.Gus.t) ->
  y:float array ->
  arrivals:(string * int) list ->
  capacity:int ->
  ?grid:int ->
  unit ->
  rates * float
(** Minimize [Gus.variance (gus_of rates) ~y] subject to
    [Σ N_i·r_i ≤ capacity], by grid search over the budget surface
    ([grid] points per free dimension, default 40).  Supports 1–3 streams
    (exhaustive); raises [Invalid_argument] beyond that or when capacity
    is non-positive.  Returns the winning rates and their predicted
    variance.  When the capacity exceeds the total arrivals, all rates
    are 1 and the variance is 0. *)

val proportional_rates : arrivals:(string * int) list -> capacity:int -> rates
(** The naive baseline: one shared rate [capacity / Σ N_i] for every
    stream (clamped to 1). *)

val gus_of_rates : string list -> rates -> Gus_core.Gus.t
(** The per-stream Bernoulli-shedding design over the relations of
    [order] (which fixes the lineage dimension order): relation [r]
    gets [Bernoulli (List.assoc r rates)], relations absent from
    [rates] get rate 1 (kept deterministically).  This is the
    [gus_of] both {!simulate} and the serving admission controller
    pass to {!optimize_rates}. *)

type window_report = {
  window : int;  (** 0-based *)
  arrivals : (string * int) list;
  kept : (string * int) list;
  rates : rates;
  report : Gus_estimator.Sbox.report;
  interval : Gus_stats.Interval.t;  (** 95% normal, for the window total *)
}

val simulate :
  ?seed:int ->
  Gus_relational.Database.t ->
  plan:Gus_core.Splan.t ->
  f:Gus_relational.Expr.t ->
  windows:int ->
  capacity:int ->
  window_report list
(** Slice every base relation of the (sample-free) [plan] into [windows]
    contiguous arrival chunks and process them window by window: shed each
    stream with a lineage-keyed Bernoulli at the current rates, estimate
    the window's aggregate with a confidence interval, then re-optimize
    the rates for the next window from this window's Ŷ moments.  The
    first window uses {!proportional_rates}. *)

val window_truth :
  Gus_relational.Database.t ->
  plan:Gus_core.Splan.t ->
  f:Gus_relational.Expr.t ->
  windows:int ->
  float list
(** Exact per-window aggregates (for evaluation). *)
