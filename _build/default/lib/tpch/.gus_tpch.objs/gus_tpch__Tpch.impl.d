lib/tpch/tpch.ml: Array Database Float Gus_relational Gus_util Relation Schema Value
