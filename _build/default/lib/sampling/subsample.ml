module Hashing = Gus_util.Hashing
open Gus_relational

type dim = { relation : string; seed : int; p : float }

let apply dims rel =
  List.iter
    (fun d ->
      if not (d.p >= 0.0 && d.p <= 1.0) then
        invalid_arg (Printf.sprintf "Subsample: rate %g not in [0,1]" d.p))
    dims;
  let schema = rel.Relation.lineage_schema in
  let find name =
    match List.filter (fun d -> String.equal d.relation name) dims with
    | [ d ] -> d
    | [] -> invalid_arg (Printf.sprintf "Subsample: no dimension for relation %s" name)
    | _ -> invalid_arg (Printf.sprintf "Subsample: duplicate dimension for %s" name)
  in
  let slot_dims = Array.map find schema in
  let out =
    Relation.derived
      ~name:(Printf.sprintf "subsample(%s)" rel.Relation.name)
      rel.Relation.schema schema
  in
  Relation.iter
    (fun tup ->
      let keep = ref true in
      Array.iteri
        (fun i d ->
          if !keep && Hashing.prf_float ~seed:d.seed tup.Tuple.lineage.(i) >= d.p
          then keep := false)
        slot_dims;
      if !keep then Relation.append_tuple out tup)
    rel;
  out

let plan_rates ~target ~current ~ndims =
  if ndims <= 0 then invalid_arg "Subsample.plan_rates: ndims <= 0";
  if current <= 0 || target >= current then 1.0
  else begin
    let ratio = float_of_int target /. float_of_int current in
    let r = Float.pow ratio (1.0 /. float_of_int ndims) in
    Float.max 1e-9 (Float.min 1.0 r)
  end
