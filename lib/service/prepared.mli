(** Reusable prepared-query handles.

    {!prepare} runs parse → plan → lint {e exactly once} per SQL text
    (via {!Gus_sql.Runner.prepare}) against a catalog dataset and pins
    the dataset version it saw.  {!execute} then runs the handle any
    number of times with per-call {!overrides}; when the catalog entry
    has been re-registered since, the handle transparently re-prepares
    against the new snapshot first (counted in
    [service.repreparations]).

    Execution goes through the typed {!Gus_sql.Runner.execute} with
    [streaming = true]: single-aggregate, non-GROUP-BY queries fold
    straight into the SBox via [Splan.fold_stream] (PR 3) without
    materializing the sample — bit-identical estimates and tuple counts
    to the materializing path, no pool is threaded into execution, so
    results never depend on the server's lane count. *)

type t

val prepare :
  ?lint_config:Gus_analysis.Lint.config ->
  Catalog.t ->
  dataset:string ->
  string ->
  t
(** Raises {!Catalog.Unknown_dataset}, or the parse/plan errors of
    {!Gus_sql.Runner.prepare}.  Lint findings (including errors) do not
    raise here — they are reported on the handle and only fail at
    {!execute} time. *)

val dataset : t -> string
val sql : t -> string
val version : t -> int
(** Catalog version the current plan was prepared against. *)

val handle : t -> Gus_sql.Runner.prepared
(** The underlying parse/plan/lint artifact (current as of the last
    {!prepare}/{!execute}). *)

type overrides = {
  seed : int;
  rates : (string * float) list;
      (** per-relation sampling-rate overrides, applied to the [Sample]
          node over each named base relation: Bernoulli / hash-Bernoulli /
          block keep-probability is replaced outright; WOR/WR sizes are
          set to [rate × base cardinality].  A rate for a relation the
          plan does not sample is an [Invalid_argument]. *)
  explain : bool;
  exact : bool;
}

val default_overrides : overrides
(** [{ seed = 42; rates = []; explain = false; exact = false }]. *)

val refresh : Catalog.t -> t -> Catalog.entry
(** Re-prepare against the current snapshot if the catalog entry was
    re-registered since; otherwise a no-op returning the entry.  This is
    the only mutation on a handle — the engine calls it on the driving
    thread before fanning a batch out, so pool lanes only ever read.
    Raises {!Catalog.Unknown_dataset} if the dataset was dropped. *)

val execute : Catalog.t -> t -> overrides -> Gus_sql.Runner.response
(** Raises {!Catalog.Unknown_dataset} if the dataset was dropped,
    [Rewrite.Unsupported] when the (possibly rate-overridden) plan lints
    with errors, [Invalid_argument] on bad rate overrides.  Deterministic
    in [(dataset version, sql, overrides)]. *)

val override_rates :
  card:(string -> int) ->
  (string * float) list ->
  Gus_core.Splan.t ->
  Gus_core.Splan.t
(** The plan rewrite behind [overrides.rates]; exposed for tests. *)

val sampling_rates :
  card:(string -> int) -> Gus_core.Splan.t -> (string * float) list
(** Effective first-order inclusion rate per sampled base relation,
    sorted by name: Bernoulli / hash-Bernoulli / block report their keep
    probability, WOR/WR report [size / base cardinality], and stacked
    samplers over one relation multiply (a-values compose, Prop. 4).
    Telemetry provenance for the serving journal — advisory, not a
    replay input. *)
