lib/stats/normal.ml: Array Float Printf
