(** Column layout of a relation: ordered, uniquely named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t

exception Unknown_column of string

val make : column list -> t
(** Raises [Invalid_argument] on duplicate column names. *)

val columns : t -> column list
val arity : t -> int
val column_name : t -> int -> string
val column_ty : t -> int -> Value.ty
val index_of : t -> string -> int
(** Raises {!Unknown_column}. *)

val find_index : t -> string -> int option
val mem : t -> string -> bool

val concat : t -> t -> t
(** Join output schema.  Raises [Invalid_argument] when names collide;
    callers qualify names (e.g. ["l_orderkey"]) so collisions indicate a
    real user error. *)

val project : t -> string list -> t
val check_tuple : t -> Value.t array -> unit
(** Arity and per-column type conformance; raises [Invalid_argument] or
    [Value.Type_error]. *)

val pp : Format.formatter -> t -> unit
