examples/progressive.ml: Expr Gus_core Gus_estimator Gus_online Gus_relational Gus_stats Gus_tpch List Printf
