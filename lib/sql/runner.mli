(** End-to-end execution of dialect queries: parse → plan → sample →
    SBox → answers with accuracy information. *)

type cell = {
  label : string;
  value : float;  (** the estimate (or quantile bound for QUANTILE items) *)
  stddev : float;
  ci95_normal : Gus_stats.Interval.t;
  ci95_chebyshev : Gus_stats.Interval.t;
}

type group_row = {
  keys : string list;  (** rendered grouping-key values *)
  group_cells : cell list;
}

type result = {
  cells : cell list;  (** whole-query aggregates (empty under GROUP BY) *)
  groups : group_row list;
      (** one row per group witnessed in the sample.  Per-group analysis
          is sound: group membership is a selection on tuple content,
          which commutes with the GUS operator (Prop. 5).  Groups whose
          every contributing tuple was dropped by sampling are absent. *)
  n_sample_tuples : int;
  gus : Gus_core.Gus.t;
  plan : Gus_core.Splan.t;
}

val lint :
  ?config:Gus_analysis.Lint.config ->
  Gus_relational.Database.t ->
  string ->
  Gus_core.Splan.t * Gus_analysis.Lint.report
(** Parse and plan the query (allowing self-joins through so they can be
    reported), then run the static SOA-soundness linter over the plan —
    without executing it.  Raises [Parser.Error] / [Planner.Error] on
    malformed input; never executes the plan or touches tuple data. *)

val run : ?seed:int -> Gus_relational.Database.t -> string -> result
(** Raises [Parser.Error] / [Planner.Error] / [Rewrite.Unsupported] on bad
    input.  The SOA analysis runs {e before} execution, so an unsupported
    plan is rejected with every [GUSxxx] diagnostic at once and no sampling
    work is wasted. *)

val run_exact : Gus_relational.Database.t -> string -> (string * float) list
(** Ground truth for each SELECT item, ignoring all TABLESAMPLE clauses
    (QUANTILE items report the exact aggregate).  Not defined for GROUP BY
    queries — use {!run_exact_groups}. *)

val run_exact_groups : Gus_relational.Database.t -> string -> (string list * (string * float) list) list
(** Ground truth per group for a GROUP BY query, keyed like
    {!group_row.keys}. *)

val pp_result : Format.formatter -> result -> unit

(** {1 EXPLAIN ANALYZE} *)

type node_annot = {
  an_path : int list;  (** root-to-node child indices *)
  an_wall_ns : int;  (** wall time, inclusive of children *)
  an_rows_in : int;
  an_rows_out : int;
  an_sample : (float * float) option;
      (** Sample nodes: the sampler's own [(a, b_∅)] — its first-order
          inclusion probability and distinct-pair probability *)
  an_var_contrib : float option;
      (** Sample nodes: Theorem-1 variance term [(c_S/a²)·ŷ_S] of the
          subtree's relation subset [S], for the first aggregate *)
}

type explain = {
  ex_result : result;
  ex_nodes : node_annot list;  (** one per plan node, post-order *)
  ex_variance_raw : float option;
      (** first aggregate's estimator variance (unclamped) *)
  ex_total_ns : int;
}

val run_explained : ?seed:int -> Gus_relational.Database.t -> string -> explain
(** {!run} under {!Gus_core.Splan.exec_profiled}: same parse → analyze →
    execute → estimate pipeline, same sample for the same seed, plus
    per-node wall times, row counts, sampling rates and variance
    contributions for [--explain-analyze]. *)

val pp_explain : Format.formatter -> explain -> unit
(** The plan tree annotated per node ([wall, in, out], plus [a], [b0] and
    [var_share] on sampling nodes), total wall time, the first aggregate's
    variance, then the ordinary {!pp_result} block. *)
