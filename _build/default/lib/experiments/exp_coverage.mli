(** E2 — confidence-interval coverage: across plan shapes (single table,
    2-way join, 3-way join; Bernoulli, WOR, block sampling; plus the
    non-GUS WR baseline), the fraction of trials whose 95% interval
    contains the truth.  The paper's claim: normal intervals sit near the
    nominal level, Chebyshev intervals are conservative (≈ 1.0), for
    {e every} GUS plan — while a baseline that analyzes the result tuples
    as an independent sample (ignoring the correlation a join induces,
    which is exactly what GUS's cross terms capture) undercovers badly. *)

val run : ?scale:float -> ?trials:int -> unit -> unit
