(** E9 — intermediate-result size estimation (Section 8): predicted
    cardinality ± CI of join intermediates from small Bernoulli samples,
    vs the true sizes, across selectivities.  The paper's pitch: the CI
    tells the optimizer when the prediction is too noisy to act on. *)

val run : ?scale:float -> unit -> unit
