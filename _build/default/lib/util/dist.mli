(** Random variates for workload generation. *)

val uniform_int : Rng.t -> int -> int -> int
(** [uniform_int rng lo hi] is uniform on [lo, hi] inclusive. *)

val exponential : Rng.t -> float -> float
(** [exponential rng lambda] with rate [lambda > 0]. *)

val gaussian : Rng.t -> mu:float -> sigma:float -> float
(** Box–Muller. *)

type zipf
(** Precomputed Zipf(s, n) sampler over ranks [1..n]. *)

val zipf_create : n:int -> s:float -> zipf
val zipf_draw : zipf -> Rng.t -> int
(** Rank in [1..n]; rank 1 is the most frequent.  Inverse-CDF by binary
    search over the precomputed cumulative weights: O(log n) per draw. *)

val pareto : Rng.t -> scale:float -> shape:float -> float
