test/test_sampling.ml: Alcotest Array Float Gus_relational Gus_sampling Gus_util Hashtbl List Ops Option Relation Schema Tuple Value
