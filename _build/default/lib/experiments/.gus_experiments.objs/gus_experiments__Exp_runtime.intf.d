lib/experiments/exp_runtime.mli: Gus_core
