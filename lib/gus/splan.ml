open Gus_relational
module Sampler = Gus_sampling.Sampler

type t =
  | Scan of string
  | Select of Expr.t * t
  | Project of (string * Expr.t) list * t
  | Equi_join of { left : t; right : t; left_key : Expr.t; right_key : Expr.t }
  | Theta_join of Expr.t * t * t
  | Cross of t * t
  | Distinct of t
  | Sample of Sampler.t * t
  | Union_samples of t * t

exception Union_lineage_mismatch of { left : string list; right : string list }

let scan name = Scan name
let select pred q = Select (pred, q)

let equi_join left right ~on:(lk, rk) =
  Equi_join { left; right; left_key = Expr.col lk; right_key = Expr.col rk }

let sample s q = Sample (s, q)

let rec lineage_schema = function
  | Scan name -> Lineage.schema_of name
  | Select (_, q) | Project (_, q) | Sample (_, q) | Distinct q ->
      lineage_schema q
  | Equi_join { left; right; _ } ->
      Lineage.schema_concat (lineage_schema left) (lineage_schema right)
  | Theta_join (_, l, r) | Cross (l, r) ->
      Lineage.schema_concat (lineage_schema l) (lineage_schema r)
  | Union_samples (l, r) ->
      let sl = lineage_schema l and sr = lineage_schema r in
      if not (Lineage.schema_equal sl sr) then
        raise
          (Union_lineage_mismatch
             { left = Array.to_list sl; right = Array.to_list sr });
      sl

let rec strip_samples = function
  | Scan name -> Scan name
  | Select (p, q) -> Select (p, strip_samples q)
  | Project (fields, q) -> Project (fields, strip_samples q)
  | Equi_join { left; right; left_key; right_key } ->
      Equi_join
        { left = strip_samples left;
          right = strip_samples right;
          left_key;
          right_key }
  | Theta_join (p, l, r) -> Theta_join (p, strip_samples l, strip_samples r)
  | Cross (l, r) -> Cross (strip_samples l, strip_samples r)
  | Distinct q -> Distinct (strip_samples q)
  | Sample (_, q) -> strip_samples q
  | Union_samples (l, _) -> strip_samples l

let rec equal p q =
  match (p, q) with
  | Scan a, Scan b -> String.equal a b
  | Select (e1, q1), Select (e2, q2) -> e1 = e2 && equal q1 q2
  | Project (f1, q1), Project (f2, q2) -> f1 = f2 && equal q1 q2
  | Equi_join j1, Equi_join j2 ->
      j1.left_key = j2.left_key && j1.right_key = j2.right_key
      && equal j1.left j2.left && equal j1.right j2.right
  | Theta_join (e1, l1, r1), Theta_join (e2, l2, r2) ->
      e1 = e2 && equal l1 l2 && equal r1 r2
  | Cross (l1, r1), Cross (l2, r2) -> equal l1 l2 && equal r1 r2
  | Sample (s1, q1), Sample (s2, q2) -> s1 = s2 && equal q1 q2
  | Distinct q1, Distinct q2 -> equal q1 q2
  | Union_samples (l1, r1), Union_samples (l2, r2) -> equal l1 l2 && equal r1 r2
  | ( ( Scan _ | Select _ | Project _ | Equi_join _ | Theta_join _ | Cross _
      | Distinct _ | Sample _ | Union_samples _ ),
      _ ) ->
      false

let rec exec db rng = function
  | Scan name -> Database.find db name
  | Select (pred, q) -> Ops.select pred (exec db rng q)
  | Project (fields, q) -> Ops.project fields (exec db rng q)
  | Equi_join { left; right; left_key; right_key } ->
      Ops.equi_join ~left_key ~right_key (exec db rng left) (exec db rng right)
  | Theta_join (pred, l, r) -> Ops.theta_join pred (exec db rng l) (exec db rng r)
  | Cross (l, r) -> Ops.cross (exec db rng l) (exec db rng r)
  | Distinct q -> Ops.distinct (exec db rng q)
  | Sample (s, q) -> Sampler.apply s rng (exec db rng q)
  | Union_samples (l, r) -> Ops.union_lineage (exec db rng l) (exec db rng r)

let exec_exact db q =
  (* No sampling remains, so the RNG is never consulted. *)
  exec db (Gus_util.Rng.create 0) (strip_samples q)

let rec pp ppf = function
  | Scan name -> Format.pp_print_string ppf name
  | Select (e, q) -> Format.fprintf ppf "select[%a](%a)" Expr.pp e pp q
  | Project (fields, q) ->
      Format.fprintf ppf "project[%s](%a)"
        (String.concat "," (List.map fst fields))
        pp q
  | Equi_join { left; right; left_key; right_key } ->
      Format.fprintf ppf "join[%a=%a](%a, %a)" Expr.pp left_key Expr.pp right_key
        pp left pp right
  | Theta_join (e, l, r) ->
      Format.fprintf ppf "theta_join[%a](%a, %a)" Expr.pp e pp l pp r
  | Cross (l, r) -> Format.fprintf ppf "cross(%a, %a)" pp l pp r
  | Distinct q -> Format.fprintf ppf "distinct(%a)" pp q
  | Sample (s, q) -> Format.fprintf ppf "%s(%a)" (Sampler.to_string s) pp q
  | Union_samples (l, r) -> Format.fprintf ppf "union(%a, %a)" pp l pp r

let pp_tree ppf plan =
  let rec go indent node =
    let pad = String.make indent ' ' in
    let line fmt = Format.fprintf ppf ("%s" ^^ fmt ^^ "@\n") pad in
    match node with
    | Scan name -> line "%s" name
    | Select (e, q) ->
        line "select %a" Expr.pp e;
        go (indent + 2) q
    | Project (fields, q) ->
        line "project %s" (String.concat "," (List.map fst fields));
        go (indent + 2) q
    | Equi_join { left; right; left_key; right_key } ->
        line "join %a = %a" Expr.pp left_key Expr.pp right_key;
        go (indent + 2) left;
        go (indent + 2) right
    | Theta_join (e, l, r) ->
        line "theta-join %a" Expr.pp e;
        go (indent + 2) l;
        go (indent + 2) r
    | Cross (l, r) ->
        line "cross";
        go (indent + 2) l;
        go (indent + 2) r
    | Distinct q ->
        line "distinct";
        go (indent + 2) q
    | Sample (s, q) ->
        line "%s" (Sampler.to_string s);
        go (indent + 2) q
    | Union_samples (l, r) ->
        line "union-samples";
        go (indent + 2) l;
        go (indent + 2) r
  in
  go 0 plan

let relations plan =
  Array.to_list (lineage_schema plan)

let children = function
  | Scan _ -> []
  | Select (_, q) | Project (_, q) | Distinct q | Sample (_, q) -> [ q ]
  | Equi_join { left; right; _ } -> [ left; right ]
  | Theta_join (_, l, r) | Cross (l, r) | Union_samples (l, r) -> [ l; r ]

let rec subtree plan = function
  | [] -> Some plan
  | i :: rest -> (
      match List.nth_opt (children plan) i with
      | Some child -> subtree child rest
      | None -> None)
