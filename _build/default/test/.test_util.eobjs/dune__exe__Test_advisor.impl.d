test/test_advisor.ml: Alcotest Expr Float Gus_core Gus_estimator Gus_relational Gus_stats Gus_tpch Lazy List Printf Relation
