(* Streaming / pool-parallel determinism tests:

   1. A Moments.Acc fed in arbitrary chunks and merged agrees with the
      one-shot of_pairs kernel to 1e-9 relative, for pool sizes 1, 2, 4.
   2. The streaming Sbox.of_plan path is bit-identical on
      estimate/total_f/n_tuples to the materializing exec + of_relation
      path for any seed, and within 1e-9 on the moment-derived fields.
   3. Under a pool, Sbox.of_plan is pool-size invariant: the sample is
      identical for every lane count and the report values agree to 1e-9
      (chunked feeding reassociates the float sums, nothing else).
   4. Harness.trials_par and map_trials_par return bit-identical results
      for every lane count, including no pool at all. *)

module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Moments = Gus_estimator.Moments
module Sbox = Gus_estimator.Sbox
module Harness = Gus_experiments.Harness
module Pool = Gus_util.Pool
module Rng = Gus_util.Rng

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let rel_close ?(tol = 1e-9) a b =
  Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* One pool per size for the whole binary; the at_exit registry reaps
   them, and reuse keeps the QCheck loops from respawning domains. *)
let pool_of =
  let tbl = Hashtbl.create 4 in
  fun size ->
    match Hashtbl.find_opt tbl size with
    | Some p -> p
    | None ->
        let p = Pool.create ~size in
        Hashtbl.add tbl size p;
        p

(* ---- 1. Acc chunked feed + merge = of_pairs ---- *)

let acc_case_gen =
  QCheck2.Gen.(
    int_range 1 3 >>= fun n_rels ->
    array_size (int_range 0 160)
      (pair (array_size (pure n_rels) (int_range 0 5)) (float_range (-8.0) 8.0))
    >>= fun pairs ->
    list_size (int_range 0 4) (int_range 0 (Array.length pairs)) >>= fun cuts ->
    oneofl [ 1; 2; 4 ] >|= fun psize -> (n_rels, pairs, cuts, psize))

let prop_acc_chunked_matches_of_pairs =
  QCheck2.Test.make ~name:"Acc chunked+merged = of_pairs (1e-9)" ~count:120
    ~print:(fun (n_rels, pairs, cuts, psize) ->
      Printf.sprintf "n_rels=%d n=%d cuts=[%s] pool=%d" n_rels
        (Array.length pairs)
        (String.concat ";" (List.map string_of_int cuts))
        psize)
    acc_case_gen
    (fun (n_rels, pairs, cuts, psize) ->
      let n = Array.length pairs in
      (* Random cut points -> a partition of [0, n) into feed chunks. *)
      let bounds = List.sort_uniq compare (0 :: n :: cuts) in
      let rec segs = function
        | a :: (b :: _ as rest) -> (a, b) :: segs rest
        | _ -> []
      in
      let accs =
        List.map
          (fun (lo, hi) ->
            let acc = Moments.Acc.create ~hint:4 ~n_rels () in
            for i = lo to hi - 1 do
              let l, f = pairs.(i) in
              Moments.Acc.add acc l f
            done;
            acc)
          (segs bounds)
      in
      let acc =
        match accs with
        | [] -> Moments.Acc.create ~n_rels ()
        | a :: rest ->
            List.iter (fun b -> Moments.Acc.merge a b) rest;
            a
      in
      let y = Moments.Acc.finalize ~pool:(pool_of psize) acc in
      let expect = Moments.of_pairs ~n_rels pairs in
      Moments.Acc.count acc = n
      && Array.length y = Array.length expect
      && Array.for_all2 (fun a b -> rel_close a b) y expect)

(* ---- 2/3. streaming Sbox vs materializing, and pool-size invariance ---- *)

let db () = Harness.db_cached ~scale:0.1

let analyze db plan = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus)

let prop_stream_matches_materializing =
  QCheck2.Test.make ~name:"of_plan streaming = exec+of_relation" ~count:12
    ~print:string_of_int
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let db = db () in
      let plan = Harness.query1_plan () in
      let gus = analyze db plan in
      let s = Sbox.of_plan ~gus ~f:Harness.revenue_f db (Rng.create seed) plan in
      let rel = Splan.exec db (Rng.create seed) plan in
      let m = Sbox.of_relation ~gus ~f:Harness.revenue_f rel in
      s.Sbox.n_tuples = m.Sbox.n_tuples
      && s.Sbox.total_f = m.Sbox.total_f
      && s.Sbox.estimate = m.Sbox.estimate
      && rel_close s.Sbox.variance m.Sbox.variance
      && Array.for_all2 (fun a b -> rel_close a b) s.Sbox.y_hat m.Sbox.y_hat)

let test_of_plan_pool_size_invariant () =
  let db = db () in
  let plan = Harness.query1_plan () in
  let gus = analyze db plan in
  List.iter
    (fun seed ->
      let report size =
        Sbox.of_plan ~pool:(pool_of size) ~gus ~f:Harness.revenue_f db
          (Rng.create seed) plan
      in
      let r1 = report 1 in
      List.iter
        (fun size ->
          let r = report size in
          check_int
            (Printf.sprintf "seed %d pool %d: n_tuples" seed size)
            r1.Sbox.n_tuples r.Sbox.n_tuples;
          check_bool
            (Printf.sprintf "seed %d pool %d: estimate 1e-9" seed size)
            true
            (rel_close r1.Sbox.estimate r.Sbox.estimate);
          check_bool
            (Printf.sprintf "seed %d pool %d: variance 1e-9" seed size)
            true
            (rel_close r1.Sbox.variance r.Sbox.variance);
          check_bool
            (Printf.sprintf "seed %d pool %d: y_hat 1e-9" seed size)
            true
            (Array.for_all2 (fun a b -> rel_close a b) r1.Sbox.y_hat r.Sbox.y_hat))
        [ 2; 4 ])
    [ 3; 17 ]

(* ---- 4. trials_par bit-identical across lane counts ---- *)

let test_trials_par_lane_invariant () =
  let db = db () in
  let plan = Harness.query1_plan () in
  let base =
    Harness.trials_par ~trials:12 ~seed:5 db plan ~f:Harness.revenue_f
  in
  List.iter
    (fun size ->
      let s =
        Harness.trials_par ~pool:(pool_of size) ~trials:12 ~seed:5 db plan
          ~f:Harness.revenue_f
      in
      (* Every field, bit for bit: same per-trial samples (derived child
         streams), same block-order reduction regardless of lanes. *)
      check_bool (Printf.sprintf "pool %d bit-identical" size) true (s = base))
    [ 1; 2; 3 ]

let test_map_trials_par_lane_invariant () =
  let run pool =
    Harness.map_trials_par ?pool ~trials:25 ~seed:9 (fun rng t ->
        (t, Rng.bits64 rng, Rng.float rng))
  in
  let base = run None in
  check_int "trial count" 25 (Array.length base);
  Array.iteri (fun i (t, _, _) -> check_int "slot order" i t) base;
  List.iter
    (fun size ->
      check_bool
        (Printf.sprintf "pool %d bit-identical" size)
        true
        (run (Some (pool_of size)) = base))
    [ 1; 2; 3 ]

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_acc_chunked_matches_of_pairs; prop_stream_matches_materializing ]

let () =
  Alcotest.run "parallel"
    [ ("properties", qcheck_tests);
      ( "pool-invariance",
        [ Alcotest.test_case "of_plan pool sizes 1/2/4" `Quick
            test_of_plan_pool_size_invariant;
          Alcotest.test_case "trials_par lanes 0/1/2/3" `Quick
            test_trials_par_lane_invariant;
          Alcotest.test_case "map_trials_par lanes 0/1/2/3" `Quick
            test_map_trials_par_lane_invariant ] ) ]
