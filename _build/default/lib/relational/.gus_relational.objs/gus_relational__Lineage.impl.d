lib/relational/lineage.ml: Array Format Gus_util Int64 List Printf String
