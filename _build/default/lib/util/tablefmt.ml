type align = Left | Right

type row = Cells of string list | Sep

type t = {
  headers : string list;
  mutable rows : row list; (* reversed *)
}

let create ~headers = { headers; rows = [] }
let add_row t cells = t.rows <- Cells cells :: t.rows
let add_sep t = t.rows <- Sep :: t.rows

let render ?align t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc r -> match r with Cells c -> max acc (List.length c) | Sep -> acc)
      (List.length t.headers) rows
  in
  let widths = Array.make ncols 0 in
  let note_row cells =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  note_row t.headers;
  List.iter (function Cells c -> note_row c | Sep -> ()) rows;
  let aligns =
    match align with
    | Some a -> Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let align_of i = if i < Array.length aligns then aligns.(i) else Right in
  let pad i s =
    let w = widths.(i) in
    let fill = String.make (max 0 (w - String.length s)) ' ' in
    match align_of i with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 1024 in
  let rule () =
    for i = 0 to ncols - 1 do
      Buffer.add_string buf (String.make (widths.(i) + 2) '-');
      if i < ncols - 1 then Buffer.add_char buf '+'
    done;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    let cells = Array.of_list cells in
    for i = 0 to ncols - 1 do
      let c = if i < Array.length cells then cells.(i) else "" in
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad i c);
      Buffer.add_char buf ' ';
      if i < ncols - 1 then Buffer.add_char buf '|'
    done;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  rule ();
  List.iter (function Cells c -> emit c | Sep -> rule ()) rows;
  Buffer.contents buf

let print ?align t = print_string (render ?align t)

let float_cell ?(digits = 3) x =
  if Float.is_nan x then "nan"
  else if Float.is_integer x && Float.abs x < 1e7 then
    Printf.sprintf "%.0f" x
  else if x <> 0.0 && (Float.abs x < 0.001 || Float.abs x >= 1e7) then
    Printf.sprintf "%.*e" digits x
  else Printf.sprintf "%.*f" digits x
