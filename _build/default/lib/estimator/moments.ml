module Subset = Gus_util.Subset
open Gus_relational

module Key = struct
  type t = int array

  let equal = ( = )

  let hash (l : t) =
    let h = ref (Gus_util.Hashing.mix64 23L) in
    Array.iter (fun id -> h := Gus_util.Hashing.combine !h (Int64.of_int id)) l;
    Int64.to_int !h land max_int
end

module Tbl = Hashtbl.Make (Key)

let of_pairs ~n_rels pairs =
  if n_rels > Subset.max_universe then
    invalid_arg "Moments.of_pairs: too many relations";
  Array.iter
    (fun (l, _) ->
      if Array.length l <> n_rels then
        invalid_arg "Moments.of_pairs: lineage length mismatch")
    pairs;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  (* S = ∅: a single group containing everything. *)
  let grand = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 pairs in
  y.(Subset.empty) <- grand *. grand;
  (* Every other subset is a genuine group-by on the restricted lineage.
     Note S = full is NOT the plain sum of f²: block-granular lineage (block
     sampling) makes several tuples share a full lineage, and they must be
     summed within their group. *)
  for s = 1 to nmasks - 1 do
    let positions = Subset.elements s in
    let groups = Tbl.create (max 64 (Array.length pairs / 4)) in
    Array.iter
      (fun (l, f) ->
        let key = Lineage.restrict l ~positions in
        match Tbl.find_opt groups key with
        | Some sum -> Tbl.replace groups key (sum +. f)
        | None -> Tbl.add groups key f)
      pairs;
    let acc = ref 0.0 in
    Tbl.iter (fun _ sum -> acc := !acc +. (sum *. sum)) groups;
    y.(s) <- !acc
  done;
  y

let bilinear_of_pairs ~n_rels pairs =
  if n_rels > Subset.max_universe then
    invalid_arg "Moments.bilinear_of_pairs: too many relations";
  Array.iter
    (fun (l, _, _) ->
      if Array.length l <> n_rels then
        invalid_arg "Moments.bilinear_of_pairs: lineage length mismatch")
    pairs;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  let grand_f = Array.fold_left (fun acc (_, f, _) -> acc +. f) 0.0 pairs in
  let grand_g = Array.fold_left (fun acc (_, _, g) -> acc +. g) 0.0 pairs in
  y.(Subset.empty) <- grand_f *. grand_g;
  for s = 1 to nmasks - 1 do
    let positions = Subset.elements s in
    let groups = Tbl.create (max 64 (Array.length pairs / 4)) in
    Array.iter
      (fun (l, f, g) ->
        let key = Lineage.restrict l ~positions in
        match Tbl.find_opt groups key with
        | Some (sf, sg) -> Tbl.replace groups key (sf +. f, sg +. g)
        | None -> Tbl.add groups key (f, g))
      pairs;
    let acc = ref 0.0 in
    Tbl.iter (fun _ (sf, sg) -> acc := !acc +. (sf *. sg)) groups;
    y.(s) <- !acc
  done;
  y

let bilinear_of_relation ~f ~g rel =
  let open Gus_relational in
  let ef = Expr.bind_float rel.Relation.schema f in
  let eg = Expr.bind_float rel.Relation.schema g in
  let out = Array.make (Relation.cardinality rel) ([||], 0.0, 0.0) in
  let i = ref 0 in
  Relation.iter
    (fun tup ->
      out.(!i) <- (tup.Tuple.lineage, ef tup, eg tup);
      incr i)
    rel;
  bilinear_of_pairs ~n_rels:(Array.length rel.Relation.lineage_schema) out

let pairs_of_relation ~f rel =
  let eval = Expr.bind_float rel.Relation.schema f in
  let out = Array.make (Relation.cardinality rel) ([||], 0.0) in
  let i = ref 0 in
  Relation.iter
    (fun tup ->
      out.(!i) <- (tup.Tuple.lineage, eval tup);
      incr i)
    rel;
  out

let of_relation ~f rel =
  of_pairs
    ~n_rels:(Array.length rel.Relation.lineage_schema)
    (pairs_of_relation ~f rel)

let total pairs = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 pairs
