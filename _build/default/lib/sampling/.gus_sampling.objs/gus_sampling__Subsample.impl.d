lib/sampling/subsample.ml: Array Float Gus_relational Gus_util List Printf Relation String Tuple
