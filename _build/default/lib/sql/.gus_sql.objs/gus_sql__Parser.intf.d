lib/sql/parser.mli: Ast Gus_relational
