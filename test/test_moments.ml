(* Tests for the y_S / Y_S moment computation (Section 6.3's group-by
   lineage machinery). *)

module Moments = Gus_estimator.Moments
module Subset = Gus_util.Subset
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let close ?(eps = 1e-9) what expected actual =
  check (Alcotest.float eps) what expected actual

(* Hand-computed 2-relation fixture:
   pairs (lineage (r,s), f):
     (0,0) -> 1
     (0,1) -> 2
     (1,0) -> 3
     (1,1) -> 4
   y_{} = (1+2+3+4)^2 = 100
   y_{r} = (1+2)^2 + (3+4)^2 = 9 + 49 = 58
   y_{s} = (1+3)^2 + (2+4)^2 = 16 + 36 = 52
   y_{rs} = 1 + 4 + 9 + 16 = 30 *)
let fixture =
  [| ([| 0; 0 |], 1.0); ([| 0; 1 |], 2.0); ([| 1; 0 |], 3.0); ([| 1; 1 |], 4.0) |]

let test_hand_computed () =
  let y = Moments.of_pairs ~n_rels:2 fixture in
  close "y_empty" 100.0 y.(0);
  close "y_r" 58.0 y.(1);
  close "y_s" 52.0 y.(2);
  close "y_rs" 30.0 y.(3)

let test_single_relation () =
  let pairs = [| ([| 0 |], 2.0); ([| 1 |], 3.0); ([| 2 |], 5.0) |] in
  let y = Moments.of_pairs ~n_rels:1 pairs in
  close "y_empty = total^2" 100.0 y.(0);
  close "y_r = sum of squares" 38.0 y.(1)

let test_duplicate_lineage_grouped () =
  (* Block-granular lineage: several tuples share the full lineage and must
     be summed inside their group even at S = full. *)
  let pairs = [| ([| 7 |], 1.0); ([| 7 |], 2.0); ([| 8 |], 10.0) |] in
  let y = Moments.of_pairs ~n_rels:1 pairs in
  close "y_empty" 169.0 y.(0);
  close "y_full grouped" (9.0 +. 100.0) y.(1)

let test_empty_input () =
  let y = Moments.of_pairs ~n_rels:2 [||] in
  Array.iter (fun v -> close "all zero" 0.0 v) y

let test_zero_rels () =
  let y = Moments.of_pairs ~n_rels:0 [| ([||], 3.0); ([||], 4.0) |] in
  close "single moment = total^2" 49.0 y.(0)

let test_length_mismatch () =
  check_bool "lineage length" true
    (try ignore (Moments.of_pairs ~n_rels:2 [| ([| 1 |], 1.0) |]); false
     with Invalid_argument _ -> true)

let test_monotone_in_subsets () =
  (* For non-negative f, y_S decreases as S grows (coarser groups give
     bigger squares): y_∅ >= y_{r} >= y_{rs} etc. along chains. *)
  let y = Moments.of_pairs ~n_rels:2 fixture in
  check_bool "y_empty >= y_r" true (y.(0) >= y.(1));
  check_bool "y_empty >= y_s" true (y.(0) >= y.(2));
  check_bool "y_r >= y_rs" true (y.(1) >= y.(3));
  check_bool "y_s >= y_rs" true (y.(2) >= y.(3))

let test_bilinear_reduces_to_plain () =
  let tri = Array.map (fun (l, f) -> (l, f, f)) fixture in
  let yb = Moments.bilinear_of_pairs ~n_rels:2 tri in
  let y = Moments.of_pairs ~n_rels:2 fixture in
  Array.iteri (fun i v -> close "f=g agreement" y.(i) v) yb

let test_bilinear_hand_computed () =
  (* g = 1 everywhere: y^{fg}_S = sum over groups (sum f)(group size). *)
  let tri = Array.map (fun (l, f) -> (l, f, 1.0)) fixture in
  let yb = Moments.bilinear_of_pairs ~n_rels:2 tri in
  close "empty: total_f * total_g" 40.0 yb.(0);
  close "r: 3*2 + 7*2" 20.0 yb.(1);
  close "s: 4*2 + 6*2" 20.0 yb.(2);
  close "rs: sum f*1" 10.0 yb.(3)

let test_bilinear_symmetric () =
  let tri = [| ([| 0; 0 |], 1.0, 5.0); ([| 0; 1 |], 2.0, 6.0); ([| 1; 1 |], 3.0, 7.0) |] in
  let flipped = Array.map (fun (l, f, g) -> (l, g, f)) tri in
  let a = Moments.bilinear_of_pairs ~n_rels:2 tri in
  let b = Moments.bilinear_of_pairs ~n_rels:2 flipped in
  Array.iteri (fun i v -> close "symmetry" b.(i) v) a

let test_of_relation () =
  let schema =
    Schema.make
      [ { Schema.name = "k"; ty = Value.TInt };
        { Schema.name = "v"; ty = Value.TFloat } ]
  in
  let r = Relation.create_base ~name:"r" schema in
  Relation.append_row r [| Value.Int 1; Value.Float 2.0 |];
  Relation.append_row r [| Value.Int 2; Value.Float 3.0 |];
  Relation.append_row r [| Value.Int 3; Value.Null |];
  let y = Moments.of_relation ~f:(Expr.col "v") r in
  close "null treated as 0" 25.0 y.(0);
  close "sum of squares" 13.0 y.(1);
  let pairs = Moments.pairs_of_relation ~f:(Expr.col "v") r in
  close "total" 5.0 (Moments.total pairs);
  check Alcotest.int "pair count" 3 (Array.length pairs)

(* Property: y_S computed by the implementation equals the brute-force
   double sum over pairs agreeing on S. *)
let pairs_gen =
  QCheck2.Gen.(
    list_size (int_range 1 30)
      (pair (pair (int_range 0 4) (int_range 0 4)) (float_range (-5.0) 5.0))
    >|= fun l ->
    Array.of_list (List.map (fun ((a, b), f) -> ([| a; b |], f)) l))

let brute_force_y pairs s =
  let agree (l1 : int array) l2 =
    let ok = ref true in
    Array.iteri
      (fun i v -> if Subset.mem s i && v <> l2.(i) then ok := false)
      l1;
    !ok
  in
  let acc = ref 0.0 in
  Array.iter
    (fun (l1, f1) ->
      Array.iter (fun (l2, f2) -> if agree l1 l2 then acc := !acc +. (f1 *. f2)) pairs)
    pairs;
  !acc

let prop_matches_brute_force =
  QCheck2.Test.make ~name:"y_S equals brute-force pair sum" ~count:100 pairs_gen
    (fun pairs ->
      let y = Moments.of_pairs ~n_rels:2 pairs in
      let ok = ref true in
      for s = 0 to 3 do
        let bf = brute_force_y pairs s in
        if Float.abs (y.(s) -. bf) > 1e-6 *. Float.max 1.0 (Float.abs bf) then
          ok := false
      done;
      !ok)

let prop_mobius_z_nonneg_sum =
  (* z_S = sum_{T ⊇ S} (-1)^{|T|-|S|} y_T are exact-agreement sums; their
     total over all S must equal y_∅. *)
  QCheck2.Test.make ~name:"Mobius inversion of y sums to y_empty" ~count:100
    pairs_gen (fun pairs ->
      let y = Moments.of_pairs ~n_rels:2 pairs in
      let z s =
        let acc = ref 0.0 in
        Subset.iter_supersets 2 s (fun t ->
            let sign =
              if (Subset.cardinal (Subset.diff t s)) land 1 = 0 then 1.0 else -1.0
            in
            acc := !acc +. (sign *. y.(t)));
        !acc
      in
      let total = z 0 +. z 1 +. z 2 +. z 3 in
      Float.abs (total -. y.(0)) <= 1e-6 *. Float.max 1.0 (Float.abs y.(0)))

(* ---- optimized kernel vs the retained naive reference ----------------- *)

(* Pools of size 1 (inline), 2 (always at least one worker domain), and the
   machine's recommended count.  par_threshold:0 forces the parallel path
   even on tiny inputs so the fan-out itself is exercised. *)
let pools =
  lazy
    (let module Pool = Gus_util.Pool in
     [ Pool.create ~size:1;
       Pool.create ~size:2;
       Pool.create ~size:(Pool.recommended_size ()) ])

(* Random (lineage, f, g) triples over 0..6 relations with ids drawn from a
   tiny range (to force genuine groups) and a duplicated prefix (to cover
   block-granular inputs where several tuples share a full lineage). *)
let kernel_gen =
  QCheck2.Gen.(
    int_range 0 6 >>= fun n_rels ->
    list_size (int_range 0 40)
      (pair
         (list_repeat n_rels (int_range 0 3))
         (pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)))
    >>= fun base ->
    int_range 0 (List.length base) >|= fun dup ->
    let tri =
      List.map (fun (l, (f, g)) -> (Array.of_list l, f, g)) base
    in
    let blocks = List.filteri (fun i _ -> i < dup) tri in
    (n_rels, Array.of_list (tri @ blocks)))

let close_rel ?(tol = 1e-9) a b =
  Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.abs b)

let prop_kernel_matches_naive =
  QCheck2.Test.make ~name:"of_pairs kernel = naive (pool sizes 1/2/N)"
    ~count:200 kernel_gen (fun (n_rels, tri) ->
      let pairs = Array.map (fun (l, f, _) -> (l, f)) tri in
      let reference = Moments.of_pairs_naive ~n_rels pairs in
      List.for_all
        (fun pool ->
          let y = Moments.of_pairs ~pool ~par_threshold:0 ~n_rels pairs in
          Array.for_all2 close_rel y reference)
        (Lazy.force pools))

let prop_bilinear_kernel_matches_naive =
  QCheck2.Test.make
    ~name:"bilinear_of_pairs kernel = naive (pool sizes 1/2/N)" ~count:200
    kernel_gen (fun (n_rels, tri) ->
      let reference = Moments.bilinear_of_pairs_naive ~n_rels tri in
      List.for_all
        (fun pool ->
          let y = Moments.bilinear_of_pairs ~pool ~par_threshold:0 ~n_rels tri in
          Array.for_all2 close_rel y reference)
        (Lazy.force pools))

let test_kernel_large_parallel () =
  (* One deterministic above-threshold input per pool, so the default
     threshold path and chunked fan-out both run on real volume. *)
  let rng = Gus_util.Rng.create 4242 in
  let pairs =
    Array.init 6000 (fun _ ->
        (Array.init 3 (fun _ -> Gus_util.Rng.int rng 50), Gus_util.Rng.float rng))
  in
  let reference = Moments.of_pairs_naive ~n_rels:3 pairs in
  List.iter
    (fun pool ->
      let y = Moments.of_pairs ~pool ~n_rels:3 pairs in
      Array.iteri
        (fun s v ->
          close ~eps:(1e-9 *. Float.max 1.0 (Float.abs reference.(s)))
            (Printf.sprintf "y.(%d)" s) reference.(s) v)
        y)
    (Lazy.force pools)

(* ---- skip-mask: skipped entries stay 0, live entries are bit-identical
   to the dense run (same code path, same order — not merely close) ---- *)

let skip_gen =
  QCheck2.Gen.(
    kernel_gen >>= fun (n_rels, tri) ->
    int_range 0 (Subset.full n_rels) >|= fun mask -> (n_rels, tri, mask))

let prop_skip_mask_bit_identical =
  QCheck2.Test.make
    ~name:"of_pairs with skip_mask: live masks bit-identical, dead 0.0"
    ~count:200 skip_gen (fun (n_rels, tri, skip_mask) ->
      let pairs = Array.map (fun (l, f, _) -> (l, f)) tri in
      let dense = Moments.of_pairs ~n_rels pairs in
      let skipped = Moments.of_pairs ~skip_mask ~n_rels pairs in
      let bilinear_dense = Moments.bilinear_of_pairs ~n_rels tri in
      let bilinear_skipped = Moments.bilinear_of_pairs ~skip_mask ~n_rels tri in
      (* streaming accumulator under the same mask, vs a dense one — the
         live-mask group tables run the identical code path *)
      let acc = Moments.Acc.create ~skip_mask ~n_rels () in
      let acc_dense = Moments.Acc.create ~n_rels () in
      Array.iter
        (fun (l, f) ->
          Moments.Acc.add acc l f;
          Moments.Acc.add acc_dense l f)
        pairs;
      let streamed = Moments.Acc.finalize acc in
      let streamed_dense = Moments.Acc.finalize acc_dense in
      let ok = ref (Moments.Acc.skip_mask acc = skip_mask) in
      for s = 0 to Subset.full n_rels do
        if s land skip_mask <> 0 then begin
          if not (skipped.(s) = 0.0) then ok := false;
          if not (streamed.(s) = 0.0) then ok := false;
          if not (bilinear_skipped.(s) = 0.0) then ok := false
        end
        else begin
          (* bit-exact comparison on purpose *)
          if not (Int64.equal (Int64.bits_of_float skipped.(s))
                    (Int64.bits_of_float dense.(s))) then ok := false;
          if not (Int64.equal (Int64.bits_of_float streamed.(s))
                    (Int64.bits_of_float streamed_dense.(s))) then ok := false;
          if not (Int64.equal (Int64.bits_of_float bilinear_skipped.(s))
                    (Int64.bits_of_float bilinear_dense.(s))) then ok := false
        end
      done;
      !ok)

let test_skip_mask_validation () =
  let pairs = [| ([| 0; 1 |], 1.0) |] in
  (match Moments.of_pairs ~skip_mask:4 ~n_rels:2 pairs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mask outside the universe accepted");
  (* merge requires agreeing masks *)
  let a = Moments.Acc.create ~skip_mask:1 ~n_rels:2 () in
  let b = Moments.Acc.create ~n_rels:2 () in
  match Moments.Acc.merge a b with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "mask mismatch merge accepted"

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_matches_brute_force; prop_mobius_z_nonneg_sum;
      prop_kernel_matches_naive; prop_bilinear_kernel_matches_naive;
      prop_skip_mask_bit_identical ]

let () =
  Alcotest.run "gus_estimator.moments"
    [ ( "unit",
        [ Alcotest.test_case "hand-computed 2-rel" `Quick test_hand_computed;
          Alcotest.test_case "single relation" `Quick test_single_relation;
          Alcotest.test_case "duplicate lineage (block)" `Quick test_duplicate_lineage_grouped;
          Alcotest.test_case "empty input" `Quick test_empty_input;
          Alcotest.test_case "zero relations" `Quick test_zero_rels;
          Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
          Alcotest.test_case "monotone along chains" `Quick test_monotone_in_subsets;
          Alcotest.test_case "skip-mask validation" `Quick test_skip_mask_validation ] );
      ( "bilinear",
        [ Alcotest.test_case "f=g reduces to plain" `Quick test_bilinear_reduces_to_plain;
          Alcotest.test_case "hand-computed" `Quick test_bilinear_hand_computed;
          Alcotest.test_case "symmetric" `Quick test_bilinear_symmetric ] );
      ( "relation",
        [ Alcotest.test_case "of_relation with nulls" `Quick test_of_relation ] );
      ( "kernel",
        [ Alcotest.test_case "large input across pools" `Quick
            test_kernel_large_parallel ] );
      ("properties", qcheck_tests) ]
