(* Tests for the abstract-interpretation layer (Gus_analysis.Absdom /
   Dataflow / Cost / Fix):

   1. Lattice laws of each abstract domain — unit cases plus QCheck
      properties for join-as-lub, widening soundness and arithmetic
      monotonicity.
   2. Dataflow facts pinned on small plans, and totality on plans the
      linter rejects.
   3. The static cost model: pass counts, verified skip-mask, the
      Theorem-1 worst-case variance bound against a direct computation.
   4. Fix application: shape-directed rewrites, deepest-first batches,
      and the QCheck GUS-equivalence property — every applied fix
      preserves the sample-free skeleton and the effective inclusion
      probability a, hence the Theorem-1 estimator's expectation
      (E[estimate] = exact total over the skeleton for SUM/COUNT). *)

module Gus = Gus_core.Gus
module Splan = Gus_core.Splan
module Subset = Gus_util.Subset
module Lint = Gus_analysis.Lint
module Rewrite = Gus_analysis.Rewrite
module Absdom = Gus_analysis.Absdom
module Dataflow = Gus_analysis.Dataflow
module Cost = Gus_analysis.Cost
module Fix = Gus_analysis.Fix
module Itv = Absdom.Itv
module Card = Absdom.Card
module Cls = Absdom.Cls
module Sampler = Gus_sampling.Sampler
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let close msg a b = check (Alcotest.float 1e-9) msg a b

let card = function
  | "r" -> 100
  | "s" -> 1000
  | "t" -> 50
  | _ -> 100

let b01 = Sampler.Bernoulli 0.1
let b05 = Sampler.Bernoulli 0.5

let join l r =
  Splan.Equi_join
    { left = l; right = r; left_key = Expr.col "k"; right_key = Expr.col "k" }

(* ---- Itv ---- *)

let test_itv_basics () =
  let i = Itv.make 0.2 0.7 in
  check_bool "point" true (Itv.is_point (Itv.point 0.3));
  check_bool "not point" false (Itv.is_point i);
  check_bool "leq subset" true (Itv.leq (Itv.make 0.3 0.5) i);
  check_bool "leq not superset" false (Itv.leq i (Itv.make 0.3 0.5));
  let j = Itv.join (Itv.point 0.1) (Itv.point 0.9) in
  close "join lo" 0.1 (j : Itv.t).Itv.lo;
  close "join hi" 0.9 j.Itv.hi;
  (match Itv.make 0.7 0.2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lo > hi accepted");
  let m = Itv.mul (Itv.make 0.1 0.2) (Itv.make 0.5 1.0) in
  close "mul lo" 0.05 m.Itv.lo;
  close "mul hi" 0.2 m.Itv.hi;
  let u = Itv.union_prob (Itv.point 0.5) (Itv.point 0.5) in
  close "union_prob p+q-pq" 0.75 u.Itv.lo;
  close "union_prob point" 0.75 u.Itv.hi

let test_itv_widen () =
  let top = Itv.unit in
  let a = Itv.make 0.3 0.5 in
  (* stable bounds are kept *)
  let w = Itv.widen ~top a (Itv.make 0.3 0.5) in
  close "stable lo" 0.3 w.Itv.lo;
  close "stable hi" 0.5 w.Itv.hi;
  (* an unstable bound jumps to top's bound *)
  let w = Itv.widen ~top a (Itv.make 0.2 0.5) in
  close "unstable lo jumps" 0.0 w.Itv.lo;
  close "hi kept" 0.5 w.Itv.hi;
  let w = Itv.widen ~top a (Itv.make 0.3 0.6) in
  close "unstable hi jumps" 1.0 w.Itv.hi

let itv_gen =
  QCheck2.Gen.(
    map2
      (fun a b -> Itv.make (Float.min a b) (Float.max a b))
      (float_range 0.0 1.0) (float_range 0.0 1.0))

let itv_laws =
  QCheck2.Test.make ~name:"Itv: join is an upper bound, widen covers join"
    ~count:300
    QCheck2.Gen.(pair itv_gen itv_gen)
    (fun (a, b) ->
      let j = Itv.join a b in
      Itv.leq a j && Itv.leq b j
      && Itv.leq j (Itv.widen ~top:Itv.unit a b)
      (* mul is monotone w.r.t. inclusion *)
      && Itv.leq (Itv.mul a b) (Itv.mul j j)
      && Itv.leq (Itv.union_prob a b) (Itv.union_prob j j))

(* ---- Card ---- *)

let test_card_basics () =
  let c = Card.exact 100 in
  close "exact exp" 100.0 (Card.exp c);
  check_bool "leq refl" true (Card.leq c c);
  check_bool "exact below top" true (Card.leq c Card.top);
  let f = Card.filter c in
  close "filter lo" 0.0 (f : Card.t).Card.lo;
  close "filter hi" 100.0 f.Card.hi;
  let s = Card.sample (Itv.point 0.1) c in
  close "sample exp scaled" 10.0 (Card.exp s);
  close "sample hi kept" 100.0 s.Card.hi;
  let p = Card.product (Card.exact 10) (Card.exact 20) in
  close "product hi" 200.0 p.Card.hi;
  let j = Card.equi_join (Card.exact 10) (Card.exact 20) in
  close "join lo" 0.0 j.Card.lo;
  close "join hi" 200.0 j.Card.hi;
  let u = Card.sum (Card.exact 10) (Card.exact 20) in
  close "sum lo" 30.0 u.Card.lo;
  close "sum hi" 30.0 u.Card.hi;
  let w = Card.widen (Card.exact 10) (Card.make ~lo:5.0 ~hi:20.0 ~exp:10.0) in
  close "widen lo" 0.0 w.Card.lo;
  check_bool "widen hi to inf" true (w.Card.hi = infinity)

let card_gen =
  QCheck2.Gen.(
    map3
      (fun a b e ->
        let lo = Float.min a b and hi = Float.max a b in
        Card.make ~lo ~hi ~exp:(lo +. (e *. (hi -. lo))))
      (float_range 0.0 1000.0) (float_range 0.0 1000.0) (float_range 0.0 1.0))

let card_laws =
  QCheck2.Test.make ~name:"Card: join is an upper bound, widen covers join"
    ~count:300
    QCheck2.Gen.(pair card_gen card_gen)
    (fun (a, b) ->
      let j = Card.join a b in
      Card.leq a j && Card.leq b j && Card.leq j (Card.widen a b)
      && Card.leq a Card.top
      (* exp stays inside the interval by construction *)
      && (j : Card.t).Card.lo <= Card.exp j
      && Card.exp j <= j.Card.hi)

(* ---- Cls ---- *)

let test_cls_lattice () =
  let all = [ Cls.Ind_bernoulli; Cls.Product_form; Cls.General ] in
  check_bool "chain" true
    (Cls.leq Cls.Ind_bernoulli Cls.Product_form
    && Cls.leq Cls.Product_form Cls.General
    && not (Cls.leq Cls.General Cls.Ind_bernoulli));
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let j = Cls.join a b in
          check_bool "join ub" true (Cls.leq a j && Cls.leq b j);
          check_bool "widen = join (finite lattice)" true
            (Cls.widen a b = j);
          check_bool "join commutes" true (Cls.join b a = j))
        all)
    all;
  check_bool "labels" true
    (List.for_all (fun c -> String.length (Cls.to_string c) > 0) all)

(* ---- Dataflow ---- *)

let test_dataflow_sampled_scan () =
  let plan = Splan.Sample (b01, Splan.Scan "r") in
  let facts = Dataflow.analyze ~card plan in
  let root = Dataflow.root facts in
  check_int "two nodes" 2 (List.length (Dataflow.to_list facts));
  close "a lo" 0.1 root.Dataflow.a.Itv.lo;
  close "a hi" 0.1 root.Dataflow.a.Itv.hi;
  check_int "width" 1 root.Dataflow.width;
  check_bool "sampled" true root.Dataflow.sampled;
  check_bool "class" true (root.Dataflow.cls = Cls.Ind_bernoulli);
  close "expected rows" 10.0 (Card.exp root.Dataflow.card);
  (* the scan child's fact is exact and unsampled *)
  match Dataflow.find facts [ 0 ] with
  | None -> Alcotest.fail "no fact for the scan"
  | Some scan ->
      close "scan exact" 100.0 (Card.exp scan.Dataflow.card);
      check_bool "scan unsampled" false scan.Dataflow.sampled

let test_dataflow_join_select () =
  let plan =
    join
      (Splan.Sample (b01, Splan.Scan "r"))
      (Splan.Select (Expr.(col "x" > int 0), Splan.Scan "s"))
  in
  let facts = Dataflow.analyze ~card plan in
  let root = Dataflow.root facts in
  check_int "width 2" 2 root.Dataflow.width;
  check_bool "sampled" true root.Dataflow.sampled;
  close "join card lo" 0.0 (root.Dataflow.card : Card.t).Card.lo;
  close "join card hi" 100000.0 root.Dataflow.card.Card.hi;
  (* the select's fact: lower bound dropped, upper kept *)
  match Dataflow.find facts [ 1 ] with
  | None -> Alcotest.fail "no fact for the select"
  | Some sel ->
      close "select lo" 0.0 (sel.Dataflow.card : Card.t).Card.lo;
      close "select hi" 1000.0 sel.Dataflow.card.Card.hi

let test_dataflow_total_on_rejected () =
  (* Plans the linter rejects still get a full fact table. *)
  let plans =
    [ Splan.Sample (Sampler.Wor 10, Splan.Sample (b01, Splan.Scan "r"));
      Splan.Sample (Sampler.Wr 5, Splan.Scan "r");
      Splan.Distinct (Splan.Sample (b01, Splan.Scan "r"));
      Splan.Union_samples
        (Splan.Sample (b01, Splan.Scan "r"), Splan.Scan "s") ]
  in
  List.iter
    (fun plan ->
      let facts = Dataflow.analyze ~card plan in
      let root = Dataflow.root facts in
      check_bool "a within [0,1]" true
        (root.Dataflow.a.Itv.lo >= 0.0 && root.Dataflow.a.Itv.hi <= 1.0);
      (* every node has a fact *)
      let rec count q =
        1
        + List.fold_left (fun acc c -> acc + count c) 0 (Splan.children q)
      in
      check_int "fact per node" (count plan)
        (List.length (Dataflow.to_list facts)))
    plans

(* ---- Cost ---- *)

let test_cost_half_sampled_join () =
  let plan = join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Scan "s") in
  let report = Lint.run ~card plan in
  let a =
    match report.Lint.analysis with
    | Some a -> a
    | None -> Alcotest.fail "analyzable"
  in
  let c = a.Lint.cost in
  check_int "n_rels" 2 c.Cost.n_rels;
  check_int "passes 2^2-1" 3 c.Cost.passes;
  check_int "skipped: both masks touching s" 2 c.Cost.skipped;
  check_int "skip_mask = bit of s" 2 c.Cost.skip_mask;
  check_bool "est_groups >= 1" true (c.Cost.est_groups >= 1.0);
  close "predicted = live passes x groups"
    ((float_of_int (c.Cost.passes - c.Cost.skipped)) *. c.Cost.est_groups)
    c.Cost.predicted_cost;
  (* the bound agrees with a direct sum over the coefficient array *)
  let gus = (Lazy.force a.Lint.gus) in
  let coeffs = Gus.c_coefficients gus in
  let positive = ref 0.0 in
  Array.iter (fun cs -> if cs > 0.0 then positive := !positive +. cs) coeffs;
  let direct =
    Float.max 0.0 ((!positive /. (gus.Gus.a *. gus.Gus.a)) -. 1.0)
  in
  close "variance bound" direct c.Cost.variance_bound;
  close "bernoulli bound 1/p - 1" 9.0 c.Cost.variance_bound

let test_cost_skip_mask_verified () =
  (* skip_mask is a pure function of the GUS and only ever says "skip"
     when the coefficients really are exactly 0.0 *)
  let check_gus gus =
    let mask = Cost.skip_mask gus in
    let coeffs = Gus.c_coefficients gus in
    Array.iteri
      (fun s cs -> if s land mask <> 0 then close "masked c is 0" 0.0 cs)
      coeffs
  in
  check_gus (Gus.bernoulli ~rel:"r" 0.1);
  check_gus (Gus.identity [| "r" |]);
  check_gus
    (Gus.join (Gus.bernoulli ~rel:"r" 0.1) (Gus.identity [| "s" |]));
  check_gus
    (Gus.join (Gus.bernoulli ~rel:"r" 0.1) (Gus.bernoulli ~rel:"s" 0.25));
  (* fully sampled: nothing to skip *)
  check_int "no inert relation" 0
    (Cost.skip_mask
       (Gus.join (Gus.bernoulli ~rel:"r" 0.1) (Gus.bernoulli ~rel:"s" 0.25)));
  (* identity design: every relation inert *)
  check_int "identity fully inert" 3
    (Cost.skip_mask (Gus.identity [| "r"; "s" |]))

(* ---- Fix ---- *)

let test_fix_apply_shapes () =
  let stacked = Splan.Sample (b01, Splan.Sample (b05, Splan.Scan "r")) in
  let merged = Sampler.Bernoulli 0.05 in
  let fix = Fix.merge_stacked ~at:[] b01 b05 merged in
  (match Fix.apply fix stacked with
  | Some (Splan.Sample (Sampler.Bernoulli p, Splan.Scan "r")) ->
      close "merged rate" 0.05 p
  | _ -> Alcotest.fail "merge did not produce Sample(b.05, Scan r)");
  (* wrong shape -> None, not an exception *)
  check_bool "shape mismatch is None" true
    (Fix.apply fix (Splan.Scan "r") = None);
  let sel = Splan.Select (Expr.(col "x" > int 0), Splan.Scan "r") in
  let above = Splan.Sample (b01, sel) in
  (match Fix.apply (Fix.push_below_select ~at:[] b01) above with
  | Some (Splan.Select (_, Splan.Sample (s, Splan.Scan "r"))) ->
      check_bool "same sampler" true (s = b01)
  | _ -> Alcotest.fail "push_below_select shape");
  match Fix.apply (Fix.drop_sampler ~at:[] (Sampler.Bernoulli 1.0))
          (Splan.Sample (Sampler.Bernoulli 1.0, Splan.Scan "r"))
  with
  | Some (Splan.Scan "r") -> ()
  | _ -> Alcotest.fail "drop_sampler shape"

let test_fix_apply_all_deepest_first () =
  (* Two fixes along one spine: the deeper merge must apply before the
     outer path is interpreted, and apply_all reports both. *)
  let plan =
    Splan.Sample
      (b01, Splan.Sample (b05, Splan.Sample (Sampler.Bernoulli 0.2, Splan.Scan "r")))
  in
  let fixed, applied = Lint.apply_fixes ~card plan in
  check_bool "all collapsed to one Bernoulli" true
    (match fixed with
    | Splan.Sample (Sampler.Bernoulli p, Splan.Scan "r") ->
        Float.abs (p -. (0.1 *. 0.5 *. 0.2)) < 1e-12
    | _ -> false);
  check_bool "at least two merges applied" true (List.length applied >= 2)

(* ---- the GUS-equivalence property for fixes ---- *)

let sampler_gen =
  QCheck2.Gen.(
    oneof
      [ (float_range 0.05 1.0 >|= fun p -> Sampler.Bernoulli p);
        (int_range 1 120 >|= fun n -> Sampler.Wor n);
        ( pair (int_range 1 20) (float_range 0.1 1.0) >|= fun (b, p) ->
          Sampler.Block { rows_per_block = b; p } ) ])

let plan_gen =
  QCheck2.Gen.(
    let scan = oneofl [ "r"; "s"; "t" ] >|= fun r -> Splan.Scan r in
    sized
    @@ fix (fun self n ->
           if n <= 0 then scan
           else
             let sub = self (n / 2) in
             oneof
               [ scan;
                 (sub >|= fun q -> Splan.Select (Expr.(col "x" > int 0), q));
                 map2 (fun s q -> Splan.Sample (s, q)) sampler_gen sub;
                 map2
                   (fun l r ->
                     Splan.Equi_join
                       { left = l; right = r; left_key = Expr.col "k";
                         right_key = Expr.col "k" })
                   sub sub;
                 map2 (fun l r -> Splan.Cross (l, r)) sub sub ]))

let prop_fixes_preserve_gus plan =
  let report = Lint.run ~card plan in
  let fixed, _applied = Lint.apply_fixes ~card plan in
  (* 1. fixes never touch the sample-free skeleton — for SUM/COUNT the
     Theorem-1 estimator's expectation is the exact total over the
     skeleton scaled by a/a = 1, so equal skeleton + equal a means the
     estimator's expectation is untouched *)
  let skeleton_ok =
    Splan.equal (Splan.strip_samples plan) (Splan.strip_samples fixed)
  in
  (* 2. analyzability is preserved and a is unchanged (drop only removes
     a = 1 samplers; merge multiplies exactly like Prop. 8 compaction;
     push commutes per Prop. 5) *)
  let a_ok =
    match report.Lint.analysis with
    | None -> true
    | Some orig -> (
        let report' = Lint.run ~card fixed in
        match report'.Lint.analysis with
        | None -> false
        | Some fixed_a ->
            Float.abs ((Lazy.force orig.Lint.gus).Gus.a -. (Lazy.force fixed_a.Lint.gus).Gus.a)
            <= 1e-9 *. (Lazy.force orig.Lint.gus).Gus.a)
  in
  (* 3. apply_fixes reaches a fixpoint: re-running applies nothing *)
  let fixpoint_ok =
    let fixed2, applied2 = Lint.apply_fixes ~card fixed in
    applied2 = [] && Splan.equal fixed fixed2
  in
  skeleton_ok && a_ok && fixpoint_ok

let fix_property =
  QCheck2.Test.make
    ~name:"fixes preserve skeleton, a, and estimator expectation" ~count:400
    plan_gen prop_fixes_preserve_gus

let () =
  Alcotest.run "gus_analysis.absdom"
    [ ( "itv",
        [ Alcotest.test_case "basics" `Quick test_itv_basics;
          Alcotest.test_case "widen" `Quick test_itv_widen;
          QCheck_alcotest.to_alcotest itv_laws ] );
      ( "card",
        [ Alcotest.test_case "basics" `Quick test_card_basics;
          QCheck_alcotest.to_alcotest card_laws ] );
      ("cls", [ Alcotest.test_case "lattice" `Quick test_cls_lattice ]);
      ( "dataflow",
        [ Alcotest.test_case "sampled scan" `Quick test_dataflow_sampled_scan;
          Alcotest.test_case "join + select" `Quick test_dataflow_join_select;
          Alcotest.test_case "total on rejected plans" `Quick
            test_dataflow_total_on_rejected ] );
      ( "cost",
        [ Alcotest.test_case "half-sampled join" `Quick
            test_cost_half_sampled_join;
          Alcotest.test_case "skip-mask verified" `Quick
            test_cost_skip_mask_verified ] );
      ( "fix",
        [ Alcotest.test_case "apply shapes" `Quick test_fix_apply_shapes;
          Alcotest.test_case "apply_all deepest first" `Quick
            test_fix_apply_all_deepest_first;
          QCheck_alcotest.to_alcotest fix_property ] ) ]
