lib/estimator/advisor.mli: Gus_core Gus_relational Gus_stats
