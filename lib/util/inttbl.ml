type t = {
  mutable hash : int array;
  mutable repr : int array;
  mutable mask : int;
  mutable size : int;
  mutable added : bool;
}

let capacity_for hint =
  let target = max 16 (2 * max 0 hint) in
  let c = ref 16 in
  while !c < target do
    c := !c * 2
  done;
  !c

let create ~hint =
  let cap = capacity_for hint in
  { hash = Array.make cap 0;
    repr = Array.make cap (-1);
    mask = cap - 1;
    size = 0;
    added = false }

let capacity t = Array.length t.repr
let size t = t.size
let added t = t.added

let m_rehashes = Gus_obs.Metrics.counter "inttbl.rehashes"

let m_probe_len =
  Gus_obs.Metrics.histogram
    ~buckets:[| 1.; 2.; 3.; 4.; 6.; 8.; 16.; 32.; 64. |]
    "inttbl.probe_len"

let reset t ~hint =
  let cap = capacity_for hint in
  if cap > Array.length t.repr then begin
    Gus_obs.Metrics.incr m_rehashes;
    t.hash <- Array.make cap 0;
    t.repr <- Array.make cap (-1);
    t.mask <- cap - 1
  end
  else Array.fill t.repr 0 (Array.length t.repr) (-1);
  t.size <- 0

(* The probe loop is the hottest few instructions in the moments kernel,
   so the counted variant is a separate copy selected by one flag check
   at entry: when metrics are off the historical loop runs untouched. *)

let find_or_add_plain t ~hash:h ~equal ~repr:i =
  let mask = t.mask in
  let hashes = t.hash and reprs = t.repr in
  let j = ref (h land mask) in
  let result = ref (-1) in
  while !result < 0 do
    let r = Array.unsafe_get reprs !j in
    if r < 0 then begin
      Array.unsafe_set reprs !j i;
      Array.unsafe_set hashes !j h;
      t.size <- t.size + 1;
      t.added <- true;
      result := !j
    end
    else if Array.unsafe_get hashes !j = h && equal r i then begin
      t.added <- false;
      result := !j
    end
    else j := (!j + 1) land mask
  done;
  !result

let find_or_add_counted t ~hash:h ~equal ~repr:i =
  let mask = t.mask in
  let hashes = t.hash and reprs = t.repr in
  let j = ref (h land mask) in
  let probes = ref 1 in
  let result = ref (-1) in
  while !result < 0 do
    let r = Array.unsafe_get reprs !j in
    if r < 0 then begin
      Array.unsafe_set reprs !j i;
      Array.unsafe_set hashes !j h;
      t.size <- t.size + 1;
      t.added <- true;
      result := !j
    end
    else if Array.unsafe_get hashes !j = h && equal r i then begin
      t.added <- false;
      result := !j
    end
    else begin
      incr probes;
      j := (!j + 1) land mask
    end
  done;
  Gus_obs.Metrics.observe m_probe_len (float_of_int !probes);
  !result

(* Inlined so callers pay one flag load and then the same direct call
   the pre-instrumentation code made, not an extra dispatch frame per
   probe. *)
let[@inline] find_or_add t ~hash ~equal ~repr =
  if Gus_obs.Metrics.enabled () then find_or_add_counted t ~hash ~equal ~repr
  else find_or_add_plain t ~hash ~equal ~repr

let repr_at t slot = t.repr.(slot)

let iter t f =
  let reprs = t.repr in
  for j = 0 to Array.length reprs - 1 do
    let r = Array.unsafe_get reprs j in
    if r >= 0 then f j r
  done
