(** Ablations of the two design choices DESIGN.md calls out.

    A1 — the Section-6.3 unbiased Ŷ correction: compare the variance
    estimate with and without it (the "naive" variant plugs the raw sample
    moments Y_S straight into Theorem 1).  The naive variant is badly
    biased at small sampling rates; the correction removes the bias.

    A2 — the Section-7 subsample-size choice (the paper's "10 000 result
    tuples suffice"): sweep the target and report CI-width distortion and
    moment-pass time, locating the knee. *)

val run_correction : ?scale:float -> ?trials:int -> unit -> unit
val run_target_sweep : ?scale:float -> ?trials:int -> unit -> unit
