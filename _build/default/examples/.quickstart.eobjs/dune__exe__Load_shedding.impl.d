examples/load_shedding.ml: Expr Float Gus_core Gus_estimator Gus_online Gus_relational Gus_tpch List Printf Relation
