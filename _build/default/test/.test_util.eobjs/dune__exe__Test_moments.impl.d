test/test_moments.ml: Alcotest Array Expr Float Gus_estimator Gus_relational Gus_util List QCheck2 QCheck_alcotest Relation Schema Value
