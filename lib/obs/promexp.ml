(* Prometheus text-format exposition (version 0.0.4) of the Metrics
   registry.  Pure rendering: no state of its own, no labels beyond the
   histogram [le], nothing fancier than the scrape formats Prometheus
   has parsed since forever. *)

let mangle name =
  let buf = Buffer.create (String.length name + 4) in
  Buffer.add_string buf "gus_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

(* Prometheus prints +Inf (capital I) in [le] labels; finite bounds use
   the shortest round-trip rendering so a scraper sees exactly the bound
   the histogram was declared with. *)
let le_string le =
  if le = infinity then "+Inf" else Obsfmt.float_to_string le

let float_prom v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Obsfmt.float_to_string v

let add_counter buf name c =
  let n = mangle name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s_total counter\n" n);
  Buffer.add_string buf
    (Printf.sprintf "%s_total %d\n" n (Metrics.counter_value c))

let add_gauge buf name g =
  let n = mangle name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
  Buffer.add_string buf
    (Printf.sprintf "%s %s\n" n (float_prom (Metrics.gauge_value g)))

let add_histogram buf name h =
  let n = mangle name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
  List.iter
    (fun (le, cum) ->
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (le_string le) cum))
    (Metrics.bucket_counts h);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" n (float_prom (Metrics.histogram_sum h)));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" n (Metrics.histogram_count h))

let render () =
  let buf = Buffer.create 2048 in
  List.iter (fun (name, c) -> add_counter buf name c) (Metrics.all_counters ());
  List.iter (fun (name, g) -> add_gauge buf name g) (Metrics.all_gauges ());
  List.iter
    (fun (name, h) -> add_histogram buf name h)
    (Metrics.all_histograms ());
  Buffer.contents buf

let write_file path =
  (* Write-then-rename so a scraper reading the file never sees a
     truncated exposition. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (render ());
  close_out oc;
  Sys.rename tmp path
