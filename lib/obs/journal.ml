(* Bounded structured event log for the serving engine — a flight
   recorder.  The Engine appends one event per register / execute /
   batch item from its driving thread; the ring overwrites the oldest
   entry when full so memory stays bounded no matter how long the
   server runs, and an optional sink tees every event to an NDJSON
   stream as it is recorded (the file `gusdb replay` consumes).

   Everything an event carries is chosen to make a journaled execution
   reproducible: dataset name + version pin the data, the SQL text +
   seed/rates/explain/exact overrides pin the request, and the recorded
   estimate/variance/stddev are the bit-exact values to assert against
   on replay.  Floats are rendered with the shortest round-trip form
   (Obsfmt) so export → parse loses nothing. *)

type top = { path : int list; label : string; share : float }

type exec = {
  id : int;
  dataset : string;
  version : int;
  sql : string;
  sql_hash : int64;
  seed : int;
  rates : (string * float) list;
  explain : bool;
  exact : bool;
  cached : bool;
  estimate : float;
  variance : float;
  stddev : float;
  rel_ci : float;
  top : top option;
  wall_ns : int;
  breach : bool;
}

type shed = {
  shed_id : int;
  shed_dataset : string;
  shed_sql_hash : int64;
  shed_overload : float;
  shed_rates : (string * float) list;
}

type event =
  | Register of { id : int; dataset : string; version : int; source : string }
  | Exec of exec
  | Shed of shed

type t = {
  capacity : int;
  ring : event option array;
  mutable head : int; (* next write slot *)
  mutable len : int;
  mutable next : int;
  mutable dropped : int;
  sink : out_channel option;
}

let create ?(capacity = 4096) ?sink () =
  if capacity < 1 then invalid_arg "Journal.create: capacity < 1";
  { capacity;
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    next = 0;
    dropped = 0;
    sink }

let next_id t =
  let id = t.next in
  t.next <- t.next + 1;
  id

let capacity t = t.capacity
let length t = t.len
let dropped t = t.dropped

let events t =
  let start = (t.head - t.len + t.capacity) mod t.capacity in
  List.init t.len (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

(* FNV-1a, 64-bit: tiny, allocation-free, stable across runs — the
   journal only needs a cheap content fingerprint for grouping, not a
   cryptographic hash. *)
let sql_hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let hash_hex h = Printf.sprintf "%016Lx" h

let add_rates buf rates =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (rel, p) ->
      if i > 0 then Buffer.add_char buf ',';
      Obsfmt.add_json_string buf rel;
      Buffer.add_char buf ':';
      Buffer.add_string buf (Obsfmt.float_json p))
    rates;
  Buffer.add_char buf '}'

let to_ndjson ev =
  let buf = Buffer.create 256 in
  (match ev with
  | Register { id; dataset; version; source } ->
      Buffer.add_string buf
        (Printf.sprintf "{\"ev\":\"register\",\"id\":%d,\"dataset\":" id);
      Obsfmt.add_json_string buf dataset;
      Buffer.add_string buf (Printf.sprintf ",\"version\":%d" version);
      (* [source] is the original register request's source object,
         already JSON — embedded verbatim. *)
      Buffer.add_string buf ",\"source\":";
      Buffer.add_string buf source;
      Buffer.add_char buf '}'
  | Exec e ->
      Buffer.add_string buf
        (Printf.sprintf "{\"ev\":\"exec\",\"id\":%d,\"dataset\":" e.id);
      Obsfmt.add_json_string buf e.dataset;
      Buffer.add_string buf (Printf.sprintf ",\"version\":%d,\"sql\":" e.version);
      Obsfmt.add_json_string buf e.sql;
      Buffer.add_string buf ",\"sql_hash\":";
      Obsfmt.add_json_string buf (hash_hex e.sql_hash);
      Buffer.add_string buf (Printf.sprintf ",\"seed\":%d,\"rates\":" e.seed);
      add_rates buf e.rates;
      Buffer.add_string buf
        (Printf.sprintf ",\"explain\":%b,\"exact\":%b,\"cached\":%b" e.explain
           e.exact e.cached);
      Buffer.add_string buf ",\"estimate\":";
      Buffer.add_string buf (Obsfmt.float_json e.estimate);
      Buffer.add_string buf ",\"variance\":";
      Buffer.add_string buf (Obsfmt.float_json e.variance);
      Buffer.add_string buf ",\"stddev\":";
      Buffer.add_string buf (Obsfmt.float_json e.stddev);
      Buffer.add_string buf ",\"rel_ci\":";
      Buffer.add_string buf (Obsfmt.float_json e.rel_ci);
      (match e.top with
      | None -> ()
      | Some { path; label; share } ->
          Buffer.add_string buf ",\"top\":{\"path\":[";
          List.iteri
            (fun i k ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (string_of_int k))
            path;
          Buffer.add_string buf "],\"node\":";
          Obsfmt.add_json_string buf label;
          Buffer.add_string buf ",\"share\":";
          Buffer.add_string buf (Obsfmt.float_json share);
          Buffer.add_char buf '}');
      Buffer.add_string buf
        (Printf.sprintf ",\"wall_ns\":%d,\"breach\":%b}" e.wall_ns e.breach)
  | Shed s ->
      Buffer.add_string buf
        (Printf.sprintf "{\"ev\":\"shed\",\"id\":%d,\"dataset\":" s.shed_id);
      Obsfmt.add_json_string buf s.shed_dataset;
      Buffer.add_string buf ",\"sql_hash\":";
      Obsfmt.add_json_string buf (hash_hex s.shed_sql_hash);
      Buffer.add_string buf ",\"overload\":";
      Buffer.add_string buf (Obsfmt.float_json s.shed_overload);
      Buffer.add_string buf ",\"rates\":";
      add_rates buf s.shed_rates;
      Buffer.add_char buf '}');
  Buffer.contents buf

let record t ev =
  if t.len = t.capacity then t.dropped <- t.dropped + 1
  else t.len <- t.len + 1;
  t.ring.(t.head) <- Some ev;
  t.head <- (t.head + 1) mod t.capacity;
  match t.sink with
  | None -> ()
  | Some oc ->
      output_string oc (to_ndjson ev);
      output_char oc '\n';
      flush oc

let export t oc =
  List.iter
    (fun ev ->
      output_string oc (to_ndjson ev);
      output_char oc '\n')
    (events t)

(* --- Accuracy SLOs ------------------------------------------------- *)

type slo = { max_rel_ci : float option; max_latency_ms : float option }

let no_slo = { max_rel_ci = None; max_latency_ms = None }

let rel_ci_half_width ~estimate ~stddev =
  if stddev = 0. then 0. else 1.96 *. stddev /. Float.abs estimate

let breach slo ~rel_ci ~wall_ns =
  (match slo.max_rel_ci with
  | Some m -> (not (Float.is_nan rel_ci)) && rel_ci > m
  | None -> false)
  || match slo.max_latency_ms with
     | Some m -> float_of_int wall_ns > m *. 1e6
     | None -> false

(* --- Rate limiter for breach logging ------------------------------- *)

type limiter = {
  interval_ns : int;
  mutable last_ns : int;
  mutable suppressed : int;
}

let limiter ?(interval_ns = 1_000_000_000) () =
  (* min_int/2, not min_int: the first [now_ns - last_ns] must not
     overflow, and monotonic-clock values stay far below 2^61. *)
  { interval_ns; last_ns = min_int / 2; suppressed = 0 }

let permit l ~now_ns =
  if now_ns - l.last_ns >= l.interval_ns then begin
    let missed = l.suppressed in
    l.last_ns <- now_ns;
    l.suppressed <- 0;
    Some missed
  end
  else begin
    l.suppressed <- l.suppressed + 1;
    None
  end
