exception Error of { pos : int; message : string }

let error pos fmt = Printf.ksprintf (fun message -> raise (Error { pos; message })) fmt

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some '-' when !pos + 1 < n && input.[!pos + 1] = '-' ->
        (* SQL line comment *)
        while !pos < n && input.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let lex_number () =
    let start = !pos in
    let is_float = ref false in
    while
      !pos < n
      && (is_digit input.[!pos]
         || input.[!pos] = '.'
         || input.[!pos] = 'e' || input.[!pos] = 'E'
         || ((input.[!pos] = '+' || input.[!pos] = '-')
            && !pos > start
            && (input.[!pos - 1] = 'e' || input.[!pos - 1] = 'E')))
    do
      if not (is_digit input.[!pos]) then is_float := true;
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> emit (Token.FLOAT f)
      | None -> error start "malformed number %s" text
    else
      match int_of_string_opt text with
      | Some i -> emit (Token.INT i)
      | None -> error start "malformed number %s" text
  in
  let lex_ident () =
    let start = !pos in
    while !pos < n && is_ident_char input.[!pos] do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match Token.keyword_of_string text with
    | Some kw -> emit kw
    | None -> emit (Token.IDENT (String.lowercase_ascii text))
  in
  let lex_string () =
    let start = !pos in
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error start "unterminated string literal"
      else if input.[!pos] = '\'' then
        if !pos + 1 < n && input.[!pos + 1] = '\'' then begin
          Buffer.add_char buf '\'';
          pos := !pos + 2;
          go ()
        end
        else advance ()
      else begin
        Buffer.add_char buf input.[!pos];
        advance ();
        go ()
      end
    in
    go ();
    emit (Token.STRING (Buffer.contents buf))
  in
  let lex_symbol c =
    let two tok = advance (); advance (); emit tok in
    let one tok = advance (); emit tok in
    let next = if !pos + 1 < n then Some input.[!pos + 1] else None in
    match (c, next) with
    | '<', Some '=' -> two Token.LE
    | '<', Some '>' -> two Token.NEQ
    | '>', Some '=' -> two Token.GE
    | '!', Some '=' -> two Token.NEQ
    | '<', _ -> one Token.LT
    | '>', _ -> one Token.GT
    | '=', _ -> one Token.EQ
    | '(', _ -> one Token.LPAREN
    | ')', _ -> one Token.RPAREN
    | ',', _ -> one Token.COMMA
    | ';', _ -> one Token.SEMI
    | '*', _ -> one Token.STAR
    | '+', _ -> one Token.PLUS
    | '-', _ -> one Token.MINUS
    | '/', _ -> one Token.SLASH
    | _ -> error !pos "unexpected character %C" c
  in
  let rec loop () =
    skip_ws ();
    match peek () with
    | None -> ()
    | Some c ->
        if is_digit c then lex_number ()
        else if is_ident_start c then lex_ident ()
        else if c = '\'' then lex_string ()
        else lex_symbol c;
        loop ()
  in
  loop ();
  emit Token.EOF;
  List.rev !tokens
