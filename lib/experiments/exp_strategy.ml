module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Gus = Gus_core.Gus
module Sbox = Gus_estimator.Sbox
module Summary = Gus_stats.Summary
module Tablefmt = Gus_util.Tablefmt

let run ?(scale = 1.0) ?(trials = 150) () =
  Harness.section "E7"
    "Predicting alternative designs' variance from one sample's Y-hat moments";
  let db = Harness.db_cached ~scale in
  (* The observed sample: B(10%) x B(20%). *)
  let observed_plan = Harness.join2_plan ~p_lineitem:0.25 ~p_orders:0.5 in
  let analysis = Rewrite.analyze_db db observed_plan in
  let rng = Gus_util.Rng.create 2025 in
  let sample = Splan.exec db rng observed_plan in
  let report =
    Sbox.of_relation ~gus:(Lazy.force analysis.Rewrite.gus) ~f:Harness.revenue_f sample
  in
  let y_hat = report.Sbox.y_hat in
  Printf.printf
    "observed design: B(25%%) x B(50%%), %d result tuples; Y-hat moments \
     estimated once from this sample.\n\n"
    report.Sbox.n_tuples;
  let candidates =
    [ ("B(5%) x B(20%)", Harness.join2_plan ~p_lineitem:0.05 ~p_orders:0.2);
      ("B(10%) x B(10%)", Harness.join2_plan ~p_lineitem:0.1 ~p_orders:0.1);
      ("B(20%) x B(20%)", Harness.join2_plan ~p_lineitem:0.2 ~p_orders:0.2);
      ("B(10%) x WOR(1500)",
       Splan.Equi_join
         { left =
             Splan.Sample (Gus_sampling.Sampler.Bernoulli 0.1, Splan.Scan "lineitem");
           right = Splan.Sample (Gus_sampling.Sampler.Wor 1500, Splan.Scan "orders");
           left_key = Gus_relational.Expr.col "l_orderkey";
           right_key = Gus_relational.Expr.col "o_orderkey" }) ]
  in
  let t =
    Tablefmt.create
      ~headers:[ "candidate design"; "predicted sd"; "actual MC sd"; "pred/actual" ]
  in
  List.iter
    (fun (label, plan) ->
      let cand_gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
      let predicted = sqrt (Float.max 0.0 (Gus.variance cand_gus ~y:y_hat)) in
      let stats = Harness.trials ~trials ~seed:4242 db plan ~f:Harness.revenue_f in
      let actual = sqrt stats.Harness.mc_variance in
      Tablefmt.add_row t
        [ label; Harness.fcell predicted; Harness.fcell actual;
          Printf.sprintf "%.2f" (predicted /. actual) ])
    candidates;
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: pred/actual ~ 1 for every candidate - one sample \
     ranks all designs without running them.\n"
