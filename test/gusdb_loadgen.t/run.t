Closed-loop load generation: `gusdb loadgen` spawns an in-process TCP
server (same admission-control flags as `gusdb serve --tcp`), drives it
with paced client connections, and reports latency quantiles, achieved
throughput and the shed fraction.  Latencies and counts vary run to
run, so this transcript checks the stable facts: zero protocol errors,
honest shed marking under a pinned overload factor, and the bench-row
merge.

A clean run: every response ok, nothing shed, nothing rejected.

  $ gusdb loadgen --clients 2 --qps 30 --duration 1 -s 0.005 --json > clean.json
  $ grep -c '"ok":true' clean.json
  1
  $ grep -o '"errors":0' clean.json
  "errors":0
  $ grep -o '"shed":0' clean.json
  "shed":0
  $ grep -o '"rejected":0' clean.json
  "rejected":0

--force-shed pins the admission controller's overload factor, so every
execute is answered from degraded Section-8 sampling rates and marked
shed — still ok:true, still zero errors, shed fraction exactly 1:

  $ gusdb loadgen --clients 2 --qps 30 --duration 1 -s 0.005 --force-shed 4.0 --json > shed.json
  $ grep -o '"errors":0' shed.json
  "errors":0
  $ grep -o '"shed_fraction":1' shed.json
  "shed_fraction":1

The human rendering leads with the run shape and judges the p99 SLO
when one was given:

  $ gusdb loadgen --clients 2 --qps 30 --duration 1 -s 0.005 --slo-p99-ms 5000 | head -1 | sed -E 's/:[0-9]+$/:PORT/'
  loadgen: 2 client(s), target 30 req/s for 1 s against 127.0.0.1:PORT
  $ gusdb loadgen --clients 2 --qps 30 --duration 1 -s 0.005 --slo-p99-ms 5000 | tail -1
  p99 SLO (5000 ms) met

--bench-out merges a service/loadgen-* row into a
BENCH_moments.json-format file; re-running replaces the stale row
instead of appending a duplicate:

  $ gusdb loadgen --clients 2 --qps 30 --duration 1 -s 0.005 --bench-out bench.json > /dev/null
  $ gusdb loadgen --clients 2 --qps 30 --duration 1 -s 0.005 --bench-out bench.json > /dev/null
  $ grep -c 'service/loadgen-2x30' bench.json
  1
  $ grep -c 'p99_ms' bench.json
  1
  $ head -2 bench.json
  {
    "schema": "gus-bench-moments/v2",
