examples/progressive.mli:
