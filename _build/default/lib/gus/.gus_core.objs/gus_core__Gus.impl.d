lib/gus/gus.ml: Array Float Format Gus_util Hashtbl Printf String
