(** E6 — "database as a sample" (Section 8): view every base relation as
    a 99% Bernoulli sample of a hypothetical complete database and use the
    Theorem-1 variance as a robustness score — how much would the answer
    move if 1% of the tuples were lost?  Skew-dominated aggregates come out
    far more fragile than uniform ones at identical totals. *)

val run : ?scale:float -> unit -> unit

val robustness_cv :
  Gus_relational.Database.t ->
  Gus_core.Splan.t ->
  f:Gus_relational.Expr.t ->
  loss:float ->
  float
(** Coefficient of variation (σ/µ) of the answer under i.i.d. tuple loss
    at rate [loss], computed exactly from the full data's y_S moments. *)
