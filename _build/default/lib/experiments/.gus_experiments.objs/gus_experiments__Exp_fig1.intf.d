lib/experiments/exp_fig1.mli: Gus_sampling
