open Gus_relational

type source =
  | Tpch of { scale : float; seed : int }
  | Skewed of { scale : float; seed : int; part_skew : float; price_skew : float }
  | Csv_dir of string
  | Snapshot of string
  | In_memory of string

let source_to_string = function
  | Tpch { scale; seed } -> Printf.sprintf "tpch(scale=%g,seed=%d)" scale seed
  | Skewed { scale; seed; part_skew; price_skew } ->
      Printf.sprintf "synthetic(scale=%g,seed=%d,part_skew=%g,price_skew=%g)"
        scale seed part_skew price_skew
  | Csv_dir dir -> Printf.sprintf "csv(%s)" dir
  | Snapshot path -> Printf.sprintf "snapshot(%s)" path
  | In_memory what -> Printf.sprintf "memory(%s)" what

(* Machine-readable source rendering, field-compatible with the serving
   protocol's [register] request (Protocol.source_of_request parses it
   back) — what the journal stores so `gusdb replay` can rebuild the
   dataset.  [In_memory] has no build recipe; replay rejects it unless
   the dataset is already present. *)
let source_json src =
  let num v = Json.Num v in
  Json.to_string
    (match src with
    | Tpch { scale; seed } ->
        Json.Obj
          [ ("source", Json.Str "tpch");
            ("scale", num scale);
            ("seed", num (float_of_int seed)) ]
    | Skewed { scale; seed; part_skew; price_skew } ->
        Json.Obj
          [ ("source", Json.Str "synthetic");
            ("scale", num scale);
            ("seed", num (float_of_int seed));
            ("part_skew", num part_skew);
            ("price_skew", num price_skew) ]
    | Csv_dir dir ->
        Json.Obj [ ("source", Json.Str "csv"); ("dir", Json.Str dir) ]
    | Snapshot path ->
        Json.Obj [ ("source", Json.Str "snapshot"); ("path", Json.Str path) ]
    | In_memory what ->
        Json.Obj [ ("source", Json.Str "memory"); ("what", Json.Str what) ])

type entry = {
  dataset : string;
  version : int;
  source : source;
  db : Database.t;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable hooks : (string -> unit) list;  (* reverse registration order *)
}

let create () = { entries = Hashtbl.create 8; hooks = [] }
let on_mutate t hook = t.hooks <- hook :: t.hooks
let fire t name = List.iter (fun hook -> hook name) (List.rev t.hooks)

let register t ~name ~source db =
  let version =
    match Hashtbl.find_opt t.entries name with
    | Some prev -> prev.version + 1
    | None -> 1
  in
  let entry = { dataset = name; version; source; db } in
  Hashtbl.replace t.entries name entry;
  fire t name;
  entry

(* The five generator relations, for CSV loading (written by `gusdb gen`). *)
let tpch_schemas =
  [ ("customer", Gus_tpch.Tpch.customer_schema);
    ("orders", Gus_tpch.Tpch.orders_schema);
    ("lineitem", Gus_tpch.Tpch.lineitem_schema);
    ("part", Gus_tpch.Tpch.part_schema);
    ("supplier", Gus_tpch.Tpch.supplier_schema) ]

let build = function
  | Tpch { scale; seed } -> Gus_tpch.Tpch.generate ~seed ~scale ()
  | Skewed { scale; seed; part_skew; price_skew } ->
      let config =
        { Gus_tpch.Tpch.default_config with part_skew; price_skew }
      in
      Gus_tpch.Tpch.generate ~config ~seed ~scale ()
  | Csv_dir dir ->
      let db = Database.create () in
      List.iter
        (fun (name, schema) ->
          let path = Filename.concat dir (name ^ ".csv") in
          if Sys.file_exists path then
            Database.add db (Csv.load ~path ~name schema))
        tpch_schemas;
      if Database.names db = [] then
        failwith (Printf.sprintf "no known CSVs found in %s" dir);
      db
  | Snapshot path -> Snapshot.load ~path
  | In_memory _ ->
      invalid_arg "Catalog.load: In_memory sources have no build recipe"

let load t ~name ~source = register t ~name ~source (build source)
let find t name = Hashtbl.find_opt t.entries name

exception Unknown_dataset of string

let find_exn t name =
  match find t name with Some e -> e | None -> raise (Unknown_dataset name)

let remove t name =
  let was = Hashtbl.mem t.entries name in
  if was then begin
    Hashtbl.remove t.entries name;
    fire t name
  end;
  was

let names t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> compare a.dataset b.dataset)
