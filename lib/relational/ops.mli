(** Physical relational operators over materialized relations.

    Every operator propagates lineage per Section 6.2 of the paper:
    selection/projection keep it, joins concatenate it.  Inputs are never
    mutated. *)

val select : ?pool:Gus_util.Pool.t -> ?par_threshold:int -> Expr.t -> Relation.t -> Relation.t

val project :
  ?pool:Gus_util.Pool.t ->
  ?par_threshold:int ->
  (string * Expr.t) list ->
  Relation.t ->
  Relation.t
(** [(output name, expression)] pairs; lineage preserved.

    For both operators [?pool] fans the per-tuple work across a domain
    pool once the input has at least [?par_threshold] rows (default
    {!Gus_util.Pool.default_par_threshold}); the per-chunk outputs are
    stitched back in chunk order, so the result is identical — same
    tuples, same order — to the sequential scan for any lane count.
    Without [?pool] the scan is sequential. *)

val project_schema : (string * Expr.t) list -> Schema.t -> Schema.t
(** The output schema {!project} derives for [fields] over an input
    [schema] (column types inferred from expression shape).  Exposed for
    streaming executors that must know the post-projection schema without
    materializing anything. *)

val select_indices :
  ?pool:Gus_util.Pool.t ->
  ?par_threshold:int ->
  (int -> bool) ->
  int ->
  int array * int
(** [select_indices ?pool keep n] is the ascending list of indices in
    [0, n) for which [keep] holds, as [(buffer, count)] — the columnar
    predicate kernel.  With a live multi-lane pool and [n >=
    par_threshold] the range is cut into {!Gus_util.Pool.chunks},
    evaluated in parallel, and stitched back in chunk order, so the
    result never depends on the lane count.  [keep] must be pure. *)

val chunked_scan :
  ?pool:Gus_util.Pool.t ->
  ?par_threshold:int ->
  Relation.t ->
  Relation.t ->
  ((Tuple.t -> unit) -> Tuple.t -> unit) ->
  unit
(** [chunked_scan ?pool rel out body] appends to [out] whatever
    [body push tup] pushes, for every tuple of [rel] in order — the
    fan-out/stitch engine behind {!select}/{!project}, exposed for other
    per-tuple operators (e.g. samplers).  [body] is called from pool
    lanes: its closures must be pure. *)

val cross : Relation.t -> Relation.t -> Relation.t

val equi_join : left_key:Expr.t -> right_key:Expr.t -> Relation.t -> Relation.t -> Relation.t
(** Hash join on key equality (Null keys never match). *)

val theta_join : Expr.t -> Relation.t -> Relation.t -> Relation.t
(** Nested loops with an arbitrary predicate over the concatenated schema. *)

val union_all : Relation.t -> Relation.t -> Relation.t
(** Schemas and lineage schemas must match. *)

val union_lineage : Relation.t -> Relation.t -> Relation.t
(** Set union by lineage: duplicates (same lineage) kept once — the
    duplicate-elimination the paper's Prop. 7 (GUS Union) requires. *)

val distinct : Relation.t -> Relation.t
(** Distinct by values (not lineage); keeps the first witness. *)

type agg = Sum of Expr.t | Count | Avg of Expr.t | Min of Expr.t | Max of Expr.t

val aggregate : agg -> Relation.t -> float
(** Whole-relation aggregate; SUM/AVG/MIN/MAX read the expression as float
    with Null → skipped.  MIN/MAX on an empty input raise
    [Invalid_argument]. *)

val group_by : keys:Expr.t list -> aggs:(string * agg) list -> Relation.t -> Relation.t
(** Output columns: one per key (named k0, k1, …) then one per aggregate.
    Output lineage is empty (grouped rows have no single lineage). *)
