(** A row: values plus lineage. *)

type t = {
  values : Value.t array;
  lineage : Lineage.t;
}

val make : Value.t array -> Lineage.t -> t
val value : t -> int -> Value.t
val concat : t -> t -> t
(** Values and lineage both concatenated (join output). *)

val with_values : t -> Value.t array -> t
(** Same lineage, new values (projection output). *)

val pp : Format.formatter -> t -> unit
