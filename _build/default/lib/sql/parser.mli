(** Recursive-descent parser. *)

exception Error of string

val parse : string -> Ast.query
(** Lex + parse one query.  Raises {!Error} (or [Lexer.Error]) with a
    human-readable message on malformed input. *)

val parse_expr : string -> Gus_relational.Expr.t
(** Parse a standalone scalar expression (used by tests and the CLI). *)
