module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Moments = Gus_estimator.Moments
module Summary = Gus_stats.Summary
module Tablefmt = Gus_util.Tablefmt
open Gus_relational

let run ?(scale = 4.0) ?(trials = 30) ?(target = 10000) () =
  Harness.section "E5"
    "Section 7 - variance from a ~10k-tuple lineage-keyed subsample";
  let db = Harness.db_cached ~scale in
  let plan = Harness.join2_plan ~p_lineitem:0.4 ~p_orders:0.5 in
  let analysis = Rewrite.analyze_db db plan in
  let gus = (Lazy.force analysis.Rewrite.gus) in
  let width_ratio = Summary.create () in
  let speedup = Summary.create () in
  let sample_sizes = Summary.create () in
  let sub_sizes = Summary.create () in
  for t = 1 to trials do
    let rng = Gus_util.Rng.create (31 + t) in
    let sample = Splan.exec db rng plan in
    Summary.add sample_sizes (float_of_int (Relation.cardinality sample));
    let full, full_s =
      Harness.time (fun () -> Sbox.of_relation ~gus ~f:Harness.revenue_f sample)
    in
    let sub, sub_s =
      Harness.time (fun () ->
          Sbox.subsampled ~gus ~f:Harness.revenue_f ~target ~seed:(100 + t)
            sample)
    in
    Summary.add sub_sizes (float_of_int sub.Sbox.n_tuples);
    if full.Sbox.stddev > 0.0 then
      Summary.add width_ratio (sub.Sbox.stddev /. full.Sbox.stddev);
    (* The estimate pass is shared; compare the moment-machinery time. *)
    if sub_s > 0.0 then Summary.add speedup (full_s /. sub_s)
  done;
  let t = Tablefmt.create ~headers:[ "quantity"; "value" ] in
  Tablefmt.add_row t
    [ "mean full-sample result tuples"; Printf.sprintf "%.0f" (Summary.mean sample_sizes) ];
  Tablefmt.add_row t
    [ Printf.sprintf "mean subsample tuples (target %d)" target;
      Printf.sprintf "%.0f" (Summary.mean sub_sizes) ];
  Tablefmt.add_row t
    [ "CI width ratio (subsampled/full), mean";
      Printf.sprintf "%.3f" (Summary.mean width_ratio) ];
  Tablefmt.add_row t
    [ "CI width ratio, min..max";
      Printf.sprintf "%.3f .. %.3f" (Summary.min width_ratio)
        (Summary.max width_ratio) ];
  Tablefmt.add_row t
    [ "moment-pass speedup (mean)"; Printf.sprintf "%.1fx" (Summary.mean speedup) ];
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: width ratio ~ 1 (the subsampled moments barely move \
     the interval) with a multi-x speedup of the moment pass.\n"
