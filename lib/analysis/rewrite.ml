module Sampler = Gus_sampling.Sampler
module Gus = Gus_core.Gus
module Symalg = Gus_core.Symalg
module Splan = Gus_core.Splan
module D = Diagnostic

exception Unsupported of string

let render_errors errs =
  String.concat "\n"
    (List.map
       (fun d ->
         Printf.sprintf "%s: %s [%s]" (D.code_id d.D.code) d.D.message
           (D.citation d.D.code))
       errs)

type result = {
  skeleton : Splan.t;
  sym : Symalg.t;
  gus : Gus.t Lazy.t;
  steps : (string * Symalg.t) list;
}

let dense r = Lazy.force r.gus

let sampler_gus ~card ~over ~input sampler =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let gus =
    Lint.translate_sampler ~card ~over ~input ~path:[]
      ~node:(Sampler.to_string sampler) ~emit sampler
  in
  let errs =
    List.filter (fun d -> D.severity d = D.Error) (List.rev !diags)
  in
  match (errs, gus) with
  | [], Some g -> g
  | [], None ->
      (* Unreachable: translation fails only alongside an Error. *)
      raise (Unsupported "sampler translation failed")
  | errs, _ -> raise (Unsupported (render_errors errs))

let analyze ?coeff_engine ~card plan =
  let report = Lint.run ?engine:coeff_engine ~card plan in
  match (Lint.errors report, report.Lint.analysis) with
  | [], Some a ->
      { skeleton = a.Lint.skeleton;
        sym = a.Lint.sym;
        gus = a.Lint.gus;
        steps = a.Lint.steps }
  | [], None ->
      (* Unreachable: the linter produces an analysis iff it found no
         errors. *)
      raise (Unsupported "plan is not GUS-analyzable")
  | errs, _ -> raise (Unsupported (render_errors errs))

let analyze_db ?coeff_engine db plan =
  analyze ?coeff_engine plan
    ~card:(fun r ->
      Gus_relational.Relation.cardinality (Gus_relational.Database.find db r))
