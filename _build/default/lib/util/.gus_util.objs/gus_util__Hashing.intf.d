lib/util/hashing.mli:
