test/test_rewrite.ml: Alcotest Array Database Expr Format Gus_core Gus_relational Gus_sampling Gus_tpch Gus_util Lineage List Relation Schema String Value
