module Subset = Gus_util.Subset
module Inttbl = Gus_util.Inttbl
module Pool = Gus_util.Pool
open Gus_relational

module Key = struct
  type t = int array

  (* Monomorphic: polymorphic compare on int arrays walks the generic
     structural-equality interpreter per element. *)
  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i =
      i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  let hash (l : t) =
    let h = ref (Gus_util.Hashing.mix64 23L) in
    Array.iter (fun id -> h := Gus_util.Hashing.combine !h (Int64.of_int id)) l;
    Int64.to_int !h land max_int
end

module Tbl = Hashtbl.Make (Key)

let check_lengths ~what ~n_rels ~lineage_of pairs =
  if n_rels > Subset.max_universe then
    invalid_arg (Printf.sprintf "Moments.%s: too many relations" what);
  Array.iter
    (fun p ->
      if Array.length (lineage_of p) <> n_rels then
        invalid_arg (Printf.sprintf "Moments.%s: lineage length mismatch" what))
    pairs

(* ------------------------------------------------------------------ *)
(* Naive reference implementation (the original seed code): one fresh
   restricted-lineage key array per tuple per subset, one polymorphic-ish
   hashtable per subset.  Retained as the oracle the optimized kernel is
   property-tested against, and as the "before" side of the
   BENCH_moments.json trajectory. *)

let of_pairs_naive ~n_rels pairs =
  check_lengths ~what:"of_pairs" ~n_rels ~lineage_of:fst pairs;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  let grand = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 pairs in
  y.(Subset.empty) <- grand *. grand;
  for s = 1 to nmasks - 1 do
    let positions = Subset.elements s in
    let groups = Tbl.create (max 64 (Array.length pairs / 4)) in
    Array.iter
      (fun (l, f) ->
        let key = Lineage.restrict l ~positions in
        match Tbl.find_opt groups key with
        | Some sum -> Tbl.replace groups key (sum +. f)
        | None -> Tbl.add groups key f)
      pairs;
    let acc = ref 0.0 in
    Tbl.iter (fun _ sum -> acc := !acc +. (sum *. sum)) groups;
    y.(s) <- !acc
  done;
  y

let bilinear_of_pairs_naive ~n_rels pairs =
  check_lengths ~what:"bilinear_of_pairs" ~n_rels
    ~lineage_of:(fun (l, _, _) -> l)
    pairs;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  let grand_f = Array.fold_left (fun acc (_, f, _) -> acc +. f) 0.0 pairs in
  let grand_g = Array.fold_left (fun acc (_, _, g) -> acc +. g) 0.0 pairs in
  y.(Subset.empty) <- grand_f *. grand_g;
  for s = 1 to nmasks - 1 do
    let positions = Subset.elements s in
    let groups = Tbl.create (max 64 (Array.length pairs / 4)) in
    Array.iter
      (fun (l, f, g) ->
        let key = Lineage.restrict l ~positions in
        match Tbl.find_opt groups key with
        | Some (sf, sg) -> Tbl.replace groups key (sf +. f, sg +. g)
        | None -> Tbl.add groups key (f, g))
      pairs;
    let acc = ref 0.0 in
    Tbl.iter (fun _ (sf, sg) -> acc := !acc +. (sf *. sg)) groups;
    y.(s) <- !acc
  done;
  y

(* ------------------------------------------------------------------ *)
(* Optimized kernel.

   Each subset pass is a group-by on the lineage positions in the mask.
   Instead of materializing a restricted key array per tuple, we hash the
   masked positions of the original lineage in place and resolve collisions
   by comparing lineages under the mask, using the open-addressing
   {!Gus_util.Inttbl} keyed by tuple index.  All scratch (table, payload
   sums, position buffer) is allocated once per pass and reused across
   subsets; the per-tuple inner loop allocates nothing.

   Subset passes are independent — they only write the disjoint y.(s)
   cells — so above {!default_par_threshold} tuples they fan out across a
   domain pool, each lane carrying its own scratch. *)

let default_par_threshold = 4096

(* SplitMix64-flavoured finalizer on native ints; constants truncated to
   62 bits.  Only collision *rate* depends on this — correctness rests on
   the masked equality check. *)
let[@inline] mix h k =
  let h = (h lxor k) * 0x3F58476D1CE4E5B9 in
  let h = (h lxor (h lsr 29)) * 0x14D049BB133111EB in
  h lxor (h lsr 32)

let[@inline] masked_hash (l : int array) (pos : int array) npos =
  let h = ref 0x9E3779B97F4A7C1 in
  for k = 0 to npos - 1 do
    h := mix !h (Array.unsafe_get l (Array.unsafe_get pos k))
  done;
  !h land max_int

let[@inline] masked_equal (la : int array) (lb : int array) (pos : int array)
    npos =
  let rec go k =
    k >= npos
    ||
    let p = Array.unsafe_get pos k in
    Array.unsafe_get la p = Array.unsafe_get lb p && go (k + 1)
  in
  go 0

(* Write the element indices of mask [s] into [pos]; returns how many. *)
let fill_positions (pos : int array) s =
  let n = ref 0 in
  let m = ref s and p = ref 0 in
  while !m <> 0 do
    if !m land 1 = 1 then begin
      pos.(!n) <- !p;
      incr n
    end;
    incr p;
    m := !m lsr 1
  done;
  !n

(* Run [body] over subset masks [1, nmasks): sequentially, or fanned out
   over [pool] when the input is large enough to amortize the domains.
   [body lo hi] must allocate its own scratch (one set per lane). *)
let run_passes ?pool ~par_threshold ~n_pairs ~nmasks body =
  let lanes =
    match pool with Some p -> Pool.size p | None -> Pool.recommended_size ()
  in
  if n_pairs < par_threshold || lanes <= 1 || nmasks - 1 <= 1 then
    body 1 nmasks
  else
    let p = match pool with Some p -> p | None -> Pool.default () in
    Pool.run_chunks p ~lo:1 ~hi:nmasks body

let of_pairs ?pool ?(par_threshold = default_par_threshold) ~n_rels pairs =
  check_lengths ~what:"of_pairs" ~n_rels ~lineage_of:fst pairs;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  let m = Array.length pairs in
  let grand = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 pairs in
  y.(Subset.empty) <- grand *. grand;
  if nmasks > 1 && m > 0 then
    run_passes ?pool ~par_threshold ~n_pairs:m ~nmasks (fun lo hi ->
        let tbl = Inttbl.create ~hint:m in
        let sums = Array.make (Inttbl.capacity tbl) 0.0 in
        let pos = Array.make n_rels 0 in
        let npos = ref 0 in
        let equal i j =
          let li, _ = Array.unsafe_get pairs i in
          let lj, _ = Array.unsafe_get pairs j in
          masked_equal li lj pos !npos
        in
        for s = lo to hi - 1 do
          npos := fill_positions pos s;
          Inttbl.reset tbl ~hint:m;
          for i = 0 to m - 1 do
            let l, f = Array.unsafe_get pairs i in
            let slot =
              Inttbl.find_or_add tbl ~hash:(masked_hash l pos !npos) ~equal
                ~repr:i
            in
            if Inttbl.added tbl then Array.unsafe_set sums slot f
            else
              Array.unsafe_set sums slot (Array.unsafe_get sums slot +. f)
          done;
          let acc = ref 0.0 in
          Inttbl.iter tbl (fun slot _ ->
              let v = Array.unsafe_get sums slot in
              acc := !acc +. (v *. v));
          y.(s) <- !acc
        done);
  y

let bilinear_of_pairs ?pool ?(par_threshold = default_par_threshold) ~n_rels
    pairs =
  check_lengths ~what:"bilinear_of_pairs" ~n_rels
    ~lineage_of:(fun (l, _, _) -> l)
    pairs;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  let m = Array.length pairs in
  let grand_f = Array.fold_left (fun acc (_, f, _) -> acc +. f) 0.0 pairs in
  let grand_g = Array.fold_left (fun acc (_, _, g) -> acc +. g) 0.0 pairs in
  y.(Subset.empty) <- grand_f *. grand_g;
  if nmasks > 1 && m > 0 then
    run_passes ?pool ~par_threshold ~n_pairs:m ~nmasks (fun lo hi ->
        let tbl = Inttbl.create ~hint:m in
        let sums_f = Array.make (Inttbl.capacity tbl) 0.0 in
        let sums_g = Array.make (Inttbl.capacity tbl) 0.0 in
        let pos = Array.make n_rels 0 in
        let npos = ref 0 in
        let equal i j =
          let li, _, _ = Array.unsafe_get pairs i in
          let lj, _, _ = Array.unsafe_get pairs j in
          masked_equal li lj pos !npos
        in
        for s = lo to hi - 1 do
          npos := fill_positions pos s;
          Inttbl.reset tbl ~hint:m;
          for i = 0 to m - 1 do
            let l, f, g = Array.unsafe_get pairs i in
            let slot =
              Inttbl.find_or_add tbl ~hash:(masked_hash l pos !npos) ~equal
                ~repr:i
            in
            if Inttbl.added tbl then begin
              Array.unsafe_set sums_f slot f;
              Array.unsafe_set sums_g slot g
            end
            else begin
              Array.unsafe_set sums_f slot (Array.unsafe_get sums_f slot +. f);
              Array.unsafe_set sums_g slot (Array.unsafe_get sums_g slot +. g)
            end
          done;
          let acc = ref 0.0 in
          Inttbl.iter tbl (fun slot _ ->
              acc :=
                !acc
                +. (Array.unsafe_get sums_f slot *. Array.unsafe_get sums_g slot));
          y.(s) <- !acc
        done);
  y

let bilinear_of_relation ?pool ~f ~g rel =
  let open Gus_relational in
  let ef = Expr.bind_float rel.Relation.schema f in
  let eg = Expr.bind_float rel.Relation.schema g in
  let out = Array.make (Relation.cardinality rel) ([||], 0.0, 0.0) in
  let i = ref 0 in
  Relation.iter
    (fun tup ->
      out.(!i) <- (tup.Tuple.lineage, ef tup, eg tup);
      incr i)
    rel;
  bilinear_of_pairs ?pool
    ~n_rels:(Array.length rel.Relation.lineage_schema)
    out

let pairs_of_relation ~f rel =
  let eval = Expr.bind_float rel.Relation.schema f in
  let out = Array.make (Relation.cardinality rel) ([||], 0.0) in
  let i = ref 0 in
  Relation.iter
    (fun tup ->
      out.(!i) <- (tup.Tuple.lineage, eval tup);
      incr i)
    rel;
  out

let of_relation ?pool ~f rel =
  of_pairs ?pool
    ~n_rels:(Array.length rel.Relation.lineage_schema)
    (pairs_of_relation ~f rel)

let total pairs = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 pairs
