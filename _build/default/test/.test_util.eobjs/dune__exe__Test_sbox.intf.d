test/test_sbox.mli:
