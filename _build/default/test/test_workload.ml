(* Tests for the TPC-H-derived workload corpus: both variants of every
   query parse, plan and run; sampled estimates respect their Chebyshev
   intervals; the exact variant has zero variance. *)

module Workload = Gus_experiments.Workload
module Runner = Gus_sql.Runner
module Interval = Gus_stats.Interval

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let db = lazy (Gus_tpch.Tpch.generate ~seed:20130630 ~scale:0.3 ())

let test_corpus_shape () =
  check_int "six queries" 6 (List.length Workload.all);
  List.iter
    (fun q ->
      check_bool (q.Workload.id ^ " sampled has TABLESAMPLE") true
        (String.length q.Workload.sampled > String.length q.Workload.exact);
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check_bool (q.Workload.id ^ " exact is sample-free") false
        (contains q.Workload.exact "TABLESAMPLE");
      check_bool (q.Workload.id ^ " sampled keeps the marker out") false
        (contains q.Workload.sampled "[SAMPLE:"))
    Workload.all;
  check_bool "find W3" true (Workload.find "w3" <> None);
  check_bool "find unknown" true (Workload.find "W9" = None)

let test_exact_variant_zero_variance () =
  let db = Lazy.force db in
  List.iter
    (fun q ->
      let result = Runner.run db q.Workload.exact in
      List.iter
        (fun cell ->
          check (Alcotest.float 1e-9)
            (q.Workload.id ^ "/" ^ cell.Runner.label ^ " zero sd")
            0.0 cell.Runner.stddev)
        result.Runner.cells)
    Workload.all

let test_exact_matches_run_exact () =
  let db = Lazy.force db in
  List.iter
    (fun q ->
      let result = Runner.run db q.Workload.exact in
      let truths = Runner.run_exact db q.Workload.exact in
      List.iter2
        (fun cell (label, truth) ->
          check Alcotest.string (q.Workload.id ^ " label") label cell.Runner.label;
          check_bool
            (Printf.sprintf "%s/%s matches" q.Workload.id label)
            true
            (Float.abs (cell.Runner.value -. truth)
            <= 1e-6 *. Float.max 1.0 (Float.abs truth)))
        result.Runner.cells truths)
    Workload.all

let test_sampled_within_chebyshev () =
  let db = Lazy.force db in
  (* 99% Chebyshev intervals over all queries x 3 seeds: allow one miss. *)
  let misses = ref 0 and total = ref 0 in
  List.iter
    (fun q ->
      let truths = Runner.run_exact db q.Workload.exact in
      for seed = 1 to 3 do
        let result = Runner.run ~seed:(seed * 997) db q.Workload.sampled in
        List.iteri
          (fun i cell ->
            let _, truth = List.nth truths i in
            incr total;
            (* rebuild a 99% chebyshev interval from the cell's sd *)
            let k = Gus_stats.Normal.chebyshev_factor 0.99 in
            let lo = cell.Runner.value -. (k *. cell.Runner.stddev) in
            let hi = cell.Runner.value +. (k *. cell.Runner.stddev) in
            if not (lo <= truth && truth <= hi) then incr misses)
          result.Runner.cells
      done)
    Workload.all;
  check_bool
    (Printf.sprintf "chebyshev misses %d/%d" !misses !total)
    true
    (!misses <= 1)

let test_nonempty_answers () =
  (* Every query has a non-trivial answer on the test database (guards
     against a filter accidentally selecting nothing). *)
  let db = Lazy.force db in
  List.iter
    (fun q ->
      let truths = Runner.run_exact db q.Workload.exact in
      List.iter
        (fun (label, v) ->
          check_bool
            (Printf.sprintf "%s/%s nonzero" q.Workload.id label)
            true (v <> 0.0))
        truths)
    Workload.all

let () =
  Alcotest.run "workload"
    [ ( "corpus",
        [ Alcotest.test_case "shape" `Quick test_corpus_shape;
          Alcotest.test_case "exact variant zero variance" `Quick test_exact_variant_zero_variance;
          Alcotest.test_case "exact matches run_exact" `Quick test_exact_matches_run_exact;
          Alcotest.test_case "sampled within Chebyshev" `Quick test_sampled_within_chebyshev;
          Alcotest.test_case "non-empty answers" `Quick test_nonempty_answers ] ) ]
