lib/experiments/exp_fig5.mli: Gus_core
