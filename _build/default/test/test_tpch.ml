(* Tests for the synthetic TPC-H-style generator. *)

module Tpch = Gus_tpch.Tpch
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let db () = Tpch.generate ~seed:42 ~scale:0.1 ()

let test_relations_present () =
  let db = db () in
  List.iter
    (fun name -> check_bool name true (Database.mem db name))
    [ "customer"; "orders"; "lineitem"; "part"; "supplier" ]

let test_cardinality_ratios () =
  let db = db () in
  let card n = Relation.cardinality (Database.find db n) in
  check_int "customers at scale 0.1" 150 (card "customer");
  check_int "orders = 10x customers" 1500 (card "orders");
  check_int "parts" 200 (card "part");
  check_int "suppliers" 10 (card "supplier");
  (* lineitem expectation: 1..7 lines per order, mean 4 *)
  let li = card "lineitem" in
  check_bool "lineitem within expected band" true (li > 4500 && li < 7500)

let test_determinism () =
  let a = Tpch.generate ~seed:7 ~scale:0.05 () in
  let b = Tpch.generate ~seed:7 ~scale:0.05 () in
  let sum db = Relation.sum_column (Database.find db "lineitem") "l_extendedprice" in
  check (Alcotest.float 1e-9) "same seed, same data" (sum a) (sum b);
  let c = Tpch.generate ~seed:8 ~scale:0.05 () in
  check_bool "different seed differs" true (sum a <> sum c)

let test_fk_integrity () =
  let db = db () in
  let orders = Database.find db "orders" in
  let lineitem = Database.find db "lineitem" in
  let customers = Relation.cardinality (Database.find db "customer") in
  let order_keys = Hashtbl.create 2048 in
  Relation.iter
    (fun t ->
      (match Tuple.value t 0 with
      | Value.Int k -> Hashtbl.replace order_keys k ()
      | _ -> Alcotest.fail "orderkey type");
      match Tuple.value t 1 with
      | Value.Int ck -> check_bool "custkey in range" true (ck >= 1 && ck <= customers)
      | _ -> Alcotest.fail "custkey type")
    orders;
  let parts = Relation.cardinality (Database.find db "part") in
  Relation.iter
    (fun t ->
      (match Tuple.value t 0 with
      | Value.Int ok -> check_bool "l_orderkey resolves" true (Hashtbl.mem order_keys ok)
      | _ -> Alcotest.fail "l_orderkey type");
      match Tuple.value t 2 with
      | Value.Int pk -> check_bool "l_partkey in range" true (pk >= 1 && pk <= parts)
      | _ -> Alcotest.fail "l_partkey type")
    lineitem

let test_value_ranges () =
  let db = db () in
  let lineitem = Database.find db "lineitem" in
  let di = Schema.index_of lineitem.Relation.schema "l_discount" in
  let ti = Schema.index_of lineitem.Relation.schema "l_tax" in
  let qi = Schema.index_of lineitem.Relation.schema "l_quantity" in
  Relation.iter
    (fun t ->
      let d = Value.to_float (Tuple.value t di) in
      let tx = Value.to_float (Tuple.value t ti) in
      let q = Value.to_float (Tuple.value t qi) in
      check_bool "discount" true (d >= 0.0 && d <= 0.1);
      check_bool "tax" true (tx >= 0.0 && tx <= 0.08);
      check_bool "quantity" true (q >= 1.0 && q <= 50.0))
    lineitem

let test_totalprice_consistent () =
  let db = db () in
  let orders = Database.find db "orders" in
  let lineitem = Database.find db "lineitem" in
  let per_order = Hashtbl.create 2048 in
  Relation.iter
    (fun t ->
      let ok = Value.to_int (Tuple.value t 0) in
      let ep =
        Value.to_float (Tuple.value t (Schema.index_of lineitem.Relation.schema "l_extendedprice"))
      in
      Hashtbl.replace per_order ok
        (ep +. Option.value (Hashtbl.find_opt per_order ok) ~default:0.0))
    lineitem;
  Relation.iter
    (fun t ->
      let ok = Value.to_int (Tuple.value t 0) in
      let tp = Value.to_float (Tuple.value t 2) in
      let expected = Option.value (Hashtbl.find_opt per_order ok) ~default:0.0 in
      check_bool "o_totalprice = sum of lines" true (Float.abs (tp -. expected) < 1e-6))
    orders

let test_skew_config () =
  let uniform =
    Tpch.generate ~seed:3 ~scale:0.1
      ~config:{ Tpch.default_config with part_skew = 0.0 } ()
  in
  let skewed =
    Tpch.generate ~seed:3 ~scale:0.1
      ~config:{ Tpch.default_config with part_skew = 1.5 } ()
  in
  let top_part_share db =
    let li = Database.find db "lineitem" in
    let pi = Schema.index_of li.Relation.schema "l_partkey" in
    let counts = Hashtbl.create 256 in
    Relation.iter
      (fun t ->
        let pk = Value.to_int (Tuple.value t pi) in
        Hashtbl.replace counts pk (1 + Option.value (Hashtbl.find_opt counts pk) ~default:0))
      li;
    let top = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
    float_of_int top /. float_of_int (Relation.cardinality li)
  in
  check_bool "skew concentrates part popularity" true
    (top_part_share skewed > 3.0 *. top_part_share uniform)

let test_scale_validation () =
  check_bool "non-positive scale" true
    (try ignore (Tpch.generate ~seed:1 ~scale:0.0 ()); false
     with Invalid_argument _ -> true)

let test_lineitem_lineage_row_ids () =
  let db = db () in
  let li = Database.find db "lineitem" in
  let i = ref 0 in
  Relation.iter
    (fun t ->
      check_int "consecutive row ids" !i t.Tuple.lineage.(0);
      incr i)
    li

let () =
  Alcotest.run "gus_tpch"
    [ ( "generator",
        [ Alcotest.test_case "relations present" `Quick test_relations_present;
          Alcotest.test_case "cardinality ratios" `Quick test_cardinality_ratios;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "foreign keys" `Quick test_fk_integrity;
          Alcotest.test_case "value ranges" `Quick test_value_ranges;
          Alcotest.test_case "o_totalprice consistency" `Quick test_totalprice_consistent;
          Alcotest.test_case "skew knob" `Quick test_skew_config;
          Alcotest.test_case "scale validation" `Quick test_scale_validation;
          Alcotest.test_case "lineage row ids" `Quick test_lineitem_lineage_row_ids ] ) ]
