(* Progressive refinement: "give me the answer to within 5%".  The sample
   grows geometrically (nested, thanks to fixed-seed hash-Bernoulli - a
   real engine only fetches the delta each round) until the 95% interval
   is tight enough.

   Run with:  dune exec examples/progressive.exe *)

module Progressive = Gus_online.Progressive
module Sbox = Gus_estimator.Sbox
module Splan = Gus_core.Splan
module Interval = Gus_stats.Interval
open Gus_relational

let () =
  let db = Gus_tpch.Tpch.generate ~seed:47 ~scale:2.0 () in
  let plan =
    Splan.equi_join (Splan.scan "lineitem") (Splan.scan "orders")
      ~on:("l_orderkey", "o_orderkey")
  in
  let f = Expr.(col "l_extendedprice" * (float 1.0 - col "l_discount")) in
  let target = 0.05 in
  Printf.printf "refining until the 95%% interval is within %.0f%% of the \
                 estimate...\n\n" (100.0 *. target);
  Printf.printf "%6s %8s %10s %14s %12s %6s\n" "round" "rate" "tuples"
    "estimate" "rel.width" "done";
  let rounds =
    Progressive.run ~seed:9 db ~plan ~f ~target_rel_width:target
  in
  List.iter
    (fun r ->
      Printf.printf "%6d %7.2f%% %10d %14.4g %11.2f%% %6b\n"
        r.Progressive.index
        (100.0 *. r.Progressive.rate)
        r.Progressive.report.Sbox.n_tuples
        r.Progressive.report.Sbox.estimate
        (100.0 *. r.Progressive.rel_width)
        r.Progressive.met)
    rounds;
  let truth = Sbox.exact db plan ~f in
  let last = List.nth rounds (List.length rounds - 1) in
  Printf.printf
    "\nexact answer %.4g; final interval %s.\n\
     (each round's sample contains the previous one - only the increment \
     would be fetched from storage.)\n"
    truth
    (Interval.to_string last.Progressive.interval)
