examples/group_by_report.ml: Gus_sql Gus_stats Gus_tpch List Printf String
