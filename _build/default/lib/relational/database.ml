type t = {
  relations : (string, Relation.t) Hashtbl.t;
  mutable order : string list; (* reversed insertion order *)
}

exception Unknown_relation of string

let create () = { relations = Hashtbl.create 16; order = [] }

let add t rel =
  let name = rel.Relation.name in
  if Hashtbl.mem t.relations name then
    invalid_arg (Printf.sprintf "Database.add: relation %s already exists" name);
  Hashtbl.add t.relations name rel;
  t.order <- name :: t.order

let find_opt t name = Hashtbl.find_opt t.relations name

let find t name =
  match find_opt t name with
  | Some r -> r
  | None -> raise (Unknown_relation name)

let mem t name = Hashtbl.mem t.relations name
let names t = List.rev t.order

let total_rows t =
  List.fold_left (fun acc n -> acc + Relation.cardinality (find t n)) 0 (names t)
