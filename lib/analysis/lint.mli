(** Static SOA-soundness linter for sampling plans.

    The paper's central promise is that a plan's statistical behaviour can
    be analyzed {e without executing it}: the GUS parameters are pure
    sampling-design quantities, independent of the data moments.  This pass
    walks a {!Gus_core.Splan.t} bottom-up, mirrors the SOA rewrite of
    Section 4 tolerantly, and emits the {e complete} list of
    {!Diagnostic.t} findings instead of stopping at the first precondition
    violation the way {!Rewrite.analyze} historically did.  [Error]
    findings are exactly the plans outside the GUS theory (Props. 5–9,
    Section 9); [Warning]/[Hint] findings flag statistically degenerate or
    improvable but legal plans.

    {!Rewrite.analyze} is a thin wrapper over this pass: it raises
    {!Rewrite.Unsupported} iff the linter reports at least one [Error]. *)

type config = {
  small_a : float;
      (** warn (GUS010) when the plan's effective first-order inclusion
          probability is positive but below this threshold — Theorem 1's
          variance terms scale with [c_S/a²] *)
  variance_bound : float;
      (** hint (GUS015) when the Theorem-1 worst-case relative variance
          bound (f ≥ 0) is at or above this threshold *)
  cost_budget : float;
      (** warn (GUS014) when the predicted coefficient-enumeration cost
          (live moment passes × estimated group count) exceeds this *)
}

val default_config : config
(** [{ small_a = 1e-3; variance_bound = 1e4; cost_budget = 1e8 }]. *)

type coeff_engine = [ `Symbolic | `Dense ]
(** Which coefficient engine the root checks and cost model run on.
    [`Symbolic] (the default) keeps the design in
    {!Gus_core.Symalg} sum-of-products form — closed-form sparse
    coefficients, no [2^n] enumeration, works past the dense width wall.
    [`Dense] materializes the full [2^n] vector and runs the historical
    path — the legacy measurement baseline ([gusdb lint
    --dense-coeffs]), byte-identical in output where both engines
    apply. *)

type analysis = {
  skeleton : Gus_core.Splan.t;
      (** the input with every sampling operator removed *)
  sym : Gus_core.Symalg.t;
      (** single equivalent GUS over the skeleton's lineage, in symbolic
          sum-of-products form *)
  gus : Gus_core.Gus.t Lazy.t;
      (** dense materialization of [sym]; forcing raises
          {!Gus_core.Gus.Incompatible} past the dense width wall
          ({!Gus_util.Subset.max_universe} relations) *)
  steps : (string * Gus_core.Symalg.t) list;
      (** derivation trace, leaves first — the Figure-4 walk-through *)
  facts : Dataflow.table;
      (** per-node abstract-interpretation facts (pre-order) *)
  cost : Cost.report;
      (** static cost/variance model, including the verified skip-mask *)
  sampler_gus : (Diagnostic.path * Gus_core.Symalg.t) list;
      (** the Figure-1 GUS of each sampling operator, keyed by plan path
          — computed once here so executors need not re-lint per run *)
}

type report = {
  diagnostics : Diagnostic.t list;
      (** every finding, in plan (pre-order path) order *)
  analysis : analysis option;
      (** the successful SOA rewrite; [Some] iff no [Error] diagnostics *)
}

val run :
  ?config:config ->
  ?engine:coeff_engine ->
  card:(string -> int) ->
  Gus_core.Splan.t ->
  report
(** Lint a plan.  [card] resolves base-relation cardinalities: it feeds
    the WOR translation ([a = n/N], consulted for WOR over a [Scan] or a
    cardinality-preserving [Project] chain over one) and the {!Dataflow}
    cardinality intervals.  Never raises on any plan shape (assuming
    [card] is total — a relation of cardinality 0 is fine); raises
    [Invalid_argument] only on a config with negative (or NaN)
    thresholds. *)

val run_db :
  ?config:config ->
  ?engine:coeff_engine ->
  Gus_relational.Database.t ->
  Gus_core.Splan.t ->
  report

val errors : report -> Diagnostic.t list
val warnings : report -> Diagnostic.t list
val hints : report -> Diagnostic.t list

val check_gus :
  ?path:Diagnostic.path -> ?node:string -> Gus_core.Gus.t -> Diagnostic.t list
(** Coherence checks on a single GUS value: [a ∈ (0,1]] and every
    second-order probability bounded by its marginal ([b_T ≤ a]). *)

val check_sym :
  ?path:Diagnostic.path ->
  ?node:string ->
  Gus_core.Symalg.t ->
  Diagnostic.t list
(** Symbolic twin of {!check_gus}: the [a] checks are shared; the
    [b_T ≤ a] scan is skipped wholesale for provably-monotone designs,
    enumerates only the live subsets otherwise, and falls back to the
    full dense scan for dense-fallback representations. *)

(** What a sampler's input looks like, for WOR/block translatability:
    a bare [Scan]; a cardinality-preserving [Project] chain over one
    (rows 1:1 with base rows, so WOR's [N] resolves through the skeleton
    to the base cardinality); a sample-free derived input whose
    cardinality is fixed but not statically known (GUS018); or an input
    that is itself sampled, making [N] a random variable (GUS003). *)
type sampler_input =
  | Over_scan
  | Over_preserving
  | Over_fixed
  | Over_random

val translate_sampler :
  card:(string -> int) ->
  over:Gus_relational.Lineage.schema ->
  input:sampler_input ->
  path:Diagnostic.path ->
  node:string ->
  emit:(Diagnostic.t -> unit) ->
  Gus_sampling.Sampler.t ->
  Gus_core.Gus.t option
(** Figure-1 translation of one sampling operator applied to an input
    with the given lineage schema and {!sampler_input} kind.  Emits every
    applicable diagnostic through [emit] and returns the GUS when the
    sampler has one (possibly alongside hints). *)

val fixes : report -> Fix.t list
(** The machine-applicable fixes attached to the report's diagnostics,
    in diagnostic order. *)

val apply_fixes :
  ?config:config ->
  card:(string -> int) ->
  Gus_core.Splan.t ->
  Gus_core.Splan.t * Fix.t list
(** Lint → apply every attached fix → re-lint, to a fixpoint.  Returns
    the rewritten plan and the fixes applied, in application order.
    Every fix is a GUS-equivalence, so the result has the same skeleton
    and estimator expectation as the input. *)

val node_label : Gus_core.Splan.t -> string
(** The one-line operator head used in diagnostics and tree rendering;
    matches the corresponding {!Gus_core.Splan.pp_tree} line. *)

val summary : report -> string
(** ["2 error(s), 1 warning(s), 0 hint(s)"]. *)

val pp_report : Format.formatter -> report -> unit
(** All diagnostics, one per line, then the analyzability verdict and the
    summary counts. *)

val pp_annotated_plan : Format.formatter -> Gus_core.Splan.t * report -> unit
(** {!Gus_core.Splan.pp_tree} with [<-- GUSxxx] markers appended to the
    lines carrying diagnostics. *)

val to_json : report -> string
(** Stable machine-readable rendering for [gusdb lint --json]. *)
