type severity = Error | Warning | Hint

type code =
  | Self_join
  | Union_skeleton_mismatch
  | Wor_over_derived
  | Block_over_derived
  | Hash_over_derived
  | With_replacement
  | Distinct_over_sample
  | Probability_out_of_range
  | Zero_inclusion_probability
  | Small_inclusion_probability
  | Redundant_sampler
  | Sample_select_pushdown
  | Analysis_limit
  | Enumeration_cost
  | Variance_bound
  | Zero_coefficients
  | Stacked_samplers
  | Wor_over_deterministic_derived

let all_codes =
  [ Self_join;
    Union_skeleton_mismatch;
    Wor_over_derived;
    Block_over_derived;
    Hash_over_derived;
    With_replacement;
    Distinct_over_sample;
    Probability_out_of_range;
    Zero_inclusion_probability;
    Small_inclusion_probability;
    Redundant_sampler;
    Sample_select_pushdown;
    Analysis_limit;
    Enumeration_cost;
    Variance_bound;
    Zero_coefficients;
    Stacked_samplers;
    Wor_over_deterministic_derived ]

let code_id = function
  | Self_join -> "GUS001"
  | Union_skeleton_mismatch -> "GUS002"
  | Wor_over_derived -> "GUS003"
  | Block_over_derived -> "GUS004"
  | Hash_over_derived -> "GUS005"
  | With_replacement -> "GUS006"
  | Distinct_over_sample -> "GUS007"
  | Probability_out_of_range -> "GUS008"
  | Zero_inclusion_probability -> "GUS009"
  | Small_inclusion_probability -> "GUS010"
  | Redundant_sampler -> "GUS011"
  | Sample_select_pushdown -> "GUS012"
  | Analysis_limit -> "GUS013"
  | Enumeration_cost -> "GUS014"
  | Variance_bound -> "GUS015"
  | Zero_coefficients -> "GUS016"
  | Stacked_samplers -> "GUS017"
  | Wor_over_deterministic_derived -> "GUS018"

let severity_of_code = function
  | Self_join | Union_skeleton_mismatch | Wor_over_derived
  | Block_over_derived | Hash_over_derived | With_replacement
  | Distinct_over_sample | Probability_out_of_range
  | Zero_inclusion_probability | Analysis_limit
  | Wor_over_deterministic_derived ->
      Error
  | Small_inclusion_probability | Enumeration_cost -> Warning
  | Redundant_sampler | Sample_select_pushdown | Variance_bound
  | Zero_coefficients | Stacked_samplers ->
      Hint

let title = function
  | Self_join -> "self-join: a relation appears on both sides of a join"
  | Union_skeleton_mismatch -> "union of samples of two different expressions"
  | Wor_over_derived -> "WOR sampling over a derived or already-sampled input"
  | Block_over_derived -> "block sampling not directly over a base table"
  | Hash_over_derived -> "hash-Bernoulli sampling over a derived input"
  | With_replacement -> "with-replacement sampling is not a GUS method"
  | Distinct_over_sample -> "DISTINCT above a non-identity GUS"
  | Probability_out_of_range -> "inclusion probability outside its legal range"
  | Zero_inclusion_probability -> "degenerate estimator: a = 0"
  | Small_inclusion_probability -> "tiny sampling fraction: high-variance estimator"
  | Redundant_sampler -> "redundant sampler: keeps every tuple (identity GUS)"
  | Sample_select_pushdown -> "sample could be pushed below the selection"
  | Analysis_limit -> "plan exceeds the analyzer's implementation limits"
  | Enumeration_cost -> "coefficient enumeration is expensive for this plan"
  | Variance_bound -> "large worst-case relative variance bound"
  | Zero_coefficients -> "provably-zero coefficients: kernel skip-mask applies"
  | Stacked_samplers -> "stacked Bernoulli samplers compose into one"
  | Wor_over_deterministic_derived ->
      "WOR over a deterministic derived input: N not known statically"

let citation = function
  | Self_join -> "Prop. 6 (disjoint lineage); Section 9"
  | Union_skeleton_mismatch -> "Prop. 7"
  | Wor_over_derived -> "Figure 1 (WOR needs a fixed N); Section 9"
  | Block_over_derived -> "Section 3 (block sampling at base granularity)"
  | Hash_over_derived -> "Section 7 (lineage-keyed sampling)"
  | With_replacement -> "Section 9 (WR is not a randomized filter)"
  | Distinct_over_sample -> "Section 9 (DISTINCT)"
  | Probability_out_of_range -> "Def. 1 (GUS probabilities)"
  | Zero_inclusion_probability -> "Theorem 1 (scale-up 1/a)"
  | Small_inclusion_probability -> "Theorem 1 (variance terms c_S/a\xc2\xb2)"
  | Redundant_sampler -> "Prop. 4 (identity GUS)"
  | Sample_select_pushdown -> "Prop. 5 (selection commutes with GUS)"
  | Analysis_limit -> "Section 5 (2\xe2\x81\xbf coefficient arrays)"
  | Enumeration_cost -> "Section 5 (2\xe2\x81\xbf coefficient passes)"
  | Variance_bound -> "Theorem 1 (worst-case Var/E\xc2\xb2 for f \xe2\x89\xa5 0)"
  | Zero_coefficients -> "Prop. 6 (product-form zero coefficients)"
  | Stacked_samplers -> "Prop. 8 (compaction)"
  | Wor_over_deterministic_derived ->
      "Figure 1 (WOR needs a fixed N); Section 9"

type path = int list

let path_to_string = function
  | [] -> "$"
  | p -> "$." ^ String.concat "." (List.map string_of_int p)

let rec compare_path a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> if x <> y then compare x y else compare_path a' b'

type t = {
  code : code;
  path : path;
  node : string;
  message : string;
  fix : Fix.t option;
}

let make ?fix ~code ~path ~node message = { code; path; node; message; fix }
let severity d = severity_of_code d.code

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let pp ppf d =
  Format.fprintf ppf "%s %-7s at %s (%s): %s [%s]" (code_id d.code)
    (severity_label (severity d))
    (path_to_string d.path) d.node d.message (citation d.code);
  match d.fix with
  | None -> ()
  | Some f -> Format.fprintf ppf " (fix: %s)" f.Fix.summary

let to_string d = Format.asprintf "%a" pp d

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let fix =
    match d.fix with
    | None -> ""
    | Some f ->
        Printf.sprintf ", \"fix\": {\"action\": \"%s\", \"summary\": \"%s\"}"
          (Fix.action_label f.Fix.action)
          (json_escape f.Fix.summary)
  in
  Printf.sprintf
    "{\"code\": \"%s\", \"severity\": \"%s\", \"path\": \"%s\", \"node\": \
     \"%s\", \"message\": \"%s\", \"citation\": \"%s\"%s}"
    (code_id d.code)
    (severity_label (severity d))
    (path_to_string d.path) (json_escape d.node) (json_escape d.message)
    (json_escape (citation d.code))
    fix
