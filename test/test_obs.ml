(* Observability tests:

   1. Span nesting: enter/leave/span/instant reconstruct into the
      expected tree, including unbalanced enters closing at the last
      recorded descendant.
   2. Per-domain buffers: pool lanes trace concurrently and merge in
      ascending domain-id order at export time.
   3. Histogram buckets are upper-inclusive ([v <= le]) with an implicit
      +inf overflow bucket.
   4. QCheck: a traced+metered Sbox.of_plan run is bit-identical to an
      untraced one (estimate/total_f/n_tuples and the moment vector),
      for pool sizes 1, 2, 4 — instrumentation must never perturb the
      RNG stream or the reduction order.
   5. exec_profiled draws in the same order as exec: same seed, same
      sample, plus well-formed per-node profiles.
   6. Histogram quantiles: linear interpolation pinned at bucket
      boundaries, +inf overflow saturation, empty histogram.
   7. Promexp: name mangling and the text exposition's counter / gauge /
      histogram lines, plus the atomic file dump.
   8. Journal: ring overwrite + dropped accounting, exact NDJSON lines
      (shortest round-trip floats, symbolic non-finites), the SLO
      breach predicate, and the rate limiter. *)

module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Relation = Gus_relational.Relation
module Sbox = Gus_estimator.Sbox
module Harness = Gus_experiments.Harness
module Pool = Gus_util.Pool
module Rng = Gus_util.Rng
module Trace = Gus_obs.Trace
module Metrics = Gus_obs.Metrics
module Promexp = Gus_obs.Promexp
module Journal = Gus_obs.Journal

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

(* Tracing state is process-global; every test leaves it disabled and
   empty so suites cannot leak events into each other. *)
let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled false)
    f

let pool_of =
  let tbl = Hashtbl.create 4 in
  fun size ->
    match Hashtbl.find_opt tbl size with
    | Some p -> p
    | None ->
        let p = Pool.create ~size in
        Hashtbl.add tbl size p;
        p

(* ---- 1. span nesting ---- *)

let test_span_nesting () =
  with_tracing (fun () ->
      Trace.span "outer" (fun () ->
          Trace.span "first" (fun () -> ());
          Trace.instant "mark";
          Trace.span ~args:(fun () -> [ ("k", "v") ]) "second" (fun () -> ())));
  (match Trace.trees () with
  | [ (_, [ outer ]) ] -> (
      check_string "root name" "outer" outer.Trace.sname;
      check_bool "root duration >= 0" true (outer.Trace.dur_ns >= 0);
      match outer.Trace.children with
      | [ a; b; c ] ->
          check_string "child 1" "first" a.Trace.sname;
          check_string "child 2" "mark" b.Trace.sname;
          check_int "instant has zero duration" 0 b.Trace.dur_ns;
          check_string "child 3" "second" c.Trace.sname;
          check_bool "lazy args recorded" true
            (List.mem_assoc "k" c.Trace.sargs);
          check_bool "children start in record order" true
            (a.Trace.start_ns <= b.Trace.start_ns
            && b.Trace.start_ns <= c.Trace.start_ns);
          check_bool "children nest inside parent" true
            (outer.Trace.start_ns <= a.Trace.start_ns
            && c.Trace.start_ns + c.Trace.dur_ns
               <= outer.Trace.start_ns + outer.Trace.dur_ns)
      | cs -> Alcotest.failf "expected 3 children, got %d" (List.length cs))
  | forests ->
      Alcotest.failf "expected one domain with one root, got %d forests"
        (List.length forests));
  Trace.clear ();
  check_int "clear drops everything" 0 (Trace.event_count ())

let test_unbalanced_enter_closes_at_last_event () =
  with_tracing (fun () ->
      Trace.enter "open-forever";
      (* Never left: the tree builder must close it at [inner]'s end. *)
      Trace.span "inner" (fun () -> ()));
  (match Trace.trees () with
  | [ (_, [ root ]) ] ->
      check_string "unclosed span survives" "open-forever" root.Trace.sname;
      let inner = List.hd root.Trace.children in
      check_int "extends to last descendant"
        (inner.Trace.start_ns + inner.Trace.dur_ns - root.Trace.start_ns)
        root.Trace.dur_ns
  | _ -> Alcotest.fail "expected a single root");
  Trace.clear ();
  (* A leave with no open span must be dropped, not crash or invent
     nodes. *)
  with_tracing (fun () ->
      Trace.span "solo" (fun () -> ());
      Trace.leave "stray");
  (match Trace.trees () with
  | [ (_, [ solo ]) ] -> check_string "stray leave dropped" "solo" solo.Trace.sname
  | _ -> Alcotest.fail "stray leave corrupted the forest");
  Trace.clear ()

(* ---- 2. per-domain buffers merge in ascending domain order ---- *)

let test_per_domain_merge_order () =
  let pool = pool_of 3 in
  with_tracing (fun () ->
      (* Three lanes: caller domain plus two workers, each recording its
         own pool.lane span into its own buffer. *)
      Pool.run_chunks pool ~lo:0 ~hi:30 (fun _ _ -> ()));
  let forests = Trace.trees () in
  let ids = List.map fst forests in
  check_bool "domain ids strictly ascending" true
    (List.sort_uniq compare ids = ids);
  let lanes =
    List.concat_map
      (fun (_, roots) ->
        List.filter (fun t -> t.Trace.sname = "pool.lane") roots)
      forests
  in
  check_int "one lane span per lane" 3 (List.length lanes);
  let lane_ids =
    List.sort compare
      (List.map (fun t -> List.assoc "lane" t.Trace.sargs) lanes)
  in
  Alcotest.(check (list string)) "lanes 0..2 all present"
    [ "0"; "1"; "2" ] lane_ids;
  Trace.clear ()

(* ---- 3. histogram bucket boundaries ---- *)

let test_histogram_buckets () =
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test.bounds" in
  Metrics.reset ();
  Metrics.set_enabled true;
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.0; 4.5 ];
  Metrics.set_enabled false;
  check_int "count" 6 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 13.5 (Metrics.histogram_sum h);
  (* Upper-inclusive: 1.0 lands in le=1, 2.0 in le=2, 4.0 in le=4, and
     only 4.5 overflows.  Counts are cumulative. *)
  Alcotest.(check (list (pair (float 0.) int)))
    "cumulative (le, count)"
    [ (1., 2); (2., 4); (4., 5); (infinity, 6) ]
    (Metrics.bucket_counts h);
  Metrics.reset ();
  check_int "reset zeroes count" 0 (Metrics.histogram_count h)

let test_disabled_updates_are_dropped () =
  let c = Metrics.counter "test.disabled" in
  Metrics.reset ();
  Metrics.incr c;
  Metrics.add c 41;
  check_int "updates while disabled don't count" 0 (Metrics.counter_value c);
  Metrics.set_enabled true;
  Metrics.incr c;
  Metrics.set_enabled false;
  check_int "enabled update counts" 1 (Metrics.counter_value c);
  Metrics.reset ()

(* ---- 4. traced run is bit-identical to untraced ---- *)

let db () = Harness.db_cached ~scale:0.1
let analyze db plan = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus)

let prop_traced_equals_untraced =
  QCheck2.Test.make ~name:"traced Sbox.of_plan = untraced (bit-identical)"
    ~count:10
    ~print:(fun (seed, psize) -> Printf.sprintf "seed=%d pool=%d" seed psize)
    QCheck2.Gen.(pair (int_range 0 10_000) (oneofl [ 1; 2; 4 ]))
    (fun (seed, psize) ->
      let db = db () in
      let plan = Harness.query1_plan () in
      let gus = analyze db plan in
      let pool = pool_of psize in
      let run () =
        Sbox.of_plan ~pool ~gus ~f:Harness.revenue_f db (Rng.create seed) plan
      in
      let off = run () in
      Trace.set_enabled true;
      Metrics.set_enabled true;
      let on =
        Fun.protect
          ~finally:(fun () ->
            Trace.set_enabled false;
            Metrics.set_enabled false;
            Trace.clear ();
            Metrics.reset ())
          run
      in
      let traced_something = Trace.event_count () in
      ignore traced_something;
      off.Sbox.n_tuples = on.Sbox.n_tuples
      && off.Sbox.total_f = on.Sbox.total_f
      && off.Sbox.estimate = on.Sbox.estimate
      && off.Sbox.variance = on.Sbox.variance
      && off.Sbox.y_hat = on.Sbox.y_hat)

(* ---- 5. exec_profiled draws like exec ---- *)

let test_exec_profiled_matches_exec () =
  let db = db () in
  let plan = Harness.query1_plan () in
  List.iter
    (fun seed ->
      let plain = Splan.exec db (Rng.create seed) plan in
      let profiled, profs = Splan.exec_profiled db (Rng.create seed) plan in
      (* Bit-identical sample: exec_profiled must consume the RNG in the
         same order as exec (right child before left, like OCaml's
         right-to-left argument evaluation in exec's recursive calls). *)
      check_int
        (Printf.sprintf "seed %d: same cardinality" seed)
        (Relation.cardinality plain)
        (Relation.cardinality profiled);
      let gus = analyze db plan in
      let a = Sbox.of_relation ~gus ~f:Harness.revenue_f plain in
      let b = Sbox.of_relation ~gus ~f:Harness.revenue_f profiled in
      check_bool
        (Printf.sprintf "seed %d: bit-identical estimate" seed)
        true
        (a.Sbox.estimate = b.Sbox.estimate && a.Sbox.y_hat = b.Sbox.y_hat);
      (* Profile shape: one entry per node, root last (post-order), root
         counts the final cardinality and dominates every wall time. *)
      let root =
        match List.rev profs with
        | r :: _ -> r
        | [] -> Alcotest.fail "no profiles"
      in
      check_bool
        (Printf.sprintf "seed %d: root path empty" seed)
        true (root.Splan.np_path = []);
      check_int
        (Printf.sprintf "seed %d: root rows_out" seed)
        (Relation.cardinality profiled)
        root.Splan.np_rows_out;
      List.iter
        (fun p ->
          check_bool "wall times non-negative" true (p.Splan.np_wall_ns >= 0);
          check_bool "inclusive root wall dominates" true
            (p.Splan.np_wall_ns <= root.Splan.np_wall_ns
            || p.Splan.np_path = []))
        profs)
    [ 3; 11; 42 ]

(* ---- 6. histogram quantiles ---- *)

let check_float = Alcotest.check (Alcotest.float 1e-9)

let test_quantiles () =
  let h = Metrics.histogram ~buckets:[| 100.; 200.; 400. |] "test.quantile" in
  Metrics.reset ();
  check_bool "empty histogram is nan" true (Float.is_nan (Metrics.quantile h 0.5));
  Metrics.set_enabled true;
  (* 50 in (0,100], 30 in (100,200], 15 in (200,400], 5 overflow *)
  let observe n v = for _ = 1 to n do Metrics.observe h v done in
  observe 50 50.;
  observe 30 150.;
  observe 15 300.;
  observe 5 1000.;
  Metrics.set_enabled false;
  (* rank 50 exhausts the first bucket exactly: its upper bound *)
  check_float "p50 at bucket boundary" 100. (Metrics.quantile h 0.5);
  check_float "p80 at bucket boundary" 200. (Metrics.quantile h 0.8);
  (* rank 90 is 10 of the 15 observations into (200, 400] *)
  check_float "p90 interpolates" (200. +. (200. *. 10. /. 15.))
    (Metrics.quantile h 0.9);
  (* the +inf overflow bucket saturates at the largest finite bound *)
  check_float "p99 saturates" 400. (Metrics.quantile h 0.99);
  check_float "q=1 saturates" 400. (Metrics.quantile h 1.);
  check_float "q clamped below" (Metrics.quantile h 0.) (Metrics.quantile h (-3.));
  Metrics.reset ();
  (* everything in overflow: the histogram can only answer its last bound *)
  let o = Metrics.histogram ~buckets:[| 1. |] "test.quantile.overflow" in
  Metrics.set_enabled true;
  List.iter (Metrics.observe o) [ 5.; 6.; 7. ];
  Metrics.set_enabled false;
  check_float "overflow-only" 1. (Metrics.quantile o 0.5);
  Metrics.reset ()

(* ---- 7. Prometheus exposition ---- *)

let test_promexp_render () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let c = Metrics.counter "promtest.hits" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.set_gauge (Metrics.gauge "promtest.depth") 2.5;
  let h = Metrics.histogram ~buckets:[| 1.; 2. |] "promtest.lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 9. ];
  Metrics.set_enabled false;
  check_string "mangle" "gus_cache_hits" (Promexp.mangle "cache.hits");
  let lines = String.split_on_char '\n' (Promexp.render ()) in
  let has l =
    if not (List.mem l lines) then Alcotest.failf "exposition lacks %S" l
  in
  has "# TYPE gus_promtest_hits_total counter";
  has "gus_promtest_hits_total 2";
  has "# TYPE gus_promtest_depth gauge";
  has "gus_promtest_depth 2.5";
  has "# TYPE gus_promtest_lat histogram";
  has "gus_promtest_lat_bucket{le=\"1\"} 1";
  has "gus_promtest_lat_bucket{le=\"2\"} 2";
  has "gus_promtest_lat_bucket{le=\"+Inf\"} 3";
  has "gus_promtest_lat_sum 11";
  has "gus_promtest_lat_count 3";
  (* the dump is atomic: the temp file never survives, the target holds
     exactly one render *)
  let path = Filename.temp_file "gus_prom" ".prom" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Promexp.write_file path;
      check_bool "tmp renamed away" false (Sys.file_exists (path ^ ".tmp"));
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let body = really_input_string ic n in
      close_in ic;
      check_string "file holds the exposition" (Promexp.render ()) body);
  Metrics.reset ()

(* ---- 8. Journal ring, NDJSON, SLOs, limiter ---- *)

let mk_exec ?(estimate = 2.) ?(variance = Float.nan) ?(stddev = 0.)
    ?(rel_ci = 0.) id seed =
  Journal.Exec
    { Journal.id;
      dataset = "d";
      version = 1;
      sql = "SELECT 1";
      sql_hash = Journal.sql_hash "SELECT 1";
      seed;
      rates = [ ("lineitem", 0.1) ];
      explain = false;
      exact = false;
      cached = false;
      estimate;
      variance;
      stddev;
      rel_ci;
      top = Some { Journal.path = [ 0; 1 ]; label = "Bernoulli(0.1)"; share = 0.75 };
      wall_ns = 1234;
      breach = false }

let test_journal_ring () =
  let j = Journal.create ~capacity:3 () in
  check_int "capacity" 3 (Journal.capacity j);
  for i = 0 to 4 do
    let id = Journal.next_id j in
    check_int "ids count up" i id;
    Journal.record j (mk_exec id i)
  done;
  check_int "length bounded" 3 (Journal.length j);
  check_int "overwrites counted" 2 (Journal.dropped j);
  let ids =
    List.map
      (function
        | Journal.Exec e -> e.Journal.id
        | Journal.Register r -> r.id
        | Journal.Shed s -> s.Journal.shed_id)
      (Journal.events j)
  in
  Alcotest.(check (list int)) "oldest first, oldest gone" [ 2; 3; 4 ] ids

let test_journal_ndjson () =
  (* FNV-1a 64-bit offset basis: the hash of the empty string *)
  check_string "fnv-1a empty" "cbf29ce484222325"
    (Journal.hash_hex (Journal.sql_hash ""));
  check_string "register line"
    {|{"ev":"register","id":0,"dataset":"t","version":1,"source":{"source":"tpch","scale":0.05,"seed":1}}|}
    (Journal.to_ndjson
       (Journal.Register
          { id = 0;
            dataset = "t";
            version = 1;
            source = {|{"source":"tpch","scale":0.05,"seed":1}|} }));
  (* exact exec line: integral floats print bare, non-finites print as
     symbolic strings, the hash as 16 hex digits *)
  check_string "exec line"
    (Printf.sprintf
       {|{"ev":"exec","id":1,"dataset":"d","version":1,"sql":"SELECT 1","sql_hash":"%s","seed":7,"rates":{"lineitem":0.1},"explain":false,"exact":false,"cached":false,"estimate":2,"variance":"nan","stddev":0,"rel_ci":0,"top":{"path":[0,1],"node":"Bernoulli(0.1)","share":0.75},"wall_ns":1234,"breach":false}|}
       (Journal.hash_hex (Journal.sql_hash "SELECT 1")))
    (Journal.to_ndjson (mk_exec 1 7))

let test_slo_predicate () =
  check_float "rel ci half-width" 0.196
    (Journal.rel_ci_half_width ~estimate:100. ~stddev:10.);
  check_float "negative estimate uses magnitude" 0.196
    (Journal.rel_ci_half_width ~estimate:(-100.) ~stddev:10.);
  check_float "exact answer has zero width" 0.
    (Journal.rel_ci_half_width ~estimate:0. ~stddev:0.);
  check_bool "zero estimate with spread is inf" true
    (Journal.rel_ci_half_width ~estimate:0. ~stddev:1. = Float.infinity);
  let slo = { Journal.max_rel_ci = Some 0.05; max_latency_ms = Some 1. } in
  check_bool "ci breach" true (Journal.breach slo ~rel_ci:0.06 ~wall_ns:0);
  check_bool "latency breach" true
    (Journal.breach slo ~rel_ci:0.01 ~wall_ns:2_000_000);
  check_bool "at threshold is fine" false
    (Journal.breach slo ~rel_ci:0.05 ~wall_ns:1_000_000);
  check_bool "nan rel_ci never breaches" false
    (Journal.breach slo ~rel_ci:Float.nan ~wall_ns:0);
  check_bool "no_slo never breaches" false
    (Journal.breach Journal.no_slo ~rel_ci:Float.infinity ~wall_ns:max_int)

let test_limiter () =
  let l = Journal.limiter ~interval_ns:1_000 () in
  check_bool "first permit fires" true (Journal.permit l ~now_ns:0 = Some 0);
  check_bool "inside interval suppressed" true
    (Journal.permit l ~now_ns:400 = None);
  check_bool "still suppressed" true (Journal.permit l ~now_ns:999 = None);
  check_bool "reopens with suppressed count" true
    (Journal.permit l ~now_ns:1_000 = Some 2);
  check_bool "closes again" true (Journal.permit l ~now_ns:1_001 = None);
  (* default limiter must fire on its very first call even with a huge
     monotonic clock value (no first-permit overflow) *)
  let d = Journal.limiter () in
  check_bool "default first permit" true
    (Journal.permit d ~now_ns:(1 lsl 60) = Some 0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_traced_equals_untraced ]

let () =
  Alcotest.run "obs"
    [ ( "trace",
        [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "unbalanced enter" `Quick
            test_unbalanced_enter_closes_at_last_event;
          Alcotest.test_case "per-domain merge order" `Quick
            test_per_domain_merge_order ] );
      ( "metrics",
        [ Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "disabled updates dropped" `Quick
            test_disabled_updates_are_dropped;
          Alcotest.test_case "quantiles" `Quick test_quantiles ] );
      ( "promexp",
        [ Alcotest.test_case "text exposition" `Quick test_promexp_render ] );
      ( "journal",
        [ Alcotest.test_case "ring overwrite" `Quick test_journal_ring;
          Alcotest.test_case "ndjson lines" `Quick test_journal_ndjson;
          Alcotest.test_case "slo predicate" `Quick test_slo_predicate;
          Alcotest.test_case "rate limiter" `Quick test_limiter ] );
      ("identity", qcheck_tests);
      ( "profiling",
        [ Alcotest.test_case "exec_profiled = exec" `Quick
            test_exec_profiled_matches_exec ] ) ]
