(** A materialized relation: schema, lineage schema, and rows.

    Base relations have a single-entry lineage schema (their own name) and
    row ids 0..n−1; derived relations carry whatever lineage their operators
    produced. *)

type t = {
  name : string;
  schema : Schema.t;
  lineage_schema : Lineage.schema;
  tuples : Tuple.t Gus_util.Vec.t;
}

val create_base : name:string -> Schema.t -> t
(** Empty base relation; rows appended with {!append_row} get consecutive
    row ids. *)

val derived : ?name:string -> Schema.t -> Lineage.schema -> t
val append_row : t -> Value.t array -> unit
(** Base relations only (lineage schema must be the relation itself);
    type-checks against the schema. *)

val append_tuple : t -> Tuple.t -> unit
val cardinality : t -> int
val tuple : t -> int -> Tuple.t
val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc
val column_values : t -> string -> Value.t array
val pp : Format.formatter -> t -> unit
(** Header plus first rows (for debugging). *)

val to_csv_string : t -> string
val sum_column : t -> string -> float
(** Exact SUM over a numeric column, [Null]s contribute 0. *)
