(** Deterministic pseudo-random number generation.

    All experiments must be reproducible, so every stochastic component
    takes an explicit generator.  The core is SplitMix64 (Steele et al.,
    OOPSLA 2014): tiny state, excellent equidistribution for the sample
    sizes used here, and cheap splitting for independent streams. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Distinct seeds give streams that
    are independent for all practical purposes. *)

val copy : t -> t
val split : t -> t
(** A new generator statistically independent of the parent's future
    output; advances the parent. *)

val derive : t -> int -> t
(** [derive t i] is the [i]-th child stream of [t]'s current state — a
    pure function of [(state, i)] that does {e not} advance [t], so any
    number of lanes can derive their streams concurrently from one master
    and the result never depends on evaluation order.  [derive t 0]
    coincides with what {!split} would return.  This is the SplitMix64
    stream-splitting discipline the parallel Monte-Carlo harness and the
    pooled Bernoulli sampler build on.  Raises on negative [i]. *)

val bits64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform on [0, bound); [bound > 0] required. *)

val float : t -> float
(** Uniform on [0, 1). *)

val float_range : t -> float -> float -> float
val bool : t -> bool
val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices uniformly
    from [0, n).  Raises [Invalid_argument] if [k > n] or [k < 0].
    Uses Floyd's algorithm: O(k) expected time, O(k) space. *)
