open Gus_relational

type sample_spec =
  | Percent of float
  | Rows of int
  | System_percent of float

type from_item = { relation : string; sample : sample_spec option }

type agg =
  | Sum of Expr.t
  | Count_star
  | Count of Expr.t
  | Avg of Expr.t
  | Quantile of agg * float

type select_item = { agg : agg; alias : string option }

type query = {
  view : (string * string list) option;
  items : select_item list;
  from : from_item list;
  where : Expr.t option;
  group_by : Expr.t list;
}

let rec agg_label = function
  | Sum e -> Printf.sprintf "sum(%s)" (Expr.to_string e)
  | Count_star -> "count(*)"
  | Count e -> Printf.sprintf "count(%s)" (Expr.to_string e)
  | Avg e -> Printf.sprintf "avg(%s)" (Expr.to_string e)
  | Quantile (a, q) -> Printf.sprintf "quantile(%s, %g)" (agg_label a) q

let pp_sample ppf = function
  | Percent p -> Format.fprintf ppf " TABLESAMPLE (%g PERCENT)" p
  | Rows n -> Format.fprintf ppf " TABLESAMPLE (%d ROWS)" n
  | System_percent p -> Format.fprintf ppf " TABLESAMPLE SYSTEM (%g PERCENT)" p

let pp_query ppf q =
  (match q.view with
  | Some (name, cols) ->
      Format.fprintf ppf "CREATE VIEW %s (%s) AS@ " name (String.concat ", " cols)
  | None -> ());
  Format.fprintf ppf "SELECT %s"
    (String.concat ", "
       (List.map
          (fun item ->
            let base = agg_label item.agg in
            match item.alias with
            | Some a -> base ^ " AS " ^ a
            | None -> base)
          q.items));
  let from_item fi =
    match fi.sample with
    | None -> fi.relation
    | Some s -> Format.asprintf "%s%a" fi.relation pp_sample s
  in
  Format.fprintf ppf "@ FROM %s" (String.concat ", " (List.map from_item q.from));
  (match q.where with
  | Some w -> Format.fprintf ppf "@ WHERE %a" Expr.pp w
  | None -> ());
  match q.group_by with
  | [] -> ()
  | keys ->
      Format.fprintf ppf "@ GROUP BY %s"
        (String.concat ", " (List.map Expr.to_string keys))
