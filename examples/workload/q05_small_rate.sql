-- A legal but statistically degenerate rate: the linter warns
-- (GUS010) and bounds the worst-case relative variance (GUS015),
-- but warnings and hints do not fail the workload gate.
SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (0.005 PERCENT);
