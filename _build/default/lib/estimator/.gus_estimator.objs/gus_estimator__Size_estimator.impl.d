lib/estimator/size_estimator.ml: Expr Gus_core Gus_relational Gus_sampling Gus_stats Sbox
