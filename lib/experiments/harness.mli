(** Shared plumbing for the experiment drivers: canonical workloads,
    Monte-Carlo trial loops, and paper-vs-measured table output. *)

module Splan = Gus_core.Splan

val section : string -> string -> unit
(** [section id title] prints the experiment banner. *)

val fcell : float -> string
(** Number formatting used across all tables. *)

val set_progress : bool -> unit
(** Opt into live progress lines on stderr ([trials d/total (p%%) elapsed
    eta], rate-limited, pool-safe) from {!trials}, {!trials_par} and
    {!map_trials_par}.  Completed trials also count into the
    [harness.trials_completed] metric whenever {!Gus_obs.Metrics} is
    collecting, progress display or not.  Off by default. *)

val query1_f : Gus_relational.Expr.t
(** The paper's running aggregate: [l_discount * (1.0 - l_tax)]. *)

val revenue_f : Gus_relational.Expr.t
(** [l_extendedprice * (1.0 - l_discount)]. *)

val query1_plan : ?bernoulli:float -> ?wor:int -> unit -> Splan.t
(** lineitem TABLESAMPLE Bernoulli × orders TABLESAMPLE WOR joined on
    orderkey, with the paper's selection [l_extendedprice > 100].
    Defaults: 10% and 1000 rows. *)

val join2_plan : p_lineitem:float -> p_orders:float -> Splan.t
(** Bernoulli on both sides of the lineitem ⋈ orders join. *)

val join3_plan : p_lineitem:float -> p_orders:float -> p_customer:float -> Splan.t
(** Three-way join lineitem ⋈ orders ⋈ customer, all Bernoulli-sampled. *)

val single_plan : p:float -> Splan.t
(** Bernoulli sample of lineitem alone. *)

type trial_stats = {
  trials : int;
  truth : float;
  mean_estimate : float;
  bias_pct : float;
  mean_rel_err_pct : float;
  rmse_over_truth_pct : float;
  mc_variance : float;
  mean_est_variance : float;
  coverage_normal : float;
  coverage_chebyshev : float;
  mean_ci_width_rel : float;  (** normal CI width / truth *)
}

val trials :
  ?trials:int ->
  ?seed:int ->
  Gus_relational.Database.t ->
  Splan.t ->
  f:Gus_relational.Expr.t ->
  trial_stats
(** Repeatedly execute the plan with fresh RNGs (trial [t] seeds
    [seed + 7919·t]), stream each run through the SBox, and aggregate
    accuracy statistics against the exact answer. *)

val trials_par :
  ?pool:Gus_util.Pool.t ->
  ?trials:int ->
  ?seed:int ->
  Gus_relational.Database.t ->
  Splan.t ->
  f:Gus_relational.Expr.t ->
  trial_stats
(** {!trials} with the trials fanned across a domain pool.  Trial [t]
    always draws from the [t]-th {!Gus_util.Rng.derive}d child of the
    master seed, trials reduce in fixed blocks of 8 merged in block order
    ({!Gus_stats.Summary.merge}), so the result is {e bit-identical} for
    every pool size — including no pool at all.  (It differs in float
    reduction order, not in any sample, from {!trials}, which keeps its
    historical additive seeding.) *)

val map_trials_par :
  ?pool:Gus_util.Pool.t ->
  trials:int ->
  seed:int ->
  (Gus_util.Rng.t -> int -> 'a) ->
  'a array
(** Generic parallel trial loop for drivers with bespoke per-trial
    bodies: [body rng t] runs trial [t] with the [t]-th child stream of
    the master seed, and the results land in trial order.  Each slot is
    written independently, so the output is bit-identical for every pool
    size. *)

val time : (unit -> 'a) -> 'a * float
(** Wall-clock seconds. *)

val median_time_us : ?repeats:int -> (unit -> unit) -> float
(** Median wall-clock microseconds over [repeats] runs (default 9). *)

val db_cached : scale:float -> Gus_relational.Database.t
(** Memoized TPC-H database per scale (seed fixed at 20130630 — the arXiv
    date — so every experiment sees the same data). *)
