lib/sampling/subsample.mli: Gus_relational
