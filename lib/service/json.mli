(** Minimal JSON values for the NDJSON serving protocol.

    The repository deliberately has no JSON dependency: everything that
    {e emits} JSON hand-rolls it ([Lint.to_json], [Metrics.snapshot], the
    bench writer).  The serving protocol also has to {e read} JSON, so
    this module provides the small value type, a strict RFC-8259 parser
    and a compact printer the service layer shares.  Floats print in
    shortest round-trip form, so a value that survives a parse → print →
    parse cycle is bit-identical — the cache-parity cram tests compare
    estimates through this printer. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** insertion order preserved *)

exception Parse_error of string
(** Position-annotated message ("byte 17: expected ':'"). *)

val of_string : string -> t
(** Parse exactly one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  Raises {!Parse_error}. *)

val to_string : t -> string
(** Compact one-line rendering (no added whitespace) — one NDJSON line.
    Non-finite numbers render as [null] (JSON has no literal for them). *)

val number_to_string : float -> string
(** Integral floats as ["42"]; everything else via the shortest of
    [%.15g]/[%.16g]/[%.17g] that round-trips bit-identically. *)

(** {1 Accessors} — total, option-returning *)

val member : string -> t -> t option
(** Field of an [Obj] (first occurrence); [None] on anything else. *)

val to_str : t -> string option
val to_num : t -> float option

val to_int : t -> int option
(** [Num] with an integral value. *)

val to_bool : t -> bool option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option

val obj : (string * t option) list -> t
(** Build an object, dropping [None] fields — keeps optional protocol
    fields out of responses instead of emitting [null]s. *)
