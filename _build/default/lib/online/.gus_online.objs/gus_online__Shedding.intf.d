lib/online/shedding.mli: Gus_core Gus_estimator Gus_relational Gus_stats
