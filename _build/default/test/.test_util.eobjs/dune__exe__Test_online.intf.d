test/test_online.mli:
