(* Benchmark harness: regenerates every table/figure of the paper
   (T1-T4 exactly, E1-E7 in shape; see DESIGN.md's experiment index) and
   runs Bechamel micro-benchmarks over the SBox's hot paths.

   Usage:
     dune exec bench/main.exe            # quick experiments + micro-benches
     dune exec bench/main.exe -- --full  # full-size experiments
     dune exec bench/main.exe -- -e T3   # one experiment
     dune exec bench/main.exe -- --micro # micro-benchmarks only
     dune exec bench/main.exe -- --micro --json          # + BENCH_moments.json
     dune exec bench/main.exe -- --micro --quota 0.1     # shorter per-bench quota
     dune exec bench/main.exe -- --micro --pool-size 4   # fix the lane count *)

open Bechamel
open Toolkit
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Gus = Gus_core.Gus
module Symalg = Gus_core.Symalg
module Subset = Gus_util.Subset
module Moments = Gus_estimator.Moments
module Sbox = Gus_estimator.Sbox
module Pool = Gus_util.Pool
module Exp = Gus_experiments
module Service = Gus_service
module Json = Gus_service.Json

(* Numbers recorded on main before each optimization landed, same machine,
   measured inside a full --micro pass so the GC context matches fresh runs
   (trials-q1: the 5-trial materializing trial loop at scale 0.1, measured
   immediately before the streaming rewrite; in a cold process it reads
   ~7.2e6, the shared-heap context costs both implementations alike).
   Written into BENCH_moments.json so every later run carries the perf
   trajectory with it, and compared against fresh runs by the CI soft
   regression gate. *)
let baseline_main_ns =
  [ ("sbox/moments-2rel-10k", 4.95e6);
    ("sbox/moments-4rel-10k", 38.16e6);
    ("sbox/exec-query1-sampled", 2.13308e6);
    (* Measured immediately before the Gus_obs instrumentation landed:
       the reference for the "<2% overhead when disabled" claim, and what
       CI's hard overhead gate compares fresh runs against. *)
    ("sbox/stream-query1", 2.26286e6);
    ("harness/trials-q1", 10.83e6);
    (* Row-engine numbers measured immediately before the columnar storage
       swap: full SF-0.1 generation into boxed tuple rows, and a SUM scan
       walking those rows one Value at a time.  The columnar engine is read
       against these (scan-sum is the ≥5x acceptance row). *)
    ("tpch/load-sf0.1", 12.92e6);
    ("tpch/scan-sum-sf0.1", 62.61e3);
    (* Dense-engine rewrite numbers measured immediately before the
       symbolic coefficient algebra landed: every Rewrite.analyze call
       materialized the full 2^n b-vector.  The rewrite-n6/n10 rows now
       pin `Dense so they keep reading against these; the symbolic
       default path is the separate sbox/rewrite-sym-n10 row. *)
    ("sbox/rewrite-n6", 129.669e3);
    ("sbox/rewrite-n10", 515.02e3);
    (* Prepared-execution number measured immediately before the serving
       journal / SLO telemetry landed: the reference for the journal-off
       overhead gate (CI holds a fresh service/prepared-q1 within 5% of
       this, like obs/stream-query1-traced against sbox/stream-query1's
       pre-instrumentation baseline). *)
    ("service/prepared-q1", 107.39e3) ]

(* Where [baseline_main_ns] was measured.  ns-per-run is meaningless
   across machines, so both CI gates compare a fresh run against the
   baselines only when the fresh run's environment matches this record
   ([git_rev] aside); otherwise they skip with a notice. *)
let baseline_environment =
  [ ("ocaml_version", `S "5.1.1");
    ("recommended_domains", `I 1);
    ("pool_lanes", `I 2) ]

let git_rev () =
  try
    let ic =
      Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let micro_pool = lazy (Pool.create ~size:(max 2 (Pool.default_size ())))

(* One micro-benchmark: full display name, the staged body, a per-row
   quota floor and a per-row warmup count.  Allocation-heavy benches churn
   the major heap enough that the OLS fit needs a longer quota to
   stabilize (the committed exec-query1-sampled once recorded r² < 0);
   very fast bodies (the sub-100us service / scan / rewrite rows) need
   both a floor and many untimed warmup calls, or cold caches and the
   small sample count collapse the fit (the committed tpch/scan-sum-sf0.1
   and service/cache-hit-q1 once recorded r² << 0).  Rows sharing an
   effective quota are measured as one Bechamel group. *)
type spec = {
  name : string;
  quota_floor : float;
  warmup : int;
  body : unit -> unit;
}

let heavy_quota_floor = 1.0
let fit_quota_floor = 2.0
let fit_warmup = 256


let micro_specs ~quota () =
  (* Shared fixtures, built once. *)
  let plan6 = Exp.Exp_runtime.chain_plan ~n:6 in
  let plan10 = Exp.Exp_runtime.chain_plan ~n:10 in
  let card = Exp.Exp_runtime.chain_card in
  let gus10 = (Lazy.force (Rewrite.analyze ~card plan10).Rewrite.gus) in
  let rng = Gus_util.Rng.create 99 in
  let pairs n m =
    Array.init m (fun _ ->
        (Array.init n (fun _ -> Gus_util.Rng.int rng 1000), Gus_util.Rng.float rng))
  in
  let pairs2_10k = pairs 2 10_000 in
  let pairs4_10k = pairs 4 10_000 in
  (* 10-relation lineage where only 3 relations actually sample: the
     static analyzer proves the other 7 contribute zero Theorem-1
     coefficients, so the skip-mask run does 7 of the 1023 subset passes. *)
  let pairs10_10k = pairs 10 10_000 in
  (* 20-relation lineage, 3 sampled: past the dense wall (the moments
     kernel would need 2^20 passes and the rewrite a 2^20 b-vector).  The
     symbolic row analyzes the factorized design, projects to the 3 live
     relations, and runs 2^3 viewed passes over the native 20-column
     lineages — estimate, y-hat and variance included. *)
  let pairs20_10k = pairs 20 10_000 in
  let wide_rels = Array.init 20 (Printf.sprintf "w%02d") in
  let wide_sampled = [ 4; 9; 14 ] in
  let wide_sym () =
    let leaf i =
      let rel = wide_rels.(i) in
      let id = Symalg.identity [| rel |] in
      if List.mem i wide_sampled then
        Symalg.compact (Symalg.bernoulli ~rel 0.5) id
      else id
    in
    let s = ref (leaf 0) in
    for i = 1 to 19 do
      s := Symalg.join !s (leaf i)
    done;
    !s
  in
  let gus_n10 =
    Gus.join
      (Gus.join (Gus.bernoulli ~rel:"r0" 0.1)
         (Gus.join (Gus.bernoulli ~rel:"r1" 0.2) (Gus.bernoulli ~rel:"r2" 0.5)))
      (Gus.identity (Array.init 7 (Printf.sprintf "d%d")))
  in
  let skip10 = Gus_analysis.Cost.skip_mask gus_n10 in
  let pool = Lazy.force micro_pool in
  let db = Exp.Harness.db_cached ~scale:0.3 in
  let q1 = Exp.Harness.query1_plan () in
  let q1_gus = (Lazy.force (Rewrite.analyze_db db q1).Rewrite.gus) in
  let q1_sample = Splan.exec db (Gus_util.Rng.create 5) q1 in
  let db01 = Exp.Harness.db_cached ~scale:0.1 in
  (* Serving-layer fixtures: one engine, one dataset, one SQL text.  The
     cold row re-runs parse → plan → lint → execute every iteration; the
     prepared row amortizes the front half into a reusable handle (what
     [gusdb serve] does per [prepare]); the cache-hit row answers the
     same (handle, params, seed) from the engine's LRU without executing
     at all.  Scale 0.01 keeps execution small enough that the prepare
     overhead is visible in the cold/prepared gap. *)
  let serve_sql =
    "SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)"
  in
  let db001 = Exp.Harness.db_cached ~scale:0.01 in
  let engine = Service.Engine.create ~cache_capacity:8 () in
  ignore
    (Service.Engine.register_db engine ~name:"bench"
       ~source:(Service.Catalog.In_memory "tpch-0.01") db001);
  let serve_cat = Service.Engine.catalog engine in
  let _ = Service.Engine.prepare engine ~name:"q" ~dataset:"bench" serve_sql in
  (* Telemetry-on twin of the engine above: a journal ring plus SLO
     thresholds attached, so every execution additionally computes
     sampling-rate provenance, the Theorem-1 top variance-share node and
     the breach predicate, then records a ring event. *)
  let journal_engine =
    Service.Engine.create ~cache_capacity:8
      ~journal:(Gus_obs.Journal.create ~capacity:4096 ())
      ~slo:{ Gus_obs.Journal.max_rel_ci = Some 0.5; max_latency_ms = Some 50. }
      ()
  in
  ignore
    (Service.Engine.register_db journal_engine ~name:"bench"
       ~source:(Service.Catalog.In_memory "tpch-0.01") db001);
  let _ =
    Service.Engine.prepare journal_engine ~name:"q" ~dataset:"bench" serve_sql
  in
  let warm_handle = Service.Prepared.prepare serve_cat ~dataset:"bench" serve_sql in
  let ov = Service.Prepared.default_overrides in
  (* Session-layer twin of the cache-hit row: the same request, but as an
     NDJSON line through Session.handle (parse + dispatch + render). *)
  let bench_session = Service.Session.create engine in
  (match
     Service.Session.handle bench_session
       (Printf.sprintf
          "{\"op\":\"prepare\",\"dataset\":\"bench\",\"sql\":%s,\"name\":\"sq\"}"
          (Json.to_string (Json.Str serve_sql)))
   with
  | Some r when Json.member "ok" (Json.of_string r) = Some (Json.Bool true) ->
      ()
  | r -> failwith ("bench: session prepare failed: " ^ Option.value r ~default:"<none>"));
  let session_exec_line = "{\"op\":\"execute\",\"handle\":\"sq\",\"seed\":0}" in
  (* TPC-H scale sweep: generation, base-scan aggregate.  lineitem at
     SF 0.1 is the base relation every honest downstream number rests on. *)
  let lineitem01 =
    Gus_relational.Database.find (Exp.Harness.db_cached ~scale:0.1) "lineitem"
  in
  (* Snapshot fixture: one write of the SF-0.1 database, restored per
     iteration.  Restore is O(columns) header parsing + mmap, so the row
     reads directly against tpch/load-sf0.1 (the ≥10x acceptance pair). *)
  let snap01 = Filename.temp_file "gusdb-bench-sf01" ".snap" in
  at_exit (fun () -> try Sys.remove snap01 with Sys_error _ -> ());
  Gus_relational.Snapshot.save ~path:snap01 db01;
  (* SF-1 sweep rows cost ~130ms per load iteration; they only carry
     signal with a real quota, so they ride behind --quota >= 1. *)
  let sf1 =
    if quota < 1.0 then []
    else begin
      let db1 = Exp.Harness.db_cached ~scale:1.0 in
      let lineitem1 = Gus_relational.Database.find db1 "lineitem" in
      let snap1 = Filename.temp_file "gusdb-bench-sf1" ".snap" in
      at_exit (fun () -> try Sys.remove snap1 with Sys_error _ -> ());
      Gus_relational.Snapshot.save ~path:snap1 db1;
      [ { name = "tpch/load-sf1";
          quota_floor = heavy_quota_floor;
      warmup = 1;
          body =
            (fun () ->
              ignore (Gus_tpch.Tpch.generate ~seed:20130630 ~scale:1.0 ())) };
        { name = "tpch/scan-sum-sf1";
          quota_floor = fit_quota_floor;
      warmup = fit_warmup;
          body =
            (fun () ->
              ignore
                (Gus_relational.Relation.sum_column lineitem1 "l_extendedprice")) };
        { name = "tpch/snapshot-restore-sf1";
          quota_floor = heavy_quota_floor;
      warmup = 1;
          body = (fun () -> ignore (Gus_relational.Snapshot.load ~path:snap1)) } ]
    end
  in
  sf1
  @ [ { name = "tpch/load-sf0.1";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body =
        (fun () -> ignore (Gus_tpch.Tpch.generate ~seed:20130630 ~scale:0.1 ())) };
    { name = "tpch/scan-sum-sf0.1";
      quota_floor = fit_quota_floor;
      warmup = fit_warmup;
      body =
        (fun () ->
          ignore (Gus_relational.Relation.sum_column lineitem01 "l_extendedprice")) };
    { name = "tpch/snapshot-restore-sf0.1";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body = (fun () -> ignore (Gus_relational.Snapshot.load ~path:snap01)) };
    { name = "sbox/rewrite-n6";
      quota_floor = fit_quota_floor;
      warmup = fit_warmup;
      body = (fun () -> ignore (Rewrite.analyze ~coeff_engine:`Dense ~card plan6)) };
    { name = "sbox/rewrite-n10";
      quota_floor = fit_quota_floor;
      warmup = fit_warmup;
      body = (fun () -> ignore (Rewrite.analyze ~coeff_engine:`Dense ~card plan10)) };
    (* Same plan, default symbolic engine: the rewrite keeps the design
       factorized and never materializes the 2^10 b-vector.  CI's
       within-run gate asserts this row is >=50x faster than the `Dense
       row above. *)
    { name = "sbox/rewrite-sym-n10";
      quota_floor = fit_quota_floor;
      warmup = fit_warmup;
      body = (fun () -> ignore (Rewrite.analyze ~card plan10)) };
    { name = "sbox/c-coeffs-n10";
      quota_floor = fit_quota_floor;
      warmup = fit_warmup;
      body = (fun () -> ignore (Gus.c_coefficients gus10)) };
    { name = "sbox/moments-2rel-10k";
      quota_floor = fit_quota_floor;
      warmup = 1;
      body = (fun () -> ignore (Moments.of_pairs ~n_rels:2 pairs2_10k)) };
    { name = "sbox/moments-4rel-10k";
      quota_floor = fit_quota_floor;
      warmup = 1;
      body = (fun () -> ignore (Moments.of_pairs ~n_rels:4 pairs4_10k)) };
    (* The retained seed implementation: the "before" of the kernel. *)
    { name = "sbox/moments-2rel-10k-naive";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body = (fun () -> ignore (Moments.of_pairs_naive ~n_rels:2 pairs2_10k)) };
    { name = "sbox/moments-4rel-10k-naive";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body = (fun () -> ignore (Moments.of_pairs_naive ~n_rels:4 pairs4_10k)) };
    (* Multicore fan-out of the subset passes (threshold forced off so the
       pool is exercised even at 10k tuples). *)
    { name = "sbox/moments-4rel-10k-par";
      quota_floor = fit_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          ignore (Moments.of_pairs ~pool ~par_threshold:0 ~n_rels:4 pairs4_10k)) };
    { name = "sbox/bilinear-4rel-10k";
      quota_floor = fit_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          ignore
            (Moments.bilinear_of_pairs ~n_rels:4
               (Array.map (fun (l, f) -> (l, f, f)) pairs4_10k))) };
    (* Static skip-mask win: same input, same kernel; the masked run only
       visits the 2^3 − 1 live subset passes out of 2^10 − 1. *)
    { name = "sbox/moments-dense-n10";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body = (fun () -> ignore (Moments.of_pairs ~n_rels:10 pairs10_10k)) };
    (* The headline symbolic row: everything from factorized design to
       variance on a 20-relation lineage no dense path can touch.  Read
       against sbox/moments-dense-n10 — same kernel, same 10k tuples,
       half the relation count on the dense side, and the symbolic run
       is still two orders of magnitude faster because it only ever
       visits the 2^3 live subsets. *)
    { name = "sbox/moments-sym-n20";
      quota_floor = fit_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          let sym = wide_sym () in
          let live = Symalg.live_mask sym in
          let view = Array.of_list (Subset.elements live) in
          let gus = Symalg.to_gus (Symalg.project sym live) in
          let y =
            Moments.of_pairs ~view ~lineage_width:20
              ~n_rels:(Subset.cardinal live) pairs20_10k
          in
          let y_hat = Sbox.y_hat_of_moments ~gus y in
          let total_f = Moments.total pairs20_10k in
          let estimate = Gus.scale_up gus total_f in
          let variance = Gus.variance gus ~y:y_hat in
          ignore (estimate +. variance)) };
    { name = "sbox/moments-skipmask-n10";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          ignore (Moments.of_pairs ~skip_mask:skip10 ~n_rels:10 pairs10_10k)) };
    { name = "sbox/sbox-query1-e2e";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          ignore
            (Sbox.of_relation ~gus:q1_gus ~f:Exp.Harness.revenue_f q1_sample)) };
    { name = "sbox/exec-query1-sampled";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body = (fun () -> ignore (Splan.exec db (Gus_util.Rng.create 6) q1)) };
    (* Streaming pipeline: same plan, same seed, but the result tuples fold
       straight into the moments accumulator — the row to read against
       exec-query1-sampled + sbox-query1-e2e, whose sum it replaces. *)
    { name = "sbox/stream-query1";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          ignore
            (Sbox.of_plan ~gus:q1_gus ~f:Exp.Harness.revenue_f db
               (Gus_util.Rng.create 6) q1)) };
    (* Same body as stream-query1 but with tracing and metrics live for
       every iteration: read against sbox/stream-query1 (instrumentation
       compiled in but disabled) for the cost of turning observability on,
       and against the recorded pre-instrumentation baseline for the cost
       of having it compiled in at all. *)
    { name = "obs/stream-query1-traced";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          Gus_obs.Trace.set_enabled true;
          Gus_obs.Metrics.set_enabled true;
          Fun.protect
            ~finally:(fun () ->
              Gus_obs.Trace.set_enabled false;
              Gus_obs.Metrics.set_enabled false;
              Gus_obs.Trace.clear ())
            (fun () ->
              ignore
                (Sbox.of_plan ~gus:q1_gus ~f:Exp.Harness.revenue_f db
                   (Gus_util.Rng.create 6) q1))) };
    (* Monte-Carlo harness: 5 streaming trials (incl. the exact pass), at
       scale 0.1 to match the recorded pre-streaming baseline. *)
    { name = "harness/trials-q1";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          ignore
            (Exp.Harness.trials ~trials:5 ~seed:1 db01 q1
               ~f:Exp.Harness.revenue_f)) };
    { name = "harness/trials-q1-par";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          ignore
            (Exp.Harness.trials_par ~pool ~trials:5 ~seed:1 db01 q1
               ~f:Exp.Harness.revenue_f)) };
    (* Prepare-vs-cold: the serving layer's reason to exist, read as a
       triple — cold > prepared > cache-hit.  CI's within-run check
       asserts the ordering from these three rows. *)
    { name = "service/cold-q1";
      quota_floor = heavy_quota_floor;
      warmup = 1;
      body =
        (fun () ->
          let h = Service.Prepared.prepare serve_cat ~dataset:"bench" serve_sql in
          ignore (Service.Prepared.execute serve_cat h ov)) };
    { name = "service/prepared-q1";
      quota_floor = fit_quota_floor;
      warmup = fit_warmup;
      body = (fun () -> ignore (Service.Prepared.execute serve_cat warm_handle ov)) };
    { name = "service/cache-hit-q1";
      quota_floor = fit_quota_floor;
      warmup = fit_warmup;
      body = (fun () -> ignore (Service.Engine.execute engine ~handle:"q" ov)) };
    (* The same cache-hit request through the full session layer — NDJSON
       parse, dispatch, handle resolution, response render.  Read against
       service/cache-hit-q1 for the wire + session tax; CI's 5% gate on
       service/prepared-q1 holds the refactor itself to (near) zero. *)
    { name = "service/session-q1";
      quota_floor = fit_quota_floor;
      warmup = fit_warmup;
      body =
        (fun () ->
          ignore (Service.Session.handle bench_session session_exec_line)) };
    (* Cache-hit row with the flight recorder live: read against
       service/cache-hit-q1 for the journal's marginal per-request cost
       (provenance + top-node attribution + ring write).  The cost of the
       telemetry being compiled in but OFF is service/prepared-q1 against
       its recorded pre-journal baseline — CI's hard 5% gate. *)
    { name = "service/journal-overhead";
      quota_floor = fit_quota_floor;
      warmup = fit_warmup;
      body =
        (fun () ->
          ignore (Service.Engine.execute journal_engine ~handle:"q" ov)) } ]

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_nan x || x = infinity || x = neg_infinity then "null"
  else Printf.sprintf "%.6g" x

let json_env_fields fields =
  String.concat ", "
    (List.map
       (fun (k, v) ->
         match v with
         | `S s -> Printf.sprintf "\"%s\": \"%s\"" k (json_escape s)
         | `I n -> Printf.sprintf "\"%s\": %d" k n)
       fields)

let write_json ~path ~quota rows =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"gus-bench-moments/v2\",\n";
  out "  \"generated_by\": \"dune exec bench/main.exe -- --micro --json\",\n";
  out "  \"unit\": \"ns/run\",\n";
  out "  \"quota_s\": %s,\n" (json_float quota);
  out "  \"pool_lanes\": %d,\n" (Pool.size (Lazy.force micro_pool));
  out "  \"recommended_domains\": %d,\n" (Pool.recommended_size ());
  (* Provenance: ns-per-run rows are only comparable within one
     environment, so the file records where it was generated and where
     the baselines came from; CI matches the two before gating. *)
  out "  \"environment\": { %s },\n"
    (json_env_fields
       [ ("ocaml_version", `S Sys.ocaml_version);
         ("recommended_domains", `I (Pool.recommended_size ()));
         ("pool_lanes", `I (Pool.size (Lazy.force micro_pool)));
         ("git_rev", `S (git_rev ())) ]);
  out "  \"baseline_environment\": { %s },\n"
    (json_env_fields baseline_environment);
  out "  \"baseline_main_ns\": {\n";
  List.iteri
    (fun i (name, ns) ->
      out "    \"%s\": %s%s\n" (json_escape name) (json_float ns)
        (if i = List.length baseline_main_ns - 1 then "" else ","))
    baseline_main_ns;
  out "  },\n";
  out "  \"results\": [\n";
  List.iteri
    (fun i (name, est, r2) ->
      let low_fit = Float.is_nan r2 || r2 < 0.5 in
      out "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s%s}%s\n"
        (json_escape name) (json_float est) (json_float r2)
        (if low_fit then ", \"low_fit\": true" else "")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let bench_group ~quota specs =
  if specs = [] then []
  else begin
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
    in
    (* Per-bench warmup: one untimed call apiece, so first-touch effects
       (lazy fixtures, page faults, branch-predictor cold start) land
       outside the measured window.  The compaction then resets the major
       heap so earlier allocation-heavy benches don't tax this group's
       GC pacing. *)
    List.iter
      (fun s ->
        for _ = 1 to s.warmup do
          s.body ()
        done)
      specs;
    Gc.compact ();
    let tests =
      Test.make_grouped ~name:"" ~fmt:"%s%s"
        (List.map (fun s -> Test.make ~name:s.name (Staged.stage s.body)) specs)
    in
    let raw = Benchmark.all cfg instances tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
  end

let run_micro ~quota ~json () =
  print_endline "\n=== Bechamel micro-benchmarks (monotonic clock) ===\n";
  let specs = micro_specs ~quota () in
  (* Rows sharing an effective quota (requested quota floored per row)
     are measured as one group, so floored rows keep their fits stable
     under a short --quota while unfloored rows stay cheap. *)
  let effective s = Float.max quota s.quota_floor in
  let quotas =
    List.sort_uniq compare (List.map effective specs)
  in
  let rows =
    List.concat_map
      (fun q -> bench_group ~quota:q (List.filter (fun s -> effective s = q) specs))
      quotas
  in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let rows =
    List.map
      (fun (name, r) ->
        let est =
          match Analyze.OLS.estimates r with Some [ e ] -> e | _ -> nan
        in
        let r2 = match Analyze.OLS.r_square r with Some r2 -> r2 | None -> nan in
        (name, est, r2))
      rows
  in
  let t = Gus_util.Tablefmt.create ~headers:[ "benchmark"; "time/run"; "r^2" ] in
  List.iter
    (fun (name, est, r2) ->
      let r2_cell = if Float.is_nan r2 then "-" else Printf.sprintf "%.3f" r2 in
      let human =
        if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
        else Printf.sprintf "%.0f ns" est
      in
      Gus_util.Tablefmt.add_row t [ name; human; r2_cell ])
    rows;
  Gus_util.Tablefmt.print t;
  if json then write_json ~path:"BENCH_moments.json" ~quota rows

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let micro_only = List.mem "--micro" args in
  let json = List.mem "--json" args in
  let find_opt_arg flag =
    let rec find = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let quota =
    match find_opt_arg "--quota" with
    | None -> 0.5
    | Some s -> (
        match float_of_string_opt s with
        | Some q when q > 0.0 -> q
        | _ ->
            Printf.eprintf "invalid --quota %s\n" s;
            exit 1)
  in
  (match find_opt_arg "--pool-size" with
  | None -> ()
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Pool.set_default_size n
      | _ ->
          Printf.eprintf "invalid --pool-size %s\n" s;
          exit 1));
  let single = find_opt_arg "-e" in
  Printf.printf
    "GUS sampling algebra - benchmark harness (paper tables T1-T4, \
     experiments E1-E7)\n";
  (match (micro_only, single) with
  | true, _ -> ()
  | _, Some id -> begin
      match Exp.Registry.find id with
      | Some e -> if full then e.Exp.Registry.run () else e.Exp.Registry.quick ()
      | None ->
          Printf.eprintf "unknown experiment %s; known: %s\n" id
            (String.concat ", "
               (List.map (fun e -> e.Exp.Registry.id) Exp.Registry.all));
          exit 1
    end
  | false, None -> Exp.Registry.run_all ~quick:(not full) ());
  if single = None then run_micro ~quota ~json ()
