examples/strategy_choice.mli:
