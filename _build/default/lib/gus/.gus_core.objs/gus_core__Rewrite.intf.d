lib/gus/rewrite.mli: Gus Gus_relational Gus_sampling Splan
