type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

exception Type_error of string

type ty = TBool | TInt | TFloat | TStr

let ty_name = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr

let conforms v ty =
  match type_of v with None -> true | Some t -> t = ty

let is_null = function Null -> true | _ -> false

let describe = function
  | Null -> "null"
  | Bool b -> Printf.sprintf "bool %b" b
  | Int i -> Printf.sprintf "int %d" i
  | Float f -> Printf.sprintf "float %g" f
  | Str s -> Printf.sprintf "string %S" s

let type_error op v =
  raise (Type_error (Printf.sprintf "%s applied to %s" op (describe v)))

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> type_error "to_float" v

let to_int = function Int i -> i | v -> type_error "to_int" v
let to_bool = function Bool b -> b | v -> type_error "to_bool" v
let to_string_exn = function Str s -> s | v -> type_error "to_string" v

let arith op_name int_op float_op a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (float_op (to_float a) (to_float b))
  | v, (Int _ | Float _) -> type_error op_name v
  | _, v -> type_error op_name v

let add a b = arith "+" ( + ) ( +. ) a b
let sub a b = arith "-" ( - ) ( -. ) a b
let mul a b = arith "*" ( * ) ( *. ) a b

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _, Int 0 -> raise (Type_error "division by zero")
  | _, Float 0.0 -> raise (Type_error "division by zero")
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a /. to_float b)
  | v, (Int _ | Float _) -> type_error "/" v
  | _, v -> type_error "/" v

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | v -> type_error "unary -" v

let compare_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Bool x, Bool y -> Some (Bool.compare x y)
  | Int x, Int y -> Some (Int.compare x y)
  | (Int _ | Float _), (Int _ | Float _) ->
      Some (Float.compare (to_float a) (to_float b))
  | Str x, Str y -> Some (String.compare x y)
  | _ -> None

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> x = y
  | _ -> false

let hash = function
  | Null -> 0x6e756c6c
  | Bool b -> if b then 3 else 5
  | Int i -> Int64.to_int (Gus_util.Hashing.hash_int ~seed:7 i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Int64.to_int (Gus_util.Hashing.hash_int ~seed:7 (int_of_float f))
      else Hashtbl.hash f
  | Str s -> Int64.to_int (Gus_util.Hashing.hash_string ~seed:11 s)

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%s" s

let to_display v = Format.asprintf "%a" pp v
