examples/join_order.ml: Expr Format Gus_core Gus_estimator Gus_relational Gus_stats Gus_tpch List Printf String
