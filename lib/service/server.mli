(** Concurrent TCP transport: many NDJSON {!Session}s over one shared
    {!Engine}.

    Each accepted connection gets its own session (its own prepared
    handles) and two threads: a {e reader} that runs {!Admission.enter}
    the moment a request line arrives — queued work counts as in
    flight, and shed decisions belong to arrival time — and pushes into
    a bounded per-connection queue (bound = the admission controller's
    [session_inflight]); and a {e worker} that pops FIFO, dispatches
    under the server-wide driving lock (the engine is
    driving-thread-only — concurrency overlaps I/O and admission, not
    query execution), and writes the response.  A full queue blocks the
    reader, which stops reading the socket — backpressure reaches the
    client through TCP with no unbounded buffering anywhere.

    Failure isolation: a malformed frame is an error {e response} on
    its own connection; a dead socket tears down only its own threads
    and session.  Sibling sessions keep their handles and cache
    entries. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?admission:Admission.t ->
  ?after:(unit -> unit) ->
  Engine.t ->
  t
(** Bind and listen on [host:port] (default [127.0.0.1:0]; port [0]
    picks an ephemeral port — read it back with {!port}), spawn the
    accept thread, and return immediately.  [admission] enables
    bounded in-flight + shedding; without it every request is admitted
    and per-connection queues default to 8.  [after] runs (under the
    driving lock) once per answered request.  Ignores [SIGPIPE]
    process-wide: a dead client must be an error on its connection,
    not a process kill.  Raises [Unix.Unix_error] when the address
    cannot be bound. *)

val port : t -> int
(** The bound port (the actual one when [port:0] was asked). *)

val stop : t -> unit
(** Close the listen socket, shut down every connection, and join all
    threads.  Idempotent. *)

val wait : t -> unit
(** Block until the accept loop exits (i.e. until {!stop}) — the
    foreground mode of [gusdb serve --tcp]. *)
