lib/estimator/wr_baseline.ml: Expr Gus_relational Gus_stats Relation
