module Splan = Gus_core.Splan
module Gus = Gus_core.Gus
module Interval = Gus_stats.Interval
module Sampler = Gus_sampling.Sampler
open Gus_relational

type join_graph = {
  relations : string list;
  predicates : (string * string * Expr.t * Expr.t) list;
}

type prefix_estimate = {
  after_joining : string;
  size : float;
  interval : Interval.t;
}

type ranked_order = {
  order : string list;
  cost : float;
  prefixes : prefix_estimate list;
  cross_products : int;
}

let max_relations = 7

let validate db graph =
  if List.length graph.relations > max_relations then
    invalid_arg
      (Printf.sprintf "Advisor: %d relations exceed the exhaustive limit %d"
         (List.length graph.relations) max_relations);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if Hashtbl.mem seen r then
        invalid_arg (Printf.sprintf "Advisor: duplicate relation %s" r);
      Hashtbl.add seen r ();
      if not (Database.mem db r) then
        invalid_arg (Printf.sprintf "Advisor: unknown relation %s" r))
    graph.relations;
  List.iter
    (fun (a, b, _, _) ->
      if not (Hashtbl.mem seen a && Hashtbl.mem seen b) then
        invalid_arg "Advisor: predicate over a relation not in the graph")
    graph.predicates

(* Find an unused predicate connecting [rel] to the prefix set. *)
let connecting graph prefix rel =
  List.find_opt
    (fun (a, b, _, _) ->
      (List.mem a prefix && b = rel) || (List.mem b prefix && a = rel))
    graph.predicates

let extend_plan graph prefix_rels plan rel =
  match connecting graph prefix_rels rel with
  | Some (a, _, ka, kb) ->
      let left_key, right_key = if List.mem a prefix_rels then (ka, kb) else (kb, ka) in
      (Splan.Equi_join { left = plan; right = Splan.Scan rel; left_key; right_key }, false)
  | None -> (Splan.Cross (plan, Splan.Scan rel), true)

let plan_of_order graph order =
  match order with
  | [] -> invalid_arg "Advisor.plan_of_order: empty order"
  | first :: rest ->
      let plan, _, _ =
        List.fold_left
          (fun (plan, prefix, crosses) rel ->
            let plan, is_cross = extend_plan graph prefix plan rel in
            (plan, rel :: prefix, if is_cross then crosses + 1 else crosses))
          (Splan.Scan first, [ first ], 0)
          rest
      in
      plan

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let advise ?(seed = 2013) ?(rate = 0.05) db graph =
  validate db graph;
  if not (rate > 0.0 && rate <= 1.0) then invalid_arg "Advisor: rate not in (0,1]";
  (* One shared pilot sample per base relation. *)
  let rng = Gus_util.Rng.create seed in
  let sampled = Database.create () in
  List.iter
    (fun r ->
      let s = Sampler.apply (Sampler.Bernoulli rate) rng (Database.find db r) in
      (* Re-register under the original name so skeleton Scans resolve. *)
      let renamed =
        Relation.derived ~name:r s.Relation.schema s.Relation.lineage_schema
      in
      Relation.iter (Relation.append_tuple renamed) s;
      Database.add sampled renamed)
    graph.relations;
  let cost_order order =
    match order with
    | [] -> invalid_arg "Advisor: empty order"
    | first :: rest ->
        let _, _, crosses, prefixes =
          List.fold_left
            (fun (plan, prefix_rels, crosses, acc) rel ->
              let plan, is_cross = extend_plan graph prefix_rels plan rel in
              let prefix_rels = rel :: prefix_rels in
              (* The prefix over the pilot samples, analyzed as a GUS plan:
                 every scan is a Bernoulli(rate) sample. *)
              let sample_rel = Splan.exec sampled (Gus_util.Rng.create 0) plan in
              let gus =
                List.fold_left
                  (fun g r ->
                    match g with
                    | None -> Some (Gus.bernoulli ~rel:r rate)
                    | Some g -> Some (Gus.join g (Gus.bernoulli ~rel:r rate)))
                  None (List.rev prefix_rels)
                |> Option.get
              in
              let report = Sbox.of_relation ~gus ~f:(Expr.float 1.0) sample_rel in
              let est =
                { after_joining = rel;
                  size = report.Sbox.estimate;
                  interval = Sbox.interval Interval.Normal report }
              in
              (plan, prefix_rels, (if is_cross then crosses + 1 else crosses),
               est :: acc))
            (Splan.Scan first, [ first ], 0, [])
            rest
        in
        let prefixes = List.rev prefixes in
        { order;
          cost = List.fold_left (fun acc p -> acc +. p.size) 0.0 prefixes;
          prefixes;
          cross_products = crosses }
  in
  let ranked = List.map cost_order (permutations graph.relations) in
  List.sort
    (fun a b ->
      match compare a.cross_products b.cross_products with
      | 0 -> compare a.cost b.cost
      | c -> c)
    ranked

let best ?seed ?rate db graph =
  match advise ?seed ?rate db graph with
  | [] -> invalid_arg "Advisor.best: empty graph"
  | first :: _ -> first
