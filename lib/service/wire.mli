(** The wire layer of the NDJSON serving protocol: the stable error-code
    registry, request-field accessors, and response renderings.

    Transport- and session-independent: {!Session} (dispatch and
    per-connection state) and both transports — {!Protocol}'s
    stdin/stdout loop and {!Server}'s TCP accept loop — sit on top of
    this module, and the CLI shares {!error_of_exn} so one failure maps
    to one code everywhere. *)

val protocol_version : int
(** Wire protocol version, reported by [hello] and [stats].  Bumped only
    on a breaking change to the request or response shapes. *)

exception Bad_request of string

exception Overloaded of string
(** Admission control refused the request outright (hard in-flight cap).
    Distinct from {e shedding}, which degrades sampling rates but still
    answers. *)

exception Session_closed
(** Request submitted to a {!Session.t} after [close]. *)

(** {2 Error codes} *)

type emitter =
  | Protocol_error  (** emitted in protocol [error.code] fields *)
  | Cli_error  (** emitted only by a CLI subcommand's [--json] errors *)

val error_codes : (string * emitter * string) list
(** The full stable registry: [(code, emitter, description)].  Every
    code the server or CLI can emit appears here (asserted by a test),
    and DESIGN.md section 13 renders this table.  Codes are append-only:
    removing or renaming one is a protocol break. *)

val error_of_exn : exn -> (string * string) option
(** [(code, message)] for every exception with a stable protocol
    mapping; [None] for genuine bugs, which should crash loudly. *)

val error_json : ?op:string -> string -> string -> Json.t
(** [error_json ?op code message] — the [{ok:false, error:{code,
    message}}] envelope. *)

val protect : op:string option -> (unit -> Json.t) -> Json.t
(** Run a handler, mapping raisable protocol errors to {!error_json}. *)

(** {2 Request-field accessors}

    All raise {!Bad_request} (with the field name) on a missing required
    field or an ill-typed value. *)

val req_str : Json.t -> string -> string
val opt_str : Json.t -> string -> string option
val opt_num : Json.t -> string -> default:float -> float
val opt_int : Json.t -> string -> default:int -> int
val opt_bool : Json.t -> string -> default:bool -> bool

val check_fields : op:string -> string list -> Json.t -> unit
(** Reject unknown request fields with a structured {!Bad_request} — a
    misspelled ["seed"] must not silently become a default-seeded
    answer.  Total on non-object JSON (dispatch rejects those with its
    own message). *)

(** {2 Response pieces} *)

val interval_json : Gus_stats.Interval.t -> Json.t
val cell_json : Gus_sql.Runner.cell -> Json.t
val result_json : Gus_sql.Runner.result -> Json.t
val exact_json : Gus_sql.Runner.response -> Json.t option
val diagnostic_json : Gus_analysis.Diagnostic.t -> Json.t
val rates_json : (string * float) list -> Json.t

val response_json :
  ?shed:(string * float) list * float -> handle:string -> Engine.outcome -> Json.t
(** The [execute] response.  [shed = (rates, overload)] marks a degraded
    response: adds [shed:true], the selected per-relation [shed_rates],
    and the [overload] factor that triggered them — absent entirely on
    un-shed traffic, so the healthy response shape is unchanged. *)

val source_of_request : Json.t -> Catalog.source
(** Decode a [register] request's source spec ([tpch] | [synthetic] |
    [csv] | [snapshot]); raises {!Bad_request} on an unknown source. *)
