(** The SOA-equivalence rewriter (Section 4): transform a plan containing
    sampling operators into an analytically equivalent plan with a single
    GUS quasi-operator on top of a sample-free relational skeleton.

    The returned {!Gus_core.Gus.t} plus the executed sample's result tuples
    are all the SBox needs (Theorem 1 + Section 6).  The rewrite never
    executes anything; it is a pure bottom-up fold using Props. 4–8.

    This module is a thin wrapper over {!Lint}: the fold itself lives in
    the linter, which collects {e every} precondition violation as a
    structured {!Diagnostic.t}.  [analyze] raises {!Unsupported} iff the
    linter reports at least one [Error]-severity finding, and the exception
    message lists {e all} of them, each with its stable [GUSxxx] code. *)

exception Unsupported of string
(** Raised for plans outside the GUS theory: with-replacement sampling
    (GUS006), WOR or block sampling over derived inputs (GUS003/GUS004),
    self-joins (GUS001), union of samples of different expressions
    (GUS002), DISTINCT above sampling (GUS007), out-of-range probabilities
    (GUS008), degenerate [a = 0] samplers (GUS009), and plans beyond the
    2ⁿ-coefficient analysis limit (GUS013).  The message contains one line
    per finding, each prefixed with its code. *)

val render_errors : Diagnostic.t list -> string
(** The multi-line message format used for {!Unsupported} payloads. *)

type result = {
  skeleton : Gus_core.Splan.t;
      (** the input with every sampling operator removed *)
  sym : Gus_core.Symalg.t;
      (** single equivalent GUS over the skeleton's lineage, kept in
          symbolic sum-of-products form — the primary representation *)
  gus : Gus_core.Gus.t Lazy.t;
      (** dense materialization of [sym], forced on demand; raises
          {!Gus_core.Gus.Incompatible} past the dense width wall *)
  steps : (string * Gus_core.Symalg.t) list;
      (** derivation trace, leaves first — the Figure-4 walk-through *)
}

val dense : result -> Gus_core.Gus.t
(** Force the dense materialization.  Raises
    {!Gus_core.Gus.Incompatible} past {!Gus_util.Subset.max_universe}
    relations — wide plans must stay on the symbolic representation. *)

val analyze :
  ?coeff_engine:Lint.coeff_engine ->
  card:(string -> int) ->
  Gus_core.Splan.t ->
  result
(** [card] resolves base-relation cardinalities (needed to translate
    [WOR(n)] into [a = n/N]); typically [fun r -> Relation.cardinality
    (Database.find db r)].  [coeff_engine] selects the root
    check/cost engine (default [`Symbolic]); see {!Lint.coeff_engine}. *)

val analyze_db :
  ?coeff_engine:Lint.coeff_engine ->
  Gus_relational.Database.t ->
  Gus_core.Splan.t ->
  result

val sampler_gus :
  card:(string -> int) ->
  over:Gus_relational.Lineage.schema ->
  input:Lint.sampler_input ->
  Gus_sampling.Sampler.t ->
  Gus_core.Gus.t
(** GUS translation of one sampling operator applied to an input with the
    given lineage schema and {!Lint.sampler_input} kind (WOR and block
    sampling are only translatable over a base table or, for WOR, a
    cardinality-preserving projection of one).  Raises {!Unsupported}
    with the corresponding diagnostic codes. *)
