(** The serving engine: catalog + prepared handles + estimate cache +
    batch scheduler behind one session object.

    One engine instance is long-lived server state (the [gusdb serve]
    loop owns exactly one).  All driving-thread state — the handle
    table, the LRU {!Cache} — is touched only between fan-outs; batch
    execution runs on pool lanes against immutable snapshots.

    {b Cache key.}  [dataset NUL version NUL sql NUL canonical-params],
    where canonical-params is ["seed=<n>;exact=<b>;rates=<rel>:<rate>,…"]
    with rates sorted by relation name and printed in shortest
    round-trip form — equal keys imply bit-identical responses (see
    {!Gus_sql.Runner.execute}).  Registering or removing a dataset drops
    the name's entries via a {!Catalog.on_mutate} hook (the version in
    the key already makes stale entries unreachable; eager dropping
    frees capacity).  Explained executions bypass the cache entirely —
    their per-node timings are measurements, not query semantics. *)

type t

exception Unknown_handle of string

val create :
  ?cache_capacity:int ->
  ?pool:Gus_util.Pool.t ->
  ?journal:Gus_obs.Journal.t ->
  ?slo:Gus_obs.Journal.slo ->
  ?on_breach:(string -> unit) ->
  unit ->
  t
(** [cache_capacity] defaults to 128 responses.  [pool] (shared, not
    owned: the engine never shuts it down) parallelizes {!batch} only —
    single executions and everything inside one query run sequentially,
    so estimates never depend on lane count.

    [journal] turns on the flight recorder: one event per
    register/execute/batch item, recorded on the driving thread (batch
    items in the serial fill phase, in submission order).  [slo]
    (default {!Gus_obs.Journal.no_slo}) marks journal events
    [breach:true] and bumps the [slo.breaches*] counters when a
    response's relative CI half-width or wall-clock exceeds the
    thresholds; [on_breach] receives a rate-limited (1/s) human-readable
    line per breach burst — the serve loop points it at stderr.  With
    all three absent, per-execution telemetry is a three-field check. *)

val catalog : t -> Catalog.t

val journal : t -> Gus_obs.Journal.t option
val slo : t -> Gus_obs.Journal.slo

val uptime_ns : t -> int
(** Nanoseconds since {!create} (monotonic clock). *)

val pool_size : t -> int
(** Lanes available to {!batch}: the pool's size, or 1 when unpooled. *)

val register : t -> name:string -> source:Catalog.source -> Catalog.entry
(** Build the dataset from its source description and (re)bind it —
    see {!Catalog.load}. *)

val register_db :
  t -> name:string -> source:Catalog.source -> Gus_relational.Database.t ->
  Catalog.entry

val prepare : t -> ?name:string -> dataset:string -> string -> string * Prepared.t
(** Prepare once and install the handle under [name] (default
    ["q<n>"], n counting up).  Re-using a name replaces the handle. *)

val find_prepared : t -> string -> Prepared.t option
val prepared_names : t -> (string * Prepared.t) list
(** Sorted by handle name. *)

type outcome = {
  response : Gus_sql.Runner.response;
  cached : bool;  (** answered from the LRU without executing *)
  wall_ns : int;  (** this call, including cache probes *)
}

val execute : t -> handle:string -> Prepared.overrides -> outcome
(** Raises {!Unknown_handle}, {!Catalog.Unknown_dataset}, or the
    execution-time errors of {!Prepared.execute}. *)

val execute_prepared : t -> label:string -> Prepared.t -> Prepared.overrides -> outcome
(** Like {!execute} but with the handle already resolved — the entry
    point for callers that keep their own handle namespace (each
    {!Session} scopes prepared handles to one connection).  [label] is
    the display name journaled and logged for this execution. *)

val batch : t -> (string * Prepared.overrides) array -> (outcome, exn) result array
(** Resolve and cache-probe every item serially in submission order,
    fan the misses across the pool via {!Scheduler.map}, then fill the
    cache back in submission order.  Results line up with the input
    array for any pool size; per-item failures are [Error], the batch
    itself never raises. *)

val batch_prepared :
  t ->
  (string * Prepared.t option * Prepared.overrides) array ->
  (outcome, exn) result array
(** {!batch} with handles pre-resolved by the caller's own namespace;
    [None] yields [Error (Unknown_handle label)] for that item. *)

val cache_key : t -> Prepared.t -> Prepared.overrides -> string
(** The canonical key {!execute} uses (at the dataset's {e current}
    version); exposed for invalidation tests. *)

val cache_length : t -> int
val cache_capacity : t -> int
