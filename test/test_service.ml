(* Serving-layer tests:

   1. Json: parse/print units, escape handling, and a QCheck round-trip
      (print → parse is the identity, floats bit-identical).
   2. Cache: LRU eviction order, recency bumps on find and re-add,
      prefix invalidation, and the cache.hits/misses/evictions counters.
   3. Catalog: version bumps on re-registration, mutation hooks,
      source rendering.
   4. Prepared: rate overrides rewrite exactly the named relations'
      samplers (and reject unknown names), version-bump re-preparation.
   5. Engine: second identical execute is a recorded cache hit with a
      bit-identical response; catalog mutation invalidates; prepared
      execution matches one-shot Runner.run estimates bit for bit.
   6. Scheduler + QCheck: cached and uncached execution of the same
      (sql, params, seed) are bit-identical, and batch fan-out returns
      identical results in identical order for pool sizes {1, 2, 4}.
   7. Protocol: NDJSON units for register/prepare/execute/stats and the
      structured error objects.
   8. Telemetry: sampling-rate provenance for journal events, SLO breach
      marking (journal flag, counters, rate-limited callback), and the
      replay QCheck property — a journal of random executions (random
      seeds/rates/explain, row and columnar storage) replays with every
      estimate/stddev/variance bit-identical. *)

module Json = Gus_service.Json
module Cache = Gus_service.Cache
module Catalog = Gus_service.Catalog
module Prepared = Gus_service.Prepared
module Engine = Gus_service.Engine
module Scheduler = Gus_service.Scheduler
module Protocol = Gus_service.Protocol
module Wire = Gus_service.Wire
module Session = Gus_service.Session
module Admission = Gus_service.Admission
module Server = Gus_service.Server
module Replay = Gus_service.Replay
module Journal = Gus_obs.Journal
module Runner = Gus_sql.Runner
module Metrics = Gus_obs.Metrics
module Pool = Gus_util.Pool
module Splan = Gus_core.Splan

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let pool_of =
  let tbl = Hashtbl.create 4 in
  fun size ->
    match Hashtbl.find_opt tbl size with
    | Some p -> p
    | None ->
        let p = Pool.create ~size in
        Hashtbl.add tbl size p;
        p

(* One small shared database; every engine below registers this same
   immutable snapshot, so engine construction is cheap. *)
let db = Gus_tpch.Tpch.generate ~seed:1 ~scale:0.05 ()
let dataset = "d"

let fresh_engine ?pool () =
  let e = Engine.create ~cache_capacity:8 ?pool () in
  ignore
    (Engine.register_db e ~name:dataset ~source:(Catalog.In_memory "test") db);
  e

let sql_single = "SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)"

let sql_join =
  "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM lineitem \
   TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (200 ROWS) WHERE l_orderkey \
   = o_orderkey"

(* Canonical bit-exact signature of a response: the round-trip JSON
   printer makes string equality float-bit equality. *)
let sig_of (rs : Runner.response) =
  Json.to_string
    (Json.obj
       [ ("result", Some (Protocol.result_json rs.Runner.rs_result));
         ("exact", Protocol.exact_json rs);
         ("streamed", Some (Json.Bool rs.Runner.rs_streamed)) ])

(* ---- Workload lint + lint-once metric ---- *)

let test_workload_json_roundtrip () =
  (* A tiny on-disk corpus with one clean file and one file holding an
     error finding plus an unparsable statement; the aggregated JSON
     must survive a print → parse → print cycle byte for byte. *)
  let dir =
    let f = Filename.temp_file "gus_workload" "" in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f
  in
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "good.sql" (sql_single ^ ";\n");
  write "bad.sql"
    "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT), \
     lineitem;\nSELECT BOGUS;\n";
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let wl = Gus_service.Workload_lint.run db dir in
      check_int "files" 2 wl.Gus_service.Workload_lint.files;
      check_int "unparsable" 1 (Gus_service.Workload_lint.unparsable wl);
      check_int "errors" 1 (Gus_service.Workload_lint.errors wl);
      check_int "exit code" 1 (Gus_service.Workload_lint.exit_code wl);
      let s = Json.to_string (Gus_service.Workload_lint.to_json wl) in
      check_string "json round-trip" s (Json.to_string (Json.of_string s));
      (* missing directory is the caller's problem, as documented *)
      match Gus_service.Workload_lint.run db (Filename.concat dir "absent") with
      | exception Sys_error _ -> ()
      | _ -> Alcotest.fail "missing corpus dir must raise Sys_error")

let test_execute_never_relints () =
  (* The analyzer runs once at prepare time; plain executions (cached or
     not) reuse the recorded facts.  Only a sampler override, which
     changes the plan, may re-lint. *)
  let lint_runs = Metrics.counter "analysis.lint.runs" in
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled was_enabled)
    (fun () ->
      let e = fresh_engine () in
      let before = Metrics.counter_value lint_runs in
      let handle, _ = Engine.prepare e ~dataset sql_join in
      let after_prepare = Metrics.counter_value lint_runs in
      check_int "prepare lints exactly once" 1 (after_prepare - before);
      for seed = 1 to 3 do
        ignore
          (Engine.execute e ~handle { Prepared.default_overrides with seed })
      done;
      ignore (Engine.execute e ~handle Prepared.default_overrides);
      check_int "executes never re-lint" after_prepare
        (Metrics.counter_value lint_runs))

(* ---- 1. Json ---- *)

let test_json_basics () =
  let j = Json.of_string {| {"a": [1, 2.5, -3e2], "b": "x\n\"y\u00e9", "c": {"t": true, "n": null}} |} in
  check_string "string escape" "x\n\"y\xc3\xa9"
    (Option.get (Option.bind (Json.member "b" j) Json.to_str));
  (match Option.bind (Json.member "a" j) Json.to_list with
  | Some [ a; b; c ] ->
      check_int "int" 1 (Option.get (Json.to_int a));
      Alcotest.check (Alcotest.float 0.) "frac" 2.5 (Option.get (Json.to_num b));
      Alcotest.check (Alcotest.float 0.) "exp" (-300.) (Option.get (Json.to_num c))
  | _ -> Alcotest.fail "list shape");
  check_bool "bool" true
    (Option.get
       (Option.bind (Json.member "c" j) (fun c ->
            Option.bind (Json.member "t" c) Json.to_bool)));
  check_string "compact print" {|{"x":[1,true,null,"q"]}|}
    (Json.to_string
       (Json.Obj [ ("x", Json.List [ Json.Num 1.; Json.Bool true; Json.Null; Json.Str "q" ]) ]));
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad))
    [ ""; "{"; "[1,]"; "{\"a\":1,}"; "tru"; "1 2"; "\"\\x\""; "\"unterminated" ]

let test_json_roundtrip () =
  QCheck.Test.check_exn
  @@ QCheck.Test.make ~name:"json print/parse round-trip" ~count:200
       QCheck.(
         pair (list (pair small_string float)) (list small_string))
       (fun (fields, strings) ->
         let v =
           Json.Obj
             [ ( "o",
                 Json.Obj (List.map (fun (k, f) -> (k, Json.Num f)) fields) );
               ("l", Json.List (List.map (fun s -> Json.Str s) strings)) ]
         in
         (* non-finite floats print as null by design; skip those *)
         QCheck.assume
           (List.for_all (fun (_, f) -> Float.is_finite f) fields);
         let v' = Json.of_string (Json.to_string v) in
         Json.to_string v = Json.to_string v'
         &&
         match Json.member "o" v' with
         | Some (Json.Obj fields') ->
             List.for_all2
               (fun (_, f) (_, j) -> Json.to_num j = Some f)
               fields fields'
         | _ -> fields <> [])

(* ---- 2. Cache ---- *)

let test_cache_lru () =
  let c = Cache.create ~capacity:3 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  Alcotest.(check (list string)) "lru order" [ "a"; "b"; "c" ]
    (Cache.keys_lru_order c);
  (* a hit moves "a" to MRU, so the next eviction takes "b" *)
  check_bool "hit" true (Cache.find c "a" = Some 1);
  Cache.add c "d" 4;
  Alcotest.(check (list string)) "evicted b" [ "c"; "a"; "d" ]
    (Cache.keys_lru_order c);
  check_bool "b gone" true (Cache.find c "b" = None);
  (* re-adding an existing key updates in place and bumps recency *)
  Cache.add c "c" 33;
  Alcotest.(check (list string)) "re-add bumps" [ "a"; "d"; "c" ]
    (Cache.keys_lru_order c);
  check_bool "updated" true (Cache.find c "c" = Some 33);
  check_int "len" 3 (Cache.length c)

let test_cache_prefix () =
  let c = Cache.create ~capacity:8 in
  List.iter (fun k -> Cache.add c k 0)
    [ "ds\x001\x00q1"; "ds\x001\x00q2"; "ds2\x001\x00q1"; "other" ];
  check_int "dropped" 2 (Cache.remove_prefix c ~prefix:"ds\x00");
  Alcotest.(check (list string)) "survivors" [ "ds2\x001\x00q1"; "other" ]
    (Cache.keys_lru_order c);
  check_int "nothing" 0 (Cache.remove_prefix c ~prefix:"nope")

let test_cache_metrics () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  let hits () = Metrics.counter_value (Metrics.counter "cache.hits") in
  let misses () = Metrics.counter_value (Metrics.counter "cache.misses") in
  let evictions () =
    Metrics.counter_value (Metrics.counter "cache.evictions")
  in
  let c = Cache.create ~capacity:2 in
  ignore (Cache.find c "x");
  Cache.add c "x" 1;
  ignore (Cache.find c "x");
  Cache.add c "y" 2;
  Cache.add c "z" 3;
  (* evicts x *)
  ignore (Cache.find c "x");
  check_int "hits" 1 (hits ());
  check_int "misses" 2 (misses ());
  check_int "evictions" 1 (evictions ())

(* ---- 3. Catalog ---- *)

let test_catalog_versions () =
  let cat = Catalog.create () in
  let fired = ref [] in
  Catalog.on_mutate cat (fun name -> fired := name :: !fired);
  let e1 = Catalog.register cat ~name:"a" ~source:(Catalog.In_memory "v1") db in
  check_int "first version" 1 e1.Catalog.version;
  let e2 = Catalog.register cat ~name:"a" ~source:(Catalog.In_memory "v2") db in
  check_int "bumped" 2 e2.Catalog.version;
  check_int "current" 2 (Catalog.find_exn cat "a").Catalog.version;
  check_bool "remove" true (Catalog.remove cat "a");
  check_bool "remove again" false (Catalog.remove cat "a");
  Alcotest.(check (list string)) "hooks fired" [ "a"; "a"; "a" ]
    (List.rev !fired);
  (match Catalog.find_exn cat "a" with
  | exception Catalog.Unknown_dataset "a" -> ()
  | _ -> Alcotest.fail "expected Unknown_dataset");
  check_string "source rendering" "tpch(scale=0.1,seed=7)"
    (Catalog.source_to_string (Catalog.Tpch { scale = 0.1; seed = 7 }))

(* ---- 4. Prepared ---- *)

let test_override_rates () =
  let e = fresh_engine () in
  let _, p = Engine.prepare e ~dataset sql_join in
  let plan = (Prepared.handle p).Runner.pr_plan in
  let card rel =
    Gus_relational.Relation.cardinality (Gus_relational.Database.find db rel)
  in
  let plan' = Prepared.override_rates ~card [ ("lineitem", 0.5) ] plan in
  check_bool "changed" false (Splan.equal plan plan');
  (* only the named relation's sampler moves: reverting it restores the
     original plan *)
  let plan'' = Prepared.override_rates ~card [ ("lineitem", 0.10) ] plan' in
  check_bool "revert" true (Splan.equal plan plan'');
  (* WOR override maps a fraction to rate × N rows *)
  let plan_wor =
    Prepared.override_rates ~card [ ("orders", 0.5) ] plan
  in
  check_bool "wor resized" false (Splan.equal plan plan_wor);
  (match Prepared.override_rates ~card [ ("customer", 0.5) ] plan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsampled relation must be rejected");
  match Prepared.override_rates ~card [ ("lineitem", 1.5) ] plan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate out of range must be rejected"

let test_reprepare_on_version_bump () =
  let e = fresh_engine () in
  let _, p = Engine.prepare e ~dataset sql_single in
  check_int "prepared at v1" 1 (Prepared.version p);
  ignore
    (Engine.register_db e ~name:dataset ~source:(Catalog.In_memory "again") db);
  let o = Engine.execute e ~handle:"q1" Prepared.default_overrides in
  check_bool "not cached" false o.Engine.cached;
  check_int "re-prepared at v2" 2 (Prepared.version p)

(* ---- 5. Engine ---- *)

let test_cache_hit_bit_identical () =
  let e = fresh_engine () in
  let handle, _ = Engine.prepare e ~dataset sql_join in
  let ov = { Prepared.default_overrides with seed = 9 } in
  let o1 = Engine.execute e ~handle ov in
  let o2 = Engine.execute e ~handle ov in
  check_bool "first cold" false o1.Engine.cached;
  check_bool "second hit" true o2.Engine.cached;
  check_string "bit-identical" (sig_of o1.Engine.response)
    (sig_of o2.Engine.response);
  (* different params are different keys *)
  let o3 = Engine.execute e ~handle { ov with seed = 10 } in
  check_bool "new seed cold" false o3.Engine.cached;
  check_int "two entries" 2 (Engine.cache_length e)

let test_invalidation_on_mutation () =
  let e = fresh_engine () in
  let handle, _ = Engine.prepare e ~dataset sql_single in
  ignore (Engine.execute e ~handle Prepared.default_overrides);
  check_int "cached" 1 (Engine.cache_length e);
  ignore
    (Engine.register_db e ~name:dataset ~source:(Catalog.In_memory "v2") db);
  check_int "invalidated" 0 (Engine.cache_length e);
  let o = Engine.execute e ~handle Prepared.default_overrides in
  check_bool "recomputed" false o.Engine.cached

let test_matches_one_shot_runner () =
  let e = fresh_engine () in
  let handle, _ = Engine.prepare e ~dataset sql_join in
  let seed = 42 in
  let served =
    (Engine.execute e ~handle { Prepared.default_overrides with seed })
      .Engine.response
  in
  let one_shot = Runner.run ~seed db sql_join in
  (* the serving path streams; estimates and tuple counts are guaranteed
     bit-identical to the materializing one-shot path (stddev may differ
     in final bits from moment-reduction order) *)
  check_bool "streamed" true served.Runner.rs_streamed;
  List.iter2
    (fun (a : Runner.cell) (b : Runner.cell) ->
      check_string "label" a.Runner.label b.Runner.label;
      check_bool "estimate bits" true (a.Runner.value = b.Runner.value))
    served.Runner.rs_result.Runner.cells one_shot.Runner.cells;
  check_int "tuple count" one_shot.Runner.n_sample_tuples
    served.Runner.rs_result.Runner.n_sample_tuples

(* ---- 6. Scheduler + the cached/uncached QCheck property ---- *)

let test_scheduler_map () =
  let jobs = Array.init 17 (fun i -> i) in
  let f i = if i = 13 then failwith "boom" else (i * i) + 1 in
  let inline = Scheduler.map f jobs in
  List.iter
    (fun size ->
      let pooled = Scheduler.map ~pool:(pool_of size) f jobs in
      Array.iteri
        (fun i r ->
          match (inline.(i), r) with
          | Ok a, Ok b -> check_int "slot" a b
          | Error _, Error _ -> check_int "failing slot" 13 i
          | _ -> Alcotest.fail "inline/pooled disagree")
        pooled)
    [ 1; 2; 4 ]

let test_cached_uncached_property () =
  QCheck.Test.check_exn
  @@ QCheck.Test.make
       ~name:"cached = uncached, batch order pool-size invariant" ~count:8
       QCheck.(pair (int_bound 1000) (int_bound 2))
       (fun (seed, rate_case) ->
         let rates =
           match rate_case with
           | 0 -> []
           | 1 -> [ ("lineitem", 0.25) ]
           | _ -> [ ("lineitem", 0.15); ("orders", 0.4) ]
         in
         let ov = { Prepared.default_overrides with seed; rates } in
         (* uncached: a fresh engine computes from scratch *)
         let cold () =
           let e = fresh_engine () in
           let handle, _ = Engine.prepare e ~dataset sql_join in
           (Engine.execute e ~handle ov).Engine.response
         in
         let reference = sig_of (cold ()) in
         (* cached: same engine twice; second answer must be a hit and
            bit-identical *)
         let e = fresh_engine () in
         let handle, _ = Engine.prepare e ~dataset sql_join in
         let o1 = Engine.execute e ~handle ov in
         let o2 = Engine.execute e ~handle ov in
         let ok_cache =
           (not o1.Engine.cached) && o2.Engine.cached
           && sig_of o1.Engine.response = reference
           && sig_of o2.Engine.response = reference
         in
         (* batch: three seeds through pools of size 1/2/4 give the same
            ordered signatures *)
         let batch_sigs size =
           let e = fresh_engine ~pool:(pool_of size) () in
           let handle, _ = Engine.prepare e ~dataset sql_join in
           Engine.batch e
             (Array.map
                (fun s -> (handle, { ov with Prepared.seed = s }))
                [| seed; seed + 1; seed |])
           |> Array.map (function
                | Ok o -> sig_of o.Engine.response
                | Error e -> raise e)
         in
         let ref_batch = batch_sigs 1 in
         ok_cache
         && List.for_all (fun s -> batch_sigs s = ref_batch) [ 2; 4 ])

(* ---- 8. Telemetry: journal, SLOs, bit-identical replay ---- *)

(* A row-storage twin of the shared columnar db: replay determinism must
   not depend on which storage backs the relations. *)
let db_rows =
  lazy
    (let d = Gus_relational.Database.create () in
     List.iter
       (fun n ->
         Gus_relational.Database.add d
           (Gus_relational.Relation.to_rows (Gus_relational.Database.find db n)))
       (Gus_relational.Database.names db);
     d)

let test_sampling_rates () =
  let e = fresh_engine () in
  let _, p = Engine.prepare e ~dataset sql_join in
  let card rel =
    Gus_relational.Relation.cardinality (Gus_relational.Database.find db rel)
  in
  let rates = Prepared.sampling_rates ~card (Prepared.handle p).Runner.pr_plan in
  Alcotest.(check (list string)) "sampled relations, sorted"
    [ "lineitem"; "orders" ] (List.map fst rates);
  Alcotest.(check (float 1e-12)) "bernoulli keep probability" 0.1
    (List.assoc "lineitem" rates);
  Alcotest.(check (float 1e-12)) "wor size over cardinality"
    (200. /. float_of_int (card "orders"))
    (List.assoc "orders" rates)

let test_slo_breach_marking () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  let journal = Journal.create ~capacity:8 () in
  let logged = ref [] in
  (* an impossibly tight CI target: every sampled execution breaches *)
  let slo = { Journal.max_rel_ci = Some 1e-12; max_latency_ms = None } in
  let e =
    Engine.create ~journal ~slo ~on_breach:(fun m -> logged := m :: !logged) ()
  in
  ignore
    (Engine.register_db e ~name:dataset ~source:(Catalog.In_memory "test") db);
  let handle, _ = Engine.prepare e ~dataset sql_single in
  ignore (Engine.execute e ~handle Prepared.default_overrides);
  ignore (Engine.execute e ~handle Prepared.default_overrides);
  let execs =
    List.filter_map
      (function Journal.Exec x -> Some x | _ -> None)
      (Journal.events journal)
  in
  check_int "both executions journaled" 2 (List.length execs);
  List.iter
    (fun (x : Journal.exec) ->
      check_bool "marked as breach" true x.Journal.breach;
      check_bool "rel_ci recorded" true (x.Journal.rel_ci > 0.))
    execs;
  (match execs with
  | [ cold; hit ] ->
      check_bool "first cold" false cold.Journal.cached;
      check_bool "second cached, still journaled" true hit.Journal.cached;
      check_bool "top variance node present" true (cold.Journal.top <> None)
  | _ -> Alcotest.fail "expected two exec events");
  check_int "breach counter" 2
    (Metrics.counter_value (Metrics.counter "slo.breaches"));
  check_int "ci breach counter" 2
    (Metrics.counter_value (Metrics.counter "slo.breaches.rel_ci"));
  check_int "no latency breaches" 0
    (Metrics.counter_value (Metrics.counter "slo.breaches.latency"));
  (* the 1/s limiter lets the first burst through exactly once *)
  check_int "rate-limited log" 1 (List.length !logged)

let test_replay_bit_identical () =
  QCheck.Test.check_exn
  @@ QCheck.Test.make
       ~name:"journal replay is bit-identical (row + columnar)" ~count:6
       QCheck.(triple (int_bound 1000) (int_bound 2) bool)
       (fun (seed, rate_case, row_storage) ->
         let data = if row_storage then Lazy.force db_rows else db in
         let rates =
           match rate_case with
           | 0 -> []
           | 1 -> [ ("lineitem", 0.25) ]
           | _ -> [ ("lineitem", 0.15); ("orders", 0.4) ]
         in
         let journal = Journal.create ~capacity:64 () in
         let e = Engine.create ~journal () in
         ignore
           (Engine.register_db e ~name:dataset
              ~source:(Catalog.In_memory "test") data);
         let handle, _ = Engine.prepare e ~dataset sql_join in
         (* three plain executions (the third a cache hit) plus one down
            the profiled explain path *)
         List.iter
           (fun s ->
             ignore
               (Engine.execute e ~handle
                  { Prepared.default_overrides with seed = s; rates }))
           [ seed; seed + 1; seed ];
         ignore
           (Engine.execute e ~handle
              { Prepared.default_overrides with seed; rates; explain = true });
         let ndjson =
           String.concat "\n"
             (List.map Journal.to_ndjson (Journal.events journal))
         in
         (* a fresh engine with the same in-memory dataset pre-registered:
            the register event is skipped, every exec must match bit for
            bit *)
         let e2 = Engine.create () in
         ignore
           (Engine.register_db e2 ~name:dataset
              ~source:(Catalog.In_memory "test") data);
         let r = Replay.run_string ~engine:e2 ndjson in
         r.Replay.rp_skipped = 1
         && r.Replay.rp_registers = 0
         && r.Replay.rp_executions = 4
         && r.Replay.rp_matched = 4
         && r.Replay.rp_mismatches = [])

(* Replace the first occurrence of [sub] in [s] (test helper; asserts
   the needle is present). *)
let replace_once ~sub ~by s =
  let n = String.length sub in
  let rec find i =
    if i + n > String.length s then
      Alcotest.failf "substring %S not found" sub
    else if String.sub s i n = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)

let test_replay_detects_drift () =
  (* Flip one mantissa bit in a journaled estimate: replay must report
     exactly that field on exactly that line. *)
  let journal = Journal.create () in
  let journal_engine = Engine.create ~journal () in
  ignore
    (Engine.register_db journal_engine ~name:dataset
       ~source:(Catalog.In_memory "test") db);
  let handle, _ = Engine.prepare journal_engine ~dataset sql_single in
  ignore (Engine.execute journal_engine ~handle Prepared.default_overrides);
  let tampered =
    List.map
      (fun l ->
        let j = Json.of_string l in
        match Json.member "ev" j with
        | Some (Json.Str "exec") ->
            let est =
              Option.get (Option.bind (Json.member "estimate" j) Json.to_num)
            in
            let bumped =
              Int64.float_of_bits (Int64.add (Int64.bits_of_float est) 1L)
            in
            replace_once
              ~sub:(Printf.sprintf "\"estimate\":%s" (Json.number_to_string est))
              ~by:(Printf.sprintf "\"estimate\":%s" (Json.number_to_string bumped))
              l
        | _ -> l)
      (List.map Journal.to_ndjson (Journal.events journal))
  in
  let e2 = fresh_engine () in
  let r = Replay.run_string ~engine:e2 (String.concat "\n" tampered) in
  check_int "one execution" 1 r.Replay.rp_executions;
  check_int "none matched" 0 r.Replay.rp_matched;
  (match r.Replay.rp_mismatches with
  | [ m ] ->
      check_string "field" "estimate" m.Replay.mm_field;
      check_int "line" 2 m.Replay.mm_line
  | ms -> Alcotest.failf "expected 1 mismatch, got %d" (List.length ms));
  (* corrupted lines raise with a 1-based line number *)
  match Replay.run_string ~engine:(fresh_engine ()) "{\"ev\":\"exec\"}\nnot json" with
  | exception Replay.Corrupt { line = 1; _ } -> ()
  | exception Replay.Corrupt { line; _ } ->
      Alcotest.failf "wrong corrupt line %d" line
  | _ -> Alcotest.fail "tamper-proof journal accepted garbage"

(* ---- 7. Protocol ---- *)

let test_protocol_roundtrip () =
  let e = Engine.create ~cache_capacity:4 () in
  ignore (Engine.register_db e ~name:"t" ~source:(Catalog.In_memory "test") db);
  let line s = Json.of_string (Protocol.handle_line e s) in
  let prep =
    line
      (Json.to_string
         (Json.Obj
            [ ("op", Json.Str "prepare");
              ("dataset", Json.Str "t");
              ("name", Json.Str "q");
              ("sql", Json.Str sql_single) ]))
  in
  check_bool "prepare ok" true
    (Option.bind (Json.member "ok" prep) Json.to_bool = Some true);
  check_bool "analyzable" true
    (Option.bind (Json.member "analyzable" prep) Json.to_bool = Some true);
  let exec = line {|{"op":"execute","handle":"q","seed":5}|} in
  check_bool "exec ok" true
    (Option.bind (Json.member "ok" exec) Json.to_bool = Some true);
  check_bool "not cached" true
    (Option.bind (Json.member "cached" exec) Json.to_bool = Some false);
  let exec2 = line {|{"op":"execute","handle":"q","seed":5}|} in
  check_bool "cached" true
    (Option.bind (Json.member "cached" exec2) Json.to_bool = Some true);
  (* identical result objects on hit *)
  check_string "same result"
    (Json.to_string (Option.get (Json.member "result" exec)))
    (Json.to_string (Option.get (Json.member "result" exec2)));
  let stats = line {|{"op":"stats"}|} in
  check_bool "stats ok" true
    (Option.bind (Json.member "ok" stats) Json.to_bool = Some true);
  check_bool "cache length" true
    (Option.bind (Json.member "cache" stats) (Json.member "length")
     |> Fun.flip Option.bind Json.to_num
    = Some 1.)

let test_protocol_errors () =
  let e = Engine.create () in
  let code_of s =
    let j = Json.of_string (Protocol.handle_line e s) in
    ( Option.bind (Json.member "ok" j) Json.to_bool,
      Option.bind (Json.member "error" j) (Json.member "code")
      |> Fun.flip Option.bind Json.to_str )
  in
  Alcotest.(check (pair (option bool) (option string)))
    "bad json" (Some false, Some "bad_json") (code_of "{nope");
  Alcotest.(check (pair (option bool) (option string)))
    "unknown op" (Some false, Some "bad_request") (code_of {|{"op":"frob"}|});
  Alcotest.(check (pair (option bool) (option string)))
    "missing op" (Some false, Some "bad_request") (code_of {|{"x":1}|});
  Alcotest.(check (pair (option bool) (option string)))
    "unknown dataset" (Some false, Some "unknown_dataset")
    (code_of {|{"op":"prepare","dataset":"nope","sql":"SELECT COUNT(*) FROM t"}|});
  Alcotest.(check (pair (option bool) (option string)))
    "unknown handle" (Some false, Some "unknown_handle")
    (code_of {|{"op":"execute","handle":"nope"}|});
  ignore (Engine.register_db e ~name:"t" ~source:(Catalog.In_memory "test") db);
  Alcotest.(check (pair (option bool) (option string)))
    "parse error" (Some false, Some "parse_error")
    (code_of {|{"op":"prepare","dataset":"t","sql":"SELECT SUM(x FROM"}|})

(* ---- 9. Session API, error registry, admission control, TCP server ---- *)

let ok_of j = Option.bind (Json.member "ok" j) Json.to_bool = Some true

let code_of j =
  Option.bind (Json.member "error" j) (Json.member "code")
  |> Fun.flip Option.bind Json.to_str

let session_req s line = Json.of_string (Option.get (Session.handle s line))

let prepare_line ?(name = "q") sql =
  Json.to_string
    (Json.Obj
       [ ("op", Json.Str "prepare");
         ("dataset", Json.Str dataset);
         ("name", Json.Str name);
         ("sql", Json.Str sql) ])

let test_session_namespace () =
  let e = fresh_engine () in
  let s1 = Session.create e and s2 = Session.create e in
  check_bool "distinct ids" true (Session.id s1 <> Session.id s2);
  (* both sessions claim the same handle name for different queries *)
  check_bool "s1 prepare" true (ok_of (session_req s1 (prepare_line sql_single)));
  check_bool "s2 prepare" true (ok_of (session_req s2 (prepare_line sql_join)));
  let r1 = session_req s1 {|{"op":"execute","handle":"q","seed":3}|} in
  let r2 = session_req s2 {|{"op":"execute","handle":"q","seed":3}|} in
  check_bool "both execute" true (ok_of r1 && ok_of r2);
  check_bool "one name, two plans" true
    (Json.to_string (Option.get (Json.member "result" r1))
    <> Json.to_string (Option.get (Json.member "result" r2)));
  (* hello reports the wire version and this session's id *)
  let h = session_req s1 {|{"op":"hello"}|} in
  check_bool "protocol version" true
    (Option.bind (Json.member "protocol_version" h) Json.to_int
    = Some Wire.protocol_version);
  check_bool "session id" true
    (Option.bind (Json.member "session" h) Json.to_int = Some (Session.id s1));
  (* closing one session must not touch its sibling *)
  Session.close s1;
  Session.close s1 (* idempotent *);
  check_bool "closed answers session_closed" true
    (code_of (session_req s1 {|{"op":"execute","handle":"q","seed":3}|})
    = Some "session_closed");
  let r2' = session_req s2 {|{"op":"execute","handle":"q","seed":3}|} in
  check_bool "sibling still serves" true (ok_of r2');
  check_bool "sibling hit its cache" true
    (Option.bind (Json.member "cached" r2') Json.to_bool = Some true)

let test_error_registry () =
  (* Every code in the stable registry is emitted somewhere: protocol
     codes through a live session exchange or the shared error_of_exn
     mapping (the only path protocol errors render through); the CLI-only
     corrupt_journal through Replay's exception. *)
  let e = fresh_engine () in
  let s = Session.create e in
  let emit line = code_of (session_req s line) in
  let via_exn exn = Option.map fst (Wire.error_of_exn exn) in
  ignore
    (session_req s (prepare_line ~name:"badcol"
         "SELECT SUM(nope) AS s FROM lineitem TABLESAMPLE (10 PERCENT)"));
  let emissions =
    [ ("bad_json", emit "{nope");
      ("bad_request", emit {|{"op":"execute","handle":"q","sede":1}|});
      ("parse_error", emit (prepare_line "SELECT SUM(x FROM"));
      ("plan_error",
        emit (prepare_line
            "SELECT SUM(l_quantity) AS s FROM nope TABLESAMPLE (10 PERCENT)"));
      ("unsupported_plan", via_exn (Gus_analysis.Rewrite.Unsupported "x"));
      ("type_error", via_exn (Gus_relational.Value.Type_error "x"));
      ("unknown_column", emit {|{"op":"execute","handle":"badcol","seed":1}|});
      ("unknown_relation",
        via_exn (Gus_relational.Database.Unknown_relation "x"));
      ("unknown_dataset",
        emit
          {|{"op":"prepare","dataset":"nope","sql":"SELECT COUNT(*) FROM t"}|});
      ("unknown_handle", emit {|{"op":"execute","handle":"nope"}|});
      ("snapshot_corrupt", via_exn (Gus_relational.Snapshot.Format_error "x"));
      ("snapshot_version",
        via_exn
          (Gus_relational.Snapshot.Version_mismatch { found = 0; expected = 1 }));
      ("io_error", via_exn (Sys_error "x"));
      ("overloaded", via_exn (Wire.Overloaded "x"));
      ("session_closed",
        (let dead = Session.create e in
         Session.close dead;
         code_of (session_req dead {|{"op":"stats"}|})));
      ("corrupt_journal",
        (match Replay.run_string "not json" with
        | exception Replay.Corrupt _ -> Some "corrupt_journal"
        | _ -> None)) ]
  in
  List.iter
    (fun (code, _, _) ->
      match List.assoc_opt code emissions with
      | Some (Some c) when c = code -> ()
      | Some (Some c) -> Alcotest.failf "code %s emitted as %s" code c
      | Some None -> Alcotest.failf "code %s never emitted" code
      | None -> Alcotest.failf "registry code %s has no emission case" code)
    Wire.error_codes;
  List.iter
    (fun (code, _) ->
      check_bool (code ^ " is registered") true
        (List.exists (fun (c, _, _) -> c = code) Wire.error_codes))
    emissions;
  (* unknown fields are rejected, not silently defaulted *)
  check_bool "unknown field names the field" true
    (match Session.handle s {|{"op":"execute","handle":"q","sede":1}|} with
    | Some r ->
        let j = Json.of_string r in
        code_of j = Some "bad_request"
        && (match
              Option.bind (Json.member "error" j) (Json.member "message")
              |> Fun.flip Option.bind Json.to_str
            with
           | Some m ->
               let has_sub sub =
                 let n = String.length sub and ln = String.length m in
                 let rec go i =
                   i + n <= ln && (String.sub m i n = sub || go (i + 1))
                 in
                 go 0
               in
               has_sub "sede"
           | None -> false)
    | None -> false)

let test_admission_accounting () =
  let a = Admission.create ~max_inflight:2 ~session_inflight:1 () in
  let t1 =
    match Admission.enter a with
    | Ok (t, Admission.Admit) -> t
    | _ -> Alcotest.fail "first request admitted"
  in
  let t2 =
    match Admission.enter a with
    | Ok (t, _) -> t
    | Error _ -> Alcotest.fail "second request admitted"
  in
  check_int "inflight tracks" 2 (Admission.inflight a);
  (match Admission.enter a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "third request must hit the hard cap");
  Admission.leave a t1;
  (match Admission.enter a with
  | Ok (t, _) -> Admission.leave a t
  | Error _ -> Alcotest.fail "capacity freed by leave");
  Admission.leave a t2;
  check_int "drained" 0 (Admission.inflight a);
  check_bool "p99 needs 8 samples" true (Admission.p99_ms a = None);
  (* a pinned overload factor sheds deterministically with that factor *)
  let forced = Admission.create ~fixed_overload:2.5 () in
  (match Admission.enter forced with
  | Ok (t, Admission.Shed f) ->
      Alcotest.(check (float 1e-12)) "pinned factor" 2.5 f;
      Admission.leave forced t
  | _ -> Alcotest.fail "pinned overload must shed")

let test_shed_rates_math () =
  let card = function
    | "lineitem" -> 1000
    | "orders" -> 500
    | r -> Alcotest.failf "unexpected relation %s" r
  in
  (* no moments yet: proportional fallback, budget = cost / overload *)
  (match
     Admission.shed_rates ~overload:2.0 ~order:[ "lineitem" ] ~card
       ~current:[ ("lineitem", 0.2) ] ()
   with
  | [ ("lineitem", rate) ] ->
      Alcotest.(check (float 1e-9)) "half the sustainable budget" 0.1 rate
  | _ -> Alcotest.fail "expected exactly one degraded rate");
  (* exact plans sample nothing and cannot shed *)
  check_bool "exact plans unshed" true
    (Admission.shed_rates ~overload:4.0 ~order:[] ~card ~current:[] () = []);
  (* with previous-execution moments the Section-8 optimizer picks the
     split; whatever it picks must respect the degraded budget and the
     [1e-6, 1] clamp at every overload level *)
  let y = [| 4.0; 2.0; 2.0; 1.0 |] in
  let current = [ ("lineitem", 0.2); ("orders", 0.4) ] in
  let cost = (1000. *. 0.2) +. (500. *. 0.4) in
  List.iter
    (fun overload ->
      let rates =
        Admission.shed_rates ~overload ~order:[ "lineitem"; "orders" ] ~card
          ~current ~y ()
      in
      check_int "both relations rated" 2 (List.length rates);
      let spent =
        List.fold_left
          (fun acc (rel, r) -> acc +. (float_of_int (card rel) *. r))
          0.0 rates
      in
      check_bool
        (Printf.sprintf "budget respected at %gx (%g <= %g)" overload spent
           (cost /. overload))
        true
        (spent <= (cost /. overload) +. 1e-6);
      List.iter
        (fun (_, r) ->
          check_bool "clamped to [1e-6, 1]" true (r >= 1e-6 && r <= 1.0))
        rates)
    [ 1.5; 2.0; 4.0; 16.0 ]

let test_shed_journal_replay () =
  let journal = Journal.create ~capacity:64 () in
  let e = Engine.create ~journal () in
  ignore
    (Engine.register_db e ~name:dataset ~source:(Catalog.In_memory "test") db);
  let adm = Admission.create ~fixed_overload:3.0 () in
  let s = Session.create ~admission:adm e in
  check_bool "prepare ok" true (ok_of (session_req s (prepare_line sql_join)));
  (* every execute sheds (pinned overload): degraded rates, honest
     shed/overload marking; the first has no moments (proportional),
     later ones feed the previous y-hat to the optimizer *)
  List.iter
    (fun seed ->
      let r =
        session_req s
          (Printf.sprintf {|{"op":"execute","handle":"q","seed":%d}|} seed)
      in
      check_bool "shed execute ok" true (ok_of r);
      check_bool "marked shed" true
        (Option.bind (Json.member "shed" r) Json.to_bool = Some true);
      check_bool "overload reported" true
        (Option.bind (Json.member "overload" r) Json.to_num = Some 3.0);
      match Json.member "shed_rates" r with
      | Some (Json.Obj fields) ->
          check_bool "degraded rates present" true (fields <> [])
      | _ -> Alcotest.fail "shed_rates missing")
    [ 11; 12; 13 ];
  (* client-pinned rates are never overridden by the shedder *)
  let pinned =
    session_req s
      {|{"op":"execute","handle":"q","seed":11,"rates":{"lineitem":0.05}}|}
  in
  check_bool "pinned rates not shed" true
    (ok_of pinned && Json.member "shed" pinned = None);
  (* the journal replays bit-identically, shed executions included *)
  let ndjson =
    String.concat "\n" (List.map Journal.to_ndjson (Journal.events journal))
  in
  let e2 = Engine.create () in
  ignore
    (Engine.register_db e2 ~name:dataset ~source:(Catalog.In_memory "test") db);
  let r = Replay.run_string ~engine:e2 ndjson in
  check_int "all executions replayed" 4 r.Replay.rp_executions;
  check_int "all bit-identical" 4 r.Replay.rp_matched;
  check_int "shed decisions counted" 3 r.Replay.rp_sheds;
  check_bool "no mismatches" true (r.Replay.rp_mismatches = [])

(* ---- TCP transport ---- *)

let tcp_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let tcp_req (_, ic, oc) line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  Json.of_string (input_line ic)

let test_tcp_sibling_isolation () =
  let e = fresh_engine () in
  let server = Server.start ~port:0 e in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let port = Server.port server in
  let a = tcp_connect port and b = tcp_connect port in
  check_bool "b prepares" true (ok_of (tcp_req b (prepare_line sql_single)));
  let r1 = tcp_req b {|{"op":"execute","handle":"q","seed":9}|} in
  check_bool "b executes" true (ok_of r1);
  (* a malformed frame on A is an error response, not a teardown *)
  check_bool "A's garbage answered in-band" true
    (code_of (tcp_req a "{nope") = Some "bad_json");
  (* B's handle name means nothing inside A's session *)
  check_bool "namespaces isolated over tcp" true
    (code_of (tcp_req a {|{"op":"execute","handle":"q","seed":9}|})
    = Some "unknown_handle");
  (* hard-kill A mid-session; B keeps its handles and its cache entry *)
  let fd_a, _, _ = a in
  Unix.close fd_a;
  let r2 = tcp_req b {|{"op":"execute","handle":"q","seed":9}|} in
  check_bool "b survives sibling crash" true (ok_of r2);
  check_bool "b answered from cache" true
    (Option.bind (Json.member "cached" r2) Json.to_bool = Some true);
  check_string "bit-identical across the crash"
    (Json.to_string (Option.get (Json.member "result" r1)))
    (Json.to_string (Option.get (Json.member "result" r2)));
  let fd_b, _, _ = b in
  Unix.close fd_b

let test_tcp_concurrent_clients () =
  (* Four clients hammering one engine concurrently: every response
     parses, every session sees only its own handles, and the cached
     re-execution of each client's own seed is bit-identical. *)
  let e = fresh_engine () in
  let server = Server.start ~port:0 e in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let port = Server.port server in
  let failures = Atomic.make 0 in
  let client i () =
    try
      let c = tcp_connect port in
      let fd, _, _ = c in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      if not (ok_of (tcp_req c (prepare_line sql_single))) then raise Exit;
      for seed = 0 to 9 do
        let line =
          Printf.sprintf {|{"op":"execute","handle":"q","seed":%d}|}
            ((i * 100) + seed)
        in
        let first = tcp_req c line in
        let again = tcp_req c line in
        if not (ok_of first && ok_of again) then raise Exit;
        if
          Json.to_string (Option.get (Json.member "result" first))
          <> Json.to_string (Option.get (Json.member "result" again))
        then raise Exit
      done
    with _ -> Atomic.incr failures
  in
  let threads = List.init 4 (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  check_int "no client failures" 0 (Atomic.get failures)

let () =
  Alcotest.run "service"
    [ ( "json",
        [ Alcotest.test_case "basics" `Quick test_json_basics;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip ] );
      ( "cache",
        [ Alcotest.test_case "lru eviction order" `Quick test_cache_lru;
          Alcotest.test_case "prefix invalidation" `Quick test_cache_prefix;
          Alcotest.test_case "metrics counters" `Quick test_cache_metrics ] );
      ( "catalog",
        [ Alcotest.test_case "versions + hooks" `Quick test_catalog_versions ]
      );
      ( "prepared",
        [ Alcotest.test_case "rate overrides" `Quick test_override_rates;
          Alcotest.test_case "re-prepare on version bump" `Quick
            test_reprepare_on_version_bump ] );
      ( "engine",
        [ Alcotest.test_case "cache hit bit-identical" `Quick
            test_cache_hit_bit_identical;
          Alcotest.test_case "invalidation on mutation" `Quick
            test_invalidation_on_mutation;
          Alcotest.test_case "matches one-shot Runner.run" `Quick
            test_matches_one_shot_runner ] );
      ( "scheduler",
        [ Alcotest.test_case "deterministic map" `Quick test_scheduler_map;
          Alcotest.test_case "cached = uncached (pools 1/2/4)" `Slow
            test_cached_uncached_property ] );
      ( "workload",
        [ Alcotest.test_case "json round-trip + totals" `Quick
            test_workload_json_roundtrip;
          Alcotest.test_case "execute never re-lints" `Quick
            test_execute_never_relints ] );
      ( "protocol",
        [ Alcotest.test_case "round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "errors" `Quick test_protocol_errors ] );
      ( "session",
        [ Alcotest.test_case "per-session handle namespace" `Quick
            test_session_namespace;
          Alcotest.test_case "error-code registry coverage" `Quick
            test_error_registry ] );
      ( "admission",
        [ Alcotest.test_case "in-flight accounting" `Quick
            test_admission_accounting;
          Alcotest.test_case "section-8 shed rates" `Quick
            test_shed_rates_math;
          Alcotest.test_case "shed journal replays bit-identical" `Quick
            test_shed_journal_replay ] );
      ( "server",
        [ Alcotest.test_case "sibling-session isolation" `Quick
            test_tcp_sibling_isolation;
          Alcotest.test_case "concurrent clients" `Quick
            test_tcp_concurrent_clients ] );
      ( "telemetry",
        [ Alcotest.test_case "sampling-rate provenance" `Quick
            test_sampling_rates;
          Alcotest.test_case "slo breach marking" `Quick
            test_slo_breach_marking;
          Alcotest.test_case "replay detects drift" `Quick
            test_replay_detects_drift;
          Alcotest.test_case "replay bit-identical (row + columnar)" `Slow
            test_replay_bit_identical ] ) ]
