test/test_integration.ml: Alcotest Array Database Expr Float Gus_core Gus_estimator Gus_experiments Gus_relational Gus_sampling Gus_sql Gus_stats Gus_tpch Gus_util Lazy List Printf String
