lib/estimator/size_estimator.mli: Gus_core Gus_relational Gus_stats
