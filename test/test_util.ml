(* Unit and property tests for gus_util: Vec, Subset, Rng, Hashing, Dist,
   Tablefmt. *)

module Vec = Gus_util.Vec
module Subset = Gus_util.Subset
module Rng = Gus_util.Rng
module Hashing = Gus_util.Hashing
module Dist = Gus_util.Dist
module Tablefmt = Gus_util.Tablefmt

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float what = check (Alcotest.float 1e-9) what

(* ---- Vec ---- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get 7" 49 (Vec.get v 7);
  check_int "get 99" 9801 (Vec.get v 99)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index -1 out of bounds [0,3)")
    (fun () -> ignore (Vec.get v (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Vec: index 3 out of bounds [0,3)")
    (fun () -> ignore (Vec.get v 3))

let test_vec_set () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.set v 1 42;
  check (Alcotest.list Alcotest.int) "after set" [ 1; 42; 3 ] (Vec.to_list v)

let test_vec_pop () =
  let v = Vec.of_list [ 1; 2 ] in
  check (Alcotest.option Alcotest.int) "pop" (Some 2) (Vec.pop v);
  check (Alcotest.option Alcotest.int) "pop" (Some 1) (Vec.pop v);
  check (Alcotest.option Alcotest.int) "pop empty" None (Vec.pop v);
  check_bool "empty" true (Vec.is_empty v)

let test_vec_iter_fold_map () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check_int "fold sum" 10 (Vec.fold ( + ) 0 v);
  let doubled = Vec.map (fun x -> 2 * x) v in
  check (Alcotest.list Alcotest.int) "map" [ 2; 4; 6; 8 ] (Vec.to_list doubled);
  let evens = Vec.filter (fun x -> x mod 2 = 0) v in
  check (Alcotest.list Alcotest.int) "filter" [ 2; 4 ] (Vec.to_list evens);
  check_bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check_bool "for_all" true (Vec.for_all (fun x -> x > 0) v);
  check_bool "for_all false" false (Vec.for_all (fun x -> x > 1) v)

let test_vec_append_sort () =
  let a = Vec.of_list [ 3; 1 ] and b = Vec.of_list [ 2 ] in
  Vec.append a b;
  Vec.sort compare a;
  check (Alcotest.list Alcotest.int) "append+sort" [ 1; 2; 3 ] (Vec.to_list a)

let test_vec_clear_make () =
  let v = Vec.make 5 7 in
  check_int "make length" 5 (Vec.length v);
  check_int "make value" 7 (Vec.get v 4);
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v)

(* ---- Subset ---- *)

let test_subset_basics () =
  let s = Subset.of_elements [ 0; 2; 5 ] in
  check_int "cardinal" 3 (Subset.cardinal s);
  check_bool "mem 2" true (Subset.mem s 2);
  check_bool "mem 1" false (Subset.mem s 1);
  check (Alcotest.list Alcotest.int) "elements" [ 0; 2; 5 ] (Subset.elements s);
  check_int "remove" 2 (Subset.cardinal (Subset.remove s 2));
  check_int "full 3" 7 (Subset.full 3);
  check_int "complement" (Subset.of_elements [ 1; 3; 4 ])
    (Subset.complement 6 s)

let test_subset_algebra () =
  let a = Subset.of_elements [ 0; 1 ] and b = Subset.of_elements [ 1; 2 ] in
  check_int "inter" (Subset.singleton 1) (Subset.inter a b);
  check_int "union" (Subset.of_elements [ 0; 1; 2 ]) (Subset.union a b);
  check_int "diff" (Subset.singleton 0) (Subset.diff a b);
  check_bool "subset yes" true (Subset.subset (Subset.singleton 1) a);
  check_bool "subset no" false (Subset.subset a b)

let test_subset_iteration () =
  let count = ref 0 in
  Subset.iter_all 4 (fun _ -> incr count);
  check_int "iter_all 2^4" 16 !count;
  let subs = ref [] in
  Subset.iter_subsets (Subset.of_elements [ 0; 2 ]) (fun s -> subs := s :: !subs);
  check (Alcotest.list Alcotest.int) "subsets of {0,2}" [ 5; 4; 1; 0 ] !subs;
  let downs = ref [] in
  Subset.iter_subsets_down (Subset.of_elements [ 0; 2 ]) (fun s ->
      downs := s :: !downs);
  check (Alcotest.list Alcotest.int) "subsets of {0,2} down" [ 0; 1; 4; 5 ] !downs;
  let sups = ref 0 in
  Subset.iter_supersets 4 (Subset.of_elements [ 1 ]) (fun _ -> incr sups);
  check_int "supersets of {1} in univ 4" 8 !sups

let test_subset_limits () =
  Alcotest.check_raises "universe too big"
    (Invalid_argument "Subset: universe size 27 not in [0,26]") (fun () ->
      ignore (Subset.full 27));
  check_int "count 0" 1 (Subset.count 0);
  check_int "full 0" 0 (Subset.full 0)

let test_subset_sign () =
  check_float "even" 1.0 (Subset.sign (Subset.of_elements [ 0 ]) (Subset.of_elements [ 1 ]));
  check_float "odd" (-1.0) (Subset.sign Subset.empty (Subset.of_elements [ 1 ]))

let test_subset_pp () =
  let names = [| "a"; "b"; "c" |] in
  check Alcotest.string "pp" "{a,c}"
    (Subset.to_string ~names (Subset.of_elements [ 0; 2 ]));
  check Alcotest.string "pp empty" "{}" (Subset.to_string ~names Subset.empty)

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    check_bool "in range" true (x >= 0 && x < 10)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_uniformity () =
  (* Coarse chi-square-ish check on 10 buckets. *)
  let rng = Rng.create 9 in
  let buckets = Array.make 10 0 in
  let n = 100000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      check_bool "bucket within 5%" true
        (abs (c - expected) < expected / 20))
    buckets

let test_rng_wor () =
  let rng = Rng.create 10 in
  let s = Rng.sample_without_replacement rng 20 100 in
  check_int "size" 20 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 19 do
    check_bool "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  Array.iter (fun x -> check_bool "in range" true (x >= 0 && x < 100)) s;
  (* k = n returns a permutation. *)
  let all = Rng.sample_without_replacement rng 10 10 in
  Array.sort compare all;
  check (Alcotest.list Alcotest.int) "permutation" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Array.to_list all);
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k=5 n=3") (fun () ->
      ignore (Rng.sample_without_replacement rng 5 3))

let test_rng_wor_uniform () =
  (* Every element should be included with probability k/n. *)
  let rng = Rng.create 11 in
  let hits = Array.make 10 0 in
  let trials = 20000 in
  for _ = 1 to trials do
    Array.iter (fun i -> hits.(i) <- hits.(i) + 1)
      (Rng.sample_without_replacement rng 3 10)
  done;
  Array.iter
    (fun h ->
      let p = float_of_int h /. float_of_int trials in
      check_bool "p close to 0.3" true (Float.abs (p -. 0.3) < 0.02))
    hits

let test_rng_split () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  check_bool "child differs from parent" false (Rng.bits64 parent = Rng.bits64 child)

let test_rng_derive () =
  (* Same parent state + same index -> same child stream. *)
  let draws rng = List.init 8 (fun _ -> Rng.bits64 rng) in
  let a = Rng.derive (Rng.create 7) 3 and b = Rng.derive (Rng.create 7) 3 in
  check (Alcotest.list Alcotest.int64) "deterministic" (draws a) (draws b);
  (* Deriving is a pure read: it must not advance the parent. *)
  let parent = Rng.create 7 in
  let before = Rng.copy parent in
  ignore (Rng.derive parent 0);
  ignore (Rng.derive parent 100);
  check (Alcotest.list Alcotest.int64) "parent unperturbed" (draws before)
    (draws parent);
  (* Distinct indices -> distinct streams (first draws all differ). *)
  let parent = Rng.create 7 in
  let firsts = List.init 64 (fun i -> Rng.bits64 (Rng.derive parent i)) in
  check_int "64 distinct child streams" 64
    (List.length (List.sort_uniq compare firsts))

let test_rng_shuffle () =
  let rng = Rng.create 12 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.list Alcotest.int) "permutation preserved"
    (List.init 50 Fun.id) (Array.to_list sorted)

(* ---- Hashing ---- *)

let test_prf_deterministic () =
  check_float "same inputs same output"
    (Hashing.prf_float ~seed:3 12345)
    (Hashing.prf_float ~seed:3 12345);
  check_bool "different ids differ" true
    (Hashing.prf_float ~seed:3 1 <> Hashing.prf_float ~seed:3 2);
  check_bool "different seeds differ" true
    (Hashing.prf_float ~seed:3 1 <> Hashing.prf_float ~seed:4 1)

let test_prf_range_and_uniformity () =
  let below = ref 0 in
  let n = 50000 in
  for i = 0 to n - 1 do
    let x = Hashing.prf_float ~seed:17 i in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0);
    if x < 0.25 then incr below
  done;
  let p = float_of_int !below /. float_of_int n in
  check_bool "quartile frequency" true (Float.abs (p -. 0.25) < 0.01)

let test_hash_string () =
  check_bool "strings differ" true
    (Hashing.hash_string ~seed:1 "abc" <> Hashing.hash_string ~seed:1 "abd");
  check_bool "deterministic" true
    (Hashing.hash_string ~seed:1 "abc" = Hashing.hash_string ~seed:1 "abc")

let test_mix64_bijective_smoke () =
  (* Distinct inputs should not collide on a small probe set. *)
  let seen = Hashtbl.create 64 in
  for i = 0 to 1000 do
    let h = Hashing.mix64 (Int64.of_int i) in
    check_bool "no collision" false (Hashtbl.mem seen h);
    Hashtbl.add seen h ()
  done

(* ---- Dist ---- *)

let test_uniform_int () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Dist.uniform_int rng 5 9 in
    check_bool "in [5,9]" true (x >= 5 && x <= 9)
  done;
  check_int "degenerate" 4 (Dist.uniform_int rng 4 4)

let test_exponential_mean () =
  let rng = Rng.create 14 in
  let n = 50000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let x = Dist.exponential rng 2.0 in
    check_bool "positive" true (x >= 0.0);
    acc := !acc +. x
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean close to 1/lambda" true (Float.abs (mean -. 0.5) < 0.02)

let test_gaussian_moments () =
  let rng = Rng.create 15 in
  let s = Gus_stats.Summary.create () in
  for _ = 1 to 50000 do
    Gus_stats.Summary.add s (Dist.gaussian rng ~mu:3.0 ~sigma:2.0)
  done;
  check_bool "mean" true (Float.abs (Gus_stats.Summary.mean s -. 3.0) < 0.05);
  check_bool "sd" true (Float.abs (Gus_stats.Summary.stddev s -. 2.0) < 0.05)

let test_zipf () =
  let z = Dist.zipf_create ~n:100 ~s:1.0 in
  let rng = Rng.create 16 in
  let counts = Array.make 101 0 in
  for _ = 1 to 50000 do
    let k = Dist.zipf_draw z rng in
    check_bool "rank in range" true (k >= 1 && k <= 100);
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank 1 most frequent" true (counts.(1) > counts.(2));
  check_bool "rank 2 beats rank 50" true (counts.(2) > counts.(50))

let test_pareto () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    check_bool "above scale" true (Dist.pareto rng ~scale:2.0 ~shape:1.5 >= 2.0)
  done

(* ---- Tablefmt ---- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Tablefmt.create ~headers:[ "name"; "value" ] in
  Tablefmt.add_row t [ "x"; "1" ];
  Tablefmt.add_sep t;
  Tablefmt.add_row t [ "long-name"; "2" ];
  let s = Tablefmt.render t in
  check_bool "contains header" true (contains_sub s "name");
  check_bool "contains rule" true (contains_sub s "---");
  check_bool "contains row" true (contains_sub s "long-name");
  (* header + rule + row + sep rule + row *)
  check_int "line count" 5
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s)))

let test_float_cell () =
  check Alcotest.string "integer" "42" (Tablefmt.float_cell 42.0);
  check Alcotest.string "small" "1.230e-05" (Tablefmt.float_cell 1.23e-5);
  check Alcotest.string "ordinary" "3.142" (Tablefmt.float_cell 3.14159);
  check Alcotest.string "nan" "nan" (Tablefmt.float_cell Float.nan)

(* ---- qcheck properties ---- *)

let subset_arb = QCheck2.Gen.int_range 0 ((1 lsl 8) - 1)

let prop_inter_subset =
  QCheck2.Test.make ~name:"inter is subset of both" ~count:500
    QCheck2.Gen.(pair subset_arb subset_arb)
    (fun (a, b) ->
      let i = Subset.inter a b in
      Subset.subset i a && Subset.subset i b)

let prop_union_superset =
  QCheck2.Test.make ~name:"union contains both" ~count:500
    QCheck2.Gen.(pair subset_arb subset_arb)
    (fun (a, b) ->
      let u = Subset.union a b in
      Subset.subset a u && Subset.subset b u)

let prop_complement_involution =
  QCheck2.Test.make ~name:"complement is an involution" ~count:500 subset_arb
    (fun s -> Subset.complement 8 (Subset.complement 8 s) = s)

let prop_cardinal_additive =
  QCheck2.Test.make ~name:"|a|+|b| = |a∪b|+|a∩b|" ~count:500
    QCheck2.Gen.(pair subset_arb subset_arb)
    (fun (a, b) ->
      Subset.cardinal a + Subset.cardinal b
      = Subset.cardinal (Subset.union a b) + Subset.cardinal (Subset.inter a b))

let prop_subsets_count =
  QCheck2.Test.make ~name:"iter_subsets visits 2^|s| sets" ~count:100 subset_arb
    (fun s ->
      let n = ref 0 in
      Subset.iter_subsets s (fun _ -> incr n);
      !n = 1 lsl Subset.cardinal s)

let prop_vec_roundtrip =
  QCheck2.Test.make ~name:"Vec of_list/to_list roundtrip" ~count:200
    QCheck2.Gen.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let prop_subsets_down_is_reverse =
  QCheck2.Test.make ~name:"iter_subsets_down = reverse of iter_subsets"
    ~count:200 subset_arb (fun s ->
      let up = ref [] and down = ref [] in
      Subset.iter_subsets s (fun t -> up := t :: !up);
      Subset.iter_subsets_down s (fun t -> down := t :: !down);
      !up = List.rev !down)

(* ---- Pool ------------------------------------------------------------- *)

module Pool = Gus_util.Pool

let test_pool_covers_range () =
  let pool = Pool.create ~size:3 in
  check_int "lanes" 3 (Pool.size pool);
  let hits = Array.make 100 0 in
  Pool.run_chunks pool ~lo:0 ~hi:100 (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Array.iteri (fun i n -> check_int (Printf.sprintf "index %d once" i) 1 n) hits;
  (* Reuse: a second job on the same pool. *)
  let total = Atomic.make 0 in
  Pool.run_chunks pool ~lo:5 ~hi:25 (fun lo hi ->
      ignore (Atomic.fetch_and_add total (hi - lo)));
  check_int "reused pool sums range" 20 (Atomic.get total);
  Pool.shutdown pool

let test_pool_size_one_inline () =
  let pool = Pool.create ~size:1 in
  check_int "single lane" 1 (Pool.size pool);
  let calls = ref [] in
  Pool.run_chunks pool ~lo:2 ~hi:7 (fun lo hi -> calls := (lo, hi) :: !calls);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "one inline chunk" [ (2, 7) ] !calls;
  Pool.run_chunks pool ~lo:3 ~hi:3 (fun _ _ -> Alcotest.fail "empty range ran");
  Pool.shutdown pool

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~size:3 in
  check_bool "live after create" true (Pool.is_live pool);
  Pool.shutdown pool;
  check_bool "dead after shutdown" false (Pool.is_live pool);
  (* A second shutdown must be a no-op, not a hang or double-join. *)
  Pool.shutdown pool;
  Pool.shutdown pool;
  check_bool "still dead" false (Pool.is_live pool);
  check_bool "use after shutdown rejected" true
    (try
       Pool.run_chunks pool ~lo:0 ~hi:4 (fun _ _ -> ());
       false
     with Invalid_argument _ -> true);
  (* The empty range short-circuits before the liveness check, matching
     run_chunks on a live pool doing no work for it. *)
  Pool.run_chunks pool ~lo:7 ~hi:7 (fun _ _ -> Alcotest.fail "empty range ran")

let test_pool_exception_propagates () =
  let pool = Pool.create ~size:2 in
  check_bool "worker exception reraised" true
    (try
       Pool.run_chunks pool ~lo:0 ~hi:10 (fun lo _ ->
           if lo > 0 then failwith "boom");
       false
     with Failure _ -> true);
  (* The pool survives a failed job. *)
  let total = Atomic.make 0 in
  Pool.run_chunks pool ~lo:0 ~hi:10 (fun lo hi ->
      ignore (Atomic.fetch_and_add total (hi - lo)));
  check_int "usable after failure" 10 (Atomic.get total);
  Pool.shutdown pool;
  check_bool "rejected after shutdown" true
    (try
       Pool.run_chunks pool ~lo:0 ~hi:10 (fun _ _ -> ());
       false
     with Invalid_argument _ -> true)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_inter_subset; prop_union_superset; prop_complement_involution;
      prop_cardinal_additive; prop_subsets_count; prop_subsets_down_is_reverse;
      prop_vec_roundtrip ]

let () =
  Alcotest.run "gus_util"
    [ ( "vec",
        [ Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "set" `Quick test_vec_set;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "iter/fold/map/filter" `Quick test_vec_iter_fold_map;
          Alcotest.test_case "append/sort" `Quick test_vec_append_sort;
          Alcotest.test_case "clear/make" `Quick test_vec_clear_make ] );
      ( "subset",
        [ Alcotest.test_case "basics" `Quick test_subset_basics;
          Alcotest.test_case "algebra" `Quick test_subset_algebra;
          Alcotest.test_case "iteration" `Quick test_subset_iteration;
          Alcotest.test_case "limits" `Quick test_subset_limits;
          Alcotest.test_case "sign" `Quick test_subset_sign;
          Alcotest.test_case "pp" `Quick test_subset_pp ] );
      ( "pool",
        [ Alcotest.test_case "covers range" `Quick test_pool_covers_range;
          Alcotest.test_case "size-1 inline" `Quick test_pool_size_one_inline;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "exceptions" `Quick test_pool_exception_propagates ] );
      ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "distinct seeds" `Quick test_rng_distinct_seeds;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniformity" `Slow test_rng_uniformity;
          Alcotest.test_case "wor" `Quick test_rng_wor;
          Alcotest.test_case "wor uniform" `Slow test_rng_wor_uniform;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "derive" `Quick test_rng_derive;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle ] );
      ( "hashing",
        [ Alcotest.test_case "prf deterministic" `Quick test_prf_deterministic;
          Alcotest.test_case "prf uniform" `Slow test_prf_range_and_uniformity;
          Alcotest.test_case "hash_string" `Quick test_hash_string;
          Alcotest.test_case "mix64 collisions" `Quick test_mix64_bijective_smoke ] );
      ( "dist",
        [ Alcotest.test_case "uniform_int" `Quick test_uniform_int;
          Alcotest.test_case "exponential" `Slow test_exponential_mean;
          Alcotest.test_case "gaussian" `Slow test_gaussian_moments;
          Alcotest.test_case "zipf" `Slow test_zipf;
          Alcotest.test_case "pareto" `Quick test_pareto ] );
      ( "tablefmt",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "float_cell" `Quick test_float_cell ] );
      ("properties", qcheck_tests) ]
