lib/experiments/exp_strategy.mli:
