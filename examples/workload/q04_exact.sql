-- Sample-free queries answer exactly and lint clean.
SELECT SUM(l_quantity) FROM lineitem;
SELECT COUNT(*) FROM orders;
