lib/relational/database.ml: Hashtbl List Printf Relation
