lib/relational/lineage.mli: Format Gus_util
