(** E4 — runtime analysis of the SBox.

    Two scalings the paper claims:
    - plan rewriting + c_S computation is "a few milliseconds even for
      plans involving 10 relations" despite the 2ⁿ coefficient vectors;
    - the y_S moment pass is the dominant per-tuple cost and is linear in
      the sample size (times 2ⁿ group-bys).

    Measured with median-of-repeats wall-clock timing; the Bechamel
    micro-benchmarks in [bench/main.exe] cover the same code paths with
    rigorous regression-based timing. *)

val run : unit -> unit

val chain_plan : n:int -> Gus_core.Splan.t
(** A left-deep join of [n] Bernoulli-sampled synthetic relations
    [r0 … r(n−1)] (used to scale the analysis to many relations). *)

val chain_card : string -> int
