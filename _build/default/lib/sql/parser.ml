open Gus_relational

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type state = {
  mutable tokens : Token.t list;
}

let peek st = match st.tokens with [] -> Token.EOF | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t <> tok then
    error "expected %s but found %s" (Token.to_string tok) (Token.to_string t)

let expect_ident st =
  match next st with
  | Token.IDENT s -> s
  | t -> error "expected an identifier but found %s" (Token.to_string t)

let number st =
  match next st with
  | Token.INT i -> float_of_int i
  | Token.FLOAT f -> f
  | t -> error "expected a number but found %s" (Token.to_string t)

(* Expression grammar, loosest first:
   or  ::= and [OR and]...
   and ::= not [AND not]...
   not ::= NOT not | cmp
   cmp ::= add [cmpop add]
   add ::= mul [(+|-) mul]...
   mul ::= unary [(star|/) unary]...
   unary ::= - unary | NOT unary | primary
   primary ::= literal | ident | ( or ) *)
let rec parse_or st =
  let lhs = parse_and st in
  if peek st = Token.OR then begin
    advance st;
    Expr.Or (lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if peek st = Token.AND then begin
    advance st;
    Expr.And (lhs, parse_and st)
  end
  else lhs

and parse_not st =
  if peek st = Token.NOT then begin
    advance st;
    Expr.Not (parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Token.EQ -> Some Expr.Eq
    | Token.NEQ -> Some Expr.Neq
    | Token.LT -> Some Expr.Lt
    | Token.LE -> Some Expr.Le
    | Token.GT -> Some Expr.Gt
    | Token.GE -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Expr.Cmp (op, lhs, parse_add st)

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.PLUS ->
        advance st;
        lhs := Expr.Bin (Expr.Add, !lhs, parse_mul st)
    | Token.MINUS ->
        advance st;
        lhs := Expr.Bin (Expr.Sub, !lhs, parse_mul st)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.STAR ->
        advance st;
        lhs := Expr.Bin (Expr.Mul, !lhs, parse_unary st)
    | Token.SLASH ->
        advance st;
        lhs := Expr.Bin (Expr.Div, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Token.MINUS ->
      advance st;
      Expr.Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match next st with
  | Token.INT i -> Expr.int i
  | Token.FLOAT f -> Expr.float f
  | Token.STRING s -> Expr.str s
  | Token.TRUE -> Expr.bool true
  | Token.FALSE -> Expr.bool false
  | Token.NULL -> Expr.null
  | Token.IDENT name -> Expr.col name
  | Token.LPAREN ->
      let e = parse_or st in
      expect st Token.RPAREN;
      e
  | t -> error "expected an expression but found %s" (Token.to_string t)

let rec parse_agg st =
  match next st with
  | Token.SUM ->
      expect st Token.LPAREN;
      let e = parse_or st in
      expect st Token.RPAREN;
      Ast.Sum e
  | Token.AVG ->
      expect st Token.LPAREN;
      let e = parse_or st in
      expect st Token.RPAREN;
      Ast.Avg e
  | Token.COUNT ->
      expect st Token.LPAREN;
      if peek st = Token.STAR then begin
        advance st;
        expect st Token.RPAREN;
        Ast.Count_star
      end
      else begin
        let e = parse_or st in
        expect st Token.RPAREN;
        Ast.Count e
      end
  | Token.QUANTILE ->
      expect st Token.LPAREN;
      let inner = parse_agg st in
      expect st Token.COMMA;
      let q = number st in
      expect st Token.RPAREN;
      if not (q > 0.0 && q < 1.0) then
        error "QUANTILE level %g must be in (0,1)" q;
      (match inner with
      | Ast.Quantile _ -> error "nested QUANTILE is not allowed"
      | _ -> ());
      Ast.Quantile (inner, q)
  | t -> error "expected an aggregate (SUM/COUNT/AVG/QUANTILE) but found %s"
           (Token.to_string t)

let parse_select_item st =
  let agg = parse_agg st in
  let alias =
    match peek st with
    | Token.AS ->
        advance st;
        Some (expect_ident st)
    | Token.IDENT name ->
        advance st;
        Some name
    | _ -> None
  in
  { Ast.agg; alias }

let parse_sample_spec st =
  (* TABLESAMPLE already consumed. *)
  let flavor =
    match peek st with
    | Token.BERNOULLI ->
        advance st;
        `Bernoulli
    | Token.SYSTEM ->
        advance st;
        `System
    | _ -> `Default
  in
  expect st Token.LPAREN;
  let v = number st in
  let spec =
    match next st with
    | Token.PERCENT -> begin
        if not (v >= 0.0 && v <= 100.0) then
          error "sampling percentage %g out of [0,100]" v;
        match flavor with
        | `System -> Ast.System_percent v
        | `Bernoulli | `Default -> Ast.Percent v
      end
    | Token.ROWS ->
        if flavor = `System then error "SYSTEM sampling takes PERCENT, not ROWS";
        if Float.of_int (int_of_float v) <> v || v < 0.0 then
          error "ROWS count must be a non-negative integer";
        Ast.Rows (int_of_float v)
    | t -> error "expected PERCENT or ROWS but found %s" (Token.to_string t)
  in
  expect st Token.RPAREN;
  (* Optional REPEATABLE (seed) — accepted and ignored, like many engines. *)
  if peek st = Token.REPEATABLE then begin
    advance st;
    expect st Token.LPAREN;
    ignore (number st);
    expect st Token.RPAREN
  end;
  spec

let parse_from_item st =
  let relation = expect_ident st in
  let sample =
    if peek st = Token.TABLESAMPLE then begin
      advance st;
      Some (parse_sample_spec st)
    end
    else None
  in
  { Ast.relation; sample }

let parse_comma_list st parse_one =
  let rec go acc =
    let item = parse_one st in
    if peek st = Token.COMMA then begin
      advance st;
      go (item :: acc)
    end
    else List.rev (item :: acc)
  in
  go []

let parse_query st =
  let view =
    if peek st = Token.CREATE then begin
      advance st;
      expect st Token.VIEW;
      let name = expect_ident st in
      let cols =
        if peek st = Token.LPAREN then begin
          advance st;
          let cols = parse_comma_list st expect_ident in
          expect st Token.RPAREN;
          cols
        end
        else []
      in
      expect st Token.AS;
      Some (name, cols)
    end
    else None
  in
  expect st Token.SELECT;
  let items = parse_comma_list st parse_select_item in
  expect st Token.FROM;
  let from = parse_comma_list st parse_from_item in
  let where =
    if peek st = Token.WHERE then begin
      advance st;
      Some (parse_or st)
    end
    else None
  in
  let group_by =
    if peek st = Token.GROUP then begin
      advance st;
      expect st Token.BY;
      parse_comma_list st parse_or
    end
    else []
  in
  if peek st = Token.SEMI then advance st;
  expect st Token.EOF;
  { Ast.view; items; from; where; group_by }

let parse input =
  let st = { tokens = Lexer.tokenize input } in
  parse_query st

let parse_expr input =
  let st = { tokens = Lexer.tokenize input } in
  let e = parse_or st in
  expect st Token.EOF;
  e
