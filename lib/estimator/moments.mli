(** The y_S / Y_S data moments of Theorem 1 (Section 6.3).

    For a subset [S] of the lineage schema,
    [y_S = Σ_{lineage-groups on S} (Σ_{tuples in group} f)²] — a group-by
    on the lineage ids of the relations in [S].  Computed over the full
    query result these are the exact [y_S]; computed over a sample they are
    the raw [Y_S] that the SBox corrects into unbiased [Ŷ_S].

    The group-by passes run on an allocation-free kernel: lineages are
    hashed directly under each subset mask (no restricted key arrays) into
    a reused open-addressing table, and the [2^n_rels − 1] independent
    passes fan out across a {!Gus_util.Pool} domain pool for large inputs.
    [?pool] selects the pool (default: the shared {!Gus_util.Pool.default},
    whose size is the machine's recommended domain count — on single-core
    hosts everything stays sequential).  [?par_threshold] is the tuple
    count below which the passes always run sequentially on the calling
    domain (default 4096). *)

val of_pairs :
  ?pool:Gus_util.Pool.t ->
  ?par_threshold:int ->
  n_rels:int ->
  (int array * float) array ->
  float array
(** [(lineage, f)] pairs → the [2^n_rels] moments, indexed by subset mask.
    Every lineage must have length [n_rels]. *)

val of_pairs_naive : n_rels:int -> (int array * float) array -> float array
(** Reference implementation of {!of_pairs} (fresh key array per tuple per
    subset, one hashtable per subset).  Kept as the oracle for property
    tests and benchmarks; do not use on hot paths. *)

val of_relation :
  ?pool:Gus_util.Pool.t ->
  f:Gus_relational.Expr.t ->
  Gus_relational.Relation.t ->
  float array
(** Evaluate [f] on every tuple (Null ↦ 0) and delegate to {!of_pairs}
    using the relation's lineage schema. *)

val pairs_of_relation :
  f:Gus_relational.Expr.t -> Gus_relational.Relation.t -> (int array * float) array
(** The SBox input stream of Section 6.2: per-result-tuple lineage and
    aggregate contribution. *)

val total : (int array * float) array -> float
(** Σ f — the quantity the estimate scales up. *)

val bilinear_of_pairs :
  ?pool:Gus_util.Pool.t ->
  ?par_threshold:int ->
  n_rels:int ->
  (int array * float * float) array ->
  float array
(** Cross moments [y^{fg}_S = Σ_{groups on S} (Σ f)(Σ g)] — the bilinear
    generalization used for covariance between two SUM aggregates over the
    same sample (and hence for AVG via the delta method).
    [bilinear_of_pairs] with [f = g] coincides with {!of_pairs}. *)

val bilinear_of_pairs_naive :
  n_rels:int -> (int array * float * float) array -> float array
(** Reference implementation of {!bilinear_of_pairs}; see
    {!of_pairs_naive}. *)

val bilinear_of_relation :
  ?pool:Gus_util.Pool.t ->
  f:Gus_relational.Expr.t ->
  g:Gus_relational.Expr.t ->
  Gus_relational.Relation.t ->
  float array

val default_par_threshold : int
(** Tuple count below which {!of_pairs}/{!bilinear_of_pairs} never
    parallelize (4096). *)
