(** Streaming univariate summaries (Welford) and batch helpers. *)

type t

val create : unit -> t
val add : t -> float -> unit
val merge : t -> t -> t
(** Chan et al. parallel combination of two summaries. *)

val count : t -> int
val mean : t -> float
(** 0 on an empty summary. *)

val variance : t -> float
(** Unbiased (n−1) sample variance; 0 when n < 2. *)

val variance_population : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val of_array : float array -> t

val quantile_sorted : float array -> float -> float
(** [quantile_sorted a q] with [a] sorted ascending, linear interpolation;
    raises on empty input or q outside [0,1]. *)

val quantile : float array -> float -> float
(** Copies and sorts, then {!quantile_sorted}. *)

val mean_of : float array -> float
val rmse : truth:float -> float array -> float
(** Root-mean-square error of estimates against a fixed truth. *)

val relative_error : truth:float -> float -> float
(** |x − truth| / |truth|; infinite when truth = 0 and x ≠ 0. *)
