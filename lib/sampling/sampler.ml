module Rng = Gus_util.Rng
module Hashing = Gus_util.Hashing
module Pool = Gus_util.Pool
module Vec = Gus_util.Vec
open Gus_relational

type t =
  | Bernoulli of float
  | Wor of int
  | Wr of int
  | Block of { rows_per_block : int; p : float }
  | Hash_bernoulli of { seed : int; p : float }

let pp ppf = function
  | Bernoulli p -> Format.fprintf ppf "Bernoulli(%g)" p
  | Wor n -> Format.fprintf ppf "WOR(%d)" n
  | Wr n -> Format.fprintf ppf "WR(%d)" n
  | Block { rows_per_block; p } -> Format.fprintf ppf "Block(%d,%g)" rows_per_block p
  | Hash_bernoulli { seed; p } -> Format.fprintf ppf "HashBernoulli(seed=%d,%g)" seed p

let to_string s = Format.asprintf "%a" pp s

let check_p p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Sampler: probability %g not in [0,1]" p)

let validate = function
  | Bernoulli p -> check_p p
  | Wor n | Wr n ->
      if n < 0 then invalid_arg "Sampler: negative sample size"
  | Block { rows_per_block; p } ->
      if rows_per_block <= 0 then invalid_arg "Sampler: block size must be positive";
      check_p p
  | Hash_bernoulli { p; _ } -> check_p p

let copy_shape ?(suffix = "sample") rel =
  Relation.derived
    ~name:(Printf.sprintf "%s(%s)" suffix rel.Relation.name)
    rel.Relation.schema rel.Relation.lineage_schema

let require_base which rel =
  if Array.length rel.Relation.lineage_schema <> 1 then
    invalid_arg
      (Printf.sprintf "Sampler.apply: %s requires a base relation, got lineage %s"
         which
         (String.concat "," (Array.to_list rel.Relation.lineage_schema)))

let uses_rng = function
  | Bernoulli _ | Wor _ | Wr _ | Block _ -> true
  | Hash_bernoulli _ -> false

let per_tuple = function
  | Bernoulli _ | Hash_bernoulli _ -> true
  | Wor _ | Wr _ | Block _ -> false

(* Row-block grid for the pooled Bernoulli path.  The grid is a property
   of the *input*, not of the pool: block [b] always covers rows
   [b*4096, (b+1)*4096) and always draws from the [b]-th derived child
   stream, so the sample is identical for every pool size. *)
let bernoulli_rows_per_stream = 4096

let apply_inner ?pool ?(par_threshold = Pool.default_par_threshold) t rng rel =
  validate t;
  (match t with
  | Block _ -> require_base "block sampling" rel
  | Hash_bernoulli _ -> require_base "hash-Bernoulli sampling" rel
  | Bernoulli _ | Wor _ | Wr _ -> ());
  match t with
  | Bernoulli p -> (
      let out = copy_shape rel in
      let n = Relation.cardinality rel in
      match pool with
      | Some pl when Pool.is_live pl && n >= par_threshold ->
          (* Block-wise draws: one [Rng.derive]d child stream per fixed
             4096-row block, blocks fanned across lanes and stitched in
             block order.  Deterministic in (seed, input) and independent
             of the lane count — but a *different* sample than the
             sequential single-stream path, which is why the pooled path
             is opt-in per call rather than a drop-in default. *)
          let master = Rng.split rng in
          let nblocks = (n + bernoulli_rows_per_stream - 1) / bernoulli_rows_per_stream in
          let outs = Array.init nblocks (fun _ -> Vec.create ()) in
          Pool.run_chunks pl ~lo:0 ~hi:nblocks (fun blo bhi ->
              for b = blo to bhi - 1 do
                let brng = Rng.derive master b in
                let dst = outs.(b) in
                let lo = b * bernoulli_rows_per_stream in
                let hi = min n (lo + bernoulli_rows_per_stream) in
                for i = lo to hi - 1 do
                  let tup = Relation.tuple rel i in
                  if Rng.bernoulli brng p then Vec.push dst tup
                done
              done);
          Array.iter (fun v -> Vec.iter (Relation.append_tuple out) v) outs;
          out
      | _ ->
          Relation.iter
            (fun tup -> if Rng.bernoulli rng p then Relation.append_tuple out tup)
            rel;
          out)
  | Wor n ->
      let out = copy_shape rel in
      let card = Relation.cardinality rel in
      let k = min n card in
      let idx = Rng.sample_without_replacement rng k card in
      Array.sort compare idx;
      Array.iter (fun i -> Relation.append_tuple out (Relation.tuple rel i)) idx;
      out
  | Wr n ->
      let out = copy_shape rel in
      let card = Relation.cardinality rel in
      if card > 0 then
        for _ = 1 to n do
          Relation.append_tuple out (Relation.tuple rel (Rng.int rng card))
        done;
      out
  | Block { rows_per_block; p } ->
      (* Lineage is rewritten to block granularity: the filter decision is
         per block, and two rows of one kept block are *not* independent, so
         the GUS analysis must treat the block as the sampled unit. *)
      let out = copy_shape ~suffix:"blocksample" rel in
      let card = Relation.cardinality rel in
      let nblocks = (card + rows_per_block - 1) / rows_per_block in
      let keep = Array.init nblocks (fun _ -> Rng.bernoulli rng p) in
      Relation.iter
        (fun tup ->
          let row = tup.Tuple.lineage.(0) in
          let block = row / rows_per_block in
          if keep.(block) then begin
            let lineage = Array.copy tup.Tuple.lineage in
            lineage.(0) <- block;
            Relation.append_tuple out { tup with Tuple.lineage }
          end)
        rel;
      out
  | Hash_bernoulli { seed; p } ->
      (* Decisions are a pure function of (seed, lineage id), so the
         chunk-parallel scan is output-identical to the sequential one. *)
      let out = copy_shape ~suffix:"hashsample" rel in
      Ops.chunked_scan ?pool ~par_threshold rel out (fun push tup ->
          let id = tup.Tuple.lineage.(0) in
          if Hashing.prf_float ~seed id < p then push tup);
      out

let m_rows_in = Gus_obs.Metrics.counter "sampler.rows_in"
let m_rows_out = Gus_obs.Metrics.counter "sampler.rows_out"
let m_draws = Gus_obs.Metrics.counter "sampler.bernoulli.draws"

let apply ?pool ?par_threshold t rng rel =
  let out = apply_inner ?pool ?par_threshold t rng rel in
  (* Draw counts are derived arithmetically (never by counting inside the
     sampling loops), so instrumentation cannot perturb the RNG stream. *)
  if Gus_obs.Metrics.enabled () then begin
    Gus_obs.Metrics.add m_rows_in (Relation.cardinality rel);
    Gus_obs.Metrics.add m_rows_out (Relation.cardinality out);
    match t with
    | Bernoulli _ -> Gus_obs.Metrics.add m_draws (Relation.cardinality rel)
    | Block { rows_per_block; p = _ } ->
        let card = Relation.cardinality rel in
        Gus_obs.Metrics.add m_draws
          ((card + rows_per_block - 1) / rows_per_block)
    | Wor _ | Wr _ | Hash_bernoulli _ -> ()
  end;
  out

let sampling_fraction t ~n =
  match t with
  | Bernoulli p -> p
  | Wor k | Wr k -> if n = 0 then 0.0 else Float.min 1.0 (float_of_int k /. float_of_int n)
  | Block { p; _ } -> p
  | Hash_bernoulli { p; _ } -> p
