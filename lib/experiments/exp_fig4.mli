(** T3 — Figure 4: transformation of the 4-relation plan (lineitem,
    orders, customer, part with three samplers and an identity GUS on
    customer) and the full 16-coefficient table of the top operator
    G(a₁₂₃, b̄₁₂₃), compared against every value printed in the paper. *)

val run : unit -> unit

val paper_g123 : (string list * float) list
(** Subsets (as relation-name lists) and the printed b₁₂₃ values. *)

val derived : unit -> Gus_analysis.Rewrite.result
