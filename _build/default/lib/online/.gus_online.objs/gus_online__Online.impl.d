lib/online/online.ml: Array Database Expr Fun Gus_core Gus_estimator Gus_relational Gus_stats Gus_util List Option Relation
