-- Total quantity from a 10% Bernoulli sample of lineitem.
SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT);
