lib/experiments/exp_strategy.ml: Float Gus_core Gus_estimator Gus_relational Gus_sampling Gus_stats Gus_util Harness List Printf
