type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
  mutable failure : exn option;
}

type t = {
  size : int;
  workers : worker array;
  domains : unit Domain.t array;
  mutable live : bool;
}

let size t = t.size

let worker_loop w =
  let running = ref true in
  while !running do
    Mutex.lock w.mutex;
    while w.job = None && not w.stop do
      Condition.wait w.cond w.mutex
    done;
    match w.job with
    | Some f ->
        Mutex.unlock w.mutex;
        (try f () with e -> w.failure <- Some e);
        Mutex.lock w.mutex;
        w.job <- None;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex
    | None ->
        Mutex.unlock w.mutex;
        running := false
  done

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.stop <- true;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex)
      t.workers;
    Array.iter Domain.join t.domains
  end

let create ~size =
  let size = max 1 size in
  let workers =
    Array.init (size - 1) (fun _ ->
        { mutex = Mutex.create ();
          cond = Condition.create ();
          job = None;
          stop = false;
          failure = None })
  in
  let domains = Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers in
  let t = { size; workers; domains; live = true } in
  (* Blocked workers would keep the process from shutting down cleanly. *)
  if size > 1 then at_exit (fun () -> shutdown t);
  t

let submit w f =
  Mutex.lock w.mutex;
  w.failure <- None;
  w.job <- Some f;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  while w.job <> None do
    Condition.wait w.cond w.mutex
  done;
  Mutex.unlock w.mutex

let run_chunks t ~lo ~hi f =
  let total = hi - lo in
  if total > 0 then begin
    if not t.live then invalid_arg "Pool.run_chunks: pool is shut down";
    let lanes = min t.size total in
    if lanes <= 1 then f lo hi
    else begin
      let per = total / lanes and rem = total mod lanes in
      (* Chunk k covers [start k, start (k+1)): the first [rem] chunks get
         one extra index. *)
      let start k = lo + (k * per) + min k rem in
      for k = 1 to lanes - 1 do
        let clo = start k and chi = start (k + 1) in
        submit t.workers.(k - 1) (fun () -> f clo chi)
      done;
      let caller_failure = (try f (start 0) (start 1); None with e -> Some e) in
      for k = 1 to lanes - 1 do
        await t.workers.(k - 1)
      done;
      (match caller_failure with Some e -> raise e | None -> ());
      for k = 1 to lanes - 1 do
        match t.workers.(k - 1).failure with
        | Some e -> raise e
        | None -> ()
      done
    end
  end

let recommended_size () = max 1 (Domain.recommended_domain_count ())

let default_pool = ref None

let default () =
  match !default_pool with
  | Some t when t.live -> t
  | _ ->
      let t = create ~size:(recommended_size ()) in
      default_pool := Some t;
      t
