(** Deterministic batch fan-out over the domain {!Gus_util.Pool}.

    A batch of [n] independent jobs is partitioned into the pool's
    contiguous index chunks and each lane runs its chunk sequentially;
    every job writes only its own pre-allocated result slot, so the
    output array is in submission order for {e any} lane count — the
    protocol's [batch] op promises deterministic result ordering.

    Jobs must not share mutable state (in the engine they execute
    against immutable database snapshots, and all cache traffic happens
    outside the fan-out, on the driving thread).  Per-job exceptions are
    captured as [Error] results rather than tearing down the batch. *)

val map : ?pool:Gus_util.Pool.t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** [map ~pool f jobs] with no pool (or a pool of size 1, or a batch of
    one) runs inline in submission order. *)
