lib/experiments/exp_fig5.ml: Array Exp_query1 Float Gus_core Gus_util Harness List Printf
