(** Tuple lineage (Section 4.2 / 6.2 of the paper).

    Lineage dissociates a tuple's identity from its content: each base
    relation contributes one row-id slot, joins concatenate slots,
    selections/projections preserve them.  The GUS analysis only ever
    *compares* ids, so any injective id assignment works.

    A {e lineage schema} is the ordered array of base-relation names whose
    ids a tuple carries; a tuple's lineage is an int array aligned to it. *)

type schema = string array

val schema_empty : schema
val schema_of : string -> schema
val schema_concat : schema -> schema -> schema
(** Raises {!Overlap} when the two sides share a base relation — the
    paper's Prop. 6 precondition (self-joins are out of scope). *)

exception Overlap of string

val schema_equal : schema -> schema -> bool
val schema_mem : schema -> string -> bool
val position : schema -> string -> int option

type t = int array
(** Row ids aligned to a schema. *)

val concat : t -> t -> t

val common : t -> t -> Gus_util.Subset.t
(** [common l l'] is the subset of slot positions where the two lineages
    agree — the paper's T(t,t').  Both lineages must have equal length. *)

val restrict : t -> positions:int list -> t

val hash : t -> int
val equal : t -> t -> bool
val pp : schema:schema -> Format.formatter -> t -> unit
