lib/experiments/exp_fig4.mli: Gus_core
