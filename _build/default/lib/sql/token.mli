(** Lexical tokens of the paper's SQL dialect. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  (* keywords *)
  | SELECT | FROM | WHERE | AS | AND | OR | NOT
  | SUM | COUNT | AVG | QUANTILE
  | TABLESAMPLE | PERCENT | ROWS | BERNOULLI | SYSTEM | REPEATABLE
  | CREATE | VIEW | TRUE | FALSE | NULL | GROUP | BY
  (* punctuation *)
  | LPAREN | RPAREN | COMMA | SEMI | STAR
  | PLUS | MINUS | SLASH
  | EQ | NEQ | LT | LE | GT | GE
  | EOF

val keyword_of_string : string -> t option
(** Case-insensitive keyword lookup. *)

val to_string : t -> string
