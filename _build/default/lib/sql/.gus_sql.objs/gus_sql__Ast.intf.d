lib/sql/ast.mli: Format Gus_relational
