(* Columnar-engine parity suite.

   The columnar store and its vectorized kernels must be observationally
   identical — same values bit for bit, same lineage, same row order,
   same exceptions — to the boxed row engine ([~storage:`Rows], the seed
   implementation kept as the test oracle).  Random relations include
   NULLs, dictionary-encoded strings, negative zero and empty inputs;
   random expressions include arithmetic that raises (division by zero)
   and unknown columns, because "identical" covers the failure paths too.

   1. QCheck: select / project / equi-join outputs identical across
      storages for pools {none, 1, 2, 4}.
   2. QCheck: every sampler draws the identical sample on both storages
      from the same seed (pooled Bernoulli included, per pool size).
   3. Snapshot: save → load round-trips bit-identically (values, lineage,
      schema), re-saving the loaded database is byte-identical, mapped
      columns are copy-on-append, and corrupt/versioned files raise the
      documented exceptions.
   4. Streaming SBox: Query-1 estimates on columnar and row databases are
      bit-identical and still pinned to the seed implementation's value. *)

module Rng = Gus_util.Rng
module Pool = Gus_util.Pool
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Sampler = Gus_sampling.Sampler
module Harness = Gus_experiments.Harness
open Gus_relational

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let pool_of =
  let tbl = Hashtbl.create 4 in
  fun size ->
    match Hashtbl.find_opt tbl size with
    | Some p -> p
    | None ->
        let p = Pool.create ~size in
        Hashtbl.add tbl size p;
        p

(* ---- bit-level equality ---- *)

let value_eq a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> a = b

let schema_eq a b =
  Schema.arity a = Schema.arity b
  && List.for_all
       (fun j -> Schema.column_name a j = Schema.column_name b j
                 && Schema.column_ty a j = Schema.column_ty b j)
       (List.init (Schema.arity a) Fun.id)

let rel_eq a b =
  a.Relation.name = b.Relation.name
  && schema_eq a.Relation.schema b.Relation.schema
  && a.Relation.lineage_schema = b.Relation.lineage_schema
  && Relation.cardinality a = Relation.cardinality b
  && (let ok = ref true in
      for i = 0 to Relation.cardinality a - 1 do
        let ta = Relation.tuple a i and tb = Relation.tuple b i in
        if
          not
            (Array.length ta.Tuple.values = Array.length tb.Tuple.values
            && Array.for_all2 value_eq ta.Tuple.values tb.Tuple.values
            && ta.Tuple.lineage = tb.Tuple.lineage)
        then ok := false
      done;
      !ok)

(* Run both engines and demand the same outcome — result or exception. *)
let outcome f =
  match f () with
  | r -> Ok r
  | exception Value.Type_error m -> Error ("type_error: " ^ m)
  | exception Expr.Bind_error m -> Error ("bind_error: " ^ m)
  | exception Schema.Unknown_column c -> Error ("unknown_column: " ^ c)
  | exception Invalid_argument m -> Error ("invalid_arg: " ^ m)

let outcomes_agree a b =
  match (a, b) with
  | Ok ra, Ok rb -> rel_eq ra rb
  | Error ma, Error mb -> ma = mb
  | _ -> false

(* ---- random relations (both storages, same data) ---- *)

let dict = [| "alpha"; "beta"; "gamma"; "delta" |]

let schema =
  Schema.make
    [ { Schema.name = "f"; ty = Value.TFloat };
      { Schema.name = "i"; ty = Value.TInt };
      { Schema.name = "s"; ty = Value.TStr };
      { Schema.name = "b"; ty = Value.TBool } ]

(* One int code per cell; code → value keeps the generator shrinkable
   while still covering NULLs (≈1/7 of cells), both signs, -0.0 and the
   whole dictionary. *)
let value_of_code j code =
  if code mod 7 = 0 then Value.Null
  else
    match j with
    | 0 ->
        let x = float_of_int ((code mod 13) - 6) /. 3.0 in
        Value.Float (if code mod 11 = 1 then -0.0 else x)
    | 1 -> Value.Int ((code mod 11) - 5)
    | 2 -> Value.Str dict.(code mod Array.length dict)
    | _ -> Value.Bool (code mod 2 = 0)

(* Join right-hand side: distinct names so Schema.concat is legal. *)
let schema_r =
  Schema.make
    [ { Schema.name = "rf"; ty = Value.TFloat };
      { Schema.name = "ri"; ty = Value.TInt };
      { Schema.name = "rs"; ty = Value.TStr };
      { Schema.name = "rb"; ty = Value.TBool } ]

let build ?(schema = schema) ~name storage codes =
  let rel = Relation.create_base ~storage ~name schema in
  List.iter
    (fun row -> Relation.append_row rel (Array.mapi value_of_code row))
    codes;
  rel

let both_storages ~name codes = (build ~name `Cols codes, build ~name `Rows codes)

let rows_gen =
  QCheck2.Gen.(list_size (int_range 0 80) (array_size (pure 4) (int_range 0 1000)))

(* ---- random expressions ---- *)

let leaf_gen =
  QCheck2.Gen.oneofl
    [ Expr.col "f"; Expr.col "i"; Expr.col "s"; Expr.col "b";
      Expr.col "nosuch"; Expr.int 2; Expr.int 0; Expr.int (-3);
      Expr.float 1.5; Expr.float 0.0; Expr.str "beta"; Expr.bool true;
      Expr.bool false; Expr.null ]

let rec expr_gen n =
  if n <= 0 then leaf_gen
  else
    QCheck2.Gen.(
      frequency
        [ (2, leaf_gen);
          ( 3,
            map3
              (fun o a b -> Expr.Bin (o, a, b))
              (oneofl [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div ])
              (expr_gen (n - 1)) (expr_gen (n - 1)) );
          ( 3,
            map3
              (fun o a b -> Expr.Cmp (o, a, b))
              (oneofl [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ])
              (expr_gen (n - 1)) (expr_gen (n - 1)) );
          (1, map2 (fun a b -> Expr.And (a, b)) (expr_gen (n - 1)) (expr_gen (n - 1)));
          (1, map2 (fun a b -> Expr.Or (a, b)) (expr_gen (n - 1)) (expr_gen (n - 1)));
          (1, map (fun a -> Expr.Not a) (expr_gen (n - 1)));
          (1, map (fun a -> Expr.Neg a) (expr_gen (n - 1))) ])

let pools = [ None; Some 1; Some 2; Some 4 ]

let with_pool psize f =
  match psize with
  | None -> f ?pool:None ()
  | Some s -> f ?pool:(Some (pool_of s)) ()

(* ---- 1. operator parity ---- *)

let print_case (codes, e) =
  Printf.sprintf "n=%d expr=%s" (List.length codes) (Expr.to_string e)

let prop_select_parity =
  QCheck2.Test.make ~name:"select: cols = rows (all pools)" ~count:250
    ~print:print_case
    QCheck2.Gen.(pair rows_gen (expr_gen 3))
    (fun (codes, e) ->
      let c, r = both_storages ~name:"t" codes in
      List.for_all
        (fun psize ->
          outcomes_agree
            (outcome (fun () ->
                 with_pool psize (fun ?pool () ->
                     Ops.select ?pool ~par_threshold:8 e c)))
            (outcome (fun () ->
                 with_pool psize (fun ?pool () ->
                     Ops.select ?pool ~par_threshold:8 e r))))
        pools)

let prop_project_parity =
  QCheck2.Test.make ~name:"project: cols = rows (all pools)" ~count:250
    ~print:(fun (codes, e1, e2) ->
      Printf.sprintf "n=%d a=%s b=%s" (List.length codes) (Expr.to_string e1)
        (Expr.to_string e2))
    QCheck2.Gen.(triple rows_gen (expr_gen 2) (expr_gen 2))
    (fun (codes, e1, e2) ->
      let c, r = both_storages ~name:"t" codes in
      let fields = [ ("a", e1); ("b", e2); ("f2", Expr.col "f") ] in
      List.for_all
        (fun psize ->
          outcomes_agree
            (outcome (fun () ->
                 with_pool psize (fun ?pool () ->
                     Ops.project ?pool ~par_threshold:8 fields c)))
            (outcome (fun () ->
                 with_pool psize (fun ?pool () ->
                     Ops.project ?pool ~par_threshold:8 fields r))))
        pools)

let prop_join_parity =
  QCheck2.Test.make ~name:"equi-join: cols = rows (mixed storages)" ~count:150
    ~print:(fun (a, b) ->
      Printf.sprintf "left=%d right=%d" (List.length a) (List.length b))
    QCheck2.Gen.(pair rows_gen rows_gen)
    (fun (acodes, bcodes) ->
      let ac, ar = both_storages ~name:"l" acodes in
      let bc = build ~schema:schema_r ~name:"r" `Cols bcodes
      and br = build ~schema:schema_r ~name:"r" `Rows bcodes in
      let join a b =
        outcome (fun () ->
            Ops.equi_join ~left_key:(Expr.col "i") ~right_key:(Expr.col "ri") a b)
      in
      let oracle = join ar br in
      (* The vectorized build/probe kernel (cols x cols) and the row
         fallback (either side row-backed) must agree exactly: same
         output rows in the same order, NULL keys never matching. *)
      outcomes_agree (join ac bc) oracle
      && outcomes_agree (join ac br) oracle
      && outcomes_agree (join ar bc) oracle)

let prop_column_values_parity =
  QCheck2.Test.make ~name:"column_values/sum_column: cols = rows" ~count:150
    ~print:(fun codes -> Printf.sprintf "n=%d" (List.length codes))
    rows_gen
    (fun codes ->
      let c, r = both_storages ~name:"t" codes in
      List.for_all
        (fun col ->
          let vc = Relation.column_values c col
          and vr = Relation.column_values r col in
          Array.length vc = Array.length vr && Array.for_all2 value_eq vc vr)
        [ "f"; "i"; "s"; "b" ]
      && Int64.equal
           (Int64.bits_of_float (Relation.sum_column c "f"))
           (Int64.bits_of_float (Relation.sum_column r "f"))
      && Int64.equal
           (Int64.bits_of_float (Relation.sum_column c "i"))
           (Int64.bits_of_float (Relation.sum_column r "i")))

(* ---- 2. sampler parity ---- *)

let samplers n =
  [ Sampler.Bernoulli 0.35;
    Sampler.Wor (max 1 (n / 2));
    Sampler.Wor (n + 3);
    Sampler.Wr (max 1 (n / 2));
    Sampler.Block { rows_per_block = 4; p = 0.5 };
    Sampler.Hash_bernoulli { seed = 11; p = 0.4 } ]

let prop_sampler_parity =
  QCheck2.Test.make ~name:"samplers: cols = rows (same seed, all pools)"
    ~count:120
    ~print:(fun (codes, seed) ->
      Printf.sprintf "n=%d seed=%d" (List.length codes) seed)
    QCheck2.Gen.(pair rows_gen (int_range 0 1000))
    (fun (codes, seed) ->
      let c, r = both_storages ~name:"t" codes in
      List.for_all
        (fun s ->
          List.for_all
            (fun psize ->
              let run rel =
                with_pool psize (fun ?pool () ->
                    Sampler.apply ?pool ~par_threshold:8 s (Rng.create seed) rel)
              in
              rel_eq (run c) (run r))
            pools)
        (samplers (List.length codes)))

(* ---- 3. snapshots ---- *)

let temp_snap () = Filename.temp_file "gus-test" ".snap"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let mixed_db () =
  let db = Database.create () in
  let rng = Rng.create 31 in
  let codes n =
    List.init n (fun _ -> Array.init 4 (fun _ -> Rng.int rng 1000))
  in
  Database.add db (build ~name:"t" `Cols (codes 257));
  (* A row-backed base must be converted on save, an empty relation must
     round-trip, and an all-NULL column exercises the bitmap path. *)
  Database.add db (build ~name:"rowbacked" `Rows (codes 41));
  Database.add db (build ~name:"empty" `Cols []);
  Database.add db (build ~name:"allnull" `Cols [ [| 0; 0; 0; 0 |]; [| 7; 7; 7; 7 |] ]);
  db

let test_snapshot_roundtrip () =
  let db = mixed_db () in
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Snapshot.save ~path db;
  let db' = Snapshot.load ~path in
  Alcotest.(check (list string))
    "names" (Database.names db) (Database.names db');
  List.iter
    (fun name ->
      let orig = Database.find db name and got = Database.find db' name in
      check_bool (name ^ " bit-identical") true
        (rel_eq (Relation.to_rows orig) (Relation.to_rows got));
      (* Loaded relations are base columnar with identity lineage. *)
      match Relation.store got with
      | Relation.Cols { clineage = Relation.Identity; _ } -> ()
      | _ -> Alcotest.fail (name ^ ": expected identity columnar store"))
    (Database.names db);
  (* Determinism: re-saving the loaded database is byte-identical. *)
  let path2 = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path2) @@ fun () ->
  Snapshot.save ~path:path2 db';
  check_bool "resave byte-identical" true (read_file path = read_file path2)

let test_snapshot_mapped_copy_on_append () =
  let db = mixed_db () in
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Snapshot.save ~path db;
  let before = read_file path in
  let db' = Snapshot.load ~path in
  let rel = Database.find db' "t" in
  Relation.append_row rel
    [| Value.Float 9.5; Value.Int 3; Value.Str "beta"; Value.Bool true |];
  check_int "append visible" 258 (Relation.cardinality rel);
  check_bool "appended row readable" true
    (value_eq (Value.Float 9.5) (Relation.tuple rel 257).Tuple.values.(0));
  (* The mapped file must not be written through. *)
  check_string "file bytes unchanged" before (read_file path);
  let db'' = Snapshot.load ~path in
  check_int "reload unchanged" 257 (Relation.cardinality (Database.find db'' "t"))

let test_snapshot_errors () =
  let db = mixed_db () in
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Snapshot.save ~path db;
  let bytes = Bytes.of_string (read_file path) in
  let write_variant mutate =
    let b = Bytes.copy bytes in
    mutate b;
    let p = temp_snap () in
    let oc = open_out_bin p in
    output_bytes oc b;
    close_out oc;
    p
  in
  let expect_format what p =
    Fun.protect ~finally:(fun () -> Sys.remove p) @@ fun () ->
    match Snapshot.load ~path:p with
    | _ -> Alcotest.fail (what ^ ": expected Format_error")
    | exception Snapshot.Format_error _ -> ()
  in
  expect_format "bad magic" (write_variant (fun b -> Bytes.set b 0 'X'));
  expect_format "endianness"
    (write_variant (fun b -> Bytes.set_int64_le b 8 0x0807060504030201L));
  (let p = write_variant (fun b -> Bytes.set b 16 '\009') in
   Fun.protect ~finally:(fun () -> Sys.remove p) @@ fun () ->
   match Snapshot.load ~path:p with
   | _ -> Alcotest.fail "version: expected Version_mismatch"
   | exception Snapshot.Version_mismatch { found; expected } ->
       check_int "found" 9 found;
       check_int "expected" 1 expected);
  (* Truncation at several depths: header, descriptors, column data. *)
  List.iter
    (fun keep ->
      let p = temp_snap () in
      let oc = open_out_bin p in
      output_bytes oc (Bytes.sub bytes 0 keep);
      close_out oc;
      expect_format (Printf.sprintf "truncated to %d" keep) p)
    [ 4; 40; 96; Bytes.length bytes - 9 ];
  match Snapshot.load ~path:"/nonexistent/gus.snap" with
  | _ -> Alcotest.fail "missing file: expected Format_error"
  | exception Snapshot.Format_error _ -> ()

(* ---- 4. streaming SBox parity + pinned Query-1 ---- *)

let row_copy db =
  let out = Database.create () in
  List.iter
    (fun n -> Database.add out (Relation.to_rows (Database.find db n)))
    (Database.names db);
  out

let test_stream_query1_parity () =
  let db = Harness.db_cached ~scale:0.1 in
  let db_rows = row_copy db in
  let plan = Harness.query1_plan () in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let bits = Int64.bits_of_float in
  List.iter
    (fun seed ->
      let run ?pool d =
        Sbox.of_plan ?pool ~gus ~f:Harness.revenue_f d (Rng.create seed) plan
      in
      let c = run db and r = run db_rows in
      check_int (Printf.sprintf "seed %d: n_tuples" seed) r.Sbox.n_tuples
        c.Sbox.n_tuples;
      check_bool (Printf.sprintf "seed %d: estimate bits" seed) true
        (Int64.equal (bits r.Sbox.estimate) (bits c.Sbox.estimate));
      check_bool (Printf.sprintf "seed %d: total_f bits" seed) true
        (Int64.equal (bits r.Sbox.total_f) (bits c.Sbox.total_f));
      List.iter
        (fun size ->
          let cp = run ~pool:(pool_of size) db
          and rp = run ~pool:(pool_of size) db_rows in
          check_int (Printf.sprintf "seed %d pool %d: n_tuples" seed size)
            rp.Sbox.n_tuples cp.Sbox.n_tuples;
          check_bool (Printf.sprintf "seed %d pool %d: estimate bits" seed size)
            true
            (Int64.equal (bits rp.Sbox.estimate) (bits cp.Sbox.estimate)))
        [ 1; 2; 4 ])
    [ 5; 17; 4242 ];
  (* The columnar fast path must still reproduce the seed implementation's
     pinned Query-1 estimate (captured before the columnar rewrite). *)
  let r =
    Sbox.of_plan ~gus ~f:Harness.revenue_f db (Rng.create 5) plan
  in
  check_int "pinned n_tuples" 399 r.Sbox.n_tuples;
  let close_rel what expected actual =
    check_bool what true
      (Float.abs (expected -. actual)
      <= 1e-9 *. Float.max 1.0 (Float.abs expected))
  in
  close_rel "pinned estimate" 30171033.0121831 r.Sbox.estimate

let test_snapshot_query_parity () =
  (* Estimates off a restored snapshot are bit-identical to estimates off
     the generated database — the serve `register {"source":"snapshot"}`
     contract. *)
  let db = Harness.db_cached ~scale:0.1 in
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Snapshot.save ~path db;
  let db' = Snapshot.load ~path in
  let plan = Harness.query1_plan () in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let run d = Sbox.of_plan ~gus ~f:Harness.revenue_f d (Rng.create 5) plan in
  let a = run db and b = run db' in
  check_int "n_tuples" a.Sbox.n_tuples b.Sbox.n_tuples;
  check_bool "estimate bits" true
    (Int64.equal
       (Int64.bits_of_float a.Sbox.estimate)
       (Int64.bits_of_float b.Sbox.estimate))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_select_parity; prop_project_parity; prop_join_parity;
      prop_column_values_parity; prop_sampler_parity ]

let () =
  Alcotest.run "columnar"
    [ ("parity", qcheck_tests);
      ( "snapshot",
        [ Alcotest.test_case "round-trip bit-identical" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "mapped columns copy on append" `Quick
            test_snapshot_mapped_copy_on_append;
          Alcotest.test_case "corrupt and versioned files" `Quick
            test_snapshot_errors;
          Alcotest.test_case "restored estimates bit-identical" `Quick
            test_snapshot_query_parity ] );
      ( "streaming",
        [ Alcotest.test_case "Query-1 cols = rows + pinned" `Quick
            test_stream_query1_parity ] ) ]
