lib/experiments/harness.mli: Gus_core Gus_relational
