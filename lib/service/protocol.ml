module Runner = Gus_sql.Runner
module D = Gus_analysis.Diagnostic
module Lint = Gus_analysis.Lint
module Metrics = Gus_obs.Metrics
open Gus_relational
open Json

(* Per-verb request counters + end-to-end request latency.  DESIGN.md §7
   lists the names; §12 maps them to Prometheus series. *)
let m_req_register = Metrics.counter "serve.requests.register"
let m_req_prepare = Metrics.counter "serve.requests.prepare"
let m_req_execute = Metrics.counter "serve.requests.execute"
let m_req_batch = Metrics.counter "serve.requests.batch"
let m_req_stats = Metrics.counter "serve.requests.stats"
let m_req_invalid = Metrics.counter "serve.requests.invalid"

let m_latency =
  (* default power-of-two buckets: 1 µs .. ~1 s *)
  Metrics.histogram "serve.latency_us"

exception Bad_request of string

let error_of_exn = function
  | Gus_sql.Parser.Error msg -> Some ("parse_error", msg)
  | Gus_sql.Lexer.Error { message; _ } ->
      Some ("parse_error", "lexical error: " ^ message)
  | Gus_sql.Planner.Error msg -> Some ("plan_error", msg)
  | Gus_analysis.Rewrite.Unsupported msg -> Some ("unsupported_plan", msg)
  | Value.Type_error msg -> Some ("type_error", msg)
  | Schema.Unknown_column c -> Some ("unknown_column", "unknown column " ^ c)
  | Database.Unknown_relation r ->
      Some ("unknown_relation", "unknown relation " ^ r)
  | Catalog.Unknown_dataset d -> Some ("unknown_dataset", "unknown dataset " ^ d)
  | Snapshot.Format_error msg -> Some ("snapshot_corrupt", msg)
  | Snapshot.Version_mismatch { found; expected } ->
      Some
        ( "snapshot_version",
          Printf.sprintf "snapshot format version %d (this build reads %d)"
            found expected )
  | Engine.Unknown_handle h -> Some ("unknown_handle", "unknown handle " ^ h)
  | Bad_request msg -> Some ("bad_request", msg)
  | Json.Parse_error msg -> Some ("bad_json", msg)
  | Invalid_argument msg -> Some ("bad_request", msg)
  | Sys_error msg | Failure msg -> Some ("io_error", msg)
  | _ -> None

let error_json ?op code message =
  obj
    [ ("ok", Some (Bool false));
      ("op", Option.map (fun o -> Str o) op);
      ( "error",
        Some (Obj [ ("code", Str code); ("message", Str message) ]) ) ]

(* ---- request-field accessors ---- *)

let req_str j field =
  match Option.bind (member field j) to_str with
  | Some s -> s
  | None -> raise (Bad_request (Printf.sprintf "missing string field %S" field))

let opt_str j field = Option.bind (member field j) to_str

let opt_num j field ~default =
  match member field j with
  | None -> default
  | Some v -> (
      match to_num v with
      | Some n -> n
      | None -> raise (Bad_request (Printf.sprintf "field %S: expected number" field)))

let opt_int j field ~default =
  match member field j with
  | None -> default
  | Some v -> (
      match to_int v with
      | Some n -> n
      | None ->
          raise (Bad_request (Printf.sprintf "field %S: expected integer" field)))

let opt_bool j field ~default =
  match member field j with
  | None -> default
  | Some v -> (
      match to_bool v with
      | Some b -> b
      | None -> raise (Bad_request (Printf.sprintf "field %S: expected bool" field)))

(* ---- response pieces ---- *)

let interval_json (iv : Gus_stats.Interval.t) =
  Obj [ ("lo", Num iv.lo); ("hi", Num iv.hi) ]

let cell_json (c : Runner.cell) =
  Obj
    [ ("label", Str c.label);
      ("estimate", Num c.value);
      ("stddev", Num c.stddev);
      ("ci95_normal", interval_json c.ci95_normal);
      ("ci95_chebyshev", interval_json c.ci95_chebyshev) ]

let result_json (r : Runner.result) =
  obj
    [ ("cells", Some (List (List.map cell_json r.cells)));
      ( "groups",
        if r.groups = [] then None
        else
          Some
            (List
               (List.map
                  (fun (g : Runner.group_row) ->
                    Obj
                      [ ("keys", List (List.map (fun k -> Str k) g.keys));
                        ("cells", List (List.map cell_json g.group_cells)) ])
                  r.groups)) );
      ("n_sample_tuples", Some (Num (float_of_int r.n_sample_tuples))) ]

let exact_json rs =
  let pair (label, v) = Obj [ ("label", Str label); ("value", Num v) ] in
  match
    (rs.Runner.rs_exact, rs.Runner.rs_exact_groups)
  with
  | [], [] -> None
  | cells, [] -> Some (List (List.map pair cells))
  | _, groups ->
      Some
        (List
           (List.map
              (fun (keys, cells) ->
                Obj
                  [ ("keys", List (List.map (fun k -> Str k) keys));
                    ("cells", List (List.map pair cells)) ])
              groups))

let diagnostic_json = Workload_lint.diagnostic_json

let response_json ~handle (o : Engine.outcome) =
  let rs = o.Engine.response in
  obj
    [ ("ok", Some (Bool true));
      ("op", Some (Str "execute"));
      ("handle", Some (Str handle));
      ("cached", Some (Bool o.Engine.cached));
      ("streamed", Some (Bool rs.Runner.rs_streamed));
      ("wall_us", Some (Num (float_of_int (o.Engine.wall_ns / 1000))));
      ("result", Some (result_json rs.Runner.rs_result));
      ("exact", exact_json rs);
      ( "explain",
        Option.map
          (fun (ex : Runner.explain) ->
            obj
              [ ("total_ns", Some (Num (float_of_int ex.ex_total_ns)));
                ( "variance_raw",
                  Option.map (fun v -> Num v) ex.ex_variance_raw ) ])
          rs.Runner.rs_explain ) ]

(* ---- operations ---- *)

let source_of_request j =
  match opt_str j "source" with
  | None | Some "tpch" ->
      Catalog.Tpch
        { scale = opt_num j "scale" ~default:1.0;
          (* the CLI's fixed data-generation seed, so `register` defaults
             to exactly the database `gusdb query -s SCALE` uses *)
          seed = opt_int j "seed" ~default:20130630 }
  | Some "synthetic" ->
      Catalog.Skewed
        { scale = opt_num j "scale" ~default:1.0;
          seed = opt_int j "seed" ~default:20130630;
          part_skew =
            opt_num j "part_skew"
              ~default:Gus_tpch.Tpch.default_config.part_skew;
          price_skew =
            opt_num j "price_skew"
              ~default:Gus_tpch.Tpch.default_config.price_skew }
  | Some "csv" -> Catalog.Csv_dir (req_str j "dir")
  | Some "snapshot" -> Catalog.Snapshot (req_str j "path")
  | Some other -> raise (Bad_request (Printf.sprintf "unknown source %S" other))

let op_register engine j =
  let name = req_str j "name" in
  let entry = Engine.register engine ~name ~source:(source_of_request j) in
  let relations =
    List.map
      (fun rel ->
        Obj
          [ ("name", Str rel);
            ( "rows",
              Num
                (float_of_int
                   (Relation.cardinality (Database.find entry.Catalog.db rel)))
            ) ])
      (Database.names entry.Catalog.db)
  in
  Obj
    [ ("ok", Bool true);
      ("op", Str "register");
      ("dataset", Str entry.Catalog.dataset);
      ("version", Num (float_of_int entry.Catalog.version));
      ("source", Str (Catalog.source_to_string entry.Catalog.source));
      ("relations", List relations) ]

let op_prepare engine j =
  let dataset = req_str j "dataset" in
  let sql = req_str j "sql" in
  let handle, p =
    Engine.prepare engine ?name:(opt_str j "name") ~dataset sql
  in
  let report = (Prepared.handle p).Runner.pr_lint in
  (* The prepare-time static analysis (class, predicted cost, variance
     bound) rides along so clients can triage a prepared query before
     ever executing it. *)
  obj
    [ ("ok", Some (Bool true));
      ("op", Some (Str "prepare"));
      ("handle", Some (Str handle));
      ("dataset", Some (Str dataset));
      ("version", Some (Num (float_of_int (Prepared.version p))));
      ( "relations",
        Some
          (List
             (List.map
                (fun r -> Str r)
                (Gus_core.Splan.relations (Prepared.handle p).Runner.pr_plan)))
      );
      ("analyzable", Some (Bool (report.Lint.analysis <> None)));
      ("severity", Some (Str (Workload_lint.severity_label report)));
      ( "analysis",
        Option.map Workload_lint.analysis_json report.Lint.analysis );
      ( "diagnostics",
        Some (List (List.map diagnostic_json report.Lint.diagnostics)) ) ]

let exec_item j =
  let handle = req_str j "handle" in
  let rates =
    match member "rates" j with
    | None -> []
    | Some (Obj fields) ->
        List.map
          (fun (rel, v) ->
            match to_num v with
            | Some rate -> (rel, rate)
            | None ->
                raise
                  (Bad_request
                     (Printf.sprintf "rate for %S: expected number" rel)))
          fields
    | Some _ -> raise (Bad_request "field \"rates\": expected object")
  in
  ( handle,
    { Prepared.seed = opt_int j "seed" ~default:42;
      rates;
      explain = opt_bool j "explain" ~default:false;
      exact = opt_bool j "exact" ~default:false } )

let op_execute engine j =
  let handle, ov = exec_item j in
  response_json ~handle (Engine.execute engine ~handle ov)

let protect ~op f =
  try f ()
  with e -> (
    match error_of_exn e with
    | Some (code, message) -> error_json ?op code message
    | None -> raise e)

let op_batch engine j =
  let items =
    match Option.bind (member "items" j) to_list with
    | Some items -> items
    | None -> raise (Bad_request "missing list field \"items\"")
  in
  let parsed =
    List.map
      (fun item ->
        try Ok (exec_item item)
        with e -> (
          match error_of_exn e with
          | Some (code, message) ->
              Error (error_json ~op:"execute" code message)
          | None -> raise e))
      items
  in
  let jobs =
    Array.of_list (List.filter_map (function Ok job -> Some job | Error _ -> None) parsed)
  in
  let outcomes = Engine.batch engine jobs in
  let cursor = ref 0 in
  let results =
    List.map
      (function
        | Error ej -> ej
        | Ok (handle, _) -> (
            let r = outcomes.(!cursor) in
            incr cursor;
            match r with
            | Ok outcome -> response_json ~handle outcome
            | Error e -> (
                match error_of_exn e with
                | Some (code, message) ->
                    error_json ~op:"execute" code message
                | None -> raise e)))
      parsed
  in
  Obj [ ("ok", Bool true); ("op", Str "batch"); ("results", List results) ]

let op_stats_json engine =
  let catalog =
    List.map
      (fun (e : Catalog.entry) ->
        Obj
          [ ("dataset", Str e.dataset);
            ("version", Num (float_of_int e.version));
            ("source", Str (Catalog.source_to_string e.source)) ])
      (Catalog.names (Engine.catalog engine))
  in
  let prepared =
    List.map
      (fun (name, p) ->
        Obj
          [ ("handle", Str name);
            ("dataset", Str (Prepared.dataset p));
            ("version", Num (float_of_int (Prepared.version p)));
            ("sql", Str (Prepared.sql p)) ])
      (Engine.prepared_names engine)
  in
  let requests =
    Obj
      [ ("register", Num (float_of_int (Metrics.counter_value m_req_register)));
        ("prepare", Num (float_of_int (Metrics.counter_value m_req_prepare)));
        ("execute", Num (float_of_int (Metrics.counter_value m_req_execute)));
        ("batch", Num (float_of_int (Metrics.counter_value m_req_batch)));
        ("stats", Num (float_of_int (Metrics.counter_value m_req_stats)));
        ("invalid", Num (float_of_int (Metrics.counter_value m_req_invalid))) ]
  in
  let latency =
    if Metrics.histogram_count m_latency = 0 then None
    else
      Some
        (Obj
           [ ("p50", Num (Metrics.quantile m_latency 0.50));
             ("p90", Num (Metrics.quantile m_latency 0.90));
             ("p99", Num (Metrics.quantile m_latency 0.99)) ])
  in
  let journal =
    Option.map
      (fun j ->
        Obj
          [ ("length", Num (float_of_int (Gus_obs.Journal.length j)));
            ("capacity", Num (float_of_int (Gus_obs.Journal.capacity j)));
            ("dropped", Num (float_of_int (Gus_obs.Journal.dropped j))) ])
      (Engine.journal engine)
  in
  obj
    [ ("ok", Some (Bool true));
      ("op", Some (Str "stats"));
      ( "uptime_s",
        Some (Num (float_of_int (Engine.uptime_ns engine) /. 1e9)) );
      ("pool_lanes", Some (Num (float_of_int (Engine.pool_size engine))));
      ("catalog", Some (List catalog));
      ("prepared", Some (List prepared));
      ( "cache",
        Some
          (Obj
             [ ("length", Num (float_of_int (Engine.cache_length engine)));
               ("capacity", Num (float_of_int (Engine.cache_capacity engine)))
             ]) );
      ("requests", Some requests);
      ("latency_us", latency);
      ("journal", journal);
      ("metrics", Some (Json.of_string (Gus_obs.Metrics.snapshot ()))) ]

let op_stats engine j =
  match opt_str j "format" with
  | Some "prometheus" ->
      (* The exposition is text with newlines; the NDJSON framing can't
         carry it raw, so it rides as one JSON string.  `gusdb serve
         --prom-out FILE` writes the same text unframed. *)
      Obj
        [ ("ok", Bool true);
          ("op", Str "stats");
          ("format", Str "prometheus");
          ("body", Str (Gus_obs.Promexp.render ())) ]
  | Some other when other <> "json" ->
      raise (Bad_request (Printf.sprintf "unknown stats format %S" other))
  | _ -> op_stats_json engine

let dispatch engine j =
  let op = Option.bind (member "op" j) to_str in
  Metrics.incr
    (match op with
    | Some "register" -> m_req_register
    | Some "prepare" -> m_req_prepare
    | Some "execute" -> m_req_execute
    | Some "batch" -> m_req_batch
    | Some "stats" -> m_req_stats
    | Some _ | None -> m_req_invalid);
  protect ~op @@ fun () ->
  match op with
  | Some "register" -> op_register engine j
  | Some "prepare" -> op_prepare engine j
  | Some "execute" -> op_execute engine j
  | Some "batch" -> op_batch engine j
  | Some "stats" -> op_stats engine j
  | Some other -> raise (Bad_request (Printf.sprintf "unknown op %S" other))
  | None -> raise (Bad_request "missing string field \"op\"")

let handle_request engine j =
  if Metrics.enabled () then begin
    let t0 = Gus_obs.Trace.now_ns () in
    let r = dispatch engine j in
    Metrics.observe m_latency
      (float_of_int (Gus_obs.Trace.now_ns () - t0) /. 1e3);
    r
  end
  else dispatch engine j

let handle_line engine line =
  let response =
    match Json.of_string line with
    | j -> handle_request engine j
    | exception Json.Parse_error msg ->
        Metrics.incr m_req_invalid;
        error_json "bad_json" msg
  in
  Json.to_string response

let serve ?(after = fun () -> ()) engine ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        if String.trim line <> "" then begin
          output_string oc (handle_line engine line);
          output_char oc '\n';
          flush oc;
          after ()
        end;
        loop ()
  in
  loop ()
