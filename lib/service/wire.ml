(* The wire layer of the serving protocol: stable error codes, the
   request-field accessors, and the JSON renderings of responses.

   This is the transport- and session-independent bottom of the stack:
   Session (dispatch, per-connection state) and the transports
   (Protocol's stdin/stdout loop, Server's TCP accept loop) both sit on
   top of it, and the CLI's --json error rendering (Cli_common) shares
   error_of_exn so one failure maps to one code everywhere. *)

module Runner = Gus_sql.Runner
open Gus_relational
open Json

(* Bumped only on a breaking wire change; [hello] and [stats] report it
   so clients can refuse a server they do not understand. *)
let protocol_version = 1

exception Bad_request of string

exception Overloaded of string
(** Admission control refused the request outright (hard in-flight cap
    or session limit) — distinct from shedding, which degrades rates but
    still answers. *)

exception Session_closed

(* ---- the stable error-code registry (DESIGN.md section 13) ---- *)

type emitter = Protocol_error | Cli_error

let error_codes : (string * emitter * string) list =
  [ ("bad_json", Protocol_error, "request line is not valid JSON");
    ( "bad_request",
      Protocol_error,
      "malformed request: unknown op, unknown field, missing or \
       ill-typed field, invalid argument" );
    ("parse_error", Protocol_error, "SQL text failed to lex or parse");
    ("plan_error", Protocol_error, "query could not be planned");
    ( "unsupported_plan",
      Protocol_error,
      "sampling plan rejected by the SOA-soundness linter" );
    ("type_error", Protocol_error, "expression type error at execution");
    ("unknown_column", Protocol_error, "column not in any relation's schema");
    ("unknown_relation", Protocol_error, "relation not in the dataset");
    ("unknown_dataset", Protocol_error, "dataset name never registered");
    ("unknown_handle", Protocol_error, "prepared handle not in this session");
    ("snapshot_corrupt", Protocol_error, "binary snapshot failed validation");
    ( "snapshot_version",
      Protocol_error,
      "binary snapshot written by an incompatible format version" );
    ("io_error", Protocol_error, "file or socket system error");
    ( "overloaded",
      Protocol_error,
      "admission control refused the request (in-flight or session cap)" );
    ("session_closed", Protocol_error, "request on a closed session");
    ( "corrupt_journal",
      Cli_error,
      "gusdb replay: journal line failed to parse or misses fields" ) ]

let error_of_exn = function
  | Gus_sql.Parser.Error msg -> Some ("parse_error", msg)
  | Gus_sql.Lexer.Error { message; _ } ->
      Some ("parse_error", "lexical error: " ^ message)
  | Gus_sql.Planner.Error msg -> Some ("plan_error", msg)
  | Gus_analysis.Rewrite.Unsupported msg -> Some ("unsupported_plan", msg)
  | Value.Type_error msg -> Some ("type_error", msg)
  | Schema.Unknown_column c -> Some ("unknown_column", "unknown column " ^ c)
  | Expr.Bind_error msg -> Some ("unknown_column", msg)
  | Database.Unknown_relation r ->
      Some ("unknown_relation", "unknown relation " ^ r)
  | Catalog.Unknown_dataset d -> Some ("unknown_dataset", "unknown dataset " ^ d)
  | Snapshot.Format_error msg -> Some ("snapshot_corrupt", msg)
  | Snapshot.Version_mismatch { found; expected } ->
      Some
        ( "snapshot_version",
          Printf.sprintf "snapshot format version %d (this build reads %d)"
            found expected )
  | Engine.Unknown_handle h -> Some ("unknown_handle", "unknown handle " ^ h)
  | Overloaded msg -> Some ("overloaded", msg)
  | Session_closed -> Some ("session_closed", "session is closed")
  | Bad_request msg -> Some ("bad_request", msg)
  | Json.Parse_error msg -> Some ("bad_json", msg)
  | Invalid_argument msg -> Some ("bad_request", msg)
  | Sys_error msg | Failure msg -> Some ("io_error", msg)
  | _ -> None

let error_json ?op code message =
  obj
    [ ("ok", Some (Bool false));
      ("op", Option.map (fun o -> Str o) op);
      ( "error",
        Some (Obj [ ("code", Str code); ("message", Str message) ]) ) ]

let protect ~op f =
  try f ()
  with e -> (
    match error_of_exn e with
    | Some (code, message) -> error_json ?op code message
    | None -> raise e)

(* ---- request-field accessors ---- *)

let req_str j field =
  match Option.bind (member field j) to_str with
  | Some s -> s
  | None -> raise (Bad_request (Printf.sprintf "missing string field %S" field))

let opt_str j field = Option.bind (member field j) to_str

let opt_num j field ~default =
  match member field j with
  | None -> default
  | Some v -> (
      match to_num v with
      | Some n -> n
      | None -> raise (Bad_request (Printf.sprintf "field %S: expected number" field)))

let opt_int j field ~default =
  match member field j with
  | None -> default
  | Some v -> (
      match to_int v with
      | Some n -> n
      | None ->
          raise (Bad_request (Printf.sprintf "field %S: expected integer" field)))

let opt_bool j field ~default =
  match member field j with
  | None -> default
  | Some v -> (
      match to_bool v with
      | Some b -> b
      | None -> raise (Bad_request (Printf.sprintf "field %S: expected bool" field)))

(* Unknown fields are structured errors, not silent no-ops: a client that
   misspells "seed" as "sede" gets told instead of a default-seeded
   answer.  [check_fields] is total on non-objects (dispatch rejects
   those with its own message). *)
let check_fields ~op allowed j =
  match j with
  | Obj fields ->
      List.iter
        (fun (k, _) ->
          if not (List.mem k allowed) then
            raise
              (Bad_request
                 (Printf.sprintf "unknown field %S for op %S" k op)))
        fields
  | _ -> ()

(* ---- response pieces ---- *)

let interval_json (iv : Gus_stats.Interval.t) =
  Obj [ ("lo", Num iv.lo); ("hi", Num iv.hi) ]

let cell_json (c : Runner.cell) =
  Obj
    [ ("label", Str c.label);
      ("estimate", Num c.value);
      ("stddev", Num c.stddev);
      ("ci95_normal", interval_json c.ci95_normal);
      ("ci95_chebyshev", interval_json c.ci95_chebyshev) ]

let result_json (r : Runner.result) =
  obj
    [ ("cells", Some (List (List.map cell_json r.cells)));
      ( "groups",
        if r.groups = [] then None
        else
          Some
            (List
               (List.map
                  (fun (g : Runner.group_row) ->
                    Obj
                      [ ("keys", List (List.map (fun k -> Str k) g.keys));
                        ("cells", List (List.map cell_json g.group_cells)) ])
                  r.groups)) );
      ("n_sample_tuples", Some (Num (float_of_int r.n_sample_tuples))) ]

let exact_json rs =
  let pair (label, v) = Obj [ ("label", Str label); ("value", Num v) ] in
  match
    (rs.Runner.rs_exact, rs.Runner.rs_exact_groups)
  with
  | [], [] -> None
  | cells, [] -> Some (List (List.map pair cells))
  | _, groups ->
      Some
        (List
           (List.map
              (fun (keys, cells) ->
                Obj
                  [ ("keys", List (List.map (fun k -> Str k) keys));
                    ("cells", List (List.map pair cells)) ])
              groups))

let diagnostic_json = Workload_lint.diagnostic_json

let rates_json rates =
  Obj (List.map (fun (rel, r) -> (rel, Num r)) rates)

(* [shed] rides only on degraded responses, so un-shed traffic keeps the
   exact pre-admission response shape. *)
let response_json ?shed ~handle (o : Engine.outcome) =
  let rs = o.Engine.response in
  obj
    [ ("ok", Some (Bool true));
      ("op", Some (Str "execute"));
      ("handle", Some (Str handle));
      ("cached", Some (Bool o.Engine.cached));
      ("streamed", Some (Bool rs.Runner.rs_streamed));
      ("shed", Option.map (fun _ -> Bool true) shed);
      ( "shed_rates",
        Option.map (fun (rates, _) -> rates_json rates) shed );
      ("overload", Option.map (fun (_, factor) -> Num factor) shed);
      ("wall_us", Some (Num (float_of_int (o.Engine.wall_ns / 1000))));
      ("result", Some (result_json rs.Runner.rs_result));
      ("exact", exact_json rs);
      ( "explain",
        Option.map
          (fun (ex : Runner.explain) ->
            obj
              [ ("total_ns", Some (Num (float_of_int ex.ex_total_ns)));
                ( "variance_raw",
                  Option.map (fun v -> Num v) ex.ex_variance_raw ) ])
          rs.Runner.rs_explain ) ]

(* ---- the register source spec ---- *)

let source_of_request j =
  match opt_str j "source" with
  | None | Some "tpch" ->
      Catalog.Tpch
        { scale = opt_num j "scale" ~default:1.0;
          (* the CLI's fixed data-generation seed, so `register` defaults
             to exactly the database `gusdb query -s SCALE` uses *)
          seed = opt_int j "seed" ~default:20130630 }
  | Some "synthetic" ->
      Catalog.Skewed
        { scale = opt_num j "scale" ~default:1.0;
          seed = opt_int j "seed" ~default:20130630;
          part_skew =
            opt_num j "part_skew"
              ~default:Gus_tpch.Tpch.default_config.part_skew;
          price_skew =
            opt_num j "price_skew"
              ~default:Gus_tpch.Tpch.default_config.price_skew }
  | Some "csv" -> Catalog.Csv_dir (req_str j "dir")
  | Some "snapshot" -> Catalog.Snapshot (req_str j "path")
  | Some other -> raise (Bad_request (Printf.sprintf "unknown source %S" other))
