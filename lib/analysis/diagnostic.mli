(** Structured diagnostics emitted by the static plan linter ({!Lint}).

    Each diagnostic carries a stable code ([GUS001]…), a severity, a
    plan-path locator resolvable with {!Gus_core.Splan.subtree}, a short
    rendering of the offending operator, a human message and the paper
    citation for the rule it enforces.  The same codes back the
    {!Rewrite.Unsupported} messages, so every rewriter rejection maps to a
    documented code. *)

type severity = Error | Warning | Hint

type code =
  | Self_join  (** GUS001 — overlapping lineage at a join (Prop. 6) *)
  | Union_skeleton_mismatch
      (** GUS002 — union of samples of two different expressions (Prop. 7) *)
  | Wor_over_derived
      (** GUS003 — WOR over a derived or already-sampled input *)
  | Block_over_derived
      (** GUS004 — block sampling anywhere but directly over a base table *)
  | Hash_over_derived
      (** GUS005 — hash-Bernoulli over a multi-relation lineage *)
  | With_replacement
      (** GUS006 — with-replacement sampling is not a GUS method (§9) *)
  | Distinct_over_sample
      (** GUS007 — DISTINCT above a non-identity GUS (§9) *)
  | Probability_out_of_range
      (** GUS008 — a ∉ (0,1], n/N > 1, or b_T exceeding the marginal a *)
  | Zero_inclusion_probability
      (** GUS009 — a = 0: nothing is ever sampled, the 1/a scale-up is
          undefined (Theorem 1) *)
  | Small_inclusion_probability
      (** GUS010 — a below the configured threshold: variance terms scale
          with c_S/a² (Theorem 1) *)
  | Redundant_sampler
      (** GUS011 — a sampler that keeps every tuple (identity GUS, Prop. 4) *)
  | Sample_select_pushdown
      (** GUS012 — a per-tuple sampler sitting above a selection it could
          commute below (Prop. 5) *)
  | Analysis_limit
      (** GUS013 — outside the analyzer's implementation envelope (more
          than {!Gus_util.Subset.max_universe} relations: the coefficient
          arrays are 2ⁿ) *)
  | Enumeration_cost
      (** GUS014 — the static cost model predicts an expensive
          coefficient enumeration: (2ⁿ − 1 − skipped) moment passes times
          the estimated group count exceeds the configured budget *)
  | Variance_bound
      (** GUS015 — the Theorem-1 worst-case relative variance bound
          Σ_S max(0, c_S)/a² − 1 (valid for f ≥ 0) exceeds the configured
          threshold *)
  | Zero_coefficients
      (** GUS016 — some coefficient subsets are provably zero under this
          design (Prop. 6 product structure): the moments kernel will
          skip them via the emitted skip-mask *)
  | Stacked_samplers
      (** GUS017 — two plain Bernoulli samplers stacked directly: they
          compose into one with a = a₁·a₂ (Prop. 8); a fix is attached *)
  | Wor_over_deterministic_derived
      (** GUS018 — WOR over a sample-free derived input: N = |σ(R)| is
          deterministic but not statically known, so a = n/N cannot be
          derived without executing the skeleton (unlike GUS003, where N
          itself is a random variable) *)

val all_codes : code list
(** Every code, in [GUS001]… order. *)

val code_id : code -> string
(** The stable identifier, e.g. ["GUS003"]. *)

val severity_of_code : code -> severity
val title : code -> string
(** One-line summary used by [gusdb lint --codes] and the docs. *)

val citation : code -> string
(** The paper proposition/section the check enforces, e.g. ["Prop. 6"]. *)

type path = int list
(** Child indices from the plan root; resolves with
    {!Gus_core.Splan.subtree}. *)

val path_to_string : path -> string
(** ["$"] for the root, ["$.0.1"] for the second child of the first child —
    matching the top-down order of {!Gus_core.Splan.pp_tree} lines. *)

val compare_path : path -> path -> int
(** Lexicographic: pre-order position in the plan tree. *)

type t = {
  code : code;
  path : path;
  node : string;  (** short head rendering of the offending operator *)
  message : string;
  fix : Fix.t option;  (** machine-applicable rewrite, when one exists *)
}

val make :
  ?fix:Fix.t -> code:code -> path:path -> node:string -> string -> t

val severity : t -> severity
val severity_label : severity -> string
(** ["error"] / ["warning"] / ["hint"]. *)

val pp : Format.formatter -> t -> unit
(** One line: code, severity, path, node, message, citation, and a
    ["(fix: …)"] suffix when a fix is attached. *)

val to_string : t -> string

val to_json : t -> string
(** A single JSON object (stable field order, escaped strings); carries
    a ["fix"] object when a fix is attached. *)
