(** E8 — online aggregation (the ripple-join/DBO capability of the
    paper's Section 2, rebuilt on the GUS algebra): as random-order scans
    progress, the estimate refines and the 95% interval shrinks, reaching
    the exact answer (zero width) at 100%.  Reproduces the canonical
    online-aggregation convergence curve. *)

val run : ?scale:float -> unit -> unit
