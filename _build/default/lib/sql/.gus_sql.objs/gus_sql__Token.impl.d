lib/sql/token.ml: List Printf String
