open Gus_relational
module Sampler = Gus_sampling.Sampler

type t =
  | Scan of string
  | Select of Expr.t * t
  | Project of (string * Expr.t) list * t
  | Equi_join of { left : t; right : t; left_key : Expr.t; right_key : Expr.t }
  | Theta_join of Expr.t * t * t
  | Cross of t * t
  | Distinct of t
  | Sample of Sampler.t * t
  | Union_samples of t * t

exception Union_lineage_mismatch of { left : string list; right : string list }

let scan name = Scan name
let select pred q = Select (pred, q)

let equi_join left right ~on:(lk, rk) =
  Equi_join { left; right; left_key = Expr.col lk; right_key = Expr.col rk }

let sample s q = Sample (s, q)

let rec lineage_schema = function
  | Scan name -> Lineage.schema_of name
  | Select (_, q) | Project (_, q) | Sample (_, q) | Distinct q ->
      lineage_schema q
  | Equi_join { left; right; _ } ->
      Lineage.schema_concat (lineage_schema left) (lineage_schema right)
  | Theta_join (_, l, r) | Cross (l, r) ->
      Lineage.schema_concat (lineage_schema l) (lineage_schema r)
  | Union_samples (l, r) ->
      let sl = lineage_schema l and sr = lineage_schema r in
      if not (Lineage.schema_equal sl sr) then
        raise
          (Union_lineage_mismatch
             { left = Array.to_list sl; right = Array.to_list sr });
      sl

let rec strip_samples = function
  | Scan name -> Scan name
  | Select (p, q) -> Select (p, strip_samples q)
  | Project (fields, q) -> Project (fields, strip_samples q)
  | Equi_join { left; right; left_key; right_key } ->
      Equi_join
        { left = strip_samples left;
          right = strip_samples right;
          left_key;
          right_key }
  | Theta_join (p, l, r) -> Theta_join (p, strip_samples l, strip_samples r)
  | Cross (l, r) -> Cross (strip_samples l, strip_samples r)
  | Distinct q -> Distinct (strip_samples q)
  | Sample (_, q) -> strip_samples q
  | Union_samples (l, _) -> strip_samples l

let rec equal p q =
  match (p, q) with
  | Scan a, Scan b -> String.equal a b
  | Select (e1, q1), Select (e2, q2) -> e1 = e2 && equal q1 q2
  | Project (f1, q1), Project (f2, q2) -> f1 = f2 && equal q1 q2
  | Equi_join j1, Equi_join j2 ->
      j1.left_key = j2.left_key && j1.right_key = j2.right_key
      && equal j1.left j2.left && equal j1.right j2.right
  | Theta_join (e1, l1, r1), Theta_join (e2, l2, r2) ->
      e1 = e2 && equal l1 l2 && equal r1 r2
  | Cross (l1, r1), Cross (l2, r2) -> equal l1 l2 && equal r1 r2
  | Sample (s1, q1), Sample (s2, q2) -> s1 = s2 && equal q1 q2
  | Distinct q1, Distinct q2 -> equal q1 q2
  | Union_samples (l1, r1), Union_samples (l2, r2) -> equal l1 l2 && equal r1 r2
  | ( ( Scan _ | Select _ | Project _ | Equi_join _ | Theta_join _ | Cross _
      | Distinct _ | Sample _ | Union_samples _ ),
      _ ) ->
      false

let node_label = function
  | Scan name -> name
  | Select (e, _) -> Format.asprintf "select %a" Expr.pp e
  | Project (fields, _) ->
      Printf.sprintf "project %s" (String.concat "," (List.map fst fields))
  | Equi_join { left_key; right_key; _ } ->
      Format.asprintf "join %a = %a" Expr.pp left_key Expr.pp right_key
  | Theta_join (e, _, _) -> Format.asprintf "theta-join %a" Expr.pp e
  | Cross _ -> "cross"
  | Distinct _ -> "distinct"
  | Sample (s, _) -> Sampler.to_string s
  | Union_samples _ -> "union-samples"

let children = function
  | Scan _ -> []
  | Select (_, q) | Project (_, q) | Distinct q | Sample (_, q) -> [ q ]
  | Equi_join { left; right; _ } -> [ left; right ]
  | Theta_join (_, l, r) | Cross (l, r) | Union_samples (l, r) -> [ l; r ]

let rec exec_node ?pool db rng = function
  | Scan name -> Database.find db name
  | Select (pred, q) -> Ops.select ?pool pred (exec ?pool db rng q)
  | Project (fields, q) -> Ops.project ?pool fields (exec ?pool db rng q)
  | Equi_join { left; right; left_key; right_key } ->
      Ops.equi_join ~left_key ~right_key
        (exec ?pool db rng left)
        (exec ?pool db rng right)
  | Theta_join (pred, l, r) ->
      Ops.theta_join pred (exec ?pool db rng l) (exec ?pool db rng r)
  | Cross (l, r) -> Ops.cross (exec ?pool db rng l) (exec ?pool db rng r)
  | Distinct q -> Ops.distinct (exec ?pool db rng q)
  | Sample (s, q) -> Sampler.apply ?pool s rng (exec ?pool db rng q)
  | Union_samples (l, r) ->
      Ops.union_lineage (exec ?pool db rng l) (exec ?pool db rng r)

and exec ?pool db rng plan =
  (* One span per plan node when tracing; the traced branch evaluates the
     identical expression, so the RNG sees the same draw order and a
     traced run is bit-identical to an untraced one. *)
  if Gus_obs.Trace.enabled () then begin
    let label = node_label plan in
    Gus_obs.Trace.enter label;
    match exec_node ?pool db rng plan with
    | rel ->
        Gus_obs.Trace.leave label
          ~args:
            [ ("rows_out", string_of_int (Relation.cardinality rel)) ];
        rel
    | exception e ->
        Gus_obs.Trace.leave label;
        raise e
  end
  else exec_node ?pool db rng plan

(* Per-node execution profile for EXPLAIN ANALYZE.  Unlike trace spans
   this is an explicit mode, not flag-guarded: callers ask for profiles
   and pay for the clock reads.  The recursion mirrors [exec_node]'s
   {e runtime} evaluation order — OCaml applications evaluate arguments
   right to left, so binary operators here run the right child before the
   left — which keeps the RNG draw sequence, and therefore the sample,
   identical to a plain [exec] with the same seed (test-enforced). *)

type node_profile = {
  np_path : int list;
  np_label : string;
  np_wall_ns : int;  (** inclusive of children *)
  np_rows_in : int;
  np_rows_out : int;
}

let exec_profiled ?pool db rng plan =
  let profiles = ref [] in
  let card = Relation.cardinality in
  let rec go path plan =
    let t0 = Gus_obs.Trace.now_ns () in
    let rel, rows_in =
      match plan with
      | Scan name ->
          let r = Database.find db name in
          (r, card r)
      | Select (pred, q) ->
          let c = go (0 :: path) q in
          (Ops.select ?pool pred c, card c)
      | Project (fields, q) ->
          let c = go (0 :: path) q in
          (Ops.project ?pool fields c, card c)
      | Equi_join { left; right; left_key; right_key } ->
          let r = go (1 :: path) right in
          let l = go (0 :: path) left in
          (Ops.equi_join ~left_key ~right_key l r, card l + card r)
      | Theta_join (pred, lq, rq) ->
          let r = go (1 :: path) rq in
          let l = go (0 :: path) lq in
          (Ops.theta_join pred l r, card l + card r)
      | Cross (lq, rq) ->
          let r = go (1 :: path) rq in
          let l = go (0 :: path) lq in
          (Ops.cross l r, card l + card r)
      | Distinct q ->
          let c = go (0 :: path) q in
          (Ops.distinct c, card c)
      | Sample (s, q) ->
          let c = go (0 :: path) q in
          (Sampler.apply ?pool s rng c, card c)
      | Union_samples (lq, rq) ->
          let r = go (1 :: path) rq in
          let l = go (0 :: path) lq in
          (Ops.union_lineage l r, card l + card r)
    in
    profiles :=
      { np_path = List.rev path;
        np_label = node_label plan;
        np_wall_ns = Gus_obs.Trace.now_ns () - t0;
        np_rows_in = rows_in;
        np_rows_out = card rel }
      :: !profiles;
    rel
  in
  let rel = go [] plan in
  (rel, List.rev !profiles)

let exec_exact db q =
  (* No sampling remains, so the RNG is never consulted. *)
  exec db (Gus_util.Rng.create 0) (strip_samples q)

(* ------------------------------------------------------------------ *)
(* Streaming execution.

   A plan splits into a blocking [core] (joins, Distinct, the
   cardinality-dependent samplers) that must materialize, and a
   {e streamable suffix} of per-tuple stages above it — Select, Project,
   Bernoulli, Hash_bernoulli — through which the core's tuples can be
   pushed one at a time without ever materializing the result relation.

   The split is RNG-faithful: it keeps at most ONE RNG-consuming sampler
   in the suffix.  [exec] runs each operator as a full-relation pass
   (bottom-up), so a single suffix Bernoulli draws once per tuple
   {e reaching it}, in input order; the streaming interleaving performs
   exactly the same draws in the same order (the other suffix stages
   consume no randomness), hence [fold_stream] visits precisely the
   tuples [exec] would output.  A second RNG-consuming sampler would
   interleave two draw sequences that [exec] performs pass-by-pass, so
   the split stops there and leaves it to the core. *)

type stream_stage =
  | St_select of Expr.t
  | St_project of (string * Expr.t) list
  | St_bernoulli of float
  | St_hash of { seed : int; p : float }

(* Returns the blocking core and the suffix stages bottom-up (head is
   the stage nearest the core). *)
let split_stream plan =
  let rec go acc nrng = function
    | Select (e, q) -> go (St_select e :: acc) nrng q
    | Project (fs, q) -> go (St_project fs :: acc) nrng q
    | Sample (Sampler.Bernoulli p, q) when nrng = 0 ->
        Sampler.validate (Sampler.Bernoulli p);
        go (St_bernoulli p :: acc) 1 q
    | Sample (Sampler.Hash_bernoulli { seed; p }, q)
      when Array.length (lineage_schema q) = 1 ->
        Sampler.validate (Sampler.Hash_bernoulli { seed; p });
        go (St_hash { seed; p } :: acc) nrng q
    | core -> (core, acc)
  in
  go [] 0 plan

(* Compile the bottom-up stages against the core's output schema into
   per-lane push chains.  [make ()] returns [(push_into sink, out_schema)]
   where [push_into sink] is a [Tuple.t -> unit] feeding survivors to
   [sink]; each call builds fresh closures so every pool lane can carry
   its own chain. *)
let compile_stages rng stages core_schema =
  let out_schema =
    List.fold_left
      (fun sc -> function
        | St_project fs -> Ops.project_schema fs sc
        | St_select _ | St_bernoulli _ | St_hash _ -> sc)
      core_schema stages
  in
  let make sink =
    (* Fold bottom-up, composing outward: the innermost closure is the
       sink, each stage wraps what is above it. *)
    let rec build sc = function
      | [] -> sink
      | St_select e :: rest ->
          let keep = Expr.bind_predicate sc e in
          let next = build sc rest in
          fun tup -> if keep tup then next tup
      | St_project fields :: rest ->
          let evals = List.map (fun (_, e) -> Expr.bind sc e) fields in
          let next = build (Ops.project_schema fields sc) rest in
          fun tup ->
            let values = Array.of_list (List.map (fun f -> f tup) evals) in
            next (Tuple.with_values tup values)
      | St_bernoulli p :: rest ->
          let next = build sc rest in
          fun tup -> if Gus_util.Rng.bernoulli rng p then next tup
      | St_hash { seed; p } :: rest ->
          let next = build sc rest in
          fun tup ->
            if Gus_util.Hashing.prf_float ~seed tup.Tuple.lineage.(0) < p then
              next tup
    in
    build core_schema stages
  in
  (make, out_schema)

(* Columnar streaming prefix.  When the core materialized as columns,
   the leading suffix stages that are expressible as pure-ish per-index
   filters — a Vexpr-compilable Select, the single Bernoulli, a
   Hash_bernoulli — run directly over the columns; a [Tuple.t] is built
   only for rows that survive them.  Draw order is untouched: filters
   compose in stage order with short-circuit (a tuple the row path drops
   at a Select never reaches the Bernoulli, so the index path must not
   draw for it either), and the Bernoulli filter consumes the same [rng]
   the compiled stage would.  Returns the filters (stage order) and the
   remaining stages for {!compile_stages}; the remaining stages see the
   unchanged core schema because filter stages never reshape tuples. *)
let split_index_filters rng (c : Relation.cols) core_schema stages =
  let ccols = c.Relation.ccols in
  let rec go acc = function
    | St_select e :: rest as all -> (
        match Vexpr.predicate core_schema ccols e with
        | Some keep -> go (keep :: acc) rest
        | None -> (List.rev acc, all))
    | St_bernoulli p :: rest ->
        go ((fun _ -> Gus_util.Rng.bernoulli rng p) :: acc) rest
    | St_hash { seed; p } :: rest ->
        go
          ((fun i ->
             Gus_util.Hashing.prf_float ~seed (Relation.lineage_id c ~slot:0 i) < p)
          :: acc)
          rest
    | (St_project _ :: _ | []) as all -> (List.rev acc, all)
  in
  go [] stages

let rec passes fs i =
  match fs with [] -> true | f :: tl -> f i && passes tl i

let m_stream_rows = Gus_obs.Metrics.counter "splan.stream.rows"
let m_stream_folds = Gus_obs.Metrics.counter "splan.stream.folds"

let account_stream rel =
  (* O(1): the streamed-tuple count is the core's cardinality, not a
     per-push increment — nothing rides the per-tuple path. *)
  if Gus_obs.Metrics.enabled () then begin
    Gus_obs.Metrics.incr m_stream_folds;
    Gus_obs.Metrics.add m_stream_rows (Relation.cardinality rel)
  end

let fold_stream db rng plan ~init ~f =
  let core, stages = split_stream plan in
  let rel = exec db rng core in
  account_stream rel;
  match Relation.store rel with
  | Relation.Cols c ->
      let filters, rest = split_index_filters rng c rel.Relation.schema stages in
      let make, out_schema = compile_stages rng rest rel.Relation.schema in
      let acc = ref (init out_schema) in
      let push = make (fun tup -> acc := f !acc tup) in
      Gus_obs.Trace.span "splan.stream" (fun () ->
          for i = 0 to c.Relation.cn - 1 do
            if passes filters i then push (Relation.tuple rel i)
          done);
      !acc
  | Relation.Rows _ ->
      let make, out_schema = compile_stages rng stages rel.Relation.schema in
      let acc = ref (init out_schema) in
      let push = make (fun tup -> acc := f !acc tup) in
      Gus_obs.Trace.span "splan.stream" (fun () -> Relation.iter push rel);
      !acc

let stages_use_rng stages =
  List.exists (function St_bernoulli _ -> true | _ -> false) stages

let fold_stream_par ?pool db rng plan ~init ~f ~merge =
  let core, stages = split_stream plan in
  let rel = exec ?pool db rng core in
  account_stream rel;
  let make, out_schema = compile_stages rng stages rel.Relation.schema in
  let n = Relation.cardinality rel in
  let module Pool = Gus_util.Pool in
  match pool with
  | Some p
    when Pool.is_live p && Pool.size p > 1
         && n >= Pool.default_par_threshold
         && not (stages_use_rng stages) ->
      (* RNG-free suffix: each lane streams one contiguous chunk of the
         core into its own accumulator; partials merge in chunk order.
         On a columnar core the RNG-free index filters (Select, Hash)
         are shared across lanes — they are pure — and tuples are
         materialized only for surviving rows. *)
      let filters, rest =
        match Relation.store rel with
        | Relation.Cols c -> split_index_filters rng c rel.Relation.schema stages
        | Relation.Rows _ -> ([], stages)
      in
      let make = if rest == stages then make else fst (compile_stages rng rest rel.Relation.schema) in
      let chs = Pool.chunks p ~lo:0 ~hi:n in
      let accs = Array.map (fun _ -> init out_schema) chs in
      Pool.run_chunks p ~lo:0 ~hi:(Array.length chs) (fun klo khi ->
          for k = klo to khi - 1 do
            let clo, chi = chs.(k) in
            let lane_acc = ref accs.(k) in
            let push = make (fun tup -> lane_acc := f !lane_acc tup) in
            for i = clo to chi - 1 do
              if passes filters i then push (Relation.tuple rel i)
            done;
            accs.(k) <- !lane_acc
          done);
      Array.fold_left
        (fun acc part -> merge acc part)
        accs.(0)
        (Array.sub accs 1 (Array.length accs - 1))
  | _ ->
      let acc = ref (init out_schema) in
      let push = make (fun tup -> acc := f !acc tup) in
      Relation.iter push rel;
      !acc

let rec pp ppf = function
  | Scan name -> Format.pp_print_string ppf name
  | Select (e, q) -> Format.fprintf ppf "select[%a](%a)" Expr.pp e pp q
  | Project (fields, q) ->
      Format.fprintf ppf "project[%s](%a)"
        (String.concat "," (List.map fst fields))
        pp q
  | Equi_join { left; right; left_key; right_key } ->
      Format.fprintf ppf "join[%a=%a](%a, %a)" Expr.pp left_key Expr.pp right_key
        pp left pp right
  | Theta_join (e, l, r) ->
      Format.fprintf ppf "theta_join[%a](%a, %a)" Expr.pp e pp l pp r
  | Cross (l, r) -> Format.fprintf ppf "cross(%a, %a)" pp l pp r
  | Distinct q -> Format.fprintf ppf "distinct(%a)" pp q
  | Sample (s, q) -> Format.fprintf ppf "%s(%a)" (Sampler.to_string s) pp q
  | Union_samples (l, r) -> Format.fprintf ppf "union(%a, %a)" pp l pp r

let pp_tree ppf plan =
  Gus_obs.Planfmt.pp ~label:node_label ~children ppf plan

let relations plan =
  Array.to_list (lineage_schema plan)

let rec subtree plan = function
  | [] -> Some plan
  | i :: rest -> (
      match List.nth_opt (children plan) i with
      | Some child -> subtree child rest
      | None -> None)
