type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | SELECT | FROM | WHERE | AS | AND | OR | NOT
  | SUM | COUNT | AVG | QUANTILE
  | TABLESAMPLE | PERCENT | ROWS | BERNOULLI | SYSTEM | REPEATABLE
  | CREATE | VIEW | TRUE | FALSE | NULL | GROUP | BY
  | LPAREN | RPAREN | COMMA | SEMI | STAR
  | PLUS | MINUS | SLASH
  | EQ | NEQ | LT | LE | GT | GE
  | EOF

let keywords =
  [ ("select", SELECT); ("from", FROM); ("where", WHERE); ("as", AS);
    ("and", AND); ("or", OR); ("not", NOT); ("sum", SUM); ("count", COUNT);
    ("avg", AVG); ("quantile", QUANTILE); ("tablesample", TABLESAMPLE);
    ("percent", PERCENT); ("rows", ROWS); ("bernoulli", BERNOULLI);
    ("system", SYSTEM); ("repeatable", REPEATABLE); ("create", CREATE);
    ("view", VIEW); ("true", TRUE); ("false", FALSE); ("null", NULL);
    ("group", GROUP); ("by", BY) ]

let keyword_of_string s = List.assoc_opt (String.lowercase_ascii s) keywords

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | SELECT -> "SELECT"
  | FROM -> "FROM"
  | WHERE -> "WHERE"
  | AS -> "AS"
  | AND -> "AND"
  | OR -> "OR"
  | NOT -> "NOT"
  | SUM -> "SUM"
  | COUNT -> "COUNT"
  | AVG -> "AVG"
  | QUANTILE -> "QUANTILE"
  | TABLESAMPLE -> "TABLESAMPLE"
  | PERCENT -> "PERCENT"
  | ROWS -> "ROWS"
  | BERNOULLI -> "BERNOULLI"
  | SYSTEM -> "SYSTEM"
  | REPEATABLE -> "REPEATABLE"
  | CREATE -> "CREATE"
  | VIEW -> "VIEW"
  | TRUE -> "TRUE"
  | FALSE -> "FALSE"
  | NULL -> "NULL"
  | GROUP -> "GROUP"
  | BY -> "BY"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | SEMI -> ";"
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<end of input>"
