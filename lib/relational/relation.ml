module Vec = Gus_util.Vec

(* Two physical layouts behind one logical relation:

   - [Cols]: typed columnar storage ({!Column}), one unboxed vector per
     schema column plus the lineage.  Base relations (and the outputs of
     the vectorized kernels in {!Ops}/{!Gus_sampling.Sampler}) live here;
     scans run over raw Bigarrays with no per-row boxing.
   - [Rows]: the original boxed [Tuple.t] vector.  Derived relations
     built by the row-at-a-time fallback operators live here.

   The row API ([tuple]/[iter]/[fold]) works over both: on a columnar
   store it materializes each tuple on demand, with exactly the values
   and lineage the row engine would have stored — the two layouts are
   observationally identical, which is what the kernel parity tests
   assert.

   Base-relation lineage is the row id, so a columnar base stores no
   lineage at all ([Identity]); columnar outputs of selections, samples
   and joins carry explicit int lineage columns. *)

type lineage_store =
  | Identity  (** lineage of row [i] is [[| i |]] (base relations) *)
  | Explicit of Column.t array
      (** one int column per lineage-schema slot *)

type cols = {
  mutable cn : int;
  ccols : Column.t array;
  mutable clineage : lineage_store;
}

type store = Rows of Tuple.t Vec.t | Cols of cols

type t = {
  name : string;
  schema : Schema.t;
  lineage_schema : Lineage.schema;
  store : store;
}

let store t = t.store

let cols_of_schema ?capacity schema =
  Array.of_list
    (List.map (fun c -> Column.create ?capacity c.Schema.ty) (Schema.columns schema))

let create_base ?(storage = `Cols) ?capacity ~name schema =
  let store =
    match storage with
    | `Rows -> Rows (Vec.create ())
    | `Cols ->
        Cols { cn = 0; ccols = cols_of_schema ?capacity schema; clineage = Identity }
  in
  { name; schema; lineage_schema = Lineage.schema_of name; store }

let derived ?(name = "<derived>") schema lineage_schema =
  { name; schema; lineage_schema; store = Rows (Vec.create ()) }

let derived_cols ?(name = "<derived>") schema lineage_schema c =
  let width =
    match c.clineage with
    | Identity -> Array.length lineage_schema
    | Explicit ls -> Array.length ls
  in
  if width <> Array.length lineage_schema then
    invalid_arg "Relation.derived_cols: lineage width mismatch";
  Array.iter
    (fun col ->
      if Column.length col <> c.cn then
        invalid_arg "Relation.derived_cols: ragged columns")
    c.ccols;
  { name; schema; lineage_schema; store = Cols c }

let cardinality t =
  match t.store with Rows v -> Vec.length v | Cols c -> c.cn

let lineage_width c =
  match c.clineage with Identity -> 1 | Explicit ls -> Array.length ls

let lineage_id c ~slot i =
  match c.clineage with
  | Identity -> i
  | Explicit ls -> Column.get_int ls.(slot) i

let materialize_lineage c i =
  match c.clineage with
  | Identity -> [| i |]
  | Explicit ls -> Array.map (fun col -> Column.get_int col i) ls

let materialize c i =
  let values = Array.map (fun col -> Column.get col i) c.ccols in
  Tuple.make values (materialize_lineage c i)

let tuple t i =
  match t.store with
  | Rows v -> Vec.get v i
  | Cols c ->
      if i < 0 || i >= c.cn then
        invalid_arg (Printf.sprintf "Relation: index %d out of bounds [0,%d)" i c.cn);
      materialize c i

let iter f t =
  match t.store with
  | Rows v -> Vec.iter f v
  | Cols c ->
      for i = 0 to c.cn - 1 do
        f (materialize c i)
      done

let fold f acc t =
  match t.store with
  | Rows v -> Vec.fold f acc v
  | Cols c ->
      let acc = ref acc in
      for i = 0 to c.cn - 1 do
        acc := f !acc (materialize c i)
      done;
      !acc

let append_row t values =
  if not (Lineage.schema_equal t.lineage_schema (Lineage.schema_of t.name)) then
    invalid_arg "Relation.append_row: not a base relation";
  Schema.check_tuple t.schema values;
  match t.store with
  | Rows v -> Vec.push v (Tuple.make values [| Vec.length v |])
  | Cols c ->
      (match c.clineage with
      | Identity -> ()
      | Explicit ls -> Array.iter (fun col -> Column.push_int col c.cn) ls);
      Array.iteri (fun j v -> Column.push c.ccols.(j) v) values;
      c.cn <- c.cn + 1

(* A base columnar relation stores no lineage; appending an arbitrary
   tuple (whose lineage need not be its row id) forces the explicit
   representation first. *)
let force_explicit c =
  match c.clineage with
  | Explicit _ -> ()
  | Identity ->
      let col = Column.create ~capacity:(max 16 c.cn) Value.TInt in
      for i = 0 to c.cn - 1 do
        Column.push_int col i
      done;
      c.clineage <- Explicit [| col |]

let append_tuple t tup =
  match t.store with
  | Rows v -> Vec.push v tup
  | Cols c ->
      let lineage = tup.Tuple.lineage in
      (match c.clineage with
      | Identity when Array.length lineage = 1 && lineage.(0) = c.cn -> ()
      | _ ->
          force_explicit c;
          (match c.clineage with
          | Explicit ls ->
              if Array.length ls <> Array.length lineage then
                invalid_arg "Relation.append_tuple: lineage width mismatch";
              Array.iteri (fun s col -> Column.push_int col lineage.(s)) ls
          | Identity -> assert false));
      Array.iteri (fun j v -> Column.push c.ccols.(j) v) tup.Tuple.values;
      c.cn <- c.cn + 1

let gather_store c idx count =
  let ccols = Array.map (fun col -> Column.gather col idx count) c.ccols in
  let clineage =
    match c.clineage with
    | Identity -> Explicit [| Column.of_int_array idx count |]
    | Explicit ls -> Explicit (Array.map (fun col -> Column.gather col idx count) ls)
  in
  { cn = count; ccols; clineage }

let gather_rows ?name t c idx count =
  let name = Option.value name ~default:t.name in
  { name;
    schema = t.schema;
    lineage_schema = t.lineage_schema;
    store = Cols (gather_store c idx count) }

let to_rows t =
  match t.store with
  | Rows _ -> t
  | Cols _ ->
      let v = Vec.create ~capacity:(max 16 (cardinality t)) () in
      iter (fun tup -> Vec.push v tup) t;
      { t with store = Rows v }

let column_values t name =
  let j = Schema.index_of t.schema name in
  match t.store with
  | Rows v ->
      (* Index the vector directly — no [Vec.to_array] copy per call. *)
      Array.init (Vec.length v) (fun i -> Tuple.value (Vec.get v i) j)
  | Cols c -> Array.init c.cn (fun i -> Column.get c.ccols.(j) i)

let pp ppf t =
  Format.fprintf ppf "%s%a (%d rows)" t.name Schema.pp t.schema (cardinality t);
  let limit = min 5 (cardinality t) in
  for i = 0 to limit - 1 do
    Format.fprintf ppf "@\n  %a" Tuple.pp (tuple t i)
  done;
  if cardinality t > limit then Format.fprintf ppf "@\n  ..."

let to_csv_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (String.concat "," (List.map (fun c -> c.Schema.name) (Schema.columns t.schema)));
  Buffer.add_char buf '\n';
  iter
    (fun tup ->
      let cells = Array.map Value.to_display tup.Tuple.values in
      Buffer.add_string buf (String.concat "," (Array.to_list cells));
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let sum_column t name =
  let j = Schema.index_of t.schema name in
  match t.store with
  | Cols c when Column.ty c.ccols.(j) = Value.TFloat ->
      (* The vectorized base-scan aggregate: a straight pass over the
         unboxed float array.  NULL slots hold 0.0, so the null branch
         is only needed to mirror the row path's skip — which also
         contributes 0 — making the two paths bit-identical even without
         it; keep the single [has_nulls] test and add blindly. *)
      let ba = Column.float_data c.ccols.(j) in
      let acc = ref 0.0 in
      for i = 0 to c.cn - 1 do
        acc := !acc +. Bigarray.Array1.unsafe_get ba i
      done;
      !acc
  | Cols c when Column.ty c.ccols.(j) = Value.TInt ->
      let ba = Column.int_data c.ccols.(j) in
      let acc = ref 0.0 in
      for i = 0 to c.cn - 1 do
        acc := !acc +. float_of_int (Bigarray.Array1.unsafe_get ba i)
      done;
      !acc
  | _ ->
      fold
        (fun acc tup ->
          match Tuple.value tup j with
          | Value.Null -> acc
          | v -> acc +. Value.to_float v)
        0.0 t
