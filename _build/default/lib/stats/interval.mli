(** Confidence intervals produced by the SBox (Section 6.4 of the paper). *)

type method_ =
  | Normal     (** optimistic: estimate ± Φ⁻¹((1+cov)/2)·σ̂ *)
  | Chebyshev  (** pessimistic: estimate ± σ̂/√(1−cov), valid for any
                   distribution *)

type t = {
  lo : float;
  hi : float;
  estimate : float;
  stddev : float;
  coverage : float;
  method_ : method_;
}

val make : method_:method_ -> coverage:float -> estimate:float -> stddev:float -> t
(** Raises [Invalid_argument] on negative stddev or coverage ∉ (0,1). *)

val contains : t -> float -> bool
val width : t -> float

val quantile_bound : estimate:float -> stddev:float -> float -> float
(** [quantile_bound ~estimate ~stddev q] is the normal-approximation value v
    with P(truth < v) ≈ q — the paper's [QUANTILE(SUM(…), q)].  [q] in
    (0,1). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
