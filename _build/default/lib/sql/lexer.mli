(** Hand-written lexer for the SQL dialect. *)

exception Error of { pos : int; message : string }

val tokenize : string -> Token.t list
(** Whole-input tokenization, [EOF]-terminated.  Identifiers are
    lower-cased (the dialect is case-insensitive); string literals use
    single quotes with [''] as the escape. *)
