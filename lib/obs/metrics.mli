(** Process-global named metrics: counters, gauges, histograms.

    Instruments are created once (typically at module initialization,
    while the program is still single-threaded) and updated from any
    domain: all mutation goes through [Atomic], so pool lanes bump the
    same counter without locks or per-domain aggregation.

    {b Disabled path.}  Like {!Trace}, collection is off by default.
    Update functions check one mutable flag and return; call sites that
    would need to {i compute} a value first should guard on {!enabled}
    themselves.  Instrument creation is always allowed (and cheap) so
    modules can declare their instruments unconditionally at init.

    {b Stable names.}  Metric names are part of the tool's surface (they
    appear in [--metrics-out] dumps and are matched by tests); DESIGN.md
    §7 lists them.  Use [subsystem.thing] dotted lower-case. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

type counter
(** Monotonically increasing integer. *)

val counter : string -> counter
(** Create (or return the existing) counter with this name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge
(** A float that goes up and down; last write wins. *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram
(** Cumulative histogram with upper-inclusive buckets: an observation
    [v] lands in the first bucket whose bound [le] satisfies [v <= le],
    or in the implicit [+inf] overflow bucket.  Also tracks count and
    sum, so dumps expose the mean. *)

val histogram : ?buckets:float array -> string -> histogram
(** Default buckets are powers of two from 1 to 2^20 — suited to the
    integer-ish quantities we observe (probe lengths, row counts,
    nanosecond timings at microsecond-to-millisecond scale divide these
    by 1e3 first).  Passing [buckets] requires a strictly increasing
    array.  Re-creating an existing histogram returns the original and
    ignores the new bounds. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** [(le, cumulative_count)] per bound, ending with [(infinity, total)].
    Exposed for tests of the bucket-boundary semantics. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1], clamped)
    by linear interpolation inside the first cumulative bucket whose
    count reaches [q * count] — the same rule as Prometheus'
    [histogram_quantile].  The lower edge of the first bucket is taken
    as [0] when its bound is positive.  A rank landing in the [+inf]
    overflow bucket returns the largest finite bound (the histogram
    cannot say more); an empty histogram returns [nan]. *)

val all_counters : unit -> (string * counter) list
val all_gauges : unit -> (string * gauge) list

val all_histograms : unit -> (string * histogram) list
(** Registry listings sorted by name, for exporters ({!Promexp}). *)

val snapshot : unit -> string
(** JSON object with all instruments sorted by name:
    [{"counters":{...},"gauges":{...},"histograms":{name:{"count":n,
    "sum":s,"buckets":[{"le":b,"count":c},...]}}}].  Values reflect a
    quiescent point; concurrent updates may tear between instruments
    but never within a counter. *)

val reset : unit -> unit
(** Zero every instrument (names and bucket layouts survive). *)
