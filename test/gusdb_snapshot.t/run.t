Binary dataset snapshots end to end: write one, inspect it, restore it
through the one-shot CLI and the serving engine (bit-identical
estimates), and reject damaged files with stable error codes and exit
statuses.  The on-disk format is versioned and deterministic, so sizes
and messages below are exact.

  $ gusdb snapshot -s 0.05 -o data.snap
  wrote data.snap: 5 relations, 3913 rows, 275936 bytes
    part            100 rows  4 columns
    supplier          5 rows  3 columns
    customer         75 rows  4 columns
    orders          750 rows  5 columns
    lineitem       2983 rows  10 columns

  $ gusdb snapshot --info data.snap
  data.snap: format v1, 5 relations, 3913 rows
    part            100 rows  4 columns
    supplier          5 rows  3 columns
    customer         75 rows  4 columns
    orders          750 rows  5 columns
    lineitem       2983 rows  10 columns

A query over the restored snapshot is bit-identical to the same query
over the in-memory generated database (same scale, same seed):

  $ gusdb query -s 0.05 --seed 7 --json "SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)" | grep -o '"estimate":[^,]*'
  "estimate":19508097.968093183
  $ gusdb query -d data.snap --seed 7 --json "SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)" | grep -o '"estimate":[^,]*'
  "estimate":19508097.968093183

The serving engine registers snapshots via the `snapshot` source and
serves the same estimate:

  $ cat > requests <<'EOF'
  > {"op":"register","name":"t","source":"snapshot","path":"data.snap"}
  > {"op":"prepare","dataset":"t","name":"q","sql":"SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)"}
  > {"op":"execute","handle":"q","seed":7}
  > {"op":"register","name":"bad","source":"snapshot","path":"bad.snap"}
  > EOF
  $ cp data.snap bad.snap
  $ printf 'XXXX' | dd of=bad.snap bs=1 seek=0 count=4 conv=notrunc 2>/dev/null
  $ gusdb serve < requests | sed 's/"wall_us":[0-9]*/"wall_us":_/g' > responses
  $ sed -n 1p responses
  {"ok":true,"op":"register","dataset":"t","version":1,"source":"snapshot(data.snap)","relations":[{"name":"part","rows":100},{"name":"supplier","rows":5},{"name":"customer","rows":75},{"name":"orders","rows":750},{"name":"lineitem","rows":2983}]}
  $ sed -n 3p responses | grep -o '"estimate":[^,]*'
  "estimate":19508097.968093183

A corrupt snapshot is an in-band protocol error, not a crash:

  $ sed -n 4p responses
  {"ok":false,"op":"register","error":{"code":"snapshot_corrupt","message":"bad magic"}}

The CLI rejects the same damaged files with one-line diagnostics and
exit 1.  Corrupt header:

  $ gusdb snapshot --info bad.snap
  gusdb: bad magic
  [1]

A snapshot from a future format version (version word flipped to 9):

  $ cp data.snap v9.snap
  $ printf '\011' | dd of=v9.snap bs=1 seek=16 count=1 conv=notrunc 2>/dev/null
  $ gusdb snapshot --info v9.snap
  gusdb: snapshot format version 9 (this build reads 1)
  [1]

A truncated file:

  $ head -c 100000 data.snap > trunc.snap
  $ gusdb snapshot --info trunc.snap
  gusdb: truncated file
  [1]

Restore-side failures surface through `query --data` the same way:

  $ gusdb query -d v9.snap "SELECT SUM(l_extendedprice) AS s FROM lineitem"
  gusdb: snapshot format version 9 (this build reads 1)
  [1]
