lib/experiments/exp_coverage.mli:
