(** One protocol session: the transport-agnostic middle of the serving
    stack.

    A session scopes prepared handles to one client connection — two
    clients can both name a query ["q1"] — on top of a shared
    {!Engine}, and dispatches the NDJSON operations ({!Wire} renders
    them).  Transports are thin: {!Protocol} drives one session over
    stdin/stdout, {!Server} one per TCP connection.

    {b Threading.}  The engine is driving-thread-only, so concurrent
    transports must serialize every {!handle}/{!handle_request} call
    across all sessions of one engine ({!Server} holds one driving
    lock).  {!Admission} accounting is thread-safe and happens {e
    before} queueing — either inside {!handle} (stdio) or on the
    server's reader threads, which then pass the decision to
    {!handle_decided}.

    {b Shedding.}  Under a [Shed] decision, [execute]/[batch] items
    whose rates the client did not pin run with degraded per-relation
    sampling rates from {!Admission.shed_rates}; responses gain
    [shed:true], [shed_rates] and [overload] fields, the decision is
    journaled as a [shed] event, and the degraded rates ride in the
    following [exec] event — so [gusdb replay] reproduces shed
    responses bit-identically. *)

type t

val create : ?admission:Admission.t -> Engine.t -> t
(** With [admission], {!handle} does its own enter/decide/leave per
    request (the stdio transport); without, every request is admitted
    plainly. *)

val engine : t -> Engine.t

val id : t -> int
(** Process-unique session id (1, 2, ...), reported by [hello] and
    [stats]. *)

val handle : t -> string -> string option
(** Process one raw NDJSON request line end to end — admission,
    dispatch, rendering; [None] for blank lines (transports skip them),
    [Some response] otherwise.  Never raises on user input: protocol
    and execution failures come back as error objects. *)

val handle_decided : t -> decision:Admission.decision -> string -> string option
(** {!handle} for transports that already ran admission at
    request-receive time (the TCP server's reader threads): applies the
    given decision, does not enter/leave. *)

val handle_request : ?decision:Admission.decision -> t -> Json.t -> Json.t
(** Dispatch one parsed request object ([decision] defaults to
    [Admit]).  Total: errors come back as error objects. *)

val find_prepared : t -> string -> Prepared.t option
val prepared_names : t -> (string * Prepared.t) list
(** This session's handles, sorted by name. *)

val close : t -> unit
(** Drop the session's handles; subsequent requests answer with the
    [session_closed] error.  Idempotent. *)

val closed : t -> bool

val run : ?after:(unit -> unit) -> t -> in_channel -> out_channel -> unit
(** The stdio loop: read lines to EOF, skip blanks, answer each with
    one flushed line.  [after] runs once per answered request. *)
