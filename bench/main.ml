(* Benchmark harness: regenerates every table/figure of the paper
   (T1-T4 exactly, E1-E7 in shape; see DESIGN.md's experiment index) and
   runs Bechamel micro-benchmarks over the SBox's hot paths.

   Usage:
     dune exec bench/main.exe            # quick experiments + micro-benches
     dune exec bench/main.exe -- --full  # full-size experiments
     dune exec bench/main.exe -- -e T3   # one experiment
     dune exec bench/main.exe -- --micro # micro-benchmarks only *)

open Bechamel
open Toolkit
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Gus = Gus_core.Gus
module Moments = Gus_estimator.Moments
module Sbox = Gus_estimator.Sbox
module Exp = Gus_experiments

let micro_tests () =
  (* Shared fixtures, built once. *)
  let plan6 = Exp.Exp_runtime.chain_plan ~n:6 in
  let plan10 = Exp.Exp_runtime.chain_plan ~n:10 in
  let card = Exp.Exp_runtime.chain_card in
  let gus10 = (Rewrite.analyze ~card plan10).Rewrite.gus in
  let rng = Gus_util.Rng.create 99 in
  let pairs n m =
    Array.init m (fun _ ->
        (Array.init n (fun _ -> Gus_util.Rng.int rng 1000), Gus_util.Rng.float rng))
  in
  let pairs2_10k = pairs 2 10_000 in
  let pairs4_10k = pairs 4 10_000 in
  let db = Exp.Harness.db_cached ~scale:0.3 in
  let q1 = Exp.Harness.query1_plan () in
  let q1_gus = (Rewrite.analyze_db db q1).Rewrite.gus in
  let q1_sample = Splan.exec db (Gus_util.Rng.create 5) q1 in
  Test.make_grouped ~name:"sbox" ~fmt:"%s/%s"
    [ Test.make ~name:"rewrite-n6"
        (Staged.stage (fun () -> ignore (Rewrite.analyze ~card plan6)));
      Test.make ~name:"rewrite-n10"
        (Staged.stage (fun () -> ignore (Rewrite.analyze ~card plan10)));
      Test.make ~name:"c-coeffs-n10"
        (Staged.stage (fun () -> ignore (Gus.c_coefficients gus10)));
      Test.make ~name:"moments-2rel-10k"
        (Staged.stage (fun () -> ignore (Moments.of_pairs ~n_rels:2 pairs2_10k)));
      Test.make ~name:"moments-4rel-10k"
        (Staged.stage (fun () -> ignore (Moments.of_pairs ~n_rels:4 pairs4_10k)));
      Test.make ~name:"sbox-query1-e2e"
        (Staged.stage (fun () ->
             ignore
               (Sbox.of_relation ~gus:q1_gus ~f:Exp.Harness.revenue_f q1_sample)));
      Test.make ~name:"exec-query1-sampled"
        (Staged.stage (fun () ->
             ignore (Splan.exec db (Gus_util.Rng.create 6) q1))) ]

let run_micro () =
  print_endline "\n=== Bechamel micro-benchmarks (monotonic clock) ===\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let t = Gus_util.Tablefmt.create ~headers:[ "benchmark"; "time/run"; "r^2" ] in
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with Some [ e ] -> e | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square r with Some r2 -> r2 | None -> nan in
      let r2_cell = if Float.is_nan r2 then "-" else Printf.sprintf "%.3f" r2 in
      let human =
        if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
        else Printf.sprintf "%.0f ns" est
      in
      Gus_util.Tablefmt.add_row t [ name; human; r2_cell ])
    rows;
  Gus_util.Tablefmt.print t

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let micro_only = List.mem "--micro" args in
  let single =
    let rec find = function
      | "-e" :: id :: _ -> Some id
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  Printf.printf
    "GUS sampling algebra - benchmark harness (paper tables T1-T4, \
     experiments E1-E7)\n";
  (match (micro_only, single) with
  | true, _ -> ()
  | _, Some id -> begin
      match Exp.Registry.find id with
      | Some e -> if full then e.Exp.Registry.run () else e.Exp.Registry.quick ()
      | None ->
          Printf.eprintf "unknown experiment %s; known: %s\n" id
            (String.concat ", "
               (List.map (fun e -> e.Exp.Registry.id) Exp.Registry.all));
          exit 1
    end
  | false, None -> Exp.Registry.run_all ~quick:(not full) ());
  if single = None then run_micro ()
