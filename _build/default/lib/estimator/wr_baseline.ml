open Gus_relational

type report = {
  estimate : float;
  variance : float;
  stddev : float;
  n_draws : int;
}

let estimate_sum ~population ~f rel =
  let eval = Expr.bind_float rel.Relation.schema f in
  let summary = Gus_stats.Summary.create () in
  Relation.iter (fun tup -> Gus_stats.Summary.add summary (eval tup)) rel;
  let n = Gus_stats.Summary.count summary in
  if n = 0 then { estimate = 0.0; variance = 0.0; stddev = 0.0; n_draws = 0 }
  else begin
    let nf = float_of_int n and pf = float_of_int population in
    let estimate = pf *. Gus_stats.Summary.mean summary in
    let variance = pf *. pf *. Gus_stats.Summary.variance summary /. nf in
    { estimate; variance; stddev = sqrt variance; n_draws = n }
  end
