lib/experiments/harness.ml: Array Database Expr Float Gus_core Gus_estimator Gus_relational Gus_sampling Gus_stats Gus_tpch Gus_util Hashtbl Printf Unix
