test/test_rewrite.mli:
