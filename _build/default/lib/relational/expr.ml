type binop = Add | Sub | Mul | Div
type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Lit of Value.t
  | Neg of t
  | Bin of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t

let col c = Col c
let int i = Lit (Value.Int i)
let float f = Lit (Value.Float f)
let str s = Lit (Value.Str s)
let bool b = Lit (Value.Bool b)
let null = Lit Value.Null

let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Neq, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not_ e = Not e

exception Bind_error of string

let cmp_result op c =
  let open Stdlib in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(* Compile to a closure once; evaluation is then allocation-light. *)
let rec compile schema expr : Tuple.t -> Value.t =
  match expr with
  | Col name -> begin
      match Schema.find_index schema name with
      | Some i -> fun tup -> Tuple.value tup i
      | None -> raise (Bind_error (Printf.sprintf "unknown column %s" name))
    end
  | Lit v -> fun _ -> v
  | Neg e ->
      let f = compile schema e in
      fun tup -> Value.neg (f tup)
  | Bin (op, a, b) ->
      let fa = compile schema a and fb = compile schema b in
      let g =
        match op with
        | Add -> Value.add
        | Sub -> Value.sub
        | Mul -> Value.mul
        | Div -> Value.div
      in
      fun tup -> g (fa tup) (fb tup)
  | Cmp (op, a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun tup -> begin
        match Value.compare_sql (fa tup) (fb tup) with
        | None -> Value.Null
        | Some c -> Value.Bool (cmp_result op c)
      end
  | And (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun tup -> begin
        (* SQL three-valued AND. *)
        match (fa tup, fb tup) with
        | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
        | Value.Bool true, Value.Bool true -> Value.Bool true
        | (Value.Bool _ | Value.Null), (Value.Bool _ | Value.Null) -> Value.Null
        | v, _ -> raise (Value.Type_error ("AND on " ^ Value.to_display v))
      end
  | Or (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun tup -> begin
        match (fa tup, fb tup) with
        | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
        | Value.Bool false, Value.Bool false -> Value.Bool false
        | (Value.Bool _ | Value.Null), (Value.Bool _ | Value.Null) -> Value.Null
        | v, _ -> raise (Value.Type_error ("OR on " ^ Value.to_display v))
      end
  | Not e ->
      let f = compile schema e in
      fun tup -> begin
        match f tup with
        | Value.Bool b -> Value.Bool (not b)
        | Value.Null -> Value.Null
        | v -> raise (Value.Type_error ("NOT on " ^ Value.to_display v))
      end

let bind schema expr = compile schema expr

let bind_predicate schema expr =
  let f = compile schema expr in
  fun tup -> match f tup with Value.Bool b -> b | _ -> false

let bind_float schema expr =
  let f = compile schema expr in
  fun tup ->
    match f tup with
    | Value.Null -> 0.0
    | v -> Value.to_float v

let columns expr =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Col c ->
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          out := c :: !out
        end
    | Lit _ -> ()
    | Neg e | Not e -> go e
    | Bin (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
        go a;
        go b
  in
  go expr;
  List.rev !out

let binop_sym = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmpop_sym = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp ppf = function
  | Col c -> Format.pp_print_string ppf c
  | Lit v -> Value.pp ppf v
  | Neg e -> Format.fprintf ppf "-(%a)" pp e
  | Bin (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_sym op) pp b
  | Cmp (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmpop_sym op) pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not e -> Format.fprintf ppf "(NOT %a)" pp e

let to_string e = Format.asprintf "%a" pp e
