(* Concurrent TCP transport: many NDJSON sessions over one shared
   Engine.

   Thread model.  The engine is driving-thread-only, so one mutex (the
   driving lock) serializes every Session.handle_decided call across
   all connections — concurrency buys admission, parsing, queueing and
   socket I/O overlap, not parallel query execution (batch items still
   fan across the engine's pool under the lock).  Per connection:

   - a reader thread reads lines, runs Admission.enter *immediately*
     (queued work must count as in flight, and the shed decision
     belongs to the moment of arrival, not of execution), and pushes
     into a bounded queue.  A full queue blocks the reader, which stops
     reading the socket, which fills the TCP window — backpressure all
     the way to the client with no unbounded buffering anywhere.
   - a worker thread pops FIFO (responses stay in request order), takes
     the driving lock, dispatches, writes + flushes the response, and
     leaves admission.

   Errors on one connection never touch another: a malformed frame is
   an error *response* (Session/Wire's job), a dead socket tears down
   only its own two threads, and the session's handles die with it. *)

type job =
  | Handle of {
      line : string;
      ticket : Admission.ticket option;
      decision : Admission.decision;
    }
  | Rejected of string  (* render the [overloaded] error, in order *)

(* Bounded blocking queue. *)
module Bq = struct
  type 'a t = {
    q : 'a Queue.t;
    cap : int;
    lock : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
    mutable closed : bool;
  }

  let create cap =
    { q = Queue.create ();
      cap;
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      closed = false }

  (* [false] when the queue was closed under us — the caller still owns
     whatever resources ride on [x] (admission tickets). *)
  let push t x =
    Mutex.protect t.lock (fun () ->
        while Queue.length t.q >= t.cap && not t.closed do
          Condition.wait t.not_full t.lock
        done;
        if t.closed then false
        else begin
          Queue.push x t.q;
          Condition.signal t.not_empty;
          true
        end)

  (* [None] once closed and drained. *)
  let pop t =
    Mutex.protect t.lock (fun () ->
        while Queue.is_empty t.q && not t.closed do
          Condition.wait t.not_empty t.lock
        done;
        match Queue.take_opt t.q with
        | Some x ->
            Condition.signal t.not_full;
            Some x
        | None -> None)

  let close t =
    Mutex.protect t.lock (fun () ->
        t.closed <- true;
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full)
end

type conn = {
  fd : Unix.file_descr;
  session : Session.t;
  queue : job Bq.t;
  mutable reader : Thread.t option;
  mutable worker : Thread.t option;
}

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  engine : Engine.t;
  admission : Admission.t option;
  after : unit -> unit;
  driving_lock : Mutex.t;
  conns : (conn, unit) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable stopping : bool;
}

let port t = t.port

let m_conns = Gus_obs.Metrics.counter "serve.connections"

let reader_loop t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  (try
     let rec loop () =
       let line = input_line ic in
       if String.trim line <> "" then begin
         match t.admission with
         | None ->
             ignore
               (Bq.push conn.queue
                  (Handle { line; ticket = None; decision = Admission.Admit }))
         | Some a -> (
             match Admission.enter a with
             | Error msg -> ignore (Bq.push conn.queue (Rejected msg))
             | Ok (ticket, decision) ->
                 if
                   not
                     (Bq.push conn.queue
                        (Handle { line; ticket = Some ticket; decision }))
                 then Admission.leave a ticket)
       end;
       loop ()
     in
     loop ()
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  Bq.close conn.queue

let worker_loop t conn =
  let oc = Unix.out_channel_of_descr conn.fd in
  (* Once a write fails the client is gone; keep draining so every
     admission ticket still in the queue is returned. *)
  let dead = ref false in
  let write_line response =
    if not !dead then (
      (try
         output_string oc response;
         output_char oc '\n';
         flush oc
       with Sys_error _ | Unix.Unix_error _ -> dead := true);
      if not !dead then
        (* [after] may touch shared state (--prom-out file dumps), so it
           runs under the driving lock like everything non-per-conn. *)
        Mutex.protect t.driving_lock t.after)
  in
  let rec loop () =
    match Bq.pop conn.queue with
    | None -> ()
    | Some (Rejected msg) ->
        write_line (Json.to_string (Wire.error_json "overloaded" msg));
        loop ()
    | Some (Handle { line; ticket; decision }) ->
        let response =
          if !dead then None
          else
            Mutex.protect t.driving_lock (fun () ->
                Session.handle_decided conn.session ~decision line)
        in
        (match (ticket, t.admission) with
        | Some tk, Some a -> Admission.leave a tk
        | _ -> ());
        Option.iter write_line response;
        loop ()
  in
  loop ();
  Mutex.protect t.driving_lock (fun () -> Session.close conn.session);
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.protect t.conns_lock (fun () -> Hashtbl.remove t.conns conn)

let spawn_conn t fd =
  Gus_obs.Metrics.incr m_conns;
  let session_cap =
    match t.admission with
    | Some a -> Admission.session_inflight a
    | None -> 8
  in
  let conn =
    { fd;
      session = Session.create t.engine;
      queue = Bq.create session_cap;
      reader = None;
      worker = None }
  in
  Mutex.protect t.conns_lock (fun () -> Hashtbl.replace t.conns conn ());
  conn.reader <- Some (Thread.create (fun () -> reader_loop t conn) ());
  conn.worker <- Some (Thread.create (fun () -> worker_loop t conn) ())

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        spawn_conn t fd;
        loop ()
    | exception Unix.Unix_error _ ->
        (* listen socket closed (stop) or transient accept failure *)
        if not t.stopping then loop ()
  in
  loop ()

let start ?(host = "127.0.0.1") ?(port = 0) ?admission
    ?(after = fun () -> ()) engine =
  (* A dead client mid-write must be an EPIPE error on this connection,
     not a process kill. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let t =
    { listen_fd = fd;
      port;
      engine;
      admission;
      after;
      driving_lock = Mutex.create ();
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      accept_thread = None;
      stopping = false }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* shutdown, not close: closing an fd does NOT wake a thread already
       blocked in accept(2) on it — shutdown makes that accept return
       EINVAL immediately.  The fd is closed only after the join, so its
       number cannot be reused under the in-flight syscall. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Closing each fd unblocks its reader; worker drains and exits. *)
    let conns =
      Mutex.protect t.conns_lock (fun () ->
          Hashtbl.fold (fun c () acc -> c :: acc) t.conns [])
    in
    List.iter
      (fun c ->
        (try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
         with Unix.Unix_error _ -> ());
        Bq.close c.queue)
      conns;
    List.iter
      (fun c ->
        Option.iter Thread.join c.reader;
        Option.iter Thread.join c.worker)
      conns
  end

let wait t = Option.iter Thread.join t.accept_thread
