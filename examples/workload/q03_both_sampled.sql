-- Both join inputs sampled: the product-form GUS of Prop. 6.
SELECT COUNT(*)
FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (25 PERCENT)
WHERE l_orderkey = o_orderkey;
