test/test_online.ml: Alcotest Expr Float Gus_core Gus_estimator Gus_online Gus_relational Gus_sampling Gus_stats Gus_tpch Lazy List Option Printf Relation
