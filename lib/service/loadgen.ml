(* Closed-loop TCP load generator for the NDJSON server.

   N client threads each pace toward qps/N: send one request, block for
   the response (closed loop — a client never has more than one request
   outstanding), then sleep off the rest of the interval.  When the
   server is slower than the schedule the client just runs flat out, so
   offered load saturates at server speed — exactly the regime where
   admission control must shed rather than queue.

   Latency is measured around the full send→response round trip, on the
   monotonic clock.  Responses are parsed just enough to classify:
   ok / error / shed (degraded-rate) / rejected (overloaded). *)

type summary = {
  clients : int;
  target_qps : float;
  duration_s : float;
  sent : int;
  ok : int;
  errors : int;  (* ok:false responses that are not [overloaded] *)
  shed : int;  (* ok:true with shed:true *)
  rejected : int;  (* [overloaded] errors *)
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
  achieved_qps : float;
  shed_fraction : float;  (* shed / max(1, ok) *)
}

type tally = {
  mutable t_sent : int;
  mutable t_ok : int;
  mutable t_errors : int;
  mutable t_shed : int;
  mutable t_rejected : int;
  mutable t_lat_ms : float list;
}

let now_ns = Gus_obs.Trace.now_ns

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let request oc ic line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let classify tally response =
  match Json.of_string response with
  | exception Json.Parse_error _ -> tally.t_errors <- tally.t_errors + 1
  | j -> (
      match Option.bind (Json.member "ok" j) Json.to_bool with
      | Some true ->
          tally.t_ok <- tally.t_ok + 1;
          if
            Option.bind (Json.member "shed" j) Json.to_bool = Some true
          then tally.t_shed <- tally.t_shed + 1
      | _ ->
          let code =
            Option.bind
              (Option.bind (Json.member "error" j) (Json.member "code"))
              Json.to_str
          in
          if code = Some "overloaded" then
            tally.t_rejected <- tally.t_rejected + 1
          else tally.t_errors <- tally.t_errors + 1)

(* One scripted exchange whose response must be ok:true; any failure
   aborts the run with the offending response. *)
let scripted oc ic lines =
  List.iter
    (fun line ->
      let response = request oc ic line in
      match Option.bind (Json.member "ok" (Json.of_string response)) Json.to_bool with
      | Some true -> ()
      | _ -> failwith (Printf.sprintf "setup request failed: %s" response))
    lines

let client_loop ~host ~port ~client_setup ~request:mk ~interval_ns ~deadline_ns
    ~client tally =
  let fd, ic, oc = connect ~host ~port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      scripted oc ic client_setup;
      let start = now_ns () in
      let seq = ref 0 in
      let rec loop () =
        let due = start + (!seq * interval_ns) in
        let now = now_ns () in
        if now < deadline_ns then begin
          if due > now then Thread.delay (float_of_int (due - now) /. 1e9);
          if now_ns () < deadline_ns then begin
            let line = mk ~client ~seq:!seq in
            let t0 = now_ns () in
            let response = request oc ic line in
            let dt_ms = float_of_int (now_ns () - t0) /. 1e6 in
            tally.t_sent <- tally.t_sent + 1;
            tally.t_lat_ms <- dt_ms :: tally.t_lat_ms;
            classify tally response;
            incr seq;
            loop ()
          end
        end
      in
      loop ())

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let run ~host ~port ~clients ~qps ~duration_s ?(setup = [])
    ?(client_setup = []) ~request:mk () =
  if clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  if qps <= 0.0 then invalid_arg "Loadgen.run: qps <= 0";
  if duration_s <= 0.0 then invalid_arg "Loadgen.run: duration <= 0";
  (* Setup on its own connection (register the dataset once — clients
     must not re-register and bump the catalog version per connection). *)
  (if setup <> [] then begin
     let fd, ic, oc = connect ~host ~port in
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () -> scripted oc ic setup)
   end);
  let interval_ns =
    int_of_float (float_of_int clients /. qps *. 1e9)
  in
  let t_start = now_ns () in
  let deadline_ns = t_start + int_of_float (duration_s *. 1e9) in
  let tallies =
    Array.init clients (fun _ ->
        { t_sent = 0;
          t_ok = 0;
          t_errors = 0;
          t_shed = 0;
          t_rejected = 0;
          t_lat_ms = [] })
  in
  let failures = Atomic.make 0 in
  let threads =
    Array.init clients (fun client ->
        Thread.create
          (fun () ->
            try
              client_loop ~host ~port ~client_setup ~request:mk ~interval_ns
                ~deadline_ns ~client tallies.(client)
            with _ -> Atomic.incr failures)
          ())
  in
  Array.iter Thread.join threads;
  let elapsed_s = float_of_int (now_ns () - t_start) /. 1e9 in
  if Atomic.get failures > 0 then
    Error (Printf.sprintf "%d client(s) aborted" (Atomic.get failures))
  else begin
    let sent = Array.fold_left (fun a t -> a + t.t_sent) 0 tallies in
    let ok = Array.fold_left (fun a t -> a + t.t_ok) 0 tallies in
    let errors = Array.fold_left (fun a t -> a + t.t_errors) 0 tallies in
    let shed = Array.fold_left (fun a t -> a + t.t_shed) 0 tallies in
    let rejected = Array.fold_left (fun a t -> a + t.t_rejected) 0 tallies in
    let lats =
      Array.of_list
        (Array.fold_left (fun acc t -> List.rev_append t.t_lat_ms acc) [] tallies)
    in
    Array.sort compare lats;
    let mean_ms =
      if Array.length lats = 0 then Float.nan
      else Array.fold_left ( +. ) 0.0 lats /. float_of_int (Array.length lats)
    in
    Ok
      { clients;
        target_qps = qps;
        duration_s;
        sent;
        ok;
        errors;
        shed;
        rejected;
        p50_ms = quantile lats 0.50;
        p99_ms = quantile lats 0.99;
        mean_ms;
        achieved_qps = (if elapsed_s > 0.0 then float_of_int sent /. elapsed_s else 0.0);
        shed_fraction = float_of_int shed /. float_of_int (max 1 ok) }
  end

(* ---- BENCH_moments.json row merge ----

   The bench harness regenerates the whole file; loadgen only owns its
   own rows, so it edits textually — drop stale rows with the same name,
   splice the new one before the closing bracket of "results" — and the
   hand-formatted one-row-per-line layout survives untouched. *)

let row_json ~name s =
  Printf.sprintf
    "{\"name\": \"%s\", \"ns_per_run\": %.6g, \"p50_ms\": %.6g, \"p99_ms\": \
     %.6g, \"achieved_qps\": %.6g, \"shed_fraction\": %.6g, \"clients\": %d, \
     \"target_qps\": %.6g}"
    name (s.mean_ms *. 1e6) s.p50_ms s.p99_ms s.achieved_qps s.shed_fraction
    s.clients s.target_qps

let skeleton rows =
  String.concat "\n"
    ([ "{";
       "  \"schema\": \"gus-bench-moments/v2\",";
       "  \"generated_by\": \"gusdb loadgen --bench-out\",";
       "  \"unit\": \"ns/run\",";
       "  \"results\": [" ]
    @ List.mapi
        (fun i r ->
          "    " ^ r ^ if i = List.length rows - 1 then "" else ",")
        rows
    @ [ "  ]"; "}"; "" ])

let merge_bench_row ~path ~name s =
  let row = row_json ~name s in
  if not (Sys.file_exists path) then begin
    let oc = open_out path in
    output_string oc (skeleton [ row ]);
    close_out oc
  end
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    let stale = Printf.sprintf "{\"name\": \"%s\"" name in
    let lines =
      List.filter
        (fun l -> not (String.starts_with ~prefix:stale (String.trim l)))
        lines
    in
    (* Splice before the line closing the results array.  The previous
       last row needs a trailing comma. *)
    let rec splice acc = function
      | [] -> List.rev (("    " ^ row) :: acc) (* no ] found: append *)
      | l :: rest when String.trim l = "]" || String.trim l = "],"  ->
          let acc =
            match acc with
            | prev :: tl
              when String.ends_with ~suffix:"}" (String.trim prev)
                   && String.trim prev <> "{" ->
                (prev ^ ",") :: tl
            | _ -> acc
          in
          List.rev_append (l :: ("    " ^ row) :: acc) rest
      | l :: rest -> splice (l :: acc) rest
    in
    let lines = splice [] lines in
    let oc = open_out path in
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      lines;
    close_out oc
  end
