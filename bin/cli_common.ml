(* Flags and plumbing shared by the gusdb subcommands (query, plan, lint,
   experiments, serve).  One definition per flag so the surfaces cannot
   drift: --pool-size/GUSDB_DOMAINS, --seed, --json, --trace-out,
   --metrics-out all mean the same thing everywhere they appear. *)

open Cmdliner
module Json = Gus_service.Json

let scale_arg =
  let doc = "Scale factor of the generated database (1.0 = 15k orders)." in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let seed_arg =
  let doc = "Random seed (data generation and sampling are deterministic)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let data_arg =
  let doc = "Load relations from $(docv) instead of generating data in \
             memory: a directory of CSVs (written by `gusdb gen`) or a \
             binary snapshot file (written by `gusdb snapshot`)." in
  Arg.(value & opt (some string) None & info [ "d"; "data" ] ~docv:"PATH" ~doc)

let json_arg =
  let doc = "Emit machine-readable JSON (results on success, a structured \
             error object on failure) instead of the text rendering." in
  Arg.(value & flag & info [ "json" ] ~doc)

let pool_size_arg =
  let doc = "Number of worker domains for pool-parallel execution \
             (overrides $(b,GUSDB_DOMAINS); 1 disables parallelism)." in
  Arg.(value & opt (some int) None & info [ "pool-size" ] ~docv:"N" ~doc)

let apply_pool_size = function
  | None -> ()
  | Some n when n >= 1 -> Gus_util.Pool.set_default_size n
  | Some n ->
      Printf.eprintf "gusdb: invalid --pool-size %d\n" n;
      exit 1

(* The TPC-H generation seed is fixed — `query -s 0.3` and a serve-side
   `register {"scale": 0.3}` must mean the same database. *)
let generation_seed = 20130630

(* Either load data previously written by `gen` (a CSV directory) or
   `snapshot` (a single binary file), or generate in memory. *)
let db_source ~scale data =
  let source =
    match data with
    | None -> Gus_service.Catalog.Tpch { scale; seed = generation_seed }
    | Some path when Sys.file_exists path && not (Sys.is_directory path) ->
        Gus_service.Catalog.Snapshot path
    | Some dir -> Gus_service.Catalog.Csv_dir dir
  in
  Gus_service.Catalog.build source

(* ---- observability flags (query, experiments, serve) ---- *)

let trace_out_arg =
  let doc = "Record an execution trace and write it to $(docv) as Chrome \
             trace_event JSON (load in chrome://tracing or Perfetto)." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc = "Collect runtime metrics (per-operator row counts, sampler \
             draws, pool lane utilization, probe lengths, ...) and write a \
             JSON snapshot to $(docv) ($(b,-) for stdout)." in
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let write_file path contents =
  if path = "-" then print_string contents
  else begin
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  end

(* Enable collection before [f], export after.  Collection stays off when
   neither output is requested, so the instrumented hot paths keep their
   single-flag-check disabled cost. *)
let with_obs ~trace_out ~metrics_out f =
  if trace_out <> None then Gus_obs.Trace.set_enabled true;
  if metrics_out <> None then Gus_obs.Metrics.set_enabled true;
  let finish () =
    (match trace_out with
    | Some path ->
        Gus_obs.Trace.set_enabled false;
        write_file path (Gus_obs.Trace.export_json ());
        Gus_obs.Trace.clear ()
    | None -> ());
    match metrics_out with
    | Some path ->
        Gus_obs.Metrics.set_enabled false;
        write_file path (Gus_obs.Metrics.snapshot ())
    | None -> ()
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

(* ---- failure reporting ---- *)

(* The historical one-line stderr renderings, per error code. *)
let human_message code message =
  match code with
  | "unsupported_plan" -> "unsupported plan: " ^ message
  | "type_error" -> "type error: " ^ message
  | _ -> message

(* Report user-facing failures as one-line diagnostics + exit 1 instead of
   uncaught-exception backtraces; under --json additionally print the
   protocol's structured error object on stdout. *)
let or_fail ?(json = false) f =
  try f ()
  with e -> (
    match Gus_service.Protocol.error_of_exn e with
    | None -> raise e
    | Some (code, message) ->
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [ ("ok", Json.Bool false);
                    ( "error",
                      Json.Obj
                        [ ("code", Json.Str code);
                          ("message", Json.Str message) ] ) ]));
        Printf.eprintf "gusdb: %s\n" (human_message code message);
        exit 1)
