module Splan = Gus_core.Splan
module Gus = Gus_core.Gus
module Sbox = Gus_estimator.Sbox
module Interval = Gus_stats.Interval
module Sampler = Gus_sampling.Sampler
open Gus_relational

type rates = (string * float) list

let proportional_rates ~arrivals ~capacity =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 arrivals in
  let r =
    if total = 0 then 1.0
    else Float.min 1.0 (float_of_int capacity /. float_of_int total)
  in
  List.map (fun (name, _) -> (name, r)) arrivals

let optimize_rates ~gus_of ~y ~arrivals ~capacity ?(grid = 40) () =
  if capacity <= 0 then invalid_arg "Shedding.optimize_rates: capacity <= 0";
  let k = List.length arrivals in
  if k < 1 || k > 3 then
    invalid_arg "Shedding.optimize_rates: 1 to 3 streams supported";
  let names = List.map fst arrivals in
  let ns = List.map (fun (_, n) -> float_of_int n) arrivals in
  let cap = float_of_int capacity in
  let total = List.fold_left ( +. ) 0.0 ns in
  if cap >= total then begin
    let rates = List.map (fun name -> (name, 1.0)) names in
    (rates, 0.0)
  end
  else begin
    let best = ref (proportional_rates ~arrivals ~capacity, infinity) in
    let consider rs =
      (* Clamp, check budget (small tolerance), evaluate. *)
      let feasible =
        List.for_all (fun (_, r) -> r > 0.0 && r <= 1.0) rs
        && List.fold_left2 (fun acc (_, r) n -> acc +. (r *. n)) 0.0 rs ns
           <= cap +. 1e-6
      in
      if feasible then begin
        let v = Gus.variance (gus_of rs) ~y in
        let _, cur = !best in
        if v < cur then best := (rs, v)
      end
    in
    let steps = List.init grid (fun i -> float_of_int (i + 1) /. float_of_int grid) in
    (match (names, ns) with
    | [ n1 ], [ s1 ] -> consider [ (n1, Float.min 1.0 (cap /. s1)) ]
    | [ n1; n2 ], [ s1; s2 ] ->
        List.iter
          (fun r1frac ->
            let r1 = r1frac in
            let budget_left = cap -. (r1 *. s1) in
            if budget_left > 0.0 then begin
              let r2 = Float.min 1.0 (budget_left /. s2) in
              consider [ (n1, r1); (n2, r2) ]
            end)
          steps
    | [ n1; n2; n3 ], [ s1; s2; s3 ] ->
        List.iter
          (fun r1 ->
            List.iter
              (fun r2 ->
                let budget_left = cap -. (r1 *. s1) -. (r2 *. s2) in
                if budget_left > 0.0 then begin
                  let r3 = Float.min 1.0 (budget_left /. s3) in
                  consider [ (n1, r1); (n2, r2); (n3, r3) ]
                end)
              steps)
          steps
    | _ -> assert false);
    let rates, v = !best in
    if v = infinity then
      (* Nothing strictly feasible on the grid; fall back. *)
      let fallback = proportional_rates ~arrivals ~capacity in
      (fallback, Gus.variance (gus_of fallback) ~y)
    else (rates, v)
  end

type window_report = {
  window : int;
  arrivals : (string * int) list;
  kept : (string * int) list;
  rates : rates;
  report : Sbox.report;
  interval : Interval.t;
}

(* Contiguous arrival chunks of a base relation, re-registered as a base
   relation so window-local lineage ids are dense. *)
let window_chunk rel ~windows ~w =
  let n = Relation.cardinality rel in
  let per = (n + windows - 1) / windows in
  let lo = w * per and hi = min n ((w + 1) * per) in
  let out = Relation.create_base ~name:rel.Relation.name rel.Relation.schema in
  for i = lo to hi - 1 do
    Relation.append_row out (Relation.tuple rel i).Tuple.values
  done;
  out

let window_db db rels ~windows ~w =
  let wdb = Database.create () in
  List.iter
    (fun name -> Database.add wdb (window_chunk (Database.find db name) ~windows ~w))
    rels;
  wdb

let gus_of_rates order rates =
  List.fold_left
    (fun acc name ->
      let r = match List.assoc_opt name rates with Some r -> r | None -> 1.0 in
      let g = Gus.bernoulli ~rel:name r in
      match acc with None -> Some g | Some a -> Some (Gus.join a g))
    None order
  |> Option.get

let simulate ?(seed = 1) db ~plan ~f ~windows ~capacity =
  if windows <= 0 then invalid_arg "Shedding.simulate: windows <= 0";
  let skeleton = Splan.strip_samples plan in
  let rels = Splan.relations skeleton in
  let out = ref [] in
  let current_rates = ref None in
  for w = 0 to windows - 1 do
    let wdb = window_db db rels ~windows ~w in
    let arrivals =
      List.map (fun r -> (r, Relation.cardinality (Database.find wdb r))) rels
    in
    let rates =
      match !current_rates with
      | Some r -> r
      | None -> proportional_rates ~arrivals ~capacity
    in
    (* Shed each stream with a lineage-keyed Bernoulli at its rate. *)
    let shed = Database.create () in
    List.iteri
      (fun stream_idx (name, _) ->
        let r = List.assoc name rates in
        (* Distinct seed per (window, stream): row ids overlap across
           streams, and sharing a seed would correlate their decisions. *)
        let sampler =
          Sampler.Hash_bernoulli
            { seed = seed + (31 * w) + (1000003 * (stream_idx + 1)); p = r }
        in
        let kept =
          Sampler.apply sampler (Gus_util.Rng.create 0) (Database.find wdb name)
        in
        let renamed =
          Relation.derived ~name kept.Relation.schema kept.Relation.lineage_schema
        in
        Relation.iter (Relation.append_tuple renamed) kept;
        Database.add shed renamed)
      arrivals;
    let kept =
      List.map (fun r -> (r, Relation.cardinality (Database.find shed r))) rels
    in
    let gus = gus_of_rates rels rates in
    (* The shed window is estimated by streaming the skeleton's output
       tuples into an accumulator — the per-window checkpoint never
       materializes its result relation. *)
    let report = Sbox.of_plan ~gus ~f shed (Gus_util.Rng.create 0) skeleton in
    let interval = Sbox.interval Interval.Normal report in
    out := { window = w; arrivals; kept; rates; report; interval } :: !out;
    (* Re-optimize for the next window from this window's moments. *)
    let next_rates, _ =
      optimize_rates
        ~gus_of:(gus_of_rates rels)
        ~y:report.Sbox.y_hat ~arrivals ~capacity ()
    in
    current_rates := Some next_rates
  done;
  List.rev !out

let window_truth db ~plan ~f ~windows =
  let skeleton = Splan.strip_samples plan in
  let rels = Splan.relations skeleton in
  List.init windows (fun w ->
      let wdb = window_db db rels ~windows ~w in
      let full = Splan.exec wdb (Gus_util.Rng.create 0) skeleton in
      let eval = Expr.bind_float full.Relation.schema f in
      Relation.fold (fun acc tup -> acc +. eval tup) 0.0 full)
