module Splan = Gus_core.Splan
module Gus = Gus_core.Gus
module Moments = Gus_estimator.Moments
module Tablefmt = Gus_util.Tablefmt
open Gus_relational

let robustness_cv db plan ~f ~loss =
  let keep = 1.0 -. loss in
  let full = Splan.exec_exact db plan in
  let rels = full.Relation.lineage_schema in
  let gus =
    Array.fold_left
      (fun acc r ->
        let g = Gus.bernoulli ~rel:r keep in
        match acc with None -> Some g | Some a -> Some (Gus.join a g))
      None rels
  in
  let gus = Option.get gus in
  let y = Moments.of_relation ~f full in
  let variance = Gus.variance gus ~y in
  let eval = Expr.bind_float full.Relation.schema f in
  let total = Relation.fold (fun acc tup -> acc +. eval tup) 0.0 full in
  if total = 0.0 then infinity else sqrt (Float.max 0.0 variance) /. Float.abs total

let run ?(scale = 0.5) () =
  Harness.section "E6"
    "Database as a 99% Bernoulli sample - robustness to 1% tuple loss";
  let uniform_cfg =
    { Gus_tpch.Tpch.default_config with part_skew = 0.0; price_skew = infinity }
  in
  let skewed_cfg =
    { Gus_tpch.Tpch.default_config with part_skew = 1.2; price_skew = 1.15 }
  in
  let db_uniform = Gus_tpch.Tpch.generate ~seed:77 ~scale ~config:uniform_cfg () in
  let db_skewed = Gus_tpch.Tpch.generate ~seed:77 ~scale ~config:skewed_cfg () in
  let plan =
    Splan.Equi_join
      { left = Splan.Scan "lineitem";
        right = Splan.Scan "orders";
        left_key = Expr.col "l_orderkey";
        right_key = Expr.col "o_orderkey" }
  in
  let t =
    Tablefmt.create
      ~headers:[ "data"; "aggregate"; "CV under 1% loss"; "CV under 5% loss" ]
  in
  let add label db f fname =
    Tablefmt.add_row t
      [ label; fname;
        Printf.sprintf "%.4f%%" (100.0 *. robustness_cv db plan ~f ~loss:0.01);
        Printf.sprintf "%.4f%%" (100.0 *. robustness_cv db plan ~f ~loss:0.05) ]
  in
  add "uniform values" db_uniform Harness.revenue_f "SUM(revenue)";
  add "heavy-tailed prices" db_skewed Harness.revenue_f "SUM(revenue)";
  add "uniform values" db_uniform (Expr.float 1.0) "COUNT(*)";
  add "heavy-tailed prices" db_skewed (Expr.float 1.0) "COUNT(*)";
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: the skew-dominated SUM is several times more fragile \
     than the uniform one; COUNT(*) is equally robust on both.\n"
