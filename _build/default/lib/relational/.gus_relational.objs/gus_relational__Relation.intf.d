lib/relational/relation.mli: Format Gus_util Lineage Schema Tuple Value
