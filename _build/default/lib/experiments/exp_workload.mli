(** E10 — estimate quality across a TPC-H-derived workload: relative
    error and 95% interval coverage per query, the broad-coverage table a
    VLDB evaluation section leads with.  Expected shape: single-digit
    relative errors at the configured rates, coverage near nominal for
    every query shape (1–4 relations, selections, skewed joins, AVG and
    COUNT alongside SUM). *)

val run : ?scale:float -> ?trials:int -> unit -> unit
