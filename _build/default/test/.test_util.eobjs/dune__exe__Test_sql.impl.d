test/test_sql.ml: Alcotest Database Expr Float Format Gus_core Gus_relational Gus_sampling Gus_sql Gus_stats Gus_tpch Lazy List Ops QCheck2 QCheck_alcotest Relation String
