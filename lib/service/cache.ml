let m_hits = Gus_obs.Metrics.counter "cache.hits"
let m_misses = Gus_obs.Metrics.counter "cache.misses"
let m_evictions = Gus_obs.Metrics.counter "cache.evictions"

(* Intrusive doubly-linked recency list threaded through the table's
   nodes, with a sentinel: [sentinel.next] is LRU, [sentinel.prev] MRU. *)
type 'a node = {
  key : string;
  mutable value : 'a option;  (* None only on the sentinel *)
  mutable prev : 'a node;
  mutable next : 'a node;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  sentinel : 'a node;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Cache.create: capacity %d" capacity);
  let rec sentinel =
    { key = ""; value = None; prev = sentinel; next = sentinel }
  in
  { cap = capacity; table = Hashtbl.create (2 * capacity); sentinel }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_mru t n =
  n.prev <- t.sentinel.prev;
  n.next <- t.sentinel;
  t.sentinel.prev.next <- n;
  t.sentinel.prev <- n

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      Gus_obs.Metrics.incr m_hits;
      unlink n;
      push_mru t n;
      n.value
  | None ->
      Gus_obs.Metrics.incr m_misses;
      None

let mem t key = Hashtbl.mem t.table key

let drop t n =
  unlink n;
  Hashtbl.remove t.table n.key

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some n ->
      n.value <- Some value;
      unlink n;
      push_mru t n
  | None ->
      let rec n = { key; value = Some value; prev = n; next = n } in
      Hashtbl.replace t.table key n;
      push_mru t n);
  while Hashtbl.length t.table > t.cap do
    drop t t.sentinel.next;
    Gus_obs.Metrics.incr m_evictions
  done

let remove_prefix t ~prefix =
  let plen = String.length prefix in
  let doomed =
    Hashtbl.fold
      (fun key n acc ->
        if
          String.length key >= plen && String.sub key 0 plen = prefix
        then n :: acc
        else acc)
      t.table []
  in
  List.iter (drop t) doomed;
  List.length doomed

let clear t =
  Hashtbl.reset t.table;
  t.sentinel.prev <- t.sentinel;
  t.sentinel.next <- t.sentinel

let keys_lru_order t =
  let rec go acc n =
    if n == t.sentinel then List.rev acc else go (n.key :: acc) n.next
  in
  go [] t.sentinel.next
