lib/stats/normal.mli:
