(* Cross-cutting property tests tying the algebra, the moment machinery
   and the samplers together:

   1. Theorem-1 consistency: for random data and a random sampler-built
      GUS, the algebraic variance equals the brute-force second-moment
      computation directly from the b coefficients.
   2. Sampler/GUS agreement: the empirical first- and second-order
      inclusion frequencies of each physical sampler match its GUS
      translation (the SOA-set equivalence of Proposition 3).
   3. Rewriter/Monte-Carlo agreement on random plans. *)

module Gus = Gus_core.Gus
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Moments = Gus_estimator.Moments
module Subset = Gus_util.Subset
module Sampler = Gus_sampling.Sampler
module Rng = Gus_util.Rng
open Gus_relational

let check_bool = Alcotest.check Alcotest.bool

(* ---- 1. algebraic variance = brute force over pairs ---- *)

let pairs_gen =
  QCheck2.Gen.(
    list_size (int_range 1 25)
      (pair (pair (int_range 0 3) (int_range 0 3)) (float_range (-4.0) 4.0))
    >|= fun l ->
    (* Deduplicate lineage: GUS data has one tuple per lineage. *)
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun ((a, b), f) ->
        if Hashtbl.mem seen (a, b) then None
        else begin
          Hashtbl.add seen (a, b) ();
          Some ([| a; b |], f)
        end)
      l
    |> Array.of_list)

let gus_gen =
  QCheck2.Gen.(
    let base rel =
      oneof
        [ (float_range 0.05 1.0 >|= fun p -> Gus.bernoulli ~rel p);
          ( pair (int_range 1 20) (int_range 0 20) >|= fun (n, extra) ->
            Gus.wor ~rel ~n ~out_of:(n + extra) ) ]
    in
    map2 Gus.join (base "r") (base "s"))

let brute_force_variance g pairs =
  (* E[X^2] - A^2 with E[X^2] = (1/a^2) * sum over ordered pairs of
     b'_{T(t,t')} f f' (diagonal uses a = b_full by the convention). *)
  let a = g.Gus.a in
  let acc = ref 0.0 in
  Array.iter
    (fun (l1, f1) ->
      Array.iter
        (fun (l2, f2) ->
          let t = Gus_relational.Lineage.common l1 l2 in
          acc := !acc +. (Gus.b_get g t *. f1 *. f2))
        pairs)
    pairs;
  let total = Array.fold_left (fun s (_, f) -> s +. f) 0.0 pairs in
  (!acc /. (a *. a)) -. (total *. total)

let prop_theorem1_consistency =
  QCheck2.Test.make ~name:"Thm 1 variance = brute force" ~count:150
    QCheck2.Gen.(pair gus_gen pairs_gen)
    (fun (g, pairs) ->
      Array.length pairs = 0
      ||
      let y = Moments.of_pairs ~n_rels:2 pairs in
      let alg = Gus.variance g ~y in
      let bf = brute_force_variance g pairs in
      Float.abs (alg -. bf) <= 1e-6 *. Float.max 1.0 (Float.abs bf))

(* ---- 2. sampler vs GUS: empirical inclusion probabilities ---- *)

let tiny_relation n =
  let schema = Schema.make [ { Schema.name = "x"; ty = Value.TInt } ] in
  let rel = Relation.create_base ~name:"r" schema in
  for i = 0 to n - 1 do
    Relation.append_row rel [| Value.Int i |]
  done;
  rel

let empirical_inclusions sampler ~population ~trials ~seed =
  (* Frequencies of: row 0 present (a-hat); rows 0 and 1 present
     (b_empty-hat). *)
  let rel = tiny_relation population in
  let hit0 = ref 0 and both = ref 0 in
  for t = 1 to trials do
    let s = Sampler.apply sampler (Rng.create (seed + t)) rel in
    let in0 = ref false and in1 = ref false in
    Relation.iter
      (fun tup ->
        if tup.Tuple.lineage.(0) = 0 then in0 := true;
        if tup.Tuple.lineage.(0) = 1 then in1 := true)
      s;
    if !in0 then incr hit0;
    if !in0 && !in1 then incr both
  done;
  ( float_of_int !hit0 /. float_of_int trials,
    float_of_int !both /. float_of_int trials )

let check_sampler_matches_gus name sampler gus ~population =
  let a_hat, b_hat =
    empirical_inclusions sampler ~population ~trials:4000 ~seed:7
  in
  check_bool (name ^ ": a matches") true (Float.abs (a_hat -. gus.Gus.a) < 0.035);
  check_bool (name ^ ": b_empty matches") true
    (Float.abs (b_hat -. Gus.b_get gus Subset.empty) < 0.035)

let test_bernoulli_soa () =
  check_sampler_matches_gus "Bernoulli(0.4)" (Sampler.Bernoulli 0.4)
    (Gus.bernoulli ~rel:"r" 0.4) ~population:30

let test_wor_soa () =
  check_sampler_matches_gus "WOR(12/30)" (Sampler.Wor 12)
    (Gus.wor ~rel:"r" ~n:12 ~out_of:30) ~population:30

let test_hash_bernoulli_soa () =
  (* Hash-Bernoulli's decisions are deterministic per (seed, id); across
     seeds they behave like Bernoulli.  Vary the seed via the sampler. *)
  let rel = tiny_relation 30 in
  let hit0 = ref 0 and both = ref 0 in
  let trials = 4000 in
  for t = 1 to trials do
    let s =
      Sampler.apply (Sampler.Hash_bernoulli { seed = t; p = 0.4 }) (Rng.create 1) rel
    in
    let in0 = ref false and in1 = ref false in
    Relation.iter
      (fun tup ->
        if tup.Tuple.lineage.(0) = 0 then in0 := true;
        if tup.Tuple.lineage.(0) = 1 then in1 := true)
      s;
    if !in0 then incr hit0;
    if !in0 && !in1 then incr both
  done;
  let a_hat = float_of_int !hit0 /. float_of_int trials in
  let b_hat = float_of_int !both /. float_of_int trials in
  check_bool "a" true (Float.abs (a_hat -. 0.4) < 0.035);
  check_bool "b_empty (independent across ids)" true
    (Float.abs (b_hat -. 0.16) < 0.035)

let test_block_soa () =
  (* Two rows in the same block: P(both) = p, not p^2. *)
  let rel = tiny_relation 40 in
  let trials = 4000 in
  let same = ref 0 and diff = ref 0 in
  for t = 1 to trials do
    let s =
      Sampler.apply (Sampler.Block { rows_per_block = 10; p = 0.3 })
        (Rng.create (100 + t)) rel
    in
    let present = Hashtbl.create 8 in
    Relation.iter
      (fun tup ->
        (* lineage is the block id after block sampling; use values for rows *)
        match Tuple.value tup 0 with
        | Value.Int v -> Hashtbl.replace present v ()
        | _ -> ())
      s;
    if Hashtbl.mem present 0 && Hashtbl.mem present 1 then incr same;
    if Hashtbl.mem present 0 && Hashtbl.mem present 15 then incr diff
  done;
  let p_same = float_of_int !same /. float_of_int trials in
  let p_diff = float_of_int !diff /. float_of_int trials in
  check_bool "same block ~ p" true (Float.abs (p_same -. 0.3) < 0.03);
  check_bool "different blocks ~ p^2" true (Float.abs (p_diff -. 0.09) < 0.03)

(* ---- 3. random plans: rewriter variance vs Monte Carlo ---- *)

let test_random_plans_mc () =
  (* A handful of structurally different plans over a small fixed database;
     for each, the Theorem-1 variance (from exact moments) must match the
     Monte-Carlo variance of the estimates within MC noise. *)
  let db = Database.create () in
  let r = tiny_relation 60 in
  Database.add db r;
  let schema2 =
    Schema.make
      [ { Schema.name = "yk"; ty = Value.TInt };
        { Schema.name = "w"; ty = Value.TFloat } ]
  in
  let s = Relation.create_base ~name:"s" schema2 in
  for i = 0 to 14 do
    Relation.append_row s [| Value.Int i; Value.Float (1.0 +. float_of_int (i mod 4)) |]
  done;
  Database.add db s;
  (* join key: x mod 15 = yk *)
  let join_plan sampler_r sampler_s =
    Splan.Equi_join
      { left = Splan.Sample (sampler_r, Splan.Scan "r");
        right = Splan.Sample (sampler_s, Splan.Scan "s");
        left_key = Expr.(Bin (Sub, col "x", Bin (Mul, int 15, col "x" / int 15)));
        right_key = Expr.col "yk" }
  in
  let f = Expr.(col "w" + float 1.0) in
  let plans =
    [ ("B x B", join_plan (Sampler.Bernoulli 0.5) (Sampler.Bernoulli 0.6));
      ("B x WOR", join_plan (Sampler.Bernoulli 0.4) (Sampler.Wor 8));
      ("WOR x WOR", join_plan (Sampler.Wor 30) (Sampler.Wor 10));
      ( "select over sample",
        Splan.Select
          ( Expr.(col "x" > int 10),
            Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "r") ) ) ]
  in
  List.iter
    (fun (name, plan) ->
      let f = if name = "select over sample" then Expr.(col "x" * float 0.1) else f in
      let analysis = Rewrite.analyze_db db plan in
      let gus = (Lazy.force analysis.Rewrite.gus) in
      let full = Splan.exec_exact db plan in
      let y = Moments.of_relation ~f full in
      let theory = Gus.variance gus ~y in
      let est = Gus_stats.Summary.create () in
      let trials = 1500 in
      for t = 1 to trials do
        let sample = Splan.exec db (Rng.create (9000 + t)) plan in
        let r = Sbox.of_relation ~gus ~f sample in
        Gus_stats.Summary.add est r.Sbox.estimate
      done;
      let truth = Sbox.exact db plan ~f in
      let mean = Gus_stats.Summary.mean est in
      check_bool
        (Printf.sprintf "%s: unbiased (mean %.3f truth %.3f)" name mean truth)
        true
        (Float.abs (mean -. truth) <= 0.05 *. Float.max 1.0 (Float.abs truth));
      let mc = Gus_stats.Summary.variance est in
      check_bool
        (Printf.sprintf "%s: MC var %.4f vs theory %.4f" name mc theory)
        true
        (theory = 0.0 || Float.abs ((mc /. theory) -. 1.0) < 0.25))
    plans

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_theorem1_consistency ]

let () =
  Alcotest.run "properties"
    [ ("theorem1", qcheck_tests);
      ( "soa-set-equivalence",
        [ Alcotest.test_case "Bernoulli" `Slow test_bernoulli_soa;
          Alcotest.test_case "WOR" `Slow test_wor_soa;
          Alcotest.test_case "hash Bernoulli" `Slow test_hash_bernoulli_soa;
          Alcotest.test_case "block" `Slow test_block_soa ] );
      ( "random-plans",
        [ Alcotest.test_case "rewriter vs Monte Carlo" `Slow test_random_plans_mc ] ) ]
