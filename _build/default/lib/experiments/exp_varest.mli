(** E3 — quality of the variance estimator: the mean of the SBox's
    Ŷ-based variance estimate against (a) the exact Theorem-1 variance
    computed from the full result's y_S moments and (b) the Monte-Carlo
    variance of the estimates themselves.  The paper's claim: the
    Section-6.3 correction makes the variance estimate unbiased (ratios
    ≈ 1) even at small sampling fractions. *)

val run : ?scale:float -> ?trials:int -> unit -> unit
