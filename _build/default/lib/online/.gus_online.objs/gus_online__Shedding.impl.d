lib/online/shedding.ml: Database Expr Float Gus_core Gus_estimator Gus_relational Gus_sampling Gus_stats Gus_util List Option Relation Tuple
