(* Tests for gus_relational: values, schemas, lineage, expressions,
   operators, catalog, CSV. *)

open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let close what = check (Alcotest.float 1e-9) what

let value_testable =
  Alcotest.testable Value.pp (fun a b -> Value.equal a b || (a = b))

(* Small fixture relations. *)
let dept_schema =
  Schema.make
    [ { Schema.name = "d_id"; ty = Value.TInt };
      { Schema.name = "d_name"; ty = Value.TStr } ]

let emp_schema =
  Schema.make
    [ { Schema.name = "e_id"; ty = Value.TInt };
      { Schema.name = "e_dept"; ty = Value.TInt };
      { Schema.name = "e_salary"; ty = Value.TFloat } ]

let make_dept () =
  let d = Relation.create_base ~name:"dept" dept_schema in
  List.iter
    (fun (i, n) -> Relation.append_row d [| Value.Int i; Value.Str n |])
    [ (1, "eng"); (2, "sales"); (3, "hr") ];
  d

let make_emp () =
  let e = Relation.create_base ~name:"emp" emp_schema in
  List.iter
    (fun (i, d, s) ->
      Relation.append_row e [| Value.Int i; Value.Int d; Value.Float s |])
    [ (10, 1, 100.0); (11, 1, 120.0); (12, 2, 90.0); (13, 2, 95.0); (14, 9, 50.0) ];
  e

(* ---- Value ---- *)

let test_value_arith () =
  check value_testable "int add" (Value.Int 5) (Value.add (Value.Int 2) (Value.Int 3));
  check value_testable "mixed mul" (Value.Float 7.5)
    (Value.mul (Value.Int 3) (Value.Float 2.5));
  check value_testable "null propagates" Value.Null
    (Value.add Value.Null (Value.Int 1));
  check value_testable "neg" (Value.Float (-2.0)) (Value.neg (Value.Float 2.0));
  check value_testable "int div" (Value.Int 2) (Value.div (Value.Int 5) (Value.Int 2));
  check value_testable "float div" (Value.Float 2.5)
    (Value.div (Value.Float 5.0) (Value.Int 2))

let test_value_errors () =
  Alcotest.check_raises "div by zero" (Value.Type_error "division by zero")
    (fun () -> ignore (Value.div (Value.Int 1) (Value.Int 0)));
  check_bool "string arith raises" true
    (try
       ignore (Value.add (Value.Str "a") (Value.Int 1));
       false
     with Value.Type_error _ -> true)

let test_value_compare () =
  check (Alcotest.option Alcotest.int) "int lt" (Some (-1))
    (Value.compare_sql (Value.Int 1) (Value.Int 2));
  check (Alcotest.option Alcotest.int) "mixed eq" (Some 0)
    (Value.compare_sql (Value.Int 2) (Value.Float 2.0));
  check (Alcotest.option Alcotest.int) "null" None
    (Value.compare_sql Value.Null (Value.Int 1));
  check (Alcotest.option Alcotest.int) "incomparable" None
    (Value.compare_sql (Value.Str "a") (Value.Int 1));
  check (Alcotest.option Alcotest.int) "strings" (Some 1)
    (Value.compare_sql (Value.Str "b") (Value.Str "a"))

let test_value_hash_consistent () =
  check_bool "int/float equal hash equal" true
    (Value.hash (Value.Int 5) = Value.hash (Value.Float 5.0));
  check_bool "distinct ints distinct hashes" true
    (Value.hash (Value.Int 5) <> Value.hash (Value.Int 6))

let test_value_conforms () =
  check_bool "null conforms anywhere" true (Value.conforms Value.Null Value.TStr);
  check_bool "int conforms" true (Value.conforms (Value.Int 1) Value.TInt);
  check_bool "mismatch" false (Value.conforms (Value.Int 1) Value.TStr)

(* ---- Schema ---- *)

let test_schema_lookup () =
  check_int "index_of" 1 (Schema.index_of emp_schema "e_dept");
  check_bool "mem" true (Schema.mem emp_schema "e_salary");
  check_bool "not mem" false (Schema.mem emp_schema "nope");
  Alcotest.check_raises "unknown" (Schema.Unknown_column "nope") (fun () ->
      ignore (Schema.index_of emp_schema "nope"))

let test_schema_duplicate () =
  check_bool "duplicate rejected" true
    (try
       ignore
         (Schema.make
            [ { Schema.name = "x"; ty = Value.TInt };
              { Schema.name = "x"; ty = Value.TInt } ]);
       false
     with Invalid_argument _ -> true)

let test_schema_concat_project () =
  let c = Schema.concat dept_schema emp_schema in
  check_int "arity" 5 (Schema.arity c);
  check Alcotest.string "order preserved" "e_id" (Schema.column_name c 2);
  let p = Schema.project emp_schema [ "e_salary"; "e_id" ] in
  check_int "projected arity" 2 (Schema.arity p);
  check Alcotest.string "projection order" "e_salary" (Schema.column_name p 0)

let test_schema_check_tuple () =
  Schema.check_tuple dept_schema [| Value.Int 1; Value.Str "x" |];
  Schema.check_tuple dept_schema [| Value.Null; Value.Null |];
  check_bool "wrong arity" true
    (try Schema.check_tuple dept_schema [| Value.Int 1 |]; false
     with Invalid_argument _ -> true);
  check_bool "wrong type" true
    (try Schema.check_tuple dept_schema [| Value.Str "x"; Value.Str "y" |]; false
     with Value.Type_error _ -> true)

(* ---- Lineage ---- *)

let test_lineage_schema () =
  let a = Lineage.schema_of "r" and b = Lineage.schema_of "s" in
  let c = Lineage.schema_concat a b in
  check_int "length" 2 (Array.length c);
  check_bool "equal" true (Lineage.schema_equal c [| "r"; "s" |]);
  Alcotest.check_raises "overlap" (Lineage.Overlap "r") (fun () ->
      ignore (Lineage.schema_concat c (Lineage.schema_of "r")))

let test_lineage_common () =
  let t = Gus_util.Subset.elements (Lineage.common [| 1; 2; 3 |] [| 1; 9; 3 |]) in
  check (Alcotest.list Alcotest.int) "common slots" [ 0; 2 ] t;
  check_bool "mismatched lengths raise" true
    (try ignore (Lineage.common [| 1 |] [| 1; 2 |]); false
     with Invalid_argument _ -> true)

let test_lineage_restrict () =
  check (Alcotest.list Alcotest.int) "restrict" [ 5; 7 ]
    (Array.to_list (Lineage.restrict [| 5; 6; 7 |] ~positions:[ 0; 2 ]))

(* ---- Relation ---- *)

let test_relation_base () =
  let d = make_dept () in
  check_int "cardinality" 3 (Relation.cardinality d);
  let t = Relation.tuple d 1 in
  check (Alcotest.list Alcotest.int) "lineage is row id" [ 1 ]
    (Array.to_list t.Tuple.lineage);
  close "sum over int col" 6.0 (Relation.sum_column d "d_id")

let test_relation_derived_guard () =
  let r = Relation.derived dept_schema [| "a"; "b" |] in
  check_bool "append_row rejected on derived" true
    (try Relation.append_row r [| Value.Int 1; Value.Str "x" |]; false
     with Invalid_argument _ -> true)

let test_relation_column_values () =
  let d = make_dept () in
  check (Alcotest.list value_testable) "column"
    [ Value.Str "eng"; Value.Str "sales"; Value.Str "hr" ]
    (Array.to_list (Relation.column_values d "d_name"))

(* ---- Expr ---- *)

let test_expr_eval () =
  let e = make_emp () in
  let f = Expr.(col "e_salary" * float 2.0) in
  let ev = Expr.bind e.Relation.schema f in
  check value_testable "eval" (Value.Float 200.0) (ev (Relation.tuple e 0))

let test_expr_predicate () =
  let e = make_emp () in
  let p = Expr.(col "e_salary" > float 95.0 && col "e_dept" = int 1) in
  let keep = Expr.bind_predicate e.Relation.schema p in
  check_bool "row0" true (keep (Relation.tuple e 0));
  check_bool "row3 (sales 95)" false (keep (Relation.tuple e 3))

let test_expr_three_valued () =
  let schema = Schema.make [ { Schema.name = "x"; ty = Value.TInt } ] in
  let tup = Tuple.make [| Value.Null |] [| 0 |] in
  let ev e = Expr.bind schema e tup in
  check value_testable "null cmp" Value.Null Expr.(ev (col "x" = int 1));
  check value_testable "null AND false" (Value.Bool false)
    (ev (Expr.And (Expr.Cmp (Expr.Eq, Expr.col "x", Expr.int 1), Expr.bool false)));
  check value_testable "null OR true" (Value.Bool true)
    (ev (Expr.Or (Expr.Cmp (Expr.Eq, Expr.col "x", Expr.int 1), Expr.bool true)));
  check value_testable "not null" Value.Null
    (ev (Expr.Not (Expr.Cmp (Expr.Eq, Expr.col "x", Expr.int 1))));
  (* WHERE semantics: Null does not pass *)
  check_bool "null fails predicate" false
    (Expr.bind_predicate schema Expr.(col "x" = int 1) tup)

let test_expr_bind_error () =
  let e = make_emp () in
  check_bool "unknown column" true
    (try
       let (_ : Gus_relational.Tuple.t -> Value.t) =
         Expr.bind e.Relation.schema (Expr.col "zzz")
       in
       false
     with Expr.Bind_error _ -> true)

let test_expr_columns () =
  let f = Expr.(col "a" + (col "b" * col "a")) in
  check (Alcotest.list Alcotest.string) "columns dedup ordered" [ "a"; "b" ]
    (Expr.columns f)

let test_expr_bind_float () =
  let schema = Schema.make [ { Schema.name = "x"; ty = Value.TFloat } ] in
  let ev = Expr.bind_float schema (Expr.col "x") in
  close "float" 2.5 (ev (Tuple.make [| Value.Float 2.5 |] [| 0 |]));
  close "null -> 0" 0.0 (ev (Tuple.make [| Value.Null |] [| 0 |]))

let test_expr_pp () =
  check Alcotest.string "render" "((a + 1) * b)"
    (Expr.to_string Expr.((col "a" + int 1) * col "b"))

(* ---- Ops ---- *)

let test_select () =
  let e = make_emp () in
  let r = Ops.select Expr.(col "e_salary" >= float 95.0) e in
  check_int "selected" 3 (Relation.cardinality r);
  (* lineage preserved *)
  let t = Relation.tuple r 0 in
  check (Alcotest.list Alcotest.int) "lineage" [ 0 ] (Array.to_list t.Tuple.lineage)

let test_project () =
  let e = make_emp () in
  let r = Ops.project [ ("double", Expr.(col "e_salary" * float 2.0)) ] e in
  check_int "arity" 1 (Schema.arity r.Relation.schema);
  check value_testable "value" (Value.Float 200.0) (Tuple.value (Relation.tuple r 0) 0);
  check_int "rows" 5 (Relation.cardinality r)

let test_cross () =
  let d = make_dept () and e = make_emp () in
  let r = Ops.cross d e in
  check_int "cardinality" 15 (Relation.cardinality r);
  check_int "arity" 5 (Schema.arity r.Relation.schema);
  check_bool "lineage schema" true
    (Lineage.schema_equal r.Relation.lineage_schema [| "dept"; "emp" |])

let test_equi_join_vs_theta () =
  let d = make_dept () and e = make_emp () in
  let hash =
    Ops.equi_join ~left_key:(Expr.col "d_id") ~right_key:(Expr.col "e_dept") d e
  in
  let nested = Ops.theta_join Expr.(col "d_id" = col "e_dept") d e in
  check_int "4 matches (emp 14 dangles)" 4 (Relation.cardinality hash);
  check_int "same as nested loops" (Relation.cardinality nested)
    (Relation.cardinality hash);
  (* join output lineage = (dept row, emp row) pairs; compare as sets *)
  let lineages rel =
    List.sort compare
      (Relation.fold (fun acc t -> Array.to_list t.Tuple.lineage :: acc) [] rel)
  in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "same lineages"
    (lineages nested) (lineages hash)

let test_join_null_keys () =
  let s = Schema.make [ { Schema.name = "k"; ty = Value.TInt } ] in
  let a = Relation.create_base ~name:"a" s in
  Relation.append_row a [| Value.Null |];
  Relation.append_row a [| Value.Int 1 |];
  let s2 = Schema.make [ { Schema.name = "k2"; ty = Value.TInt } ] in
  let b = Relation.create_base ~name:"b" s2 in
  Relation.append_row b [| Value.Null |];
  Relation.append_row b [| Value.Int 1 |];
  let j = Ops.equi_join ~left_key:(Expr.col "k") ~right_key:(Expr.col "k2") a b in
  check_int "nulls never match" 1 (Relation.cardinality j)

let test_union_all_and_lineage () =
  let e1 = make_emp () and e2 = make_emp () in
  let all = Ops.union_all e1 e2 in
  check_int "union_all keeps duplicates" 10 (Relation.cardinality all);
  let dedup = Ops.union_lineage e1 e2 in
  check_int "union_lineage dedups" 5 (Relation.cardinality dedup)

let test_union_shape_mismatch () =
  let d = make_dept () and e = make_emp () in
  check_bool "mismatch rejected" true
    (try ignore (Ops.union_all d e); false with Invalid_argument _ -> true)

let test_distinct () =
  let s = Schema.make [ { Schema.name = "x"; ty = Value.TInt } ] in
  let r = Relation.create_base ~name:"r" s in
  List.iter (fun v -> Relation.append_row r [| Value.Int v |]) [ 1; 2; 1; 3; 2 ];
  check_int "distinct" 3 (Relation.cardinality (Ops.distinct r))

let test_aggregates () =
  let e = make_emp () in
  close "sum" 455.0 (Ops.aggregate (Ops.Sum (Expr.col "e_salary")) e);
  close "count" 5.0 (Ops.aggregate Ops.Count e);
  close "avg" 91.0 (Ops.aggregate (Ops.Avg (Expr.col "e_salary")) e);
  close "min" 50.0 (Ops.aggregate (Ops.Min (Expr.col "e_salary")) e);
  close "max" 120.0 (Ops.aggregate (Ops.Max (Expr.col "e_salary")) e)

let test_aggregate_empty () =
  let e = Relation.create_base ~name:"emp" emp_schema in
  close "sum of empty" 0.0 (Ops.aggregate (Ops.Sum (Expr.col "e_salary")) e);
  check_bool "min of empty raises" true
    (try ignore (Ops.aggregate (Ops.Min (Expr.col "e_salary")) e); false
     with Invalid_argument _ -> true)

let test_group_by () =
  let e = make_emp () in
  let g =
    Ops.group_by ~keys:[ Expr.col "e_dept" ]
      ~aggs:[ ("total", Ops.Sum (Expr.col "e_salary")); ("n", Ops.Count) ]
      e
  in
  check_int "3 groups" 3 (Relation.cardinality g);
  (* first group is dept 1 (first-seen order) *)
  let t = Relation.tuple g 0 in
  check value_testable "dept key" (Value.Str "1") (Tuple.value t 0);
  check value_testable "dept 1 total" (Value.Float 220.0) (Tuple.value t 1);
  check value_testable "dept 1 count" (Value.Float 2.0) (Tuple.value t 2)

(* ---- Database ---- *)

let test_database () =
  let db = Database.create () in
  Database.add db (make_dept ());
  Database.add db (make_emp ());
  check (Alcotest.list Alcotest.string) "names" [ "dept"; "emp" ] (Database.names db);
  check_int "total rows" 8 (Database.total_rows db);
  check_bool "mem" true (Database.mem db "dept");
  Alcotest.check_raises "unknown" (Database.Unknown_relation "zzz") (fun () ->
      ignore (Database.find db "zzz"));
  check_bool "duplicate add" true
    (try Database.add db (make_dept ()); false with Invalid_argument _ -> true)

(* ---- CSV ---- *)

let test_csv_roundtrip () =
  let e = make_emp () in
  let path = Filename.temp_file "gus_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save ~path e;
      let loaded = Csv.load ~path ~name:"emp" emp_schema in
      check_int "row count" 5 (Relation.cardinality loaded);
      close "sum survives" 455.0 (Relation.sum_column loaded "e_salary"))

let test_csv_malformed () =
  let path = Filename.temp_file "gus_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "1,2\nnot-an-int,3\n";
      close_out oc;
      let schema =
        Schema.make
          [ { Schema.name = "a"; ty = Value.TInt };
            { Schema.name = "b"; ty = Value.TInt } ]
      in
      check_bool "parse error raised" true
        (try ignore (Csv.load ~path ~name:"r" schema); false
         with Failure _ -> true))

let () =
  Alcotest.run "gus_relational"
    [ ( "value",
        [ Alcotest.test_case "arithmetic" `Quick test_value_arith;
          Alcotest.test_case "errors" `Quick test_value_errors;
          Alcotest.test_case "comparison" `Quick test_value_compare;
          Alcotest.test_case "hash consistency" `Quick test_value_hash_consistent;
          Alcotest.test_case "conforms" `Quick test_value_conforms ] );
      ( "schema",
        [ Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "duplicates" `Quick test_schema_duplicate;
          Alcotest.test_case "concat/project" `Quick test_schema_concat_project;
          Alcotest.test_case "check_tuple" `Quick test_schema_check_tuple ] );
      ( "lineage",
        [ Alcotest.test_case "schema ops" `Quick test_lineage_schema;
          Alcotest.test_case "common" `Quick test_lineage_common;
          Alcotest.test_case "restrict" `Quick test_lineage_restrict ] );
      ( "relation",
        [ Alcotest.test_case "base rows" `Quick test_relation_base;
          Alcotest.test_case "derived guard" `Quick test_relation_derived_guard;
          Alcotest.test_case "column_values" `Quick test_relation_column_values ] );
      ( "expr",
        [ Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "predicate" `Quick test_expr_predicate;
          Alcotest.test_case "three-valued logic" `Quick test_expr_three_valued;
          Alcotest.test_case "bind error" `Quick test_expr_bind_error;
          Alcotest.test_case "columns" `Quick test_expr_columns;
          Alcotest.test_case "bind_float" `Quick test_expr_bind_float;
          Alcotest.test_case "pp" `Quick test_expr_pp ] );
      ( "ops",
        [ Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "cross" `Quick test_cross;
          Alcotest.test_case "equi vs theta join" `Quick test_equi_join_vs_theta;
          Alcotest.test_case "null join keys" `Quick test_join_null_keys;
          Alcotest.test_case "union all / lineage" `Quick test_union_all_and_lineage;
          Alcotest.test_case "union shape mismatch" `Quick test_union_shape_mismatch;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "empty aggregates" `Quick test_aggregate_empty;
          Alcotest.test_case "group_by" `Quick test_group_by ] );
      ("database", [ Alcotest.test_case "catalog" `Quick test_database ]);
      ( "csv",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "malformed" `Quick test_csv_malformed ] ) ]
