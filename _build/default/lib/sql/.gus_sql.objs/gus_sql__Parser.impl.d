lib/sql/parser.ml: Ast Expr Float Gus_relational Lexer List Printf Token
