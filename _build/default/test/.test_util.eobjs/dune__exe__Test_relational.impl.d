test/test_relational.ml: Alcotest Array Csv Database Expr Filename Fun Gus_relational Gus_util Lineage List Ops Relation Schema Sys Tuple Value
