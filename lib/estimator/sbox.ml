module Subset = Gus_util.Subset
module Gus = Gus_core.Gus
module Symalg = Gus_core.Symalg
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Interval = Gus_stats.Interval
open Gus_relational

let src = Logs.Src.create "gus.sbox" ~doc:"GUS statistical estimator"

module Log = (val Logs.src_log src : Logs.LOG)

type report = {
  gus : Gus.t;
  n_tuples : int;
  total_f : float;
  estimate : float;
  y_hat : float array;
  variance : float;
  variance_raw : float;
  stddev : float;
}

let y_hat_of_moments ?(skip_mask = 0) ~gus y_raw =
  let n = Gus.n_rels gus in
  let nmasks = Subset.count n in
  if Array.length y_raw <> nmasks then
    invalid_arg "Sbox.y_hat_of_moments: moment array length mismatch";
  let y_hat = Array.make nmasks 0.0 in
  (* Masks in decreasing cardinality order so every Ŷ_{S∪T} we reference is
     already solved. *)
  let masks = Array.init nmasks (fun i -> i) in
  Array.sort (fun s t -> compare (Subset.cardinal t) (Subset.cardinal s)) masks;
  Array.iter
    (fun s ->
      if s land skip_mask <> 0 then
        (* Design-inert mask: its Theorem-1 coefficient is exactly zero
           (verified by {!Gus_analysis.Cost.skip_mask}), so the solved Ŷ
           would be multiplied by 0.0 everywhere it could matter.  The raw
           moment was skipped too, so pin the entry rather than solving
           from a zero. *)
        y_hat.(s) <- 0.0
      else begin
        let d = Gus.d_correction gus ~s in
        let d_ss = d.(Subset.empty) in
        if Float.abs d_ss < 1e-300 then begin
          Log.warn (fun m ->
              m "pair probability b_%s = 0: y_%s is not estimable, using 0"
                (Gus.subset_name gus s) (Gus.subset_name gus s));
          y_hat.(s) <- 0.0
        end
        else begin
          let correction = ref 0.0 in
          let comp = Subset.complement n s in
          Subset.iter_subsets comp (fun t ->
              (* Terms whose union hits the skip-mask have an analytically
                 zero d entry (the pair probabilities factor through the
                 inert relation) and a pinned-zero Ŷ, so dropping them is
                 exact. *)
              if t <> Subset.empty && Subset.union s t land skip_mask = 0 then
                correction := !correction +. (d.(t) *. y_hat.(Subset.union s t)));
          y_hat.(s) <- (y_raw.(s) -. !correction) /. d_ss
        end
      end)
    masks;
  y_hat

let of_pairs ?(skip_mask = 0) ~gus pairs =
  let n = Gus.n_rels gus in
  let y_raw = Moments.of_pairs ~skip_mask ~n_rels:n pairs in
  let y_hat = y_hat_of_moments ~skip_mask ~gus y_raw in
  let total_f = Moments.total pairs in
  let estimate = Gus.scale_up gus total_f in
  let variance_raw = Gus.variance gus ~y:y_hat in
  let variance = Float.max 0.0 variance_raw in
  { gus;
    n_tuples = Array.length pairs;
    total_f;
    estimate;
    y_hat;
    variance;
    variance_raw;
    stddev = sqrt variance }

let check_lineage gus lschema =
  let rels = gus.Gus.rels in
  if
    Array.length rels <> Array.length lschema
    || not (Array.for_all2 String.equal rels lschema)
  then
    invalid_arg
      (Printf.sprintf "Sbox: GUS lineage [%s] does not match relation lineage [%s]"
         (String.concat "," (Array.to_list rels))
         (String.concat "," (Array.to_list lschema)))

let check_schema gus rel = check_lineage gus rel.Relation.lineage_schema

let of_relation ?skip_mask ~gus ~f rel =
  check_schema gus rel;
  of_pairs ?skip_mask ~gus (Moments.pairs_of_relation ~f rel)

let report_of_acc ?pool ~gus acc =
  if Moments.Acc.n_rels acc <> Gus.n_rels gus then
    invalid_arg "Sbox.report_of_acc: accumulator arity does not match GUS";
  let y_raw = Moments.Acc.finalize ?pool acc in
  let y_hat = y_hat_of_moments ~skip_mask:(Moments.Acc.skip_mask acc) ~gus y_raw in
  let total_f = Moments.Acc.total acc in
  let estimate = Gus.scale_up gus total_f in
  let variance_raw = Gus.variance gus ~y:y_hat in
  let variance = Float.max 0.0 variance_raw in
  { gus;
    n_tuples = Moments.Acc.count acc;
    total_f;
    estimate;
    y_hat;
    variance;
    variance_raw;
    stddev = sqrt variance }

let of_plan ?pool ?(skip_mask = 0) ?view ?lineage_width ~gus ~f db rng plan =
  Gus_obs.Trace.span "sbox.of_plan" @@ fun () ->
  let lschema = Splan.lineage_schema plan in
  (match (view, lineage_width) with
  | None, None -> check_lineage gus lschema
  | Some v, Some w ->
      (* Wide plan, small live set: the GUS lives on the projected
         universe; the plan's native lineage is [w] columns wide and the
         view says which of them the GUS's relations are. *)
      if Array.length lschema <> w then
        invalid_arg "Sbox.of_plan: lineage_width does not match the plan";
      check_lineage gus (Array.map (fun i -> lschema.(i)) v)
  | _ -> invalid_arg "Sbox.of_plan: view requires lineage_width");
  let n = Gus.n_rels gus in
  let init schema =
    let eval = Expr.bind_float schema f in
    (Moments.Acc.create ~skip_mask ?view ?lineage_width ~n_rels:n (), eval)
  in
  let feed (acc, eval) tup =
    Moments.Acc.add acc tup.Tuple.lineage (eval tup);
    (acc, eval)
  in
  let acc, _ =
    match pool with
    | Some _ ->
        Splan.fold_stream_par ?pool db rng plan ~init ~f:feed
          ~merge:(fun (a, e) (b, _) ->
            Moments.Acc.merge a b;
            (a, e))
    | None -> Splan.fold_stream db rng plan ~init ~f:feed
  in
  Gus_obs.Trace.span "sbox.report_of_acc"
    ~args:(fun () ->
      [ ("tuples", string_of_int (Moments.Acc.count acc)) ])
    (fun () -> report_of_acc ?pool ~gus acc)

let interval ?(coverage = 0.95) method_ report =
  Interval.make ~method_ ~coverage ~estimate:report.estimate ~stddev:report.stddev

let quantile report q =
  Interval.quantile_bound ~estimate:report.estimate ~stddev:report.stddev q

let subsampled ~gus ~f ~target ~seed rel =
  check_schema gus rel;
  let rels = gus.Gus.rels in
  let n = Array.length rels in
  let current = Relation.cardinality rel in
  let rate = Gus_sampling.Subsample.plan_rates ~target ~current ~ndims:n in
  let dims =
    Array.to_list
      (Array.mapi
         (fun i r ->
           { Gus_sampling.Subsample.relation = r; seed = seed + (1000003 * i); p = rate })
         rels)
  in
  let sub = Gus_sampling.Subsample.apply dims rel in
  (* Prop 9: the subsampler is the composition of per-relation Bernoullis;
     Prop 8: it stacks onto the plan's GUS. *)
  let g_sub =
    Array.fold_left
      (fun acc r ->
        let g = Gus.bernoulli ~rel:r rate in
        match acc with None -> Some g | Some a -> Some (Gus.join a g))
      None rels
  in
  let g_stacked =
    match g_sub with None -> gus | Some g -> Gus.compact g gus
  in
  let y_raw_sub = Moments.of_relation ~f sub in
  let y_hat = y_hat_of_moments ~gus:g_stacked y_raw_sub in
  (* Estimate from the *full* sample; only the moments come from the
     subsample. *)
  let pairs = Moments.pairs_of_relation ~f rel in
  let total_f = Moments.total pairs in
  let estimate = Gus.scale_up gus total_f in
  let variance_raw = Gus.variance gus ~y:y_hat in
  let variance = Float.max 0.0 variance_raw in
  { gus;
    n_tuples = Relation.cardinality sub;
    total_f;
    estimate;
    y_hat;
    variance;
    variance_raw;
    stddev = sqrt variance }

let stream ?(seed = 42) ?pool db plan ~f =
  let rng = Gus_util.Rng.create seed in
  let analysis =
    Gus_obs.Trace.span "sbox.analyze" (fun () -> Rewrite.analyze_db db plan)
  in
  let sym = analysis.Rewrite.sym in
  let n = Symalg.n_rels sym in
  let live = Symalg.live_mask sym in
  let k = Subset.cardinal live in
  (* Routing: narrow plans keep the historical dense path bit-for-bit.
     Wider plans with a small live set project the symbolic design onto
     its live relations and run 2^k moment passes over the native
     n-column lineages through a view — the accumulator otherwise keeps
     2^n group tables, which is prohibitive long before the dense
     representation itself gives out at [Subset.max_universe].  The dead
     relations' Theorem-1 coefficients are structural zeros, so the
     estimate and variance are exactly what the dense run would
     produce. *)
  let narrow_limit = 14 in
  let report =
    if n <= narrow_limit then begin
      let gus = Rewrite.dense analysis in
      let skip_mask = Gus_analysis.Cost.skip_mask gus in
      of_plan ?pool ~skip_mask ~gus ~f db rng plan
    end
    else if k <= Subset.max_universe then begin
      let view = Array.of_list (Subset.elements live) in
      let gus = Symalg.to_gus (Symalg.project sym live) in
      of_plan ?pool ~view ~lineage_width:n ~gus ~f db rng plan
    end
    else if n <= Subset.max_universe then begin
      (* Dense-representable but nearly all relations live: the view
         buys nothing, fall back to the historical path. *)
      let gus = Rewrite.dense analysis in
      let skip_mask = Gus_analysis.Cost.skip_mask gus in
      of_plan ?pool ~skip_mask ~gus ~f db rng plan
    end
    else
      raise
        (Rewrite.Unsupported
           (Printf.sprintf
              "plan spans %d relations with %d carrying sampling \
               randomness: estimation needs 2^%d moment passes, above \
               the 2^%d limit"
              n k k Subset.max_universe))
  in
  (report, analysis)

(* [run] used to materialize the result relation, turn it into a pairs
   array and hand that to the batch kernel; for an estimation-only query
   all of that is scaffolding, so it now folds the same tuples (same seed,
   same draws — [fold_stream] is RNG-faithful) straight into an
   accumulator.  [estimate]/[total_f]/[n_tuples] are bit-identical to the
   materializing path; the moment sums may differ in final bits because
   group-reduction order changed. *)
let run ?seed db plan ~f = stream ?seed db plan ~f

let covariance ~gus ~f ~g rel =
  check_schema gus rel;
  let y_raw = Moments.bilinear_of_relation ~f ~g rel in
  (* The Ŷ correction is linear in the moments, so it applies verbatim to
     the bilinear ones. *)
  let y_hat = y_hat_of_moments ~gus y_raw in
  Gus.variance gus ~y:y_hat

type ratio_report = {
  ratio_estimate : float;
  ratio_variance : float;
  ratio_stddev : float;
  numerator : report;
  denominator : report;
}

let ratio ~gus ~f ~g rel =
  let numerator = of_relation ~gus ~f rel in
  let denominator = of_relation ~gus ~f:g rel in
  if denominator.estimate = 0.0 then
    invalid_arg "Sbox.ratio: denominator estimate is zero";
  let r = numerator.estimate /. denominator.estimate in
  let cov = covariance ~gus ~f ~g rel in
  let mu_g2 = denominator.estimate *. denominator.estimate in
  let v =
    (numerator.variance_raw -. (2.0 *. r *. cov)
    +. (r *. r *. denominator.variance_raw))
    /. mu_g2
  in
  let ratio_variance = Float.max 0.0 v in
  { ratio_estimate = r;
    ratio_variance;
    ratio_stddev = sqrt ratio_variance;
    numerator;
    denominator }

let avg ~gus ~f rel = ratio ~gus ~f ~g:(Expr.float 1.0) rel

type multi_report = {
  labels : string array;
  reports : report array;
  cov : float array array;
}

let multi ~gus ~fs rel =
  check_schema gus rel;
  let labels = Array.of_list (List.map fst fs) in
  let exprs = Array.of_list (List.map snd fs) in
  let k = Array.length exprs in
  let reports = Array.map (fun f -> of_relation ~gus ~f rel) exprs in
  let cov = Array.make_matrix k k 0.0 in
  for i = 0 to k - 1 do
    cov.(i).(i) <- reports.(i).variance_raw;
    for j = i + 1 to k - 1 do
      let c = covariance ~gus ~f:exprs.(i) ~g:exprs.(j) rel in
      cov.(i).(j) <- c;
      cov.(j).(i) <- c
    done
  done;
  { labels; reports; cov }

let linear_combination m w =
  let k = Array.length m.reports in
  if Array.length w <> k then
    invalid_arg "Sbox.linear_combination: weight vector length mismatch";
  let estimate = ref 0.0 in
  Array.iteri (fun i wi -> estimate := !estimate +. (wi *. m.reports.(i).estimate)) w;
  let variance = ref 0.0 in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      variance := !variance +. (w.(i) *. w.(j) *. m.cov.(i).(j))
    done
  done;
  (!estimate, sqrt (Float.max 0.0 !variance))

let exact db plan ~f =
  let rel = Splan.exec_exact db plan in
  let eval = Expr.bind_float rel.Relation.schema f in
  Relation.fold (fun acc tup -> acc +. eval tup) 0.0 rel
