lib/estimator/moments.mli: Gus_relational
