module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Gus = Gus_core.Gus
module Sbox = Gus_estimator.Sbox
module Moments = Gus_estimator.Moments
module Summary = Gus_stats.Summary
module Tablefmt = Gus_util.Tablefmt

let run_correction ?(scale = 1.0) ?(trials = 150) () =
  Harness.section "A1"
    "Ablation: unbiased Y-hat correction vs raw sample moments";
  let db = Harness.db_cached ~scale in
  let f = Harness.revenue_f in
  let t =
    Tablefmt.create
      ~headers:
        [ "lineitem %"; "exact var"; "corrected/exact"; "naive/exact" ]
  in
  List.iter
    (fun p ->
      let plan = Harness.join2_plan ~p_lineitem:p ~p_orders:0.3 in
      let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
      let full = Splan.exec_exact db plan in
      let exact_var = Gus.variance gus ~y:(Moments.of_relation ~f full) in
      let corrected = Summary.create () and naive = Summary.create () in
      for tr = 1 to trials do
        let sample = Splan.exec db (Gus_util.Rng.create (555 + tr)) plan in
        let r = Sbox.of_relation ~gus ~f sample in
        Summary.add corrected r.Sbox.variance_raw;
        (* Naive: plug the raw sample moments straight into Theorem 1. *)
        let y_raw = Moments.of_relation ~f sample in
        Summary.add naive (Gus.variance gus ~y:y_raw)
      done;
      Tablefmt.add_row t
        [ Printf.sprintf "%.0f" (100.0 *. p);
          Harness.fcell exact_var;
          Printf.sprintf "%.3f" (Summary.mean corrected /. exact_var);
          Printf.sprintf "%.3f" (Summary.mean naive /. exact_var) ])
    [ 0.02; 0.05; 0.10; 0.25 ];
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: corrected ratio ~ 1 at every rate; the naive ratio \
     collapses toward the squared sampling rate at small samples (raw Y_S \
     moments are far too small).\n"

let run_target_sweep ?(scale = 3.0) ?(trials = 10) () =
  Harness.section "A2" "Ablation: subsample target size (Section 7's 10k rule)";
  let db = Harness.db_cached ~scale in
  let plan = Harness.join2_plan ~p_lineitem:0.4 ~p_orders:0.5 in
  let f = Harness.revenue_f in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let t =
    Tablefmt.create
      ~headers:
        [ "target"; "mean |width ratio - 1|"; "worst"; "moment time (ms)" ]
  in
  let targets = [ 250; 1000; 4000; 10000; 40000 ] in
  List.iter
    (fun target ->
      let dev = Summary.create () in
      let times = Summary.create () in
      let worst = ref 0.0 in
      for tr = 1 to trials do
        let sample = Splan.exec db (Gus_util.Rng.create (777 + tr)) plan in
        let full = Sbox.of_relation ~gus ~f sample in
        let sub, dt =
          Harness.time (fun () ->
              Sbox.subsampled ~gus ~f ~target ~seed:(33 + tr) sample)
        in
        if full.Sbox.stddev > 0.0 then begin
          let d = Float.abs ((sub.Sbox.stddev /. full.Sbox.stddev) -. 1.0) in
          Summary.add dev d;
          if d > !worst then worst := d
        end;
        Summary.add times (1000.0 *. dt)
      done;
      Tablefmt.add_row t
        [ string_of_int target;
          Printf.sprintf "%.3f" (Summary.mean dev);
          Printf.sprintf "%.3f" !worst;
          Printf.sprintf "%.1f" (Summary.mean times) ])
    targets;
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: width distortion falls with the target while time \
     rises; ~10k is already within a few percent of the full-sample \
     interval (the paper's rule of thumb).\n"
