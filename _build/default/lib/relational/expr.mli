(** Scalar expressions over tuples: column references, literals, arithmetic,
    comparisons, boolean connectives.

    Expressions are written against column names and {e bound} to a schema
    once, yielding a closure that evaluates per tuple without name lookups
    (queries run over millions of tuples in the experiments). *)

type binop = Add | Sub | Mul | Div
type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Lit of Value.t
  | Neg of t
  | Bin of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t

val col : string -> t
val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
val null : t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t

exception Bind_error of string

val bind : Schema.t -> t -> Tuple.t -> Value.t
(** Resolve column names against the schema; raises {!Bind_error} on an
    unknown column.  Comparison on [Null] yields [Null]; [And]/[Or] use SQL
    three-valued logic. *)

val bind_predicate : Schema.t -> t -> Tuple.t -> bool
(** Like {!bind} but coerces the result to a filter decision: only [Bool
    true] passes ([Null] does not, as in SQL WHERE). *)

val bind_float : Schema.t -> t -> Tuple.t -> float
(** Numeric result, [Null] mapped to 0 (SUM semantics). *)

val columns : t -> string list
(** Distinct column names referenced, in first-occurrence order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
