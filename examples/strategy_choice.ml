(* Choosing sampling parameters (paper Section 8): given ONE pilot sample,
   the unbiased Y-hat moments predict the variance of any other GUS design
   on the same query - so you can pick the cheapest design that meets an
   accuracy target without running any of the candidates.

   Run with:  dune exec examples/strategy_choice.exe *)

module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Gus = Gus_core.Gus
module Sbox = Gus_estimator.Sbox
module Sampler = Gus_sampling.Sampler
open Gus_relational

let () =
  let db = Gus_tpch.Tpch.generate ~seed:11 ~scale:1.0 () in
  let f = Expr.(col "l_extendedprice" * (float 1.0 - col "l_discount")) in
  (* Pilot: a generous sample, taken once. *)
  let pilot =
    Splan.equi_join
      (Splan.sample (Sampler.Bernoulli 0.3) (Splan.scan "lineitem"))
      (Splan.sample (Sampler.Bernoulli 0.5) (Splan.scan "orders"))
      ~on:("l_orderkey", "o_orderkey")
  in
  let report, analysis = Sbox.run ~seed:17 db pilot ~f in
  Printf.printf "pilot sample: %d result tuples; estimate %.4g (sd %.3g)\n\n"
    report.Sbox.n_tuples report.Sbox.estimate report.Sbox.stddev;
  ignore analysis;
  let y_hat = report.Sbox.y_hat in
  (* Candidate designs, costed by expected rows read. *)
  let li = Relation.cardinality (Database.find db "lineitem") in
  let od = Relation.cardinality (Database.find db "orders") in
  let candidates =
    [ ("Bernoulli 2% x 20%", 0.02, 0.20);
      ("Bernoulli 5% x 10%", 0.05, 0.10);
      ("Bernoulli 5% x 50%", 0.05, 0.50);
      ("Bernoulli 10% x 20%", 0.10, 0.20);
      ("Bernoulli 20% x 50%", 0.20, 0.50) ]
  in
  Printf.printf "%-22s %14s %14s\n" "candidate" "rows read" "predicted sd";
  let target = report.Sbox.estimate *. 0.05 in
  List.iter
    (fun (name, p1, p2) ->
      let g =
        Gus.join (Gus.bernoulli ~rel:"lineitem" p1) (Gus.bernoulli ~rel:"orders" p2)
      in
      let sd = sqrt (Float.max 0.0 (Gus.variance g ~y:y_hat)) in
      let cost = (float_of_int li *. p1) +. (float_of_int od *. p2) in
      Printf.printf "%-22s %14.0f %14.4g%s\n" name cost sd
        (if sd <= target then "   <- meets 5% target" else ""))
    candidates;
  Printf.printf
    "\n(predicted sd computed by plugging each design's c_S coefficients \
     into Theorem 1 with the pilot's Y-hat moments; no candidate was \
     executed.)\n"
