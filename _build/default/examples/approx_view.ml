(* The paper's introduction, verbatim: an APPROX view that returns
   [0.05, 0.95] quantile bounds for an aggregate over TABLESAMPLEd tables,
   through the SQL frontend.

   Run with:  dune exec examples/approx_view.exe *)

let sql =
  "CREATE VIEW approx (lo, hi) AS\n\
   SELECT QUANTILE(SUM(l_discount * (1.0 - l_tax)), 0.05) AS lo,\n\
  \       QUANTILE(SUM(l_discount * (1.0 - l_tax)), 0.95) AS hi\n\
   FROM lineitem TABLESAMPLE (10 PERCENT),\n\
  \     orders TABLESAMPLE (1000 ROWS)\n\
   WHERE l_orderkey = o_orderkey AND\n\
  \      l_extendedprice > 100.0;"

let () =
  let db = Gus_tpch.Tpch.generate ~seed:3 ~scale:1.0 () in
  print_endline "query:";
  print_endline sql;
  print_newline ();
  let result = Gus_sql.Runner.run ~seed:13 db sql in
  let lo, hi =
    match result.Gus_sql.Runner.cells with
    | [ lo; hi ] -> (lo.Gus_sql.Runner.value, hi.Gus_sql.Runner.value)
    | _ -> assert false
  in
  Printf.printf "APPROX view: lo = %.6g, hi = %.6g\n" lo hi;
  Printf.printf "(5%% chance the true answer is below lo, 95%% below hi)\n\n";
  let truth =
    List.assoc "lo"
      (Gus_sql.Runner.run_exact db sql)
  in
  Printf.printf "true answer: %.6g  -> inside [lo, hi]: %b\n" truth
    (lo <= truth && truth <= hi)
