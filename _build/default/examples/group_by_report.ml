(* A grouped approximate report through the SQL frontend: per-group
   estimates each carry their own confidence interval, because group
   membership is a selection on tuple content and selections commute with
   the GUS operator (Prop 5).

   Run with:  dune exec examples/group_by_report.exe *)

module Runner = Gus_sql.Runner

let sql =
  "SELECT SUM(l_extendedprice * (1.0 - l_discount)) AS revenue, \
          COUNT(*) AS items, AVG(l_quantity) AS avg_qty \
   FROM lineitem TABLESAMPLE (15 PERCENT), orders TABLESAMPLE (30 PERCENT) \
   WHERE l_orderkey = o_orderkey \
   GROUP BY l_returnflag"

let () =
  let db = Gus_tpch.Tpch.generate ~seed:19 ~scale:1.0 () in
  print_endline "query:";
  print_endline sql;
  print_newline ();
  let result = Runner.run ~seed:23 db sql in
  let exact = Runner.run_exact_groups db sql in
  Printf.printf "%-6s %-9s %14s %22s %14s\n" "flag" "metric" "estimate"
    "95% interval" "exact";
  List.iter
    (fun g ->
      let truths = List.assoc g.Runner.keys exact in
      List.iter
        (fun c ->
          let ci = c.Runner.ci95_normal in
          Printf.printf "%-6s %-9s %14.4g [%9.4g, %9.4g] %14.4g\n"
            (String.concat "," g.Runner.keys)
            c.Runner.label c.Runner.value ci.Gus_stats.Interval.lo
            ci.Gus_stats.Interval.hi
            (List.assoc c.Runner.label truths))
        g.Runner.group_cells)
    result.Runner.groups;
  Printf.printf
    "\n(%d result tuples sampled; groups never seen in the sample would be \
     missing from the report - the usual small-group caveat of AQP.)\n"
    result.Runner.n_sample_tuples
