(* Sampling-driven join ordering (paper Section 8, "estimating the size of
   intermediate relations"): cost every left-deep order of a 3-way join
   from ONE set of pilot samples, with a confidence interval on every
   predicted intermediate - so the optimizer knows when its cardinality
   estimates cannot be trusted.

   Run with:  dune exec examples/join_order.exe *)

module Advisor = Gus_estimator.Advisor
module Interval = Gus_stats.Interval
open Gus_relational

let () =
  let db = Gus_tpch.Tpch.generate ~seed:41 ~scale:0.3 () in
  let graph =
    { Advisor.relations = [ "lineitem"; "orders"; "customer" ];
      predicates =
        [ ("lineitem", "orders", Expr.col "l_orderkey", Expr.col "o_orderkey");
          ("orders", "customer", Expr.col "o_custkey", Expr.col "c_custkey") ] }
  in
  Printf.printf
    "costing all %d left-deep orders of lineitem |X| orders |X| customer \
     from one 5%% pilot sample per table...\n\n"
    6;
  let ranked = Advisor.advise ~rate:0.05 ~seed:3 db graph in
  Printf.printf "%-32s %9s %8s  %s\n" "order" "est.cost" "crosses"
    "per-prefix predictions";
  List.iter
    (fun r ->
      let prefix_info =
        String.concat "  "
          (List.map
             (fun p ->
               Printf.sprintf "+%s: %.0f [%.0f, %.0f]" p.Advisor.after_joining
                 p.Advisor.size p.Advisor.interval.Interval.lo
                 p.Advisor.interval.Interval.hi)
             r.Advisor.prefixes)
      in
      Printf.printf "%-32s %9.0f %8d  %s\n"
        (String.concat " > " r.Advisor.order)
        r.Advisor.cost r.Advisor.cross_products prefix_info)
    ranked;
  let best = List.hd ranked in
  Printf.printf "\nchosen order: %s\n" (String.concat " > " best.Advisor.order);
  Format.printf "its plan:@.%a"
    Gus_core.Splan.pp_tree
    (Advisor.plan_of_order graph best.Advisor.order)
