module Rng = Gus_util.Rng
module Hashing = Gus_util.Hashing
module Pool = Gus_util.Pool
module Vec = Gus_util.Vec
open Gus_relational

type t =
  | Bernoulli of float
  | Wor of int
  | Wr of int
  | Block of { rows_per_block : int; p : float }
  | Hash_bernoulli of { seed : int; p : float }

let pp ppf = function
  | Bernoulli p -> Format.fprintf ppf "Bernoulli(%g)" p
  | Wor n -> Format.fprintf ppf "WOR(%d)" n
  | Wr n -> Format.fprintf ppf "WR(%d)" n
  | Block { rows_per_block; p } -> Format.fprintf ppf "Block(%d,%g)" rows_per_block p
  | Hash_bernoulli { seed; p } -> Format.fprintf ppf "HashBernoulli(seed=%d,%g)" seed p

let to_string s = Format.asprintf "%a" pp s

let check_p p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Sampler: probability %g not in [0,1]" p)

let validate = function
  | Bernoulli p -> check_p p
  | Wor n | Wr n ->
      if n < 0 then invalid_arg "Sampler: negative sample size"
  | Block { rows_per_block; p } ->
      if rows_per_block <= 0 then invalid_arg "Sampler: block size must be positive";
      check_p p
  | Hash_bernoulli { p; _ } -> check_p p

let copy_shape ?(suffix = "sample") rel =
  Relation.derived
    ~name:(Printf.sprintf "%s(%s)" suffix rel.Relation.name)
    rel.Relation.schema rel.Relation.lineage_schema

let require_base which rel =
  if Array.length rel.Relation.lineage_schema <> 1 then
    invalid_arg
      (Printf.sprintf "Sampler.apply: %s requires a base relation, got lineage %s"
         which
         (String.concat "," (Array.to_list rel.Relation.lineage_schema)))

let uses_rng = function
  | Bernoulli _ | Wor _ | Wr _ | Block _ -> true
  | Hash_bernoulli _ -> false

let per_tuple = function
  | Bernoulli _ | Hash_bernoulli _ -> true
  | Wor _ | Wr _ | Block _ -> false

(* Row-block grid for the pooled Bernoulli path.  The grid is a property
   of the *input*, not of the pool: block [b] always covers rows
   [b*4096, (b+1)*4096) and always draws from the [b]-th derived child
   stream, so the sample is identical for every pool size. *)
let bernoulli_rows_per_stream = 4096

let sampled_name ?(suffix = "sample") rel =
  Printf.sprintf "%s(%s)" suffix rel.Relation.name

(* Columnar outputs: every sampler below first materializes the kept row
   indices — drawing from the RNG in exactly the order the row path does
   — then gathers data and lineage columns in one pass.  The samples are
   therefore bit-identical to the row path for the same seed; only the
   storage of the result differs. *)

let apply_inner ?pool ?(par_threshold = Pool.default_par_threshold) t rng rel =
  validate t;
  (match t with
  | Block _ -> require_base "block sampling" rel
  | Hash_bernoulli _ -> require_base "hash-Bernoulli sampling" rel
  | Bernoulli _ | Wor _ | Wr _ -> ());
  match (t, Relation.store rel) with
  | Bernoulli p, store -> (
      let n = Relation.cardinality rel in
      match (pool, store) with
      | Some pl, _ when Pool.is_live pl && n >= par_threshold -> (
          (* Block-wise draws: one [Rng.derive]d child stream per fixed
             4096-row block, blocks fanned across lanes and stitched in
             block order.  Deterministic in (seed, input) and independent
             of the lane count — but a *different* sample than the
             sequential single-stream path, which is why the pooled path
             is opt-in per call rather than a drop-in default. *)
          let master = Rng.split rng in
          let nblocks = (n + bernoulli_rows_per_stream - 1) / bernoulli_rows_per_stream in
          match store with
          | Relation.Cols c ->
              let bufs =
                Array.init nblocks (fun b ->
                    let lo = b * bernoulli_rows_per_stream in
                    Array.make (max 1 (min n (lo + bernoulli_rows_per_stream) - lo)) 0)
              in
              let counts = Array.make (max 1 nblocks) 0 in
              Pool.run_chunks pl ~lo:0 ~hi:nblocks (fun blo bhi ->
                  for b = blo to bhi - 1 do
                    let brng = Rng.derive master b in
                    let buf = bufs.(b) in
                    let m = ref 0 in
                    let lo = b * bernoulli_rows_per_stream in
                    let hi = min n (lo + bernoulli_rows_per_stream) in
                    for i = lo to hi - 1 do
                      if Rng.bernoulli brng p then begin
                        buf.(!m) <- i;
                        incr m
                      end
                    done;
                    counts.(b) <- !m
                  done);
              let total = Array.fold_left ( + ) 0 counts in
              let idx = Array.make (max 1 total) 0 in
              let off = ref 0 in
              Array.iteri
                (fun b buf ->
                  Array.blit buf 0 idx !off counts.(b);
                  off := !off + counts.(b))
                bufs;
              Relation.gather_rows ~name:(sampled_name rel) rel c idx total
          | Relation.Rows _ ->
              let out = copy_shape rel in
              let outs = Array.init nblocks (fun _ -> Vec.create ()) in
              Pool.run_chunks pl ~lo:0 ~hi:nblocks (fun blo bhi ->
                  for b = blo to bhi - 1 do
                    let brng = Rng.derive master b in
                    let dst = outs.(b) in
                    let lo = b * bernoulli_rows_per_stream in
                    let hi = min n (lo + bernoulli_rows_per_stream) in
                    for i = lo to hi - 1 do
                      let tup = Relation.tuple rel i in
                      if Rng.bernoulli brng p then Vec.push dst tup
                    done
                  done);
              Array.iter (fun v -> Vec.iter (Relation.append_tuple out) v) outs;
              out)
      | _, Relation.Cols c ->
          let idx = Array.make (max 1 n) 0 in
          let m = ref 0 in
          for i = 0 to n - 1 do
            if Rng.bernoulli rng p then begin
              idx.(!m) <- i;
              incr m
            end
          done;
          Relation.gather_rows ~name:(sampled_name rel) rel c idx !m
      | _, Relation.Rows _ ->
          let out = copy_shape rel in
          Relation.iter
            (fun tup -> if Rng.bernoulli rng p then Relation.append_tuple out tup)
            rel;
          out)
  | Wor n, store -> (
      let card = Relation.cardinality rel in
      let k = min n card in
      let idx = Rng.sample_without_replacement rng k card in
      Array.sort compare idx;
      match store with
      | Relation.Cols c -> Relation.gather_rows ~name:(sampled_name rel) rel c idx k
      | Relation.Rows _ ->
          let out = copy_shape rel in
          Array.iter (fun i -> Relation.append_tuple out (Relation.tuple rel i)) idx;
          out)
  | Wr n, store -> (
      let card = Relation.cardinality rel in
      let idx =
        if card = 0 then [||]
        else begin
          (* Explicit loop: the n draws must come out of [rng] in row
             order, matching the seed path exactly. *)
          let a = Array.make (max 1 n) 0 in
          for j = 0 to n - 1 do
            a.(j) <- Rng.int rng card
          done;
          Array.sub a 0 n
        end
      in
      match store with
      | Relation.Cols c ->
          Relation.gather_rows ~name:(sampled_name rel) rel c idx (Array.length idx)
      | Relation.Rows _ ->
          let out = copy_shape rel in
          Array.iter (fun i -> Relation.append_tuple out (Relation.tuple rel i)) idx;
          out)
  | Block { rows_per_block; p }, store -> (
      (* Lineage is rewritten to block granularity: the filter decision is
         per block, and two rows of one kept block are *not* independent, so
         the GUS analysis must treat the block as the sampled unit. *)
      let card = Relation.cardinality rel in
      let nblocks = (card + rows_per_block - 1) / rows_per_block in
      let keep = Array.init nblocks (fun _ -> Rng.bernoulli rng p) in
      match store with
      | Relation.Cols c ->
          let idx = Array.make (max 1 card) 0 in
          let blocks = Array.make (max 1 card) 0 in
          let m = ref 0 in
          for i = 0 to card - 1 do
            let block = Relation.lineage_id c ~slot:0 i / rows_per_block in
            if keep.(block) then begin
              idx.(!m) <- i;
              blocks.(!m) <- block;
              incr m
            end
          done;
          let ccols =
            Array.map (fun col -> Column.gather col idx !m) c.Relation.ccols
          in
          let clineage = Relation.Explicit [| Column.of_int_array blocks !m |] in
          Relation.derived_cols
            ~name:(sampled_name ~suffix:"blocksample" rel)
            rel.Relation.schema rel.Relation.lineage_schema
            { Relation.cn = !m; ccols; clineage }
      | Relation.Rows _ ->
          let out = copy_shape ~suffix:"blocksample" rel in
          Relation.iter
            (fun tup ->
              let row = tup.Tuple.lineage.(0) in
              let block = row / rows_per_block in
              if keep.(block) then begin
                let lineage = Array.copy tup.Tuple.lineage in
                lineage.(0) <- block;
                Relation.append_tuple out { tup with Tuple.lineage }
              end)
            rel;
          out)
  | Hash_bernoulli { seed; p }, store -> (
      (* Decisions are a pure function of (seed, lineage id), so the
         chunk-parallel scan is output-identical to the sequential one. *)
      match store with
      | Relation.Cols c ->
          let keep i = Hashing.prf_float ~seed (Relation.lineage_id c ~slot:0 i) < p in
          let idx, count =
            Ops.select_indices ?pool ~par_threshold keep c.Relation.cn
          in
          Relation.gather_rows
            ~name:(sampled_name ~suffix:"hashsample" rel)
            rel c idx count
      | Relation.Rows _ ->
          let out = copy_shape ~suffix:"hashsample" rel in
          Ops.chunked_scan ?pool ~par_threshold rel out (fun push tup ->
              let id = tup.Tuple.lineage.(0) in
              if Hashing.prf_float ~seed id < p then push tup);
          out)

let m_rows_in = Gus_obs.Metrics.counter "sampler.rows_in"
let m_rows_out = Gus_obs.Metrics.counter "sampler.rows_out"
let m_draws = Gus_obs.Metrics.counter "sampler.bernoulli.draws"

let apply ?pool ?par_threshold t rng rel =
  let out = apply_inner ?pool ?par_threshold t rng rel in
  (* Draw counts are derived arithmetically (never by counting inside the
     sampling loops), so instrumentation cannot perturb the RNG stream. *)
  if Gus_obs.Metrics.enabled () then begin
    Gus_obs.Metrics.add m_rows_in (Relation.cardinality rel);
    Gus_obs.Metrics.add m_rows_out (Relation.cardinality out);
    match t with
    | Bernoulli _ -> Gus_obs.Metrics.add m_draws (Relation.cardinality rel)
    | Block { rows_per_block; p = _ } ->
        let card = Relation.cardinality rel in
        Gus_obs.Metrics.add m_draws
          ((card + rows_per_block - 1) / rows_per_block)
    | Wor _ | Wr _ | Hash_bernoulli _ -> ()
  end;
  out

let sampling_fraction t ~n =
  match t with
  | Bernoulli p -> p
  | Wor k | Wr k -> if n = 0 then 0.0 else Float.min 1.0 (float_of_int k /. float_of_int n)
  | Block { p; _ } -> p
  | Hash_bernoulli { p; _ } -> p
