-- Join of a sampled fact table against an unsampled dimension;
-- the orders side carries no randomness, so its Theorem-1
-- coefficient passes are statically skipped (GUS016).
SELECT SUM(l_extendedprice)
FROM lineitem TABLESAMPLE (20 PERCENT), orders
WHERE l_orderkey = o_orderkey;
