test/test_relational.mli:
