lib/online/online.mli: Gus_core Gus_estimator Gus_relational Gus_stats
