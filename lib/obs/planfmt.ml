let pp ?annot ~label ~children ppf root =
  let rec go depth path node =
    let pad = String.make (2 * depth) ' ' in
    let extra =
      match annot with None -> "" | Some f -> f (List.rev path) node
    in
    Format.fprintf ppf "%s%s%s@\n" pad (label node) extra;
    List.iteri (fun i child -> go (depth + 1) (i :: path) child)
      (children node)
  in
  go 0 [] root
