module Runner = Gus_sql.Runner
module Interval = Gus_stats.Interval
module Summary = Gus_stats.Summary
module Tablefmt = Gus_util.Tablefmt

let run ?(scale = 1.0) ?(trials = 60) () =
  Harness.section "E10" "Estimate quality across the TPC-H-derived workload";
  let db = Harness.db_cached ~scale in
  let t =
    Tablefmt.create
      ~headers:
        [ "query"; "shape"; "aggregate"; "truth"; "mean rel.err %"; "coverage" ]
  in
  List.iter
    (fun q ->
      let truths = Runner.run_exact db q.Workload.exact in
      (* Fan the trials out, then fold the per-trial results into the
         per-aggregate accumulators in trial order. *)
      let results =
        Harness.map_trials_par ~pool:(Gus_util.Pool.default ()) ~trials ~seed:131
          (fun _rng tr -> Runner.run ~seed:((tr + 1) * 131) db q.Workload.sampled)
      in
      let errs = List.map (fun _ -> Summary.create ()) truths in
      let hits = Array.make (List.length truths) 0 in
      Array.iter
        (fun result ->
          List.iteri
            (fun i cell ->
              let _, truth = List.nth truths i in
              Summary.add (List.nth errs i)
                (Summary.relative_error ~truth cell.Runner.value);
              if Interval.contains cell.Runner.ci95_normal truth then
                hits.(i) <- hits.(i) + 1)
            result.Runner.cells)
        results;
      List.iteri
        (fun i (label, truth) ->
          Tablefmt.add_row t
            [ (if i = 0 then q.Workload.id else "");
              (if i = 0 then q.Workload.tpch_ancestor ^ "-like" else "");
              label;
              Harness.fcell truth;
              Printf.sprintf "%.2f" (100.0 *. Summary.mean (List.nth errs i));
              Printf.sprintf "%.2f" (float_of_int hits.(i) /. float_of_int trials) ])
        truths;
      Tablefmt.add_sep t)
    Workload.all;
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: single-digit mean relative error at the configured \
     sampling rates and ~0.95 coverage on every query shape (1-4 relations, \
     string/range selections, the skewed part join, AVG and COUNT included).\n"
