(** Generic indented plan-tree rendering.

    Both [gusdb lint]'s annotated plan and [--explain-analyze] print the
    same shape — one node per line, two-space indents, optional trailing
    annotation — so they share this renderer instead of maintaining two
    diverging printers.  The tree type stays abstract ([label] /
    [children] callbacks) because this library sits below the plan AST
    in the dependency order. *)

val pp :
  ?annot:(int list -> 'a -> string) ->
  label:('a -> string) ->
  children:('a -> 'a list) ->
  Format.formatter ->
  'a ->
  unit
(** [pp ?annot ~label ~children ppf root] prints [root]'s subtree, one
    node per line, indented two spaces per depth.  [annot path node]
    (with [path] the root-to-node child-index list, [[]] at the root) is
    appended verbatim to the node's line when non-empty — callers
    include their own leading separator (e.g. ["  <-- GUS001"] or
    [" (time=1.2ms ...)"]).  With no [annot], output is byte-identical
    to the historical [Splan.pp_tree] format. *)
