(** Sampling query plans: relational algebra plus [Sample] nodes.

    This is the AST the user (or the SQL frontend) builds.  It is executed
    directly with the concrete samplers ({!exec}); the statistical analysis
    never executes GUS operators — it rewrites the plan with {!Rewrite}. *)

open Gus_relational

type t =
  | Scan of string
  | Select of Expr.t * t
  | Project of (string * Expr.t) list * t
  | Equi_join of { left : t; right : t; left_key : Expr.t; right_key : Expr.t }
  | Theta_join of Expr.t * t * t
  | Cross of t * t
  | Distinct of t
      (** duplicate elimination by value.  Executable, but {e not}
          analyzable: DISTINCT does not commute with GUS (paper Section 9 —
          its expectation depends on more than pairwise inclusion
          probabilities), so {!Rewrite.analyze} rejects plans that sample
          below a [Distinct]. *)
  | Sample of Gus_sampling.Sampler.t * t
  | Union_samples of t * t
      (** Set union by lineage of two sampled versions of the {e same}
          expression (Prop. 7's use case: reusing two samples).  The
          rewriter checks that both sides strip to the same relational
          skeleton. *)

exception Union_lineage_mismatch of { left : string list; right : string list }
(** Raised by {!lineage_schema} when the two branches of a [Union_samples]
    disagree on their base relations — Prop. 7 requires both samples to be
    drawn from the same expression, so there is no single lineage schema to
    report.  The payload carries both schemas for diagnostics. *)

val scan : string -> t
val select : Expr.t -> t -> t
val equi_join : t -> t -> on:string * string -> t
(** Convenience for a key-equality join on two column names. *)

val sample : Gus_sampling.Sampler.t -> t -> t

val lineage_schema : t -> Lineage.schema
(** Base relations in scope, in plan order.  Raises [Lineage.Overlap] on a
    self-join and {!Union_lineage_mismatch} when the branches of a
    [Union_samples] scan different relations. *)

val strip_samples : t -> t
(** The relational skeleton: every [Sample] removed, [Union_samples]
    collapsed to one branch. *)

val equal : t -> t -> bool
(** Structural equality (expressions compared structurally). *)

val node_label : t -> string
(** The one-line operator head shared by {!pp_tree}, lint's annotated
    plan, and [--explain-analyze] (e.g. ["join l_okey = o_okey"],
    ["Bernoulli(0.1)"]). *)

val exec : ?pool:Gus_util.Pool.t -> Database.t -> Gus_util.Rng.t -> t -> Relation.t
(** Run the plan, sampling with the given RNG.

    [?pool] fans the per-tuple operators (Select, Project, Bernoulli /
    hash-Bernoulli sampling) across a domain pool for inputs of at least
    {!Gus_util.Pool.default_par_threshold} rows.  Select / Project /
    hash-Bernoulli are output-identical to the sequential run; a pooled
    [Bernoulli] switches to block-wise derived RNG streams (see
    {!Gus_sampling.Sampler.apply}), so a seeded run with a pool draws a
    {e different} — still valid, still deterministic, lane-count
    independent — sample than the same seed without one. *)

val exec_exact : Database.t -> t -> Relation.t
(** Run {!strip_samples} — the full, non-approximate answer. *)

type node_profile = {
  np_path : int list;  (** root-to-node child indices, [[]] at the root *)
  np_label : string;  (** {!node_label} of the node *)
  np_wall_ns : int;  (** wall time, inclusive of children *)
  np_rows_in : int;  (** sum of input cardinalities (base size for Scan) *)
  np_rows_out : int;
}

val exec_profiled :
  ?pool:Gus_util.Pool.t ->
  Database.t ->
  Gus_util.Rng.t ->
  t ->
  Relation.t * node_profile list
(** {!exec} recording one {!node_profile} per plan node, for
    [--explain-analyze].  Draw order matches {!exec} exactly, so the same
    seed yields the same sample; profiles are returned in post-order. *)

val fold_stream :
  Database.t ->
  Gus_util.Rng.t ->
  t ->
  init:(Schema.t -> 'acc) ->
  f:('acc -> Tuple.t -> 'acc) ->
  'acc
(** Stream the plan's result tuples through [f] without materializing the
    result relation.  The plan is split into a blocking core (executed
    with {!exec}) and a streamable suffix of per-tuple stages — Select,
    Project, at most one [Bernoulli], any hash-Bernoulli — through which
    core tuples are pushed one at a time.  [init] receives the result
    schema (bind aggregate expressions there) before the first tuple.

    RNG-faithful: the same seed visits exactly the tuples, in exactly the
    order, that [exec] would have produced — the one permitted suffix
    Bernoulli performs the same draws in the same sequence. *)

val fold_stream_par :
  ?pool:Gus_util.Pool.t ->
  Database.t ->
  Gus_util.Rng.t ->
  t ->
  init:(Schema.t -> 'acc) ->
  f:('acc -> Tuple.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  'acc
(** {!fold_stream} with chunk-parallel feeding: when the suffix consumes
    no RNG (pure Select/Project/hash-Bernoulli) and the core output is
    large enough, each pool lane streams one contiguous chunk into its
    own [init]-fresh accumulator and the partials are [merge]d left to
    right in chunk order.  Falls back to the sequential fold otherwise.
    Note [?pool] also reaches the core {!exec}, with the pooled-Bernoulli
    caveat documented there. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering. *)

val pp_tree : Format.formatter -> t -> unit
(** Indented tree rendering, one operator per line (the Figure-4 shape). *)

val relations : t -> string list
(** Distinct base relations scanned, in first-use order. *)

val children : t -> t list
(** Direct sub-plans, left to right (empty for [Scan]). *)

val subtree : t -> int list -> t option
(** [subtree plan path] follows child indices from the root ([[]] is the
    plan itself).  This is how {!Gus_analysis.Diagnostic.t} locators resolve
    back to the offending operator. *)
