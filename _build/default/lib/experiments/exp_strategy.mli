(** E7 — choosing sampling parameters (Section 8): from {e one} observed
    sample, the unbiased Ŷ_S moments let us predict the variance any other
    GUS design would have had on the same query — here validated against
    the Monte-Carlo variance of actually running each candidate design. *)

val run : ?scale:float -> ?trials:int -> unit -> unit
