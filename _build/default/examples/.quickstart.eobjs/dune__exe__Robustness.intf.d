examples/robustness.mli:
