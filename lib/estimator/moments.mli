(** The y_S / Y_S data moments of Theorem 1 (Section 6.3).

    For a subset [S] of the lineage schema,
    [y_S = Σ_{lineage-groups on S} (Σ_{tuples in group} f)²] — a group-by
    on the lineage ids of the relations in [S].  Computed over the full
    query result these are the exact [y_S]; computed over a sample they are
    the raw [Y_S] that the SBox corrects into unbiased [Ŷ_S].

    The group-by passes run on an allocation-free kernel: lineages are
    hashed directly under each subset mask (no restricted key arrays) into
    a reused open-addressing table, and the [2^n_rels − 1] independent
    passes fan out across a {!Gus_util.Pool} domain pool for large inputs.
    [?pool] selects the pool (default: the shared {!Gus_util.Pool.default},
    whose size is the machine's recommended domain count — on single-core
    hosts everything stays sequential).  [?par_threshold] is the tuple
    count below which the passes always run sequentially on the calling
    domain (default 4096).

    {b Skip-masks.}  [?skip_mask] (default 0) is a bitmask of lineage
    positions whose moments are statically known to be unused: every
    subset mask [s] with [s land skip_mask <> 0] is skipped entirely and
    its [y.(s)] left at [0.0].  The static analyzer
    ({!Gus_analysis.Cost.skip_mask}) emits it for relations that carry no
    sampling randomness — their Theorem-1 coefficients are provably (and
    bit-exactly) zero, so skipped moments never contribute.  Non-skipped
    entries are computed by exactly the same code path, hence bit-identical
    to the dense run.

    {b Views.}  [?view] (default: identity) embeds a small [n_rels]-subset
    kernel universe into wider lineage arrays: kernel position [i] reads
    lineage column [view.(i)] (strictly ascending, within
    [?lineage_width], which defaults to [n_rels] and must equal every
    lineage's length).  The symbolic analyzer's live mask turns a
    20-relation plan with 3 sampled relations into a 3-position view —
    [2^3] passes over the native 20-column lineages, past the dense
    [2^n] wall, with each computed entry bit-identical to what the full
    kernel would produce at the embedded mask. *)

val of_pairs :
  ?pool:Gus_util.Pool.t ->
  ?par_threshold:int ->
  ?skip_mask:int ->
  ?view:int array ->
  ?lineage_width:int ->
  n_rels:int ->
  (int array * float) array ->
  float array
(** [(lineage, f)] pairs → the [2^n_rels] moments, indexed by subset mask.
    Every lineage must have length [lineage_width] (default
    [n_rels]). *)

val of_pairs_naive : n_rels:int -> (int array * float) array -> float array
(** Reference implementation of {!of_pairs} (fresh key array per tuple per
    subset, one hashtable per subset).  Kept as the oracle for property
    tests and benchmarks; do not use on hot paths. *)

val of_relation :
  ?pool:Gus_util.Pool.t ->
  f:Gus_relational.Expr.t ->
  Gus_relational.Relation.t ->
  float array
(** Evaluate [f] on every tuple (Null ↦ 0) and delegate to {!of_pairs}
    using the relation's lineage schema. *)

val pairs_of_relation :
  f:Gus_relational.Expr.t -> Gus_relational.Relation.t -> (int array * float) array
(** The SBox input stream of Section 6.2: per-result-tuple lineage and
    aggregate contribution. *)

val total : (int array * float) array -> float
(** Σ f — the quantity the estimate scales up. *)

val bilinear_of_pairs :
  ?pool:Gus_util.Pool.t ->
  ?par_threshold:int ->
  ?skip_mask:int ->
  ?view:int array ->
  ?lineage_width:int ->
  n_rels:int ->
  (int array * float * float) array ->
  float array
(** Cross moments [y^{fg}_S = Σ_{groups on S} (Σ f)(Σ g)] — the bilinear
    generalization used for covariance between two SUM aggregates over the
    same sample (and hence for AVG via the delta method).
    [bilinear_of_pairs] with [f = g] coincides with {!of_pairs}. *)

val bilinear_of_pairs_naive :
  n_rels:int -> (int array * float * float) array -> float array
(** Reference implementation of {!bilinear_of_pairs}; see
    {!of_pairs_naive}. *)

val bilinear_of_relation :
  ?pool:Gus_util.Pool.t ->
  f:Gus_relational.Expr.t ->
  g:Gus_relational.Expr.t ->
  Gus_relational.Relation.t ->
  float array

val default_par_threshold : int
(** Tuple count below which {!of_pairs}/{!bilinear_of_pairs} never
    parallelize (4096). *)

(** Streaming, mergeable moments.

    [Acc.t] folds [(lineage, f)] tuples in one at a time and yields the
    same [2^n_rels] moment vector as {!of_pairs}, without ever holding a
    pairs array: per subset mask it keeps one open-addressing group table
    (restricted lineage key → running Σf), so memory is proportional to
    the number of distinct lineage groups, not tuples.  Two accumulators
    fed disjoint tuple streams {!Acc.merge} into the accumulator for the
    concatenated stream — the basis for chunked / pool-parallel feeding.

    Float caveat: group sums are added in feed order, so a merged
    accumulator agrees with a sequentially fed one only up to float
    reassociation (relative error ~1e-12 on realistic inputs, never
    bit-exact).  Sequential feeding of the same stream is exactly
    deterministic. *)
module Acc : sig
  type t

  val create :
    ?hint:int ->
    ?skip_mask:int ->
    ?view:int array ->
    ?lineage_width:int ->
    n_rels:int ->
    unit ->
    t
  (** [create ~n_rels ()] starts an empty accumulator over [n_rels]
      lineage columns.  [hint] pre-sizes each mask's group table (number
      of expected distinct groups, default 64); tables grow by rehashing
      as needed, so the hint only avoids early rehashes.  [skip_mask]
      masks are never grouped at all — the big streaming win, since
      {!add}'s per-tuple loop drops from [2^n_rels − 1] probes to the
      live masks only.  [view]/[lineage_width] embed a small kernel
      universe into wider lineages exactly as in {!of_pairs}. *)

  val add : t -> int array -> float -> unit
  (** [add t lineage f] folds in one tuple.  The lineage array is read,
      not retained.  Steady-state (no table growth) this allocates
      nothing.  Raises if [Array.length lineage <> n_rels]. *)

  val add_pairs : t -> (int array * float) array -> unit
  (** [Array.iter]-style convenience over {!add}. *)

  val merge : t -> t -> unit
  (** [merge a b] folds [b]'s groups into [a] ([b] is unchanged);
      equivalent to having fed [b]'s stream into [a] after [a]'s own, up
      to float reassociation.  Raises on [n_rels] or skip-mask
      mismatch. *)

  val finalize : ?pool:Gus_util.Pool.t -> t -> float array
  (** The moment vector, indexed by subset mask like {!of_pairs}.  Does
      not consume the accumulator — it can keep absorbing tuples, making
      repeated [finalize] the natural checkpoint primitive for online /
      shedding estimation.  [?pool] fans the per-mask Σ(Σf)² reductions
      across a domain pool (worth it only for many masks). *)

  val count : t -> int
  (** Tuples folded in so far. *)

  val total : t -> float
  (** Σ f so far. *)

  val n_rels : t -> int

  val skip_mask : t -> int
end
