(** E1 — accuracy vs sampling fraction: unbiasedness and relative error of
    the SUM estimate for the Query-1 workload, sweeping the Bernoulli rate
    on lineitem (WOR size on orders scaled proportionally).  The paper's
    qualitative claim: estimates are unbiased at every rate and error
    shrinks roughly as 1/√rate. *)

val run : ?scale:float -> ?trials:int -> unit -> unit
