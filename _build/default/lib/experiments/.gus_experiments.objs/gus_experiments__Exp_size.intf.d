lib/experiments/exp_size.mli:
