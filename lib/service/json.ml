type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ---- *)

let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    (* shortest representation that parses back to the same bits *)
    let s15 = Printf.sprintf "%.15g" v in
    if float_of_string s15 = v then s15
    else
      let s16 = Printf.sprintf "%.16g" v in
      if float_of_string s16 = v then s16 else Printf.sprintf "%.17g" v

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v ->
        Buffer.add_string buf
          (if Float.is_finite v then number_to_string v else "null")
    | Str s -> escape_to buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_to buf k;
            Buffer.add_char buf ':';
            go item)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---- parsing: recursive descent over the string ---- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "byte %d: %s" st.pos msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad \\u escape"

(* UTF-8-encode a code point (surrogate pairs already combined). *)
let add_uchar buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v =
    (hex_digit st st.src.[st.pos] lsl 12)
    lor (hex_digit st st.src.[st.pos + 1] lsl 8)
    lor (hex_digit st st.src.[st.pos + 2] lsl 4)
    lor hex_digit st st.src.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let hi = parse_hex4 st in
                if hi >= 0xD800 && hi <= 0xDBFF then begin
                  (* high surrogate: a \uDC00..\uDFFF low half must follow *)
                  expect st '\\';
                  expect st 'u';
                  let lo = parse_hex4 st in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    fail st "unpaired surrogate";
                  add_uchar buf
                    (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else if hi >= 0xDC00 && hi <= 0xDFFF then
                  fail st "unpaired surrogate"
                else add_uchar buf hi
            | _ -> fail st "bad escape"));
        go ()
    | Some c when Char.code c < 0x20 -> fail st "raw control char in string"
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let digits () =
    let n0 = st.pos in
    while
      st.pos < String.length st.src
      && match st.src.[st.pos] with '0' .. '9' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done;
    if st.pos = n0 then fail st "expected digit"
  in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  digits ();
  if peek st = Some '.' then begin
    st.pos <- st.pos + 1;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      st.pos <- st.pos + 1;
      (match peek st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
      digits ()
  | _ -> ());
  float_of_string (String.sub st.src start (st.pos - start))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---- accessors ---- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v && Float.abs v <= 2. ** 52. ->
      Some (int_of_float v)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List items -> Some items | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None

let obj fields =
  Obj (List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) fields)
