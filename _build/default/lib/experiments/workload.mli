(** A TPC-H-derived query workload in the paper's dialect.

    Six aggregate queries modelled on the classic suite (Q1, Q6, Q3, Q5,
    Q10, Q19 shapes), restricted to the SUM/COUNT/AVG aggregates the
    theory covers, each in two forms: exact (no TABLESAMPLE) and sampled.
    Used by E10 and by the integration tests; also a convenient corpus for
    anyone extending the SQL frontend. *)

type query = {
  id : string;  (** "W1" … "W6" *)
  description : string;
  tpch_ancestor : string;  (** which TPC-H query the shape comes from *)
  sampled : string;  (** dialect text with TABLESAMPLE clauses *)
  exact : string;  (** same query, sampling removed *)
}

val all : query list
val find : string -> query option
