module Splan = Gus_core.Splan
module Gus = Gus_core.Gus
module Sbox = Gus_estimator.Sbox
module Interval = Gus_stats.Interval
module Rng = Gus_util.Rng
open Gus_relational

type stream = {
  relation : Relation.t;
  order : int array;  (** shuffled row indices *)
  mutable consumed : int;
}

type t = {
  skeleton : Splan.t;
  f : Expr.t;
  streams : (string * stream) list;  (** in lineage-schema order *)
}

type checkpoint = {
  fractions : (string * float) list;
  rows_read : int;
  report : Sbox.report;
  interval : Interval.t;
}

let create ?(seed = 1) db ~plan ~f =
  let skeleton = Splan.strip_samples plan in
  let rels = Splan.relations skeleton in
  let rng = Rng.create seed in
  let streams =
    List.map
      (fun name ->
        let relation = Database.find db name in
        let order = Array.init (Relation.cardinality relation) Fun.id in
        Rng.shuffle rng order;
        (name, { relation; order; consumed = 0 }))
      rels
  in
  { skeleton; f; streams }

let finished t =
  List.for_all
    (fun (_, s) -> s.consumed >= Array.length s.order)
    t.streams

let prefix_relation s =
  let rel = s.relation in
  let out =
    Relation.derived ~name:rel.Relation.name rel.Relation.schema
      rel.Relation.lineage_schema
  in
  (* Keep base-relation row ids: the WOR analysis only compares lineage. *)
  for i = 0 to s.consumed - 1 do
    Relation.append_tuple out (Relation.tuple rel s.order.(i))
  done;
  out

let estimate t =
  let db' = Database.create () in
  List.iter (fun (_, s) -> Database.add db' (prefix_relation s)) t.streams;
  let gus =
    List.fold_left
      (fun acc (name, s) ->
        let total = Array.length s.order in
        let g =
          if total = 0 then Gus.identity [| name |]
          else Gus.wor ~rel:name ~n:s.consumed ~out_of:total
        in
        match acc with None -> Some g | Some a -> Some (Gus.join a g))
      None t.streams
    |> Option.get
  in
  (* No sampling operators remain in the skeleton; the RNG goes unused.
     The checkpoint streams the prefix join's tuples into an accumulator
     instead of materializing the result. *)
  let report = Sbox.of_plan ~gus ~f:t.f db' (Rng.create 0) t.skeleton in
  let interval = Sbox.interval Interval.Normal report in
  { fractions =
      List.map
        (fun (name, s) ->
          let total = Array.length s.order in
          ( name,
            if total = 0 then 1.0
            else float_of_int s.consumed /. float_of_int total ))
        t.streams;
    rows_read = List.fold_left (fun acc (_, s) -> acc + s.consumed) 0 t.streams;
    report;
    interval }

let step t ~rows =
  if rows <= 0 then invalid_arg "Online.step: rows must be positive";
  List.iter
    (fun (_, s) -> s.consumed <- min (Array.length s.order) (s.consumed + rows))
    t.streams;
  estimate t

let run ?(seed = 1) db ~plan ~f ~checkpoints =
  if checkpoints <= 0 then invalid_arg "Online.run: checkpoints must be positive";
  let t = create ~seed db ~plan ~f in
  let max_rows =
    List.fold_left (fun acc (_, s) -> max acc (Array.length s.order)) 0 t.streams
  in
  let per_step = max 1 ((max_rows + checkpoints - 1) / checkpoints) in
  let rec go acc =
    let cp = step t ~rows:per_step in
    if finished t then List.rev (cp :: acc) else go (cp :: acc)
  in
  go []
