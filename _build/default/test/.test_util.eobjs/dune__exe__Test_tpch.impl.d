test/test_tpch.ml: Alcotest Array Database Float Gus_relational Gus_tpch Hashtbl List Option Relation Schema Tuple Value
