module Vec = Gus_util.Vec
module Pool = Gus_util.Pool
module Metrics = Gus_obs.Metrics

(* Per-operator row accounting.  Counts are taken from relation
   cardinalities after the operator runs — O(1) per call, nothing on the
   per-tuple path — and only when collection is on. *)
let op_rows name =
  (Metrics.counter (Printf.sprintf "ops.%s.rows_in" name),
   Metrics.counter (Printf.sprintf "ops.%s.rows_out" name))

let account (rows_in, rows_out) ~inputs out =
  if Metrics.enabled () then begin
    List.iter (fun r -> Metrics.add rows_in (Relation.cardinality r)) inputs;
    Metrics.add rows_out (Relation.cardinality out)
  end;
  out

let c_select = op_rows "select"
let c_project = op_rows "project"
let c_cross = op_rows "cross"
let c_equi_join = op_rows "equi_join"
let c_theta_join = op_rows "theta_join"
let c_union_all = op_rows "union_all"
let c_union_lineage = op_rows "union_lineage"
let c_distinct = op_rows "distinct"
let c_group_by = op_rows "group_by"

(* Hash tables keyed directly on the data we already hold — a Value, a
   lineage array, a Value array — with the library's semantic equality and
   mixing hashes.  The seed code keyed several operators on freshly built
   [string list] / [int list] images of each tuple, which dominated the
   hot paths with allocations and polymorphic compares. *)

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash v = Value.hash v land max_int
end)

module LTbl = Hashtbl.Make (struct
  type t = Lineage.t

  let equal = Lineage.equal
  let hash l = Lineage.hash l land max_int
end)

module VsTbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal (a : Value.t array) (b : Value.t array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash (a : Value.t array) =
    let h = ref 0x9E3779B97F4A7C1 in
    Array.iter
      (fun v ->
        h :=
          Int64.to_int
            (Gus_util.Hashing.combine (Int64.of_int !h)
               (Int64.of_int (Value.hash v))))
      a;
    !h land max_int
end)

(* Chunk-parallel per-tuple scan.  [body push tup] decides what [tup]
   contributes to the output (nothing, itself, a rewritten tuple) by
   calling [push] zero or more times.  With a multi-lane pool and at least
   [par_threshold] input rows, the input index range is cut into
   {!Pool.chunks}; every lane fills a private per-chunk vector (tuples are
   immutable, [body]'s closures must be pure), and the chunks are stitched
   back in chunk order — bit-identical output to the sequential scan, in
   the same tuple order, whatever the lane count. *)
let chunked_scan ?pool ?(par_threshold = Pool.default_par_threshold) rel out body
    =
  let n = Relation.cardinality rel in
  match pool with
  | Some p when Pool.is_live p && Pool.size p > 1 && n >= par_threshold ->
      let chs = Pool.chunks p ~lo:0 ~hi:n in
      let outs =
        Array.map (fun (clo, chi) -> Vec.create ~capacity:(max 16 (chi - clo)) ()) chs
      in
      Pool.run_chunks p ~lo:0 ~hi:(Array.length chs) (fun klo khi ->
          for k = klo to khi - 1 do
            let clo, chi = chs.(k) in
            let dst = outs.(k) in
            let push tup = Vec.push dst tup in
            for i = clo to chi - 1 do
              body push (Relation.tuple rel i)
            done
          done);
      Array.iter (fun v -> Vec.iter (Relation.append_tuple out) v) outs
  | _ -> Relation.iter (body (Relation.append_tuple out)) rel

(* ---- vectorized kernels -------------------------------------------------
   When the input is columnar and the expressions compile ({!Vexpr}), the
   operators below run over raw columns: predicates fill selection index
   vectors (chunked across the pool, stitched back in chunk order — the
   same determinism discipline as {!chunked_scan}), and outputs are
   gathered column-wise.  Every kernel is bit-identical to the row path
   it replaces; anything it cannot express falls back to that path. *)

(* Selection indices for [keep] over [0, n), pool-chunked when worthwhile.
   Chunk boundaries come from {!Pool.chunks} and the per-chunk buffers are
   concatenated in chunk order, so the result is independent of the lane
   count. *)
let select_indices ?pool ?(par_threshold = Pool.default_par_threshold) keep n =
  match pool with
  | Some p when Pool.is_live p && Pool.size p > 1 && n >= par_threshold ->
      let chs = Pool.chunks p ~lo:0 ~hi:n in
      let bufs =
        Array.map (fun (clo, chi) -> Array.make (max 1 (chi - clo)) 0) chs
      in
      let counts = Array.make (Array.length chs) 0 in
      Pool.run_chunks p ~lo:0 ~hi:(Array.length chs) (fun klo khi ->
          for k = klo to khi - 1 do
            let clo, chi = chs.(k) in
            let buf = bufs.(k) in
            let m = ref 0 in
            for i = clo to chi - 1 do
              if keep i then begin
                buf.(!m) <- i;
                incr m
              end
            done;
            counts.(k) <- !m
          done);
      let total = Array.fold_left ( + ) 0 counts in
      let idx = Array.make (max 1 total) 0 in
      let off = ref 0 in
      Array.iteri
        (fun k buf ->
          Array.blit buf 0 idx !off counts.(k);
          off := !off + counts.(k))
        bufs;
      (idx, total)
  | _ ->
      let idx = Array.make (max 1 n) 0 in
      let m = ref 0 in
      for i = 0 to n - 1 do
        if keep i then begin
          idx.(!m) <- i;
          incr m
        end
      done;
      (idx, !m)

let select ?pool ?par_threshold pred rel =
  let name = Printf.sprintf "select(%s)" rel.Relation.name in
  let vectorized =
    match Relation.store rel with
    | Relation.Cols c -> begin
        match Vexpr.predicate rel.Relation.schema c.Relation.ccols pred with
        | Some keep ->
            let idx, count =
              select_indices ?pool ?par_threshold keep c.Relation.cn
            in
            Some (Relation.gather_rows ~name rel c idx count)
        | None -> None
      end
    | Relation.Rows _ -> None
  in
  let out =
    match vectorized with
    | Some out -> out
    | None ->
        let keep = Expr.bind_predicate rel.Relation.schema pred in
        let out =
          Relation.derived ~name rel.Relation.schema rel.Relation.lineage_schema
        in
        chunked_scan ?pool ?par_threshold rel out (fun push tup ->
            if keep tup then push tup);
        out
  in
  account c_select ~inputs:[ rel ] out

let project_schema fields schema =
  Schema.make
    (List.map
       (fun (name, e) ->
         let ty =
           (* Infer a column type from the expression shape when obvious;
              fall back to float, the common case for aggregated inputs. *)
           match e with
           | Expr.Col c -> Schema.column_ty schema (Schema.index_of schema c)
           | Expr.Lit v -> Option.value (Value.type_of v) ~default:Value.TFloat
           | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ -> Value.TBool
           | _ -> Value.TFloat
         in
         { Schema.name; ty })
       fields)

(* One output column per projected field.  [PCopy] reuses the source
   column wholesale (fresh backing, shared dictionary); the typed
   builders evaluate a compiled expression row by row into an unboxed
   column.  A field whose compiled type disagrees with the inferred
   output schema (e.g. all-int arithmetic, which the schema declares
   float but the row engine materializes as [Int] values) has no exact
   columnar representation — the whole projection falls back. *)
type field_plan =
  | PCopy of int
  | PF of (int -> float) * (int -> bool)
  | PI of (int -> int) * (int -> bool)
  | PS of (int -> string) * (int -> bool)
  | PB of (int -> int)
  | PNull of (int -> unit)

let plan_field schema cols ty expr =
  match expr with
  | Expr.Col name -> Option.map (fun j -> PCopy j) (Schema.find_index schema name)
  | _ -> begin
      match (Vexpr.compile schema cols expr, ty) with
      | Some (Vexpr.VF (v, nl)), Value.TFloat -> Some (PF (v, nl))
      | Some (Vexpr.VI (v, nl)), Value.TInt -> Some (PI (v, nl))
      | Some (Vexpr.VS (v, nl)), Value.TStr -> Some (PS (v, nl))
      | Some (Vexpr.VB g), Value.TBool -> Some (PB g)
      | Some (Vexpr.VNull eff), _ -> Some (PNull eff)
      | _ -> None
    end

let build_field c plan ty =
  let n = c.Relation.cn in
  match plan with
  | PCopy j -> Column.copy c.Relation.ccols.(j)
  | PF (v, nl) ->
      let col = Column.create ~capacity:(max 1 n) Value.TFloat in
      for i = 0 to n - 1 do
        if nl i then Column.push_null col else Column.push_float col (v i)
      done;
      col
  | PI (v, nl) ->
      let col = Column.create ~capacity:(max 1 n) Value.TInt in
      for i = 0 to n - 1 do
        if nl i then Column.push_null col else Column.push_int col (v i)
      done;
      col
  | PS (v, nl) ->
      let col = Column.create ~capacity:(max 1 n) Value.TStr in
      for i = 0 to n - 1 do
        if nl i then Column.push_null col else Column.push_string col (v i)
      done;
      col
  | PB g ->
      let col = Column.create ~capacity:(max 1 n) Value.TBool in
      for i = 0 to n - 1 do
        match g i with 2 -> Column.push_null col | x -> Column.push_int col x
      done;
      col
  | PNull eff ->
      let col = Column.create ~capacity:(max 1 n) ty in
      for i = 0 to n - 1 do
        eff i;
        Column.push_null col
      done;
      col

let project ?pool ?par_threshold fields rel =
  let schema = rel.Relation.schema in
  let out_schema = project_schema fields schema in
  let name = Printf.sprintf "project(%s)" rel.Relation.name in
  let vectorized =
    match Relation.store rel with
    | Relation.Cols c ->
        let plans =
          List.mapi
            (fun i (_, e) ->
              plan_field schema c.Relation.ccols (Schema.column_ty out_schema i) e)
            fields
        in
        if List.for_all Option.is_some plans then
          let ccols =
            Array.of_list
              (List.mapi
                 (fun i plan ->
                   build_field c (Option.get plan) (Schema.column_ty out_schema i))
                 plans)
          in
          let clineage =
            match c.Relation.clineage with
            | Relation.Identity -> Relation.Identity
            | Relation.Explicit ls -> Relation.Explicit (Array.map Column.copy ls)
          in
          Some
            (Relation.derived_cols ~name out_schema rel.Relation.lineage_schema
               { Relation.cn = c.Relation.cn; ccols; clineage })
        else None
    | Relation.Rows _ -> None
  in
  let out =
    match vectorized with
    | Some out -> out
    | None ->
        let evals = List.map (fun (_, e) -> Expr.bind schema e) fields in
        let out =
          Relation.derived ~name out_schema rel.Relation.lineage_schema
        in
        chunked_scan ?pool ?par_threshold rel out (fun push tup ->
            let values = Array.of_list (List.map (fun f -> f tup) evals) in
            push (Tuple.with_values tup values));
        out
  in
  account c_project ~inputs:[ rel ] out

let joined_name a b =
  Printf.sprintf "(%s*%s)" a.Relation.name b.Relation.name

let join_output a b =
  let schema = Schema.concat a.Relation.schema b.Relation.schema in
  let lschema =
    Lineage.schema_concat a.Relation.lineage_schema b.Relation.lineage_schema
  in
  Relation.derived ~name:(joined_name a b) schema lschema

let cross a b =
  let out = join_output a b in
  Relation.iter
    (fun ta -> Relation.iter (fun tb -> Relation.append_tuple out (Tuple.concat ta tb)) b)
    a;
  account c_cross ~inputs:[ a; b ] out

(* Vectorized gate: a direct reference to an int key column.  Int keys
   hash and compare the same on both paths (and never collide across
   types, unlike the general [Value.equal] which lets [Int 1] match
   [Float 1.]), so the chain-hash join below emits exactly the pairs,
   in exactly the order, of the row-path join. *)
let int_key_col rel key =
  match (Relation.store rel, key) with
  | Relation.Cols c, Expr.Col name -> begin
      match Schema.find_index rel.Relation.schema name with
      | Some j when Column.ty c.Relation.ccols.(j) = Value.TInt ->
          Some (c, c.Relation.ccols.(j))
      | _ -> None
    end
  | _ -> None

module ITbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash i = Int64.to_int (Gus_util.Hashing.hash_int ~seed:7 i) land max_int
end)

(* Explicit lineage columns for one join side restricted to [idx]. *)
let gather_lineage (c : Relation.cols) idx count =
  match c.Relation.clineage with
  | Relation.Identity -> [| Column.of_int_array idx count |]
  | Relation.Explicit ls -> Array.map (fun col -> Column.gather col idx count) ls

let equi_join_cols ~name schema lschema ca ka cb kb =
  (* Build on the smaller side; chains built backwards so they emit in
     build order, matching the row path. *)
  let build_c, build_k, probe_c, probe_k, build_left =
    if ca.Relation.cn <= cb.Relation.cn then (ca, ka, cb, kb, true)
    else (cb, kb, ca, ka, false)
  in
  let nbuild = build_c.Relation.cn in
  let table : int ITbl.t = ITbl.create (max 16 nbuild) in
  let next = Array.make (max 1 nbuild) (-1) in
  for i = nbuild - 1 downto 0 do
    if not (Column.is_null build_k i) then begin
      let k = Column.get_int build_k i in
      (match ITbl.find_opt table k with
      | Some head -> next.(i) <- head
      | None -> ());
      ITbl.replace table k i
    end
  done;
  let build_idx = Vec.create () and probe_idx = Vec.create () in
  for i = 0 to probe_c.Relation.cn - 1 do
    if not (Column.is_null probe_k i) then
      match ITbl.find_opt table (Column.get_int probe_k i) with
      | None -> ()
      | Some head ->
          let j = ref head in
          while !j >= 0 do
            Vec.push build_idx !j;
            Vec.push probe_idx i;
            j := next.(!j)
          done
  done;
  let count = Vec.length build_idx in
  let build_idx = Vec.to_array build_idx and probe_idx = Vec.to_array probe_idx in
  let a_idx, b_idx =
    if build_left then (build_idx, probe_idx) else (probe_idx, build_idx)
  in
  let side c idx = Array.map (fun col -> Column.gather col idx count) c.Relation.ccols in
  let ccols = Array.append (side ca a_idx) (side cb b_idx) in
  let clineage =
    Relation.Explicit
      (Array.append (gather_lineage ca a_idx count) (gather_lineage cb b_idx count))
  in
  Relation.derived_cols ~name schema lschema { Relation.cn = count; ccols; clineage }

let equi_join ~left_key ~right_key a b =
  let vectorized =
    match (int_key_col a left_key, int_key_col b right_key) with
    | Some (ca, ka), Some (cb, kb) ->
        let schema = Schema.concat a.Relation.schema b.Relation.schema in
        let lschema =
          Lineage.schema_concat a.Relation.lineage_schema b.Relation.lineage_schema
        in
        Some
          (equi_join_cols ~name:(joined_name a b) schema lschema ca ka cb kb)
    | _ -> None
  in
  match vectorized with
  | Some out -> account c_equi_join ~inputs:[ a; b ] out
  | None ->
  let out = join_output a b in
  let lkey = Expr.bind a.Relation.schema left_key in
  let rkey = Expr.bind b.Relation.schema right_key in
  (* Build on the smaller side. *)
  let build, probe, build_key, probe_key, build_left =
    if Relation.cardinality a <= Relation.cardinality b then (a, b, lkey, rkey, true)
    else (b, a, rkey, lkey, false)
  in
  (* Buckets as index chains into the build side: [table] holds the chain
     head per key, [next] the per-row link (-1 ends a chain).  Presized
     once; no per-bucket vectors, no resizing during the build. *)
  let nbuild = Relation.cardinality build in
  let table : int VTbl.t = VTbl.create (max 16 nbuild) in
  let next = Array.make (max 1 nbuild) (-1) in
  (* Backwards, so the prepend-built chains emit matches in build order
     (same output order as the seed's per-bucket vectors). *)
  for i = nbuild - 1 downto 0 do
    let k = build_key (Relation.tuple build i) in
    if not (Value.is_null k) then begin
      (match VTbl.find_opt table k with
      | Some head -> next.(i) <- head
      | None -> ());
      VTbl.replace table k i
    end
  done;
  Relation.iter
    (fun tup ->
      let k = probe_key tup in
      if not (Value.is_null k) then
        match VTbl.find_opt table k with
        | None -> ()
        | Some head ->
            let i = ref head in
            while !i >= 0 do
              let btup = Relation.tuple build !i in
              let joined =
                if build_left then Tuple.concat btup tup else Tuple.concat tup btup
              in
              Relation.append_tuple out joined;
              i := next.(!i)
            done)
    probe;
  account c_equi_join ~inputs:[ a; b ] out

let theta_join pred a b =
  let out = join_output a b in
  let keep = Expr.bind_predicate out.Relation.schema pred in
  Relation.iter
    (fun ta ->
      Relation.iter
        (fun tb ->
          let joined = Tuple.concat ta tb in
          if keep joined then Relation.append_tuple out joined)
        b)
    a;
  account c_theta_join ~inputs:[ a; b ] out

let require_same_shape a b =
  if Schema.arity a.Relation.schema <> Schema.arity b.Relation.schema then
    invalid_arg "Ops.union: schema arity mismatch";
  if not (Lineage.schema_equal a.Relation.lineage_schema b.Relation.lineage_schema)
  then invalid_arg "Ops.union: lineage schema mismatch"

let union_all a b =
  require_same_shape a b;
  let out =
    Relation.derived
      ~name:(Printf.sprintf "(%s+%s)" a.Relation.name b.Relation.name)
      a.Relation.schema a.Relation.lineage_schema
  in
  Relation.iter (Relation.append_tuple out) a;
  Relation.iter (Relation.append_tuple out) b;
  account c_union_all ~inputs:[ a; b ] out

let union_lineage a b =
  require_same_shape a b;
  let out =
    Relation.derived
      ~name:(Printf.sprintf "(%s|%s)" a.Relation.name b.Relation.name)
      a.Relation.schema a.Relation.lineage_schema
  in
  let seen =
    LTbl.create (max 16 (Relation.cardinality a + Relation.cardinality b))
  in
  let push tup =
    (* Key on the lineage array itself — tuples never mutate it. *)
    let key = tup.Tuple.lineage in
    if not (LTbl.mem seen key) then begin
      LTbl.add seen key ();
      Relation.append_tuple out tup
    end
  in
  Relation.iter push a;
  Relation.iter push b;
  account c_union_lineage ~inputs:[ a; b ] out

let distinct rel =
  let out =
    Relation.derived
      ~name:(Printf.sprintf "distinct(%s)" rel.Relation.name)
      rel.Relation.schema rel.Relation.lineage_schema
  in
  let seen = VsTbl.create (max 16 (Relation.cardinality rel)) in
  Relation.iter
    (fun tup ->
      if not (VsTbl.mem seen tup.Tuple.values) then begin
        VsTbl.add seen tup.Tuple.values ();
        Relation.append_tuple out tup
      end)
    rel;
  account c_distinct ~inputs:[ rel ] out

type agg = Sum of Expr.t | Count | Avg of Expr.t | Min of Expr.t | Max of Expr.t

type agg_state = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let state_create () =
  { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let state_add st x =
  st.count <- st.count + 1;
  st.sum <- st.sum +. x;
  if x < st.min_v then st.min_v <- x;
  if x > st.max_v then st.max_v <- x

let agg_expr = function
  | Sum e | Avg e | Min e | Max e -> Some e
  | Count -> None

let finish agg st =
  match agg with
  | Sum _ -> st.sum
  | Count -> float_of_int st.count
  | Avg _ ->
      if st.count = 0 then invalid_arg "Ops.aggregate: AVG of empty input"
      else st.sum /. float_of_int st.count
  | Min _ ->
      if st.count = 0 then invalid_arg "Ops.aggregate: MIN of empty input"
      else st.min_v
  | Max _ ->
      if st.count = 0 then invalid_arg "Ops.aggregate: MAX of empty input"
      else st.max_v

let aggregate agg rel =
  let st = state_create () in
  begin
    match agg_expr agg with
    | None -> Relation.iter (fun _ -> state_add st 1.0) rel
    | Some e ->
        let f = Expr.bind rel.Relation.schema e in
        Relation.iter
          (fun tup ->
            match f tup with
            | Value.Null -> ()
            | v -> state_add st (Value.to_float v))
          rel
  end;
  finish agg st

let group_by ~keys ~aggs rel =
  let schema = rel.Relation.schema in
  let key_fns = Array.of_list (List.map (Expr.bind schema) keys) in
  let agg_fns =
    Array.of_list
      (List.map
         (fun (_, a) -> (a, Option.map (Expr.bind schema) (agg_expr a)))
         aggs)
  in
  (* Group on the key values themselves (one small array per tuple) rather
     than on per-tuple display-string lists; rendering happens once per
     group at emission. *)
  let groups : agg_state array VsTbl.t = VsTbl.create 64 in
  let order = Vec.create () in
  Relation.iter
    (fun tup ->
      let key = Array.map (fun f -> f tup) key_fns in
      let states =
        match VsTbl.find_opt groups key with
        | Some states -> states
        | None ->
            let states = Array.map (fun _ -> state_create ()) agg_fns in
            VsTbl.add groups key states;
            Vec.push order key;
            states
      in
      Array.iteri
        (fun i st ->
          match snd agg_fns.(i) with
          | None -> state_add st 1.0
          | Some f -> begin
              match f tup with
              | Value.Null -> ()
              | v -> state_add st (Value.to_float v)
            end)
        states)
    rel;
  let key_cols =
    List.mapi (fun i _ -> { Schema.name = Printf.sprintf "k%d" i; ty = Value.TStr }) keys
  in
  let agg_cols =
    List.map (fun (name, _) -> { Schema.name; ty = Value.TFloat }) aggs
  in
  let out_schema = Schema.make (key_cols @ agg_cols) in
  let out = Relation.derived ~name:"group_by" out_schema Lineage.schema_empty in
  Vec.iter
    (fun key ->
      let states = VsTbl.find groups key in
      let nk = Array.length key in
      let row =
        Array.init
          (nk + Array.length states)
          (fun i ->
            if i < nk then Value.Str (Value.to_display key.(i))
            else Value.Float (finish (fst agg_fns.(i - nk)) states.(i - nk)))
      in
      Relation.append_tuple out (Tuple.make row [||]))
    order;
  account c_group_by ~inputs:[ rel ] out
