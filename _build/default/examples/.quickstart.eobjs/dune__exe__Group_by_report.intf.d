examples/group_by_report.mli:
