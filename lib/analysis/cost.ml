module Gus = Gus_core.Gus
module Subset = Gus_util.Subset

type report = {
  n_rels : int;
  passes : int;
  skipped : int;
  est_groups : float;
  predicted_cost : float;
  variance_bound : float;
  skip_mask : int;
  cls : Absdom.Cls.t;
}

(* Relation [i] is "design-inert" (dead) when the second-order
   inclusion probabilities do not depend on whether [i] is in the
   subset: b_{T ∪ {i}} = b_T for every T.  Unsampled relations and
   p = 1 Bernoullis are exactly of this shape (their product-form
   factor has φ(1) = φ(0)).  The comparison is on float bits: joins
   build b arrays by multiplying the factor in, so an inert factor
   multiplies by 1.0 and the equality is exact. *)
let dead_mask_unverified (g : Gus.t) =
  let n = Gus.n_rels g in
  let nmasks = Subset.count n in
  let dead = ref 0 in
  for i = 0 to n - 1 do
    let bit = 1 lsl i in
    let inert = ref true in
    let t = ref 0 in
    while !inert && !t < nmasks do
      if !t land bit = 0 && not (Gus.b_get g !t = Gus.b_get g (!t lor bit))
      then inert := false;
      t := !t + 1
    done;
    if !inert then dead := !dead lor bit
  done;
  !dead

(* The fast Möbius transform turns exact b-equality into exact float
   zeros for every dead-containing coefficient (the dead dimension's
   pass computes x −. x = 0.0 and later passes compute 0.0 −. 0.0), but
   verify against the actual coefficients and refuse to skip anything
   if a single one is not bit-zero: skipping is only ever a no-op. *)
let verified_dead_mask (g : Gus.t) c =
  let dead = dead_mask_unverified g in
  if dead = 0 then 0
  else
    let nmasks = Array.length c in
    let ok = ref true in
    for s = 0 to nmasks - 1 do
      if s land dead <> 0 && not (c.(s) = 0.0) then ok := false
    done;
    if !ok then dead else 0

let skip_mask g = verified_dead_mask g (Gus.c_coefficients g)

let variance_bound_of_c (g : Gus.t) c =
  let a = g.Gus.a in
  if not (a > 0.0) then infinity
  else begin
    let sum = ref 0.0 in
    Array.iter (fun cs -> if cs > 0.0 then sum := !sum +. cs) c;
    Float.max 0.0 ((!sum /. (a *. a)) -. 1.0)
  end

let variance_bound g = variance_bound_of_c g (Gus.c_coefficients g)

let analyze ~(facts : Dataflow.table) (g : Gus.t) =
  let n = Gus.n_rels g in
  let c = Gus.c_coefficients g in
  let skip_mask = verified_dead_mask g c in
  let passes = Subset.count n - 1 in
  let skipped =
    if skip_mask = 0 then 0
    else passes - (Subset.count (n - Subset.cardinal skip_mask) - 1)
  in
  let root = Dataflow.root facts in
  let est_groups = Float.max 1.0 (Absdom.Card.exp root.Dataflow.card) in
  { n_rels = n;
    passes;
    skipped;
    est_groups;
    predicted_cost = float_of_int (passes - skipped) *. est_groups;
    variance_bound = variance_bound_of_c g c;
    skip_mask;
    cls = root.Dataflow.cls }

let pp ppf r =
  Format.fprintf ppf
    "%d relation(s), %d moment pass(es) (%d provably zero), ~%g group(s), \
     predicted cost %g, worst-case Var/E%s %s %g"
    r.n_rels r.passes r.skipped r.est_groups r.predicted_cost "\xc2\xb2"
    "\xe2\x89\xa4" r.variance_bound
