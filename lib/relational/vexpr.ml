(* Vectorized expression compilation: an {!Expr.t} bound against columnar
   storage becomes typed per-index closures reading {!Column} data
   directly — no [Tuple.t] materialization, no [Value.t] boxing on the
   scan path.

   Parity with the row engine ({!Expr.compile}) is exact, which the
   QCheck suite checks bit-for-bit.  The row path's observable effects
   are raises, and they obey two rules this compiler must reproduce:

   - every node of the expression tree is evaluated on every row (SQL
     NULLs do not short-circuit: [Null + (x / 0)] raises because the
     division is still computed), in OCaml's right-to-left argument
     order (the [b] side of a binary node runs before the [a] side);
   - [Value.div] checks NULL before the zero divisor, so [Null / 0] is
     NULL, not an error.

   To honor both, each compiled node separates a {e null closure} — runs
   once per row, carries all the node's effects (nested
   division-by-zero) in row-path order — from a {e value closure} that
   is pure and may only be called when the null closure returned false.
   Three-valued boolean nodes fuse the two into one tri-state closure.

   Anything whose row-path behavior depends on per-row dynamic typing in
   a way a static compile can't mirror (e.g. arithmetic on a string
   column raises only on non-NULL rows, int arithmetic that the
   projection schema declares as float) compiles to [None]; callers fall
   back to the row engine. *)

type vec =
  | VF of (int -> float) * (int -> bool)
  | VI of (int -> int) * (int -> bool)
  | VS of (int -> string) * (int -> bool)
  | VB of (int -> int)  (** tri-state: 0 = false, 1 = true, 2 = NULL *)
  | VNull of (int -> unit)
      (** statically NULL; the closure carries the row-path effects of
          the subtree (a literal NULL has none, [Null + e] has [e]'s) *)

let no_null _ = false
let no_eff _ = ()

(* The effects of evaluating a node on one row, regardless of result. *)
let eff_of = function
  | VF (_, nl) | VI (_, nl) | VS (_, nl) -> fun i -> ignore (nl i)
  | VB g -> fun i -> ignore (g i)
  | VNull e -> e

let div_by_zero () = raise (Value.Type_error "division by zero")

let cmp_result op c =
  match op with
  | Expr.Eq -> c = 0
  | Expr.Neq -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0

(* Lift a numeric operand to float (row path: [Value.to_float]). *)
let as_float = function
  | VF (v, nl) -> Some (v, nl)
  | VI (v, nl) -> Some ((fun i -> float_of_int (v i)), nl)
  | _ -> None

let as_tri = function
  | VB g -> Some g
  | VNull e -> Some (fun i -> e i; 2)
  | _ -> None

(* Combined null closure of a binary node: evaluate the [b] side first,
   as the row path does ([g (fa tup) (fb tup)] runs [fb] first). *)
let null2 na nb i =
  let rb = nb i in
  let ra = na i in
  ra || rb

let bin_int op va vb na nb =
  match op with
  | Expr.Add -> VI ((fun i -> va i + vb i), null2 na nb)
  | Expr.Sub -> VI ((fun i -> va i - vb i), null2 na nb)
  | Expr.Mul -> VI ((fun i -> va i * vb i), null2 na nb)
  | Expr.Div ->
      let nl i =
        let rb = nb i in
        let ra = na i in
        if ra || rb then true
        else if vb i = 0 then div_by_zero ()
        else false
      in
      VI ((fun i -> va i / vb i), nl)

let bin_float op va vb na nb =
  match op with
  | Expr.Add -> VF ((fun i -> va i +. vb i), null2 na nb)
  | Expr.Sub -> VF ((fun i -> va i -. vb i), null2 na nb)
  | Expr.Mul -> VF ((fun i -> va i *. vb i), null2 na nb)
  | Expr.Div ->
      (* Row path: NULL first, then the zero-divisor check ([Int 0] and
         [Float 0.0] both reach it as 0.0 here; NaN compares unequal and
         divides through, as in the row engine). *)
      let nl i =
        let rb = nb i in
        let ra = na i in
        if ra || rb then true
        else if vb i = 0.0 then div_by_zero ()
        else false
      in
      VF ((fun i -> va i /. vb i), nl)

let rec compile schema cols expr =
  match expr with
  | Expr.Col name -> begin
      match Schema.find_index schema name with
      | None -> None (* fallback raises Bind_error, as the row path does *)
      | Some j ->
          let col = cols.(j) in
          let nl i = Column.is_null col i in
          Some
            (match Column.ty col with
            | Value.TFloat -> VF ((fun i -> Column.get_float col i), nl)
            | Value.TInt -> VI ((fun i -> Column.get_int col i), nl)
            | Value.TStr -> VS ((fun i -> Column.get_string col i), nl)
            | Value.TBool ->
                VB (fun i -> if Column.is_null col i then 2 else Column.get_int col i))
    end
  | Expr.Lit v ->
      Some
        (match v with
        | Value.Null -> VNull no_eff
        | Value.Int x -> VI ((fun _ -> x), no_null)
        | Value.Float x -> VF ((fun _ -> x), no_null)
        | Value.Str s -> VS ((fun _ -> s), no_null)
        | Value.Bool b -> VB (fun _ -> if b then 1 else 0))
  | Expr.Neg e -> begin
      match compile schema cols e with
      | Some (VI (v, nl)) -> Some (VI ((fun i -> -v i), nl))
      | Some (VF (v, nl)) -> Some (VF ((fun i -> -.(v i)), nl))
      | Some (VNull eff) -> Some (VNull eff)
      | Some (VS _ | VB _) | None -> None
    end
  | Expr.Bin (op, a, b) -> begin
      match (compile schema cols a, compile schema cols b) with
      | None, _ | _, None -> None
      (* NULL wins over type errors in [Value.div]/[arith], so a
         statically NULL operand makes the whole node NULL — but the
         other side is still evaluated. *)
      | Some ((VNull _) as ca), Some cb | Some ca, Some ((VNull _) as cb) ->
          let ea = eff_of ca and eb = eff_of cb in
          Some (VNull (fun i -> eb i; ea i))
      | Some (VI (va, na)), Some (VI (vb, nb)) -> Some (bin_int op va vb na nb)
      | Some ca, Some cb -> begin
          match (as_float ca, as_float cb) with
          | Some (va, na), Some (vb, nb) -> Some (bin_float op va vb na nb)
          | _ -> None (* string/bool arithmetic raises only on non-NULL rows *)
        end
    end
  | Expr.Cmp (op, a, b) -> begin
      match (compile schema cols a, compile schema cols b) with
      | None, _ | _, None -> None
      | Some ca, Some cb ->
          let tri mk = VB mk in
          let always_null () =
            (* [compare_sql] yields None: NULL operand or incomparable
               families.  Constant NULL result, operand effects kept. *)
            let ea = eff_of ca and eb = eff_of cb in
            tri (fun i -> eb i; ea i; 2)
          in
          Some
            (match (ca, cb) with
            | VNull _, _ | _, VNull _ -> always_null ()
            | VI (va, na), VI (vb, nb) ->
                tri (fun i ->
                    let rb = nb i in
                    let ra = na i in
                    if ra || rb then 2
                    else if cmp_result op (Int.compare (va i) (vb i)) then 1
                    else 0)
            | (VI _ | VF _), (VI _ | VF _) ->
                let va, na = Option.get (as_float ca)
                and vb, nb = Option.get (as_float cb) in
                tri (fun i ->
                    let rb = nb i in
                    let ra = na i in
                    if ra || rb then 2
                    else if cmp_result op (Float.compare (va i) (vb i)) then 1
                    else 0)
            | VS (va, na), VS (vb, nb) ->
                tri (fun i ->
                    let rb = nb i in
                    let ra = na i in
                    if ra || rb then 2
                    else if cmp_result op (String.compare (va i) (vb i)) then 1
                    else 0)
            | VB ga, VB gb ->
                tri (fun i ->
                    let b = gb i in
                    let a = ga i in
                    if a = 2 || b = 2 then 2
                    else if cmp_result op (Bool.compare (a = 1) (b = 1)) then 1
                    else 0)
            | _ -> always_null ())
    end
  | Expr.And (a, b) -> begin
      match (compile schema cols a, compile schema cols b) with
      | Some ca, Some cb -> begin
          match (as_tri ca, as_tri cb) with
          | Some ga, Some gb ->
              Some
                (VB
                   (fun i ->
                     let b = gb i in
                     let a = ga i in
                     if a = 0 || b = 0 then 0
                     else if a = 1 && b = 1 then 1
                     else 2))
          | _ -> None (* non-boolean operand raise depends on the other side *)
        end
      | _ -> None
    end
  | Expr.Or (a, b) -> begin
      match (compile schema cols a, compile schema cols b) with
      | Some ca, Some cb -> begin
          match (as_tri ca, as_tri cb) with
          | Some ga, Some gb ->
              Some
                (VB
                   (fun i ->
                     let b = gb i in
                     let a = ga i in
                     if a = 1 || b = 1 then 1
                     else if a = 0 && b = 0 then 0
                     else 2))
          | _ -> None
        end
      | _ -> None
    end
  | Expr.Not e -> begin
      match Option.bind (compile schema cols e) as_tri with
      | Some g ->
          Some (VB (fun i -> match g i with 0 -> 1 | 1 -> 0 | _ -> 2))
      | None -> None
    end

let predicate schema cols expr =
  match compile schema cols expr with
  | None -> None
  | Some (VB g) -> Some (fun i -> g i = 1)
  | Some (VNull eff) -> Some (fun i -> eff i; false)
  (* Row path ([bind_predicate]) maps any non-Bool result to false —
     after evaluating it, so division effects still fire. *)
  | Some (VF (_, nl) | VI (_, nl) | VS (_, nl)) ->
      Some (fun i -> ignore (nl i); false)
