lib/stats/interval.mli: Format
