examples/join_order.mli:
