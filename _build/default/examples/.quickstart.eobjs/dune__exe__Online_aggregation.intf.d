examples/online_aggregation.mli:
