(** Abstract syntax of the dialect.

    Grammar (paper Sections 1 and 6):
    {v
    query     ::= [CREATE VIEW ident [cols] AS] SELECT items
                  FROM from_item [, from_item]... [WHERE expr]
                  [GROUP BY expr [, expr]...] [;]
    items     ::= item [, item]...
    item      ::= agg [AS ident]
    agg       ::= SUM(expr) | COUNT(star) | COUNT(expr) | AVG(expr)
                | QUANTILE(agg, number)
    from_item ::= ident [TABLESAMPLE [BERNOULLI|SYSTEM] (spec)]
    spec      ::= number PERCENT | integer ROWS
    v} *)

type sample_spec =
  | Percent of float  (** row-level Bernoulli, rate percent/100 *)
  | Rows of int  (** fixed-size WOR *)
  | System_percent of float
      (** page/block-level sampling — SQL's SYSTEM keyword *)

type from_item = { relation : string; sample : sample_spec option }

type agg =
  | Sum of Gus_relational.Expr.t
  | Count_star
  | Count of Gus_relational.Expr.t
  | Avg of Gus_relational.Expr.t
  | Quantile of agg * float

type select_item = { agg : agg; alias : string option }

type query = {
  view : (string * string list) option;  (** CREATE VIEW name (cols) AS … *)
  items : select_item list;
  from : from_item list;
  where : Gus_relational.Expr.t option;
  group_by : Gus_relational.Expr.t list;
      (** grouping keys; estimation per group is sound because group
          membership is a content selection, which commutes with GUS
          (Prop. 5).  Only groups witnessed in the sample are reported. *)
}

val agg_label : agg -> string
(** Default output label when no alias is given, e.g.
    ["sum(l_discount * …)"]. *)

val pp_query : Format.formatter -> query -> unit
