(** The [gusdb serve] NDJSON request/response protocol.

    One JSON object per line on stdin, one JSON object per line on
    stdout, strictly in request order — no network, no framing beyond
    newlines, so the whole protocol is cram-testable with a heredoc.
    DESIGN.md §8 gives the grammar; the operations are:

    - [register] — build + (re)bind a catalog dataset
      ([source]: ["tpch"] | ["synthetic"] | ["csv"])
    - [prepare]  — parse/plan/lint once, install a named handle
    - [execute]  — run a handle with per-call seed/rates/exact/explain
    - [batch]    — many executes, fanned across the pool, results in
      submission order
    - [stats]    — uptime, pool lanes, catalog + handles, cache
      occupancy, per-verb request counts, latency quantiles, journal
      occupancy, and the {!Gus_obs.Metrics} snapshot; with
      [{"format":"prometheus"}] the response instead carries the
      {!Gus_obs.Promexp} text exposition as its ["body"] string

    Responses carry ["ok": true] or
    ["ok": false, "error": {"code", "message"}]; a request that names an
    [op] echoes it back.  Failures never tear down the loop (only EOF
    does) and never print a backtrace. *)

val error_of_exn : exn -> (string * string) option
(** Map a user-facing failure to a stable [(code, message)] pair —
    [parse_error], [plan_error], [unsupported_plan], [unknown_dataset],
    [unknown_handle], [unknown_relation], [unknown_column],
    [type_error], [io_error], [bad_request], [bad_json].  [None] for
    programming errors, which should stay loud.  Shared with the CLI's
    [--json] error rendering (Cli_common). *)

val response_json : handle:string -> Engine.outcome -> Json.t
(** The [execute] success payload (estimates, stddevs, intervals, group
    rows, cache/streaming flags, wall time in µs). *)

val source_of_request : Json.t -> Catalog.source
(** Parse a [register]-shaped object's source description
    ([source]/[scale]/[seed]/[part_skew]/[price_skew]/[dir]/[path]
    fields, ["tpch"] default).  Inverse of {!Catalog.source_json};
    [Replay] feeds journaled register events back through it.  Raises
    [Bad_request]. *)

val result_json : Gus_sql.Runner.result -> Json.t
val exact_json : Gus_sql.Runner.response -> Json.t option
(** Estimate/ground-truth fragments of {!response_json}, shared with
    [gusdb query --json] so the one-shot and serving renderings cannot
    diverge (the parity cram compares them byte for byte). *)

val handle_request : Engine.t -> Json.t -> Json.t
(** Process one parsed request object.  Total: protocol-level and
    user-facing execution errors come back as error objects. *)

val handle_line : Engine.t -> string -> string
(** {!handle_request} on one raw NDJSON line (adds JSON parsing to the
    error envelope).  The result has no embedded newlines. *)

val serve : ?after:(unit -> unit) -> Engine.t -> in_channel -> out_channel -> unit
(** The loop: read lines to EOF, skip blank ones, answer each with one
    line, flushing per response (a driving process pipes requests in and
    waits for answers).  [after] runs once per answered request — the
    CLI's [--prom-out] periodic exposition dump hangs off it. *)
