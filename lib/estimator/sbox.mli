(** The SBox — the paper's statistical estimator component (Section 6).

    Given the GUS describing the sampling process and the sampled result
    tuples' [(lineage, f)] stream, it produces the unbiased estimate, an
    unbiased variance estimate (via the Ŷ_S correction of Section 6.3) and
    confidence intervals / quantile bounds (Section 6.4). *)

type report = {
  gus : Gus_core.Gus.t;
  n_tuples : int;  (** result tuples consumed *)
  total_f : float;  (** Σ f over the sample *)
  estimate : float;  (** total_f / a *)
  y_hat : float array;  (** unbiased estimates of the y_S moments *)
  variance : float;  (** Theorem-1 variance with Ŷ plugged in, clamped ≥ 0 *)
  variance_raw : float;  (** before clamping (can be negative from noise) *)
  stddev : float;
}

val of_pairs :
  ?skip_mask:int -> gus:Gus_core.Gus.t -> (int array * float) array -> report
(** Core entry point.  Lineage arrays must align with [gus.rels].
    [?skip_mask] (default 0, see {!Moments}) must come from
    {!Gus_analysis.Cost.skip_mask} on this GUS: dead masks get Ŷ pinned
    to 0, which is exact because their Theorem-1 coefficients are
    verified bit-zero. *)

val of_relation :
  ?skip_mask:int ->
  gus:Gus_core.Gus.t ->
  f:Gus_relational.Expr.t ->
  Gus_relational.Relation.t ->
  report
(** Checks that the relation's lineage schema equals [gus.rels]. *)

val report_of_acc :
  ?pool:Gus_util.Pool.t -> gus:Gus_core.Gus.t -> Moments.Acc.t -> report
(** Finalize a streaming accumulator into a full report.  Non-destructive:
    the accumulator can keep absorbing tuples and be reported again — the
    checkpoint primitive the online estimators build on.  [?pool] is
    forwarded to {!Moments.Acc.finalize}.  The accumulator's skip-mask
    carries through to the Ŷ solve. *)

val of_plan :
  ?pool:Gus_util.Pool.t ->
  ?skip_mask:int ->
  ?view:int array ->
  ?lineage_width:int ->
  gus:Gus_core.Gus.t ->
  f:Gus_relational.Expr.t ->
  Gus_relational.Database.t ->
  Gus_util.Rng.t ->
  Gus_core.Splan.t ->
  report
(** Streaming twin of [exec] + {!of_relation}: the plan's result tuples
    are folded straight into a {!Moments.Acc} via
    {!Gus_core.Splan.fold_stream} — no result relation, no pairs array.
    Same seed ⇒ same tuples and bit-identical [estimate]/[total_f]/
    [n_tuples] as the materializing path (moment sums can differ in final
    bits from reduction order).  With [?pool], chunk-parallel feeding
    (when the streamable suffix is RNG-free) and pooled moment passes.

    [?view]/[?lineage_width] (given together) run a projected GUS over a
    wide plan: the plan's lineage is [lineage_width] columns, [gus] spans
    the [view]-selected live columns only, and the moment passes group on
    those columns through the view ({!Moments.of_pairs}).  This is how
    estimation works past the dense [2^n] wall. *)

val y_hat_of_moments :
  ?skip_mask:int -> gus:Gus_core.Gus.t -> float array -> float array
(** The Section-6.3 unbiased correction: raw sample moments [Y] →
    unbiased [Ŷ], solved top-down from the full subset.  When some
    [b'_S = 0] (the pair probability vanishes, e.g. WOR with n ≤ 1) the
    moment is unrecoverable and the entry is set to 0 with a warning
    logged.  Masks hitting [?skip_mask] are pinned to 0 and their
    d-correction terms dropped — exact under a verified
    {!Gus_analysis.Cost.skip_mask}. *)

val interval : ?coverage:float -> Gus_stats.Interval.method_ -> report -> Gus_stats.Interval.t
(** Default coverage 0.95. *)

val quantile : report -> float -> float
(** Normal-approximation [QUANTILE(SUM(f), q)] bound. *)

val subsampled :
  gus:Gus_core.Gus.t ->
  f:Gus_relational.Expr.t ->
  target:int ->
  seed:int ->
  Gus_relational.Relation.t ->
  report
(** Section-7 efficient estimator: the estimate uses the whole sample, but
    the y_S moments come from a lineage-keyed multidimensional Bernoulli
    subsample of ≈[target] tuples, analyzed by compacting the subsampler's
    composed GUS onto [gus]. *)

val stream :
  ?seed:int ->
  ?pool:Gus_util.Pool.t ->
  Gus_relational.Database.t ->
  Gus_core.Splan.t ->
  f:Gus_relational.Expr.t ->
  report * Gus_analysis.Rewrite.result
(** Analyze the plan, then estimate it end to end via {!of_plan} — the
    whole pipeline without ever materializing the sampled result.  Within
    the dense width ({!Gus_util.Subset.max_universe} relations) this is
    the historical path: the statically verified skip-mask of the dense
    GUS is applied, so design-inert moment passes are never grouped at
    all.  Past it, the symbolic analysis projects the design onto its
    live relations and estimates through a lineage view — exact, because
    dead relations' Theorem-1 coefficients are structural zeros.  Raises
    {!Gus_analysis.Rewrite.Unsupported} only when the {e live} set alone
    exceeds the dense width. *)

val run :
  ?seed:int ->
  Gus_relational.Database.t ->
  Gus_core.Splan.t ->
  f:Gus_relational.Expr.t ->
  report * Gus_analysis.Rewrite.result
(** Convenience: execute the plan with a seeded RNG, rewrite it, analyze
    the result.  Since the streaming rewrite this is {!stream} without a
    pool: same seed ⇒ same sample tuples as the old materializing
    implementation, bit-identical estimate. *)

val exact : Gus_relational.Database.t -> Gus_core.Splan.t -> f:Gus_relational.Expr.t -> float
(** Ground truth: run the sample-free skeleton and sum [f]. *)

val covariance :
  gus:Gus_core.Gus.t ->
  f:Gus_relational.Expr.t ->
  g:Gus_relational.Expr.t ->
  Gus_relational.Relation.t ->
  float
(** Unbiased estimate of Cov(X_f, X_g) for two SUM estimates over the same
    sample, via the bilinear y^{fg}_S moments (same Theorem-1 structure,
    same Ŷ correction). *)

type ratio_report = {
  ratio_estimate : float;  (** X_f / X_g *)
  ratio_variance : float;  (** delta-method approximation, clamped ≥ 0 *)
  ratio_stddev : float;
  numerator : report;
  denominator : report;
}

val ratio : gus:Gus_core.Gus.t -> f:Gus_relational.Expr.t -> g:Gus_relational.Expr.t ->
  Gus_relational.Relation.t -> ratio_report
(** AVG(e) = ratio with [f = e], [g = 1] (paper Section 9's delta-method
    extension): Var(f/g) ≈ (Var f − 2R·Cov + R²·Var g)/µ_g².  Raises
    [Invalid_argument] when the denominator estimate is 0. *)

val avg : gus:Gus_core.Gus.t -> f:Gus_relational.Expr.t -> Gus_relational.Relation.t -> ratio_report

type multi_report = {
  labels : string array;
  reports : report array;
  cov : float array array;
      (** estimated covariance matrix of the SUM estimates; [cov.(i).(i)]
          is report [i]'s (unclamped) variance *)
}

val multi :
  gus:Gus_core.Gus.t ->
  fs:(string * Gus_relational.Expr.t) list ->
  Gus_relational.Relation.t ->
  multi_report
(** Joint analysis of several SUM aggregates over one sample: estimates
    plus their full covariance matrix (pairwise bilinear moments, each with
    the unbiased Ŷ correction). *)

val linear_combination : multi_report -> float array -> float * float
(** [(estimate, stddev)] of [Σ w_i·SUM_i]: the estimate is the weighted
    sum, the variance is [wᵀ·cov·w] (clamped at 0).  Since SUM-aggregates
    form a vector space (the paper's Section 4.1 observation), this prices
    any derived linear metric — profit = revenue − cost, say — without
    re-scanning the sample. *)
