examples/robustness.ml: Array Expr Float Gus_core Gus_estimator Gus_relational Gus_tpch Option Printf Relation
