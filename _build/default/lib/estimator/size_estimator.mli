(** Intermediate-result size estimation (paper Section 8, third
    application).

    Query optimizers guess intermediate cardinalities from samples; the
    GUS machinery upgrades the guess to an estimate {e with a confidence
    interval}, so the optimizer can tell a trustworthy prediction from a
    shot in the dark.  Size is COUNT over the intermediate expression,
    i.e. SUM of 1 — directly covered by Theorem 1. *)

type prediction = {
  estimate : float;  (** predicted cardinality of the full intermediate *)
  stddev : float;
  interval : Gus_stats.Interval.t;  (** 95% normal interval *)
  sample_tuples : int;  (** tuples the sampled intermediate produced *)
}

val predict :
  ?seed:int ->
  ?coverage:float ->
  Gus_relational.Database.t ->
  Gus_core.Splan.t ->
  prediction
(** [predict db plan] executes the sampling plan once and predicts the
    cardinality of its sample-free skeleton. *)

val predict_with_rates :
  ?seed:int ->
  ?coverage:float ->
  Gus_relational.Database.t ->
  rate:float ->
  Gus_core.Splan.t ->
  prediction
(** Convenience: Bernoulli-sample every base relation of a (sample-free)
    plan at [rate] and predict its output size. *)
