lib/gus/splan.ml: Array Database Expr Format Gus_relational Gus_sampling Gus_util Lineage List Ops String
