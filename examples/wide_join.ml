(* A 20-relation join estimated past the dense 2^n wall.

   The dense GUS representation stores all 2^n second-order inclusion
   probabilities, so analysis is capped at Subset.max_universe = 26
   relations — and even well below that, the 2^n moment passes dominate.
   The symbolic sum-of-products algebra (Gus_core.Symalg) keeps the
   design factorized per relation, so a 20-relation plan with 3 sampled
   relations rewrites, lints and estimates through 2^3 live moment
   passes in microseconds. *)

module Splan = Gus_core.Splan
module Symalg = Gus_core.Symalg
module Rewrite = Gus_analysis.Rewrite
module Lint = Gus_analysis.Lint
module Cost = Gus_analysis.Cost
module Sbox = Gus_estimator.Sbox
module Sampler = Gus_sampling.Sampler
open Gus_relational

let n_rels = 20
let sampled = [ 4; 9; 14 ] (* which relations carry a Bernoulli *)

(* Tiny dimension tables: the cross product of 20 of them stays small
   because most hold a single row. *)
let relation name rows =
  let schema =
    Schema.make [ { Schema.name = name ^ "_v"; ty = Value.TFloat } ]
  in
  let r = Relation.create_base ~name schema in
  for i = 0 to rows - 1 do
    Relation.append_row r [| Value.Float (1.0 +. float_of_int (i mod 5)) |]
  done;
  r

let () =
  let db = Database.create () in
  for i = 0 to n_rels - 1 do
    let rows = if List.mem i sampled then 20 else 1 in
    Database.add db (relation (Printf.sprintf "r%02d" i) rows)
  done;
  let plan =
    let leaf i =
      let scan = Splan.Scan (Printf.sprintf "r%02d" i) in
      if List.mem i sampled then Splan.Sample (Sampler.Bernoulli 0.5, scan)
      else scan
    in
    let p = ref (leaf 0) in
    for i = 1 to n_rels - 1 do
      p := Splan.Cross (!p, leaf i)
    done;
    !p
  in
  let f = Expr.col "r04_v" in

  let t0 = Unix.gettimeofday () in
  let report, analysis = Sbox.stream ~seed:11 db plan ~f in
  let elapsed_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in

  let sym = analysis.Rewrite.sym in
  Format.printf "relations:        %d (dense limit is %d)@." n_rels
    Gus_util.Subset.max_universe;
  Format.printf "symbolic design:  %a@." Symalg.pp sym;
  Format.printf "live relations:   %d of %d@."
    (Gus_util.Subset.cardinal (Symalg.live_mask sym))
    n_rels;
  Format.printf "estimate:         %.4g  (stddev %.3g, %d sample tuples)@."
    report.Sbox.estimate report.Sbox.stddev report.Sbox.n_tuples;
  Format.printf "exact:            %.4g@." (Sbox.exact db plan ~f);
  Format.printf "rewrite+estimate: %.2f ms@." elapsed_ms
