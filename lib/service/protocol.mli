(** Deprecated engine-keyed shim over {!Wire} + {!Session}.

    The NDJSON protocol itself is documented on {!Session} (dispatch,
    per-connection handle namespace) and {!Wire} (renderings, the
    stable error-code registry); DESIGN.md §8 gives the grammar and §13
    the network transport.  This module keeps the original
    engine-keyed entry points alive for existing callers by memoizing
    one default session per engine (physical equality, MRU-capped), so
    repeated {!handle_line} calls on one engine share a handle
    namespace exactly like the old global-table behavior.

    New code should create a {!Session.t} explicitly. *)

val error_of_exn : exn -> (string * string) option
(** Alias of {!Wire.error_of_exn} — shared with the CLI's [--json]
    error rendering (Cli_common). *)

val response_json : handle:string -> Engine.outcome -> Json.t
(** {!Wire.response_json} without the shed decoration. *)

val source_of_request : Json.t -> Catalog.source
(** Alias of {!Wire.source_of_request}; [Replay] feeds journaled
    register events back through it. *)

val result_json : Gus_sql.Runner.result -> Json.t
val exact_json : Gus_sql.Runner.response -> Json.t option
(** Estimate/ground-truth fragments of {!response_json}, shared with
    [gusdb query --json] so the one-shot and serving renderings cannot
    diverge (the parity cram compares them byte for byte). *)

val handle_request : Engine.t -> Json.t -> Json.t
(** Process one parsed request object through the engine's default
    session.  Total: protocol-level and user-facing execution errors
    come back as error objects. *)

val handle_line : Engine.t -> string -> string
(** {!handle_request} on one raw NDJSON line (adds JSON parsing to the
    error envelope).  The result has no embedded newlines. *)

val serve : ?after:(unit -> unit) -> Engine.t -> in_channel -> out_channel -> unit
(** The stdio loop on the engine's default session: read lines to EOF,
    skip blank ones, answer each with one flushed line.  [after] runs
    once per answered request — the CLI's [--prom-out] periodic
    exposition dump hangs off it. *)
