module Vec = Gus_util.Vec

let select pred rel =
  let keep = Expr.bind_predicate rel.Relation.schema pred in
  let out =
    Relation.derived
      ~name:(Printf.sprintf "select(%s)" rel.Relation.name)
      rel.Relation.schema rel.Relation.lineage_schema
  in
  Relation.iter (fun tup -> if keep tup then Relation.append_tuple out tup) rel;
  out

let project fields rel =
  let schema = rel.Relation.schema in
  let evals = List.map (fun (_, e) -> Expr.bind schema e) fields in
  let out_schema =
    Schema.make
      (List.map
         (fun (name, e) ->
           let ty =
             (* Infer a column type from the expression shape when obvious;
                fall back to float, the common case for aggregated inputs. *)
             match e with
             | Expr.Col c -> Schema.column_ty schema (Schema.index_of schema c)
             | Expr.Lit v -> Option.value (Value.type_of v) ~default:Value.TFloat
             | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ -> Value.TBool
             | _ -> Value.TFloat
           in
           { Schema.name; ty })
         fields)
  in
  let out =
    Relation.derived
      ~name:(Printf.sprintf "project(%s)" rel.Relation.name)
      out_schema rel.Relation.lineage_schema
  in
  Relation.iter
    (fun tup ->
      let values = Array.of_list (List.map (fun f -> f tup) evals) in
      Relation.append_tuple out (Tuple.with_values tup values))
    rel;
  out

let joined_name a b =
  Printf.sprintf "(%s*%s)" a.Relation.name b.Relation.name

let join_output a b =
  let schema = Schema.concat a.Relation.schema b.Relation.schema in
  let lschema =
    Lineage.schema_concat a.Relation.lineage_schema b.Relation.lineage_schema
  in
  Relation.derived ~name:(joined_name a b) schema lschema

let cross a b =
  let out = join_output a b in
  Relation.iter
    (fun ta -> Relation.iter (fun tb -> Relation.append_tuple out (Tuple.concat ta tb)) b)
    a;
  out

let equi_join ~left_key ~right_key a b =
  let out = join_output a b in
  let lkey = Expr.bind a.Relation.schema left_key in
  let rkey = Expr.bind b.Relation.schema right_key in
  (* Build on the smaller side. *)
  let build, probe, build_key, probe_key, build_left =
    if Relation.cardinality a <= Relation.cardinality b then (a, b, lkey, rkey, true)
    else (b, a, rkey, lkey, false)
  in
  let table : (Value.t, Tuple.t Vec.t) Hashtbl.t =
    Hashtbl.create (max 16 (Relation.cardinality build))
  in
  Relation.iter
    (fun tup ->
      let k = build_key tup in
      if not (Value.is_null k) then begin
        let bucket =
          match Hashtbl.find_opt table k with
          | Some v -> v
          | None ->
              let v = Vec.create () in
              Hashtbl.add table k v;
              v
        in
        Vec.push bucket tup
      end)
    build;
  Relation.iter
    (fun tup ->
      let k = probe_key tup in
      if not (Value.is_null k) then
        match Hashtbl.find_opt table k with
        | None -> ()
        | Some bucket ->
            Vec.iter
              (fun btup ->
                let joined =
                  if build_left then Tuple.concat btup tup else Tuple.concat tup btup
                in
                Relation.append_tuple out joined)
              bucket)
    probe;
  out

let theta_join pred a b =
  let out = join_output a b in
  let keep = Expr.bind_predicate out.Relation.schema pred in
  Relation.iter
    (fun ta ->
      Relation.iter
        (fun tb ->
          let joined = Tuple.concat ta tb in
          if keep joined then Relation.append_tuple out joined)
        b)
    a;
  out

let require_same_shape a b =
  if Schema.arity a.Relation.schema <> Schema.arity b.Relation.schema then
    invalid_arg "Ops.union: schema arity mismatch";
  if not (Lineage.schema_equal a.Relation.lineage_schema b.Relation.lineage_schema)
  then invalid_arg "Ops.union: lineage schema mismatch"

let union_all a b =
  require_same_shape a b;
  let out =
    Relation.derived
      ~name:(Printf.sprintf "(%s+%s)" a.Relation.name b.Relation.name)
      a.Relation.schema a.Relation.lineage_schema
  in
  Relation.iter (Relation.append_tuple out) a;
  Relation.iter (Relation.append_tuple out) b;
  out

let union_lineage a b =
  require_same_shape a b;
  let out =
    Relation.derived
      ~name:(Printf.sprintf "(%s|%s)" a.Relation.name b.Relation.name)
      a.Relation.schema a.Relation.lineage_schema
  in
  let seen = Hashtbl.create (Relation.cardinality a + Relation.cardinality b) in
  let push tup =
    let key = Array.to_list tup.Tuple.lineage in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Relation.append_tuple out tup
    end
  in
  Relation.iter push a;
  Relation.iter push b;
  out

let distinct rel =
  let out =
    Relation.derived
      ~name:(Printf.sprintf "distinct(%s)" rel.Relation.name)
      rel.Relation.schema rel.Relation.lineage_schema
  in
  let seen = Hashtbl.create (max 16 (Relation.cardinality rel)) in
  Relation.iter
    (fun tup ->
      let key = Array.to_list (Array.map Value.to_display tup.Tuple.values) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Relation.append_tuple out tup
      end)
    rel;
  out

type agg = Sum of Expr.t | Count | Avg of Expr.t | Min of Expr.t | Max of Expr.t

type agg_state = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let state_create () =
  { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let state_add st x =
  st.count <- st.count + 1;
  st.sum <- st.sum +. x;
  if x < st.min_v then st.min_v <- x;
  if x > st.max_v then st.max_v <- x

let agg_expr = function
  | Sum e | Avg e | Min e | Max e -> Some e
  | Count -> None

let finish agg st =
  match agg with
  | Sum _ -> st.sum
  | Count -> float_of_int st.count
  | Avg _ ->
      if st.count = 0 then invalid_arg "Ops.aggregate: AVG of empty input"
      else st.sum /. float_of_int st.count
  | Min _ ->
      if st.count = 0 then invalid_arg "Ops.aggregate: MIN of empty input"
      else st.min_v
  | Max _ ->
      if st.count = 0 then invalid_arg "Ops.aggregate: MAX of empty input"
      else st.max_v

let aggregate agg rel =
  let st = state_create () in
  begin
    match agg_expr agg with
    | None -> Relation.iter (fun _ -> state_add st 1.0) rel
    | Some e ->
        let f = Expr.bind rel.Relation.schema e in
        Relation.iter
          (fun tup ->
            match f tup with
            | Value.Null -> ()
            | v -> state_add st (Value.to_float v))
          rel
  end;
  finish agg st

let group_by ~keys ~aggs rel =
  let schema = rel.Relation.schema in
  let key_fns = List.map (Expr.bind schema) keys in
  let agg_fns =
    List.map
      (fun (_, a) -> (a, Option.map (Expr.bind schema) (agg_expr a)))
      aggs
  in
  let groups : (string list, Value.t list * agg_state list) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = Vec.create () in
  Relation.iter
    (fun tup ->
      let key_vals = List.map (fun f -> f tup) key_fns in
      let key = List.map Value.to_display key_vals in
      let _, states =
        match Hashtbl.find_opt groups key with
        | Some entry -> entry
        | None ->
            let entry = (key_vals, List.map (fun _ -> state_create ()) agg_fns) in
            Hashtbl.add groups key entry;
            Vec.push order key;
            entry
      in
      List.iter2
        (fun st (_, f) ->
          match f with
          | None -> state_add st 1.0
          | Some f -> begin
              match f tup with
              | Value.Null -> ()
              | v -> state_add st (Value.to_float v)
            end)
        states agg_fns)
    rel;
  let key_cols =
    List.mapi (fun i _ -> { Schema.name = Printf.sprintf "k%d" i; ty = Value.TStr }) keys
  in
  let agg_cols =
    List.map (fun (name, _) -> { Schema.name; ty = Value.TFloat }) aggs
  in
  let out_schema = Schema.make (key_cols @ agg_cols) in
  let out = Relation.derived ~name:"group_by" out_schema Lineage.schema_empty in
  Vec.iter
    (fun key ->
      let key_vals, states = Hashtbl.find groups key in
      let key_strs = List.map (fun v -> Value.Str (Value.to_display v)) key_vals in
      let agg_vals =
        List.map2 (fun st (a, _) -> Value.Float (finish a st)) states agg_fns
      in
      Relation.append_tuple out
        (Tuple.make (Array.of_list (key_strs @ agg_vals)) [||]))
    order;
  out
