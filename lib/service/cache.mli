(** Bounded LRU cache for estimate artifacts.

    Keys are canonical strings built by {!Engine} from
    [(dataset, catalog version, sql, execution params)] — see DESIGN.md
    §8 for the exact key grammar.  Values are whatever the caller stores
    (the engine caches full {!Gus_sql.Runner.response}s: SBox estimates,
    stddevs, intervals, subsample variance artifacts).

    Every {!find} bumps either [cache.hits] or [cache.misses], every
    capacity eviction bumps [cache.evictions] (all via
    {!Gus_obs.Metrics}, so they only count while metrics collection is
    enabled; serve mode enables it at startup).  The structure is {e not}
    thread-safe: the engine probes and fills it from the driving thread
    only, never from pool lanes. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit moves the entry to most-recently-used. *)

val mem : 'a t -> string -> bool
(** Non-instrumenting, recency-preserving probe (for stats endpoints). *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace as most-recently-used; evicts the least recently
    used entry when over capacity. *)

val remove_prefix : 'a t -> prefix:string -> int
(** Drop every entry whose key starts with [prefix] (catalog
    invalidation); returns how many were dropped.  Not counted as
    evictions — [cache.evictions] means capacity pressure. *)

val clear : 'a t -> unit

val keys_lru_order : 'a t -> string list
(** Least recently used first — exposed for the eviction-order tests. *)
