examples/quickstart.ml: Expr Float Format Gus_core Gus_estimator Gus_relational Gus_sampling Gus_stats Gus_tpch
