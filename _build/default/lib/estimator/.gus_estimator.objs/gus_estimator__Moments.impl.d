lib/estimator/moments.ml: Array Expr Gus_relational Gus_util Hashtbl Int64 Lineage Relation Tuple
