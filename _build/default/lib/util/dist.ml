let uniform_int rng lo hi =
  if hi < lo then invalid_arg "Dist.uniform_int: hi < lo";
  lo + Rng.int rng (hi - lo + 1)

let exponential rng lambda =
  if lambda <= 0.0 then invalid_arg "Dist.exponential: lambda <= 0";
  let u = 1.0 -. Rng.float rng in
  -.log u /. lambda

let gaussian rng ~mu ~sigma =
  let u1 = 1.0 -. Rng.float rng in
  let u2 = Rng.float rng in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

type zipf = { cum : float array }

let zipf_create ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf_create: n <= 0";
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 1 to n do
    total := !total +. (1.0 /. Float.pow (float_of_int k) s);
    cum.(k - 1) <- !total
  done;
  let norm = !total in
  Array.iteri (fun i c -> cum.(i) <- c /. norm) cum;
  { cum }

let zipf_draw z rng =
  let u = Rng.float rng in
  (* Smallest index with cum.(i) >= u. *)
  let lo = ref 0 and hi = ref (Array.length z.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cum.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let pareto rng ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then invalid_arg "Dist.pareto";
  let u = 1.0 -. Rng.float rng in
  scale /. Float.pow u (1.0 /. shape)
