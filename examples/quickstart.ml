(* Quickstart: estimate a SUM over a sampled join and get confidence
   intervals, using the library API directly (no SQL).

   Run with:  dune exec examples/quickstart.exe *)

module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Sampler = Gus_sampling.Sampler
module Interval = Gus_stats.Interval
open Gus_relational

let () =
  (* 1. A database.  Here: generated TPC-H-style data; in an application
     you would load your own relations (see Csv.load / Relation.append_row). *)
  let db = Gus_tpch.Tpch.generate ~seed:1 ~scale:1.0 () in

  (* 2. A sampling plan: Bernoulli 10% of lineitem joined with a 1000-row
     WOR sample of orders — the paper's Query 1. *)
  let plan =
    Splan.equi_join
      (Splan.sample (Sampler.Bernoulli 0.10) (Splan.scan "lineitem"))
      (Splan.sample (Sampler.Wor 1000) (Splan.scan "orders"))
      ~on:("l_orderkey", "o_orderkey")
  in
  let f = Expr.(col "l_extendedprice" * (float 1.0 - col "l_discount")) in

  (* 3. Execute the plan and analyze the sample in one call: the rewriter
     pushes the samplers up into a single GUS quasi-operator (Props 4-8),
     the SBox computes the unbiased estimate and its variance (Thm 1). *)
  let report, analysis = Sbox.run ~seed:7 db plan ~f in

  Format.printf "sample:   %d result tuples@." report.Sbox.n_tuples;
  Format.printf "top GUS:  @[%a@]@.@." Gus_core.Gus.pp (Lazy.force analysis.Rewrite.gus);
  Format.printf "estimate: %.4g  (stddev %.3g)@." report.Sbox.estimate
    report.Sbox.stddev;
  Format.printf "95%% CI (normal):    %a@." Interval.pp
    (Sbox.interval Interval.Normal report);
  Format.printf "95%% CI (Chebyshev): %a@." Interval.pp
    (Sbox.interval Interval.Chebyshev report);

  (* 4. Compare with the exact answer (normally you would not compute it -
     that is the whole point - but this is a demo). *)
  let truth = Sbox.exact db plan ~f in
  Format.printf "@.exact answer: %.4g  (relative error %.2f%%)@." truth
    (100.0 *. Float.abs (report.Sbox.estimate -. truth) /. truth)
