(** A small, reusable domain pool (OCaml 5 [Domain], no dependencies).

    [create ~size] keeps [size - 1] worker domains parked on condition
    variables; {!run_chunks} fans a half-open index range out across them
    (the calling domain works too, as lane 0) and returns when every lane
    has finished.  A pool of size 1 spawns no domains and runs everything
    inline, so callers can thread one pool through unconditionally and
    degrade gracefully on single-core hosts, where
    [Domain.recommended_domain_count () = 1]. *)

type t

val create : size:int -> t
(** [create ~size] spawns [max 1 size - 1] worker domains.  Pools are
    cheap to keep around and meant to be reused; workers idle on a
    condition variable between jobs.  Every multi-lane pool is entered
    into a process-wide registry whose single [at_exit] hook shuts it
    down, so forgotten pools never block process exit. *)

val size : t -> int
(** Number of lanes (workers + the calling domain). *)

val is_live : t -> bool
(** [false] once {!shutdown} has run. *)

val default_par_threshold : int
(** Element count below which the chunk-parallel operators (moments
    passes, [Ops.select]/[Ops.project], the per-tuple samplers) stay
    sequential: 4096.  Shared across layers so "big enough to fan out"
    means one thing everywhere. *)

val chunks : t -> lo:int -> hi:int -> (int * int) array
(** The exact contiguous partition of [\[lo, hi)] that {!run_chunks}
    uses: at most [size t] chunks in index order, earlier chunks one
    element longer when the range does not divide evenly.  Exposed so
    callers can allocate per-chunk output slots and stitch them back in
    deterministic chunk order. *)

val run_chunks : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [run_chunks t ~lo ~hi f] partitions [\[lo, hi)] into {!chunks} and
    evaluates [f clo chi] on each, in parallel.  Blocks until all chunks
    are done.  If any chunk raises, one of the exceptions is re-raised
    after every lane has finished.  The caller must ensure chunk bodies
    touch disjoint mutable state.  A pool must not be shared by
    concurrent [run_chunks] calls.  Raises [Invalid_argument] on a pool
    that has been {!shutdown} (when the range is non-empty). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; {!run_chunks} on the
    pool raises afterwards. *)

val recommended_size : unit -> int
(** [max 1 (Domain.recommended_domain_count ())]. *)

val default_size : unit -> int
(** The size {!default} uses: {!set_default_size}'s override if set,
    else the [GUSDB_DOMAINS] environment variable (positive integer),
    else {!recommended_size}. *)

val default : unit -> t
(** A process-wide shared pool of {!default_size}, created lazily on
    first use and recreated if the size configuration changed or the
    previous default was shut down. *)

val set_default_size : int -> unit
(** Override the default-pool size (CLI [--pool-size]); takes precedence
    over [GUSDB_DOMAINS].  The next {!default} call picks it up.  Raises
    [Invalid_argument] on sizes < 1. *)
