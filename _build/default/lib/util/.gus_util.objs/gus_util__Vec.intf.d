lib/util/vec.mli:
