(** The SOA-equivalence rewriter (Section 4): transform a plan containing
    sampling operators into an analytically equivalent plan with a single
    GUS quasi-operator on top of a sample-free relational skeleton.

    The returned {!Gus.t} plus the executed sample's result tuples are all
    the SBox needs (Theorem 1 + Section 6).  The rewrite never executes
    anything; it is a pure bottom-up fold using Props. 4–8. *)

exception Unsupported of string
(** Raised for plans outside the GUS theory: with-replacement sampling,
    WOR or block sampling over derived inputs, self-joins (reported via the
    underlying [Lineage.Overlap]/[Gus.Incompatible] as [Unsupported]),
    union of samples of different expressions, DISTINCT above sampling
    (duplicate elimination needs more than second-order inclusion
    probabilities — paper Section 9). *)

type result = {
  skeleton : Splan.t;  (** the input with every sampling operator removed *)
  gus : Gus.t;  (** single equivalent GUS over the skeleton's lineage *)
  steps : (string * Gus.t) list;
      (** derivation trace, leaves first — the Figure-4 walk-through *)
}

val analyze : card:(string -> int) -> Splan.t -> result
(** [card] resolves base-relation cardinalities (needed to translate
    [WOR(n)] into [a = n/N]); typically [fun r -> Relation.cardinality
    (Database.find db r)]. *)

val analyze_db : Gus_relational.Database.t -> Splan.t -> result

val sampler_gus :
  card:(string -> int) ->
  over:Gus_relational.Lineage.schema ->
  base:bool ->
  Gus_sampling.Sampler.t ->
  Gus.t
(** GUS translation of one sampling operator applied to an input with the
    given lineage schema; [base] says whether the input is a bare [Scan]
    (WOR and block sampling are only translatable there). *)
