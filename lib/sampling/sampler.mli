(** Physical sampling operators (the paper's TABLESAMPLE implementations).

    Each sampler is a {e randomized filter} over one relation; applying one
    yields a relation with the same schema and (with one documented
    exception) the same lineage schema, containing a random subset of the
    rows.

    The exception is {!Block}: block-based sampling is a GUS method only at
    block granularity, so its output rewrites the lineage slot of the
    sampled relation to the {e block id} (see DESIGN.md).  All downstream
    analysis — grouping for y_S, lineage-keyed subsampling — remains exact
    under that convention.

    {!Wr} (with-replacement) is {e not} a GUS method (it is not a filter:
    the output may contain a base tuple several times).  It is provided as
    the classical baseline the paper compares against conceptually; the
    rewriter refuses to translate it and the experiments estimate it with
    the classical scale-up instead. *)

type t =
  | Bernoulli of float
      (** keep each row independently with probability p ∈ [0,1] *)
  | Wor of int  (** uniform fixed-size sample without replacement *)
  | Wr of int  (** uniform fixed-size sample with replacement; not GUS *)
  | Block of { rows_per_block : int; p : float }
      (** partition rows into consecutive blocks, keep each block
          independently with probability p *)
  | Hash_bernoulli of { seed : int; p : float }
      (** pseudo-random Bernoulli keyed on (seed, lineage id): the same
          base row gets the same decision wherever it appears (Section 7) *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical parameters (p outside [0,1],
    negative sizes…). *)

val apply :
  ?pool:Gus_util.Pool.t ->
  ?par_threshold:int ->
  t ->
  Gus_util.Rng.t ->
  Gus_relational.Relation.t ->
  Gus_relational.Relation.t
(** Draw a sample.  [Wor]/[Wr] of size ≥ cardinality return all rows
    (respectively, exactly [n] draws).  For [Hash_bernoulli] the RNG is
    unused: decisions come from the pseudo-random function, keyed on the
    first lineage slot.

    [?pool] (with at least [?par_threshold] input rows, default
    {!Gus_util.Pool.default_par_threshold}) parallelizes the per-tuple
    samplers.  [Hash_bernoulli] is a pure per-tuple function, so the
    pooled scan returns exactly the sequential sample.  [Bernoulli]
    switches to block-wise draws — one {!Gus_util.Rng.derive}d child
    stream per fixed 4096-row input block — which is deterministic in
    (seed, input) and independent of the pool's lane count, but a
    different (equally valid) sample than the sequential single-stream
    path; callers with pinned sequential fixtures must not pass [?pool].
    [Wor]/[Wr]/[Block] always run sequentially. *)

val uses_rng : t -> bool
(** Whether {!apply} consumes RNG state ([Hash_bernoulli] does not). *)

val per_tuple : t -> bool
(** Whether the sampler decides each row independently, without needing
    the input's cardinality ([Bernoulli], [Hash_bernoulli]) — the
    property that makes it streamable. *)

val sampling_fraction : t -> n:int -> float
(** Expected fraction of rows kept when applied to a relation of [n]
    rows. *)
