(* gusdb — command-line front end to the GUS sampling-algebra library.

   Subcommands:
     gen          generate a synthetic TPC-H-style database and write CSVs
     snapshot     write or inspect a mmap-able binary snapshot of the
                  database (restore via --data FILE or serve `register`)
     query        run a dialect query (with TABLESAMPLE) and print the
                  estimate with confidence intervals, next to ground truth
     plan         show a query's sampling plan, its SOA rewrite trace and
                  the resulting top GUS operator
     serve        long-lived NDJSON serving loop over stdin/stdout
                  (register / prepare / execute / batch / stats), with
                  optional --journal flight recording, --slo-* accuracy
                  thresholds and --prom-out Prometheus exposition
     replay       re-execute a serve journal and assert bit-identical
                  estimates
     experiments  run the paper-reproduction experiments

   Flags shared across subcommands live in Cli_common. *)

open Cmdliner
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Gus = Gus_core.Gus
module Json = Gus_service.Json
module C = Cli_common
open Gus_relational

let db_of ~scale ~seed = Gus_tpch.Tpch.generate ~seed ~scale ()

(* ---- gen ---- *)

let gen_cmd =
  let out_arg =
    let doc = "Output directory for the CSV files." in
    Arg.(value & opt string "data" & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let run scale seed out =
    let db = db_of ~scale ~seed in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iter
      (fun name ->
        let rel = Database.find db name in
        let path = Filename.concat out (name ^ ".csv") in
        Csv.save ~path rel;
        Printf.printf "%s: %d rows -> %s\n" name (Relation.cardinality rel) path)
      (Database.names db)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic TPC-H-style database.")
    Term.(const run $ C.scale_arg $ C.seed_arg $ out_arg)

(* ---- snapshot ---- *)

let snapshot_cmd =
  let out_arg =
    let doc = "Write a binary snapshot of the database to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let info_arg =
    let doc = "Load the snapshot at $(docv) and print its contents instead \
               of writing one." in
    Arg.(value & opt (some string) None & info [ "info" ] ~docv:"FILE" ~doc)
  in
  let print_db db =
    List.iter
      (fun name ->
        let rel = Database.find db name in
        Printf.printf "  %-10s %8d rows  %d columns\n" name
          (Relation.cardinality rel)
          (Schema.arity rel.Relation.schema))
      (Database.names db)
  in
  let run scale data out info_path =
    C.or_fail @@ fun () ->
    match (out, info_path) with
    | None, None ->
        Printf.eprintf
          "gusdb snapshot: either -o FILE (write) or --info FILE (inspect) \
           is required\n";
        exit 124
    | _, Some path ->
        let db = Snapshot.load ~path in
        Printf.printf "%s: format v%d, %d relations, %d rows\n" path
          Snapshot.version
          (List.length (Database.names db))
          (Database.total_rows db);
        print_db db
    | Some path, None ->
        let db = C.db_source ~scale data in
        Snapshot.save ~path db;
        let size = (Unix.stat path).Unix.st_size in
        Printf.printf "wrote %s: %d relations, %d rows, %d bytes\n" path
          (List.length (Database.names db))
          (Database.total_rows db) size;
        print_db db
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Write (or inspect) a versioned binary snapshot of the \
             database.  Restoring a snapshot (query/serve with a snapshot \
             path, or register with source \"snapshot\") memory-maps the \
             column data instead of re-generating or re-parsing it.")
    Term.(const run $ C.scale_arg $ C.data_arg $ out_arg $ info_arg)

(* ---- query ---- *)

let sql_arg =
  let doc = "The query text (the paper's dialect: SELECT aggregates FROM \
             relations with TABLESAMPLE, WHERE conjunctions)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)

let query_cmd =
  let exact_arg =
    let doc = "Also evaluate the query exactly (no sampling) for comparison." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let explain_arg =
    let doc = "EXPLAIN ANALYZE: execute the plan with per-node profiling \
               and print the tree annotated with wall time, row counts, \
               sampling rates (a, b0) and variance contributions." in
    Arg.(value & flag & info [ "explain-analyze" ] ~doc)
  in
  let run scale seed sql exact explain json data pool_size trace_out
      metrics_out =
   C.or_fail ~json @@ fun () ->
    C.apply_pool_size pool_size;
    let db = C.db_source ~scale data in
    C.with_obs ~trace_out ~metrics_out @@ fun () ->
    let rs =
      Gus_sql.Runner.run_request db
        (Gus_sql.Runner.request ~seed ~exact ~explain sql)
    in
    if json then
      print_endline
        (Json.to_string
           (Json.obj
              [ ("ok", Some (Json.Bool true));
                ( "result",
                  Some (Gus_service.Protocol.result_json rs.Gus_sql.Runner.rs_result)
                );
                ("exact", Gus_service.Protocol.exact_json rs) ]))
    else begin
      (match rs.Gus_sql.Runner.rs_explain with
      | Some ex -> Format.printf "%a@." Gus_sql.Runner.pp_explain ex
      | None ->
          Format.printf "%a@." Gus_sql.Runner.pp_result
            rs.Gus_sql.Runner.rs_result);
      if exact then begin
        Format.printf "@.ground truth (sampling ignored):@.";
        List.iter
          (fun (label, v) -> Format.printf "  %s = %.6g@." label v)
          rs.Gus_sql.Runner.rs_exact;
        List.iter
          (fun (keys, cells) ->
            List.iter
              (fun (label, v) ->
                Format.printf "  [%s] %s = %.6g@." (String.concat ", " keys)
                  label v)
              cells)
          rs.Gus_sql.Runner.rs_exact_groups
      end
    end
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Estimate an aggregate query over samples.")
    Term.(const run $ C.scale_arg $ C.seed_arg $ sql_arg $ exact_arg
          $ explain_arg $ C.json_arg $ C.data_arg $ C.pool_size_arg
          $ C.trace_out_arg $ C.metrics_out_arg)

(* ---- plan ---- *)

let plan_cmd =
  let run scale sql data =
   C.or_fail @@ fun () ->
    let db = C.db_source ~scale data in
    let query = Gus_sql.Parser.parse sql in
    let { Gus_sql.Planner.plan; _ } = Gus_sql.Planner.compile db query in
    Format.printf "sampling plan:@.%a@." Splan.pp_tree plan;
    let analysis = Rewrite.analyze_db db plan in
    Format.printf "SOA rewrite (%d steps):@."
      (List.length analysis.Rewrite.steps);
    List.iter
      (fun (what, g) ->
        Format.printf "  %-40s a = %.6g@." what g.Gus_core.Symalg.a)
      analysis.Rewrite.steps;
    (* Wide plans have no dense materialization: fall back to the
       symbolic sum-of-products rendering. *)
    (match Rewrite.dense analysis with
    | g -> Format.printf "@.top GUS quasi-operator:@.  @[%a@]@." Gus.pp g
    | exception Gus.Incompatible _ ->
        Format.printf "@.top GUS quasi-operator (symbolic):@.  @[%a@]@."
          Gus_core.Symalg.pp analysis.Rewrite.sym);
    Format.printf "@.sample-free skeleton:@.%a@." Splan.pp_tree
      analysis.Rewrite.skeleton
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Show the sampling plan, its SOA-equivalence rewrite and top GUS.")
    Term.(const run $ C.scale_arg $ sql_arg $ C.data_arg)

(* ---- lint ---- *)

let lint_cmd =
  let module Lint = Gus_analysis.Lint in
  let module D = Gus_analysis.Diagnostic in
  let sql_opt_arg =
    let doc = "The query text to lint (omit with $(b,--codes))." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let small_a_arg =
    let doc = "Warn (GUS010) when the plan's effective sampling fraction is \
               positive but below $(docv)." in
    Arg.(value & opt float Lint.default_config.Lint.small_a
         & info [ "small-a" ] ~docv:"A" ~doc)
  in
  let variance_bound_arg =
    let doc = "Hint (GUS015) when the Theorem-1 worst-case relative \
               variance bound reaches $(docv)." in
    Arg.(value & opt float Lint.default_config.Lint.variance_bound
         & info [ "variance-bound" ] ~docv:"B" ~doc)
  in
  let cost_budget_arg =
    let doc = "Warn (GUS014) when the predicted coefficient-enumeration \
               cost (live moment passes x estimated groups) exceeds $(docv)." in
    Arg.(value & opt float Lint.default_config.Lint.cost_budget
         & info [ "cost-budget" ] ~docv:"C" ~doc)
  in
  let fix_arg =
    let doc = "Apply every machine-applicable fix attached to the \
               diagnostics (to a fixpoint), print the rewritten plan and \
               re-lint it.  Every fix preserves the skeleton and the \
               estimator's expectation." in
    Arg.(value & flag & info [ "fix" ] ~doc)
  in
  let codes_arg =
    let doc = "List every diagnostic code with its severity, summary and \
               paper citation, then exit." in
    Arg.(value & flag & info [ "codes" ] ~doc)
  in
  let dense_coeffs_arg =
    let doc = "Run the legacy dense coefficient engine (materialize all \
               2^n second-order probabilities) instead of the symbolic \
               sum-of-products algebra.  Output is byte-identical where \
               both engines apply; this flag exists as the comparison \
               baseline and fails on plans past the dense width limit." in
    Arg.(value & flag & info [ "dense-coeffs" ] ~doc)
  in
  let print_codes () =
    List.iter
      (fun code ->
        Printf.printf "%s %-7s %-55s [%s]\n" (D.code_id code)
          (D.severity_label (D.severity_of_code code))
          (D.title code) (D.citation code))
      D.all_codes
  in
  let run scale sql json small_a variance_bound cost_budget codes fix
      dense_coeffs data =
    if codes then print_codes ()
    else
      match sql with
      | None ->
          Printf.eprintf "gusdb lint: a query is required (or use --codes)\n";
          exit 124
      | Some sql ->
          C.or_fail ~json @@ fun () ->
          let db = C.db_source ~scale data in
          let config = { Lint.small_a; variance_bound; cost_budget } in
          let engine = if dense_coeffs then `Dense else `Symbolic in
          let plan, report = Gus_sql.Runner.lint ~config ~engine db sql in
          if json then print_endline (Lint.to_json report)
          else begin
            Format.printf "sampling plan:@.%a@." Lint.pp_annotated_plan
              (plan, report);
            Format.printf "%a" Lint.pp_report report
          end;
          if fix then begin
            let card r =
              Relation.cardinality (Database.find db r)
            in
            let fixed, applied = Lint.apply_fixes ~config ~card plan in
            if applied = [] then Format.printf "@.no applicable fixes.@."
            else begin
              Format.printf "@.applied %d fix(es):@." (List.length applied);
              List.iter
                (fun f ->
                  Format.printf "  %s@." f.Gus_analysis.Fix.summary)
                applied;
              let report' = Lint.run ~config ~card fixed in
              Format.printf "fixed plan:@.%a@." Lint.pp_annotated_plan
                (fixed, report');
              Format.printf "%s@." (Lint.summary report')
            end
          end;
          if Lint.errors report <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically check a query's sampling plan against the GUS \
             algebra's preconditions (Props 5-9, Section 9) without \
             executing it, reporting every violation, warning and hint at \
             once.")
    Term.(const run $ C.scale_arg $ sql_opt_arg $ C.json_arg $ small_a_arg
          $ variance_bound_arg $ cost_budget_arg $ codes_arg $ fix_arg
          $ dense_coeffs_arg $ C.data_arg)

(* ---- lint-workload ---- *)

let lint_workload_cmd =
  let dir_arg =
    let doc = "Directory holding the SQL corpus ($(b,*.sql) files, \
               recursively)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let dense_coeffs_arg =
    let doc = "Run the legacy dense coefficient engine instead of the \
               symbolic sum-of-products algebra (byte-identical output; \
               comparison baseline)." in
    Arg.(value & flag & info [ "dense-coeffs" ] ~doc)
  in
  let run scale dir dense_coeffs data =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "gusdb lint-workload: no such directory %s\n" dir;
      exit 124
    end;
    C.or_fail ~json:true @@ fun () ->
    let db = C.db_source ~scale data in
    let engine = if dense_coeffs then `Dense else `Symbolic in
    let rep = Gus_service.Workload_lint.run ~engine db dir in
    print_endline (Json.to_string (Gus_service.Workload_lint.to_json rep));
    exit (Gus_service.Workload_lint.exit_code rep)
  in
  Cmd.v
    (Cmd.info "lint-workload"
       ~doc:"Lint every query of a SQL corpus directory into one \
             aggregated JSON report.  Exit codes are a stable CI \
             contract: 0 all clean, 1 at least one error-severity \
             finding or unparsable query, 124 no such directory.")
    Term.(const run $ C.scale_arg $ dir_arg $ dense_coeffs_arg $ C.data_arg)

(* ---- serve ---- *)

let serve_cmd =
  let cache_capacity_arg =
    let doc = "Capacity of the response LRU cache (entries)." in
    Arg.(value & opt int 128 & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let journal_arg =
    let doc = "Record every register/execute/batch item to $(docv) as \
               NDJSON (the flight-recorder journal `gusdb replay` \
               re-executes and verifies bit-identically)." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let journal_capacity_arg =
    let doc = "In-memory journal ring capacity (events); older events \
               are overwritten (and counted) once full." in
    Arg.(value & opt int 4096 & info [ "journal-capacity" ] ~docv:"N" ~doc)
  in
  let slo_rel_ci_arg =
    let doc = "Accuracy SLO: flag executions whose relative 95% CI \
               half-width exceeds $(docv) (journal $(b,breach:true), \
               $(b,slo.breaches.rel_ci) counter, rate-limited stderr log)." in
    Arg.(value & opt (some float) None
         & info [ "slo-rel-ci" ] ~docv:"FRACTION" ~doc)
  in
  let slo_p99_ms_arg =
    let doc = "Latency SLO: flag executions slower than $(docv) \
               milliseconds.  The threshold is the p99 objective — if \
               more than 1% of executions breach it, the SLO is missed \
               (compare $(b,slo.breaches.latency) against \
               $(b,serve.requests.execute))." in
    Arg.(value & opt (some float) None & info [ "slo-p99-ms" ] ~docv:"MS" ~doc)
  in
  let prom_out_arg =
    let doc = "Write the Prometheus text exposition of the metrics \
               registry to $(docv) (atomic rename), refreshed at most \
               once per second after a response and once at EOF — point \
               a node_exporter textfile collector at it." in
    Arg.(value & opt (some string) None & info [ "prom-out" ] ~docv:"FILE" ~doc)
  in
  let run cache_capacity journal_path journal_capacity slo_rel_ci slo_p99_ms
      prom_out pool_size trace_out metrics_out =
    C.or_fail @@ fun () ->
    C.apply_pool_size pool_size;
    C.with_obs ~trace_out ~metrics_out @@ fun () ->
    (* The stats op reports the metrics snapshot (cache.hits & friends),
       so collection is always on in serve mode — --metrics-out merely
       adds the file dump at EOF. *)
    Gus_obs.Metrics.set_enabled true;
    let sink = Option.map open_out journal_path in
    let journal =
      Option.map
        (fun sink ->
          Gus_obs.Journal.create ~capacity:journal_capacity ~sink ())
        sink
    in
    let slo =
      { Gus_obs.Journal.max_rel_ci = slo_rel_ci; max_latency_ms = slo_p99_ms }
    in
    let on_breach =
      if slo = Gus_obs.Journal.no_slo then None
      else Some (fun line -> Printf.eprintf "gusdb: %s\n%!" line)
    in
    let engine =
      Gus_service.Engine.create ~cache_capacity
        ~pool:(Gus_util.Pool.default ()) ?journal ~slo ?on_breach ()
    in
    let after =
      match prom_out with
      | None -> fun () -> ()
      | Some path ->
          let last = ref (Gus_obs.Trace.now_ns ()) in
          fun () ->
            let now = Gus_obs.Trace.now_ns () in
            if now - !last >= 1_000_000_000 then begin
              last := now;
              Gus_obs.Promexp.write_file path
            end
    in
    Gus_service.Protocol.serve ~after engine stdin stdout;
    Option.iter Gus_obs.Promexp.write_file prom_out;
    Option.iter close_out sink
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve prepared queries over a line-oriented NDJSON protocol on \
             stdin/stdout: register datasets, prepare once, execute many \
             times with per-call seeds and sampling rates, batch across \
             the domain pool, inspect cache/catalog stats.  With \
             $(b,--journal) every execution is flight-recorded with its \
             estimate, variance, relative CI half-width and top \
             variance-share node; $(b,--slo-rel-ci)/$(b,--slo-p99-ms) mark \
             breaches; $(b,--prom-out) exports Prometheus text format.")
    Term.(const run $ cache_capacity_arg $ journal_arg $ journal_capacity_arg
          $ slo_rel_ci_arg $ slo_p99_ms_arg $ prom_out_arg $ C.pool_size_arg
          $ C.trace_out_arg $ C.metrics_out_arg)

(* ---- replay ---- *)

let replay_cmd =
  let journal_file_arg =
    let doc = "NDJSON journal written by `gusdb serve --journal`." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOURNAL" ~doc)
  in
  let float_str v =
    if Float.is_nan v then "nan"
    else if v = Float.infinity then "inf"
    else if v = Float.neg_infinity then "-inf"
    else Json.number_to_string v
  in
  let run journal json =
    let module Replay = Gus_service.Replay in
    (match Replay.run_file journal with
    | exception Replay.Corrupt { line; message } ->
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [ ("ok", Json.Bool false);
                    ( "error",
                      Json.Obj
                        [ ("code", Json.Str "corrupt_journal");
                          ("line", Json.Num (float_of_int line));
                          ("message", Json.Str message) ] ) ]));
        Printf.eprintf "gusdb replay: %s:%d: corrupted journal line: %s\n"
          journal line message;
        exit 1
    | exception e -> C.or_fail ~json (fun () -> raise e)
    | report ->
        let mismatch_json (m : Replay.mismatch) =
          Json.Obj
            [ ("line", Json.Num (float_of_int m.Replay.mm_line));
              ("sql", Json.Str m.Replay.mm_sql);
              ("field", Json.Str m.Replay.mm_field);
              ("journaled", Json.Str (float_str m.Replay.mm_journaled));
              ("replayed", Json.Str (float_str m.Replay.mm_replayed)) ]
        in
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [ ("ok", Json.Bool (report.Replay.rp_mismatches = []));
                    ("op", Json.Str "replay");
                    ( "registers",
                      Json.Num (float_of_int report.Replay.rp_registers) );
                    ( "skipped",
                      Json.Num (float_of_int report.Replay.rp_skipped) );
                    ( "executions",
                      Json.Num (float_of_int report.Replay.rp_executions) );
                    ( "matched",
                      Json.Num (float_of_int report.Replay.rp_matched) );
                    ( "mismatches",
                      Json.List
                        (List.map mismatch_json report.Replay.rp_mismatches) )
                  ]))
        else begin
          Printf.printf
            "replayed %d execution(s) over %d registered dataset(s)%s\n"
            report.Replay.rp_executions report.Replay.rp_registers
            (if report.Replay.rp_skipped > 0 then
               Printf.sprintf " (%d register event(s) skipped)"
                 report.Replay.rp_skipped
             else "");
          if report.Replay.rp_mismatches = [] then
            Printf.printf "all %d estimate(s) bit-identical\n"
              report.Replay.rp_matched
          else
            List.iter
              (fun (m : Replay.mismatch) ->
                Printf.printf
                  "MISMATCH line %d [%s]: journaled %s, replayed %s  (%s)\n"
                  m.Replay.mm_line m.Replay.mm_field
                  (float_str m.Replay.mm_journaled)
                  (float_str m.Replay.mm_replayed)
                  m.Replay.mm_sql)
              report.Replay.rp_mismatches
        end;
        if report.Replay.rp_mismatches <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-execute a serve journal and assert bit-identical \
             estimates.  Rebuilds each journaled dataset from its \
             recorded source, re-runs every execution with its journaled \
             seed/rates/explain/exact, and compares estimate, stddev and \
             variance bit for bit.  Exit 1 on any mismatch or a \
             corrupted journal line.")
    Term.(const run $ journal_file_arg $ C.json_arg)

(* ---- repl ---- *)

let repl_cmd =
  let run scale seed =
    let db = db_of ~scale ~seed:C.generation_seed in
    Printf.printf
      "gusdb repl - %d relations, %d rows (scale %g).\n\
       Terminate queries with ';'.  Commands: \\q quit, \\plan <sql>;, \
       \\exact <sql>;, \\tables.\n"
      (List.length (Database.names db))
      (Database.total_rows db) scale;
    let seed = ref seed in
    let buf = Buffer.create 256 in
    let try_read () = try Some (input_line stdin) with End_of_file -> None in
    let rec loop () =
      if Buffer.length buf = 0 then print_string "gus> " else print_string "...> ";
      flush stdout;
      match try_read () with
      | None -> print_newline ()
      | Some line ->
          let line = String.trim line in
          if line = "\\q" then print_endline "bye."
          else if line = "\\tables" then begin
            List.iter
              (fun n ->
                Printf.printf "  %-10s %7d rows  %s\n" n
                  (Relation.cardinality (Database.find db n))
                  (Format.asprintf "%a" Schema.pp (Database.find db n).Relation.schema))
              (Database.names db);
            loop ()
          end
          else begin
            Buffer.add_string buf line;
            Buffer.add_char buf ' ';
            if String.length line > 0 && String.contains line ';' then begin
              let text = String.trim (Buffer.contents buf) in
              Buffer.clear buf;
              incr seed;
              (try
                 if String.length text >= 5 && String.sub text 0 5 = "\\plan" then begin
                   let sql = String.sub text 5 (String.length text - 5) in
                   let query = Gus_sql.Parser.parse sql in
                   let { Gus_sql.Planner.plan; _ } = Gus_sql.Planner.compile db query in
                   Format.printf "%a" Splan.pp_tree plan;
                   let analysis = Rewrite.analyze_db db plan in
                   Format.printf "@[%a@]@." Gus.pp (Lazy.force analysis.Rewrite.gus)
                 end
                 else if String.length text >= 6 && String.sub text 0 6 = "\\exact"
                 then begin
                   let sql = String.sub text 6 (String.length text - 6) in
                   List.iter
                     (fun (label, v) -> Format.printf "  %s = %.6g@." label v)
                     (Gus_sql.Runner.run_exact db sql)
                 end
                 else
                   Format.printf "%a@."
                     Gus_sql.Runner.pp_result
                     (Gus_sql.Runner.run ~seed:!seed db text)
               with
              | Gus_sql.Parser.Error msg | Gus_sql.Planner.Error msg ->
                  Printf.printf "error: %s\n" msg
              | Gus_sql.Lexer.Error { message; _ } ->
                  Printf.printf "lexical error: %s\n" message
              | Rewrite.Unsupported msg -> Printf.printf "unsupported: %s\n" msg
              | Value.Type_error msg -> Printf.printf "type error: %s\n" msg
              | Schema.Unknown_column c -> Printf.printf "unknown column: %s\n" c);
              loop ()
            end
            else loop ()
          end
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query loop over a generated database.")
    Term.(const run $ C.scale_arg $ C.seed_arg)

(* ---- experiments ---- *)

let experiments_cmd =
  let id_arg =
    let doc = "Run a single experiment (T1..T4, E1..E7); default: all." in
    Arg.(value & opt (some string) None & info [ "e"; "experiment" ] ~docv:"ID" ~doc)
  in
  let full_arg =
    let doc = "Full-size runs (more trials, larger scale)." in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let list_arg =
    let doc = "List the available experiments." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let progress_arg =
    let doc = "Print live trial progress (completed/total, elapsed, ETA) \
               to stderr during Monte-Carlo loops." in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let run id full list pool_size progress trace_out metrics_out =
    let module R = Gus_experiments.Registry in
    C.apply_pool_size pool_size;
    Gus_experiments.Harness.set_progress progress;
    if list then
      List.iter
        (fun e ->
          Printf.printf "%-4s %-50s [%s]\n" e.R.id e.R.title e.R.paper_artifact)
        R.all
    else
      C.with_obs ~trace_out ~metrics_out @@ fun () ->
      match id with
      | None -> R.run_all ~quick:(not full) ()
      | Some id -> begin
          match R.find id with
          | Some e -> if full then e.R.run () else e.R.quick ()
          | None ->
              Printf.eprintf "unknown experiment %s\n" id;
              exit 1
        end
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the paper-reproduction experiments.")
    Term.(const run $ id_arg $ full_arg $ list_arg $ C.pool_size_arg
          $ progress_arg $ C.trace_out_arg $ C.metrics_out_arg)

let () =
  let doc = "aggregate estimation over sampled queries (GUS sampling algebra)" in
  let info = Cmd.info "gusdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; snapshot_cmd; query_cmd; plan_cmd; lint_cmd;
            lint_workload_cmd; serve_cmd; replay_cmd; repl_cmd;
            experiments_cmd ]))
