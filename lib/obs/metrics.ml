let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* The instrument registries are only mutated by [counter]/[gauge]/
   [histogram], which instrumented modules call at init time (before
   domains spawn) — so a plain Hashtbl under a mutex is plenty.  Updates
   to the instruments themselves are Atomic and lock-free. *)

let registry_mu = Mutex.create ()

type counter = int Atomic.t

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  Mutex.lock registry_mu;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.add counters name c;
        c
  in
  Mutex.unlock registry_mu;
  c

let incr c = if !enabled_flag then Atomic.incr c
let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

type gauge = float Atomic.t

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  Mutex.lock registry_mu;
  let g =
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
        let g = Atomic.make 0. in
        Hashtbl.add gauges name g;
        g
  in
  Mutex.unlock registry_mu;
  g

let set_gauge g v = if !enabled_flag then Atomic.set g v
let gauge_value g = Atomic.get g

type histogram = {
  bounds : float array; (* strictly increasing upper bounds *)
  buckets : int Atomic.t array; (* per-bound hits; last extra = +inf *)
  hcount : int Atomic.t;
  hsum : float Atomic.t;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let default_buckets =
  Array.init 21 (fun i -> float_of_int (1 lsl i)) (* 1 .. 2^20 *)

let histogram ?buckets name =
  Mutex.lock registry_mu;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let bounds =
          match buckets with None -> default_buckets | Some b -> b
        in
        Array.iteri
          (fun i b ->
            if i > 0 && b <= bounds.(i - 1) then
              invalid_arg
                (Printf.sprintf "Metrics.histogram %s: buckets not increasing"
                   name))
          bounds;
        let h =
          { bounds;
            buckets =
              Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            hcount = Atomic.make 0;
            hsum = Atomic.make 0. }
        in
        Hashtbl.add histograms name h;
        h
  in
  Mutex.unlock registry_mu;
  h

let atomic_add_float a v =
  let rec loop () =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. v)) then loop ()
  in
  loop ()

let bucket_index h v =
  (* Binary search for the first bound with [v <= le]. *)
  let n = Array.length h.bounds in
  if n = 0 || v > h.bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= h.bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe h v =
  if !enabled_flag then begin
    Atomic.incr h.buckets.(bucket_index h v);
    Atomic.incr h.hcount;
    atomic_add_float h.hsum v
  end

let histogram_count h = Atomic.get h.hcount
let histogram_sum h = Atomic.get h.hsum

let bucket_counts h =
  let cum = ref 0 in
  let per_bound =
    Array.to_list
      (Array.mapi
         (fun i le ->
           cum := !cum + Atomic.get h.buckets.(i);
           (le, !cum))
         h.bounds)
  in
  per_bound @ [ (infinity, Atomic.get h.hcount) ]

let quantile h q =
  let count = Atomic.get h.hcount in
  if count = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int count in
    let n = Array.length h.bounds in
    (* First finite bucket whose cumulative count reaches [rank]. *)
    let rec find i cum =
      if i >= n then None
      else
        let cum' = cum + Atomic.get h.buckets.(i) in
        if cum' > 0 && float_of_int cum' >= rank then Some (i, cum, cum')
        else find (i + 1) cum'
    in
    match find 0 0 with
    | None ->
        (* The rank falls in the +inf overflow bucket; the histogram only
           knows the value exceeds the largest finite bound, so report
           that bound (the Prometheus convention) rather than inf. *)
        if n = 0 then Float.nan else h.bounds.(n - 1)
    | Some (i, below, cum) ->
        let hi = h.bounds.(i) in
        let lo =
          if i > 0 then h.bounds.(i - 1) else if hi > 0. then 0. else hi
        in
        let in_bucket = float_of_int (cum - below) in
        let pos = Float.max 0. (rank -. float_of_int below) in
        lo +. ((hi -. lo) *. pos /. in_bucket)
  end

let sorted_values tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let float_json v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let all_counters () =
  Mutex.lock registry_mu;
  let cs = sorted_values counters in
  Mutex.unlock registry_mu;
  cs

let all_gauges () =
  Mutex.lock registry_mu;
  let gs = sorted_values gauges in
  Mutex.unlock registry_mu;
  gs

let all_histograms () =
  Mutex.lock registry_mu;
  let hs = sorted_values histograms in
  Mutex.unlock registry_mu;
  hs

let snapshot () =
  Mutex.lock registry_mu;
  let cs = sorted_values counters in
  let gs = sorted_values gauges in
  let hs = sorted_values histograms in
  Mutex.unlock registry_mu;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"counters\": {";
  List.iteri
    (fun i (name, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    \"%s\": %d" name (counter_value c)))
    cs;
  Buffer.add_string buf "\n  },\n  \"gauges\": {";
  List.iteri
    (fun i (name, g) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    \"%s\": %s" name (float_json (gauge_value g))))
    gs;
  Buffer.add_string buf "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    \"%s\": {\"count\": %d, \"sum\": %s, \"buckets\": ["
           name (histogram_count h)
           (float_json (histogram_sum h)));
      List.iteri
        (fun j (le, c) ->
          if j > 0 then Buffer.add_string buf ", ";
          let le_s =
            if le = infinity then "\"+inf\"" else float_json le
          in
          Buffer.add_string buf
            (Printf.sprintf "{\"le\": %s, \"count\": %d}" le_s c))
        (bucket_counts h);
      Buffer.add_string buf "]}")
    hs;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

let reset () =
  Mutex.lock registry_mu;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun b -> Atomic.set b 0) h.buckets;
      Atomic.set h.hcount 0;
      Atomic.set h.hsum 0.)
    histograms;
  Mutex.unlock registry_mu
