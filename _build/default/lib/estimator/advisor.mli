(** A sampling-driven join-order advisor — the paper's "estimating the
    size of intermediate relations" application (Section 8) put to work.

    Each base relation is sampled {e once}; every candidate left-deep
    order is then costed by executing its prefixes over the shared samples
    and scaling the observed cardinalities up by the GUS inclusion
    probability.  Because the same samples price every order, the
    comparison between orders is consistent even when individual estimates
    are noisy; and each prefix estimate carries a confidence interval, so
    a caller can tell when two orders are statistically indistinguishable. *)

type join_graph = {
  relations : string list;
  predicates : (string * string * Gus_relational.Expr.t * Gus_relational.Expr.t) list;
      (** (relation_a, relation_b, key_a, key_b) equality predicates *)
}

type prefix_estimate = {
  after_joining : string;  (** the relation whose join produced this prefix *)
  size : float;  (** predicted intermediate cardinality *)
  interval : Gus_stats.Interval.t;
}

type ranked_order = {
  order : string list;
  cost : float;  (** Σ predicted intermediate sizes (C_out cost model) *)
  prefixes : prefix_estimate list;
  cross_products : int;  (** prefixes that had no connecting predicate *)
}

val max_relations : int
(** Orders are enumerated exhaustively; the advisor refuses graphs with
    more than this many relations (7 ⇒ 5040 orders). *)

val advise :
  ?seed:int ->
  ?rate:float ->
  Gus_relational.Database.t ->
  join_graph ->
  ranked_order list
(** All left-deep orders, cheapest predicted first (cross-product count is
    the primary key — a cross product's cost estimate is reliable and
    catastrophic — then predicted cost).  Default pilot [rate] 0.05.
    Raises [Invalid_argument] on unknown relations, duplicate relations,
    or too many relations. *)

val best : ?seed:int -> ?rate:float -> Gus_relational.Database.t -> join_graph -> ranked_order

val plan_of_order :
  join_graph -> string list -> Gus_core.Splan.t
(** The left-deep sample-free plan realizing an order (equi-joins where a
    predicate connects, cross products otherwise). *)
