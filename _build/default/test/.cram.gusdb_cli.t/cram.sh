  $ gusdb experiments --list | head -4
  $ gusdb plan -s 0.01 "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (5 ROWS) WHERE l_orderkey = o_orderkey"
  $ gusdb query -s 0.05 --seed 7 "SELECT COUNT(*) AS n FROM lineitem TABLESAMPLE (50 PERCENT)"
  $ gusdb gen -s 0.01 -o out >/dev/null && ls out
  $ gusdb gen -s 0.01 --seed 20130630 -o out2 >/dev/null
  $ gusdb query -s 0.01 --exact "SELECT SUM(l_quantity) AS q FROM lineitem" | tail -1
  $ gusdb query -s 0.01 --data out2 --exact "SELECT SUM(l_quantity) AS q FROM lineitem" | tail -1
  $ gusdb query "SELECT FROM"; echo "exit: $?"
