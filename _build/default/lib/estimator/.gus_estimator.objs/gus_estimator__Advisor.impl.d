lib/estimator/advisor.ml: Database Expr Gus_core Gus_relational Gus_sampling Gus_stats Gus_util Hashtbl List Option Printf Relation Sbox
