lib/experiments/exp_query1.ml: Array Expr Float Format Gus_core Gus_relational Gus_sampling Gus_util Harness List Printf
