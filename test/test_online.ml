(* Tests for the online-aggregation driver and the intermediate-size
   estimator. *)

module Online = Gus_online.Online
module Size = Gus_estimator.Size_estimator
module Sbox = Gus_estimator.Sbox
module Splan = Gus_core.Splan
module Interval = Gus_stats.Interval
module Sampler = Gus_sampling.Sampler
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let close ?(eps = 1e-9) what expected actual =
  check (Alcotest.float eps) what expected actual

let db = lazy (Gus_tpch.Tpch.generate ~seed:55 ~scale:0.2 ())

let join_plan =
  Splan.Equi_join
    { left = Splan.Scan "lineitem";
      right = Splan.Scan "orders";
      left_key = Expr.col "l_orderkey";
      right_key = Expr.col "o_orderkey" }

let revenue = Expr.(col "l_extendedprice" * (float 1.0 - col "l_discount"))

(* ---- Online ---- *)

let test_converges_to_exact () =
  let db = Lazy.force db in
  let truth = Sbox.exact db join_plan ~f:revenue in
  let cps = Online.run ~seed:3 db ~plan:join_plan ~f:revenue ~checkpoints:5 in
  let last = List.nth cps (List.length cps - 1) in
  close ~eps:(1e-9 *. truth) "exact at 100%" truth last.Online.report.Sbox.estimate;
  close "zero width at 100%" 0.0 (Interval.width last.Online.interval);
  List.iter
    (fun (_, f) -> close "all consumed" 1.0 f)
    last.Online.fractions

let test_width_shrinks () =
  let db = Lazy.force db in
  let cps = Online.run ~seed:4 db ~plan:join_plan ~f:revenue ~checkpoints:6 in
  let widths = List.map (fun cp -> Interval.width cp.Online.interval) cps in
  (* Compare first vs last-but-one: strong monotone decrease overall. *)
  match (widths, List.rev widths) with
  | first :: _, last :: prev :: _ ->
      check_bool "last width below first" true (last < first);
      check_bool "penultimate below first" true (prev < first)
  | _ -> Alcotest.fail "not enough checkpoints"

let test_coverage_along_the_way () =
  let db = Lazy.force db in
  let truth = Sbox.exact db join_plan ~f:revenue in
  (* Over several random orders, count mid-scan interval hits. *)
  let hits = ref 0 and total = ref 0 in
  for seed = 1 to 12 do
    let cps = Online.run ~seed db ~plan:join_plan ~f:revenue ~checkpoints:4 in
    List.iter
      (fun cp ->
        let all_done = List.for_all (fun (_, f) -> f >= 1.0) cp.Online.fractions in
        if not all_done then begin
          incr total;
          if Interval.contains cp.Online.interval truth then incr hits
        end)
      cps
  done;
  check_bool
    (Printf.sprintf "mid-scan coverage %d/%d" !hits !total)
    true
    (float_of_int !hits /. float_of_int !total >= 0.8)

let test_step_api () =
  let db = Lazy.force db in
  let t = Online.create ~seed:9 db ~plan:join_plan ~f:revenue in
  check_bool "not finished initially" false (Online.finished t);
  let cp = Online.step t ~rows:100 in
  check Alcotest.int "rows read from two relations" 200 cp.Online.rows_read;
  check_bool "still unfinished" false (Online.finished t);
  check_bool "bad rows" true
    (try ignore (Online.step t ~rows:0); false with Invalid_argument _ -> true)

let test_strips_samples () =
  (* Sampling operators in the plan are ignored: the driver owns sampling. *)
  let db = Lazy.force db in
  let sampled =
    Splan.Equi_join
      { left = Splan.Sample (Sampler.Bernoulli 0.01, Splan.Scan "lineitem");
        right = Splan.Scan "orders";
        left_key = Expr.col "l_orderkey";
        right_key = Expr.col "o_orderkey" }
  in
  let cps = Online.run ~seed:5 db ~plan:sampled ~f:revenue ~checkpoints:2 in
  let last = List.nth cps (List.length cps - 1) in
  let truth = Sbox.exact db join_plan ~f:revenue in
  close ~eps:(1e-9 *. truth) "full answer despite Sample node" truth
    last.Online.report.Sbox.estimate

(* ---- Shedding ---- *)

module Shedding = Gus_online.Shedding

let shed_gus_of rels rates =
  List.fold_left
    (fun acc name ->
      let r = List.assoc name rates in
      let g = Gus_core.Gus.bernoulli ~rel:name r in
      match acc with None -> Some g | Some a -> Some (Gus_core.Gus.join a g))
    None rels
  |> Option.get

let test_shedding_proportional () =
  let rates =
    Shedding.proportional_rates
      ~arrivals:[ ("a", 900); ("b", 100) ] ~capacity:500
  in
  List.iter (fun (_, r) -> close "shared rate 0.5" 0.5 r) rates;
  let full = Shedding.proportional_rates ~arrivals:[ ("a", 10) ] ~capacity:100 in
  close "clamped to 1" 1.0 (List.assoc "a" full)

let test_shedding_optimize_respects_budget () =
  let db = Lazy.force db in
  (* Moments from the real workload so optimization is meaningful. *)
  let report, analysis = Sbox.run ~seed:3 db
    (Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "lineitem")) ~f:revenue in
  ignore analysis;
  let y = report.Sbox.y_hat in
  let arrivals = [ ("lineitem", 12000) ] in
  let rates, v =
    Shedding.optimize_rates
      ~gus_of:(shed_gus_of [ "lineitem" ])
      ~y ~arrivals ~capacity:3000 ()
  in
  close ~eps:1e-6 "single stream rate = C/N" 0.25 (List.assoc "lineitem" rates);
  check_bool "variance positive" true (v > 0.0);
  (* capacity beyond arrivals: keep everything, zero variance *)
  let rates1, v1 =
    Shedding.optimize_rates ~gus_of:(shed_gus_of [ "lineitem" ]) ~y ~arrivals
      ~capacity:100000 ()
  in
  close "all kept" 1.0 (List.assoc "lineitem" rates1);
  close "no variance" 0.0 v1

let test_shedding_optimize_beats_proportional () =
  (* Two-stream join: the optimizer should never be worse than the naive
     uniform split on its own objective. *)
  let db = Lazy.force db in
  let join =
    Splan.equi_join (Splan.scan "lineitem") (Splan.scan "orders")
      ~on:("l_orderkey", "o_orderkey")
  in
  let full = Splan.exec_exact db join in
  let y = Gus_estimator.Moments.of_relation ~f:revenue full in
  let arrivals = [ ("lineitem", 12000); ("orders", 3000) ] in
  let gus_of = shed_gus_of [ "lineitem"; "orders" ] in
  let _, v_opt =
    Shedding.optimize_rates ~gus_of ~y ~arrivals ~capacity:3000 ()
  in
  let naive = Shedding.proportional_rates ~arrivals ~capacity:3000 in
  let v_naive = Gus_core.Gus.variance (gus_of naive) ~y in
  check_bool
    (Printf.sprintf "optimized %.3g <= naive %.3g" v_opt v_naive)
    true (v_opt <= v_naive +. 1e-6)

let test_shedding_gus_of_rates () =
  (* The serving layer's bridge into the optimizer: rates name a subset
     of the plan's relations, absent ones stay at rate 1 (kept whole) —
     so a shed execution only widens variance through the relations it
     actually degraded. *)
  let y = [| 4.0; 2.0; 2.0; 1.0 |] in
  let full = Shedding.gus_of_rates [ "a"; "b" ] [ ("a", 1.0) ] in
  close "keeping everything has zero variance" 0.0
    (Gus_core.Gus.variance full ~y);
  (* synthetic overload sweep: deeper shedding, strictly wider variance *)
  let var f =
    Gus_core.Gus.variance
      (Shedding.gus_of_rates [ "a"; "b" ] [ ("a", 1.0 /. f) ])
      ~y
  in
  let v2 = var 2.0 and v4 = var 4.0 and v16 = var 16.0 in
  check_bool "overload 2x adds variance" true (v2 > 0.0);
  check_bool "4x wider than 2x" true (v4 > v2);
  check_bool "16x wider than 4x" true (v16 > v4)

let test_shedding_validation () =
  let fails f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "zero capacity" true
    (fails (fun () ->
         Shedding.optimize_rates
           ~gus_of:(shed_gus_of [ "a" ])
           ~y:[| 0.0; 0.0 |] ~arrivals:[ ("a", 10) ] ~capacity:0 ()));
  check_bool "too many streams" true
    (fails (fun () ->
         Shedding.optimize_rates
           ~gus_of:(shed_gus_of [ "a" ])
           ~y:[| 0.0; 0.0 |]
           ~arrivals:[ ("a", 1); ("b", 1); ("c", 1); ("d", 1) ]
           ~capacity:2 ()))

let test_shedding_simulate () =
  let db = Lazy.force db in
  let windows = 4 in
  let capacity = 1200 in
  let reports =
    Shedding.simulate ~seed:3 db ~plan:join_plan ~f:revenue ~windows ~capacity
  in
  check Alcotest.int "one report per window" windows (List.length reports);
  let truths = Shedding.window_truth db ~plan:join_plan ~f:revenue ~windows in
  let covered = ref 0 in
  List.iter2
    (fun r truth ->
      (* throughput respected in expectation: allow 25% stochastic slack *)
      let total_kept = List.fold_left (fun acc (_, k) -> acc + k) 0 r.Shedding.kept in
      check_bool
        (Printf.sprintf "window %d kept %d <= 1.25 * capacity" r.Shedding.window total_kept)
        true
        (float_of_int total_kept <= 1.25 *. float_of_int capacity);
      if Gus_stats.Interval.contains r.Shedding.interval truth then incr covered)
    reports truths;
  check_bool
    (Printf.sprintf "windows covered %d/%d" !covered windows)
    true (!covered >= windows - 1)

(* ---- Progressive ---- *)

module Progressive = Gus_online.Progressive

let test_progressive_meets_target () =
  let db = Lazy.force db in
  let rounds =
    Progressive.run ~seed:2 db ~plan:join_plan ~f:revenue ~target_rel_width:0.08
  in
  let last = List.nth rounds (List.length rounds - 1) in
  check_bool "target met or exact" true
    (last.Progressive.met || last.Progressive.rate >= 1.0);
  (* rates strictly grow *)
  let rec growing = function
    | a :: (b :: _ as rest) -> a.Progressive.rate < b.Progressive.rate && growing rest
    | _ -> true
  in
  check_bool "rates grow" true (growing rounds);
  (* earlier rounds did not meet the target (otherwise they'd have stopped) *)
  List.iteri
    (fun i r ->
      if i < List.length rounds - 1 then
        check_bool "intermediate rounds not met" false r.Progressive.met)
    rounds

let test_progressive_nested_samples () =
  (* Same seed, growing rate: each round's result contains the previous
     round's lineage pairs. *)
  let db = Lazy.force db in
  let rounds =
    Progressive.run ~seed:5 ~initial_rate:0.05 ~growth:4.0 db ~plan:join_plan
      ~f:revenue ~target_rel_width:1e-9
  in
  check_bool "several rounds" true (List.length rounds >= 2);
  let tuple_counts = List.map (fun r -> r.Progressive.report.Sbox.n_tuples) rounds in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  check_bool "sample grows" true (nondecreasing tuple_counts)

let test_progressive_exact_when_tiny_target () =
  let db = Lazy.force db in
  let rounds =
    Progressive.run ~seed:3 ~initial_rate:0.2 ~growth:3.0 ~max_rounds:6 db
      ~plan:join_plan ~f:revenue ~target_rel_width:1e-12
  in
  let last = List.nth rounds (List.length rounds - 1) in
  close "rate reaches 1" 1.0 last.Progressive.rate;
  let truth = Sbox.exact db join_plan ~f:revenue in
  close ~eps:(1e-9 *. truth) "exact answer" truth
    last.Progressive.report.Sbox.estimate;
  close "zero width" 0.0 last.Progressive.rel_width

let test_progressive_validation () =
  let db = Lazy.force db in
  let fails f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "bad target" true
    (fails (fun () ->
         Progressive.run db ~plan:join_plan ~f:revenue ~target_rel_width:0.0));
  check_bool "bad growth" true
    (fails (fun () ->
         Progressive.run ~growth:1.0 db ~plan:join_plan ~f:revenue
           ~target_rel_width:0.1))

(* ---- Size estimator ---- *)

let test_size_prediction_reasonable () =
  let db = Lazy.force db in
  let truth = float_of_int (Relation.cardinality (Splan.exec_exact db join_plan)) in
  let p = Size.predict_with_rates ~seed:2 db ~rate:0.2 join_plan in
  check_bool "prediction within 30%" true
    (Float.abs (p.Size.estimate -. truth) < 0.3 *. truth);
  check_bool "interval contains truth" true (Interval.contains p.Size.interval truth);
  check_bool "positive sample" true (p.Size.sample_tuples > 0)

let test_size_higher_rate_tighter () =
  let db = Lazy.force db in
  let loose = Size.predict_with_rates ~seed:3 db ~rate:0.05 join_plan in
  let tight = Size.predict_with_rates ~seed:3 db ~rate:0.5 join_plan in
  check_bool "more sampling, narrower interval" true
    (Interval.width tight.Size.interval < Interval.width loose.Size.interval)

let test_size_rate_validation () =
  let db = Lazy.force db in
  check_bool "rate 0 rejected" true
    (try ignore (Size.predict_with_rates db ~rate:0.0 join_plan); false
     with Invalid_argument _ -> true);
  check_bool "rate > 1 rejected" true
    (try ignore (Size.predict_with_rates db ~rate:1.5 join_plan); false
     with Invalid_argument _ -> true)

let test_size_predict_on_sampling_plan () =
  (* predict analyzes the plan as given (with its own TABLESAMPLEs). *)
  let db = Lazy.force db in
  let plan =
    Splan.Equi_join
      { left = Splan.Sample (Sampler.Bernoulli 0.3, Splan.Scan "lineitem");
        right = Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "orders");
        left_key = Expr.col "l_orderkey";
        right_key = Expr.col "o_orderkey" }
  in
  let truth = float_of_int (Relation.cardinality (Splan.exec_exact db plan)) in
  let p = Size.predict ~seed:4 db plan in
  check_bool "contains truth" true (Interval.contains p.Size.interval truth)

let () =
  Alcotest.run "gus_online"
    [ ( "online",
        [ Alcotest.test_case "converges to exact" `Quick test_converges_to_exact;
          Alcotest.test_case "width shrinks" `Quick test_width_shrinks;
          Alcotest.test_case "mid-scan coverage" `Slow test_coverage_along_the_way;
          Alcotest.test_case "step API" `Quick test_step_api;
          Alcotest.test_case "strips Sample nodes" `Quick test_strips_samples ] );
      ( "shedding",
        [ Alcotest.test_case "proportional rates" `Quick test_shedding_proportional;
          Alcotest.test_case "optimize respects budget" `Quick test_shedding_optimize_respects_budget;
          Alcotest.test_case "optimize beats proportional" `Quick test_shedding_optimize_beats_proportional;
          Alcotest.test_case "gus_of_rates bridge" `Quick
            test_shedding_gus_of_rates;
          Alcotest.test_case "validation" `Quick test_shedding_validation;
          Alcotest.test_case "simulate windows" `Quick test_shedding_simulate ] );
      ( "progressive",
        [ Alcotest.test_case "meets target" `Quick test_progressive_meets_target;
          Alcotest.test_case "nested samples" `Quick test_progressive_nested_samples;
          Alcotest.test_case "exact at rate 1" `Quick test_progressive_exact_when_tiny_target;
          Alcotest.test_case "validation" `Quick test_progressive_validation ] );
      ( "size-estimator",
        [ Alcotest.test_case "reasonable prediction" `Quick test_size_prediction_reasonable;
          Alcotest.test_case "rate tightens interval" `Quick test_size_higher_rate_tighter;
          Alcotest.test_case "rate validation" `Quick test_size_rate_validation;
          Alcotest.test_case "explicit sampling plan" `Quick test_size_predict_on_sampling_plan ] ) ]
