type schema = string array

exception Overlap of string

let schema_empty = [||]
let schema_of name = [| name |]

let schema_mem s name = Array.exists (String.equal name) s

let schema_concat a b =
  Array.iter
    (fun name -> if schema_mem a name then raise (Overlap name))
    b;
  Array.append a b

let schema_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i n -> if not (String.equal n b.(i)) then ok := false) a;
      !ok)

let position s name =
  let rec go i =
    if i >= Array.length s then None
    else if String.equal s.(i) name then Some i
    else go (i + 1)
  in
  go 0

type t = int array

let concat = Array.append

let common l l' =
  if Array.length l <> Array.length l' then
    invalid_arg "Lineage.common: schema mismatch";
  let s = ref Gus_util.Subset.empty in
  Array.iteri (fun i id -> if id = l'.(i) then s := Gus_util.Subset.add !s i) l;
  !s

let restrict l ~positions = Array.of_list (List.map (fun i -> l.(i)) positions)

let hash l =
  let h = ref (Gus_util.Hashing.mix64 17L) in
  Array.iter (fun id -> h := Gus_util.Hashing.combine !h (Int64.of_int id)) l;
  Int64.to_int !h

(* Monomorphic loop: polymorphic compare would interpret the generic
   structural-equality protocol per element. *)
let equal (a : t) (b : t) =
  a == b
  ||
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i =
    i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
  in
  go 0

let pp ~schema ppf l =
  let parts =
    Array.to_list
      (Array.mapi
         (fun i id ->
           let name = if i < Array.length schema then schema.(i) else "?" in
           Printf.sprintf "%s=%d" name id)
         l)
  in
  Format.fprintf ppf "[%s]" (String.concat "; " parts)
