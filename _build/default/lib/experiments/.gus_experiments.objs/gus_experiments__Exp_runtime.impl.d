lib/experiments/exp_runtime.ml: Array Expr Gus_core Gus_estimator Gus_relational Gus_sampling Gus_util Harness List Printf Relation
