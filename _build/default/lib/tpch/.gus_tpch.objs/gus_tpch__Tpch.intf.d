lib/tpch/tpch.mli: Gus_relational
