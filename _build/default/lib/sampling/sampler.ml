module Rng = Gus_util.Rng
module Hashing = Gus_util.Hashing
open Gus_relational

type t =
  | Bernoulli of float
  | Wor of int
  | Wr of int
  | Block of { rows_per_block : int; p : float }
  | Hash_bernoulli of { seed : int; p : float }

let pp ppf = function
  | Bernoulli p -> Format.fprintf ppf "Bernoulli(%g)" p
  | Wor n -> Format.fprintf ppf "WOR(%d)" n
  | Wr n -> Format.fprintf ppf "WR(%d)" n
  | Block { rows_per_block; p } -> Format.fprintf ppf "Block(%d,%g)" rows_per_block p
  | Hash_bernoulli { seed; p } -> Format.fprintf ppf "HashBernoulli(seed=%d,%g)" seed p

let to_string s = Format.asprintf "%a" pp s

let check_p p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Sampler: probability %g not in [0,1]" p)

let validate = function
  | Bernoulli p -> check_p p
  | Wor n | Wr n ->
      if n < 0 then invalid_arg "Sampler: negative sample size"
  | Block { rows_per_block; p } ->
      if rows_per_block <= 0 then invalid_arg "Sampler: block size must be positive";
      check_p p
  | Hash_bernoulli { p; _ } -> check_p p

let copy_shape ?(suffix = "sample") rel =
  Relation.derived
    ~name:(Printf.sprintf "%s(%s)" suffix rel.Relation.name)
    rel.Relation.schema rel.Relation.lineage_schema

let require_base which rel =
  if Array.length rel.Relation.lineage_schema <> 1 then
    invalid_arg
      (Printf.sprintf "Sampler.apply: %s requires a base relation, got lineage %s"
         which
         (String.concat "," (Array.to_list rel.Relation.lineage_schema)))

let apply t rng rel =
  validate t;
  (match t with
  | Block _ -> require_base "block sampling" rel
  | Hash_bernoulli _ -> require_base "hash-Bernoulli sampling" rel
  | Bernoulli _ | Wor _ | Wr _ -> ());
  match t with
  | Bernoulli p ->
      let out = copy_shape rel in
      Relation.iter
        (fun tup -> if Rng.bernoulli rng p then Relation.append_tuple out tup)
        rel;
      out
  | Wor n ->
      let out = copy_shape rel in
      let card = Relation.cardinality rel in
      let k = min n card in
      let idx = Rng.sample_without_replacement rng k card in
      Array.sort compare idx;
      Array.iter (fun i -> Relation.append_tuple out (Relation.tuple rel i)) idx;
      out
  | Wr n ->
      let out = copy_shape rel in
      let card = Relation.cardinality rel in
      if card > 0 then
        for _ = 1 to n do
          Relation.append_tuple out (Relation.tuple rel (Rng.int rng card))
        done;
      out
  | Block { rows_per_block; p } ->
      (* Lineage is rewritten to block granularity: the filter decision is
         per block, and two rows of one kept block are *not* independent, so
         the GUS analysis must treat the block as the sampled unit. *)
      let out = copy_shape ~suffix:"blocksample" rel in
      let card = Relation.cardinality rel in
      let nblocks = (card + rows_per_block - 1) / rows_per_block in
      let keep = Array.init nblocks (fun _ -> Rng.bernoulli rng p) in
      Relation.iter
        (fun tup ->
          let row = tup.Tuple.lineage.(0) in
          let block = row / rows_per_block in
          if keep.(block) then begin
            let lineage = Array.copy tup.Tuple.lineage in
            lineage.(0) <- block;
            Relation.append_tuple out { tup with Tuple.lineage }
          end)
        rel;
      out
  | Hash_bernoulli { seed; p } ->
      let out = copy_shape ~suffix:"hashsample" rel in
      Relation.iter
        (fun tup ->
          let id = tup.Tuple.lineage.(0) in
          if Hashing.prf_float ~seed id < p then Relation.append_tuple out tup)
        rel;
      out

let sampling_fraction t ~n =
  match t with
  | Bernoulli p -> p
  | Wor k | Wr k -> if n = 0 then 0.0 else Float.min 1.0 (float_of_int k /. float_of_int n)
  | Block { p; _ } -> p
  | Hash_bernoulli { p; _ } -> p
