lib/experiments/exp_ablation.ml: Float Gus_core Gus_estimator Gus_stats Gus_util Harness List Printf
