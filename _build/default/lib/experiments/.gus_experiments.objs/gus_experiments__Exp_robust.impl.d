lib/experiments/exp_robust.ml: Array Expr Float Gus_core Gus_estimator Gus_relational Gus_tpch Gus_util Harness Option Printf Relation
