examples/load_shedding.mli:
