(** Atomic values stored in tuples.

    Arithmetic silently promotes [Int] to [Float] when the two sides mix,
    like SQL numeric coercion; every other type confusion raises
    {!Type_error} rather than producing garbage. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

exception Type_error of string

val type_error : string -> t -> 'a
(** [type_error op v] raises {!Type_error} describing [op] applied to
    [v]. *)

type ty = TBool | TInt | TFloat | TStr
(** Declared column types. [Null] inhabits all of them. *)

val ty_name : ty -> string
val type_of : t -> ty option
(** [None] for [Null]. *)

val conforms : t -> ty -> bool

val is_null : t -> bool

val to_float : t -> float
(** Numeric read; raises {!Type_error} on non-numeric values. *)

val to_int : t -> int
val to_bool : t -> bool
val to_string_exn : t -> string

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** SQL semantics: anything with a [Null] operand is [Null]; division by a
    zero number raises {!Type_error} (we prefer loud failures in a research
    engine). *)

val neg : t -> t

val compare_sql : t -> t -> int option
(** Three-valued comparison: [None] when either side is [Null] or the types
    are incomparable. *)

val equal : t -> t -> bool
(** Structural equality ([Null] equals [Null]); used for grouping keys, not
    for SQL predicates. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_display : t -> string
