lib/sql/token.mli:
